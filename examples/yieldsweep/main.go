// Yieldsweep walks the design methodology across the ULE-mode voltage
// and yield-target space, showing how the sized 10T and 8T+EDC cells —
// and therefore the proposed design's advantage — move with the
// operating point. It also demonstrates why the methodology needs
// importance sampling by comparing the estimator against naive
// Monte-Carlo at the paper's Pf magnitudes.
package main

import (
	"fmt"

	"edcache/internal/bitcell"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

func main() {
	fmt.Println("=== Sizing vs ULE voltage (scenario A, 99% yield) ===")
	tb := stats.NewTable("Vcc (mV)", "10T size", "8T size", "8T+SECDED area/bit vs 10T", "iterations")
	for _, mv := range []float64{300, 325, 350, 375, 400, 450} {
		in := yield.PaperInput(yield.ScenarioA)
		in.VccULE = mv / 1000
		res, err := yield.Run(in)
		if err != nil {
			// Below some voltage even upsized cells cannot meet the
			// target; report and continue — that cliff is the point.
			tb.AddRow(fmt.Sprintf("%.0f", mv), "infeasible", "-", "-", "-")
			continue
		}
		ratio := res.ProposedCell.AreaRel() * 39 / 32 / res.BaselineCell.AreaRel()
		tb.AddRow(fmt.Sprintf("%.0f", mv),
			fmt.Sprintf("x%.2f", res.BaselineCell.Size),
			fmt.Sprintf("x%.2f", res.ProposedCell.Size),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprint(len(res.Iterations)))
	}
	fmt.Print(tb.String())

	fmt.Println("\n=== Sizing vs yield target (scenario A, 350 mV) ===")
	tb2 := stats.NewTable("target yield", "Pf target", "10T size", "8T size")
	for _, y := range []float64{0.90, 0.95, 0.99, 0.995, 0.999} {
		in := yield.PaperInput(yield.ScenarioA)
		in.TargetYield = y
		res, err := yield.Run(in)
		if err != nil {
			// Very aggressive yield targets push the Pf requirement
			// below the 6T failure floor — a real feasibility cliff
			// (the fix would be coding the HP ways too).
			tb2.AddRow(fmt.Sprintf("%.1f%%", y*100), "infeasible: "+err.Error(), "-", "-")
			continue
		}
		tb2.AddRow(fmt.Sprintf("%.1f%%", y*100), fmt.Sprintf("%.3g", res.PfTarget),
			fmt.Sprintf("x%.2f", res.BaselineCell.Size), fmt.Sprintf("x%.2f", res.ProposedCell.Size))
	}
	fmt.Print(tb2.String())

	fmt.Println("\n=== Why importance sampling (Chen et al.) ===")
	cell := bitcell.MustNew(bitcell.T10, 2.60)
	fmt.Printf("cell %v at 350 mV, analytic Pf = %.4g\n", cell, cell.FailureProb(0.35))
	tb3 := stats.NewTable("samples", "naive MC estimate", "importance sampling", "IS std err")
	for _, n := range []int{1000, 10000, 100000} {
		naive := bitcell.NaiveMonteCarloFailureProb(cell, 0.35, n, 42)
		is := bitcell.MonteCarloFailureProb(cell, 0.35, n, 42)
		tb3.AddRow(fmt.Sprint(n), fmt.Sprintf("%.3g", naive.Pf), fmt.Sprintf("%.4g", is.Pf),
			fmt.Sprintf("%.2g", is.StdErr))
	}
	fmt.Print(tb3.String())
	fmt.Println("\nNaive sampling cannot see a 1e-6 tail at these sample counts; the")
	fmt.Println("mean-shifted estimator resolves it with a few thousand samples.")
}
