// Yieldsweep walks the design methodology across the ULE-mode voltage
// and yield-target space, showing how the sized 10T and 8T+EDC cells —
// and therefore the proposed design's advantage — move with the
// operating point, and demonstrates why the methodology needs
// importance sampling at the paper's Pf magnitudes.
//
// The sweeps are registered experiments (internal/experiments) executed
// on the concurrent engine — this example is the minimal driver over a
// registry: resolve, run, sink.
package main

import (
	"fmt"
	"log"
	"os"

	"edcache/internal/experiments"
	"edcache/internal/sim"
)

func main() {
	reg := sim.NewRegistry()
	experiments.RegisterAll(reg, experiments.Options{})

	names, err := reg.Resolve("sweep-voltage,sweep-yieldtarget,mc-sampling")
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.Runner{Seed: 42}.RunAll(reg, names)
	if err != nil {
		log.Fatal(err)
	}
	sink, _ := sim.NewSink("text", os.Stdout)
	if err := sink.Write(results); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(the voltage cliff and the yield-target cliff are real feasibility limits; the")
	fmt.Println(" fix for the latter would be coding the HP ways too)")
}
