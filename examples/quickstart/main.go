// Quickstart: build the paper's scenario-A systems (baseline 6T+10T vs
// proposed 6T+8T+SECDED), run one workload per operating mode, and print
// the energy-per-instruction comparison — the smallest end-to-end use of
// the library.
package main

import (
	"fmt"
	"log"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/yield"
)

func main() {
	// 1. Configure and size both designs. NewSystem runs the paper's
	// Fig. 2 design methodology internally: it derives the fault-free
	// Pf requirement from the 99 % yield target, sizes the 10T baseline
	// cell and iterates the 8T+SECDED cell until yield matches.
	baseline, err := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Baseline))
	if err != nil {
		log.Fatal(err)
	}
	proposed, err := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sized cells: baseline ULE way %v, proposed ULE way %v\n\n",
		baseline.ULEWayArray().Cell, proposed.ULEWayArray().Cell)

	// 2. HP mode (1 V, 1 GHz): a BigBench workload on the full 8-way cache.
	big, err := bench.ByName("gsm_c")
	if err != nil {
		log.Fatal(err)
	}
	show("HP mode, gsm_c", baseline, proposed, big, core.ModeHP)

	// 3. ULE mode (350 mV, 5 MHz): a SmallBench workload on the single
	// ULE way (HP ways are gated off).
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		log.Fatal(err)
	}
	show("ULE mode, adpcm_c", baseline, proposed, small, core.ModeULE)
}

func show(title string, baseline, proposed *core.System, w bench.Workload, m core.Mode) {
	rb, err := baseline.Run(w, m)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := proposed.Run(w, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", title)
	fmt.Printf("  baseline EPI %.3f pJ, proposed EPI %.3f pJ -> saving %.1f%%\n",
		rb.EPI.Total(), rp.EPI.Total(), 100*(1-rp.EPI.Total()/rb.EPI.Total()))
	fmt.Printf("  execution time: baseline %.2f ms, proposed %.2f ms (%+.2f%%)\n\n",
		rb.TimeNS/1e6, rp.TimeNS/1e6, 100*(rp.TimeNS/rb.TimeNS-1))
}
