package main

import (
	"os"
	"testing"
)

// TestMainSmoke runs the example end-to-end with stdout silenced; it
// fails on any panic or log.Fatal inside the example.
func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	main()
}
