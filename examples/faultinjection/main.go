// Faultinjection demonstrates the architecture's reliability story
// functionally, bit by bit: it manufactures a ULE way with hard faults
// drawn at the methodology's sized-8T fault rate, runs a write/read
// sweep over every word through the real SECDED/DECTED codecs, then
// layers soft errors on top — showing exactly which design survives
// which fault pattern, and why scenario B needs DECTED. It closes by
// replaying a whole SmallBench workload through the bit-accurate
// protected caches on the batched core path (core.ReplayFunctional):
// timing stats and transparent corrections from the same run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/cpu"
	"edcache/internal/ecc"
	"edcache/internal/faults"
	"edcache/internal/yield"
)

func main() {
	res, err := yield.Run(yield.PaperInput(yield.ScenarioA))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2013)) // DATE 2013

	// Manufacture one ULE way's silicon at the sized 8T fault rate.
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	fmap, err := faults.Generate(geom, res.ProposedPf*20, rng) // exaggerated Pf so a demo die has several faults
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manufactured ULE way: %d stuck-at cells across %d bits (Pf x20 for demo)\n",
		fmap.Count(), geom.TotalBits())
	fmt.Printf("worst word has %d faults; usable under SECDED (≤1/word): %v\n\n",
		fmap.MaxPerWord(), fmap.Usable(1))

	// Scenario A: 8T + SECDED. Every word is written and read back.
	way, err := core.NewProtectedWay(32, 8, ecc.KindSECDED, 32, 26, fmap)
	if err != nil {
		log.Fatal(err)
	}
	ok, corrected, detected := 0, 0, 0
	for line := 0; line < 32; line++ {
		for word := 0; word < 8; word++ {
			want := rng.Uint64() & 0xFFFFFFFF
			way.WriteData(line, word, want)
			got, r := way.ReadData(line, word)
			switch {
			case r.Status == ecc.Detected:
				detected++
			case got != want:
				log.Fatalf("silent corruption at (%d,%d)", line, word)
			case r.Status == ecc.Corrected:
				corrected++
			default:
				ok++
			}
		}
	}
	fmt.Printf("scenario A sweep over 256 data words: %d clean, %d corrected by SECDED, %d uncorrectable\n",
		ok, corrected, detected)
	fmt.Println("-> wherever the code's guarantee holds (≤1 hard fault per word) the stored value")
	fmt.Println("   came back exactly; hard faults are invisible to software. (This demo die was")
	fmt.Println("   drawn at 20x the sized Pf, so a beyond-spec multi-fault word may appear —")
	fmt.Println("   at the real sized Pf such dies are what the 99% yield target excludes.)")

	// The counterfactual the paper's baseline rejects: the same faulty
	// silicon with no coding returns corrupted data.
	bare, err := core.NewProtectedWay(32, 8, ecc.KindNone, 39, 33, fmap)
	if err != nil {
		log.Fatal(err)
	}
	corrupt := 0
	for line := 0; line < 32; line++ {
		for word := 0; word < 8; word++ {
			want := rng.Uint64() & ((1 << 39) - 1)
			bare.WriteData(line, word, want)
			if got, _ := bare.ReadData(line, word); got != want {
				corrupt++
			}
		}
	}
	fmt.Printf("\nsame silicon without EDC: %d of 256 words return corrupted data\n", corrupt)
	fmt.Println("-> without coding these entries must be disabled, destroying the WCET guarantees")
	fmt.Println("   critical applications need (the paper's argument for large 10T cells or EDC).")

	// Scenario B: a hard fault plus a soft error in the same word.
	fmt.Println("\nscenario B: hard fault + soft error in the same word")
	geomB := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 45, TagWordBits: 39}
	fmB := faults.Empty(geomB)
	fmB.Inject(faults.WordKey{Line: 3, Word: 1}, faults.BitFault{Pos: 11, Stuck: 1})
	wayB, err := core.NewProtectedWay(32, 8, ecc.KindDECTED, 32, 26, fmB)
	if err != nil {
		log.Fatal(err)
	}
	wayB.WriteData(3, 1, 0x600DCAFE)
	wayB.InjectSoftError(3, 1, rng)
	got, r := wayB.ReadData(3, 1)
	fmt.Printf("  DECTED read: %#x, status %v (%d bits repaired)\n", got, r.Status, r.Corrected)

	// Same pattern against SECDED: stuck-at-0 under a written 1 (a
	// manifest hard fault) plus one soft error elsewhere is a double
	// error — detected, not correctable.
	waySec, err := core.NewProtectedWay(32, 8, ecc.KindSECDED, 32, 26, func() *faults.WayFaults {
		g := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
		m := faults.Empty(g)
		m.Inject(faults.WordKey{Line: 3, Word: 1}, faults.BitFault{Pos: 11, Stuck: 0})
		return m
	}())
	if err != nil {
		log.Fatal(err)
	}
	for {
		waySec.WriteData(3, 1, 0x600DCAFE) // bit 11 is 1: the stuck-at-0 cell disagrees
		waySec.InjectSoftError(3, 1, rng)
		_, r2 := waySec.ReadData(3, 1)
		if r2.Status == ecc.Detected {
			fmt.Printf("  SECDED read: status %v — detected but NOT correctable\n", r2.Status)
			break
		}
		// The soft error occasionally lands on the faulty bit itself,
		// leaving a correctable single error; retry for the real case.
	}
	fmt.Println("-> with soft errors in the requirement (scenario B), SECDED is not enough;")
	fmt.Println("   the proposed design upgrades the ULE way to DECTED exactly for this case.")

	// Whole-workload replay through the protected layer, on the batched
	// core path: the ULE-mode cache pair (1 KB, SECDED) runs a real
	// SmallBench stream instruction by instruction — fetches and data
	// accesses travel encoder → fault map → decoder — while the core
	// model accumulates timing. Repairs stay invisible to the replay;
	// only the correction counters reveal the faulty silicon.
	fmt.Println("\nbatched functional replay: epic_c on a faulty SECDED ULE cache")
	dieRng := rand.New(rand.NewSource(42))
	var dieMap *faults.WayFaults
	for {
		m, err := faults.Generate(geom, res.ProposedPf*30, dieRng)
		if err != nil {
			log.Fatal(err)
		}
		if m.Usable(1) && m.Count() > 0 { // a shippable die that still has faults
			dieMap = m
			break
		}
	}
	il1, err := core.NewFunctionalCache(32, 8, ecc.KindSECDED, nil)
	if err != nil {
		log.Fatal(err)
	}
	dl1, err := core.NewFunctionalCache(32, 8, ecc.KindSECDED, dieMap)
	if err != nil {
		log.Fatal(err)
	}
	w, err := bench.ByName("epic_c")
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.ReplayFunctional(cpu.Config{MemLatency: 20}, il1, dl1, 1, w.ScaledTo(40_000).Stream())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions, CPI %.3f, DL1 miss %.2f%% (die carries %d stuck-at cells)\n",
		st.Instructions, st.CPI(), 100*float64(st.DMisses)/float64(st.DAccesses), dieMap.Count())
	fmt.Printf("  SECDED repaired %d reads in flight, %d uncorrectable\n", dl1.CorrectedReads, dl1.Uncorrectable)
	fmt.Println("-> the whole replay ran on real codewords over faulty silicon and software")
	fmt.Println("   never saw a fault — the claim of Section III, executed end to end.")
}
