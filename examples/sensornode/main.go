// Sensornode models the paper's motivating deployment: a battery-powered
// environmental sensor that spends almost all of its life in ULE mode
// processing small workloads and wakes to HP mode only for infrequent
// events (0.01 %–1 % of the time; Szewczyk et al., reference [19]). It
// composes the library's full-system reports into an average-power and
// battery-lifetime estimate for the baseline and proposed caches.
package main

import (
	"fmt"
	"log"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

// CR2032-class coin cell: ~225 mAh at 3 V ≈ 2430 J.
const batteryJoules = 2430.0

func main() {
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		fmt.Printf("=== Scenario %v ===\n", s)
		tb := stats.NewTable("duty (ULE share)", "baseline avg power", "proposed avg power", "baseline lifetime", "proposed lifetime", "gain")
		for _, uleShare := range []float64{0.99, 0.999, 0.9999} {
			pb, err := avgPower(s, core.Baseline, uleShare)
			if err != nil {
				log.Fatal(err)
			}
			pp, err := avgPower(s, core.Proposed, uleShare)
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRow(
				fmt.Sprintf("%.2f%%", uleShare*100),
				fmt.Sprintf("%.1f uW", pb*1e6),
				fmt.Sprintf("%.1f uW", pp*1e6),
				lifetime(pb), lifetime(pp),
				stats.Pct(pb/pp-1),
			)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("Power is dominated by ULE mode at realistic duty cycles, which is why the")
	fmt.Println("paper optimises the ULE way so aggressively: the 8T+EDC cache stretches the")
	fmt.Println("same coin cell by roughly the ULE-mode EPI saving.")

	// A concrete duty-cycled schedule through the mode-switch machinery:
	// sense in ULE mode, wake to HP for an event burst, return to ULE.
	fmt.Println("\n=== One wake-up cycle (explicit mode switches) ===")
	sys, err := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	if err != nil {
		log.Fatal(err)
	}
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		log.Fatal(err)
	}
	big, err := bench.ByName("gsm_c")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunDutyCycle([]core.Phase{
		{Mode: core.ModeULE, Workload: small.ScaledTo(200_000)},
		{Mode: core.ModeHP, Workload: big.ScaledTo(200_000)},
		{Mode: core.ModeULE, Workload: small.ScaledTo(200_000)},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Phases {
		fmt.Printf("phase %d: %-8s at %-3v  %8.2f ms  EPI %.2f pJ\n",
			i, p.Workload, p.Mode, p.TimeNS/1e6, p.EPI.Total())
	}
	var swE float64
	for _, sw := range res.Switches {
		swE += sw.EnergyPJ
	}
	fmt.Printf("mode switches: %d, switch energy %.0f pJ (%.4f%% of total — the paper's",
		len(res.Switches), swE, 100*swE/res.TotalEnergyPJ)
	fmt.Println(" 'negligible' claim, checked)")
	fmt.Printf("schedule: %.2f ms, average power %.1f uW\n", res.TotalTimeNS/1e6, res.AvgPowerW()*1e6)
}

// avgPower returns the duty-weighted average power in watts: EPI × IPS
// per mode, ULE running SmallBench and HP running BigBench.
func avgPower(s yield.Scenario, d core.Design, uleShare float64) (float64, error) {
	sys, err := core.NewSystem(core.PaperConfig(s, d))
	if err != nil {
		return 0, err
	}
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		return 0, err
	}
	big, err := bench.ByName("gsm_c")
	if err != nil {
		return 0, err
	}
	rULE, err := sys.Run(small.ScaledTo(150_000), core.ModeULE)
	if err != nil {
		return 0, err
	}
	rHP, err := sys.Run(big.ScaledTo(150_000), core.ModeHP)
	if err != nil {
		return 0, err
	}
	return uleShare*power(rULE) + (1-uleShare)*power(rHP), nil
}

// power converts a report to watts: (pJ/instr × instr) / (ns) = mW ⇒ W.
func power(r core.Report) float64 {
	totalPJ := r.EPI.Total() * float64(r.Stats.Instructions)
	return totalPJ / r.TimeNS * 1e-3 // pJ/ns = mW
}

func lifetime(watts float64) string {
	seconds := batteryJoules / watts
	days := seconds / 86400
	if days > 730 {
		return fmt.Sprintf("%.1f years", days/365)
	}
	return fmt.Sprintf("%.0f days", days)
}
