module edcache

go 1.21
