// Package edcache_bench holds the benchmark harness: one testing.B
// target per paper table/figure (see DESIGN.md's experiment index).
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports, via b.ReportMetric, the headline quantity of
// its experiment (EPI saving in percent, yields, cell sizes), so
// `go test -bench` output doubles as a compact reproduction record.
package edcache_bench

import (
	"math/rand"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/bitcell"
	"edcache/internal/cache"
	"edcache/internal/core"
	"edcache/internal/ecc"
	"edcache/internal/experiments"
	"edcache/internal/faults"
	"edcache/internal/trace"
	"edcache/internal/wcet"
	"edcache/internal/yield"
)

const benchInstructions = 120_000

func suite(m core.Mode) []bench.Workload {
	ws := core.PaperModeWorkloads(m)
	for i := range ws {
		ws[i] = ws[i].ScaledTo(benchInstructions)
	}
	return ws
}

func runPoint(b *testing.B, s yield.Scenario, m core.Mode) {
	b.Helper()
	var saving, timeInc float64
	for i := 0; i < b.N; i++ {
		pairs, err := core.RunPairs(s, m, suite(m))
		if err != nil {
			b.Fatal(err)
		}
		sum := core.Summarize(s, m, pairs)
		saving = sum.AvgSavingPct
		timeInc = sum.AvgTimeIncreasePct
	}
	b.ReportMetric(saving, "EPI-saving-%")
	b.ReportMetric(timeInc, "time-increase-%")
}

// BenchmarkFig3HPMode regenerates Figure 3 (E1): normalized average EPI
// at HP mode, scenarios A and B. Paper: 14 % and 12 % savings.
func BenchmarkFig3HPMode(b *testing.B) {
	b.Run("scenarioA", func(b *testing.B) { runPoint(b, yield.ScenarioA, core.ModeHP) })
	b.Run("scenarioB", func(b *testing.B) { runPoint(b, yield.ScenarioB, core.ModeHP) })
}

// BenchmarkFig4ULEMode regenerates Figure 4 (E2): normalized EPI at ULE
// mode, scenarios A and B. Paper: 42 % and 39 % savings, ~3 % slowdown.
func BenchmarkFig4ULEMode(b *testing.B) {
	b.Run("scenarioA", func(b *testing.B) { runPoint(b, yield.ScenarioA, core.ModeULE) })
	b.Run("scenarioB", func(b *testing.B) { runPoint(b, yield.ScenarioB, core.ModeULE) })
}

// BenchmarkSizingMethodology regenerates the Fig. 2 walkthrough (E4),
// reporting the sized cells. Paper's example: Pf = 1.22e-6.
func BenchmarkSizingMethodology(b *testing.B) {
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		b.Run("scenario"+s.String(), func(b *testing.B) {
			var res yield.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = yield.Run(yield.PaperInput(s))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PfTarget*1e6, "Pf-target-x1e6")
			b.ReportMetric(res.BaselineCell.Size, "10T-size")
			b.ReportMetric(res.ProposedCell.Size, "8T-size")
			b.ReportMetric(float64(len(res.Iterations)), "fig2-iterations")
		})
	}
}

// BenchmarkAreaModel regenerates the area comparison (E5), reporting the
// proposed design's total-area reduction in percent.
func BenchmarkAreaModel(b *testing.B) {
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		b.Run("scenario"+s.String(), func(b *testing.B) {
			var reduction float64
			for i := 0; i < b.N; i++ {
				base := core.MustNewSystem(core.PaperConfig(s, core.Baseline)).Area()
				prop := core.MustNewSystem(core.PaperConfig(s, core.Proposed)).Area()
				reduction = 100 * (1 - prop.Total()/base.Total())
			}
			b.ReportMetric(reduction, "area-saving-%")
		})
	}
}

// BenchmarkYieldEquations measures the Eq. (1)/(2) evaluation (E6).
func BenchmarkYieldEquations(b *testing.B) {
	g := yield.PaperWay()
	var y float64
	for i := 0; i < b.N; i++ {
		y = yield.WaySurvival(1.5e-4, g, 7, 7, 1)
	}
	b.ReportMetric(y, "way-yield")
}

// BenchmarkReliabilityCampaign measures the Monte-Carlo fault campaign
// (E7): silicon samples per second and the resulting MC yield.
func BenchmarkReliabilityCampaign(b *testing.B) {
	res, err := yield.Run(yield.PaperInput(yield.ScenarioA))
	if err != nil {
		b.Fatal(err)
	}
	g := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	usable, total := 0, 0
	for i := 0; i < b.N; i++ {
		m, err := faults.Generate(g, res.ProposedPf, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		total++
		if m.Usable(1) {
			usable++
		}
	}
	b.ReportMetric(float64(usable)/float64(total), "mc-yield")
}

// BenchmarkWaySplitAblation runs ablation A1 (7+1 vs 6+2).
func BenchmarkWaySplitAblation(b *testing.B) {
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		b.Fatal(err)
	}
	w = w.ScaledTo(benchInstructions)
	for _, ule := range []int{1, 2} {
		name := map[int]string{1: "7+1", 2: "6+2"}[ule]
		b.Run(name, func(b *testing.B) {
			var saving float64
			for i := 0; i < b.N; i++ {
				cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
				cb.ULEWays = ule
				cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
				cp.ULEWays = ule
				rb, err := core.MustNewSystem(cb).Run(w, core.ModeULE)
				if err != nil {
					b.Fatal(err)
				}
				rp, err := core.MustNewSystem(cp).Run(w, core.ModeULE)
				if err != nil {
					b.Fatal(err)
				}
				saving = 100 * (1 - rp.EPI.Total()/rb.EPI.Total())
			}
			b.ReportMetric(saving, "ULE-EPI-saving-%")
		})
	}
}

// BenchmarkMemLatencyAblation runs ablation A2 (trend stability).
func BenchmarkMemLatencyAblation(b *testing.B) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	w = w.ScaledTo(benchInstructions)
	for _, lat := range []int{10, 20, 40, 80} {
		b.Run(map[int]string{10: "lat10", 20: "lat20", 40: "lat40", 80: "lat80"}[lat], func(b *testing.B) {
			var saving float64
			for i := 0; i < b.N; i++ {
				cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
				cb.MemLatency = lat
				cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
				cp.MemLatency = lat
				rb, err := core.MustNewSystem(cb).Run(w, core.ModeHP)
				if err != nil {
					b.Fatal(err)
				}
				rp, err := core.MustNewSystem(cp).Run(w, core.ModeHP)
				if err != nil {
					b.Fatal(err)
				}
				saving = 100 * (1 - rp.EPI.Total()/rb.EPI.Total())
			}
			b.ReportMetric(saving, "HP-EPI-saving-%")
		})
	}
}

// BenchmarkSECDEDCodec measures raw encode+decode throughput of the
// Hsiao codec (microbenchmark backing the EDC energy/latency modelling).
func BenchmarkSECDEDCodec(b *testing.B) {
	c, err := ecc.NewSECDED(32)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		cw := c.Encode(uint64(i) & 0xFFFFFFFF)
		d, _ := c.Decode(cw ^ 1<<uint(i%39))
		sink += d
	}
	_ = sink
}

// BenchmarkDECTEDCodec measures the BCH DECTED codec with double-error
// correction on every word.
func BenchmarkDECTEDCodec(b *testing.B) {
	c, err := ecc.NewDECTED(32)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		cw := c.Encode(uint64(i) & 0xFFFFFFFF)
		d, _ := c.Decode(cw ^ 1<<uint(i%45) ^ 1<<uint((i*7)%45))
		sink += d
	}
	_ = sink
}

// BenchmarkImportanceSampling measures the Chen-style failure estimator.
func BenchmarkImportanceSampling(b *testing.B) {
	cell := bitcell.MustNew(bitcell.T10, 2.6)
	var pf float64
	for i := 0; i < b.N; i++ {
		pf = bitcell.MonteCarloFailureProb(cell, 0.35, 10_000, int64(i)).Pf
	}
	b.ReportMetric(pf*1e6, "Pf-x1e6")
}

// BenchmarkCorpusSweep is the decode-once before/after: the corpus
// sweeps as the experiment registry wires them — every workload on
// both designs across (scenario × mode), plus the corpus-miss capacity
// axis (ways 1..8) — once regenerating every workload stream per
// replay (the pre-arena behaviour) and once replaying shared slabs
// from one arena cache built inside the timed region, so generation
// happens exactly once per workload and is amortised across all twelve
// replays the grid performs. Metrics are bit-identical between the two
// variants (the determinism tests lock that in); only the wall clock
// moves.
func BenchmarkCorpusSweep(b *testing.B) {
	const sweepInstructions = 60_000
	workloads := bench.Full()
	for i := range workloads {
		workloads[i] = workloads[i].ScaledTo(sweepInstructions)
	}
	scenarios := []yield.Scenario{yield.ScenarioA, yield.ScenarioB}
	modes := []core.Mode{core.ModeHP, core.ModeULE}
	ways := []int{1, 2, 4, 8}
	// Size every system once, outside the timer: the sweep under test is
	// replay, not the design methodology.
	systems := map[yield.Scenario][2]*core.System{}
	for _, s := range scenarios {
		systems[s] = [2]*core.System{
			core.MustNewSystem(core.PaperConfig(s, core.Baseline)),
			core.MustNewSystem(core.PaperConfig(s, core.Proposed)),
		}
	}
	replays := 2*len(modes)*2 + len(ways) // full-system grid points + capacity points, per workload
	replayed := int64(replays * len(workloads) * sweepInstructions)
	sweep := func(b *testing.B, stream func(w bench.Workload) trace.Stream,
		run func(sys *core.System, w bench.Workload, m core.Mode) (core.Report, error)) {
		b.Helper()
		for _, s := range scenarios {
			for _, m := range modes {
				for _, w := range workloads {
					for _, sys := range systems[s] {
						if _, err := run(sys, w, m); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
		for _, w := range workloads {
			for _, k := range ways {
				dl1, err := cache.New(cache.Config{Sets: 32, Ways: k, LineBytes: 32})
				if err != nil {
					b.Fatal(err)
				}
				experiments.ReplayDataRefs(stream(w), dl1)
			}
		}
	}
	b.Run("generator", func(b *testing.B) {
		b.SetBytes(replayed)
		for i := 0; i < b.N; i++ {
			sweep(b, func(w bench.Workload) trace.Stream { return w.Stream() },
				func(sys *core.System, w bench.Workload, m core.Mode) (core.Report, error) {
					return sys.Run(w, m)
				})
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.SetBytes(replayed)
		for i := 0; i < b.N; i++ {
			arenas := bench.NewArenaCache() // built inside the timer: the sweep pays its one generation
			sweep(b, func(w bench.Workload) trace.Stream { return arenas.Get(w).Cursor() },
				func(sys *core.System, w bench.Workload, m core.Mode) (core.Report, error) {
					return sys.RunArena(w.Name, arenas.Get(w), m)
				})
		}
	})
	// The single-pass engine: per workload, every (scenario × design ×
	// mode) grid point joins one 8-member replay group over the shared
	// slab — one walk, one classification, deduplicated simulators —
	// and the capacity axis becomes one stack-distance profile pass
	// instead of one replay per associativity. SetBytes stays the
	// logical grid (the same replays' worth of results comes out), so
	// MB/s measures the speedup directly against the arena variant.
	b.Run("bank", func(b *testing.B) {
		var members []core.GroupMember
		for _, s := range scenarios {
			for _, m := range modes {
				for _, sys := range systems[s] {
					members = append(members, core.GroupMember{Sys: sys, Mode: m})
				}
			}
		}
		b.SetBytes(replayed)
		for i := 0; i < b.N; i++ {
			arenas := bench.NewArenaCache()
			for _, w := range workloads {
				if _, err := core.RunGroupArena(w.Name, arenas.Get(w), members); err != nil {
					b.Fatal(err)
				}
				prof := cache.MustNewStackProfile(cache.Config{Sets: 32, Ways: 8, LineBytes: 32})
				experiments.ProfileDataRefs(arenas.Get(w).Cursor(), prof)
				for _, k := range ways {
					if prof.Misses(k) > prof.Refs() {
						b.Fatal("impossible miss count")
					}
				}
			}
		}
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions per second) of the full system model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	w, err := bench.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	w = w.ScaledTo(benchInstructions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(w, core.ModeHP); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(benchInstructions))
}

// BenchmarkWCETAnalysis runs experiment E8: the WCET bound comparison
// between the EDC design and worst-case faulty-entry disabling.
func BenchmarkWCETAnalysis(b *testing.B) {
	body := make([]wcet.Access, 8)
	for i := range body {
		body[i] = wcet.Access{Line: uint32(i)}
	}
	loop := wcet.Loop{Name: "kernel", Body: body, Iterations: 1000, NonMemCycles: 24}
	spec := wcet.CacheSpec{Sets: 32, Ways: 1, HitLatency: 1, MissLatency: 20}
	var edcInfl, disInfl float64
	for i := 0; i < b.N; i++ {
		base, err := wcet.Analyze(spec, loop)
		if err != nil {
			b.Fatal(err)
		}
		edcSpec := spec
		edcSpec.HitLatency = 2
		edc, err := wcet.Analyze(edcSpec, loop)
		if err != nil {
			b.Fatal(err)
		}
		curve, err := wcet.InflationCurve(spec, loop, 7)
		if err != nil {
			b.Fatal(err)
		}
		edcInfl = 100 * (float64(edc.WCETCycles)/float64(base.WCETCycles) - 1)
		disInfl = 100 * (curve[7] - 1)
	}
	b.ReportMetric(edcInfl, "EDC-WCET-inflation-%")
	b.ReportMetric(disInfl, "disabling-WCET-inflation-%")
}

// BenchmarkDutyCycle measures the duty-cycled multi-phase simulation
// with mode switches (the sensor-node deployment scenario).
func BenchmarkDutyCycle(b *testing.B) {
	sys := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		b.Fatal(err)
	}
	big, err := bench.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	phases := []core.Phase{
		{Mode: core.ModeULE, Workload: small.ScaledTo(60000)},
		{Mode: core.ModeHP, Workload: big.ScaledTo(60000)},
		{Mode: core.ModeULE, Workload: small.ScaledTo(60000)},
	}
	var pw float64
	for i := 0; i < b.N; i++ {
		res, err := sys.RunDutyCycle(phases)
		if err != nil {
			b.Fatal(err)
		}
		pw = res.AvgPowerW() * 1e6
	}
	b.ReportMetric(pw, "avg-power-uW")
}

// BenchmarkHierarchyReplay measures what the second cache level costs
// the simulator: the same workload replayed single-level, through a
// private L1+L2 hierarchy, and as two streams contending for one shared
// L2 (instructions per second over all replayed streams). Each variant
// also reports its miss-stall share so throughput changes can be read
// against the timing work the L2 adds.
func BenchmarkHierarchyReplay(b *testing.B) {
	l2 := core.L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6}
	flat := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	tiered := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed).WithL2(l2))
	w, err := bench.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	w2, err := bench.ByName("ptrchase_l")
	if err != nil {
		b.Fatal(err)
	}
	w, w2 = w.ScaledTo(benchInstructions), w2.ScaledTo(benchInstructions)
	stallPct := func(rep core.Report) float64 {
		return 100 * float64(rep.Stats.MissCycles) / float64(rep.Stats.Cycles)
	}
	b.Run("l1only", func(b *testing.B) {
		b.SetBytes(int64(benchInstructions))
		var rep core.Report
		for i := 0; i < b.N; i++ {
			if rep, err = flat.Run(w, core.ModeHP); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(stallPct(rep), "stall-%")
	})
	b.Run("l1l2", func(b *testing.B) {
		b.SetBytes(int64(benchInstructions))
		var rep core.Report
		for i := 0; i < b.N; i++ {
			if rep, err = tiered.Run(w, core.ModeHP); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(stallPct(rep), "stall-%")
	})
	b.Run("sharedl2", func(b *testing.B) {
		b.SetBytes(2 * int64(benchInstructions))
		var reps []core.Report
		for i := 0; i < b.N; i++ {
			reps, err = tiered.RunShared(
				[]string{w.Name, w2.Name},
				[]trace.Stream{w.Stream(), w2.Stream()}, core.ModeHP)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric((stallPct(reps[0])+stallPct(reps[1]))/2, "stall-%")
	})
}

// BenchmarkInterleavedBurst measures the 4-way interleaved SECDED codec
// on full-length bursts (ablation A4's fault model).
func BenchmarkInterleavedBurst(b *testing.B) {
	c, err := ecc.NewInterleaved(ecc.KindSECDED, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	cw := c.Encode(0xDEADBEEF)
	n := ecc.TotalBits(c)
	var sink uint64
	for i := 0; i < b.N; i++ {
		start := i % (n - 4)
		d, _ := c.Decode(cw ^ 0xF<<uint(start))
		sink += d
	}
	_ = sink
}
