#!/usr/bin/env bash
# End-to-end smoke for the edcached service: build both binaries, start
# a server with no in-process workers, submit a job, SIGKILL the first
# external worker mid-run (its lease must expire and the shard be
# re-leased), let a replacement worker finish, and require the served
# result bytes to be identical to a solo cmd/experiments run of the
# same spec. No jq: job id and state are cut out with sed.
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"
work=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046 -- word-splitting the pid list is the point
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/edcached" ./cmd/edcached
go build -o "$work/experiments" ./cmd/experiments

spec='{"experiment":"headline","seed":3,"options":{"instructions":2000},"shards":4}'

# Golden bytes: the CLI running the same experiment, seed and options.
"$work/experiments" -run headline -instructions 2000 -seed 3 -format json \
  > "$work/golden.json"

"$work/edcached" -data "$work/data" -listen 127.0.0.1:0 -workers 0 \
  -lease-ttl 1s > "$work/server.log" &

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^edcached: listening on //p' "$work/server.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "edcached smoke: server never printed its address" >&2
  cat "$work/server.log" >&2
  exit 1
fi
base="http://$addr"
curl -fsS "$base/healthz" > /dev/null

job=$(curl -fsS -X POST "$base/jobs" -d "$spec" \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$job" ]; then
  echo "edcached smoke: job submission returned no id" >&2
  exit 1
fi

# First worker: killed hard mid-run. SIGKILL means no drain, no clean
# hand-back — recovery must come from lease expiry alone.
"$work/edcached" -worker -server "$base" -name doomed -poll 50ms \
  > /dev/null 2>&1 &
doomed=$!
sleep 0.3
{ kill -9 "$doomed" && wait "$doomed"; } 2>/dev/null || true

# The replacement claims the expired shards and finishes the job; every
# point the doomed worker checkpointed replays from the store.
"$work/edcached" -worker -server "$base" -name relief -poll 50ms \
  > /dev/null 2>&1 &

state=""
for _ in $(seq 1 300); do
  state=$(curl -fsS "$base/jobs/$job" \
    | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$state" in
    done) break ;;
    failed|cancelled|quarantined)
      echo "edcached smoke: job $job ended $state" >&2
      curl -fsS "$base/jobs/$job/events" >&2 || true
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$state" != done ]; then
  echo "edcached smoke: job $job never finished (state=$state)" >&2
  exit 1
fi

curl -fsS "$base/jobs/$job/result?format=json" > "$work/served.json"
cmp "$work/golden.json" "$work/served.json"
echo "edcached smoke: job $job survived a SIGKILLed worker; served bytes identical to cmd/experiments"
