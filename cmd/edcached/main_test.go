package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"edcache/internal/cli"
	"edcache/internal/edcached"
	"edcache/internal/sim"
)

// syncBuffer is a goroutine-safe stdout sink for a runCtx running in
// the background.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServerModeRequiresData(t *testing.T) {
	err := runCtx(context.Background(), nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-data") {
		t.Fatalf("server mode without -data accepted (err=%v)", err)
	}
}

func TestBadFlagsSurfaceAsErrBadFlags(t *testing.T) {
	if err := runCtx(context.Background(), []string{"-no-such-flag"}, io.Discard); !errors.Is(err, cli.ErrBadFlags) {
		t.Fatalf("want ErrBadFlags, got %v", err)
	}
}

// startServer launches runCtx in the background on an ephemeral port
// and returns the base URL plus a shutdown func that drains it and
// checks the exit error.
func startServer(t *testing.T, extra ...string) (base string, out *syncBuffer, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	args := append([]string{"-data", t.TempDir(), "-listen", "127.0.0.1:0"}, extra...)
	done := make(chan error, 1)
	go func() { done <- runCtx(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			base = "http://" + strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, out, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("server did not drain after cancel")
		}
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func waitDone(t *testing.T, base, id string) edcached.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := getBody(t, base+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job status %d: %s", code, body)
		}
		var st edcached.JobStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != edcached.JobDone {
				t.Fatalf("job ended %s: %s", st.State, st.Error)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submitHeadline posts the smoke job — the paper's headline table at a
// toy instruction count — and returns the job ID and the JSON bytes a
// solo in-process run of the same spec produces.
func submitHeadline(t *testing.T, base string) (id string, want string) {
	t.Helper()
	spec := `{"experiment":"headline","seed":3,"options":{"instructions":2000},"shards":3}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st edcached.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	reg := edcached.DefaultRegistry(edcached.GridOptions{Instructions: 2000})
	e, ok := reg.Get("headline")
	if !ok {
		t.Fatal("headline experiment missing from the default registry")
	}
	results, err := sim.Runner{Workers: 2, Seed: 3}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := sim.NewSink("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(results); err != nil {
		t.Fatal(err)
	}
	return st.ID, buf.String()
}

// TestServerSmoke drives the binary's driver end to end: boot on an
// ephemeral port, health checks, a real job from the default registry,
// result bytes identical to a solo run, graceful drain on ctx cancel.
func TestServerSmoke(t *testing.T) {
	base, out, shutdown := startServer(t, "-workers", "2", "-request-timeout", "30s")

	if code, body := getBody(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	id, want := submitHeadline(t, base)
	waitDone(t, base, id)
	code, got := getBody(t, base+fmt.Sprintf("/jobs/%s/result?format=json", id))
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, got)
	}
	if got != want {
		t.Fatalf("service result differs from solo run:\n--- service\n%s\n--- solo\n%s", got, want)
	}

	shutdown()
	if s := out.String(); !strings.Contains(s, "edcached: drained") {
		t.Fatalf("drain line missing from output:\n%s", s)
	}
}

// TestWorkerModeSmoke runs both CLI modes against each other: a server
// with no in-process workers and a -worker process body claiming its
// shards over HTTP. The job only finishes if the worker loop works.
func TestWorkerModeSmoke(t *testing.T) {
	base, _, shutdown := startServer(t, "-workers", "0", "-lease-ttl", "2s")
	defer shutdown()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- runCtx(wctx, []string{"-worker", "-server", base,
			"-name", "smoke-worker", "-poll", "10ms"}, io.Discard)
	}()

	id, want := submitHeadline(t, base)
	waitDone(t, base, id)
	_, got := getBody(t, base+fmt.Sprintf("/jobs/%s/result?format=json", id))
	if got != want {
		t.Fatal("worker-computed result differs from solo run")
	}
	// The job is terminal, so the event stream replays and ends; every
	// lease must name the external worker (the server has none of its own).
	_, events := getBody(t, base+fmt.Sprintf("/jobs/%s/events", id))
	if !strings.Contains(events, `"what":"leased","worker":"smoke-worker"`) {
		t.Fatalf("no lease event names the external worker:\n%s", events)
	}

	wcancel()
	select {
	case err := <-workerDone:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop on ctx cancel")
	}
}
