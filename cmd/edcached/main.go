// Command edcached serves the experiment engine over HTTP: sweep jobs
// are submitted as JSON, sharded under a lease protocol across
// in-process and external workers, checkpointed through the shared
// content-addressed result store, and streamed back as NDJSON progress
// events plus text/json/csv results — byte-identical to what a solo
// `experiments` run prints.
//
// Server mode:
//
//	edcached -data DIR [-listen 127.0.0.1:8344] [-workers N] [-queue N]
//	         [-shards N] [-lease-ttl 10s] [-deadline 0] [-retries 2]
//	         [-request-timeout 30s] [-drain-timeout 30s]
//
// The store lives at DIR/store and the job journal at DIR/jobs. The
// first SIGINT/SIGTERM drains: no new jobs or leases, in-flight shards
// checkpoint what they finished and exit, the journal keeps unfinished
// jobs resumable by the next server over the same -data. A second
// signal force-exits with status 130.
//
// Worker mode:
//
//	edcached -worker -server http://host:8344 [-name NAME] [-poll 500ms]
//
// A worker claims shards, computes them against the store directory the
// claim names (it must see the same filesystem as the server), and
// reports completion; the server re-reads every point from the store
// before accepting, so a lying or stale worker can delay a job but
// never corrupt it. See docs/EDCACHED.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"edcache/internal/cli"
	"edcache/internal/edcached"
	"edcache/internal/store"
)

func main() {
	cli.Main("edcached", run, nil)
}

// run wires the two-signal protocol: first signal drains, second
// force-exits 130.
func run(args []string, stdout io.Writer) error {
	ctx, stop := cli.SignalContext(context.Background(), cli.ForceExit("edcached"),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout)
}

// runCtx is the testable driver body.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("edcached", flag.ContinueOnError)
	var (
		workerMode = fs.Bool("worker", false, "run as an external shard worker instead of a server")
		server     = fs.String("server", "http://127.0.0.1:8344", "server base URL (worker mode)")
		name       = fs.String("name", "", "worker name shown in leases and events (worker mode; default worker-<pid>)")
		poll       = fs.Duration("poll", 500*time.Millisecond, "idle claim interval (worker mode)")

		data         = fs.String("data", "", "data directory: store at DIR/store, job journal at DIR/jobs (server mode, required)")
		listen       = fs.String("listen", "127.0.0.1:8344", "listen address (server mode)")
		workers      = fs.Int("workers", -1, "in-process shard workers (-1 = GOMAXPROCS, 0 = external workers only)")
		queue        = fs.Int("queue", 16, "live-job bound; submissions beyond it answer 429")
		shards       = fs.Int("shards", 8, "default shards per job (capped at the grid size)")
		leaseTTL     = fs.Duration("lease-ttl", 10*time.Second, "shard lease TTL between heartbeats")
		deadline     = fs.Duration("deadline", 0, "default per-job deadline (0 = none)")
		retries      = fs.Int("retries", 2, "transient-error retries per grid point")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "timeout for non-streaming HTTP requests")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a drain may take before the exit stops waiting")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	if *workerMode {
		wname := *name
		if wname == "" {
			wname = fmt.Sprintf("worker-%d", os.Getpid())
		}
		fmt.Fprintf(stdout, "edcached: worker %s claiming from %s\n", wname, *server)
		w := &edcached.Worker{Server: *server, Name: wname, Poll: *poll, Retries: *retries}
		return w.Run(ctx)
	}

	if *data == "" {
		return errors.New("-data DIR is required in server mode")
	}
	st, err := store.Open(filepath.Join(*data, "store"))
	if err != nil {
		return fmt.Errorf("open result store: %w", err)
	}
	w := *workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	srv, err := edcached.NewServer(edcached.Config{
		Store:           st,
		StoreDir:        filepath.Join(*data, "store"),
		JobsDir:         filepath.Join(*data, "jobs"),
		Workers:         w,
		QueueLimit:      *queue,
		DefaultShards:   *shards,
		LeaseTTL:        *leaseTTL,
		DefaultDeadline: *deadline,
		Retries:         *retries,
		RequestTimeout:  *reqTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edcached: listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Drain first — /readyz flips, jobs checkpoint and journal — then
	// shut the HTTP side down (event streams of resumable jobs are
	// long-lived by design; give them a moment, then cut them).
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	derr := srv.Drain(dctx)
	shCtx, shCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		hs.Close()
	}
	if derr != nil {
		return derr
	}
	fmt.Fprintln(stdout, "edcached: drained")
	return nil
}
