package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndVerifyRoundTrip(t *testing.T) {
	// The acceptance contract: -verify accepts both v1 and v2 files,
	// compressed or not, for paper and corpus workloads alike.
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"v1", []string{"-workload", "adpcm_c", "-format", "v1"}, "format v1 (uncompressed)"},
		{"v2", []string{"-workload", "adpcm_c"}, "format v2 (uncompressed)"},
		{"v2-gzip", []string{"-workload", "adpcm_c", "-gzip"}, "format v2 (gzip)"},
		{"v2-corpus", []string{"-workload", "ptrchase_s", "-gzip", "-chunk", "512"}, "format v2 (gzip)"},
		{"v2-phases", []string{"-workload", "phased_mix", "-phases"}, "phases: present"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "out.trace")
			var out bytes.Buffer
			args := append(tc.args, "-instructions", "5000", "-o", path)
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "wrote 5000 instructions") {
				t.Fatalf("unexpected generate output: %s", out.String())
			}
			out.Reset()
			if err := run([]string{"-verify", path}, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "5000 instructions") || !strings.Contains(out.String(), "valid") {
				t.Fatalf("unexpected verify output: %s", out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("verify output %q missing %q", out.String(), tc.want)
			}
		})
	}
}

func TestMissingFlags(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no flags accepted")
	}
	if err := run([]string{"-workload", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v3"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v1", "-gzip"}, &bytes.Buffer{}); err == nil {
		t.Fatal("v1 with -gzip accepted")
	}
	if err := run([]string{"-workload", "phased_mix", "-format", "v1", "-phases"}, &bytes.Buffer{}); err == nil {
		t.Fatal("v1 with -phases accepted")
	}
}

func TestVerifyReportsPhasePresence(t *testing.T) {
	dir := t.TempDir()

	// phased_mix with -phases: multiple distinct ids, counted per id.
	// 80k instructions at the registered 40k PhaseInsts covers phases
	// 0 and 1.
	phased := filepath.Join(dir, "phased.trace")
	if err := run([]string{"-workload", "phased_mix", "-phases", "-instructions", "80000", "-o", phased}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-verify", phased}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "phases: present — 0×40000 1×40000") {
		t.Errorf("verify output missing per-phase counts:\n%s", got)
	}

	// The same workload without -phases: the ids are dropped on write
	// and verify reports their absence.
	plain := filepath.Join(dir, "plain.trace")
	if err := run([]string{"-workload", "phased_mix", "-instructions", "5000", "-o", plain}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-verify", plain}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "phases: none") {
		t.Errorf("phase-less verify output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "warning") {
		t.Errorf("clean phase-less file triggered a warning:\n%s", out.String())
	}
}

func TestVerifyWarnsOnUnadvertisedPhaseBytes(t *testing.T) {
	// A phase-annotated body whose header lost the phase flag must be
	// called out, not silently replayed as phase 0.
	// Written without CRC/index so the body stays valid when the flag
	// word is zeroed (clearing bit 2/3 on a checksummed file would be a
	// different corruption, caught as such).
	path := filepath.Join(t.TempDir(), "stray.trace")
	if err := run([]string{"-workload", "phased_mix", "-phases", "-crc=false", "-index=false", "-instructions", "50000", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8], data[9], data[10], data[11] = 0, 0, 0, 0 // clear stream flags
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "phases: none") {
		t.Errorf("flag-less file reported phases:\n%s", got)
	}
	// 50k instructions: 40k in phase 0 (byte zero), 10k in phase 1.
	if !strings.Contains(got, "warning: 10000 records carry a non-zero phase byte") {
		t.Errorf("verify did not count the unadvertised phase bytes:\n%s", got)
	}
}

// TestVerifyReportsIntegrityCoverage pins the distinction -verify must
// draw: "every chunk checksum verified" versus "structurally well-formed
// but carrying no integrity data at all". The two used to collapse into
// one "valid" line.
func TestVerifyReportsIntegrityCoverage(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name      string
		args      []string
		integrity string
		index     string
	}{
		{"v21-default", nil,
			"integrity: per-chunk CRC32C",
			"index: seekable chunk index"},
		{"v2-bare", []string{"-crc=false", "-index=false"},
			"integrity: none — structural checks only",
			"index: none — sequential access only"},
		{"v2-gzip", []string{"-gzip"},
			"integrity: gzip stream CRC32",
			"index: none — sequential access only"},
		{"v1", []string{"-format", "v1"},
			"integrity: none — structural checks only",
			"index: none — sequential access only"},
		{"v21-crc-only", []string{"-index=false"},
			"integrity: per-chunk CRC32C",
			"index: none — sequential access only"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".trace")
			args := append([]string{"-workload", "adpcm_c", "-instructions", "5000", "-o", path}, tc.args...)
			if err := run(args, &bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run([]string{"-verify", path}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, tc.integrity) {
				t.Errorf("verify output missing %q:\n%s", tc.integrity, got)
			}
			if !strings.Contains(got, tc.index) {
				t.Errorf("verify output missing %q:\n%s", tc.index, got)
			}
		})
	}
}

// TestReindexUpgradesLegacyContainers covers the migration path: any
// pre-v2.1 container (v1 flat, bare v2, gzip v2) rewritten by -reindex
// must come out as an uncompressed, checksummed, indexed v2 file that
// replays the identical instruction count.
func TestReindexUpgradesLegacyContainers(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"v1", []string{"-format", "v1"}},
		{"v2-bare", []string{"-crc=false", "-index=false"}},
		{"v2-gzip", []string{"-gzip"}},
		{"v2-phases", []string{"-workload", "phased_mix", "-phases", "-crc=false", "-index=false"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := filepath.Join(dir, tc.name+".trace")
			args := []string{"-workload", "adpcm_c", "-instructions", "5000", "-o", src}
			if tc.args[0] == "-workload" {
				args = append(tc.args, "-instructions", "5000", "-o", src)
			} else {
				args = append(args, tc.args...)
			}
			if err := run(args, &bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			dst := filepath.Join(dir, tc.name+".indexed.trace")
			var out bytes.Buffer
			if err := run([]string{"-reindex", src, "-o", dst}, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "reindexed 5000 instructions") {
				t.Fatalf("unexpected reindex output: %s", out.String())
			}
			out.Reset()
			if err := run([]string{"-verify", dst}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			for _, want := range []string{
				"format v2 (uncompressed)", "5000 instructions",
				"integrity: per-chunk CRC32C", "index: seekable chunk index",
			} {
				if !strings.Contains(got, want) {
					t.Errorf("reindexed verify output missing %q:\n%s", want, got)
				}
			}
			if tc.name == "v2-phases" && !strings.Contains(got, "phases: present") {
				t.Errorf("reindex dropped the phase annotations:\n%s", got)
			}
		})
	}
}

func TestReindexInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := run([]string{"-workload", "adpcm_c", "-instructions", "3000", "-crc=false", "-index=false", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-reindex", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "integrity: per-chunk CRC32C") || !strings.Contains(got, "index: seekable chunk index") {
		t.Fatalf("in-place reindex did not upgrade the file:\n%s", got)
	}
	if _, err := os.Stat(path + ".reindex.tmp"); !os.IsNotExist(err) {
		t.Fatal("reindex temp file left behind")
	}
}

func TestReindexRejectsCorruptSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := run([]string{"-workload", "adpcm_c", "-instructions", "3000", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := path + ".out"
	if err := run([]string{"-reindex", path, "-o", dst}, &bytes.Buffer{}); err == nil {
		t.Fatal("reindex accepted a truncated source")
	}
	// A failed reindex must not leave a plausible-looking output behind.
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("failed reindex left an output file")
	}
}

func TestExplicitCRCIndexConflicts(t *testing.T) {
	// Explicit -crc/-index alongside -gzip contradict the format spec and
	// must error; the defaults are silently dropped instead (covered by
	// TestVerifyReportsIntegrityCoverage/v2-gzip).
	if err := run([]string{"-workload", "adpcm_c", "-gzip", "-crc"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-gzip with explicit -crc accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-gzip", "-index"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-gzip with explicit -index accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v1", "-crc"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-format v1 with explicit -crc accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v1", "-index"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-format v1 with explicit -index accepted")
	}
	// Explicit opt-outs compose fine with -gzip.
	path := filepath.Join(t.TempDir(), "ok.trace")
	if err := run([]string{"-workload", "adpcm_c", "-gzip", "-crc=false", "-index=false", "-instructions", "2000", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trace")
	if err := run([]string{"-workload", "adpcm_c", "-instructions", "2000", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the file: verify must fail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("truncated trace verified as valid")
	}
}
