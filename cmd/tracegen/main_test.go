package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndVerifyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adpcm_c.trace")
	var out bytes.Buffer
	if err := run([]string{"-workload", "adpcm_c", "-instructions", "5000", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 5000 instructions") {
		t.Fatalf("unexpected generate output: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-verify", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "5000 instructions") || !strings.Contains(out.String(), "valid") {
		t.Fatalf("unexpected verify output: %s", out.String())
	}
}

func TestMissingFlags(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no flags accepted")
	}
	if err := run([]string{"-workload", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
