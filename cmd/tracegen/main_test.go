package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndVerifyRoundTrip(t *testing.T) {
	// The acceptance contract: -verify accepts both v1 and v2 files,
	// compressed or not, for paper and corpus workloads alike.
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"v1", []string{"-workload", "adpcm_c", "-format", "v1"}, "format v1 (uncompressed)"},
		{"v2", []string{"-workload", "adpcm_c"}, "format v2 (uncompressed)"},
		{"v2-gzip", []string{"-workload", "adpcm_c", "-gzip"}, "format v2 (gzip)"},
		{"v2-corpus", []string{"-workload", "ptrchase_s", "-gzip", "-chunk", "512"}, "format v2 (gzip)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "out.trace")
			var out bytes.Buffer
			args := append(tc.args, "-instructions", "5000", "-o", path)
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "wrote 5000 instructions") {
				t.Fatalf("unexpected generate output: %s", out.String())
			}
			out.Reset()
			if err := run([]string{"-verify", path}, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "5000 instructions") || !strings.Contains(out.String(), "valid") {
				t.Fatalf("unexpected verify output: %s", out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("verify output %q missing %q", out.String(), tc.want)
			}
		})
	}
}

func TestMissingFlags(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no flags accepted")
	}
	if err := run([]string{"-workload", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v3"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-workload", "adpcm_c", "-format", "v1", "-gzip"}, &bytes.Buffer{}); err == nil {
		t.Fatal("v1 with -gzip accepted")
	}
}

func TestVerifyRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trace")
	if err := run([]string{"-workload", "adpcm_c", "-instructions", "2000", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the file: verify must fail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("truncated trace verified as valid")
	}
}
