// Command tracegen materialises a synthetic MediaBench-like workload as
// a binary trace file that cmd/hybridsim (and any Stream consumer) can
// replay byte-identically — the generate-once, replay-everywhere
// workflow of trace-driven evaluations.
//
// Usage:
//
//	tracegen -workload gsm_c -instructions 300000 -o gsm_c.trace
//	tracegen -verify gsm_c.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edcache/internal/bench"
	"edcache/internal/cli"
	"edcache/internal/trace"
)

func main() {
	cli.Main("tracegen", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "", "benchmark to generate (see hybridsim -list)")
		instructions = fs.Int("instructions", 300_000, "dynamic instruction count")
		out          = fs.String("o", "", "output trace file (default: <workload>.trace)")
		verify       = fs.String("verify", "", "validate an existing trace file and print its stats")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *verify != "" {
		return verifyTrace(*verify, stdout)
	}
	if *workload == "" {
		return fmt.Errorf("need -workload or -verify")
	}
	w, err := bench.ByName(*workload)
	if err != nil {
		return err
	}
	w = w.ScaledTo(*instructions)
	path := *out
	if path == "" {
		path = w.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := trace.Write(f, w.Stream())
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d instructions of %s to %s\n", n, w.Name, path)
	return nil
}

func verifyTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var n, loads, stores, branches int
	for {
		inst, ok := r.Next()
		if !ok {
			break
		}
		n++
		switch {
		case inst.IsLoad:
			loads++
		case inst.IsStore:
			stores++
		case inst.IsBranch:
			branches++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d instructions (%.1f%% loads, %.1f%% stores, %.1f%% branches) — valid\n",
		path, n, pct(loads, n), pct(stores, n), pct(branches, n))
	return nil
}

func pct(a, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(a) / float64(n)
}
