// Command tracegen materialises a synthetic workload — the paper suite
// or any extension-corpus generator (hybridsim -list shows all) — as a
// binary trace file that cmd/hybridsim (and any Stream consumer) can
// replay byte-identically: the generate-once, replay-everywhere
// workflow of trace-driven evaluations. Traces are written in format v2
// (chunked, streamable, optionally gzip-compressed) by default; -format
// v1 keeps the flat legacy container. See docs/TRACEFORMAT.md for the
// format spec.
//
// Usage:
//
//	tracegen -workload gsm_c -instructions 300000 -o gsm_c.trace
//	tracegen -workload ptrchase_l -gzip -o chase.trace.gz
//	tracegen -workload phased_mix -phases -o phased.trace
//	tracegen -verify gsm_c.trace
//	tracegen -reindex old.trace -o indexed.trace
//
// New uncompressed v2 traces carry per-chunk CRC32C checksums and a
// seekable chunk index (the v2.1 extensions, stream-flag bits 2 and 3)
// by default; -crc=false / -index=false opt out, and -gzip drops both
// (a gzip body checks itself and has no addressable chunks). -reindex
// rewrites an existing container (any version) as an uncompressed,
// checksummed, indexed v2 file — the migration path for archives that
// predate the extensions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edcache/internal/bench"
	"edcache/internal/cli"
	"edcache/internal/store"
	"edcache/internal/trace"
)

func main() {
	cli.Main("tracegen", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "", "benchmark to generate (see hybridsim -list)")
		instructions = fs.Int("instructions", 300_000, "dynamic instruction count")
		out          = fs.String("o", "", "output trace file (default: <workload>.trace)")
		format       = fs.String("format", "v2", "container format: v1 (flat) or v2 (chunked, streamable)")
		gzipBody     = fs.Bool("gzip", false, "gzip-compress the v2 body")
		chunk        = fs.Int("chunk", 0, "records per v2 chunk (0 = default)")
		phases       = fs.Bool("phases", false, "carry per-record phase ids (v2 stream-flag bit 1)")
		crc          = fs.Bool("crc", true, "append per-chunk CRC32C checksums (v2 stream-flag bit 2; dropped under -gzip)")
		index        = fs.Bool("index", true, "append a seekable chunk index (v2 stream-flag bit 3; dropped under -gzip)")
		verify       = fs.String("verify", "", "validate an existing trace file (v1 or v2) and print its stats")
		reindex      = fs.String("reindex", "", "rewrite an existing trace file as an uncompressed, checksummed, indexed v2 file (to -o, or in place)")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *verify != "" {
		return verifyTrace(*verify, stdout)
	}
	if *reindex != "" {
		return reindexTrace(*reindex, *out, *chunk, stdout)
	}
	if *workload == "" {
		return fmt.Errorf("need -workload, -verify or -reindex")
	}
	w, err := bench.ByName(*workload)
	if err != nil {
		return err
	}
	// A gzip body carries its own CRC and has no addressable chunks, so
	// the v2.1 extensions cannot combine with it: silently drop them
	// when they are mere defaults, reject the contradiction when the
	// user asked for both explicitly.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *gzipBody {
		if explicit["crc"] && *crc {
			return fmt.Errorf("-crc is incompatible with -gzip (the gzip stream carries its own CRC32)")
		}
		if explicit["index"] && *index {
			return fmt.Errorf("-index is incompatible with -gzip (gzip chunks have no addressable file offsets)")
		}
		*crc, *index = false, false
	}
	// Validate the option combination before touching the output path,
	// so a bad invocation cannot truncate an existing trace file.
	switch *format {
	case "v2":
		if *chunk < 0 || *chunk > trace.MaxChunkRecords {
			return fmt.Errorf("-chunk %d outside [0, %d]", *chunk, trace.MaxChunkRecords)
		}
	case "v1":
		if *gzipBody || *chunk != 0 || *phases {
			return fmt.Errorf("-gzip, -chunk and -phases need -format v2")
		}
		if explicit["crc"] && *crc || explicit["index"] && *index {
			return fmt.Errorf("-crc and -index need -format v2")
		}
	default:
		return fmt.Errorf("unknown format %q (want v1 or v2)", *format)
	}
	w = w.ScaledTo(*instructions)
	path := *out
	if path == "" {
		path = w.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var n int64
	if *format == "v2" {
		n, err = trace.WriteV2(f, w.Stream(), trace.V2Options{
			Compress: *gzipBody, ChunkRecords: *chunk, Phases: *phases,
			Checksums: *crc, Index: *index,
		})
	} else {
		var n1 int
		n1, err = trace.Write(f, w.Stream())
		n = int64(n1)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	suffix := ""
	if *phases {
		suffix = ", phase-annotated"
		if !w.HasPhases() {
			suffix = ", phase-annotated — note: generator emits a single phase 0"
		}
	}
	fmt.Fprintf(stdout, "wrote %d instructions of %s to %s (format %s%s)\n", n, w.Name, path, *format, suffix)
	return nil
}

func verifyTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var n, loads, stores, branches int
	var phaseCounts [256]int
	buf := make([]trace.Inst, 4096)
	for {
		c := r.NextBatch(buf)
		if c == 0 {
			break
		}
		for _, inst := range buf[:c] {
			switch {
			case inst.IsLoad:
				loads++
			case inst.IsStore:
				stores++
			case inst.IsBranch:
				branches++
			}
			phaseCounts[inst.Phase]++
		}
		n += c
	}
	if err := r.Err(); err != nil {
		return err
	}
	compression := "uncompressed"
	if r.Compressed() {
		compression = "gzip"
	}
	fmt.Fprintf(stdout, "%s: format v%d (%s), %d instructions (%.1f%% loads, %.1f%% stores, %.1f%% branches) — valid\n",
		path, r.Version(), compression, n, pct(loads, n), pct(stores, n), pct(branches, n))
	// Integrity coverage: say explicitly what "valid" rested on. A
	// stream can be structurally well-formed while carrying no
	// integrity data at all (v1, pre-CRC v2) — that is a different
	// statement from "every chunk checksum verified", and the report
	// must not conflate the two.
	switch {
	case r.HasChecksums():
		fmt.Fprintf(stdout, "integrity: per-chunk CRC32C — %d/%d chunks verified\n", r.Chunks(), r.Chunks())
	case r.Compressed():
		fmt.Fprintln(stdout, "integrity: gzip stream CRC32 (whole body; no per-chunk checksums)")
	default:
		fmt.Fprintln(stdout, "integrity: none — structural checks only (no per-chunk checksums; tracegen -reindex adds them)")
	}
	if r.HasIndex() {
		fmt.Fprintf(stdout, "index: seekable chunk index — %d entries cross-checked against the streamed chunks\n", r.Chunks())
	} else {
		fmt.Fprintln(stdout, "index: none — sequential access only (tracegen -reindex adds one)")
	}
	// Phase-id presence, per-id counts, and header/record mismatches.
	if r.HasPhases() {
		fmt.Fprintf(stdout, "phases: present —")
		for id, c := range phaseCounts {
			if c > 0 {
				fmt.Fprintf(stdout, " %d×%d", id, c)
			}
		}
		fmt.Fprintln(stdout)
	} else {
		fmt.Fprintln(stdout, "phases: none")
	}
	if stray := r.UnadvertisedPhaseBytes(); stray > 0 {
		fmt.Fprintf(stdout, "warning: %d records carry a non-zero phase byte but the stream does not advertise phases (flag bit 1 clear); they replay as phase 0\n", stray)
	}
	return nil
}

// reindexTrace rewrites an existing container (any version, compressed
// or not) as an uncompressed v2 file with per-chunk CRC32C checksums
// and a seekable chunk index — the migration path for archives written
// before the v2.1 extensions. The source is fully validated while
// streaming; phase annotations are preserved. With no -o the file is
// replaced in place via a temp file + rename, so a validation or write
// failure leaves the original untouched.
func reindexTrace(src, dst string, chunk int, stdout io.Writer) error {
	if chunk < 0 || chunk > trace.MaxChunkRecords {
		return fmt.Errorf("-chunk %d outside [0, %d]", chunk, trace.MaxChunkRecords)
	}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	inPlace := dst == "" || dst == src
	outPath := dst
	if inPlace {
		outPath = src + ".reindex.tmp"
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	n, werr := trace.WriteV2(out, r, trace.V2Options{
		ChunkRecords: chunk, Phases: r.HasPhases(),
		Checksums: true, Index: true,
	})
	if werr == nil {
		werr = r.Err() // source corruption surfaces here, after the drain
	}
	if werr == nil {
		// Seal the bytes before any rename can expose the new file: a
		// crash after an un-fsynced rename could leave a truncated
		// container under the original's name.
		werr = out.Sync()
	}
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(outPath)
		return fmt.Errorf("reindex %s: %w", src, werr)
	}
	if inPlace {
		if err := os.Rename(outPath, src); err != nil {
			os.Remove(outPath)
			return err
		}
		outPath = src
	}
	// Make the directory entry itself durable — the same discipline as
	// the result store (see docs/STORE.md): rename without a parent
	// fsync can be undone by a crash.
	if err := store.SyncDir(filepath.Dir(outPath)); err != nil {
		return fmt.Errorf("reindex %s: sync directory: %w", src, err)
	}
	fmt.Fprintf(stdout, "reindexed %d instructions from %s to %s (v2, per-chunk CRC32C, seekable index)\n", n, src, outPath)
	return nil
}

func pct(a, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(a) / float64(n)
}
