// Command tracegen materialises a synthetic workload — the paper suite
// or any extension-corpus generator (hybridsim -list shows all) — as a
// binary trace file that cmd/hybridsim (and any Stream consumer) can
// replay byte-identically: the generate-once, replay-everywhere
// workflow of trace-driven evaluations. Traces are written in format v2
// (chunked, streamable, optionally gzip-compressed) by default; -format
// v1 keeps the flat legacy container. See docs/TRACEFORMAT.md for the
// format spec.
//
// Usage:
//
//	tracegen -workload gsm_c -instructions 300000 -o gsm_c.trace
//	tracegen -workload ptrchase_l -gzip -o chase.trace.gz
//	tracegen -workload phased_mix -phases -o phased.trace
//	tracegen -verify gsm_c.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edcache/internal/bench"
	"edcache/internal/cli"
	"edcache/internal/trace"
)

func main() {
	cli.Main("tracegen", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload     = fs.String("workload", "", "benchmark to generate (see hybridsim -list)")
		instructions = fs.Int("instructions", 300_000, "dynamic instruction count")
		out          = fs.String("o", "", "output trace file (default: <workload>.trace)")
		format       = fs.String("format", "v2", "container format: v1 (flat) or v2 (chunked, streamable)")
		gzipBody     = fs.Bool("gzip", false, "gzip-compress the v2 body")
		chunk        = fs.Int("chunk", 0, "records per v2 chunk (0 = default)")
		phases       = fs.Bool("phases", false, "carry per-record phase ids (v2 stream-flag bit 1)")
		verify       = fs.String("verify", "", "validate an existing trace file (v1 or v2) and print its stats")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *verify != "" {
		return verifyTrace(*verify, stdout)
	}
	if *workload == "" {
		return fmt.Errorf("need -workload or -verify")
	}
	w, err := bench.ByName(*workload)
	if err != nil {
		return err
	}
	// Validate the option combination before touching the output path,
	// so a bad invocation cannot truncate an existing trace file.
	switch *format {
	case "v2":
		if *chunk < 0 || *chunk > trace.MaxChunkRecords {
			return fmt.Errorf("-chunk %d outside [0, %d]", *chunk, trace.MaxChunkRecords)
		}
	case "v1":
		if *gzipBody || *chunk != 0 || *phases {
			return fmt.Errorf("-gzip, -chunk and -phases need -format v2")
		}
	default:
		return fmt.Errorf("unknown format %q (want v1 or v2)", *format)
	}
	w = w.ScaledTo(*instructions)
	path := *out
	if path == "" {
		path = w.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var n int64
	if *format == "v2" {
		n, err = trace.WriteV2(f, w.Stream(), trace.V2Options{Compress: *gzipBody, ChunkRecords: *chunk, Phases: *phases})
	} else {
		var n1 int
		n1, err = trace.Write(f, w.Stream())
		n = int64(n1)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	suffix := ""
	if *phases {
		suffix = ", phase-annotated"
		if !w.HasPhases() {
			suffix = ", phase-annotated — note: generator emits a single phase 0"
		}
	}
	fmt.Fprintf(stdout, "wrote %d instructions of %s to %s (format %s%s)\n", n, w.Name, path, *format, suffix)
	return nil
}

func verifyTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var n, loads, stores, branches int
	var phaseCounts [256]int
	buf := make([]trace.Inst, 4096)
	for {
		c := r.NextBatch(buf)
		if c == 0 {
			break
		}
		for _, inst := range buf[:c] {
			switch {
			case inst.IsLoad:
				loads++
			case inst.IsStore:
				stores++
			case inst.IsBranch:
				branches++
			}
			phaseCounts[inst.Phase]++
		}
		n += c
	}
	if err := r.Err(); err != nil {
		return err
	}
	compression := "uncompressed"
	if r.Compressed() {
		compression = "gzip"
	}
	fmt.Fprintf(stdout, "%s: format v%d (%s), %d instructions (%.1f%% loads, %.1f%% stores, %.1f%% branches) — valid\n",
		path, r.Version(), compression, n, pct(loads, n), pct(stores, n), pct(branches, n))
	// Phase-id presence, per-id counts, and header/record mismatches.
	if r.HasPhases() {
		fmt.Fprintf(stdout, "phases: present —")
		for id, c := range phaseCounts {
			if c > 0 {
				fmt.Fprintf(stdout, " %d×%d", id, c)
			}
		}
		fmt.Fprintln(stdout)
	} else {
		fmt.Fprintln(stdout, "phases: none")
	}
	if stray := r.UnadvertisedPhaseBytes(); stray > 0 {
		fmt.Fprintf(stdout, "warning: %d records carry a non-zero phase byte but the stream does not advertise phases (flag bit 1 clear); they replay as phase 0\n", stray)
	}
	return nil
}

func pct(a, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(a) / float64(n)
}
