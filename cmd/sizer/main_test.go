package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSizerWalkthrough(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "B", "-vcc-ule", "350"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"8T+DECTED sizing loop", "meets baseline", "Per-data-bit comparison"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSizerJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name": "proposed_yield"`) {
		t.Fatalf("JSON output missing metrics:\n%s", out.String())
	}
}

func TestSizerBadScenario(t *testing.T) {
	if err := run([]string{"-scenario", "Z"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad scenario accepted")
	}
}
