// Command sizer runs the design methodology of Section III-C / Fig. 2 for
// a configurable operating point and prints the sizing walkthrough: the
// required fault-free Pf, the 6T/10T/8T cell sizes, yields, and every
// iteration of the 8T+EDC loop.
//
// Usage:
//
//	sizer [-scenario A|B] [-vcc-ule mV] [-yield Y] [-lines N] [-words-per-line N]
package main

import (
	"flag"
	"fmt"
	"os"

	"edcache/internal/bitcell"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

var (
	scenarioFlag = flag.String("scenario", "A", "reliability scenario: A (no baseline coding) or B (SECDED baseline)")
	vccULE       = flag.Float64("vcc-ule", 350, "ULE-mode supply voltage in millivolts")
	targetYield  = flag.Float64("yield", 0.99, "target cache yield")
	lines        = flag.Int("lines", 32, "lines per ULE way")
	wordsPerLine = flag.Int("words-per-line", 8, "32-bit data words per line")
)

func main() {
	flag.Parse()
	var s yield.Scenario
	switch *scenarioFlag {
	case "A", "a":
		s = yield.ScenarioA
	case "B", "b":
		s = yield.ScenarioB
	default:
		fmt.Fprintf(os.Stderr, "sizer: unknown scenario %q\n", *scenarioFlag)
		os.Exit(1)
	}
	in := yield.Input{
		Scenario:    s,
		Way:         yield.WayGeometry{Lines: *lines, WordsPerLine: *wordsPerLine, DataBits: 32, TagBits: 26},
		VccHP:       1.0,
		VccULE:      *vccULE / 1000,
		TargetYield: *targetYield,
	}
	res, err := yield.Run(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sizer: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("Design methodology — scenario %v, ULE Vcc %.0f mV, target yield %.2f%%\n\n",
		s, *vccULE, 100**targetYield)
	fmt.Printf("Step 0: fault-free Pf requirement over %d data bits: %.4g\n",
		in.Way.DataWords()*in.Way.DataBits, res.PfTarget)

	fmt.Printf("\nHP ways: %v sized at 1 V -> %v (Pf %.3g)\n", bitcell.T6, res.HPCell, res.HPCellPf)
	fmt.Printf("Baseline ULE way: %v sized at %.0f mV -> %v (Pf %.3g, yield %.5f)\n",
		bitcell.T10, *vccULE, res.BaselineCell, res.BaselinePf, res.BaselineYield)
	if res.UncodedFeasible {
		fmt.Printf("NOTE: plain 8T could reach the fault-free target at this point — EDC not strictly required here.\n")
	} else {
		fmt.Printf("Plain (uncoded) 8T cannot reach Pf %.3g at any size (failure floor %.3g): EDC required.\n",
			res.PfTarget, bitcell.MustNew(bitcell.T8, 1).FailureFloor(in.VccULE))
	}

	fmt.Printf("\n8T+%v sizing loop (Fig. 2):\n", s.ProposedCode())
	tb := stats.NewTable("iteration", "size", "Pf(8T)", "EDC-protected yield", "meets baseline")
	for i, it := range res.Iterations {
		tb.AddRow(fmt.Sprint(i+1), fmt.Sprintf("x%.2f", it.Size),
			fmt.Sprintf("%.4g", it.Pf8T), fmt.Sprintf("%.5f", it.Yield), fmt.Sprint(it.Met))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nResult: %v with %v (Pf %.3g, yield %.5f ≥ baseline %.5f)\n",
		res.ProposedCell, s.ProposedCode(), res.ProposedPf, res.ProposedYield, res.BaselineYield)

	c8, c10 := res.ProposedCell, res.BaselineCell
	overhead := float64(32+s.ProposedCode().CheckBits()) / 32
	fmt.Printf("\nPer-data-bit comparison at the sized cells (incl. %.0f%% check-bit overhead):\n", 100*(overhead-1))
	cmp := stats.NewTable("metric", "10T baseline", "8T+EDC proposed", "ratio")
	cmp.AddRow("area", f3(c10.AreaRel()), f3(c8.AreaRel()*overhead), f3(c8.AreaRel()*overhead/c10.AreaRel()))
	cmp.AddRow("dyn. capacitance", f3(c10.DynCapRel()), f3(c8.DynCapRel()*overhead), f3(c8.DynCapRel()*overhead/c10.DynCapRel()))
	cmp.AddRow("leakage @ULE", f3(c10.LeakRel(in.VccULE)), f3(c8.LeakRel(in.VccULE)*overhead), f3(c8.LeakRel(in.VccULE)*overhead/c10.LeakRel(in.VccULE)))
	fmt.Print(cmp.String())
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
