// Command sizer runs the design methodology of Section III-C / Fig. 2
// for a configurable operating point through the experiment engine and
// prints the sizing walkthrough: the required fault-free Pf, the
// 6T/10T/8T cell sizes, yields, and every iteration of the 8T+EDC loop.
//
// Usage:
//
//	sizer [-scenario A|B] [-vcc-ule mV] [-yield Y] [-lines N]
//	      [-words-per-line N] [-format text|json|csv]
package main

import (
	"flag"
	"fmt"
	"io"

	"edcache/internal/cli"
	"edcache/internal/experiments"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

func main() {
	cli.Main("sizer", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sizer", flag.ContinueOnError)
	var (
		scenarioFlag = fs.String("scenario", "A", "reliability scenario: A (no baseline coding) or B (SECDED baseline)")
		vccULE       = fs.Float64("vcc-ule", 350, "ULE-mode supply voltage in millivolts")
		targetYield  = fs.Float64("yield", 0.99, "target cache yield")
		lines        = fs.Int("lines", 32, "lines per ULE way")
		wordsPerLine = fs.Int("words-per-line", 8, "32-bit data words per line")
		format       = fs.String("format", "text", "output format: text, json or csv")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	var s yield.Scenario
	switch *scenarioFlag {
	case "A", "a":
		s = yield.ScenarioA
	case "B", "b":
		s = yield.ScenarioB
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioFlag)
	}
	exp := experiments.NewSizing(yield.Input{
		Scenario:    s,
		Way:         yield.WayGeometry{Lines: *lines, WordsPerLine: *wordsPerLine, DataBits: 32, TagBits: 26},
		VccHP:       1.0,
		VccULE:      *vccULE / 1000,
		TargetYield: *targetYield,
	})
	results, err := sim.Runner{}.Run(exp)
	if err != nil {
		return err
	}
	sink, err := sim.NewSink(*format, stdout)
	if err != nil {
		return err
	}
	return sink.Write(results)
}
