// Command edctool exercises the EDC codecs interactively: it encodes a
// data word, optionally flips or sticks chosen bits, and decodes,
// printing the codeword layout and the decoder's verdict. Useful for
// understanding exactly what the architecture's SECDED and DECTED words
// look like in the array.
//
// Usage:
//
//	edctool [-code secded|dected|parity] [-bits 32] [-data 0xDEADBEEF] [-flip 3,17,40]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edcache/internal/ecc"
)

var (
	codeFlag = flag.String("code", "secded", "code family: secded, dected or parity")
	bitsFlag = flag.Int("bits", 32, "data word width (paper: 32 for data, 26 for tags)")
	dataFlag = flag.String("data", "0xDEADBEEF", "data word (hex or decimal)")
	flipFlag = flag.String("flip", "", "comma-separated bit positions to flip in the codeword")
)

func main() {
	flag.Parse()

	var kind ecc.Kind
	switch strings.ToLower(*codeFlag) {
	case "secded":
		kind = ecc.KindSECDED
	case "dected":
		kind = ecc.KindDECTED
	case "parity":
		kind = ecc.KindParity
	default:
		fail(fmt.Errorf("unknown code %q", *codeFlag))
	}
	codec, err := ecc.New(kind, *bitsFlag)
	if err != nil {
		fail(err)
	}
	data, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(*dataFlag), "0x"), 16, 64)
	if err != nil {
		if data, err = strconv.ParseUint(*dataFlag, 0, 64); err != nil {
			fail(fmt.Errorf("cannot parse data %q", *dataFlag))
		}
	}
	data &= ecc.DataMask(codec)

	cw := codec.Encode(data)
	n := ecc.TotalBits(codec)
	fmt.Printf("%s: %d data bits + %d check bits = %d-bit codeword\n",
		codec.Name(), codec.DataBits(), codec.CheckBits(), n)
	fmt.Printf("data      : %#x\n", data)
	fmt.Printf("codeword  : %s   (check bits: %#x)\n", bits(cw, n), cw>>uint(codec.DataBits()))

	corrupted := cw
	if *flipFlag != "" {
		for _, f := range strings.Split(*flipFlag, ",") {
			pos, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || pos < 0 || pos >= n {
				fail(fmt.Errorf("bad flip position %q (codeword has %d bits)", f, n))
			}
			corrupted ^= 1 << uint(pos)
		}
		fmt.Printf("corrupted : %s   (flipped: %s)\n", bits(corrupted, n), *flipFlag)
	}

	got, res := codec.Decode(corrupted)
	fmt.Printf("decoded   : %#x   status: %v", got, res.Status)
	if res.Status == ecc.Corrected {
		fmt.Printf(" (%d bit(s) repaired)", res.Corrected)
	}
	fmt.Println()
	switch {
	case res.Status == ecc.Detected:
		fmt.Println("verdict   : uncorrectable — the architecture would signal a fault")
		os.Exit(2)
	case got == data:
		fmt.Println("verdict   : data recovered exactly")
	default:
		fmt.Println("verdict   : SILENT MISCORRECTION (error weight exceeded the code's guarantee)")
		os.Exit(3)
	}
}

func bits(v uint64, n int) string {
	var b strings.Builder
	for i := n - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if i%8 == 0 && i != 0 {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "edctool: %v\n", err)
	os.Exit(1)
}
