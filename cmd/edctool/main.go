// Command edctool exercises the EDC codecs interactively: it encodes a
// data word, optionally flips or sticks chosen bits, and decodes,
// printing the codeword layout and the decoder's verdict. Useful for
// understanding exactly what the architecture's SECDED and DECTED words
// look like in the array.
//
// Usage:
//
//	edctool [-code secded|dected|parity] [-bits 32] [-data 0xDEADBEEF] [-flip 3,17,40]
//
// Exit status: 0 on exact recovery, 2 on a detected-uncorrectable
// error, 3 on silent miscorrection, 4 on bad flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"edcache/internal/cli"
	"edcache/internal/ecc"
)

// Verdict errors map to the distinct exit codes scripted callers key on.
var (
	errUncorrectable = errors.New("uncorrectable — the architecture would signal a fault")
	errSilent        = errors.New("silent miscorrection (error weight exceeded the code's guarantee)")
)

func main() {
	cli.Main("edctool", run, func(err error) (int, bool) {
		switch {
		case errors.Is(err, errUncorrectable):
			return 2, true
		case errors.Is(err, errSilent):
			return 3, true
		case errors.Is(err, cli.ErrBadFlags):
			return 4, true // message already printed by the FlagSet
		default:
			return 0, false
		}
	})
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("edctool", flag.ContinueOnError)
	var (
		codeFlag = fs.String("code", "secded", "code family: secded, dected or parity")
		bitsFlag = fs.Int("bits", 32, "data word width (paper: 32 for data, 26 for tags)")
		dataFlag = fs.String("data", "0xDEADBEEF", "data word (hex or decimal)")
		flipFlag = fs.String("flip", "", "comma-separated bit positions to flip in the codeword")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	var kind ecc.Kind
	switch strings.ToLower(*codeFlag) {
	case "secded":
		kind = ecc.KindSECDED
	case "dected":
		kind = ecc.KindDECTED
	case "parity":
		kind = ecc.KindParity
	default:
		return fmt.Errorf("unknown code %q", *codeFlag)
	}
	codec, err := ecc.New(kind, *bitsFlag)
	if err != nil {
		return err
	}
	data, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(*dataFlag), "0x"), 16, 64)
	if err != nil {
		if data, err = strconv.ParseUint(*dataFlag, 0, 64); err != nil {
			return fmt.Errorf("cannot parse data %q", *dataFlag)
		}
	}
	data &= ecc.DataMask(codec)

	cw := codec.Encode(data)
	n := ecc.TotalBits(codec)
	fmt.Fprintf(stdout, "%s: %d data bits + %d check bits = %d-bit codeword\n",
		codec.Name(), codec.DataBits(), codec.CheckBits(), n)
	fmt.Fprintf(stdout, "data      : %#x\n", data)
	fmt.Fprintf(stdout, "codeword  : %s   (check bits: %#x)\n", bits(cw, n), cw>>uint(codec.DataBits()))

	corrupted := cw
	if *flipFlag != "" {
		for _, f := range strings.Split(*flipFlag, ",") {
			pos, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || pos < 0 || pos >= n {
				return fmt.Errorf("bad flip position %q (codeword has %d bits)", f, n)
			}
			corrupted ^= 1 << uint(pos)
		}
		fmt.Fprintf(stdout, "corrupted : %s   (flipped: %s)\n", bits(corrupted, n), *flipFlag)
	}

	got, res := codec.Decode(corrupted)
	fmt.Fprintf(stdout, "decoded   : %#x   status: %v", got, res.Status)
	if res.Status == ecc.Corrected {
		fmt.Fprintf(stdout, " (%d bit(s) repaired)", res.Corrected)
	}
	fmt.Fprintln(stdout)
	switch {
	case res.Status == ecc.Detected:
		fmt.Fprintln(stdout, "verdict   : uncorrectable — the architecture would signal a fault")
		return errUncorrectable
	case got == data:
		fmt.Fprintln(stdout, "verdict   : data recovered exactly")
		return nil
	default:
		fmt.Fprintln(stdout, "verdict   : SILENT MISCORRECTION (error weight exceeded the code's guarantee)")
		return errSilent
	}
}

func bits(v uint64, n int) string {
	var b strings.Builder
	for i := n - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if i%8 == 0 && i != 0 {
			b.WriteByte('_')
		}
	}
	return b.String()
}
