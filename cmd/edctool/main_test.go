package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCleanDecode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-code", "secded", "-data", "0xDEADBEEF"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "data recovered exactly") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestSingleFlipCorrected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-code", "secded", "-flip", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "repaired") {
		t.Fatalf("single flip not corrected:\n%s", out.String())
	}
}

func TestDoubleFlipDetected(t *testing.T) {
	err := run([]string{"-code", "secded", "-flip", "3,17"}, &bytes.Buffer{})
	if !errors.Is(err, errUncorrectable) {
		t.Fatalf("double flip under SECDED: err = %v, want uncorrectable", err)
	}
}

func TestDoubleFlipDECTEDCorrected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-code", "dected", "-flip", "3,17"}, &out); err != nil {
		t.Fatalf("double flip under DECTED: %v", err)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-code", "magic"},
		{"-data", "notanumber"},
		{"-flip", "999"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
