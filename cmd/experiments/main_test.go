package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/trace"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sizing", "fig3", "headline", "reliability", "a6-partition", "mc-sampling"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %q", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "yield", "-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"experiment": "yield"`) {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunWithTinyGridAndWorkers(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "headline,area", "-instructions", "2000", "-workers", "4", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "headline,scenario=A mode=HP") {
		t.Fatalf("CSV output missing headline rows:\n%s", out.String())
	}
}

func TestDeterministicOutputAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "8"} {
		var out bytes.Buffer
		err := run([]string{"-run", "reliability,mc-sampling", "-trials", "100",
			"-workers", workers, "-seed", "5", "-format", "json"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatal("-workers 1 and -workers 8 output differ")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestTraceFileSweep drives the capture-then-sweep loop through the
// CLI: a serialised workload becomes file-backed grid points of the
// corpus sweeps.
func TestTraceFileSweep(t *testing.T) {
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cap.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteV2(f, w.ScaledTo(2_000).Stream(), trace.V2Options{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-run", "corpus-miss", "-instructions", "2000",
		"-trace", path, "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:cap.trace") {
		t.Fatalf("sweep output missing the file-backed grid points:\n%s", out.String())
	}
	if err := run([]string{"-run", "corpus-miss", "-instructions", "2000",
		"-trace", filepath.Join(t.TempDir(), "missing.trace")}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
