package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"edcache/internal/bench"
	"edcache/internal/cli"
	"edcache/internal/trace"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sizing", "fig3", "headline", "reliability", "a6-partition", "mc-sampling"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %q", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "yield", "-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"experiment": "yield"`) {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunWithTinyGridAndWorkers(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-run", "headline,area", "-instructions", "2000", "-workers", "4", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "headline,scenario=A mode=HP") {
		t.Fatalf("CSV output missing headline rows:\n%s", out.String())
	}
}

func TestDeterministicOutputAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "8"} {
		var out bytes.Buffer
		err := run([]string{"-run", "reliability,mc-sampling", "-trials", "100",
			"-workers", workers, "-seed", "5", "-format", "json"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatal("-workers 1 and -workers 8 output differ")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestTraceFileSweep drives the capture-then-sweep loop through the
// CLI: a serialised workload becomes file-backed grid points of the
// corpus sweeps.
func TestTraceFileSweep(t *testing.T) {
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cap.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteV2(f, w.ScaledTo(2_000).Stream(), trace.V2Options{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-run", "corpus-miss", "-instructions", "2000",
		"-trace", path, "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:cap.trace") {
		t.Fatalf("sweep output missing the file-backed grid points:\n%s", out.String())
	}
	if err := run([]string{"-run", "corpus-miss", "-instructions", "2000",
		"-trace", filepath.Join(t.TempDir(), "missing.trace")}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// storeEntries lists the sealed checkpoint files under a -store dir,
// skipping the quarantine subtree.
func storeEntries(t *testing.T, dir string) []string {
	t.Helper()
	var entries []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && d.Name() == "quarantine" {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".res") {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(entries)
	return entries
}

// TestStoreResumeByteIdentical is the driver-level durability contract:
// a sweep checkpointed through -store, then "killed" partway (simulated
// by deleting a slice of its checkpoints and corrupting another), must
// resume with -resume at a different worker count and produce output
// byte-identical to an uninterrupted run without any store at all.
func TestStoreResumeByteIdentical(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{"-run", "headline,area", "-instructions", "2000",
			"-seed", "3", "-format", "json"}, extra...)
	}
	var golden bytes.Buffer
	if err := run(args(), &golden); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var first bytes.Buffer
	if err := run(args("-store", dir, "-workers", "2"), &first); err != nil {
		t.Fatal(err)
	}
	if first.String() != golden.String() {
		t.Fatal("store-backed run differs from plain run")
	}
	entries := storeEntries(t, dir)
	if len(entries) < 4 {
		t.Fatalf("only %d checkpoints written, fixture too weak", len(entries))
	}

	// Simulate the killed sweep: some grid points never checkpointed,
	// one checkpoint torn by the crash.
	var survivors []string
	for i, p := range entries {
		if i%3 == 0 {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		survivors = append(survivors, p)
	}
	corrupt, err := os.ReadFile(survivors[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt[len(corrupt)-1] ^= 0xFF
	if err := os.WriteFile(survivors[0], corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	var resumed bytes.Buffer
	if err := run(args("-store", dir, "-resume", "-workers", "5"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != golden.String() {
		t.Fatal("resumed run differs from uninterrupted run")
	}
}

func TestResumeRequiresStore(t *testing.T) {
	err := run([]string{"-resume", "-run", "area"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("-resume without -store accepted (err=%v)", err)
	}
}

// TestTaskErrorFlushesCompletedResults pins the failure path: a grid
// point that errors (here: a missing trace file) must still flush every
// result that completed before the failure stopped dispatch, and the
// run must report the error for the non-zero exit.
func TestTaskErrorFlushesCompletedResults(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing.trace")
	var out bytes.Buffer
	err := run([]string{"-run", "corpus", "-instructions", "2000",
		"-trace", missing, "-format", "csv", "-workers", "2"}, &out)
	if err == nil {
		t.Fatal("missing trace file did not fail the sweep")
	}
	if !strings.Contains(err.Error(), "missing.trace") {
		t.Fatalf("error does not name the failing source: %v", err)
	}
	if !strings.Contains(out.String(), "corpus,scenario=A") {
		t.Fatalf("completed results were not flushed before the failure:\n%s", out.String())
	}
}

// TestForceExitHelperProcess is not a test: re-exec'd by
// TestSecondSignalForcesExit with EXPERIMENTS_FORCE_EXIT=1, it wires
// run()'s exact signal protocol — cli.SignalContext with
// cli.ForceExit("experiments") — around a drain that never finishes,
// so the parent can drive the two-signal sequence against a real
// process and observe the real exit status.
func TestForceExitHelperProcess(t *testing.T) {
	if os.Getenv("EXPERIMENTS_FORCE_EXIT") != "1" {
		t.Skip("helper for TestSecondSignalForcesExit")
	}
	ctx, stop := cli.SignalContext(context.Background(), cli.ForceExit("experiments"),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Println("READY")
	<-ctx.Done()
	fmt.Println("DRAINING")
	time.Sleep(time.Minute) // a drain stuck on an in-flight grid point
	os.Exit(3)              // never reached when the force path works
}

// TestSecondSignalForcesExit pins the operator escape hatch: the first
// SIGINT starts the graceful drain, the second prints "forcing exit"
// and leaves with status 130 even though the drain is wedged.
func TestSecondSignalForcesExit(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestForceExitHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "EXPERIMENTS_FORCE_EXIT=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer killer.Stop()

	sc := bufio.NewScanner(out)
	waitLine := func(want string) {
		t.Helper()
		for sc.Scan() {
			if sc.Text() == want {
				return
			}
		}
		t.Fatalf("helper exited before printing %q (stderr: %s)", want, stderr.String())
	}
	waitLine("READY")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitLine("DRAINING")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	} // drain stdout so Wait can reap the pipe
	err = cmd.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 130 {
		t.Fatalf("want exit status 130, got %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "experiments: forcing exit") {
		t.Fatalf("stderr missing the forcing-exit line:\n%s", stderr.String())
	}
}

// TestInterruptExitsNonZero pins the signal path's plumbing: a
// cancelled context surfaces as context.Canceled from the driver body,
// which cli.Main turns into a non-zero exit.
func TestInterruptExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"-run", "area", "-instructions", "2000"}, &bytes.Buffer{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
