// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV) plus the ablations called out in DESIGN.md.
//
// Usage:
//
//	experiments [-instructions N] [-only sizing|yield|fig3|fig4|headline|area|reliability|wcet|ser|ablations]
//
// With no -only flag every experiment runs in order. See EXPERIMENTS.md
// for the paper-vs-measured record produced from this output.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"edcache/internal/bench"
	"edcache/internal/bitcell"
	"edcache/internal/core"
	"edcache/internal/ecc"
	"edcache/internal/energy"
	"edcache/internal/faults"
	"edcache/internal/stats"
	"edcache/internal/wcet"
	"edcache/internal/yield"
)

var (
	instructions = flag.Int("instructions", 300_000, "dynamic instructions per benchmark run")
	only         = flag.String("only", "", "run a single experiment: sizing|yield|fig3|fig4|headline|area|reliability|wcet|ser|ablations")
)

func main() {
	flag.Parse()
	steps := []struct {
		name string
		fn   func() error
	}{
		{"sizing", runSizing},
		{"yield", runYield},
		{"fig3", runFig3},
		{"fig4", runFig4},
		{"headline", runHeadline},
		{"area", runArea},
		{"reliability", runReliability},
		{"wcet", runWCET},
		{"ser", runSER},
		{"ablations", runAblations},
	}
	ran := false
	for _, s := range steps {
		if *only != "" && *only != s.name {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", s.name, err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n========== %s ==========\n\n", title)
}

func suite(m core.Mode) []bench.Workload {
	ws := core.PaperModeWorkloads(m)
	for i := range ws {
		ws[i] = ws[i].ScaledTo(*instructions)
	}
	return ws
}

// runSizing reproduces the Fig. 2 design methodology (experiment E4).
func runSizing() error {
	header("E4: design methodology (paper Fig. 2, Section III-C)")
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		res, err := yield.Run(yield.PaperInput(s))
		if err != nil {
			return err
		}
		fmt.Printf("Scenario %v (baseline code: %v, proposed code: %v)\n",
			s, s.BaselineCode(), s.ProposedCode())
		fmt.Printf("  Pf target (99%% yield, 8192 data bits): %.3g  [paper: 1.22e-6]\n", res.PfTarget)
		tb := stats.NewTable("array", "cell", "size", "Pf(bit)", "way yield")
		tb.AddRow("HP ways @1V", res.HPCell.Topo.String(), fmt.Sprintf("x%.2f", res.HPCell.Size),
			fmt.Sprintf("%.3g", res.HPCellPf), "-")
		tb.AddRow("ULE way baseline @350mV", res.BaselineCell.Topo.String(), fmt.Sprintf("x%.2f", res.BaselineCell.Size),
			fmt.Sprintf("%.3g", res.BaselinePf), fmt.Sprintf("%.5f", res.BaselineYield))
		tb.AddRow("ULE way proposed @350mV", res.ProposedCell.Topo.String(), fmt.Sprintf("x%.2f", res.ProposedCell.Size),
			fmt.Sprintf("%.3g", res.ProposedPf), fmt.Sprintf("%.5f", res.ProposedYield))
		fmt.Print(tb.String())
		fmt.Printf("  plain (uncoded) 8T can reach the fault-free target: %v  [paper premise: false]\n", res.UncodedFeasible)
		fmt.Printf("  8T+%v sizing iterations:\n", s.ProposedCode())
		it := stats.NewTable("iter", "size", "Pf(8T)", "yield", "meets baseline yield")
		for i, step := range res.Iterations {
			it.AddRow(fmt.Sprint(i+1), fmt.Sprintf("x%.2f", step.Size),
				fmt.Sprintf("%.3g", step.Pf8T), fmt.Sprintf("%.5f", step.Yield), fmt.Sprint(step.Met))
		}
		fmt.Print(it.String())
		fmt.Println()
	}
	return nil
}

// runYield prints the Eq. (1)/(2) validation (experiment E6).
func runYield() error {
	header("E6: yield equations (paper Eq. 1-2)")
	g := yield.PaperWay()
	fmt.Printf("ULE way geometry: %d data words x %d bits, %d tag words x %d bits\n",
		g.DataWords(), g.DataBits, g.TagWords(), g.TagBits)
	tb := stats.NewTable("Pf", "Y plain (tol 0)", "Y SECDED (tol 1)", "Y DECTED (tol 1)")
	for _, pf := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		tb.AddRow(fmt.Sprintf("%.0e", pf),
			fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 0, 0, 0)),
			fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 7, 7, 1)),
			fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 13, 13, 1)))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nRequiredPf(99%%, 8192 bits) = %.4g  [paper: 1.22e-6]\n",
		yield.RequiredPfBits(0.99, 8192))
	return nil
}

func printBars(title string, pairs []core.Pair) {
	fmt.Printf("%s  (D=L1 dynamic, L=L1 leakage, E=EDC, C=core; bar scale = baseline total)\n", title)
	for _, p := range pairs {
		nb := p.NormalizedBase()
		np := p.NormalizedProp()
		fmt.Println(stats.StackedBar(p.Workload+" base", []stats.Segment{
			{Rune: 'D', Value: nb.CacheDynamic}, {Rune: 'L', Value: nb.CacheLeakage},
			{Rune: 'E', Value: nb.EDC}, {Rune: 'C', Value: nb.Core}}, 1.0, 50))
		fmt.Println(stats.StackedBar(p.Workload+" prop", []stats.Segment{
			{Rune: 'D', Value: np.CacheDynamic}, {Rune: 'L', Value: np.CacheLeakage},
			{Rune: 'E', Value: np.EDC}, {Rune: 'C', Value: np.Core}}, 1.0, 50))
	}
}

// runFig3 regenerates Figure 3 (experiment E1).
func runFig3() error {
	header("E1: Fig. 3 — normalized average EPI at HP mode (BigBench)")
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		pairs, err := core.RunPairs(s, core.ModeHP, suite(core.ModeHP))
		if err != nil {
			return err
		}
		sum := core.Summarize(s, core.ModeHP, pairs)
		avg := core.Pair{Workload: "average", Base: core.Report{EPI: sum.AvgBase}, Prop: core.Report{EPI: sum.AvgProp}}
		printBars(fmt.Sprintf("Scenario %v", s), []core.Pair{avg})
		fmt.Printf("  average EPI saving: %.1f%%   [paper: %s]\n\n", sum.AvgSavingPct,
			map[yield.Scenario]string{yield.ScenarioA: "14%", yield.ScenarioB: "12%"}[s])
	}
	return nil
}

// runFig4 regenerates Figure 4 (experiment E2).
func runFig4() error {
	header("E2: Fig. 4 — normalized EPI breakdowns at ULE mode (SmallBench)")
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		pairs, err := core.RunPairs(s, core.ModeULE, suite(core.ModeULE))
		if err != nil {
			return err
		}
		sum := core.Summarize(s, core.ModeULE, pairs)
		printBars(fmt.Sprintf("Scenario %v", s), pairs)
		fmt.Printf("  average EPI saving: %.1f%%   [paper: %s]\n",
			sum.AvgSavingPct,
			map[yield.Scenario]string{yield.ScenarioA: "42%", yield.ScenarioB: "39%"}[s])
		fmt.Printf("  average execution-time increase: %.2f%%   [paper: ~3%%]\n\n", sum.AvgTimeIncreasePct)
	}
	return nil
}

// runHeadline prints the paper-vs-measured summary (experiment E3).
func runHeadline() error {
	header("E3: headline numbers (Section IV-B)")
	tb := stats.NewTable("scenario", "mode", "EPI saving (measured)", "EPI saving (paper)", "time increase (measured)", "time increase (paper)")
	paper := map[yield.Scenario]map[core.Mode]string{
		yield.ScenarioA: {core.ModeHP: "14%", core.ModeULE: "42%"},
		yield.ScenarioB: {core.ModeHP: "12%", core.ModeULE: "39%"},
	}
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
			pairs, err := core.RunPairs(s, m, suite(m))
			if err != nil {
				return err
			}
			sum := core.Summarize(s, m, pairs)
			wantTime := "0%"
			if m == core.ModeULE {
				wantTime = "~3%"
			}
			tb.AddRow(s.String(), m.String(),
				fmt.Sprintf("%.1f%%", sum.AvgSavingPct), paper[s][m],
				fmt.Sprintf("%.2f%%", sum.AvgTimeIncreasePct), wantTime)
		}
	}
	fmt.Print(tb.String())
	return nil
}

// runArea prints the area comparison (experiment E5).
func runArea() error {
	header("E5: area (Section IV-B; min-size 6T bitcell equivalents per cache)")
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		base := core.MustNewSystem(core.PaperConfig(s, core.Baseline)).Area()
		prop := core.MustNewSystem(core.PaperConfig(s, core.Proposed)).Area()
		tb := stats.NewTable("design", "HP ways", "ULE way", "codecs", "total", "vs baseline")
		tb.AddRow("baseline", f0(base.HPWays), f0(base.ULEWays), f0(base.Codecs), f0(base.Total()), "-")
		tb.AddRow("proposed", f0(prop.HPWays), f0(prop.ULEWays), f0(prop.Codecs), f0(prop.Total()),
			stats.Pct(prop.Total()/base.Total()-1))
		fmt.Printf("Scenario %v:\n%s", s, tb.String())
		fmt.Printf("  ULE way incl. codecs: baseline %.0f vs proposed %.0f (%s)\n\n",
			base.ULEWays+base.Codecs, prop.ULEWays+prop.Codecs,
			stats.Pct((prop.ULEWays+prop.Codecs)/(base.ULEWays+base.Codecs)-1))
	}
	return nil
}

// runReliability runs the Monte-Carlo yield-equivalence campaign (E7).
func runReliability() error {
	header("E7: reliability equivalence (Monte-Carlo fault campaigns)")
	const trials = 2000
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		res, err := yield.Run(yield.PaperInput(s))
		if err != nil {
			return err
		}
		bCheck := s.BaselineCode().CheckBits()
		pCheck := s.ProposedCode().CheckBits()
		gb := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 32 + bCheck, TagWordBits: 26 + bCheck}
		gp := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 32 + pCheck, TagWordBits: 26 + pCheck}
		usableB, usableP := 0, 0
		for i := int64(0); i < trials; i++ {
			mb, err := faults.Generate(gb, res.BaselinePf, rand.New(rand.NewSource(100000+i)))
			if err != nil {
				return err
			}
			if mb.Usable(0) {
				usableB++
			}
			mp, err := faults.Generate(gp, res.ProposedPf, rand.New(rand.NewSource(200000+i)))
			if err != nil {
				return err
			}
			if mp.Usable(1) {
				usableP++
			}
		}
		fmt.Printf("Scenario %v (%d silicon samples per design):\n", s, trials)
		tb := stats.NewTable("design", "MC yield", "analytic yield (Eq. 2)")
		tb.AddRow("baseline  (10T, 0 tolerable faults/word)",
			fmt.Sprintf("%.4f", float64(usableB)/trials), fmt.Sprintf("%.4f", res.BaselineYield))
		tb.AddRow(fmt.Sprintf("proposed  (8T+%v, 1 tolerable fault/word)", s.ProposedCode()),
			fmt.Sprintf("%.4f", float64(usableP)/trials), fmt.Sprintf("%.4f", res.ProposedYield))
		fmt.Print(tb.String())
		fmt.Println()
	}
	return nil
}

// runWCET runs experiment E8: the predictability argument of Sections
// I–II made quantitative. The paper rejects fault-disabling schemes
// ([21], [1], [7]) because disabled entries are die-dependent, so a WCET
// bound must assume worst-case fault placement; the EDC design instead
// pays a small deterministic latency. Analysed on the ULE-mode cache (32
// sets × 1 way) with a cache-fitting critical loop.
func runWCET() error {
	header("E8: WCET predictability — EDC vs faulty-entry disabling")
	body := make([]wcet.Access, 8)
	for i := range body {
		body[i] = wcet.Access{Line: uint32(i)}
	}
	loop := wcet.Loop{Name: "critical-kernel", Body: body, Iterations: 1000, NonMemCycles: 24}
	spec := wcet.CacheSpec{Sets: 32, Ways: 1, HitLatency: 1, MissLatency: 20}

	base, err := wcet.Analyze(spec, loop)
	if err != nil {
		return err
	}
	edcSpec := spec
	edcSpec.HitLatency = 2
	edc, err := wcet.Analyze(edcSpec, loop)
	if err != nil {
		return err
	}
	curve, err := wcet.InflationCurve(spec, loop, 8)
	if err != nil {
		return err
	}

	fmt.Printf("critical loop: %d refs/iteration, %d iterations, ULE-mode cache 32x1\n\n",
		len(body), loop.Iterations)
	tb := stats.NewTable("design", "WCET bound (cycles)", "vs fault-free", "die-dependent?")
	tb.AddRow("fault-free (10T baseline / 8T+EDC data)", fmt.Sprint(base.WCETCycles), "-", "no")
	tb.AddRow("proposed: +1 EDC cycle", fmt.Sprint(edc.WCETCycles),
		stats.Pct(float64(edc.WCETCycles)/float64(base.WCETCycles)-1), "no")
	for _, f := range []int{1, 2, 4, 7} {
		w := uint64(float64(base.WCETCycles) * curve[f])
		tb.AddRow(fmt.Sprintf("disabling, %d worst-case faulty lines", f),
			fmt.Sprint(w), stats.Pct(curve[f]-1), "YES")
	}
	fmt.Print(tb.String())
	fmt.Println("\n(the EDC bound conservatively charges every access the extra cycle — the measured")
	fmt.Println(" average slowdown is only ~3% — and it is deterministic across dies; 7 faulty lines")
	fmt.Println(" ≈ the expected fault count of a plain min-size 8T way at 350 mV, and the disabling")
	fmt.Println(" bound both explodes and varies per die — the paper's reason to reject entry")
	fmt.Println(" disabling for critical applications)")
	return nil
}

// runSER is experiment E9: the soft-error side of scenario B's
// "same reliability levels" claim. The proposed 8T+DECTED way has words
// whose correction budget is partly consumed by a hard fault; the DUE
// (detected-uncorrectable) rate under a Poisson soft-error process with
// periodic scrubbing must not regress the 10T+SECDED baseline's.
func runSER() error {
	header("E9: soft-error MTTF at ULE mode, scenario B (DECTED vs SECDED)")
	res, err := yield.Run(yield.PaperInput(yield.ScenarioB))
	if err != nil {
		return err
	}
	// Expected hard-faulty words of the sized 8T way: words × P(word
	// has ≥1 fault) ≈ words · n · Pf.
	const words = 256 + 32
	expFaulty := int(math.Round(words * 45 * res.ProposedPf))
	const lambda = 1e-13 // soft errors / bit / second (SER-class magnitude)
	fmt.Printf("sized 8T Pf = %.3g -> expected hard-faulty words per way: %d of %d\n\n",
		res.ProposedPf, expFaulty, words)
	tb := stats.NewTable("scrub interval", "baseline 10T+SECDED MTTF", "proposed 8T+DECTED MTTF")
	for _, scrub := range []float64{60, 3600, 86400} {
		base := []faults.WordClass{{Count: words, Bits: 39, TolerableSoft: 1}}
		prop := []faults.WordClass{
			{Count: words - expFaulty, Bits: 45, TolerableSoft: 2},
			{Count: expFaulty, Bits: 45, TolerableSoft: 1},
		}
		rb, err := faults.DUERate(base, lambda, scrub)
		if err != nil {
			return err
		}
		rp, err := faults.DUERate(prop, lambda, scrub)
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%.0fs", scrub),
			fmt.Sprintf("%.2e years", faults.MTTFYears(rb)),
			fmt.Sprintf("%.2e years", faults.MTTFYears(rp)))
	}
	fmt.Print(tb.String())
	fmt.Println("\n(the DECTED design's clean words survive two accumulated soft errors vs the")
	fmt.Println(" baseline's one, which more than covers the few words whose budget a hard fault")
	fmt.Println(" consumes — the proposed design does not regress soft-error reliability)")
	return nil
}

// runAblations runs A1 (way split), A2 (memory latency), A3 (EDC
// granularity), A4 (interleaving vs multi-bit upsets), A5 (ULE-way
// reuse at HP) and A6 (subarray partitioning).
func runAblations() error {
	header("A1: way-split ablation (7+1 vs 6+2, Section IV-A)")
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		return err
	}
	w = w.ScaledTo(*instructions)
	tb := stats.NewTable("split", "mode", "baseline EPI", "proposed EPI", "saving")
	for _, ule := range []int{1, 2} {
		for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
			cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
			cb.ULEWays = ule
			cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
			cp.ULEWays = ule
			rb, err := core.MustNewSystem(cb).Run(w, m)
			if err != nil {
				return err
			}
			rp, err := core.MustNewSystem(cp).Run(w, m)
			if err != nil {
				return err
			}
			tb.AddRow(fmt.Sprintf("%d+%d", 8-ule, ule), m.String(),
				f2(rb.EPI.Total()), f2(rp.EPI.Total()),
				stats.Pct(1-rp.EPI.Total()/rb.EPI.Total()))
		}
	}
	fmt.Print(tb.String())

	header("A2: memory-latency ablation (paper: trends unchanged)")
	g, err := bench.ByName("gsm_c")
	if err != nil {
		return err
	}
	g = g.ScaledTo(*instructions)
	tb2 := stats.NewTable("mem latency", "HP saving", "ULE saving")
	for _, lat := range []int{10, 20, 40, 80} {
		row := []string{fmt.Sprint(lat)}
		for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
			cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
			cb.MemLatency = lat
			cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
			cp.MemLatency = lat
			wl := g
			if m == core.ModeULE {
				wl, _ = bench.ByName("adpcm_c")
				wl = wl.ScaledTo(*instructions)
			}
			rb, err := core.MustNewSystem(cb).Run(wl, m)
			if err != nil {
				return err
			}
			rp, err := core.MustNewSystem(cp).Run(wl, m)
			if err != nil {
				return err
			}
			row = append(row, stats.Pct(1-rp.EPI.Total()/rb.EPI.Total()))
		}
		tb2.AddRow(row...)
	}
	fmt.Print(tb2.String())

	header("A3: EDC word-granularity ablation (check-bit overhead vs yield)")
	tb3 := stats.NewTable("granularity", "code", "check bits/word", "storage overhead", "way yield @ Pf=1.5e-4")
	for _, bitsPerWord := range []int{8, 16, 32} {
		codec, err := ecc.NewSECDEDMinimal(bitsPerWord)
		if err != nil {
			return err
		}
		words := 8192 / bitsPerWord
		gy := yield.WayGeometry{Lines: 32, WordsPerLine: words / 32, DataBits: bitsPerWord, TagBits: 26}
		y := yield.WaySurvival(1.5e-4, gy, codec.CheckBits(), 7, 1)
		overhead := float64(codec.CheckBits()) / float64(bitsPerWord)
		tb3.AddRow(fmt.Sprintf("%d-bit words", bitsPerWord), codec.Name(),
			fmt.Sprint(codec.CheckBits()), stats.Pct(overhead), fmt.Sprintf("%.5f", y))
	}
	fmt.Print(tb3.String())
	fmt.Println("\n(finer words: more overhead, higher yield; the paper's 32-bit choice balances both)")

	header("A4: bit interleaving vs multi-bit upsets (extension)")
	// At smaller nodes a single particle strike flips physically
	// adjacent cells. Compare plain SECDED(39,32) with a 4-way
	// interleaved SECDED over the same 32-bit word on bursts of
	// adjacent flips.
	plain, err := ecc.NewSECDED(32)
	if err != nil {
		return err
	}
	inter, err := ecc.NewInterleaved(ecc.KindSECDED, 8, 4)
	if err != nil {
		return err
	}
	tb4 := stats.NewTable("burst length", "plain SECDED(39,32)", "4x-interleaved SECDED", "interleaved check bits")
	for burst := 1; burst <= 4; burst++ {
		tb4.AddRow(fmt.Sprint(burst),
			burstOutcome(plain, burst), burstOutcome(inter, burst),
			fmt.Sprint(inter.CheckBits()))
	}
	fmt.Print(tb4.String())
	fmt.Println("\n(interleaving buys burst correction at 4x the check-bit overhead — the natural")
	fmt.Println(" extension of the architecture for MBU-prone deep-scaled nodes)")

	header("A5: reuse ULE ways at HP mode (Section III-A claim)")
	// "ULE ways are reused at HP mode, in spite of their inefficiency
	// at high Vcc, because they reduce the number of slow and
	// energy-hungry memory accesses."
	gw, err := bench.ByName("mpeg2_c") // needs more than the 7 KB of HP ways
	if err != nil {
		return err
	}
	gw = gw.ScaledTo(*instructions)
	// The paper excludes memory energy from its results but justifies the
	// reuse policy by the cost of memory accesses; this estimate makes
	// the trade visible (a highly-integrated few-MB memory at ~300 pJ
	// per access).
	const memAccessPJ = 300.0
	tb5 := stats.NewTable("policy", "DL1 miss rate", "exec time (ms)", "chip EPI (pJ)", "+est. memory EPI")
	for _, gate := range []bool{false, true} {
		cfg := core.PaperConfig(yield.ScenarioA, core.Proposed)
		cfg.GateULEWaysAtHP = gate
		rep, err := core.MustNewSystem(cfg).Run(gw, core.ModeHP)
		if err != nil {
			return err
		}
		name := "reuse ULE way (paper design)"
		if gate {
			name = "gate ULE way off at HP"
		}
		memEPI := memAccessPJ * float64(rep.Stats.DMisses+rep.Stats.IMisses) / float64(rep.Stats.Instructions)
		tb5.AddRow(name,
			fmt.Sprintf("%.3f%%", 100*float64(rep.Stats.DMisses)/float64(rep.Stats.DAccesses)),
			fmt.Sprintf("%.3f", rep.TimeNS/1e6),
			f2(rep.EPI.Total()),
			f2(rep.EPI.Total()+memEPI))
	}
	fmt.Print(tb5.String())
	fmt.Println("\n(gating the ULE way shrinks the HP-mode cache to 7 KB: more misses, a slower")
	fmt.Println(" reaction to the event burst, and — once memory accesses are priced in — more")
	fmt.Println(" total energy: the paper's reason to reuse the ULE ways at HP mode)")

	header("A6: CACTI-style subarray partitioning of the ULE way (model exploration)")
	sys := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	evals, best, err := energy.ExplorePartitions(sys.ULEWayArray(), 0.35, 39, 33, 16)
	if err != nil {
		return err
	}
	tb6 := stats.NewTable("partition (Ndwl x Ndbl)", "access energy (pJ)", "area", "leak (pJ/ns)", "")
	for i, ev := range evals {
		mark := ""
		if i == best {
			mark = "<- min energy"
		}
		tb6.AddRow(fmt.Sprintf("%dx%d", ev.Part.Ndwl, ev.Part.Ndbl),
			fmt.Sprintf("%.4f", ev.Energy), f0(ev.Area), fmt.Sprintf("%.5f", ev.Leak), mark)
	}
	fmt.Print(tb6.String())
	fmt.Println("\n(the flat model used by the main experiments is the 1x1 point; partitioning")
	fmt.Println(" shifts absolute energies but applies to baseline and proposed ways alike, so")
	fmt.Println(" the normalized comparisons of Figs. 3-4 are insensitive to it)")

	_ = bitcell.Vnom
	return nil
}

// burstOutcome classifies how a codec handles every adjacent burst of
// the given length across one codeword.
func burstOutcome(c ecc.Codec, burst int) string {
	data := uint64(0xA5A5A5A5) & ecc.DataMask(c)
	cw := c.Encode(data)
	n := ecc.TotalBits(c)
	corrected, detected, silent := 0, 0, 0
	for start := 0; start+burst <= n; start++ {
		corrupted := cw
		for b := 0; b < burst; b++ {
			corrupted ^= 1 << uint(start+b)
		}
		got, res := c.Decode(corrupted)
		switch {
		case res.Status == ecc.Detected:
			detected++
		case got == data:
			corrected++
		default:
			silent++
		}
	}
	total := n - burst + 1
	switch {
	case corrected == total:
		return "corrected (all)"
	case silent > 0:
		return fmt.Sprintf("UNSAFE: %d silent", silent)
	default:
		return fmt.Sprintf("%d corrected / %d detected", corrected, detected)
	}
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
