// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV) plus the ablations and sweeps, through the
// concurrent experiment engine (internal/sim). It is a thin driver over
// the internal/experiments registry.
//
// Usage:
//
//	experiments [-run name,...|all] [-workers N] [-format text|json|csv]
//	            [-seed S] [-instructions N] [-trials N] [-trace f.trace,...]
//	            [-l2 SETSxWAYS,...] [-l2lat N] [-store DIR] [-resume] [-list]
//
// Experiment names may be unique prefixes ("rel" for "reliability").
// For a fixed -seed, output is byte-identical for every -workers value.
// -trace adds captured trace files (tracegen output, live captures) to
// the corpus/corpus-miss/phase-epi sweeps as file-backed grid points;
// each file is decoded once and replayed from every point.
//
// -store DIR checkpoints every completed grid point into a crash-safe
// content-addressed result store; -resume additionally serves matching
// checkpoints as cache hits, so an interrupted sweep (Ctrl-C, crash,
// ENOSPC) picks up where it stopped. Entries are keyed by module
// version, the result-shaping options, the seed, and the grid
// coordinates — a stale or foreign store can only miss, never serve a
// wrong result, and resumed output stays byte-identical to an
// uninterrupted run. On interrupt or task failure the driver still
// writes every result that did complete, then exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"syscall"

	"edcache/internal/cli"
	"edcache/internal/experiments"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/store"
)

func main() {
	cli.Main("experiments", run, nil)
}

// run wires the process signals: the first Ctrl-C / SIGTERM cancels the
// sweep context — the Runner drains its pool, checkpoints what finished,
// and the partial results are flushed before the non-zero exit. A second
// signal means the drain itself is stuck (a huge in-flight task, a
// wedged disk): print "forcing exit" and leave immediately with 130.
func run(args []string, stdout io.Writer) error {
	ctx, stop := cli.SignalContext(context.Background(), cli.ForceExit("experiments"),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout)
}

// runCtx is the testable driver body.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runSel       = fs.String("run", "all", "experiments to run: comma-separated names, unique prefixes, or \"all\"")
		workers      = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		format       = fs.String("format", "text", "output format: text, json or csv")
		seed         = fs.Int64("seed", 0, "master seed for every Monte-Carlo campaign")
		instructions = fs.Int("instructions", 300_000, "dynamic instructions per benchmark run")
		trials       = fs.Int("trials", 2000, "silicon samples per reliability campaign")
		traceFiles   = fs.String("trace", "", "comma-separated captured .trace files to sweep as file-backed grid points (corpus, corpus-miss, phase-epi)")
		mapThreshold = fs.Int64("map-threshold", 0, "file size in bytes at which -trace files are mmapped instead of decoded into slabs (0 = 64 MiB default)")
		l2Geoms      = fs.String("l2", "", "comma-separated L2 geometries (SETSxWAYS) swept by hier-epi and shared-l2 (default 128x8,512x8)")
		l2Lat        = fs.Int("l2lat", 0, "L2 hit latency in cycles for the hierarchy sweeps (0 = default 6)")
		storeDir     = fs.String("store", "", "directory of the durable result store; every completed grid point is checkpointed there")
		resume       = fs.Bool("resume", false, "serve matching -store checkpoints as cache hits instead of recomputing (requires -store)")
		list         = fs.Bool("list", false, "list registered experiments and exit")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume requires -store DIR (there is nothing to resume from)")
	}

	var traces []string
	for _, t := range strings.Split(*traceFiles, ",") {
		if t = strings.TrimSpace(t); t != "" {
			traces = append(traces, t)
		}
	}
	var geoms []experiments.L2Geometry
	if *l2Geoms != "" {
		var err error
		if geoms, err = experiments.ParseL2Geometries(*l2Geoms); err != nil {
			return err
		}
	}
	opts := experiments.Options{
		Instructions: *instructions,
		Trials:       *trials,
		Workers:      *workers,
		TraceFiles:   traces,
		MapThreshold: *mapThreshold,
		L2Geometries: geoms,
		L2Latency:    *l2Lat,
	}
	reg := sim.NewRegistry()
	experiments.RegisterAll(reg, opts)

	if *list {
		tb := stats.NewTable("name", "grid", "description")
		for _, name := range reg.Names() {
			e, _ := reg.Get(name)
			tb.AddRow(name, fmt.Sprint(len(e.Grid())), e.Description())
		}
		fmt.Fprint(stdout, tb.String())
		return nil
	}

	names, err := reg.Resolve(*runSel)
	if err != nil {
		return err
	}
	sink, err := sim.NewSink(*format, stdout)
	if err != nil {
		return err
	}
	runner := sim.Runner{Workers: *workers, Seed: *seed}
	var cache *sim.StoreCache
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("open result store: %w", err)
		}
		// The scope is everything beyond the grid coordinates that can
		// change result bytes: the binary's module version and the
		// result-shaping options (Workers and -map-threshold are proven
		// result-neutral and deliberately absent — see CanonicalString).
		cache = &sim.StoreCache{
			Store: st,
			Scope: []string{store.ModuleVersion(), opts.CanonicalString(), "seed=" + strconv.FormatInt(*seed, 10)},
			Read:  *resume,
		}
		runner.Cache = cache
	}

	results, err := runner.RunAllContext(ctx, reg, names)
	if err != nil {
		// Flush what did complete — with -store it is checkpointed too,
		// so `-store DIR -resume` picks up from here — then exit non-zero.
		if len(results) > 0 {
			if werr := sink.Write(results); werr != nil {
				return fmt.Errorf("%w (and flushing %d partial results failed: %v)", err, len(results), werr)
			}
			fmt.Fprintf(os.Stderr, "experiments: flushed %d completed results before failing\n", len(results))
		}
		return err
	}
	if cache != nil {
		if st := cache.Stats(); st.Hits > 0 || st.PutErrors > 0 {
			fmt.Fprintf(os.Stderr, "experiments: store served %d of %d grid points; %d checkpoint writes failed\n",
				st.Hits, st.Hits+st.Misses, st.PutErrors)
		}
	}
	return sink.Write(results)
}
