// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV) plus the ablations and sweeps, through the
// concurrent experiment engine (internal/sim). It is a thin driver over
// the internal/experiments registry.
//
// Usage:
//
//	experiments [-run name,...|all] [-workers N] [-format text|json|csv]
//	            [-seed S] [-instructions N] [-trials N] [-trace f.trace,...]
//	            [-l2 SETSxWAYS,...] [-l2lat N] [-list]
//
// Experiment names may be unique prefixes ("rel" for "reliability").
// For a fixed -seed, output is byte-identical for every -workers value.
// -trace adds captured trace files (tracegen output, live captures) to
// the corpus/corpus-miss/phase-epi sweeps as file-backed grid points;
// each file is decoded once and replayed from every point.
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"edcache/internal/cli"
	"edcache/internal/experiments"
	"edcache/internal/sim"
	"edcache/internal/stats"
)

func main() {
	cli.Main("experiments", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runSel       = fs.String("run", "all", "experiments to run: comma-separated names, unique prefixes, or \"all\"")
		workers      = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		format       = fs.String("format", "text", "output format: text, json or csv")
		seed         = fs.Int64("seed", 0, "master seed for every Monte-Carlo campaign")
		instructions = fs.Int("instructions", 300_000, "dynamic instructions per benchmark run")
		trials       = fs.Int("trials", 2000, "silicon samples per reliability campaign")
		traceFiles   = fs.String("trace", "", "comma-separated captured .trace files to sweep as file-backed grid points (corpus, corpus-miss, phase-epi)")
		mapThreshold = fs.Int64("map-threshold", 0, "file size in bytes at which -trace files are mmapped instead of decoded into slabs (0 = 64 MiB default)")
		l2Geoms      = fs.String("l2", "", "comma-separated L2 geometries (SETSxWAYS) swept by hier-epi and shared-l2 (default 128x8,512x8)")
		l2Lat        = fs.Int("l2lat", 0, "L2 hit latency in cycles for the hierarchy sweeps (0 = default 6)")
		list         = fs.Bool("list", false, "list registered experiments and exit")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	var traces []string
	for _, t := range strings.Split(*traceFiles, ",") {
		if t = strings.TrimSpace(t); t != "" {
			traces = append(traces, t)
		}
	}
	var geoms []experiments.L2Geometry
	if *l2Geoms != "" {
		var err error
		if geoms, err = experiments.ParseL2Geometries(*l2Geoms); err != nil {
			return err
		}
	}
	reg := sim.NewRegistry()
	experiments.RegisterAll(reg, experiments.Options{
		Instructions: *instructions,
		Trials:       *trials,
		Workers:      *workers,
		TraceFiles:   traces,
		MapThreshold: *mapThreshold,
		L2Geometries: geoms,
		L2Latency:    *l2Lat,
	})

	if *list {
		tb := stats.NewTable("name", "grid", "description")
		for _, name := range reg.Names() {
			e, _ := reg.Get(name)
			tb.AddRow(name, fmt.Sprint(len(e.Grid())), e.Description())
		}
		fmt.Fprint(stdout, tb.String())
		return nil
	}

	names, err := reg.Resolve(*runSel)
	if err != nil {
		return err
	}
	sink, err := sim.NewSink(*format, stdout)
	if err != nil {
		return err
	}
	runner := sim.Runner{Workers: *workers, Seed: *seed}
	results, err := runner.RunAll(reg, names)
	if err != nil {
		return err
	}
	return sink.Write(results)
}
