package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestHybridsimSingleRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "adpcm_c", "-instructions", "3000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"configuration A/proposed at ULE mode", "EPI component", "L1 leakage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestHybridsimCompare(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-compare", "-instructions", "3000", "-scenario", "B", "-mode", "HP", "-workload", "gsm_c"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "proposed vs baseline") {
		t.Fatalf("compare output missing delta row:\n%s", out.String())
	}
}

func TestHybridsimList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mpeg2_d") {
		t.Fatalf("-list missing workloads:\n%s", out.String())
	}
}

func TestHybridsimBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "Z"},
		{"-mode", "turbo"},
		{"-design", "imaginary"},
		{"-workload", "nope", "-instructions", "1000"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
