// Command hybridsim runs one workload on one hybrid-cache configuration
// in one operating mode through the experiment engine and prints
// timing, cache behaviour and the EPI breakdown.
//
// Usage:
//
//	hybridsim [-scenario A|B] [-design baseline|proposed] [-mode HP|ULE]
//	          [-workload adpcm_c] [-instructions N] [-compare]
//	          [-format text|json|csv]
//
// With -compare the tool runs both designs (in parallel) and prints the
// delta.
package main

import (
	"flag"
	"fmt"
	"io"

	"edcache/internal/bench"
	"edcache/internal/cli"
	"edcache/internal/core"
	"edcache/internal/experiments"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

func main() {
	cli.Main("hybridsim", run, nil)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hybridsim", flag.ContinueOnError)
	var (
		scenarioFlag = fs.String("scenario", "A", "reliability scenario: A or B")
		designFlag   = fs.String("design", "proposed", "cache design: baseline or proposed")
		modeFlag     = fs.String("mode", "ULE", "operating mode: HP or ULE")
		workload     = fs.String("workload", "adpcm_c", "benchmark name (see -list)")
		traceFile    = fs.String("trace", "", "replay a binary trace file (from cmd/tracegen) instead of a generated workload")
		instructions = fs.Int("instructions", 300_000, "dynamic instruction count")
		compare      = fs.Bool("compare", false, "run both designs and print the comparison")
		list         = fs.Bool("list", false, "list available workloads and exit")
		format       = fs.String("format", "text", "output format: text, json or csv")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *list {
		tb := stats.NewTable("name", "suite", "pattern", "code", "data", "mode duty")
		for _, w := range bench.Full() {
			duty := "HP"
			if w.Suite == bench.SmallBench {
				duty = "ULE"
			}
			tb.AddRow(w.Name, w.Suite.String(), w.Pattern.String(),
				fmt.Sprintf("%dB", w.CodeBytes), fmt.Sprintf("%dB", w.DataBytes), duty)
		}
		fmt.Fprint(stdout, tb.String())
		return nil
	}

	var s yield.Scenario
	switch *scenarioFlag {
	case "A", "a":
		s = yield.ScenarioA
	case "B", "b":
		s = yield.ScenarioB
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioFlag)
	}
	var m core.Mode
	switch *modeFlag {
	case "HP", "hp":
		m = core.ModeHP
	case "ULE", "ule":
		m = core.ModeULE
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}
	designs := []core.Design{core.Baseline, core.Proposed}
	if !*compare {
		switch *designFlag {
		case "baseline":
			designs = []core.Design{core.Baseline}
		case "proposed":
			designs = []core.Design{core.Proposed}
		default:
			return fmt.Errorf("unknown design %q", *designFlag)
		}
	}

	exp := experiments.NewHybridRun(experiments.HybridSpec{
		Scenario:     s,
		Mode:         m,
		Designs:      designs,
		Workload:     *workload,
		TraceFile:    *traceFile,
		Instructions: *instructions,
	})
	results, err := sim.Runner{}.Run(exp)
	if err != nil {
		return err
	}
	sink, err := sim.NewSink(*format, stdout)
	if err != nil {
		return err
	}
	return sink.Write(results)
}
