// Command hybridsim runs one workload on one hybrid-cache configuration
// in one operating mode and prints timing, cache behaviour and the EPI
// breakdown.
//
// Usage:
//
//	hybridsim [-scenario A|B] [-design baseline|proposed] [-mode HP|ULE]
//	          [-workload adpcm_c] [-instructions N] [-compare]
//
// With -compare the tool runs both designs and prints the delta.
package main

import (
	"flag"
	"fmt"
	"os"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/stats"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

var (
	scenarioFlag = flag.String("scenario", "A", "reliability scenario: A or B")
	designFlag   = flag.String("design", "proposed", "cache design: baseline or proposed")
	modeFlag     = flag.String("mode", "ULE", "operating mode: HP or ULE")
	workload     = flag.String("workload", "adpcm_c", "benchmark name (see -list)")
	traceFile    = flag.String("trace", "", "replay a binary trace file (from cmd/tracegen) instead of a generated workload")
	instructions = flag.Int("instructions", 300_000, "dynamic instruction count")
	compare      = flag.Bool("compare", false, "run both designs and print the comparison")
	list         = flag.Bool("list", false, "list available workloads and exit")
)

func main() {
	flag.Parse()
	if *list {
		tb := stats.NewTable("name", "suite", "code", "data", "mode duty")
		for _, w := range bench.All() {
			duty := "HP"
			if w.Suite == bench.SmallBench {
				duty = "ULE"
			}
			tb.AddRow(w.Name, w.Suite.String(), fmt.Sprintf("%dB", w.CodeBytes), fmt.Sprintf("%dB", w.DataBytes), duty)
		}
		fmt.Print(tb.String())
		return
	}

	scenario, mode, err := parseFlags()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridsim: %v\n", err)
		os.Exit(1)
	}

	if *compare {
		rb := runOne(scenario, core.Baseline, mode)
		fmt.Println()
		rp := runOne(scenario, core.Proposed, mode)
		fmt.Printf("\nproposed vs baseline: EPI %s, execution time %s\n",
			stats.Pct(rp.EPI.Total()/rb.EPI.Total()-1), stats.Pct(rp.TimeNS/rb.TimeNS-1))
		return
	}

	design := core.Proposed
	if *designFlag == "baseline" {
		design = core.Baseline
	} else if *designFlag != "proposed" {
		fmt.Fprintf(os.Stderr, "hybridsim: unknown design %q\n", *designFlag)
		os.Exit(1)
	}
	runOne(scenario, design, mode)
}

// runStream executes either the named workload generator or, when
// -trace is given, a serialised trace file.
func runStream(sys *core.System, m core.Mode) (core.Report, error) {
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return core.Report{}, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return core.Report{}, err
		}
		rep, err := sys.RunStream(*traceFile, r, m)
		if err != nil {
			return core.Report{}, err
		}
		if r.Err() != nil {
			return core.Report{}, r.Err()
		}
		return rep, nil
	}
	w, err := bench.ByName(*workload)
	if err != nil {
		return core.Report{}, fmt.Errorf("%v (use -list)", err)
	}
	return sys.Run(w.ScaledTo(*instructions), m)
}

func parseFlags() (yield.Scenario, core.Mode, error) {
	var s yield.Scenario
	switch *scenarioFlag {
	case "A", "a":
		s = yield.ScenarioA
	case "B", "b":
		s = yield.ScenarioB
	default:
		return 0, 0, fmt.Errorf("unknown scenario %q", *scenarioFlag)
	}
	var m core.Mode
	switch *modeFlag {
	case "HP", "hp":
		m = core.ModeHP
	case "ULE", "ule":
		m = core.ModeULE
	default:
		return 0, 0, fmt.Errorf("unknown mode %q", *modeFlag)
	}
	return s, m, nil
}

func runOne(s yield.Scenario, d core.Design, m core.Mode) core.Report {
	sys, err := core.NewSystem(core.PaperConfig(s, d))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridsim: %v\n", err)
		os.Exit(1)
	}
	r, err := runStream(sys, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridsim: %v\n", err)
		os.Exit(1)
	}
	siz := sys.Sizing()
	fmt.Printf("configuration %s at %v mode (%.2f V, %.0f MHz), workload %s (%d instructions)\n",
		sys.Config().Name(), m, sys.Config().Vcc(m), sys.Config().FreqGHz(m)*1000, r.Workload, r.Stats.Instructions)
	fmt.Printf("  cells: HP ways %v | ULE way %v\n", siz.HPCell, sys.ULEWayArray().Cell)
	fmt.Printf("  cycles %d (CPI %.3f), time %.1f us, load-use stalls %d\n",
		r.Stats.Cycles, r.Stats.CPI(), r.TimeNS/1000, r.Stats.LoadUseStalls)
	fmt.Printf("  IL1 miss %.3f%%  DL1 miss %.3f%%\n",
		100*float64(r.Stats.IMisses)/float64(r.Stats.IAccesses),
		100*float64(r.Stats.DMisses)/float64(r.Stats.DAccesses))
	tb := stats.NewTable("EPI component", "pJ/instr", "share")
	tot := r.EPI.Total()
	tb.AddRow("L1 dynamic", f3(r.EPI.CacheDynamic), stats.Pct(r.EPI.CacheDynamic/tot))
	tb.AddRow("L1 leakage", f3(r.EPI.CacheLeakage), stats.Pct(r.EPI.CacheLeakage/tot))
	tb.AddRow("EDC codecs", f3(r.EPI.EDC), stats.Pct(r.EPI.EDC/tot))
	tb.AddRow("core/other", f3(r.EPI.Core), stats.Pct(r.EPI.Core/tot))
	tb.AddRow("total", f3(tot), "100.0%")
	fmt.Print(tb.String())
	return r
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
