// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI's bench-smoke step can archive a
// BENCH_<toolchain>.json benchmark trajectory next to the raw text —
// per-benchmark iteration counts, ns/op and every custom
// b.ReportMetric value (EPI savings, MB/s, cell sizes), keyed by unit.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//	benchjson bench-smoke.txt
//	benchjson -delta old.json new.json
//	benchjson -delta -fail-above 1.10 old.json new.json
//
// Lines that are not benchmark results (goos/pkg banners, PASS, ok)
// are skipped; the package of each benchmark is tracked from the
// interleaved "pkg:" banners.
//
// -delta compares two previously archived JSON trajectories and prints
// the per-benchmark ns/op ratio new/old (a ratio below 1 is a speedup)
// plus benchmarks present on only one side. The exit status is zero
// regardless of the ratios — the perf trajectory is informational —
// unless -fail-above is set, in which case any ratio exceeding the
// threshold fails the run (a CI perf gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"edcache/internal/cli"
)

func main() {
	cli.Main("benchjson", run, nil)
}

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit ("ns/op", "MB/s", "EPI-saving-%") to its
	// value; encoding/json emits keys sorted, so output is stable.
	Metrics map[string]float64 `json:"metrics"`
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output JSON file (default: stdout)")
	delta := fs.Bool("delta", false, "compare two archived JSON trajectories: print per-benchmark ns/op ratios new/old")
	failAbove := fs.Float64("fail-above", 0, "with -delta: fail when any ns/op ratio exceeds this value (0 disables the gate)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *delta {
		if fs.NArg() != 2 {
			return fmt.Errorf("-delta needs exactly two JSON files (old new), got %d", fs.NArg())
		}
		return runDelta(fs.Arg(0), fs.Arg(1), *failAbove, stdout)
	}
	in := io.Reader(os.Stdin)
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", len(rest))
	}
	results, err := Parse(in)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err := stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// tabWriter is the delta table's column formatter.
func tabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// loadResults reads one archived JSON trajectory.
func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return results, nil
}

// benchKey identifies a benchmark across trajectories. go test appends
// the GOMAXPROCS suffix ("-8") to parallel-capable names, which varies
// across machines; strip it so trajectories from different runners
// still line up.
func benchKey(r Result) string {
	name := r.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return r.Pkg + " " + name
}

// runDelta renders the per-benchmark ns/op ratio table of two archived
// trajectories and applies the optional -fail-above gate.
func runDelta(oldPath, newPath string, failAbove float64, stdout io.Writer) error {
	oldResults, err := loadResults(oldPath)
	if err != nil {
		return err
	}
	newResults, err := loadResults(newPath)
	if err != nil {
		return err
	}
	oldNs := make(map[string]float64, len(oldResults))
	for _, r := range oldResults {
		if ns, ok := r.Metrics["ns/op"]; ok {
			oldNs[benchKey(r)] = ns
		}
	}
	tw := tabWriter(stdout)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tratio\n")
	var worst float64
	var failing []string
	seen := make(map[string]bool, len(newResults))
	for _, r := range newResults {
		key := benchKey(r)
		seen[key] = true
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		old, ok := oldNs[key]
		if !ok || old == 0 {
			fmt.Fprintf(tw, "%s\t-\t%.6g\tnew\n", key, ns)
			continue
		}
		ratio := ns / old
		fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%.3fx\n", key, old, ns, ratio)
		if ratio > worst {
			worst = ratio
		}
		if failAbove > 0 && ratio > failAbove {
			failing = append(failing, fmt.Sprintf("%s (%.3fx)", key, ratio))
		}
	}
	var gone []string
	for key := range oldNs {
		if !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		fmt.Fprintf(tw, "%s\t%.6g\t-\tgone\n", key, oldNs[key])
	}
	tw.Flush()
	if worst > 0 {
		fmt.Fprintf(stdout, "worst ratio %.3fx (ns/op new/old; <1 is faster)\n", worst)
	}
	if len(failing) > 0 {
		return fmt.Errorf("%d benchmark(s) above the %.3fx gate: %s",
			len(failing), failAbove, strings.Join(failing, ", "))
	}
	return nil
}

// Parse reads `go test -bench` output and returns every benchmark
// result in order. Malformed benchmark lines are an error — silent
// drops would punch holes in the trajectory.
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; a
		// Benchmark-prefixed line whose second field is not an integer
		// (a --- FAIL header, prose) is not one and is skipped.
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// From here the line claims to be a result; a missing unit or a
		// truncated value/unit pair is corruption, not skippable noise.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: truncated benchmark line %q", line)
		}
		res := Result{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results in input")
	}
	return results, nil
}
