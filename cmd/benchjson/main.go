// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI's bench-smoke step can archive a
// BENCH_<toolchain>.json benchmark trajectory next to the raw text —
// per-benchmark iteration counts, ns/op and every custom
// b.ReportMetric value (EPI savings, MB/s, cell sizes), keyed by unit.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//	go test -bench . -count 5 . | benchjson -o BENCH.json
//	benchjson bench-smoke.txt
//	benchjson -delta old.json new.json
//	benchjson -delta -fail-above 1.10 old.json new.json
//
// Lines that are not benchmark results (goos/pkg banners, PASS, ok)
// are skipped; the package of each benchmark is tracked from the
// interleaved "pkg:" banners.
//
// Repeated samples of one benchmark — `go test -count=N` — collapse
// into a single Result holding the per-metric mean, the sample count,
// and a 95% confidence half-interval (Student's t), so an archived
// trajectory records a distribution, not a point.
//
// -delta compares two previously archived JSON trajectories and prints
// the per-benchmark ns/op ratio new/old (a ratio below 1 is a speedup)
// plus benchmarks present on only one side. The exit status is zero
// regardless of the ratios — the perf trajectory is informational —
// unless -fail-above is set, in which case the run fails for any
// benchmark whose whole ratio interval sits above the threshold:
// (newMean−newCI)/(oldMean+oldCI) > gate. Single-sample trajectories
// have zero-width intervals, so the gate degrades to a plain ratio
// comparison against old archives.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"edcache/internal/cli"
)

func main() {
	cli.Main("benchjson", run, nil)
}

// Result is one benchmark's aggregated samples (one line, or the
// -count=N repeats of one name collapsed).
type Result struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Count is the number of samples folded into this result; absent
	// (0) in pre-distribution archives, which read as single samples.
	Count int64 `json:"count,omitempty"`
	// Metrics maps a unit ("ns/op", "MB/s", "EPI-saving-%") to its
	// mean across samples; encoding/json emits keys sorted, so output
	// is stable.
	Metrics map[string]float64 `json:"metrics"`
	// CI maps a unit to its 95% confidence half-interval (Student's t
	// over Count samples); omitted for single samples.
	CI map[string]float64 `json:"ci,omitempty"`
}

// tQuant95 is the two-sided 95% Student's t quantile by degrees of
// freedom 1..30; beyond the table the normal quantile is close enough.
var tQuant95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tQuant95) {
		return tQuant95[df-1]
	}
	return 1.96
}

// meanCI reduces one metric's samples to (mean, 95% half-interval).
func meanCI(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	s := math.Sqrt(ss / (n - 1))
	return mean, tQuantile(len(xs)-1) * s / math.Sqrt(n)
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output JSON file (default: stdout)")
	delta := fs.Bool("delta", false, "compare two archived JSON trajectories: print per-benchmark ns/op ratios new/old")
	failAbove := fs.Float64("fail-above", 0, "with -delta: fail when any ns/op ratio exceeds this value (0 disables the gate)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *delta {
		if fs.NArg() != 2 {
			return fmt.Errorf("-delta needs exactly two JSON files (old new), got %d", fs.NArg())
		}
		return runDelta(fs.Arg(0), fs.Arg(1), *failAbove, stdout)
	}
	in := io.Reader(os.Stdin)
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", len(rest))
	}
	results, err := Parse(in)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err := stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// tabWriter is the delta table's column formatter.
func tabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// loadResults reads one archived JSON trajectory.
func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return results, nil
}

// benchKey identifies a benchmark across trajectories. go test appends
// the GOMAXPROCS suffix ("-8") to parallel-capable names, which varies
// across machines; strip it so trajectories from different runners
// still line up.
func benchKey(r Result) string {
	name := r.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return r.Pkg + " " + name
}

// nsDist is one side's ns/op distribution: mean and 95% half-interval
// (zero for single-sample archives).
type nsDist struct {
	mean, ci float64
}

func (d nsDist) String() string {
	if d.ci > 0 {
		return fmt.Sprintf("%.6g±%.2g", d.mean, d.ci)
	}
	return fmt.Sprintf("%.6g", d.mean)
}

// runDelta renders the per-benchmark ns/op ratio table of two archived
// trajectories and applies the optional -fail-above gate. The gate is
// interval-based: a benchmark fails only when even the optimistic end
// of its ratio interval — new lower bound over old upper bound —
// exceeds the threshold, so multi-sample archives don't trip it on
// run-to-run noise.
func runDelta(oldPath, newPath string, failAbove float64, stdout io.Writer) error {
	oldResults, err := loadResults(oldPath)
	if err != nil {
		return err
	}
	newResults, err := loadResults(newPath)
	if err != nil {
		return err
	}
	oldNs := make(map[string]nsDist, len(oldResults))
	for _, r := range oldResults {
		if ns, ok := r.Metrics["ns/op"]; ok {
			oldNs[benchKey(r)] = nsDist{mean: ns, ci: r.CI["ns/op"]}
		}
	}
	tw := tabWriter(stdout)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tratio\n")
	var worst float64
	var failing []string
	seen := make(map[string]bool, len(newResults))
	for _, r := range newResults {
		key := benchKey(r)
		seen[key] = true
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		fresh := nsDist{mean: ns, ci: r.CI["ns/op"]}
		old, ok := oldNs[key]
		if !ok || old.mean == 0 {
			fmt.Fprintf(tw, "%s\t-\t%s\tnew\n", key, fresh)
			continue
		}
		ratio := fresh.mean / old.mean
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3fx\n", key, old, fresh, ratio)
		if ratio > worst {
			worst = ratio
		}
		if failAbove > 0 && (fresh.mean-fresh.ci)/(old.mean+old.ci) > failAbove {
			failing = append(failing, fmt.Sprintf("%s (%.3fx)", key, ratio))
		}
	}
	var gone []string
	for key := range oldNs {
		if !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		fmt.Fprintf(tw, "%s\t%s\t-\tgone\n", key, oldNs[key])
	}
	tw.Flush()
	if worst > 0 {
		fmt.Fprintf(stdout, "worst ratio %.3fx (ns/op new/old; <1 is faster)\n", worst)
	}
	if len(failing) > 0 {
		return fmt.Errorf("%d benchmark(s) above the %.3fx gate: %s",
			len(failing), failAbove, strings.Join(failing, ", "))
	}
	return nil
}

// sample is one raw benchmark line before aggregation.
type benchLine struct {
	pkg, name string
	iters     int64
	metrics   map[string]float64
}

// Parse reads `go test -bench` output and returns every benchmark in
// first-appearance order, the -count=N repeats of one (pkg, name)
// folded into a mean-and-interval Result. Malformed benchmark lines
// are an error — silent drops would punch holes in the trajectory.
func Parse(r io.Reader) ([]Result, error) {
	var samples []benchLine
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; a
		// Benchmark-prefixed line whose second field is not an integer
		// (a --- FAIL header, prose) is not one and is skipped.
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// From here the line claims to be a result; a missing unit or a
		// truncated value/unit pair is corruption, not skippable noise.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: truncated benchmark line %q", line)
		}
		s := benchLine{pkg: pkg, name: fields[0], iters: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results in input")
	}
	return aggregate(samples), nil
}

// aggregate folds repeated samples of one (pkg, name) into a single
// distribution Result, preserving first-appearance order. Iterations
// accumulate across samples; each metric keeps its mean and 95% CI
// over the samples that reported it.
func aggregate(samples []benchLine) []Result {
	type group struct {
		first   int
		iters   int64
		count   int64
		metrics map[string][]float64
	}
	index := map[string]*group{}
	var order []*group
	for _, s := range samples {
		key := s.pkg + " " + s.name
		g, ok := index[key]
		if !ok {
			g = &group{first: len(order), metrics: map[string][]float64{}}
			index[key] = g
			order = append(order, g)
		}
		g.iters += s.iters
		g.count++
		for unit, v := range s.metrics {
			g.metrics[unit] = append(g.metrics[unit], v)
		}
	}
	results := make([]Result, len(order))
	for _, s := range samples {
		key := s.pkg + " " + s.name
		g := index[key]
		if results[g.first].Metrics != nil {
			continue
		}
		res := Result{Pkg: s.pkg, Name: s.name, Iterations: g.iters, Count: g.count,
			Metrics: map[string]float64{}}
		for unit, xs := range g.metrics {
			mean, ci := meanCI(xs)
			res.Metrics[unit] = mean
			if ci > 0 {
				if res.CI == nil {
					res.CI = map[string]float64{}
				}
				res.CI[unit] = ci
			}
		}
		results[g.first] = res
	}
	return results
}
