// Command benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI's bench-smoke step can archive a
// BENCH_<toolchain>.json benchmark trajectory next to the raw text —
// per-benchmark iteration counts, ns/op and every custom
// b.ReportMetric value (EPI savings, MB/s, cell sizes), keyed by unit.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//	benchjson bench-smoke.txt
//
// Lines that are not benchmark results (goos/pkg banners, PASS, ok)
// are skipped; the package of each benchmark is tracked from the
// interleaved "pkg:" banners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edcache/internal/cli"
)

func main() {
	cli.Main("benchjson", run, nil)
}

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit ("ns/op", "MB/s", "EPI-saving-%") to its
	// value; encoding/json emits keys sorted, so output is stable.
	Metrics map[string]float64 `json:"metrics"`
}

// run is the testable driver body.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output JSON file (default: stdout)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", len(rest))
	}
	results, err := Parse(in)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err := stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// Parse reads `go test -bench` output and returns every benchmark
// result in order. Malformed benchmark lines are an error — silent
// drops would punch holes in the trajectory.
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; a
		// Benchmark-prefixed line whose second field is not an integer
		// (a --- FAIL header, prose) is not one and is skipped.
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// From here the line claims to be a result; a missing unit or a
		// truncated value/unit pair is corruption, not skippable noise.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: truncated benchmark line %q", line)
		}
		res := Result{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results in input")
	}
	return results, nil
}
