package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: edcache
cpu: Intel(R) Xeon(R)
BenchmarkCorpusSweep/generator         	       3	 684058677 ns/op	  18.95 MB/s
BenchmarkCorpusSweep/arena             	       3	 395374507 ns/op	  32.78 MB/s
BenchmarkFig4ULEMode/scenarioA-8       	       1	 50659626 ns/op	        41.88 EPI-saving-%	         2.980 time-increase-%
PASS
ok  	edcache	13.157s
pkg: edcache/internal/bench
BenchmarkArenaReplay/arena-8           	     747	   1556239 ns/op	  64.26 MB/s
PASS
`

func TestParseSample(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	first := results[0]
	if first.Pkg != "edcache" || first.Name != "BenchmarkCorpusSweep/generator" || first.Iterations != 3 {
		t.Fatalf("first result = %+v", first)
	}
	if first.Metrics["ns/op"] != 684058677 || first.Metrics["MB/s"] != 18.95 {
		t.Fatalf("first metrics = %+v", first.Metrics)
	}
	fig4 := results[2]
	if fig4.Metrics["EPI-saving-%"] != 41.88 || fig4.Metrics["time-increase-%"] != 2.980 {
		t.Fatalf("custom ReportMetric values lost: %+v", fig4.Metrics)
	}
	if results[3].Pkg != "edcache/internal/bench" {
		t.Fatalf("pkg banner not tracked: %+v", results[3])
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
}

func TestParseRejectsTruncatedResultLine(t *testing.T) {
	// A value with its unit torn off must error, not silently punch a
	// hole in the trajectory.
	in := "BenchmarkX/arena 3 395374507 ns/op 32.78\n"
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("truncated result line accepted")
	}
	// Non-result Benchmark-prefixed lines are still skippable noise.
	res, err := Parse(strings.NewReader("--- FAIL: BenchmarkY\nBenchmarkY failed somehow\n" + sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4", len(res))
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH.json")
	if err := run([]string{"-o", out, in}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || results[1].Name != "BenchmarkCorpusSweep/arena" {
		t.Fatalf("decoded %+v", results)
	}
}

// writeTrajectory archives a tiny JSON trajectory for the delta tests.
func writeTrajectory(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeltaRatiosAndMachineSuffix(t *testing.T) {
	dir := t.TempDir()
	// The old run came from an 8-core machine (the -8 suffix), the new
	// one from a 4-core one: names must still line up.
	old := writeTrajectory(t, dir, "old.json", []Result{
		{Pkg: "edcache", Name: "BenchmarkA-8", Iterations: 10, Metrics: map[string]float64{"ns/op": 100}},
		{Pkg: "edcache", Name: "BenchmarkGone", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}},
	})
	fresh := writeTrajectory(t, dir, "new.json", []Result{
		{Pkg: "edcache", Name: "BenchmarkA-4", Iterations: 10, Metrics: map[string]float64{"ns/op": 50}},
		{Pkg: "edcache", Name: "BenchmarkNew", Iterations: 1, Metrics: map[string]float64{"ns/op": 7}},
	})
	var out bytes.Buffer
	if err := run([]string{"-delta", old, fresh}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"0.500x", "new", "gone", "worst ratio 0.500x"} {
		if !strings.Contains(got, want) {
			t.Errorf("delta output missing %q:\n%s", want, got)
		}
	}
}

func TestDeltaFailAboveGate(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
	})
	slow := writeTrajectory(t, dir, "new.json", []Result{
		{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"ns/op": 150}},
	})
	// Informational mode never fails on ratios.
	if err := run([]string{"-delta", old, slow}, &bytes.Buffer{}); err != nil {
		t.Fatalf("ungated delta failed: %v", err)
	}
	// The gate trips on a 1.5x regression...
	err := run([]string{"-delta", "-fail-above", "1.10", old, slow}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "above the 1.100x gate") {
		t.Fatalf("gate did not trip: %v", err)
	}
	// ...and stays quiet below the threshold.
	if err := run([]string{"-delta", "-fail-above", "2.0", old, slow}, &bytes.Buffer{}); err != nil {
		t.Fatalf("gate tripped below threshold: %v", err)
	}
}

func TestParseAggregatesRepeatedSamples(t *testing.T) {
	// `go test -count=3` repeats each benchmark name; the trajectory
	// must hold one entry with the mean and a t-based 95% interval.
	in := `pkg: edcache
BenchmarkA 10 100 ns/op 5.0 MB/s
BenchmarkA 12 110 ns/op 7.0 MB/s
BenchmarkA 11 120 ns/op 6.0 MB/s
BenchmarkB 1 50 ns/op
`
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2 aggregated", len(results))
	}
	a := results[0]
	if a.Name != "BenchmarkA" || a.Count != 3 || a.Iterations != 33 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.Metrics["ns/op"] != 110 || a.Metrics["MB/s"] != 6 {
		t.Fatalf("means = %+v", a.Metrics)
	}
	// s = 10 over 3 samples, t(2) = 4.303: half-interval 4.303*10/sqrt(3).
	want := 4.303 * 10 / math.Sqrt(3)
	if ci := a.CI["ns/op"]; math.Abs(ci-want) > 1e-9 {
		t.Fatalf("ns/op CI = %g, want %g", ci, want)
	}
	b := results[1]
	if b.Count != 1 || b.CI != nil {
		t.Fatalf("single sample got an interval: %+v", b)
	}
}

func TestMeanCIZeroVariance(t *testing.T) {
	mean, ci := meanCI([]float64{42, 42, 42, 42})
	if mean != 42 || ci != 0 {
		t.Fatalf("meanCI = %g ± %g, want 42 ± 0", mean, ci)
	}
}

func TestDeltaGateUsesIntervals(t *testing.T) {
	dir := t.TempDir()
	// Old mean 100±30, new mean 140±30: the ratio point is 1.40 but the
	// intervals overlap the 1.10 gate — (140-30)/(100+30) ≈ 0.85 — so a
	// noisy rerun must not trip it.
	old := writeTrajectory(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", Iterations: 5, Count: 5,
			Metrics: map[string]float64{"ns/op": 100}, CI: map[string]float64{"ns/op": 30}},
	})
	noisy := writeTrajectory(t, dir, "noisy.json", []Result{
		{Name: "BenchmarkA", Iterations: 5, Count: 5,
			Metrics: map[string]float64{"ns/op": 140}, CI: map[string]float64{"ns/op": 30}},
	})
	if err := run([]string{"-delta", "-fail-above", "1.10", old, noisy}, &bytes.Buffer{}); err != nil {
		t.Fatalf("gate tripped inside the noise interval: %v", err)
	}
	// A tight distribution at the same means is a real regression.
	tightOld := writeTrajectory(t, dir, "tight_old.json", []Result{
		{Name: "BenchmarkA", Iterations: 5, Count: 5,
			Metrics: map[string]float64{"ns/op": 100}, CI: map[string]float64{"ns/op": 2}},
	})
	tightNew := writeTrajectory(t, dir, "tight_new.json", []Result{
		{Name: "BenchmarkA", Iterations: 5, Count: 5,
			Metrics: map[string]float64{"ns/op": 140}, CI: map[string]float64{"ns/op": 2}},
	})
	err := run([]string{"-delta", "-fail-above", "1.10", tightOld, tightNew}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "above the 1.100x gate") {
		t.Fatalf("confident regression not gated: %v", err)
	}
	// Pre-distribution archives (no count/ci fields) degrade to the
	// plain ratio comparison — TestDeltaFailAboveGate covers the trip;
	// here the interval rendering must not leak into their table.
	var out bytes.Buffer
	if err := run([]string{"-delta", old, noisy}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "100±30") || !strings.Contains(out.String(), "1.400x") {
		t.Fatalf("delta table lost the distribution rendering:\n%s", out.String())
	}
}

func TestDeltaRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-delta", "only-one.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-delta with one file accepted")
	}
	if err := run([]string{"-delta", "a.json", "b.json", "c.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-delta with three files accepted")
	}
}

func TestRunToStdout(t *testing.T) {
	in := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{in}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"BenchmarkArenaReplay/arena-8"`) {
		t.Fatalf("stdout output missing results:\n%s", out.String())
	}
}
