package wcet

import (
	"testing"
)

// uleWaySpec is the ULE-mode cache seen by the analysis: 32 sets, 1 way
// (the paper's 7+1 cache with HP ways gated off), 20-cycle memory.
func uleWaySpec(hitLat int) CacheSpec {
	return CacheSpec{Sets: 32, Ways: 1, HitLatency: hitLat, MissLatency: 20}
}

// fittingLoop touches `lines` distinct lines per iteration, all in
// different sets (conflict-free when lines ≤ sets).
func fittingLoop(lines, iters int) Loop {
	body := make([]Access, lines)
	for i := range body {
		body[i] = Access{Line: uint32(i)}
	}
	return Loop{Name: "fitting", Body: body, Iterations: iters, NonMemCycles: 2}
}

func TestValidation(t *testing.T) {
	if _, err := Analyze(CacheSpec{Sets: 3, Ways: 1, HitLatency: 1, MissLatency: 20}, fittingLoop(4, 10)); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := Analyze(uleWaySpec(1), Loop{Name: "x", Iterations: 0, Body: []Access{{0}}}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Analyze(uleWaySpec(1), Loop{Name: "x", Iterations: 1}); err == nil {
		t.Error("empty body accepted")
	}
	bad := uleWaySpec(1)
	bad.DisabledWays = map[int]int{40: 1}
	if _, err := Analyze(bad, fittingLoop(4, 10)); err == nil {
		t.Error("out-of-range disabled set accepted")
	}
}

func TestFittingLoopIsAllHits(t *testing.T) {
	res, err := Analyze(uleWaySpec(1), fittingLoop(16, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss != 0 || res.Hits != 16 {
		t.Fatalf("fitting loop classified %d hits / %d misses", res.Hits, res.Miss)
	}
	// WCET = iters·(16 hits + 2 work) + 16 cold misses · 20.
	want := uint64(100*(16+2) + 16*20)
	if res.WCETCycles != want {
		t.Errorf("WCET %d, want %d", res.WCETCycles, want)
	}
	if res.ColdMisses != 16 {
		t.Errorf("cold misses %d", res.ColdMisses)
	}
}

func TestConflictingLoopIsAlwaysMiss(t *testing.T) {
	// Two lines in the same set of a direct-mapped way: neither is
	// persistent.
	loop := Loop{Name: "conflict", Body: []Access{{Line: 0}, {Line: 32}}, Iterations: 10, NonMemCycles: 0}
	res, err := Analyze(uleWaySpec(1), loop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Miss != 2 {
		t.Fatalf("conflicting loop: %d hits / %d misses", res.Hits, res.Miss)
	}
	if res.WCETCycles != uint64(10*2*(1+20)) {
		t.Errorf("WCET %d", res.WCETCycles)
	}
}

func TestAssociativityRestoresPersistence(t *testing.T) {
	// The same conflicting pair is persistent with 2 ways.
	spec := CacheSpec{Sets: 32, Ways: 2, HitLatency: 1, MissLatency: 20}
	loop := Loop{Name: "conflict", Body: []Access{{Line: 0}, {Line: 32}}, Iterations: 10}
	res, err := Analyze(spec, loop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss != 0 {
		t.Fatalf("2-way cache should make both lines persistent: %+v", res)
	}
}

func TestEDCLatencyCostIsSmallAndDeterministic(t *testing.T) {
	// The proposed design's WCET cost: one extra cycle per guaranteed
	// hit. For a cache-friendly loop this bounds the WCET inflation at
	// hits/(hits+work) — a few tens of percent worst case, fully
	// deterministic, with no dependence on fault locations.
	loop := fittingLoop(16, 1000)
	base, err := Analyze(uleWaySpec(1), loop)
	if err != nil {
		t.Fatal(err)
	}
	edc, err := Analyze(uleWaySpec(2), loop)
	if err != nil {
		t.Fatal(err)
	}
	infl := float64(edc.WCETCycles) / float64(base.WCETCycles)
	if infl <= 1.0 || infl > 2.0 {
		t.Errorf("EDC WCET inflation %.3f outside (1, 2]", infl)
	}
}

func TestDisablingDestroysGuarantees(t *testing.T) {
	// The paper's argument quantified: adversarially-placed disabled
	// lines turn guaranteed hits into guaranteed misses; with a
	// direct-mapped ULE way a single faulty line already inflates the
	// bound, and the inflation grows with every additional fault.
	loop := fittingLoop(16, 1000)
	curve, err := InflationCurve(uleWaySpec(1), loop, 8)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0] != 1.0 {
		t.Fatalf("zero faults must not inflate (got %.3f)", curve[0])
	}
	for f := 1; f < len(curve); f++ {
		if curve[f] < curve[f-1]-1e-12 {
			t.Fatalf("inflation curve must be non-decreasing: %v", curve)
		}
	}
	if curve[1] <= 1.0 {
		t.Errorf("one worst-case fault must already hurt a direct-mapped way: %v", curve)
	}
	if curve[8] < 2.0 {
		t.Errorf("8 worst-case faults should at least double the bound, got %.2f", curve[8])
	}

	// Contrast: the EDC design's deterministic cost is far below the
	// fault-disabling worst case at the expected fault count. At the
	// plain-8T fault rate (~8e-4/bit), a 1 KB way expects ~7 faulty
	// words ⇒ compare at 7 disabled lines.
	edc, err := Analyze(uleWaySpec(2), loop)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Analyze(uleWaySpec(1), loop)
	edcInfl := float64(edc.WCETCycles) / float64(base.WCETCycles)
	if edcInfl >= curve[7] {
		t.Errorf("EDC inflation %.3f not below disabling inflation %.3f at 7 faults",
			edcInfl, curve[7])
	}
}

func TestWorstCasePlacementIsWorstAmongRandomPlacements(t *testing.T) {
	// The adversarial placement must dominate arbitrary placements of
	// the same number of faults.
	loop := fittingLoop(16, 100)
	spec := uleWaySpec(1)
	adv := WorstCaseDisabled(spec, loop, 3)
	advRes, err := Analyze(adv, loop)
	if err != nil {
		t.Fatal(err)
	}
	// Try a spread of manual placements.
	for _, sets := range [][]int{{20, 21, 22}, {0, 5, 31}, {15, 16, 17}, {0, 1, 2}} {
		s := spec
		s.DisabledWays = map[int]int{}
		for _, set := range sets {
			s.DisabledWays[set]++
		}
		r, err := Analyze(s, loop)
		if err != nil {
			t.Fatal(err)
		}
		if r.WCETCycles > advRes.WCETCycles {
			t.Errorf("placement %v (WCET %d) beats the adversarial one (%d)",
				sets, r.WCETCycles, advRes.WCETCycles)
		}
	}
}

func TestWorstCaseDisabledSpillsWhenSetsSaturate(t *testing.T) {
	// More faults than loaded sets: the placement must spill without
	// losing faults, up to full cache disablement.
	loop := Loop{Name: "tiny", Body: []Access{{Line: 0}}, Iterations: 5}
	spec := uleWaySpec(1)
	out := WorstCaseDisabled(spec, loop, 5)
	total := 0
	for _, d := range out.DisabledWays {
		total += d
	}
	if total != 5 {
		t.Errorf("placed %d faults, want 5", total)
	}
}

func TestFullyDisabledSetMeansZeroEffectiveWays(t *testing.T) {
	spec := uleWaySpec(1)
	spec.DisabledWays = map[int]int{0: 1}
	loop := Loop{Name: "single", Body: []Access{{Line: 0}}, Iterations: 3, NonMemCycles: 1}
	res, err := Analyze(spec, loop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Miss != 1 {
		t.Errorf("access to a dead set must be always-miss: %+v", res)
	}
}
