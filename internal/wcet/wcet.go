// Package wcet implements the static worst-case execution time analysis
// that motivates the whole architecture. The paper's target market runs
// critical applications that need WCET bounds (Wilhelm et al. [20]); its
// central argument against simply shrinking bitcells is that the
// resulting faulty entries "should be then disabled and strong
// performance guarantees required by critical applications would not be
// achievable" (Sections I–II, against [21], [1], [7]).
//
// This package makes that argument quantitative. It performs a
// must-analysis for LRU caches over loop-structured programs — the
// standard abstract-interpretation style classification of accesses into
// always-hit / always-miss after warm-up — under three regimes:
//
//  1. a fault-free cache (the paper's baseline and proposed designs:
//     faults either do not exist or are corrected transparently by EDC,
//     so the geometry seen by the analysis is the nominal one);
//  2. the proposed design's one-extra-cycle EDC hit latency;
//  3. a fault-disabling cache (the rejected alternative): faulty lines
//     are disabled, and because fault locations are die-dependent the
//     analysis must assume the *worst-case placement* of the disabled
//     lines, collapsing associativity exactly where the program needs it.
//
// The headline product is the WCET inflation curve of experiment E8: a
// handful of disabled lines can multiply the guaranteed bound even
// though the average case barely moves — while the EDC design pays only
// its small deterministic latency.
package wcet

import (
	"fmt"
	"sort"
)

// Access is one memory reference in a loop body, identified by the cache
// line it touches (addresses are line-granular for the analysis).
type Access struct {
	Line uint32 // line address (byte address >> log2(lineBytes))
}

// Loop is a simple loop nest: a body of line-granular references executed
// a fixed number of iterations. Real WCET analyses work on CFGs; the
// loop abstraction captures what the cache argument needs (reuse across
// iterations vs conflict capacity).
type Loop struct {
	Name       string
	Body       []Access
	Iterations int
	// NonMemCycles is the number of non-memory execution cycles per
	// iteration (issue slots for ALU work).
	NonMemCycles int
}

// Validate reports whether the loop is analyzable.
func (l Loop) Validate() error {
	if l.Iterations <= 0 {
		return fmt.Errorf("wcet: loop %q has %d iterations", l.Name, l.Iterations)
	}
	if len(l.Body) == 0 {
		return fmt.Errorf("wcet: loop %q has an empty body", l.Name)
	}
	if l.NonMemCycles < 0 {
		return fmt.Errorf("wcet: loop %q has negative work", l.Name)
	}
	return nil
}

// CacheSpec is the analysable cache geometry.
type CacheSpec struct {
	Sets         int
	Ways         int
	HitLatency   int         // cycles per hit (1 baseline, 2 with the EDC stage)
	MissLatency  int         // additional cycles per miss (memory access)
	DisabledWays map[int]int // set index -> number of disabled ways in that set
}

// Validate reports whether the spec is usable.
func (c CacheSpec) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("wcet: sets %d not a power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("wcet: ways %d", c.Ways)
	}
	if c.HitLatency < 1 || c.MissLatency < 1 {
		return fmt.Errorf("wcet: latencies %d/%d", c.HitLatency, c.MissLatency)
	}
	for set, d := range c.DisabledWays {
		if set < 0 || set >= c.Sets {
			return fmt.Errorf("wcet: disabled set %d out of range", set)
		}
		if d < 0 || d > c.Ways {
			return fmt.Errorf("wcet: %d disabled ways in set %d", d, set)
		}
	}
	return nil
}

// effectiveWays returns the guaranteed associativity of a set.
func (c CacheSpec) effectiveWays(set int) int {
	return c.Ways - c.DisabledWays[set]
}

// Classification of one body access.
type Classification int

const (
	// AlwaysHit: guaranteed to hit in every iteration after warm-up.
	AlwaysHit Classification = iota
	// AlwaysMiss: cannot be guaranteed to hit in any iteration (the
	// conservative WCET assumption for non-persistent lines).
	AlwaysMiss
)

// Result is the outcome of analysing one loop against one cache.
type Result struct {
	Loop string
	Hits int // body accesses classified AlwaysHit
	Miss int // body accesses classified AlwaysMiss
	// WCETCycles is the guaranteed execution-time bound.
	WCETCycles uint64
	// ColdMisses counts first-iteration compulsory misses of persistent
	// lines (charged once, not per iteration).
	ColdMisses int
}

// Analyze performs the must-analysis: a line is *persistent* (always hit
// after its first access) iff the number of distinct lines of the body
// mapping to its set is at most the set's guaranteed associativity —
// then LRU can never evict it within one iteration's reuse distance.
// Accesses to non-persistent lines are conservatively always-miss.
func Analyze(spec CacheSpec, loop Loop) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if err := loop.Validate(); err != nil {
		return Result{}, err
	}

	// Distinct lines per set.
	linesPerSet := make(map[int]map[uint32]bool)
	for _, a := range loop.Body {
		set := int(a.Line) & (spec.Sets - 1)
		if linesPerSet[set] == nil {
			linesPerSet[set] = make(map[uint32]bool)
		}
		linesPerSet[set][a.Line] = true
	}

	persistent := func(line uint32) bool {
		set := int(line) & (spec.Sets - 1)
		eff := spec.effectiveWays(set)
		return eff > 0 && len(linesPerSet[set]) <= eff
	}

	res := Result{Loop: loop.Name}
	coldLines := make(map[uint32]bool)
	var hitCycles, missCycles uint64
	for _, a := range loop.Body {
		if persistent(a.Line) {
			res.Hits++
			hitCycles += uint64(spec.HitLatency)
			if !coldLines[a.Line] {
				coldLines[a.Line] = true
				res.ColdMisses++
			}
		} else {
			res.Miss++
			missCycles += uint64(spec.HitLatency + spec.MissLatency)
		}
	}
	perIter := hitCycles + missCycles + uint64(loop.NonMemCycles)
	res.WCETCycles = perIter*uint64(loop.Iterations) +
		uint64(res.ColdMisses)*uint64(spec.MissLatency)
	return res, nil
}

// WorstCaseDisabled returns a CacheSpec with `faultyLines` disabled
// lines placed adversarially for the given loop: faults are assigned to
// the sets where the program's guaranteed hits are most fragile (largest
// working sets first), because a WCET analysis cannot assume anything
// better — fault locations vary per die, so the bound must hold for the
// worst die (the paper's argument for why disabling breaks guarantees).
func WorstCaseDisabled(spec CacheSpec, loop Loop, faultyLines int) CacheSpec {
	// Count distinct body lines per set.
	linesPerSet := make(map[int]int)
	seen := make(map[uint32]bool)
	for _, a := range loop.Body {
		if seen[a.Line] {
			continue
		}
		seen[a.Line] = true
		linesPerSet[int(a.Line)&(spec.Sets-1)]++
	}
	// Order sets by how close they are to losing persistence: sets
	// whose distinct-line count equals the associativity break with one
	// disabled way.
	type setLoad struct{ set, lines int }
	var loads []setLoad
	for set, n := range linesPerSet {
		loads = append(loads, setLoad{set, n})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].lines != loads[j].lines {
			return loads[i].lines > loads[j].lines
		}
		return loads[i].set < loads[j].set
	})
	out := spec
	out.DisabledWays = make(map[int]int, len(spec.DisabledWays))
	for k, v := range spec.DisabledWays {
		out.DisabledWays[k] = v
	}
	remaining := faultyLines
	for remaining > 0 && len(loads) > 0 {
		for i := range loads {
			if remaining == 0 {
				break
			}
			if out.DisabledWays[loads[i].set] < out.Ways {
				out.DisabledWays[loads[i].set]++
				remaining--
			}
		}
		// If every loaded set is fully disabled, spill into set 0, 1, …
		if remaining > 0 {
			full := true
			for _, l := range loads {
				if out.DisabledWays[l.set] < out.Ways {
					full = false
					break
				}
			}
			if full {
				for set := 0; set < out.Sets && remaining > 0; set++ {
					for out.DisabledWays[set] < out.Ways && remaining > 0 {
						out.DisabledWays[set]++
						remaining--
					}
				}
				break
			}
		}
	}
	return out
}

// InflationCurve computes the WCET bound as a function of the number of
// adversarially-placed disabled lines, normalised to the fault-free
// bound — the quantitative form of the paper's predictability argument.
func InflationCurve(spec CacheSpec, loop Loop, maxFaulty int) ([]float64, error) {
	base, err := Analyze(spec, loop)
	if err != nil {
		return nil, err
	}
	curve := make([]float64, maxFaulty+1)
	for f := 0; f <= maxFaulty; f++ {
		r, err := Analyze(WorstCaseDisabled(spec, loop, f), loop)
		if err != nil {
			return nil, err
		}
		curve[f] = float64(r.WCETCycles) / float64(base.WCETCycles)
	}
	return curve, nil
}
