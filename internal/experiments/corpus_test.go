package experiments

import (
	"strconv"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/sim"
)

// TestCorpusSweepCoversFullCorpus pins the corpus experiment to the
// registered workload set: every workload of bench.Full() appears in
// both modes and scenarios, and the Finish hook adds corpus averages.
func TestCorpusSweepCoversFullCorpus(t *testing.T) {
	e := corpusExperiment(tinyOptions())
	grid := e.Grid()
	if want := 2 * 2 * len(bench.Full()); len(grid) != want {
		t.Fatalf("corpus grid has %d tasks, want %d (scenarios × modes × workloads)", len(grid), want)
	}
	res, err := sim.Runner{Workers: 8, Seed: 3}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	averages := 0
	for _, r := range res {
		if r.Task.Params["workload"] == "average" {
			averages++
			if _, ok := r.Metric("avg_saving"); !ok {
				t.Errorf("average row %q missing avg_saving", r.Task.Label)
			}
		}
	}
	if averages != 4 {
		t.Errorf("got %d corpus-average rows, want 4 (scenario × mode)", averages)
	}
	// At ULE mode the proposed design's extra hit cycle must show up as
	// a positive slowdown for the dependent-load adversary.
	for _, r := range res {
		if r.Task.Params["workload"] == "ptrchase_s" && r.Task.Params["mode"] == "ULE" {
			m, ok := r.Metric("time_increase")
			if !ok || m.Value <= 0 {
				t.Errorf("%s: pointer chase at ULE shows no EDC slowdown (%+v)", r.Task.Label, m)
			}
		}
	}
}

// TestPhaseEPISweep pins the phase-aware family: the grid covers every
// phase-annotated workload in both scenarios and modes, and every task
// reports EPI and miss rate per working-set regime with regimes that
// actually differ.
func TestPhaseEPISweep(t *testing.T) {
	phased := 0
	for _, w := range bench.Full() {
		if w.HasPhases() {
			phased++
		}
	}
	if phased == 0 {
		t.Fatal("corpus has no phase-annotated workloads")
	}
	o := tinyOptions()
	// phased_mix switches regimes every 40k instructions; one full
	// cycle through all four phases needs 160k.
	o.Instructions = 160_000
	e := phaseEPIExperiment(o)
	grid := e.Grid()
	if want := 2 * 2 * phased; len(grid) != want {
		t.Fatalf("phase-epi grid has %d tasks, want %d", len(grid), want)
	}
	res, err := sim.Runner{Workers: 4, Seed: 3}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		hot, okHot := r.Metric("p0_prop_epi")
		cold, okCold := r.Metric("p3_prop_epi")
		if !okHot || !okCold {
			t.Fatalf("%s: missing per-phase EPI metrics", r.Task.Label)
		}
		// Phase 0 reuses 1/8 of the footprint, phase 3 walks it all at
		// random: the cold regime must cost more energy per instruction.
		if cold.Value <= hot.Value {
			t.Errorf("%s: cold-phase EPI %.2f not above hot-phase %.2f", r.Task.Label, cold.Value, hot.Value)
		}
		if _, ok := r.Metric("p3_dl1_miss"); !ok {
			t.Errorf("%s: missing per-phase miss rate", r.Task.Label)
		}
		if r.Detail == "" {
			t.Errorf("%s: missing per-phase detail table", r.Task.Label)
		}
	}
}

// TestCorpusMissProfileBitIdenticalToReplay is the capacity axis's
// replacement oracle: the single stack-distance profile pass a source
// now gets must report, for every associativity on the axis, exactly
// the reference and miss counts the retired per-geometry ReplayDataRefs
// loop measured — not approximately, bit for bit.
func TestCorpusMissProfileBitIdenticalToReplay(t *testing.T) {
	arenas := bench.NewArenaCache()
	for _, name := range []string{"adpcm_c", "ptrchase_l", "adversarial_l1", "stencil_dsp"} {
		w, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w = w.ScaledTo(30_000)
		arena := arenas.Get(w)
		prof := cache.MustNewStackProfile(corpusMissGeometry)
		profRefs := ProfileDataRefs(arena.Cursor(), prof)
		for k := 1; k <= corpusMissGeometry.Ways; k++ {
			geom := corpusMissGeometry
			geom.Ways = k
			refs, misses := ReplayDataRefs(arena.Cursor(), cache.MustNew(geom))
			if profRefs != refs {
				t.Fatalf("%s: profile saw %d refs, replay saw %d", name, profRefs, refs)
			}
			if got := prof.Misses(k); got != uint64(misses) {
				t.Errorf("%s ways=%d: profile misses %d, replay misses %d", name, k, got, misses)
			}
		}
	}
}

// TestCorpusMissSweep checks the locality sweep's physics: miss rate is
// non-increasing in capacity for every workload, and the conflict
// adversary stays ~100 % missing even at full capacity while fitting
// workloads drop to near zero.
func TestCorpusMissSweep(t *testing.T) {
	o := tinyOptions()
	o.Instructions = 30_000 // long enough for steady state past warm-up
	res, err := sim.Runner{Workers: 8, Seed: 3}.Run(corpusMissExperiment(o))
	if err != nil {
		t.Fatal(err)
	}
	miss := map[string]map[int]float64{}
	for _, r := range res {
		w := r.Task.Params["workload"]
		k, err := strconv.Atoi(r.Task.Params["ways"])
		if err != nil {
			t.Fatal(err)
		}
		m, ok := r.Metric("miss_rate")
		if !ok {
			t.Fatalf("%s: no miss_rate metric", r.Task.Label)
		}
		if miss[w] == nil {
			miss[w] = map[int]float64{}
		}
		miss[w][k] = m.Value
	}
	for w, byWays := range miss {
		if byWays[1]+1e-9 < byWays[8] {
			t.Errorf("%s: miss rate grows with capacity (%.3f%% @1 way, %.3f%% @8 ways)", w, byWays[1], byWays[8])
		}
	}
	if m := miss["adversarial_l1"][8]; m < 95 {
		t.Errorf("adversary misses %.1f%% at full capacity, want ≥ 95%% (conflict, not capacity)", m)
	}
	if m := miss["adpcm_c"][8]; m > 5 {
		t.Errorf("adpcm_c misses %.1f%% at full capacity, want near zero", m)
	}
	// The geometry-calibrated capacity axis: a footprint sized to fit
	// the full cache streams without steady-state misses at 8 ways,
	// while the 8× footprint keeps missing — capacity pressure tracking
	// the configured geometry, not a hand-picked constant.
	for _, name := range []string{"cal_stencil_fit", "cal_stencil_x8", "cal_chase_fit", "cal_chase_x8"} {
		if _, ok := miss[name]; !ok {
			t.Fatalf("calibrated workload %s missing from the capacity axis", name)
		}
	}
	if fit, x8 := miss["cal_stencil_fit"][8], miss["cal_stencil_x8"][8]; x8 <= fit {
		t.Errorf("stencil 8× footprint misses %.1f%% at full capacity vs fit's %.1f%% — capacity pressure not visible", x8, fit)
	}
	// The chase gives the sharp signal: a fitting working set settles to
	// cold misses only, an 8× one misses on most dependent loads.
	if fit := miss["cal_chase_fit"][8]; fit > 5 {
		t.Errorf("fitting chase misses %.1f%% at full capacity, want near zero", fit)
	}
	if x8 := miss["cal_chase_x8"][8]; x8 < 50 {
		t.Errorf("8× chase misses only %.1f%% at full capacity, want ≥ 50%%", x8)
	}
}
