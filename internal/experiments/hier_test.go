package experiments

import "testing"

func TestParseL2Geometries(t *testing.T) {
	gs, err := ParseL2Geometries("128x8, 512x8,16x2")
	if err != nil {
		t.Fatal(err)
	}
	want := []L2Geometry{{128, 8}, {512, 8}, {16, 2}}
	if len(gs) != len(want) {
		t.Fatalf("parsed %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("geometry %d = %v, want %v", i, gs[i], want[i])
		}
		if gs[i].String() == "" {
			t.Errorf("geometry %d has empty label", i)
		}
	}
	for _, bad := range []string{"", "128", "x8", "128x", "128xeight", "ax8"} {
		if _, err := ParseL2Geometries(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

// TestHierGridShape pins the sweep axes: geometries × protections ×
// workloads for hier-epi, geometries × pairs for shared-l2.
func TestHierGridShape(t *testing.T) {
	o := Options{Instructions: 1000}.withDefaults()
	if got, want := len(hierEPIExperiment(o).Grid()), len(o.L2Geometries)*len(l2Protections)*len(hierWorkloads); got != want {
		t.Errorf("hier-epi grid has %d tasks, want %d", got, want)
	}
	if got, want := len(sharedL2Experiment(o).Grid()), len(o.L2Geometries)*len(sharedPairs); got != want {
		t.Errorf("shared-l2 grid has %d tasks, want %d", got, want)
	}
}
