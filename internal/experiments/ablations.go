package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"edcache/internal/core"
	"edcache/internal/ecc"
	"edcache/internal/energy"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

// ablationExperiments returns A1–A6, each its own registry entry so a
// driver can run one ablation in isolation (-run a3-granularity).
func ablationExperiments(o Options) []sim.Experiment {
	return []sim.Experiment{
		waySplitAblation(o),
		memLatencyAblation(o),
		granularityAblation(),
		interleavingAblation(),
		uleReuseAblation(o),
		partitioningAblation(),
	}
}

// waySplitAblation is A1: 7+1 vs 6+2 (Section IV-A).
func waySplitAblation(o Options) sim.Experiment {
	o = o.withDefaults()
	return sim.Def{
		ExpName: "a1-waysplit",
		Desc:    "A1: way-split ablation — 7+1 vs 6+2 ULE ways (Section IV-A)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, ule := range []int{1, 2} {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					tasks = append(tasks, sim.Task{
						Label:  fmt.Sprintf("split=%d+%d mode=%v", 8-ule, ule, m),
						Params: sim.P("ule_ways", strconv.Itoa(ule), "mode", m.String()),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			ule, err := strconv.Atoi(t.Params["ule_ways"])
			if err != nil {
				return sim.Result{}, err
			}
			m, err := modeByName(t.Params["mode"])
			if err != nil {
				return sim.Result{}, err
			}
			w, arena, err := o.workloadArena("adpcm_c")
			if err != nil {
				return sim.Result{}, err
			}
			cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
			cb.ULEWays = ule
			cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
			cp.ULEWays = ule
			rb, err := core.MustNewSystem(cb).RunArena(w.Name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			rp, err := core.MustNewSystem(cp).RunArena(w.Name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Fmt("baseline_epi", rb.EPI.Total(), "%.2f"),
				sim.Fmt("proposed_epi", rp.EPI.Total(), "%.2f"),
				sim.Fmt("saving", 100*(1-rp.EPI.Total()/rb.EPI.Total()), "%.1f%%"),
			}}, nil
		},
	}
}

// memLatencyAblation is A2: the paper claims trends are unchanged with
// memory latency.
func memLatencyAblation(o Options) sim.Experiment {
	o = o.withDefaults()
	return sim.Def{
		ExpName: "a2-memlat",
		Desc:    "A2: memory-latency ablation — savings vs 10..80-cycle memory (paper: trends unchanged)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, lat := range []int{10, 20, 40, 80} {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("memlat=%d", lat),
					Params: sim.P("mem_latency", strconv.Itoa(lat)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			lat, err := strconv.Atoi(t.Params["mem_latency"])
			if err != nil {
				return sim.Result{}, err
			}
			var ms []sim.Metric
			for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
				name := "gsm_c"
				if m == core.ModeULE {
					name = "adpcm_c"
				}
				w, arena, err := o.workloadArena(name)
				if err != nil {
					return sim.Result{}, err
				}
				cb := core.PaperConfig(yield.ScenarioA, core.Baseline)
				cb.MemLatency = lat
				cp := core.PaperConfig(yield.ScenarioA, core.Proposed)
				cp.MemLatency = lat
				rb, err := core.MustNewSystem(cb).RunArena(w.Name, arena, m)
				if err != nil {
					return sim.Result{}, err
				}
				rp, err := core.MustNewSystem(cp).RunArena(w.Name, arena, m)
				if err != nil {
					return sim.Result{}, err
				}
				ms = append(ms, sim.Fmt(m.String()+"_saving", 100*(1-rp.EPI.Total()/rb.EPI.Total()), "%.1f%%"))
			}
			return sim.Result{Metrics: ms}, nil
		},
	}
}

// granularityAblation is A3: EDC word granularity — check-bit overhead
// vs yield.
func granularityAblation() sim.Experiment {
	return sim.Def{
		ExpName: "a3-granularity",
		Desc:    "A3: EDC word-granularity ablation — check-bit overhead vs yield",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, bits := range []int{8, 16, 32} {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("%d-bit words", bits),
					Params: sim.P("word_bits", strconv.Itoa(bits)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			bitsPerWord, err := strconv.Atoi(t.Params["word_bits"])
			if err != nil {
				return sim.Result{}, err
			}
			codec, err := ecc.NewSECDEDMinimal(bitsPerWord)
			if err != nil {
				return sim.Result{}, err
			}
			words := 8192 / bitsPerWord
			gy := yield.WayGeometry{Lines: 32, WordsPerLine: words / 32, DataBits: bitsPerWord, TagBits: 26}
			y := yield.WaySurvival(1.5e-4, gy, codec.CheckBits(), 7, 1)
			overhead := float64(codec.CheckBits()) / float64(bitsPerWord)
			return sim.Result{Metrics: []sim.Metric{
				sim.Str("code", codec.Name()),
				sim.Num("check_bits", float64(codec.CheckBits())),
				sim.Fmt("storage_overhead", 100*overhead, "%.1f%%"),
				sim.Fmt("way_yield_at_1.5e-4", y, "%.5f"),
			}}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			results[len(results)-1].Detail = "(finer words: more overhead, higher yield; the paper's 32-bit choice balances both)\n"
			return results, nil
		},
	}
}

// interleavingAblation is A4: bit interleaving vs multi-bit upsets. At
// smaller nodes a single particle strike flips physically adjacent
// cells; compare plain SECDED(39,32) with a 4-way interleaved SECDED
// over the same 32-bit word on bursts of adjacent flips.
func interleavingAblation() sim.Experiment {
	return sim.Def{
		ExpName: "a4-interleave",
		Desc:    "A4: bit interleaving vs multi-bit upsets (extension for deep-scaled nodes)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for burst := 1; burst <= 4; burst++ {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("burst=%d", burst),
					Params: sim.P("burst", strconv.Itoa(burst)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			burst, err := strconv.Atoi(t.Params["burst"])
			if err != nil {
				return sim.Result{}, err
			}
			plain, err := ecc.NewSECDED(32)
			if err != nil {
				return sim.Result{}, err
			}
			inter, err := ecc.NewInterleaved(ecc.KindSECDED, 8, 4)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Str("plain_secded", burstOutcome(plain, burst)),
				sim.Str("interleaved_secded", burstOutcome(inter, burst)),
				sim.Num("interleaved_check_bits", float64(inter.CheckBits())),
			}}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			results[len(results)-1].Detail = "(interleaving buys burst correction at 4x the check-bit overhead — the natural\n" +
				" extension of the architecture for MBU-prone deep-scaled nodes)\n"
			return results, nil
		},
	}
}

// burstOutcome classifies how a codec handles every adjacent burst of
// the given length across one codeword.
func burstOutcome(c ecc.Codec, burst int) string {
	data := uint64(0xA5A5A5A5) & ecc.DataMask(c)
	cw := c.Encode(data)
	n := ecc.TotalBits(c)
	corrected, detected, silent := 0, 0, 0
	for start := 0; start+burst <= n; start++ {
		corrupted := cw
		for b := 0; b < burst; b++ {
			corrupted ^= 1 << uint(start+b)
		}
		got, res := c.Decode(corrupted)
		switch {
		case res.Status == ecc.Detected:
			detected++
		case got == data:
			corrected++
		default:
			silent++
		}
	}
	total := n - burst + 1
	switch {
	case corrected == total:
		return "corrected (all)"
	case silent > 0:
		return fmt.Sprintf("UNSAFE: %d silent", silent)
	default:
		return fmt.Sprintf("%d corrected / %d detected", corrected, detected)
	}
}

// uleReuseAblation is A5: "ULE ways are reused at HP mode, in spite of
// their inefficiency at high Vcc, because they reduce the number of
// slow and energy-hungry memory accesses" (Section III-A). The paper
// excludes memory energy from its results but justifies the reuse
// policy by the cost of memory accesses; the estimate here makes the
// trade visible (a highly-integrated few-MB memory at ~300 pJ/access).
func uleReuseAblation(o Options) sim.Experiment {
	o = o.withDefaults()
	const memAccessPJ = 300.0
	return sim.Def{
		ExpName: "a5-ulereuse",
		Desc:    "A5: reuse vs gate ULE ways at HP mode (Section III-A claim)",
		GridFn: func() []sim.Task {
			return []sim.Task{
				{Label: "reuse ULE way (paper design)", Params: sim.P("gate", "false")},
				{Label: "gate ULE way off at HP", Params: sim.P("gate", "true")},
			}
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			gate := t.Params["gate"] == "true"
			// mpeg2_c needs more than the 7 KB of HP ways.
			w, arena, err := o.workloadArena("mpeg2_c")
			if err != nil {
				return sim.Result{}, err
			}
			cfg := core.PaperConfig(yield.ScenarioA, core.Proposed)
			cfg.GateULEWaysAtHP = gate
			rep, err := core.MustNewSystem(cfg).RunArena(w.Name, arena, core.ModeHP)
			if err != nil {
				return sim.Result{}, err
			}
			memEPI := memAccessPJ * float64(rep.Stats.DMisses+rep.Stats.IMisses) / float64(rep.Stats.Instructions)
			return sim.Result{Metrics: []sim.Metric{
				sim.Fmt("dl1_miss", missPct(rep.Stats.DMisses, rep.Stats.DAccesses), "%.3f%%"),
				sim.FmtU("exec_time", rep.TimeNS/1e6, "ms", "%.3f"),
				sim.FmtU("chip_epi", rep.EPI.Total(), "pJ", "%.2f"),
				sim.FmtU("with_memory_epi", rep.EPI.Total()+memEPI, "pJ", "%.2f"),
			}}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			results[len(results)-1].Detail = "(gating the ULE way shrinks the HP-mode cache to 7 KB: more misses, a slower\n" +
				" reaction to the event burst, and — once memory accesses are priced in — more\n" +
				" total energy: the paper's reason to reuse the ULE ways at HP mode)\n"
			return results, nil
		},
	}
}

// partitioningAblation is A6: CACTI-style subarray partitioning of the
// ULE way. The flat model used by the main experiments is the 1x1
// point; partitioning shifts absolute energies but applies to baseline
// and proposed ways alike, so the normalized comparisons of Figs. 3–4
// are insensitive to it.
func partitioningAblation() sim.Experiment {
	return sim.Def{
		ExpName: "a6-partition",
		Desc:    "A6: CACTI-style subarray partitioning of the ULE way (model exploration)",
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			sys := core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
			evals, best, err := energy.ExplorePartitions(sys.ULEWayArray(), 0.35, 39, 33, 16)
			if err != nil {
				return sim.Result{}, err
			}
			tb := stats.NewTable("partition (Ndwl x Ndbl)", "access energy (pJ)", "area", "leak (pJ/ns)", "")
			for i, ev := range evals {
				mark := ""
				if i == best {
					mark = "<- min energy"
				}
				tb.AddRow(fmt.Sprintf("%dx%d", ev.Part.Ndwl, ev.Part.Ndbl),
					fmt.Sprintf("%.4f", ev.Energy), f0(ev.Area), fmt.Sprintf("%.5f", ev.Leak), mark)
			}
			return sim.Result{
				Metrics: []sim.Metric{
					sim.Str("best_partition", fmt.Sprintf("%dx%d", evals[best].Part.Ndwl, evals[best].Part.Ndbl)),
					sim.NumU("best_energy", evals[best].Energy, "pJ"),
				},
				Detail: tb.String(),
			}, nil
		},
	}
}
