package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/yield"
)

// scenarioGrid is the two-task grid over reliability scenarios.
func scenarioGrid() []sim.Task {
	tasks := make([]sim.Task, len(scenarios))
	for i, s := range scenarios {
		tasks[i] = sim.Task{Label: "scenario=" + s.String(), Params: sim.P("scenario", s.String())}
	}
	return tasks
}

func taskScenario(t sim.Task) (yield.Scenario, error) {
	return scenarioByName(t.Params["scenario"])
}

// sizingExperiment reproduces the Fig. 2 design methodology (E4).
func sizingExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "sizing",
		Desc:    "E4: design methodology — sized cells and the 8T+EDC loop (paper Fig. 2, Section III-C)",
		GridFn:  scenarioGrid,
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			res, err := yield.Run(yield.PaperInput(s))
			if err != nil {
				return sim.Result{}, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "baseline code: %v, proposed code: %v\n", s.BaselineCode(), s.ProposedCode())
			fmt.Fprintf(&b, "Pf target (99%% yield, 8192 data bits): %.3g  [paper: 1.22e-6]\n", res.PfTarget)
			tb := stats.NewTable("array", "cell", "size", "Pf(bit)", "way yield")
			tb.AddRow("HP ways @1V", res.HPCell.Topo.String(), fmt.Sprintf("x%.2f", res.HPCell.Size),
				fmt.Sprintf("%.3g", res.HPCellPf), "-")
			tb.AddRow("ULE way baseline @350mV", res.BaselineCell.Topo.String(), fmt.Sprintf("x%.2f", res.BaselineCell.Size),
				fmt.Sprintf("%.3g", res.BaselinePf), fmt.Sprintf("%.5f", res.BaselineYield))
			tb.AddRow("ULE way proposed @350mV", res.ProposedCell.Topo.String(), fmt.Sprintf("x%.2f", res.ProposedCell.Size),
				fmt.Sprintf("%.3g", res.ProposedPf), fmt.Sprintf("%.5f", res.ProposedYield))
			b.WriteString(tb.String())
			fmt.Fprintf(&b, "plain (uncoded) 8T can reach the fault-free target: %v  [paper premise: false]\n", res.UncodedFeasible)
			fmt.Fprintf(&b, "8T+%v sizing iterations:\n", s.ProposedCode())
			it := stats.NewTable("iter", "size", "Pf(8T)", "yield", "meets baseline yield")
			for i, step := range res.Iterations {
				it.AddRow(fmt.Sprint(i+1), fmt.Sprintf("x%.2f", step.Size),
					fmt.Sprintf("%.3g", step.Pf8T), fmt.Sprintf("%.5f", step.Yield), fmt.Sprint(step.Met))
			}
			b.WriteString(it.String())
			return sim.Result{
				Metrics: []sim.Metric{
					sim.Num("pf_target", res.PfTarget),
					sim.Num("baseline_size", res.BaselineCell.Size),
					sim.Num("proposed_size", res.ProposedCell.Size),
					sim.Num("baseline_yield", res.BaselineYield),
					sim.Num("proposed_yield", res.ProposedYield),
					sim.Num("iterations", float64(len(res.Iterations))),
				},
				Detail: b.String(),
			}, nil
		},
	}
}

// yieldExperiment prints the Eq. (1)/(2) validation (E6).
func yieldExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "yield",
		Desc:    "E6: yield equations — way survival vs Pf and the required-Pf solver (paper Eq. 1-2)",
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			g := yield.PaperWay()
			var b strings.Builder
			fmt.Fprintf(&b, "ULE way geometry: %d data words x %d bits, %d tag words x %d bits\n",
				g.DataWords(), g.DataBits, g.TagWords(), g.TagBits)
			tb := stats.NewTable("Pf", "Y plain (tol 0)", "Y SECDED (tol 1)", "Y DECTED (tol 1)")
			for _, pf := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
				tb.AddRow(fmt.Sprintf("%.0e", pf),
					fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 0, 0, 0)),
					fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 7, 7, 1)),
					fmt.Sprintf("%.5f", yield.WaySurvival(pf, g, 13, 13, 1)))
			}
			b.WriteString(tb.String())
			required := yield.RequiredPfBits(0.99, 8192)
			fmt.Fprintf(&b, "RequiredPf(99%%, 8192 bits) = %.4g  [paper: 1.22e-6]\n", required)
			return sim.Result{
				Metrics: []sim.Metric{sim.Num("required_pf", required)},
				Detail:  b.String(),
			}, nil
		},
	}
}

// pairGrid builds the scenario × workload grid of a figure experiment.
func pairGrid(m core.Mode, instructions int) []sim.Task {
	var tasks []sim.Task
	for _, s := range scenarios {
		for _, w := range suite(m, instructions) {
			tasks = append(tasks, sim.Task{
				Label:  fmt.Sprintf("scenario=%v %s", s, w.Name),
				Params: sim.P("scenario", s.String(), "workload", w.Name),
			})
		}
	}
	return tasks
}

// sharedSystems lazily builds the sized baseline/proposed pair per
// scenario so every grid task of a figure reuses one sizing run — a
// System is immutable and serves concurrent Run calls. It is a thin
// typed wrapper over the engine's generic shared-resource helper.
type sharedSystems struct {
	shared *sim.Shared[yield.Scenario, [2]*core.System]
}

func newSharedSystems() *sharedSystems {
	return &sharedSystems{shared: sim.NewShared(func(s yield.Scenario) ([2]*core.System, error) {
		base, err := core.NewSystem(core.PaperConfig(s, core.Baseline))
		if err != nil {
			return [2]*core.System{}, err
		}
		prop, err := core.NewSystem(core.PaperConfig(s, core.Proposed))
		if err != nil {
			return [2]*core.System{}, err
		}
		return [2]*core.System{base, prop}, nil
	})}
}

func (c *sharedSystems) get(s yield.Scenario) (base, prop *core.System, err error) {
	pair, err := c.shared.Get(s)
	return pair[0], pair[1], err
}

// runPairTask evaluates one (scenario, workload) bar pair — replaying
// the workload's shared decode-once slab on both designs as one
// two-member group (a single slab walk and classification) — and
// attaches the Pair as the result payload for the Finish aggregation.
func runPairTask(t sim.Task, m core.Mode, o Options, systems *sharedSystems) (sim.Result, core.Pair, error) {
	s, err := taskScenario(t)
	if err != nil {
		return sim.Result{}, core.Pair{}, err
	}
	w, arena, err := o.workloadArena(t.Params["workload"])
	if err != nil {
		return sim.Result{}, core.Pair{}, err
	}
	base, prop, err := systems.get(s)
	if err != nil {
		return sim.Result{}, core.Pair{}, err
	}
	reps, err := core.RunGroupArena(w.Name, arena, []core.GroupMember{
		{Sys: base, Mode: m}, {Sys: prop, Mode: m},
	})
	if err != nil {
		return sim.Result{}, core.Pair{}, err
	}
	p := core.Pair{Workload: w.Name, Base: reps[0], Prop: reps[1]}
	res := sim.Result{Metrics: pairMetrics(p), Data: p}
	return res, p, nil
}

func pairMetrics(p core.Pair) []sim.Metric {
	ms := []sim.Metric{
		sim.NumU("base_epi", p.Base.EPI.Total(), "pJ/i"),
		sim.NumU("prop_epi", p.Prop.EPI.Total(), "pJ/i"),
		sim.Fmt("saving", p.SavingPct(), "%.1f%%"),
		sim.Fmt("time_increase", p.TimeIncreasePct(), "%.2f%%"),
	}
	ms = append(ms, breakdownMetrics("base", p.Base.EPI)...)
	ms = append(ms, breakdownMetrics("prop", p.Prop.EPI)...)
	return ms
}

// bars renders one normalized baseline/proposed stacked-bar pair
// (D=L1 dynamic, L=L1 leakage, E=EDC, C=core; scale = baseline total).
func bars(label string, base, prop core.Breakdown) string {
	t := base.Total()
	norm := func(b core.Breakdown) []stats.Segment {
		return []stats.Segment{
			{Rune: 'D', Value: b.CacheDynamic / t}, {Rune: 'L', Value: b.CacheLeakage / t},
			{Rune: 'E', Value: b.EDC / t}, {Rune: 'C', Value: b.Core / t},
		}
	}
	return stats.StackedBar(label+" base", norm(base), 1.0, 50) + "\n" +
		stats.StackedBar(label+" prop", norm(prop), 1.0, 50) + "\n"
}

// figureFinish appends per-scenario average rows (the paper's
// "normalized average EPI" presentation) to a figure's per-workload
// results, aggregating the attached core.Pair payloads with
// core.Summarize so the figures and the headline experiment share one
// averaging convention. paperSaving quotes the published number per
// scenario.
func figureFinish(name string, m core.Mode, paperSaving map[yield.Scenario]string, withTime bool) func([]sim.Result) ([]sim.Result, error) {
	return func(results []sim.Result) ([]sim.Result, error) {
		out := results
		for _, s := range scenarios {
			var pairs []core.Pair
			for _, r := range results {
				if r.Task.Params["scenario"] != s.String() {
					continue
				}
				if p, ok := r.Data.(core.Pair); ok {
					pairs = append(pairs, p)
				}
			}
			if len(pairs) == 0 {
				continue
			}
			sum := core.Summarize(s, m, pairs)
			detail := bars(fmt.Sprintf("%v average", s), sum.AvgBase, sum.AvgProp)
			detail += fmt.Sprintf("average EPI saving: %.1f%%   [paper: %s]\n", sum.AvgSavingPct, paperSaving[s])
			ms := []sim.Metric{
				sim.Fmt("avg_saving", sum.AvgSavingPct, "%.1f%%"),
				sim.Str("paper_saving", paperSaving[s]),
			}
			if withTime {
				ms = append(ms, sim.Fmt("avg_time_increase", sum.AvgTimeIncreasePct, "%.2f%%"))
				detail += fmt.Sprintf("average execution-time increase: %.2f%%   [paper: ~3%%]\n", sum.AvgTimeIncreasePct)
			}
			out = append(out, sim.Result{
				Experiment: name,
				Task: sim.Task{
					ID:     len(out),
					Label:  fmt.Sprintf("scenario=%v average", s),
					Params: sim.P("scenario", s.String(), "workload", "average"),
				},
				Metrics: ms,
				Detail:  detail,
			})
		}
		return out, nil
	}
}

// fig3Experiment regenerates Figure 3 (E1): normalized average EPI at
// HP mode over BigBench, one grid task per (scenario, workload).
func fig3Experiment(o Options) sim.Experiment {
	o = o.withDefaults()
	systems := newSharedSystems()
	return sim.Def{
		ExpName: "fig3",
		Desc:    "E1: Fig. 3 — normalized average EPI at HP mode (BigBench)",
		GridFn:  func() []sim.Task { return pairGrid(core.ModeHP, o.Instructions) },
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			res, _, err := runPairTask(t, core.ModeHP, o, systems)
			return res, err
		},
		FinishFn: figureFinish("fig3", core.ModeHP,
			map[yield.Scenario]string{yield.ScenarioA: "14%", yield.ScenarioB: "12%"}, false),
	}
}

// fig4Experiment regenerates Figure 4 (E2): per-workload EPI breakdowns
// at ULE mode over SmallBench, bars included per task.
func fig4Experiment(o Options) sim.Experiment {
	o = o.withDefaults()
	systems := newSharedSystems()
	return sim.Def{
		ExpName: "fig4",
		Desc:    "E2: Fig. 4 — normalized EPI breakdowns at ULE mode (SmallBench)",
		GridFn:  func() []sim.Task { return pairGrid(core.ModeULE, o.Instructions) },
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			res, p, err := runPairTask(t, core.ModeULE, o, systems)
			if err != nil {
				return sim.Result{}, err
			}
			res.Detail = bars(fmt.Sprintf("%v %s", t.Params["scenario"], p.Workload), p.Base.EPI, p.Prop.EPI)
			return res, nil
		},
		FinishFn: figureFinish("fig4", core.ModeULE,
			map[yield.Scenario]string{yield.ScenarioA: "42%", yield.ScenarioB: "39%"}, true),
	}
}

// headlineExperiment prints the paper-vs-measured summary (E3). Each
// grid task is one (scenario, mode) point whose workload suite fans out
// on the inner pool via core.RunPairsMulti, each workload replaying
// both designs in a single pass.
func headlineExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	paper := map[yield.Scenario]map[core.Mode]string{
		yield.ScenarioA: {core.ModeHP: "14%", core.ModeULE: "42%"},
		yield.ScenarioB: {core.ModeHP: "12%", core.ModeULE: "39%"},
	}
	return sim.Def{
		ExpName: "headline",
		Desc:    "E3: headline numbers — measured vs paper EPI savings and slowdowns (Section IV-B)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					tasks = append(tasks, sim.Task{
						Label:  fmt.Sprintf("scenario=%v mode=%v", s, m),
						Params: sim.P("scenario", s.String(), "mode", m.String()),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			m, err := modeByName(t.Params["mode"])
			if err != nil {
				return sim.Result{}, err
			}
			pairs, err := core.RunPairsMulti(s, m, suite(m, o.Instructions), o.arenas, o.Workers)
			if err != nil {
				return sim.Result{}, err
			}
			sum := core.Summarize(s, m, pairs)
			wantTime := "0%"
			if m == core.ModeULE {
				wantTime = "~3%"
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Fmt("saving", sum.AvgSavingPct, "%.1f%%"),
				sim.Str("paper_saving", paper[s][m]),
				sim.Fmt("time_increase", sum.AvgTimeIncreasePct, "%.2f%%"),
				sim.Str("paper_time_increase", wantTime),
			}}, nil
		},
	}
}

// areaExperiment prints the area comparison (E5).
func areaExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "area",
		Desc:    "E5: area — min-size 6T bitcell equivalents per cache (Section IV-B)",
		GridFn:  scenarioGrid,
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			base := core.MustNewSystem(core.PaperConfig(s, core.Baseline)).Area()
			prop := core.MustNewSystem(core.PaperConfig(s, core.Proposed)).Area()
			tb := stats.NewTable("design", "HP ways", "ULE way", "codecs", "total", "vs baseline")
			tb.AddRow("baseline", f0(base.HPWays), f0(base.ULEWays), f0(base.Codecs), f0(base.Total()), "-")
			tb.AddRow("proposed", f0(prop.HPWays), f0(prop.ULEWays), f0(prop.Codecs), f0(prop.Total()),
				stats.Pct(prop.Total()/base.Total()-1))
			detail := tb.String() + fmt.Sprintf("ULE way incl. codecs: baseline %.0f vs proposed %.0f (%s)\n",
				base.ULEWays+base.Codecs, prop.ULEWays+prop.Codecs,
				stats.Pct((prop.ULEWays+prop.Codecs)/(base.ULEWays+base.Codecs)-1))
			return sim.Result{
				Metrics: []sim.Metric{
					sim.Num("base_total", base.Total()),
					sim.Num("prop_total", prop.Total()),
					sim.Fmt("delta", 100*(prop.Total()/base.Total()-1), "%+.1f%%"),
				},
				Detail: detail,
			}, nil
		},
	}
}
