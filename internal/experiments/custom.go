package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"edcache/internal/bitcell"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// NewSizing builds the cmd/sizer experiment for an arbitrary
// methodology operating point: a single-task walkthrough of the
// Section III-C / Fig. 2 design flow — required fault-free Pf, the
// 6T/10T/8T cell sizes, yields, and every iteration of the 8T+EDC loop.
func NewSizing(in yield.Input) sim.Experiment {
	return sim.Def{
		ExpName: "sizer",
		Desc:    "design methodology walkthrough for one operating point (Section III-C / Fig. 2)",
		GridFn: func() []sim.Task {
			return []sim.Task{{
				Label: fmt.Sprintf("scenario=%v vcc=%.0fmV yield=%.2f%%", in.Scenario, in.VccULE*1000, 100*in.TargetYield),
				Params: sim.P("scenario", in.Scenario.String(),
					"vcc_mv", fmt.Sprintf("%.0f", in.VccULE*1000),
					"target_yield", fmt.Sprintf("%g", in.TargetYield)),
			}}
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			res, err := yield.Run(in)
			if err != nil {
				return sim.Result{}, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Step 0: fault-free Pf requirement over %d data bits: %.4g\n",
				in.Way.DataWords()*in.Way.DataBits, res.PfTarget)
			fmt.Fprintf(&b, "\nHP ways: %v sized at %.2f V -> %v (Pf %.3g)\n", bitcell.T6, in.VccHP, res.HPCell, res.HPCellPf)
			fmt.Fprintf(&b, "Baseline ULE way: %v sized at %.0f mV -> %v (Pf %.3g, yield %.5f)\n",
				bitcell.T10, in.VccULE*1000, res.BaselineCell, res.BaselinePf, res.BaselineYield)
			if res.UncodedFeasible {
				b.WriteString("NOTE: plain 8T could reach the fault-free target at this point — EDC not strictly required here.\n")
			} else {
				fmt.Fprintf(&b, "Plain (uncoded) 8T cannot reach Pf %.3g at any size (failure floor %.3g): EDC required.\n",
					res.PfTarget, bitcell.MustNew(bitcell.T8, 1).FailureFloor(in.VccULE))
			}
			fmt.Fprintf(&b, "\n8T+%v sizing loop (Fig. 2):\n", in.Scenario.ProposedCode())
			tb := stats.NewTable("iteration", "size", "Pf(8T)", "EDC-protected yield", "meets baseline")
			for i, it := range res.Iterations {
				tb.AddRow(fmt.Sprint(i+1), fmt.Sprintf("x%.2f", it.Size),
					fmt.Sprintf("%.4g", it.Pf8T), fmt.Sprintf("%.5f", it.Yield), fmt.Sprint(it.Met))
			}
			b.WriteString(tb.String())
			fmt.Fprintf(&b, "\nResult: %v with %v (Pf %.3g, yield %.5f ≥ baseline %.5f)\n",
				res.ProposedCell, in.Scenario.ProposedCode(), res.ProposedPf, res.ProposedYield, res.BaselineYield)

			c8, c10 := res.ProposedCell, res.BaselineCell
			overhead := float64(in.Way.DataBits+in.Scenario.ProposedCode().CheckBits()) / float64(in.Way.DataBits)
			fmt.Fprintf(&b, "\nPer-data-bit comparison at the sized cells (incl. %.0f%% check-bit overhead):\n", 100*(overhead-1))
			cmp := stats.NewTable("metric", "10T baseline", "8T+EDC proposed", "ratio")
			cmp.AddRow("area", f3(c10.AreaRel()), f3(c8.AreaRel()*overhead), f3(c8.AreaRel()*overhead/c10.AreaRel()))
			cmp.AddRow("dyn. capacitance", f3(c10.DynCapRel()), f3(c8.DynCapRel()*overhead), f3(c8.DynCapRel()*overhead/c10.DynCapRel()))
			cmp.AddRow("leakage @ULE", f3(c10.LeakRel(in.VccULE)), f3(c8.LeakRel(in.VccULE)*overhead), f3(c8.LeakRel(in.VccULE)*overhead/c10.LeakRel(in.VccULE)))
			b.WriteString(cmp.String())
			return sim.Result{
				Metrics: []sim.Metric{
					sim.Num("pf_target", res.PfTarget),
					sim.Num("baseline_size", res.BaselineCell.Size),
					sim.Num("proposed_size", res.ProposedCell.Size),
					sim.Num("baseline_yield", res.BaselineYield),
					sim.Num("proposed_yield", res.ProposedYield),
				},
				Detail: b.String(),
			}, nil
		},
	}
}

// HybridSpec configures a cmd/hybridsim run: one workload (or trace
// file) on one scenario/mode, across one or both designs.
type HybridSpec struct {
	Scenario     yield.Scenario
	Mode         core.Mode
	Designs      []core.Design // grid axis; two designs add a comparison row
	Workload     string        // bench name; ignored when TraceFile is set
	TraceFile    string        // replay a serialised trace instead
	Instructions int
}

// NewHybridRun builds the cmd/hybridsim experiment: the grid is the
// design axis, each task sizes the system and replays the stream.
func NewHybridRun(spec HybridSpec) sim.Experiment {
	return sim.Def{
		ExpName: "hybridsim",
		Desc:    "one workload on one hybrid-cache configuration: timing, cache behaviour, EPI breakdown",
		GridFn: func() []sim.Task {
			tasks := make([]sim.Task, len(spec.Designs))
			for i, d := range spec.Designs {
				tasks[i] = sim.Task{
					Label: fmt.Sprintf("%v/%v %v", spec.Scenario, d, spec.Mode),
					Params: sim.P("scenario", spec.Scenario.String(), "design", d.String(),
						"mode", spec.Mode.String()),
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			var design core.Design
			if t.Params["design"] == core.Proposed.String() {
				design = core.Proposed
			}
			sys, err := core.NewSystem(core.PaperConfig(spec.Scenario, design))
			if err != nil {
				return sim.Result{}, err
			}
			rep, err := runHybridStream(sys, spec)
			if err != nil {
				return sim.Result{}, err
			}
			siz := sys.Sizing()
			var b strings.Builder
			fmt.Fprintf(&b, "configuration %s at %v mode (%.2f V, %.0f MHz), workload %s (%d instructions)\n",
				sys.Config().Name(), spec.Mode, sys.Config().Vcc(spec.Mode), sys.Config().FreqGHz(spec.Mode)*1000,
				rep.Workload, rep.Stats.Instructions)
			fmt.Fprintf(&b, "  cells: HP ways %v | ULE way %v\n", siz.HPCell, sys.ULEWayArray().Cell)
			fmt.Fprintf(&b, "  cycles %d (CPI %.3f), time %.1f us, load-use stalls %d\n",
				rep.Stats.Cycles, rep.Stats.CPI(), rep.TimeNS/1000, rep.Stats.LoadUseStalls)
			fmt.Fprintf(&b, "  IL1 miss %.3f%%  DL1 miss %.3f%%\n",
				missPct(rep.Stats.IMisses, rep.Stats.IAccesses),
				missPct(rep.Stats.DMisses, rep.Stats.DAccesses))
			tb := stats.NewTable("EPI component", "pJ/instr", "share")
			tot := rep.EPI.Total()
			tb.AddRow("L1 dynamic", f3(rep.EPI.CacheDynamic), stats.Pct(rep.EPI.CacheDynamic/tot))
			tb.AddRow("L1 leakage", f3(rep.EPI.CacheLeakage), stats.Pct(rep.EPI.CacheLeakage/tot))
			tb.AddRow("EDC codecs", f3(rep.EPI.EDC), stats.Pct(rep.EPI.EDC/tot))
			tb.AddRow("core/other", f3(rep.EPI.Core), stats.Pct(rep.EPI.Core/tot))
			tb.AddRow("total", f3(tot), "100.0%")
			b.WriteString(tb.String())
			ms := []sim.Metric{
				sim.NumU("epi", tot, "pJ/i"),
				sim.NumU("time", rep.TimeNS, "ns"),
				sim.Fmt("cpi", rep.Stats.CPI(), "%.3f"),
			}
			ms = append(ms, breakdownMetrics("epi", rep.EPI)...)
			return sim.Result{Metrics: ms, Detail: b.String()}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			if len(results) != 2 {
				return results, nil
			}
			be, _ := results[0].Metric("epi")
			pe, _ := results[1].Metric("epi")
			bt, _ := results[0].Metric("time")
			pt, _ := results[1].Metric("time")
			return append(results, sim.Result{
				Task: sim.Task{ID: len(results), Label: "proposed vs baseline"},
				Metrics: []sim.Metric{
					sim.Fmt("epi_delta", 100*(pe.Value/be.Value-1), "%+.1f%%"),
					sim.Fmt("time_delta", 100*(pt.Value/bt.Value-1), "%+.1f%%"),
				},
			}), nil
		},
	}
}

// runHybridStream executes either the named workload generator or, when
// TraceFile is set, a serialised trace file.
func runHybridStream(sys *core.System, spec HybridSpec) (core.Report, error) {
	if spec.TraceFile != "" {
		f, err := os.Open(spec.TraceFile)
		if err != nil {
			return core.Report{}, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return core.Report{}, err
		}
		rep, err := sys.RunStream(spec.TraceFile, r, spec.Mode)
		// The reader's error is the root cause when both fail: a corrupt
		// first chunk delivers zero records, and RunStream's "empty
		// stream" complaint would mask the real corruption report.
		if rerr := r.Err(); rerr != nil {
			return core.Report{}, rerr
		}
		if err != nil {
			return core.Report{}, err
		}
		return rep, nil
	}
	w, err := workloadByName(spec.Workload, spec.Instructions)
	if err != nil {
		return core.Report{}, fmt.Errorf("%v (use -list)", err)
	}
	return sys.Run(w, spec.Mode)
}
