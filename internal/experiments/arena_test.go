package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// TestCorpusMetricsBitIdenticalToGeneratorStreams is the acceptance
// check of the decode-once port: every metric the arena-backed corpus
// sweep reports must equal — bit for bit, no tolerance — what a fresh
// generator-backed evaluation of the same grid point produces.
func TestCorpusMetricsBitIdenticalToGeneratorStreams(t *testing.T) {
	o := tinyOptions()
	res, err := sim.Runner{Workers: 8, Seed: 3}.Run(corpusExperiment(o))
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string][2]*core.System{}
	for _, s := range scenarios {
		base := core.MustNewSystem(core.PaperConfig(s, core.Baseline))
		prop := core.MustNewSystem(core.PaperConfig(s, core.Proposed))
		systems[s.String()] = [2]*core.System{base, prop}
	}
	checked := 0
	for _, r := range res {
		if r.Task.Params["workload"] == "average" {
			continue
		}
		m, err := modeByName(r.Task.Params["mode"])
		if err != nil {
			t.Fatal(err)
		}
		w, err := workloadByName(r.Task.Params["workload"], o.Instructions)
		if err != nil {
			t.Fatal(err)
		}
		pair := systems[r.Task.Params["scenario"]]
		rb, err := pair[0].Run(w, m) // generator-backed reference
		if err != nil {
			t.Fatal(err)
		}
		rp, err := pair[1].Run(w, m)
		if err != nil {
			t.Fatal(err)
		}
		p := core.Pair{Workload: w.Name, Base: rb, Prop: rp}
		want := map[string]float64{
			"base_epi":      rb.EPI.Total(),
			"prop_epi":      rp.EPI.Total(),
			"saving":        p.SavingPct(),
			"time_increase": p.TimeIncreasePct(),
			"il1_miss":      missPct(rp.Stats.IMisses, rp.Stats.IAccesses),
			"dl1_miss":      missPct(rp.Stats.DMisses, rp.Stats.DAccesses),
			"cpi":           rp.Stats.CPI(),
		}
		for name, wv := range want {
			got, ok := r.Metric(name)
			if !ok {
				t.Fatalf("%s: missing metric %s", r.Task.Label, name)
			}
			if got.Value != wv {
				t.Errorf("%s: %s = %v from the arena, %v from the generator", r.Task.Label, name, got.Value, wv)
			}
		}
		checked++
	}
	if want := 2 * 2 * len(bench.Full()); checked != want {
		t.Fatalf("compared %d grid points, want %d", checked, want)
	}
}

func TestTraceSourceNamesDisambiguateCollidingBasenames(t *testing.T) {
	names := traceSourceNames([]string{"runs/a/cap.trace", "runs/b/cap.trace", "other.trace"})
	if names["runs/a/cap.trace"] != "trace:runs/a/cap.trace" ||
		names["runs/b/cap.trace"] != "trace:runs/b/cap.trace" {
		t.Errorf("colliding basenames not disambiguated: %v", names)
	}
	if names["other.trace"] != "trace:other.trace" {
		t.Errorf("unique basename not shortened: %v", names)
	}
}

// writeWorkloadTrace serialises a workload to a v2 trace file.
func writeWorkloadTrace(t *testing.T, w bench.Workload, o trace.V2Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), w.Name+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteV2(f, w.Stream(), o); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCorpusTraceFileSource closes the capture-then-sweep loop on the
// engine: a captured trace file becomes a corpus grid point whose
// metrics are bit-identical to the generator point it was captured
// from, and the sweep stays workers-invariant with file sources in the
// grid.
func TestCorpusTraceFileSource(t *testing.T) {
	o := tinyOptions()
	w, err := workloadByName("gsm_c", o.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceFiles = []string{writeWorkloadTrace(t, w, trace.V2Options{Compress: true})}

	var outputs [][]byte
	var results []sim.Result
	for _, workers := range []int{1, 8} {
		res, err := sim.Runner{Workers: workers, Seed: 3}.Run(corpusExperiment(o))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sink, err := sim.NewSink("json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Write(res); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.Bytes())
		results = res
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Error("file-backed corpus sweep differs between 1 and 8 workers")
	}

	// Index generator-backed gsm_c rows and compare the trace rows.
	gsm := map[string]sim.Result{}
	traceRows := 0
	for _, r := range results {
		key := r.Task.Params["scenario"] + "/" + r.Task.Params["mode"]
		if r.Task.Params["workload"] == "gsm_c" {
			gsm[key] = r
		}
		if r.Task.Params["trace"] == "" {
			continue
		}
		traceRows++
		if !strings.HasPrefix(r.Task.Params["workload"], "trace:") {
			t.Errorf("trace row %q lacks the trace: workload prefix", r.Task.Label)
		}
		ref, ok := gsm[key]
		if !ok {
			t.Fatalf("no generator gsm_c row for %s", key)
		}
		for _, m := range r.Metrics {
			want, ok := ref.Metric(m.Name)
			if !ok || m.Value != want.Value {
				t.Errorf("%s: trace-backed %s = %v, generator-backed = %v", r.Task.Label, m.Name, m.Value, want.Value)
			}
		}
	}
	if traceRows != 4 { // scenarios × modes
		t.Errorf("got %d trace-backed rows, want 4", traceRows)
	}
}

// TestCorpusMissTraceFileSource sweeps a captured file across the
// capacity axis and pins it to the generator-backed rows of the same
// workload.
func TestCorpusMissTraceFileSource(t *testing.T) {
	o := tinyOptions()
	o.Instructions = 10_000
	w, err := workloadByName("adversarial_l1", o.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceFiles = []string{writeWorkloadTrace(t, w, trace.V2Options{})}
	res, err := sim.Runner{Workers: 8, Seed: 3}.Run(corpusMissExperiment(o))
	if err != nil {
		t.Fatal(err)
	}
	gen := map[string]float64{}
	traceRows := 0
	for _, r := range res {
		m, ok := r.Metric("miss_rate")
		if !ok {
			t.Fatalf("%s: no miss_rate", r.Task.Label)
		}
		if r.Task.Params["workload"] == "adversarial_l1" {
			gen[r.Task.Params["ways"]] = m.Value
		}
	}
	for _, r := range res {
		if r.Task.Params["trace"] == "" {
			continue
		}
		traceRows++
		m, _ := r.Metric("miss_rate")
		if want := gen[r.Task.Params["ways"]]; m.Value != want {
			t.Errorf("%s: trace-backed miss rate %v, generator-backed %v", r.Task.Label, m.Value, want)
		}
	}
	if traceRows != 4 { // ways axis
		t.Errorf("got %d trace-backed rows, want 4", traceRows)
	}
}

// TestPhaseEPITraceFileSource feeds phase-epi one phase-annotated and
// one unannotated capture: the first reports per-phase metrics
// matching the workload it was captured from, the second a clear
// "phases: none" row instead of failing the sweep.
func TestPhaseEPITraceFileSource(t *testing.T) {
	o := tinyOptions()
	o.Instructions = 4_000
	phased := bench.Phased("phased_capture", bench.BigBench, 4096, 1_000, 77).ScaledTo(o.Instructions)
	phasedPath := writeWorkloadTrace(t, phased, trace.V2Options{Phases: true})
	flat, err := workloadByName("adpcm_c", o.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	flatPath := writeWorkloadTrace(t, flat, trace.V2Options{})
	o.TraceFiles = []string{phasedPath, flatPath}

	res, err := sim.Runner{Workers: 4, Seed: 3}.Run(phaseEPIExperiment(o))
	if err != nil {
		t.Fatal(err)
	}
	var phasedRows, flatRows int
	sysA := [2]*core.System{
		core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Baseline)),
		core.MustNewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed)),
	}
	for _, r := range res {
		switch {
		case strings.HasSuffix(r.Task.Params["trace"], "phased_capture.trace"):
			phasedRows++
			if _, ok := r.Metric("p1_prop_epi"); !ok {
				t.Errorf("%s: phase-annotated capture reported no per-phase metrics", r.Task.Label)
			}
			if r.Task.Params["scenario"] != "A" || r.Task.Params["mode"] != "ULE" {
				continue
			}
			// Cross-check one point against a direct generator run.
			rp, err := sysA[1].Run(phased, core.ModeULE)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := r.Metric("run_prop_epi")
			if got.Value != rp.EPI.Total() {
				t.Errorf("captured phased run EPI %v, generator %v", got.Value, rp.EPI.Total())
			}
		case r.Task.Params["trace"] != "":
			flatRows++
			m, ok := r.Metric("phases")
			if !ok || !strings.Contains(m.Text, "none") {
				t.Errorf("%s: unannotated capture should report phases none, got %+v", r.Task.Label, m)
			}
		}
	}
	if phasedRows != 4 || flatRows != 4 {
		t.Errorf("got %d phased and %d flat trace rows, want 4 and 4", phasedRows, flatRows)
	}
}
