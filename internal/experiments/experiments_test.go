package experiments

import (
	"bytes"
	"testing"

	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

// tinyOptions keeps every experiment cheap enough for the smoke and
// determinism tests: short traces, few Monte-Carlo samples.
func tinyOptions() Options {
	return Options{
		Instructions: 2_000,
		Trials:       40,
		MCSamples:    []int{500, 1_000},
		Workers:      4,
	}
}

func tinyRegistry(t *testing.T) *sim.Registry {
	t.Helper()
	reg := sim.NewRegistry()
	RegisterAll(reg, tinyOptions())
	return reg
}

// TestAllExperimentsSmoke exercises every registered experiment
// end-to-end on a small grid: each must run without error and produce
// one result per grid task (plus optional summary rows).
func TestAllExperimentsSmoke(t *testing.T) {
	reg := tinyRegistry(t)
	names := reg.Names()
	if len(names) < 15 {
		t.Fatalf("only %d experiments registered, expected the full suite", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, ok := reg.Get(name)
			if !ok {
				t.Fatalf("experiment %q not found", name)
			}
			grid := len(e.Grid())
			if grid == 0 {
				t.Fatal("empty grid")
			}
			res, err := sim.Runner{Workers: 4, Seed: 1}.Run(e)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) < grid {
				t.Fatalf("got %d results for %d grid tasks", len(res), grid)
			}
			for i, r := range res {
				if r.Experiment != name {
					t.Errorf("result %d attributed to %q", i, r.Experiment)
				}
				if len(r.Metrics) == 0 && r.Detail == "" {
					t.Errorf("result %d (%s) is empty", i, r.Task.Label)
				}
			}
		})
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's regression contract:
// for a fixed seed, the parallel runner at 8 workers must produce
// results — and therefore sink output — identical to 1 worker, across
// the full suite. This protects the sharded-RNG and order-stable
// aggregation design.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	outputs := make([][]byte, 0, 2)
	for _, workers := range []int{1, 8} {
		reg := sim.NewRegistry()
		opts := tinyOptions()
		opts.Workers = workers
		RegisterAll(reg, opts)
		results, err := sim.Runner{Workers: workers, Seed: 99}.RunAll(reg, reg.Names())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sink, err := sim.NewSink("json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Write(results); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatal("JSON output differs between -workers 1 and -workers 8")
	}
}

func TestNewSizingExperiment(t *testing.T) {
	exp := NewSizing(yield.PaperInput(yield.ScenarioB))
	res, err := sim.Runner{}.Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Detail == "" {
		t.Fatalf("sizer produced %d results, want 1 with a walkthrough", len(res))
	}
	m, ok := res[0].Metric("proposed_yield")
	if !ok || m.Value <= 0 || m.Value >= 1 {
		t.Fatalf("proposed_yield metric = %+v", m)
	}
}

func TestNewHybridRunCompare(t *testing.T) {
	exp := NewHybridRun(HybridSpec{
		Scenario:     yield.ScenarioA,
		Mode:         core.ModeULE,
		Designs:      []core.Design{core.Baseline, core.Proposed},
		Workload:     "adpcm_c",
		Instructions: 2_000,
	})
	res, err := sim.Runner{Workers: 2}.Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 2 designs + comparison", len(res))
	}
	delta, ok := res[2].Metric("epi_delta")
	if !ok {
		t.Fatal("comparison row missing epi_delta")
	}
	// The proposed design must save energy at ULE mode.
	if delta.Value >= 0 {
		t.Fatalf("proposed EPI delta %+.1f%%, want negative", delta.Value)
	}
}

func TestHybridRunUnknownWorkload(t *testing.T) {
	exp := NewHybridRun(HybridSpec{
		Scenario: yield.ScenarioA, Mode: core.ModeULE,
		Designs: []core.Design{core.Proposed}, Workload: "nope", Instructions: 1000,
	})
	if _, err := (sim.Runner{}).Run(exp); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestFigureSummaryMatchesSerialSummarize cross-checks the fig4 Finish
// aggregation against core.Summarize on the same serial evaluation.
func TestFigureSummaryMatchesSerialSummarize(t *testing.T) {
	o := tinyOptions()
	reg := tinyRegistry(t)
	e, _ := reg.Get("fig4")
	res, err := sim.Runner{Workers: 8, Seed: 1}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	found := false
	for _, r := range res {
		if r.Task.Params["workload"] == "average" && r.Task.Params["scenario"] == "A" {
			m, _ := r.Metric("avg_saving")
			got = m.Value
			found = true
		}
	}
	if !found {
		t.Fatal("fig4 produced no scenario-A average row")
	}
	pairs, err := core.RunPairsN(yield.ScenarioA, core.ModeULE, suite(core.ModeULE, o.Instructions), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Summarize(yield.ScenarioA, core.ModeULE, pairs).AvgSavingPct
	if !closeTo(got, want, 1e-9) {
		t.Fatalf("fig4 average saving %.6f%% != core.Summarize %.6f%%", got, want)
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	return d < tol && d > -tol
}

func TestScenarioModeParsing(t *testing.T) {
	if s, err := scenarioByName("B"); err != nil || s != yield.ScenarioB {
		t.Fatalf("scenarioByName(B) = %v, %v", s, err)
	}
	if _, err := scenarioByName("C"); err == nil {
		t.Fatal("scenario C accepted")
	}
	if m, err := modeByName("ule"); err != nil || m != core.ModeULE {
		t.Fatalf("modeByName(ule) = %v, %v", m, err)
	}
	if _, err := modeByName("turbo"); err == nil {
		t.Fatal("mode turbo accepted")
	}
}

func TestBreakdownMetrics(t *testing.T) {
	b := core.Breakdown{CacheDynamic: 1, CacheLeakage: 2, EDC: 3, Core: 4}
	ms := breakdownMetrics("base", b)
	want := []string{"base_dyn", "base_leak", "base_edc", "base_core"}
	if len(ms) != len(want) {
		t.Fatalf("got %d metrics, want %d", len(ms), len(want))
	}
	values := []float64{1, 2, 3, 4}
	for i, m := range ms {
		if m.Name != want[i] || m.Value != values[i] {
			t.Fatalf("metric %d = %+v, want %s=%g", i, m, want[i], values[i])
		}
	}
}
