package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"edcache/internal/core"
	"edcache/internal/faults"
	"edcache/internal/sim"
	"edcache/internal/stats"
	"edcache/internal/wcet"
	"edcache/internal/yield"
)

// sizingFor returns per-scenario memoized design-methodology runs, so
// grid tasks that share an operating point size it once.
func sizingFor() func(yield.Scenario) (yield.Result, error) {
	once := make(map[yield.Scenario]func() (yield.Result, error), len(scenarios))
	for _, s := range scenarios {
		s := s
		once[s] = sync.OnceValues(func() (yield.Result, error) {
			return yield.Run(yield.PaperInput(s))
		})
	}
	return func(s yield.Scenario) (yield.Result, error) { return once[s]() }
}

// reliabilityExperiment runs the Monte-Carlo yield-equivalence campaign
// (E7): one grid task per (scenario, design), each fanning its silicon
// samples across the inner trial pool.
func reliabilityExperiment(o Options) sim.Experiment {
	sizing := sizingFor()
	return sim.Def{
		ExpName: "reliability",
		Desc:    "E7: reliability equivalence — Monte-Carlo fault campaigns vs analytic yield (Eq. 2)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, d := range []core.Design{core.Baseline, core.Proposed} {
					tasks = append(tasks, sim.Task{
						Label:  fmt.Sprintf("scenario=%v %v", s, d),
						Params: sim.P("scenario", s.String(), "design", d.String()),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			res, err := sizing(s)
			if err != nil {
				return sim.Result{}, err
			}
			// Baseline dies carry the baseline code's check bits and
			// tolerate no hard fault per word; proposed dies carry the
			// proposed code's and tolerate one.
			check := s.BaselineCode().CheckBits()
			pf, tolerable, analytic := res.BaselinePf, 0, res.BaselineYield
			if t.Params["design"] == core.Proposed.String() {
				check = s.ProposedCode().CheckBits()
				pf, tolerable, analytic = res.ProposedPf, 1, res.ProposedYield
			}
			c := faults.Campaign{
				Geometry: faults.WayGeometry{
					Lines: 32, WordsPerLine: 8,
					DataWordBits: 32 + check, TagWordBits: 26 + check,
				},
				Pf:        pf,
				Trials:    o.Trials,
				Tolerable: tolerable,
			}
			mc, err := c.Run(t.Seed, o.Workers)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Num("trials", float64(mc.Trials)),
				sim.Fmt("mc_yield", mc.Yield(), "%.4f"),
				sim.Fmt("analytic_yield", analytic, "%.4f"),
			}}, nil
		},
	}
}

// wcetExperiment is E8: the predictability argument of Sections I–II
// made quantitative. The paper rejects fault-disabling schemes because
// disabled entries are die-dependent, so a WCET bound must assume
// worst-case fault placement; the EDC design instead pays a small
// deterministic latency. Analysed on the ULE-mode cache (32 sets × 1
// way) with a cache-fitting critical loop.
func wcetExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "wcet",
		Desc:    "E8: WCET predictability — deterministic EDC latency vs faulty-entry disabling",
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			body := make([]wcet.Access, 8)
			for i := range body {
				body[i] = wcet.Access{Line: uint32(i)}
			}
			loop := wcet.Loop{Name: "critical-kernel", Body: body, Iterations: 1000, NonMemCycles: 24}
			spec := wcet.CacheSpec{Sets: 32, Ways: 1, HitLatency: 1, MissLatency: 20}

			base, err := wcet.Analyze(spec, loop)
			if err != nil {
				return sim.Result{}, err
			}
			edcSpec := spec
			edcSpec.HitLatency = 2
			edc, err := wcet.Analyze(edcSpec, loop)
			if err != nil {
				return sim.Result{}, err
			}
			curve, err := wcet.InflationCurve(spec, loop, 8)
			if err != nil {
				return sim.Result{}, err
			}

			var b strings.Builder
			fmt.Fprintf(&b, "critical loop: %d refs/iteration, %d iterations, ULE-mode cache 32x1\n",
				len(body), loop.Iterations)
			tb := stats.NewTable("design", "WCET bound (cycles)", "vs fault-free", "die-dependent?")
			tb.AddRow("fault-free (10T baseline / 8T+EDC data)", fmt.Sprint(base.WCETCycles), "-", "no")
			tb.AddRow("proposed: +1 EDC cycle", fmt.Sprint(edc.WCETCycles),
				stats.Pct(float64(edc.WCETCycles)/float64(base.WCETCycles)-1), "no")
			for _, f := range []int{1, 2, 4, 7} {
				w := uint64(float64(base.WCETCycles) * curve[f])
				tb.AddRow(fmt.Sprintf("disabling, %d worst-case faulty lines", f),
					fmt.Sprint(w), stats.Pct(curve[f]-1), "YES")
			}
			b.WriteString(tb.String())
			b.WriteString("(the EDC bound conservatively charges every access the extra cycle — the measured\n" +
				" average slowdown is only ~3% — and it is deterministic across dies; 7 faulty lines\n" +
				" ≈ the expected fault count of a plain min-size 8T way at 350 mV, and the disabling\n" +
				" bound both explodes and varies per die — the paper's reason to reject entry\n" +
				" disabling for critical applications)\n")
			return sim.Result{
				Metrics: []sim.Metric{
					sim.NumU("wcet_base", float64(base.WCETCycles), "cycles"),
					sim.NumU("wcet_edc", float64(edc.WCETCycles), "cycles"),
					sim.Fmt("edc_inflation", 100*(float64(edc.WCETCycles)/float64(base.WCETCycles)-1), "%+.1f%%"),
				},
				Detail: b.String(),
			}, nil
		},
	}
}

// serExperiment is E9: the soft-error side of scenario B's "same
// reliability levels" claim. The proposed 8T+DECTED way has words whose
// correction budget is partly consumed by a hard fault; the DUE rate
// under a Poisson soft-error process with periodic scrubbing must not
// regress the 10T+SECDED baseline's.
func serExperiment() sim.Experiment {
	const (
		words  = 256 + 32
		lambda = 1e-13 // soft errors / bit / second (SER-class magnitude)
	)
	sizing := sizingFor()
	return sim.Def{
		ExpName: "ser",
		Desc:    "E9: soft-error MTTF at ULE mode, scenario B (DECTED vs SECDED, scrub-interval sweep)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, scrub := range []float64{60, 3600, 86400} {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("scrub=%.0fs", scrub),
					Params: sim.P("scrub_s", fmt.Sprintf("%.0f", scrub)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			var scrub float64
			if _, err := fmt.Sscanf(t.Params["scrub_s"], "%f", &scrub); err != nil {
				return sim.Result{}, err
			}
			res, err := sizing(yield.ScenarioB)
			if err != nil {
				return sim.Result{}, err
			}
			// Expected hard-faulty words of the sized 8T way: words ×
			// P(word has ≥1 fault) ≈ words · n · Pf.
			expFaulty := int(math.Round(words * 45 * res.ProposedPf))
			base := []faults.WordClass{{Count: words, Bits: 39, TolerableSoft: 1}}
			prop := []faults.WordClass{
				{Count: words - expFaulty, Bits: 45, TolerableSoft: 2},
				{Count: expFaulty, Bits: 45, TolerableSoft: 1},
			}
			rb, err := faults.DUERate(base, lambda, scrub)
			if err != nil {
				return sim.Result{}, err
			}
			rp, err := faults.DUERate(prop, lambda, scrub)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Num("hard_faulty_words", float64(expFaulty)),
				sim.Fmt("baseline_mttf_years", faults.MTTFYears(rb), "%.2e"),
				sim.Fmt("proposed_mttf_years", faults.MTTFYears(rp), "%.2e"),
			}}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			results[len(results)-1].Detail = "(the DECTED design's clean words survive two accumulated soft errors vs the\n" +
				" baseline's one, which more than covers the few words whose budget a hard fault\n" +
				" consumes — the proposed design does not regress soft-error reliability)\n"
			return results, nil
		},
	}
}
