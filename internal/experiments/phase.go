package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/sim"
)

// phaseEPIExperiment is the phase-aware experiment family: for every
// phase-annotated corpus workload it segments EPI and miss rate per
// working-set regime (phase id) instead of per run — the view a
// run-level average hides exactly when the working set shifts
// mid-stream. Each task reports baseline and proposed EPI per phase,
// the per-phase saving, and the per-phase DL1 miss rate. Workloads
// replay from shared decode-once arenas; Options.TraceFiles adds
// captured phase-annotated traces (duty-cycle captures, tracegen
// -phases output) as further grid points — recorded schedules as
// first-class sweep inputs. A named file without phase annotations
// reports "phases: none" rather than failing the sweep.
func phaseEPIExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	systems := newSharedSystems()
	return sim.Def{
		ExpName: "phase-epi",
		Desc:    "phase-segmented corpus sweep — EPI, saving and miss rate per working-set regime of every phase-annotated workload (and any -trace file)",
		GridFn: func() []sim.Task {
			traceNames := traceSourceNames(o.TraceFiles)
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					for _, w := range bench.Full() {
						if !w.HasPhases() {
							continue
						}
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, w.Name),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", w.Name, "pattern", w.Pattern.String()),
						})
					}
					for _, tf := range o.TraceFiles {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, traceNames[tf]),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", traceNames[tf], "trace", tf, "pattern", "trace"),
						})
					}
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			m, err := modeByName(t.Params["mode"])
			if err != nil {
				return sim.Result{}, err
			}
			name, arena, err := o.taskArena(t)
			if err != nil {
				return sim.Result{}, err
			}
			if t.Params["trace"] != "" && !arena.HasPhases() {
				return sim.Result{Metrics: []sim.Metric{
					sim.Str("phases", "none (file carries no phase annotations; capture with -phases or RunDutyCycleCapture)"),
				}}, nil
			}
			base, prop, err := systems.get(s)
			if err != nil {
				return sim.Result{}, err
			}
			rb, err := base.RunArena(name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			rp, err := prop.RunArena(name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			if len(rp.Phases) == 0 || len(rb.Phases) != len(rp.Phases) {
				return sim.Result{}, fmt.Errorf("experiments: %s reported %d/%d phase segments", name, len(rb.Phases), len(rp.Phases))
			}
			ms := []sim.Metric{
				sim.NumU("run_base_epi", rb.EPI.Total(), "pJ/i"),
				sim.NumU("run_prop_epi", rp.EPI.Total(), "pJ/i"),
			}
			var detail strings.Builder
			fmt.Fprintf(&detail, "  %-6s %12s %12s %12s %9s %9s\n",
				"phase", "instr", "base pJ/i", "prop pJ/i", "saving", "dl1 miss")
			for i, pp := range rp.Phases {
				pb := rb.Phases[i]
				saving := 100 * (1 - pp.EPI.Total()/pb.EPI.Total())
				missRate := missPct(pp.Stats.DMisses, pp.Stats.DAccesses)
				pfx := fmt.Sprintf("p%d", pp.Phase)
				ms = append(ms,
					sim.NumU(pfx+"_base_epi", pb.EPI.Total(), "pJ/i"),
					sim.NumU(pfx+"_prop_epi", pp.EPI.Total(), "pJ/i"),
					sim.Fmt(pfx+"_saving", saving, "%.1f%%"),
					sim.Fmt(pfx+"_dl1_miss", missRate, "%.3f%%"),
				)
				fmt.Fprintf(&detail, "  %-6s %12d %12.1f %12.1f %8.1f%% %8.3f%%\n",
					pfx, pp.Stats.Instructions, pb.EPI.Total(), pp.EPI.Total(), saving, missRate)
			}
			return sim.Result{Metrics: ms, Detail: detail.String()}, nil
		},
	}
}
