package experiments

import (
	"fmt"

	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// groupKey identifies one (scenario, replay source) group of corpus
// grid points: the four design×mode evaluations that share a single
// arena pass.
type groupKey struct {
	scenario yield.Scenario
	workload string
	trace    string // file path for trace-backed sources, "" otherwise
}

// groupReports is one group's outcome, ordered [baseline, proposed] ×
// [HP, ULE].
type groupReports [4]core.Report

// pairGroups memoizes single-pass design×mode replays per (scenario,
// source): the first grid task that needs any member of a group runs
// the whole group through core.RunGroupArena once, and every other
// task of the same group — the other mode, concurrent or later — reads
// its pair out of the shared result. Combined with the bank's
// simulator dedup (designs share cache state at equal mode), a
// scenario's four corpus grid points cost roughly one replay where
// they used to cost four.
type pairGroups struct {
	o       Options
	systems *sharedSystems
	shared  *sim.Shared[groupKey, groupReports]
}

func newPairGroups(o Options, systems *sharedSystems) *pairGroups {
	g := &pairGroups{o: o, systems: systems}
	g.shared = sim.NewShared(g.build)
	return g
}

// build runs one group: both designs at both modes over the key's
// shared arena, in a single pass.
func (g *pairGroups) build(k groupKey) (groupReports, error) {
	var name string
	var arena trace.Slab
	var err error
	if k.trace != "" {
		name = k.workload
		arena, err = g.o.fileArenas.Get(k.trace)
	} else {
		_, arena, err = g.o.workloadArena(k.workload)
		name = k.workload
	}
	if err != nil {
		return groupReports{}, err
	}
	base, prop, err := g.systems.get(k.scenario)
	if err != nil {
		return groupReports{}, err
	}
	reps, err := core.RunGroupArena(name, arena, []core.GroupMember{
		{Sys: base, Mode: core.ModeHP}, {Sys: prop, Mode: core.ModeHP},
		{Sys: base, Mode: core.ModeULE}, {Sys: prop, Mode: core.ModeULE},
	})
	if err != nil {
		return groupReports{}, err
	}
	return groupReports(reps), nil
}

// pair returns the group's baseline/proposed pair for one mode,
// triggering the group's single replay on first use.
func (g *pairGroups) pair(k groupKey, m core.Mode) (core.Pair, error) {
	reps, err := g.shared.Get(k)
	if err != nil {
		return core.Pair{}, fmt.Errorf("experiments: %s group: %w", k.workload, err)
	}
	i := 0
	if m == core.ModeULE {
		i = 2
	}
	return core.Pair{Workload: reps[i].Workload, Base: reps[i], Prop: reps[i+1]}, nil
}
