package experiments

import (
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/ecc"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

// TestPairPayloadSurvivesCheckpoint is the stable-serialization contract
// behind store-backed sweeps: a real core.Pair — the Result.Data payload
// the figure and corpus grids attach for their Finish aggregation — must
// round-trip through sim.EncodeResult/DecodeResult byte-exactly,
// including the hierarchy (Report.Levels) and phase (Report.Phases)
// extensions. If this breaks, a resumed run's Finish averages silently
// diverge from an uninterrupted one.
func TestPairPayloadSurvivesCheckpoint(t *testing.T) {
	sim.RegisterPayload[core.Pair]("core.Pair")

	base, err := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	l2 := core.L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6, Protection: ecc.KindSECDED}
	prop, err := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed).WithL2(l2))
	if err != nil {
		t.Fatal(err)
	}

	// A phased workload behind a two-level proposed system populates
	// every optional Report field at once: Levels, Phases, and the
	// per-phase Levels split.
	w := bench.Phased("ckpt_phased", bench.BigBench, 4096, 1000, 7).ScaledTo(6_000)
	baseRep, err := base.Run(w, core.ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	propRep, err := prop.Run(w, core.ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if len(propRep.Levels) != 2 || len(propRep.Phases) == 0 {
		t.Fatalf("fixture too weak: levels=%d phases=%d — the round trip would not cover them",
			len(propRep.Levels), len(propRep.Phases))
	}

	pair := core.Pair{Workload: w.Name, Base: baseRep, Prop: propRep}
	r := sim.Result{
		Experiment: "fig3",
		Task:       sim.Task{ID: 2, Label: w.Name, Params: sim.P("workload", w.Name)},
		Metrics:    []sim.Metric{sim.NumU("epi", propRep.EPI.Total(), "pJ/i")},
		Data:       pair,
	}
	b, ok := sim.EncodeResult(r)
	if !ok {
		t.Fatal("a real Pair-carrying result is not checkpointable")
	}
	got, err := sim.DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	gotPair, isPair := got.Data.(core.Pair)
	if !isPair {
		t.Fatalf("payload lost its type: %T", got.Data)
	}
	if !reflect.DeepEqual(gotPair, pair) {
		t.Fatalf("Pair changed across the checkpoint round trip:\n got %+v\nwant %+v", gotPair, pair)
	}
	// The derived figures must agree to the last bit, not just "close":
	// resumed Finish aggregation reuses these exact values.
	if gotPair.SavingPct() != pair.SavingPct() || gotPair.TimeIncreasePct() != pair.TimeIncreasePct() {
		t.Fatal("derived percentages differ after round trip")
	}
}

// TestCanonicalStringCoversResultShapingOptions pins CanonicalString's
// contract: options that change result bytes must change the string
// (they key the result store), options proven not to (Workers,
// MapThreshold) must not — or every worker-count change would cold the
// cache.
func TestCanonicalStringCoversResultShapingOptions(t *testing.T) {
	baseOpt := Options{Instructions: 2_000, Trials: 40, MCSamples: []int{500}}
	baseStr := baseOpt.CanonicalString()

	shaping := map[string]Options{
		"instructions": {Instructions: 3_000, Trials: 40, MCSamples: []int{500}},
		"trials":       {Instructions: 2_000, Trials: 50, MCSamples: []int{500}},
		"mcsamples":    {Instructions: 2_000, Trials: 40, MCSamples: []int{600}},
		"traces":       {Instructions: 2_000, Trials: 40, MCSamples: []int{500}, TraceFiles: []string{"a.trc"}},
		"l2":           {Instructions: 2_000, Trials: 40, MCSamples: []int{500}, L2Geometries: []L2Geometry{{Sets: 64, Ways: 4}}},
		"l2lat":        {Instructions: 2_000, Trials: 40, MCSamples: []int{500}, L2Latency: 9},
	}
	for name, o := range shaping {
		if o.CanonicalString() == baseStr {
			t.Errorf("changing %s does not change CanonicalString — stale cache hits would serve wrong results", name)
		}
	}

	neutral := map[string]Options{
		"workers":      {Instructions: 2_000, Trials: 40, MCSamples: []int{500}, Workers: 13},
		"mapthreshold": {Instructions: 2_000, Trials: 40, MCSamples: []int{500}, MapThreshold: 1},
	}
	for name, o := range neutral {
		if o.CanonicalString() != baseStr {
			t.Errorf("%s changes CanonicalString — it cannot change result bytes, so it must not split the cache", name)
		}
	}
	if baseOpt.CanonicalString() != baseStr {
		t.Error("CanonicalString is not stable across calls")
	}
}
