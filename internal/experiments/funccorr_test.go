package experiments

import (
	"testing"

	"edcache/internal/sim"
)

// TestFuncCorrSweep pins the functional campaign's contract: the grid
// covers both scenarios across the Pf axis, the swept Pf actually
// grows along it, every sampled-and-accepted die replays with zero
// uncorrectable reads (the architecture's correctness claim, now
// exercised on the engine), and high-Pf points do find faulty silicon
// to exercise the decoders on.
func TestFuncCorrSweep(t *testing.T) {
	o := tinyOptions()
	o.Instructions = 20_000
	o.Trials = 800 // 8 dice per grid point
	e := funcCorrExperiment(o)
	if want := 2 * 4; len(e.Grid()) != want {
		t.Fatalf("func-corr grid has %d tasks, want %d (scenarios × Pf scales)", len(e.Grid()), want)
	}
	res, err := sim.Runner{Workers: 4, Seed: 11}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	var faultyAccepted bool
	lastPf := map[string]float64{}
	for _, r := range res {
		pf, ok := r.Metric("pf")
		if !ok {
			t.Fatalf("%s: no pf metric", r.Task.Label)
		}
		if prev, seen := lastPf[r.Task.Params["scenario"]]; seen && pf.Value <= prev {
			t.Errorf("%s: pf %.3e not above previous point %.3e", r.Task.Label, pf.Value, prev)
		}
		lastPf[r.Task.Params["scenario"]] = pf.Value
		if m, ok := r.Metric("uncorrectable"); !ok || m.Value != 0 {
			t.Errorf("%s: accepted dice produced uncorrectable reads (%+v)", r.Task.Label, m)
		}
		acc, ok := r.Metric("accepted")
		if !ok {
			t.Fatalf("%s: no accepted metric", r.Task.Label)
		}
		d, _ := r.Metric("dice")
		rej, _ := r.Metric("rejected")
		if acc.Value+rej.Value != d.Value {
			t.Errorf("%s: accepted %v + rejected %v != dice %v", r.Task.Label, acc.Value, rej.Value, d.Value)
		}
		fpd, _ := r.Metric("faults_per_die")
		if acc.Value > 0 && fpd.Value > 0 {
			faultyAccepted = true
			if _, ok := r.Metric("corrected_per_ki"); !ok {
				t.Errorf("%s: accepted dice but no correction-rate metric", r.Task.Label)
			}
		}
	}
	if !faultyAccepted {
		t.Error("no grid point accepted a die with faults — the campaign never exercised a decoder on faulty silicon")
	}
}

// TestFuncCorrRegistered makes sure the campaign is on the registry
// (and therefore inside the workers-invariance determinism contract,
// which runs every registered experiment at 1 and 8 workers).
func TestFuncCorrRegistered(t *testing.T) {
	reg := tinyRegistry(t)
	e, ok := reg.Get("func-corr")
	if !ok {
		t.Fatal("func-corr not registered")
	}
	if len(e.Grid()) == 0 {
		t.Fatal("func-corr grid empty")
	}
}
