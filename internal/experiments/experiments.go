// Package experiments declares every evaluation of the paper —
// Section IV's tables and figures, the ablations, and the operating-
// point sweeps — as sim.Experiment values on a sim.Registry. Binaries
// (cmd/experiments, cmd/sizer, cmd/hybridsim, examples/yieldsweep) are
// thin drivers over this package: adding a new scenario is a ~30-line
// registration here, not a new main().
package experiments

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// Options tunes the cost of the registered experiments. Tests register
// with tiny values; the binaries default to the paper's.
type Options struct {
	// Instructions is the dynamic instruction count per workload run
	// (default 300 000, the paper-scale trace length).
	Instructions int
	// Trials is the silicon-sample count of the Monte-Carlo
	// reliability campaign (default 2000).
	Trials int
	// MCSamples are the sample counts the mc-sampling experiment
	// contrasts (default 1e3, 1e4, 1e5).
	MCSamples []int
	// Workers bounds the inner-loop pools (workload fan-out, trial
	// shards) that run inside a single grid task; ≤ 0 means
	// runtime.GOMAXPROCS(0). When the driver also runs grid tasks
	// concurrently the goroutine count can exceed Workers, but true
	// parallelism stays bounded by GOMAXPROCS — oversubscription only
	// queues runnable goroutines, it does not change results.
	Workers int

	// TraceFiles names captured trace files (v1 or v2, from tracegen or
	// the System capture entry points) to sweep as first-class grid
	// points alongside the generator corpus: corpus and corpus-miss add
	// one grid point per (scenario/ways, mode, file), phase-epi one per
	// file when the file carries phase annotations. Each file is opened
	// once as a shared slab and every grid point replays it.
	TraceFiles []string

	// L2Geometries lists the second-level geometries (sets × ways at
	// the L1's line size) swept by the hierarchy experiments hier-epi
	// and shared-l2; default 128×8 and 512×8 — 32 KB and 128 KB behind
	// the paper's 8 KB L1s.
	L2Geometries []L2Geometry
	// L2Latency is the L1-miss service latency of every swept L2 in
	// cycles (default 6).
	L2Latency int

	// MapThreshold is the file size (bytes) at which trace files are
	// memory-mapped in place (trace.MapArena) instead of decoded into
	// materialized slabs; 0 means trace.DefaultMapThreshold. Mapping
	// replays the validated on-disk records out of the page cache, so
	// very large traces do not get duplicated on the heap. Replay is
	// bit-identical either way.
	MapThreshold int64

	// arenas memoizes materialized workload slabs and fileArenas
	// opened trace files, so every experiment registered from one
	// RegisterAll call generates/opens each source exactly once per
	// run. Both are installed by withDefaults and shared through it.
	arenas     *bench.ArenaCache
	fileArenas *sim.Shared[string, trace.Slab]
}

func (o Options) withDefaults() Options {
	if o.Instructions <= 0 {
		o.Instructions = 300_000
	}
	if o.Trials <= 0 {
		o.Trials = 2000
	}
	if len(o.MCSamples) == 0 {
		o.MCSamples = []int{1_000, 10_000, 100_000}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.L2Geometries) == 0 {
		o.L2Geometries = []L2Geometry{{Sets: 128, Ways: 8}, {Sets: 512, Ways: 8}}
	}
	if o.L2Latency <= 0 {
		o.L2Latency = 6
	}
	if o.arenas == nil {
		o.arenas = bench.NewArenaCache()
	}
	if o.fileArenas == nil {
		threshold := o.MapThreshold
		o.fileArenas = sim.NewShared(func(path string) (trace.Slab, error) {
			return trace.OpenSlab(path, threshold)
		})
	}
	return o
}

// CanonicalString renders every result-affecting option in a fixed
// order — the "canonicalized Options" part of a result store digest.
// Workers and MapThreshold are deliberately absent: the engine's
// standing determinism and mmap-differential tests prove neither can
// change a result byte, so including them would only split the cache.
func (o Options) CanonicalString() string {
	o = o.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "instructions=%d trials=%d mcsamples=", o.Instructions, o.Trials)
	for i, s := range o.MCSamples {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteString(" traces=")
	for i, tf := range o.TraceFiles {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(tf)
	}
	b.WriteString(" l2=")
	for i, g := range o.L2Geometries {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(g.String())
	}
	fmt.Fprintf(&b, " l2lat=%d", o.L2Latency)
	return b.String()
}

// RegisterAll registers the full evaluation suite on the registry. The
// defaulted Options carry the run's shared decode-once caches, so every
// experiment registered here generates each workload — and decodes each
// trace file — at most once, no matter how many grids replay it.
// It also registers the typed Result.Data payloads the suite attaches
// (core.Pair under the figure and corpus grids), so store-backed runs
// can checkpoint those results losslessly and Finish aggregation works
// across a resume.
func RegisterAll(r *sim.Registry, o Options) {
	o = o.withDefaults()
	sim.RegisterPayload[core.Pair]("core.Pair")
	r.MustRegister(sizingExperiment())
	r.MustRegister(yieldExperiment())
	r.MustRegister(fig3Experiment(o))
	r.MustRegister(fig4Experiment(o))
	r.MustRegister(headlineExperiment(o))
	r.MustRegister(areaExperiment())
	r.MustRegister(reliabilityExperiment(o))
	r.MustRegister(wcetExperiment())
	r.MustRegister(serExperiment())
	for _, e := range ablationExperiments(o) {
		r.MustRegister(e)
	}
	r.MustRegister(sweepVoltageExperiment())
	r.MustRegister(sweepYieldExperiment())
	r.MustRegister(mcSamplingExperiment(o))
	r.MustRegister(corpusExperiment(o))
	r.MustRegister(corpusMissExperiment(o))
	r.MustRegister(phaseEPIExperiment(o))
	r.MustRegister(funcCorrExperiment(o))
	r.MustRegister(hierEPIExperiment(o))
	r.MustRegister(sharedL2Experiment(o))
}

// scenarios is the evaluation order of the paper's two reliability
// scenarios.
var scenarios = []yield.Scenario{yield.ScenarioA, yield.ScenarioB}

// scenarioByName resolves a task's "scenario" parameter.
func scenarioByName(name string) (yield.Scenario, error) {
	switch name {
	case "A", "a":
		return yield.ScenarioA, nil
	case "B", "b":
		return yield.ScenarioB, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scenario %q", name)
	}
}

// modeByName resolves a task's "mode" parameter.
func modeByName(name string) (core.Mode, error) {
	switch name {
	case "HP", "hp":
		return core.ModeHP, nil
	case "ULE", "ule":
		return core.ModeULE, nil
	default:
		return 0, fmt.Errorf("experiments: unknown mode %q", name)
	}
}

// workloadByName resolves a benchmark name at the configured trace
// length.
func workloadByName(name string, instructions int) (bench.Workload, error) {
	w, err := bench.ByName(name)
	if err != nil {
		return bench.Workload{}, err
	}
	return w.ScaledTo(instructions), nil
}

// workloadArena resolves a benchmark name to its shared decode-once
// slab (generated at most once per run across every experiment sharing
// these Options).
func (o Options) workloadArena(name string) (bench.Workload, *trace.Arena, error) {
	w, err := workloadByName(name, o.Instructions)
	if err != nil {
		return bench.Workload{}, nil, err
	}
	return w, o.arenas.Get(w), nil
}

// taskArena resolves a grid task's replay source: a trace-file slab
// (materialized or mmap-backed, per MapThreshold) when the task names
// one (the "trace" parameter), the workload's shared slab otherwise.
// The returned name labels reports.
func (o Options) taskArena(t sim.Task) (string, trace.Slab, error) {
	if path := t.Params["trace"]; path != "" {
		a, err := o.fileArenas.Get(path)
		if err != nil {
			return "", nil, err
		}
		return t.Params["workload"], a, nil
	}
	w, a, err := o.workloadArena(t.Params["workload"])
	if err != nil {
		return "", nil, err
	}
	return w.Name, a, nil
}

// traceSourceNames labels each file-backed sweep source for the
// workload column: the basename when it is unique across the run's
// trace files, the full path when two files share one — otherwise
// their grid rows would be indistinguishable.
func traceSourceNames(paths []string) map[string]string {
	base := make(map[string]int, len(paths))
	for _, p := range paths {
		base[filepath.Base(p)]++
	}
	names := make(map[string]string, len(paths))
	for _, p := range paths {
		if base[filepath.Base(p)] > 1 {
			names[p] = "trace:" + p
		} else {
			names[p] = "trace:" + filepath.Base(p)
		}
	}
	return names
}

// missPct returns misses/accesses as a percentage, 0 when the stream
// produced no such accesses — degenerate sources (an all-branch trace,
// an empty phase) must report 0 %, not NaN.
func missPct(misses, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return 100 * float64(misses) / float64(accesses)
}

// suite returns the paper's per-mode workload suite scaled to the
// configured trace length.
func suite(m core.Mode, instructions int) []bench.Workload {
	ws := core.PaperModeWorkloads(m)
	for i := range ws {
		ws[i] = ws[i].ScaledTo(instructions)
	}
	return ws
}

// breakdownMetrics flattens an EPI breakdown into named metrics.
func breakdownMetrics(prefix string, b core.Breakdown) []sim.Metric {
	return []sim.Metric{
		sim.NumU(prefix+"_dyn", b.CacheDynamic, "pJ/i"),
		sim.NumU(prefix+"_leak", b.CacheLeakage, "pJ/i"),
		sim.NumU(prefix+"_edc", b.EDC, "pJ/i"),
		sim.NumU(prefix+"_core", b.Core, "pJ/i"),
	}
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
