// Package experiments declares every evaluation of the paper —
// Section IV's tables and figures, the ablations, and the operating-
// point sweeps — as sim.Experiment values on a sim.Registry. Binaries
// (cmd/experiments, cmd/sizer, cmd/hybridsim, examples/yieldsweep) are
// thin drivers over this package: adding a new scenario is a ~30-line
// registration here, not a new main().
package experiments

import (
	"fmt"
	"runtime"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

// Options tunes the cost of the registered experiments. Tests register
// with tiny values; the binaries default to the paper's.
type Options struct {
	// Instructions is the dynamic instruction count per workload run
	// (default 300 000, the paper-scale trace length).
	Instructions int
	// Trials is the silicon-sample count of the Monte-Carlo
	// reliability campaign (default 2000).
	Trials int
	// MCSamples are the sample counts the mc-sampling experiment
	// contrasts (default 1e3, 1e4, 1e5).
	MCSamples []int
	// Workers bounds the inner-loop pools (workload fan-out, trial
	// shards) that run inside a single grid task; ≤ 0 means
	// runtime.GOMAXPROCS(0). When the driver also runs grid tasks
	// concurrently the goroutine count can exceed Workers, but true
	// parallelism stays bounded by GOMAXPROCS — oversubscription only
	// queues runnable goroutines, it does not change results.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Instructions <= 0 {
		o.Instructions = 300_000
	}
	if o.Trials <= 0 {
		o.Trials = 2000
	}
	if len(o.MCSamples) == 0 {
		o.MCSamples = []int{1_000, 10_000, 100_000}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// RegisterAll registers the full evaluation suite on the registry.
func RegisterAll(r *sim.Registry, o Options) {
	o = o.withDefaults()
	r.MustRegister(sizingExperiment())
	r.MustRegister(yieldExperiment())
	r.MustRegister(fig3Experiment(o))
	r.MustRegister(fig4Experiment(o))
	r.MustRegister(headlineExperiment(o))
	r.MustRegister(areaExperiment())
	r.MustRegister(reliabilityExperiment(o))
	r.MustRegister(wcetExperiment())
	r.MustRegister(serExperiment())
	for _, e := range ablationExperiments(o) {
		r.MustRegister(e)
	}
	r.MustRegister(sweepVoltageExperiment())
	r.MustRegister(sweepYieldExperiment())
	r.MustRegister(mcSamplingExperiment(o))
	r.MustRegister(corpusExperiment(o))
	r.MustRegister(corpusMissExperiment(o))
	r.MustRegister(phaseEPIExperiment(o))
}

// scenarios is the evaluation order of the paper's two reliability
// scenarios.
var scenarios = []yield.Scenario{yield.ScenarioA, yield.ScenarioB}

// scenarioByName resolves a task's "scenario" parameter.
func scenarioByName(name string) (yield.Scenario, error) {
	switch name {
	case "A", "a":
		return yield.ScenarioA, nil
	case "B", "b":
		return yield.ScenarioB, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scenario %q", name)
	}
}

// modeByName resolves a task's "mode" parameter.
func modeByName(name string) (core.Mode, error) {
	switch name {
	case "HP", "hp":
		return core.ModeHP, nil
	case "ULE", "ule":
		return core.ModeULE, nil
	default:
		return 0, fmt.Errorf("experiments: unknown mode %q", name)
	}
}

// workloadByName resolves a benchmark name at the configured trace
// length.
func workloadByName(name string, instructions int) (bench.Workload, error) {
	w, err := bench.ByName(name)
	if err != nil {
		return bench.Workload{}, err
	}
	return w.ScaledTo(instructions), nil
}

// suite returns the paper's per-mode workload suite scaled to the
// configured trace length.
func suite(m core.Mode, instructions int) []bench.Workload {
	ws := core.PaperModeWorkloads(m)
	for i := range ws {
		ws[i] = ws[i].ScaledTo(instructions)
	}
	return ws
}

// breakdownMetrics flattens an EPI breakdown into named metrics.
func breakdownMetrics(prefix string, b core.Breakdown) []sim.Metric {
	return []sim.Metric{
		sim.NumU(prefix+"_dyn", b.CacheDynamic, "pJ/i"),
		sim.NumU(prefix+"_leak", b.CacheLeakage, "pJ/i"),
		sim.NumU(prefix+"_edc", b.EDC, "pJ/i"),
		sim.NumU(prefix+"_core", b.Core, "pJ/i"),
	}
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
