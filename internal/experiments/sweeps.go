package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"edcache/internal/bitcell"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

// sweepVoltageExperiment walks the design methodology across the
// ULE-mode voltage axis (scenario A, 99 % yield): how the sized 10T and
// 8T+EDC cells — and therefore the proposed design's advantage — move
// with the operating point. Infeasible points are reported, not
// errors — the cliff is the result.
func sweepVoltageExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "sweep-voltage",
		Desc:    "sizing vs ULE voltage — 10T/8T cell sizes and area ratio across 300-450 mV (scenario A)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, mv := range []float64{300, 325, 350, 375, 400, 450} {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("vcc=%.0fmV", mv),
					Params: sim.P("vcc_mv", fmt.Sprintf("%.0f", mv)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			mv, err := strconv.ParseFloat(t.Params["vcc_mv"], 64)
			if err != nil {
				return sim.Result{}, err
			}
			in := yield.PaperInput(yield.ScenarioA)
			in.VccULE = mv / 1000
			res, err := yield.Run(in)
			if err != nil {
				// Below some voltage even upsized cells cannot meet the
				// target; report and continue — that cliff is the point.
				return sim.Result{Metrics: []sim.Metric{sim.Str("feasible", "infeasible")}}, nil
			}
			ratio := res.ProposedCell.AreaRel() * 39 / 32 / res.BaselineCell.AreaRel()
			return sim.Result{Metrics: []sim.Metric{
				sim.Str("feasible", "yes"),
				sim.Fmt("size_10t", res.BaselineCell.Size, "x%.2f"),
				sim.Fmt("size_8t", res.ProposedCell.Size, "x%.2f"),
				sim.Fmt("area_per_bit_vs_10t", ratio, "%.2f"),
				sim.Num("iterations", float64(len(res.Iterations))),
			}}, nil
		},
	}
}

// sweepYieldExperiment walks the methodology across the yield-target
// axis at 350 mV. Very aggressive targets push the Pf requirement below
// the 6T failure floor — a real feasibility cliff (the fix would be
// coding the HP ways too).
func sweepYieldExperiment() sim.Experiment {
	return sim.Def{
		ExpName: "sweep-yieldtarget",
		Desc:    "sizing vs yield target — Pf requirement and cell sizes across 90-99.9% (scenario A, 350 mV)",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, y := range []float64{0.90, 0.95, 0.99, 0.995, 0.999} {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("yield=%.1f%%", y*100),
					Params: sim.P("target_yield", fmt.Sprintf("%g", y)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			y, err := strconv.ParseFloat(t.Params["target_yield"], 64)
			if err != nil {
				return sim.Result{}, err
			}
			in := yield.PaperInput(yield.ScenarioA)
			in.TargetYield = y
			res, err := yield.Run(in)
			if err != nil {
				return sim.Result{Metrics: []sim.Metric{sim.Str("feasible", "infeasible: "+err.Error())}}, nil
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.Str("feasible", "yes"),
				sim.Fmt("pf_target", res.PfTarget, "%.3g"),
				sim.Fmt("size_10t", res.BaselineCell.Size, "x%.2f"),
				sim.Fmt("size_8t", res.ProposedCell.Size, "x%.2f"),
			}}, nil
		},
	}
}

// mcSamplingExperiment demonstrates why the methodology needs
// importance sampling (Chen et al., ICCAD 2007): naive Monte-Carlo
// cannot see a 1e-6 tail at practical sample counts, the mean-shifted
// estimator resolves it with a few thousand samples. The importance-
// sampling estimate runs on the sharded parallel estimator, so this
// experiment also exercises the engine's worker-count invariance.
func mcSamplingExperiment(o Options) sim.Experiment {
	return sim.Def{
		ExpName: "mc-sampling",
		Desc:    "naive Monte-Carlo vs mean-shift importance sampling at the paper's Pf magnitudes",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, n := range o.MCSamples {
				tasks = append(tasks, sim.Task{
					Label:  fmt.Sprintf("samples=%d", n),
					Params: sim.P("samples", strconv.Itoa(n)),
				})
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			n, err := strconv.Atoi(t.Params["samples"])
			if err != nil {
				return sim.Result{}, err
			}
			cell := bitcell.MustNew(bitcell.T10, 2.60)
			naive := bitcell.NaiveMonteCarloFailureProb(cell, 0.35, n, t.Seed)
			is := bitcell.MonteCarloFailureProbN(cell, 0.35, n, t.Seed, o.Workers)
			return sim.Result{Metrics: []sim.Metric{
				sim.Fmt("naive_mc", naive.Pf, "%.3g"),
				sim.Fmt("importance_sampling", is.Pf, "%.4g"),
				sim.Fmt("is_stderr", is.StdErr, "%.2g"),
				sim.Fmt("analytic", is.Analytic, "%.4g"),
			}}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			results[len(results)-1].Detail = "(naive sampling cannot see a 1e-6 tail at these sample counts; the\n" +
				" mean-shifted estimator resolves it with a few thousand samples)\n"
			return results, nil
		},
	}
}
