package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"edcache/internal/core"
	"edcache/internal/ecc"
	"edcache/internal/sim"
	"edcache/internal/trace"
)

// The hierarchy experiments sweep the optional second cache level: how
// much of the L1 miss cost an L2 absorbs per workload (hier-epi, with
// per-level energy attribution), and what two cores contending for one
// shared L2 cost each other (shared-l2). Both sweep Options.L2Geometries
// at Options.L2Latency; systems are memoized per design point so a grid
// of N workloads builds each hierarchy configuration once.

// L2Geometry is one swept second-level shape; the line size is always
// the L1's.
type L2Geometry struct {
	Sets, Ways int
}

// String formats the geometry as the grid and the -l2 flag spell it.
func (g L2Geometry) String() string { return fmt.Sprintf("%dx%d", g.Sets, g.Ways) }

// ParseL2Geometries parses a comma-separated "SETSxWAYS,..." list, the
// cmd/experiments -l2 flag syntax.
func ParseL2Geometries(spec string) ([]L2Geometry, error) {
	var out []L2Geometry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sets, ways, ok := strings.Cut(part, "x")
		g := L2Geometry{}
		var err error
		if g.Sets, err = strconv.Atoi(sets); err != nil || !ok {
			return nil, fmt.Errorf("experiments: bad L2 geometry %q (want SETSxWAYS)", part)
		}
		if g.Ways, err = strconv.Atoi(ways); err != nil {
			return nil, fmt.Errorf("experiments: bad L2 geometry %q (want SETSxWAYS)", part)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty L2 geometry list %q", spec)
	}
	return out, nil
}

// taskL2Geometry resolves a task's "l2" parameter.
func taskL2Geometry(t sim.Task) (L2Geometry, error) {
	gs, err := ParseL2Geometries(t.Params["l2"])
	if err != nil {
		return L2Geometry{}, err
	}
	return gs[0], nil
}

// l2Protections is the protection-policy axis of hier-epi.
var l2Protections = []struct {
	name string
	kind ecc.Kind
}{
	{"none", ecc.KindNone},
	{"secded", ecc.KindSECDED},
	{"dected", ecc.KindDECTED},
}

func protByName(name string) (ecc.Kind, error) {
	for _, p := range l2Protections {
		if p.name == name {
			return p.kind, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown L2 protection %q", name)
}

// hierWorkloads spans the corpus regimes the hierarchy differentiates:
// an L1-resident benchmark, a pointer chase, a streaming stencil, the
// phase-shifting mix and the L1-adversarial sweep.
var hierWorkloads = []string{"gsm_c", "ptrchase_l", "stencil_dsp", "phased_mix", "adversarial_l1"}

// hierKey identifies one memoized hierarchy design point.
type hierKey struct {
	geom L2Geometry
	prot ecc.Kind
}

// newHierSystems memoizes one scenario-A proposed System per hierarchy
// design point, plus the flat (no-L2) sibling every delta compares
// against.
func newHierSystems(o Options) (*sim.Shared[hierKey, *core.System], *sim.Shared[struct{}, *core.System]) {
	tiered := sim.NewShared(func(k hierKey) (*core.System, error) {
		cfg := core.PaperConfig(scenarios[0], core.Proposed).WithL2(core.L2Config{
			Sets: k.geom.Sets, Ways: k.geom.Ways, LineBytes: 32,
			Latency: o.L2Latency, Protection: k.prot,
		})
		return core.NewSystem(cfg)
	})
	flat := sim.NewShared(func(struct{}) (*core.System, error) {
		return core.NewSystem(core.PaperConfig(scenarios[0], core.Proposed))
	})
	return tiered, flat
}

// hierEPIExperiment sweeps L2 geometry × protection × workload on the
// scenario-A proposed design at HP and attributes the run per cache
// level: each level's EPI share, traffic and stall time, plus the
// whole-run EPI and cycle delta against the single-level platform.
func hierEPIExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	tiered, flat := newHierSystems(o)
	return sim.Def{
		ExpName: "hier-epi",
		Desc:    "two-level hierarchy sweep — per-level EPI, traffic and stall breakdown across L2 geometry × protection × workload, with deltas vs the single-level platform",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, g := range o.L2Geometries {
				for _, p := range l2Protections {
					for _, w := range hierWorkloads {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("l2=%v prot=%s %s", g, p.name, w),
							Params: sim.P("l2", g.String(), "prot", p.name,
								"workload", w, "mode", "HP"),
						})
					}
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			g, err := taskL2Geometry(t)
			if err != nil {
				return sim.Result{}, err
			}
			prot, err := protByName(t.Params["prot"])
			if err != nil {
				return sim.Result{}, err
			}
			w, arena, err := o.workloadArena(t.Params["workload"])
			if err != nil {
				return sim.Result{}, err
			}
			sys, err := tiered.Get(hierKey{geom: g, prot: prot})
			if err != nil {
				return sim.Result{}, err
			}
			fsys, err := flat.Get(struct{}{})
			if err != nil {
				return sim.Result{}, err
			}
			rep, err := sys.RunArena(w.Name, arena, core.ModeHP)
			if err != nil {
				return sim.Result{}, err
			}
			frep, err := fsys.RunArena(w.Name, arena, core.ModeHP)
			if err != nil {
				return sim.Result{}, err
			}
			l1, l2 := rep.Levels[0], rep.Levels[1]
			ms := []sim.Metric{
				sim.NumU("epi", rep.EPI.Total(), "pJ/i"),
				sim.Fmt("epi_delta", 100*(rep.EPI.Total()/frep.EPI.Total()-1), "%+.1f%%"),
				sim.Fmt("cycles_delta", 100*(float64(rep.Stats.Cycles)/float64(frep.Stats.Cycles)-1), "%+.1f%%"),
				sim.NumU("l1_epi", l1.EPI(), "pJ/i"),
				sim.NumU("l2_epi", l2.EPI(), "pJ/i"),
				sim.Fmt("l2_miss", missPct(l2.Misses, l2.Accesses), "%.2f%%"),
				sim.NumU("l1_stall", l1.StallNS, "ns"),
				sim.NumU("l2_stall", l2.StallNS, "ns"),
			}
			detail := fmt.Sprintf(
				"  level  %12s %12s %12s %12s\n  L1     %12.2f %12d %12d %12.0f\n  L2     %12.2f %12d %12d %12.0f\n",
				"pJ/i", "accesses", "misses", "stall ns",
				l1.EPI(), l1.Accesses, l1.Misses, l1.StallNS,
				l2.EPI(), l2.Accesses, l2.Misses, l2.StallNS)
			return sim.Result{Metrics: ms, Detail: detail}, nil
		},
	}
}

// sharedPairs are the co-running workload pairs of shared-l2: a code-
// heavy benchmark against a pointer chase, and a streaming stencil
// against the L1-adversarial sweep — footprints that contend for L2
// capacity in visibly different ways.
var sharedPairs = [][2]string{
	{"gsm_c", "ptrchase_l"},
	{"stencil_dsp", "adversarial_l1"},
}

// sharedL2Experiment co-runs workload pairs over one shared L2 per
// geometry and prices the interference: each core's EPI and L2 misses
// when sharing versus running the same hierarchy alone.
func sharedL2Experiment(o Options) sim.Experiment {
	o = o.withDefaults()
	tiered, _ := newHierSystems(o)
	return sim.Def{
		ExpName: "shared-l2",
		Desc:    "shared-L2 contention sweep — per-core EPI and L2 miss inflation of co-running workload pairs vs each running the hierarchy alone",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, g := range o.L2Geometries {
				for _, pair := range sharedPairs {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("l2=%v %s+%s", g, pair[0], pair[1]),
						Params: sim.P("l2", g.String(), "wa", pair[0], "wb", pair[1],
							"mode", "HP"),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			g, err := taskL2Geometry(t)
			if err != nil {
				return sim.Result{}, err
			}
			wa, aa, err := o.workloadArena(t.Params["wa"])
			if err != nil {
				return sim.Result{}, err
			}
			wb, ab, err := o.workloadArena(t.Params["wb"])
			if err != nil {
				return sim.Result{}, err
			}
			sys, err := tiered.Get(hierKey{geom: g, prot: ecc.KindNone})
			if err != nil {
				return sim.Result{}, err
			}
			shared, err := sys.RunShared(
				[]string{wa.Name, wb.Name},
				[]trace.Stream{aa.NewCursor(), ab.NewCursor()}, core.ModeHP)
			if err != nil {
				return sim.Result{}, err
			}
			var ms []sim.Metric
			var detail strings.Builder
			fmt.Fprintf(&detail, "  %-16s %10s %10s %12s %12s\n",
				"core", "epi pJ/i", "Δepi", "l2 misses", "Δmisses")
			arenas := []*trace.Arena{aa, ab}
			for i, rep := range shared {
				alone, err := sys.RunArena(rep.Workload, arenas[i], core.ModeHP)
				if err != nil {
					return sim.Result{}, err
				}
				sm := rep.Levels[1].Misses
				am := alone.Levels[1].Misses
				dEPI := 100 * (rep.EPI.Total()/alone.EPI.Total() - 1)
				dMiss := 100 * (float64(sm)/float64(max(am, 1)) - 1)
				pfx := fmt.Sprintf("c%d", i)
				ms = append(ms,
					sim.NumU(pfx+"_epi", rep.EPI.Total(), "pJ/i"),
					sim.Fmt(pfx+"_depi", dEPI, "%+.1f%%"),
					sim.Fmt(pfx+"_dl2miss", dMiss, "%+.1f%%"),
				)
				fmt.Fprintf(&detail, "  %-16s %10.1f %+9.1f%% %12d %+11.1f%%\n",
					rep.Workload, rep.EPI.Total(), dEPI, sm, dMiss)
			}
			return sim.Result{Metrics: ms, Detail: detail.String()}, nil
		},
	}
}
