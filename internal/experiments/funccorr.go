package experiments

import (
	"fmt"
	"math/rand"

	"edcache/internal/core"
	"edcache/internal/cpu"
	"edcache/internal/faults"
	"edcache/internal/sim"
)

// funcCorrWorkload is the corpus workload the functional campaign
// replays: a SmallBench stencil whose code and data fit the 1 KB
// single-way geometry the bit-accurate FunctionalCache models, so the
// protected arrays see steady reuse rather than pure compulsory
// misses.
const funcCorrWorkload = "stencil_s"

// funcCorrInstructions caps the per-die replay length: the protected
// path runs every fetched and accessed word through encoder → fault
// map → decoder, which is orders of magnitude more expensive than the
// performance model, and correction counts converge long before the
// paper-scale trace length.
const funcCorrInstructions = 60_000

// funcCorrExperiment puts the protected layer on the engine (the
// ROADMAP follow-up): each grid task replays one corpus workload
// through core.ReplayFunctional — both L1s behind bit-accurate EDC
// codewords on the batched port — over freshly sampled faulty dice at
// a swept fault probability (multiples of the sized ULE-mode Pf, the
// paper's operating point). Dice that yield screening would reject
// (more faults in one word than the code corrects) are counted and
// skipped, exactly as manufacturing test would; accepted dice must
// replay with zero uncorrectable reads, and the reported correction
// counts show how hard the decoders work as Pf grows.
func funcCorrExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	sizing := sizingFor()
	// The sized ULE-mode Pf puts a couple of hard faults on every die;
	// much past 10× of it, screening rejects nearly all silicon (a
	// word collects more faults than the code corrects), so the axis
	// spans the regime where dice are still manufacturable and the
	// decoders visibly work harder as Pf grows.
	pfScales := []float64{0.3, 1, 3, 10}
	dice := o.Trials / 100
	if dice < 2 {
		dice = 2
	}
	if dice > 12 {
		dice = 12
	}
	insts := o.Instructions
	if insts > funcCorrInstructions {
		insts = funcCorrInstructions
	}
	return sim.Def{
		ExpName: "func-corr",
		Desc:    "functional correction campaign — corpus replay through bit-accurate protected caches over sampled faulty dice, correction counts vs Pf",
		GridFn: func() []sim.Task {
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, scale := range pfScales {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("scenario=%v pf=%gx %s", s, scale, funcCorrWorkload),
						Params: sim.P("scenario", s.String(), "pf_scale", fmt.Sprintf("%g", scale),
							"workload", funcCorrWorkload),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, rng *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			var scale float64
			if _, err := fmt.Sscanf(t.Params["pf_scale"], "%g", &scale); err != nil {
				return sim.Result{}, fmt.Errorf("experiments: bad pf_scale %q", t.Params["pf_scale"])
			}
			res, err := sizing(s)
			if err != nil {
				return sim.Result{}, err
			}
			w, err := workloadByName(t.Params["workload"], insts)
			if err != nil {
				return sim.Result{}, err
			}
			arena := o.arenas.Get(w)

			// The proposed ULE-mode way: its code kind sizes the word
			// geometry the fault generator fills, its single-fault
			// tolerance is the screening criterion (matching the
			// reliability experiment's convention).
			kind := s.ProposedCode()
			check := kind.CheckBits()
			geom := faults.WayGeometry{
				Lines: 32, WordsPerLine: 8,
				DataWordBits: 32 + check, TagWordBits: 26 + check,
			}
			pf := res.ProposedPf * scale

			var accepted, rejected int
			var faultCount, corrected, uncorrectable int
			var replayed uint64
			for d := 0; d < dice; d++ {
				m, err := faults.Generate(geom, pf, rng)
				if err != nil {
					return sim.Result{}, err
				}
				faultCount += m.Count()
				if !m.Usable(1) {
					rejected++
					continue
				}
				accepted++
				il1, err := core.NewFunctionalCache(32, 8, kind, nil)
				if err != nil {
					return sim.Result{}, err
				}
				dl1, err := core.NewFunctionalCache(32, 8, kind, m)
				if err != nil {
					return sim.Result{}, err
				}
				st, err := core.ReplayFunctional(cpu.Config{MemLatency: 20}, il1, dl1, 1, arena.Cursor())
				if err != nil {
					return sim.Result{}, err
				}
				replayed += st.Instructions
				corrected += dl1.CorrectedReads
				uncorrectable += dl1.Uncorrectable
			}
			ms := []sim.Metric{
				sim.Fmt("pf", pf, "%.3e"),
				sim.Num("dice", float64(dice)),
				sim.Num("accepted", float64(accepted)),
				sim.Num("rejected", float64(rejected)),
				sim.Fmt("faults_per_die", float64(faultCount)/float64(dice), "%.2f"),
				sim.Num("uncorrectable", float64(uncorrectable)),
			}
			if accepted > 0 {
				ms = append(ms,
					sim.Fmt("corrected_per_die", float64(corrected)/float64(accepted), "%.1f"),
					sim.Fmt("corrected_per_ki", 1000*float64(corrected)/float64(replayed), "%.3f"))
			}
			return sim.Result{Metrics: ms}, nil
		},
	}
}
