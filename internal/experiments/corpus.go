package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/trace"
)

// corpusExperiment sweeps the full workload corpus — the paper's ten
// MediaBench-like kernels plus the extension generators (pointer
// chasing, stencils, branch-heavy control, phased working sets, the
// conflict adversary) — across both scenarios and both operating
// modes: EPI for baseline and proposed, miss rates, and the ULE-mode
// slowdown from the EDC pipeline stage. The grid fans out on the
// engine with single-pass grouped replay on top of decode-once arenas:
// every workload is generated once into a shared slab, and the four
// design×mode points of one (scenario, workload) replay it as ONE
// core.RunGroupArena pass — one cursor walk, one classification, and
// (designs sharing cache state at equal mode) two cache simulations
// per side where the grid has four evaluation points. Each grid task
// keeps its own row; it just reads its mode's pair out of the shared
// group, so grid shape, metrics and the workers-invariance contract
// are untouched — grouped replay is bit-identical to per-point replay.
// Options.TraceFiles adds captured trace files as further grid points,
// completing the capture-then-sweep loop on the engine.
func corpusExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	groups := newPairGroups(o, newSharedSystems())
	return sim.Def{
		ExpName: "corpus",
		Desc:    "corpus-wide sweep — EPI, miss rates and ULE slowdown for every registered workload (and any -trace file), both scenarios and modes",
		GridFn: func() []sim.Task {
			traceNames := traceSourceNames(o.TraceFiles)
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					for _, w := range bench.Full() {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, w.Name),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", w.Name, "suite", w.Suite.String(), "pattern", w.Pattern.String()),
						})
					}
					for _, tf := range o.TraceFiles {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, traceNames[tf]),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", traceNames[tf], "trace", tf,
								"suite", "trace", "pattern", "trace"),
						})
					}
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			m, err := modeByName(t.Params["mode"])
			if err != nil {
				return sim.Result{}, err
			}
			p, err := groups.pair(groupKey{scenario: s, workload: t.Params["workload"], trace: t.Params["trace"]}, m)
			if err != nil {
				return sim.Result{}, err
			}
			rb, rp := p.Base, p.Prop
			ms := []sim.Metric{
				sim.NumU("base_epi", rb.EPI.Total(), "pJ/i"),
				sim.NumU("prop_epi", rp.EPI.Total(), "pJ/i"),
				sim.Fmt("saving", p.SavingPct(), "%.1f%%"),
				sim.Fmt("time_increase", p.TimeIncreasePct(), "%.2f%%"),
				sim.Fmt("il1_miss", missPct(rp.Stats.IMisses, rp.Stats.IAccesses), "%.3f%%"),
				sim.Fmt("dl1_miss", missPct(rp.Stats.DMisses, rp.Stats.DAccesses), "%.3f%%"),
				sim.Fmt("cpi", rp.Stats.CPI(), "%.3f"),
			}
			return sim.Result{Metrics: ms, Data: p}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			// Corpus-wide averages per (scenario, mode), aggregated with
			// the library's own summariser so every experiment shares one
			// averaging convention. File-backed points are reported but
			// excluded from the averages, which would otherwise shift with
			// whatever -trace files a run happens to add.
			out := results
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					var pairs []core.Pair
					for _, r := range results {
						if r.Task.Params["scenario"] != s.String() || r.Task.Params["mode"] != m.String() ||
							r.Task.Params["trace"] != "" {
							continue
						}
						if p, ok := r.Data.(core.Pair); ok {
							pairs = append(pairs, p)
						}
					}
					if len(pairs) == 0 {
						continue
					}
					sum := core.Summarize(s, m, pairs)
					out = append(out, sim.Result{
						Task: sim.Task{
							ID:     len(out),
							Label:  fmt.Sprintf("scenario=%v %v corpus average", s, m),
							Params: sim.P("scenario", s.String(), "mode", m.String(), "workload", "average"),
						},
						Metrics: []sim.Metric{
							sim.Fmt("avg_saving", sum.AvgSavingPct, "%.1f%%"),
							sim.Fmt("avg_time_increase", sum.AvgTimeIncreasePct, "%.2f%%"),
						},
					})
				}
			}
			return out, nil
		},
	}
}

// corpusMissGeometry is the full cache geometry the capacity sweep
// slices (the paper's L1) and the geometry the calibrated workloads
// are footprint-sized against.
var corpusMissGeometry = cache.Config{Sets: 32, Ways: 8, LineBytes: 32}

// calibratedByName resolves one of the capacity-calibrated generator
// instances (bench.CalibratedCorpus over the sweep geometry) at the
// configured trace length.
func calibratedByName(name string, instructions int) (bench.Workload, error) {
	for _, w := range bench.CalibratedCorpus(corpusMissGeometry) {
		if w.Name == name {
			return w.ScaledTo(instructions), nil
		}
	}
	return bench.Workload{}, fmt.Errorf("experiments: unknown calibrated workload %q", name)
}

// profileKey identifies one corpus-miss replay source: the stream
// whose single stack-distance profile serves the whole capacity axis.
type profileKey struct {
	workload string
	trace    string
	suite    string // "calibrated" resolves through calibratedByName
}

// corpusMissExperiment characterises every corpus workload's data-side
// locality: DL1 miss rate as capacity grows from the 1 KB ULE way to
// the full 8 KB cache (ways 1, 2, 4, 8). The sweep separates capacity
// misses (vanish with ways) from the adversary's conflict misses (they
// never do). The capacity axis runs on Mattson-style single-pass
// profiling: per source, ONE cache.StackProfile pass over the shared
// decode-once arena replaces the per-associativity replays — each
// ways-k grid point is then an O(histogram) readout, bit-identical to
// replaying a k-way cache (the LRU inclusion property, pinned by the
// profiler's property test and this package's replay cross-check).
// Alongside the registered corpus it sweeps bench.CalibratedCorpus:
// stencil and pointer-chase instances footprint-sized at fit/2×/8× of
// the swept geometry by bench.CalibrateFootprint, so the capacity axis
// carries points that track the cache configuration instead of
// hand-picked byte counts. Options.TraceFiles adds captured trace
// files too.
func corpusMissExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	ways := []int{1, 2, 4, 8}
	profiles := sim.NewShared(func(k profileKey) (*cache.StackProfile, error) {
		var arena trace.Slab
		var err error
		switch {
		case k.suite == "calibrated":
			var w bench.Workload
			if w, err = calibratedByName(k.workload, o.Instructions); err == nil {
				arena = o.arenas.Get(w)
			}
		case k.trace != "":
			arena, err = o.fileArenas.Get(k.trace)
		default:
			_, arena, err = o.workloadArena(k.workload)
		}
		if err != nil {
			return nil, err
		}
		p := cache.MustNewStackProfile(corpusMissGeometry)
		ProfileDataRefs(arena.NewCursor(), p)
		return p, nil
	})
	return sim.Def{
		ExpName: "corpus-miss",
		Desc:    "corpus locality sweep — DL1 miss rate vs cache capacity (1-8 ways) for every registered workload, geometry-calibrated footprints (and any -trace file)",
		GridFn: func() []sim.Task {
			traceNames := traceSourceNames(o.TraceFiles)
			var tasks []sim.Task
			for _, w := range bench.Full() {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", w.Name, k),
						Params: sim.P("workload", w.Name, "ways", strconv.Itoa(k),
							"suite", w.Suite.String(), "pattern", w.Pattern.String()),
					})
				}
			}
			for _, w := range bench.CalibratedCorpus(corpusMissGeometry) {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", w.Name, k),
						Params: sim.P("workload", w.Name, "ways", strconv.Itoa(k),
							"suite", "calibrated", "pattern", w.Pattern.String()),
					})
				}
			}
			for _, tf := range o.TraceFiles {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", traceNames[tf], k),
						Params: sim.P("workload", traceNames[tf], "trace", tf,
							"ways", strconv.Itoa(k), "suite", "trace", "pattern", "trace"),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			k, err := strconv.Atoi(t.Params["ways"])
			if err != nil {
				return sim.Result{}, err
			}
			// One profile pass per source serves every ways-k task; the
			// post-build reads (Refs, Misses) are read-only and safe for
			// the concurrent tasks sharing it.
			prof, err := profiles.Get(profileKey{
				workload: t.Params["workload"], trace: t.Params["trace"], suite: t.Params["suite"],
			})
			if err != nil {
				return sim.Result{}, err
			}
			refs := prof.Refs()
			if refs == 0 {
				return sim.Result{}, fmt.Errorf("experiments: %s produced no memory references", t.Params["workload"])
			}
			misses := prof.Misses(k)
			geom := corpusMissGeometry
			geom.Ways = k
			return sim.Result{Metrics: []sim.Metric{
				sim.NumU("capacity", float64(geom.SizeBytes()), "B"),
				sim.Num("refs", float64(refs)),
				sim.Fmt("miss_rate", 100*float64(misses)/float64(refs), "%.3f%%"),
			}}, nil
		},
	}
}

// replayChunk is the instruction granularity of the data-reference
// replay loops below.
const replayChunk = 4096

// replayScratch is one replay loop's buffer set, pooled so the sweep's
// steady state (thousands of grid points across worker goroutines)
// reuses a few scratch sets instead of allocating ~170 KB per point.
type replayScratch struct {
	insts []trace.Inst
	ops   []cache.Op
	res   []cache.Result
}

var replayPool = sync.Pool{New: func() any {
	return &replayScratch{
		insts: make([]trace.Inst, replayChunk),
		ops:   make([]cache.Op, 0, replayChunk),
		res:   make([]cache.Result, replayChunk),
	}
}}

// dataRefChunks drains the stream, extracting loads and stores in
// program order into pooled chunks and handing each op chunk to sink.
// It is the shared walk of ReplayDataRefs and ProfileDataRefs.
func dataRefChunks(s trace.Stream, sink func(ops []cache.Op)) (refs int) {
	scr := replayPool.Get().(*replayScratch)
	defer replayPool.Put(scr)
	for {
		n := trace.Fill(s, scr.insts)
		if n == 0 {
			return refs
		}
		ops := scr.ops[:0]
		for i := 0; i < n; i++ {
			if scr.insts[i].IsLoad || scr.insts[i].IsStore {
				ops = append(ops, cache.Op{Addr: scr.insts[i].Addr, Write: scr.insts[i].IsStore})
			}
		}
		sink(ops)
		refs += len(ops)
	}
}

// ReplayDataRefs streams a workload's loads and stores through one
// cache via the batched entry point and counts misses. It is the
// per-geometry replay loop the capacity axis used grid-point by grid
// point (and the oracle its profiled replacement is tested against);
// the root benchmark harness reuses it so BenchmarkCorpusSweep
// measures exactly this loop.
func ReplayDataRefs(s trace.Stream, c *cache.Cache) (refs, misses int) {
	scr := replayPool.Get().(*replayScratch)
	res := scr.res
	refs = dataRefChunks(s, func(ops []cache.Op) {
		c.AccessBatch(ops, res[:len(ops)])
		for i := range ops {
			if !res[i].Hit {
				misses++
			}
		}
	})
	replayPool.Put(scr)
	return refs, misses
}

// ProfileDataRefs streams a workload's loads and stores through a
// stack-distance profiler: the single pass that replaces the capacity
// axis's per-associativity ReplayDataRefs replays. Returns the
// reference count (equal to what any ReplayDataRefs over the same
// stream reports).
func ProfileDataRefs(s trace.Stream, p *cache.StackProfile) (refs int) {
	return dataRefChunks(s, p.AccessBatch)
}
