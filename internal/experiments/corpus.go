package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/core"
	"edcache/internal/sim"
	"edcache/internal/trace"
)

// corpusExperiment sweeps the full workload corpus — the paper's ten
// MediaBench-like kernels plus the extension generators (pointer
// chasing, stencils, branch-heavy control, phased working sets, the
// conflict adversary) — across both scenarios and both operating
// modes: EPI for baseline and proposed, miss rates, and the ULE-mode
// slowdown from the EDC pipeline stage. The grid fans out on the
// engine with decode-once replay: every workload is generated once
// into a shared arena and each of its grid points replays a cursor, so
// generation cost no longer scales with the grid (the workers-
// invariant determinism contract is untouched — a cursor replays the
// exact generator sequence). Options.TraceFiles adds captured trace
// files as further grid points, completing the capture-then-sweep loop
// on the engine.
func corpusExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	systems := newSharedSystems()
	return sim.Def{
		ExpName: "corpus",
		Desc:    "corpus-wide sweep — EPI, miss rates and ULE slowdown for every registered workload (and any -trace file), both scenarios and modes",
		GridFn: func() []sim.Task {
			traceNames := traceSourceNames(o.TraceFiles)
			var tasks []sim.Task
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					for _, w := range bench.Full() {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, w.Name),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", w.Name, "suite", w.Suite.String(), "pattern", w.Pattern.String()),
						})
					}
					for _, tf := range o.TraceFiles {
						tasks = append(tasks, sim.Task{
							Label: fmt.Sprintf("scenario=%v %v %s", s, m, traceNames[tf]),
							Params: sim.P("scenario", s.String(), "mode", m.String(),
								"workload", traceNames[tf], "trace", tf,
								"suite", "trace", "pattern", "trace"),
						})
					}
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			s, err := taskScenario(t)
			if err != nil {
				return sim.Result{}, err
			}
			m, err := modeByName(t.Params["mode"])
			if err != nil {
				return sim.Result{}, err
			}
			name, arena, err := o.taskArena(t)
			if err != nil {
				return sim.Result{}, err
			}
			base, prop, err := systems.get(s)
			if err != nil {
				return sim.Result{}, err
			}
			rb, err := base.RunArena(name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			rp, err := prop.RunArena(name, arena, m)
			if err != nil {
				return sim.Result{}, err
			}
			p := core.Pair{Workload: name, Base: rb, Prop: rp}
			ms := []sim.Metric{
				sim.NumU("base_epi", rb.EPI.Total(), "pJ/i"),
				sim.NumU("prop_epi", rp.EPI.Total(), "pJ/i"),
				sim.Fmt("saving", p.SavingPct(), "%.1f%%"),
				sim.Fmt("time_increase", p.TimeIncreasePct(), "%.2f%%"),
				sim.Fmt("il1_miss", missPct(rp.Stats.IMisses, rp.Stats.IAccesses), "%.3f%%"),
				sim.Fmt("dl1_miss", missPct(rp.Stats.DMisses, rp.Stats.DAccesses), "%.3f%%"),
				sim.Fmt("cpi", rp.Stats.CPI(), "%.3f"),
			}
			return sim.Result{Metrics: ms, Data: p}, nil
		},
		FinishFn: func(results []sim.Result) ([]sim.Result, error) {
			// Corpus-wide averages per (scenario, mode), aggregated with
			// the library's own summariser so every experiment shares one
			// averaging convention. File-backed points are reported but
			// excluded from the averages, which would otherwise shift with
			// whatever -trace files a run happens to add.
			out := results
			for _, s := range scenarios {
				for _, m := range []core.Mode{core.ModeHP, core.ModeULE} {
					var pairs []core.Pair
					for _, r := range results {
						if r.Task.Params["scenario"] != s.String() || r.Task.Params["mode"] != m.String() ||
							r.Task.Params["trace"] != "" {
							continue
						}
						if p, ok := r.Data.(core.Pair); ok {
							pairs = append(pairs, p)
						}
					}
					if len(pairs) == 0 {
						continue
					}
					sum := core.Summarize(s, m, pairs)
					out = append(out, sim.Result{
						Task: sim.Task{
							ID:     len(out),
							Label:  fmt.Sprintf("scenario=%v %v corpus average", s, m),
							Params: sim.P("scenario", s.String(), "mode", m.String(), "workload", "average"),
						},
						Metrics: []sim.Metric{
							sim.Fmt("avg_saving", sum.AvgSavingPct, "%.1f%%"),
							sim.Fmt("avg_time_increase", sum.AvgTimeIncreasePct, "%.2f%%"),
						},
					})
				}
			}
			return out, nil
		},
	}
}

// corpusMissGeometry is the full cache geometry the capacity sweep
// slices (the paper's L1) and the geometry the calibrated workloads
// are footprint-sized against.
var corpusMissGeometry = cache.Config{Sets: 32, Ways: 8, LineBytes: 32}

// calibratedByName resolves one of the capacity-calibrated generator
// instances (bench.CalibratedCorpus over the sweep geometry) at the
// configured trace length.
func calibratedByName(name string, instructions int) (bench.Workload, error) {
	for _, w := range bench.CalibratedCorpus(corpusMissGeometry) {
		if w.Name == name {
			return w.ScaledTo(instructions), nil
		}
	}
	return bench.Workload{}, fmt.Errorf("experiments: unknown calibrated workload %q", name)
}

// corpusMissExperiment characterises every corpus workload's data-side
// locality on the raw cache simulator: DL1 miss rate as capacity grows
// from the 1 KB ULE way to the full 8 KB cache (ways 1, 2, 4, 8). The
// sweep separates capacity misses (vanish with ways) from the
// adversary's conflict misses (they never do) and runs on the batched
// cache entry point over shared decode-once arenas — no energy model
// and no regeneration, so the full grid is cheap. Alongside the
// registered corpus it sweeps bench.CalibratedCorpus: stencil and
// pointer-chase instances footprint-sized at fit/2×/8× of the swept
// geometry by bench.CalibrateFootprint, so the capacity axis carries
// points that track the cache configuration instead of hand-picked
// byte counts. Options.TraceFiles adds captured trace files too.
func corpusMissExperiment(o Options) sim.Experiment {
	o = o.withDefaults()
	ways := []int{1, 2, 4, 8}
	return sim.Def{
		ExpName: "corpus-miss",
		Desc:    "corpus locality sweep — DL1 miss rate vs cache capacity (1-8 ways) for every registered workload, geometry-calibrated footprints (and any -trace file)",
		GridFn: func() []sim.Task {
			traceNames := traceSourceNames(o.TraceFiles)
			var tasks []sim.Task
			for _, w := range bench.Full() {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", w.Name, k),
						Params: sim.P("workload", w.Name, "ways", strconv.Itoa(k),
							"suite", w.Suite.String(), "pattern", w.Pattern.String()),
					})
				}
			}
			for _, w := range bench.CalibratedCorpus(corpusMissGeometry) {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", w.Name, k),
						Params: sim.P("workload", w.Name, "ways", strconv.Itoa(k),
							"suite", "calibrated", "pattern", w.Pattern.String()),
					})
				}
			}
			for _, tf := range o.TraceFiles {
				for _, k := range ways {
					tasks = append(tasks, sim.Task{
						Label: fmt.Sprintf("%s ways=%d", traceNames[tf], k),
						Params: sim.P("workload", traceNames[tf], "trace", tf,
							"ways", strconv.Itoa(k), "suite", "trace", "pattern", "trace"),
					})
				}
			}
			return tasks
		},
		RunFn: func(t sim.Task, _ *rand.Rand) (sim.Result, error) {
			k, err := strconv.Atoi(t.Params["ways"])
			if err != nil {
				return sim.Result{}, err
			}
			var name string
			var arena *trace.Arena
			if t.Params["suite"] == "calibrated" {
				w, err := calibratedByName(t.Params["workload"], o.Instructions)
				if err != nil {
					return sim.Result{}, err
				}
				name, arena = w.Name, o.arenas.Get(w)
			} else if name, arena, err = o.taskArena(t); err != nil {
				return sim.Result{}, err
			}
			geom := corpusMissGeometry
			geom.Ways = k
			dl1, err := cache.New(geom)
			if err != nil {
				return sim.Result{}, err
			}
			refs, misses := ReplayDataRefs(arena.Cursor(), dl1)
			if refs == 0 {
				return sim.Result{}, fmt.Errorf("experiments: %s produced no memory references", name)
			}
			return sim.Result{Metrics: []sim.Metric{
				sim.NumU("capacity", float64(dl1.Config().SizeBytes()), "B"),
				sim.Num("refs", float64(refs)),
				sim.Fmt("miss_rate", 100*float64(misses)/float64(refs), "%.3f%%"),
			}}, nil
		},
	}
}

// ReplayDataRefs streams a workload's loads and stores through one
// cache via the batched entry point and counts misses. It is the
// corpus-miss replay loop; the root benchmark harness reuses it so
// BenchmarkCorpusSweep measures exactly the loop the experiment runs.
func ReplayDataRefs(s trace.Stream, c *cache.Cache) (refs, misses int) {
	const chunk = 4096
	insts := make([]trace.Inst, chunk)
	ops := make([]cache.Op, 0, chunk)
	res := make([]cache.Result, chunk)
	for {
		n := trace.Fill(s, insts)
		if n == 0 {
			return refs, misses
		}
		ops = ops[:0]
		for i := 0; i < n; i++ {
			if insts[i].IsLoad || insts[i].IsStore {
				ops = append(ops, cache.Op{Addr: insts[i].Addr, Write: insts[i].IsStore})
			}
		}
		c.AccessBatch(ops, res[:len(ops)])
		refs += len(ops)
		for i := range ops {
			if !res[i].Hit {
				misses++
			}
		}
	}
}
