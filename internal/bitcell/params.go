package bitcell

// Calibration constants for the 32 nm bitcell reliability and electrical
// models. The paper derives per-cell failure probabilities from HSPICE +
// PTM 32 nm transistor models with 10 % Vt variation, processed through
// the importance-sampling analysis of Chen et al. (ICCAD 2007). This
// package substitutes an analytic margin model with the same observable
// structure:
//
//	Pf(cell, Vcc, size) = Q(margin / sigma) + floor(Vcc)
//
// where
//
//   - margin  = slope_t · (Vcc − Vmin_t): the mean operating margin, linear
//     in supply voltage above the topology's intrinsic minimum voltage;
//   - sigma   = SigmaVt0 / size^PelgromExp · exp(AmpFactor_t · (Vnom − Vcc)):
//     Pelgrom-scaled Vt mismatch, exponentially amplified as Vcc
//     approaches the threshold region;
//   - floor   = FloorK_t · exp(−Vcc / FloorV0_t): a size-independent
//     failure floor (write-margin / access-time mechanisms that upsizing
//     cannot repair). The floor is what makes plain 8T cells unable to
//     reach fault-free operation at 350 mV at any size — the reason the
//     baseline architecture resorts to 10T and the proposed architecture
//     needs EDC (paper Sections I and III-A).
//
// The constants below are calibrated so that the Fig. 2 design methodology
// reproduces the paper's published relative outcomes at 32 nm:
//
//   - 6T at 1 V meets Pf = 1.22e-6 at minimum size (the paper's 99 %-yield
//     example) and is hopeless at 350 mV;
//   - Schmitt-trigger 10T (Kulkarni et al.) operates at 350 mV but must be
//     upsized to ≈ 2.5–2.8× to be fault-free, making it large and
//     energy-hungry — the baseline's weakness;
//   - 8T (Morita et al.) at 350 mV has a failure floor of a few 1e-6 —
//     unreachable for fault-free operation, but comfortably inside the
//     relaxed per-word budget that SECDED/DECTED buys, so it sizes to
//     ≈ 1.2–1.4×.
const (
	// Vnom is the nominal (HP mode) supply voltage in volts.
	Vnom = 1.0

	// SigmaVt0 is the threshold-voltage mismatch sigma (volts) of a
	// minimum-size device: 10 % of a ~300 mV nominal Vt, matching the
	// paper's HSPICE setup ("10% variation in threshold voltage").
	SigmaVt0 = 0.030

	// PelgromExp is the exponent of mismatch reduction with cell size:
	// sigma ∝ 1/size^PelgromExp. Width-only upsizing gives 0.5; joint
	// width/length upsizing approaches 1. We scale both, as Chen et al.
	// do in their sizing loop.
	PelgromExp = 0.75

	// SizeStep is the smallest transistor upsizing quantum for the
	// target technology node (paper Fig. 2, step 5a: "increase
	// transistor sizes by minimal amount possible").
	SizeStep = 0.05

	// MaxSizeFactor bounds the sizing search; a cell that cannot meet
	// its Pf target below this factor is deemed unable to meet it.
	MaxSizeFactor = 8.0
)

// topologyParams holds the per-topology reliability calibration.
type topologyParams struct {
	vmin   float64 // intrinsic minimum operating voltage (volts)
	slope  float64 // margin volts per volt of Vcc above vmin
	amp    float64 // variability amplification exponent vs (Vnom − Vcc)
	floorK float64 // failure-floor magnitude
	floorV float64 // failure-floor voltage decay constant (volts)

	// Electrical factors relative to a minimum-size 6T cell at Vnom.
	areaBase float64 // layout area of the cell at size 1.0
	capBase  float64 // switched read/write capacitance at size 1.0
	leakBase float64 // leakage power at size 1.0 and Vnom
}

var topoParams = map[Topology]topologyParams{
	// Differential 6T: smallest and cheapest, but margins collapse below
	// ~0.55 V — fine for HP ways at 1 V, unusable at 350 mV.
	T6: {
		vmin: 0.55, slope: 1.0, amp: 0.70,
		floorK: 0.033, floorV: 0.090,
		areaBase: 1.00, capBase: 1.00, leakBase: 1.00,
	},
	// 8T (separate read port): read-disturb-free, operates near
	// threshold, but write-margin floor of a few 1e-6 at 350 mV.
	T8: {
		vmin: 0.20, slope: 1.0, amp: 0.71,
		floorK: 1.74e-3, floorV: 0.055,
		areaBase: 1.35, capBase: 1.15, leakBase: 1.25,
	},
	// Schmitt-trigger 10T: deep-NST capable (160 mV demonstrations) with
	// a negligible floor, but large, capacitive and leaky — the
	// baseline's ULE-way cell.
	T10: {
		vmin: 0.16, slope: 1.0, amp: 1.55,
		floorK: 1.1e-6, floorV: 0.050,
		areaBase: 2.40, capBase: 2.00, leakBase: 1.90,
	},
}

// Electrical size-scaling: only part of a cell's area/capacitance tracks
// transistor width (diffusion and gate), the rest is wiring pitch and
// contacted spacing that stays fixed.
const (
	areaFixed = 0.35 // size-independent fraction of cell area
	capFixed  = 0.40 // size-independent fraction of switched capacitance
	leakFixed = 0.25 // size-independent fraction of leakage
)

// Leakage voltage scaling constants: leakage power = V · I_sub with
// I_sub ∝ exp((Vcc − Vnom)/LeakV0) capturing DIBL; at 350 mV a cell leaks
// ~4 % of its 1 V leakage power.
const LeakV0 = 0.30
