// Package bitcell models the SRAM cells the hybrid cache architecture is
// built from: differential 6T cells for the high-performance (HP) ways,
// and 8T or Schmitt-trigger 10T cells for the ultra-low-energy (ULE)
// ways. It provides per-cell hard-fault probabilities as a function of
// supply voltage and transistor sizing — the quantity the paper obtains
// from HSPICE Monte-Carlo with the importance-sampling analysis of Chen
// et al. (ICCAD 2007) — plus the relative area, capacitance and leakage
// factors the energy model consumes.
package bitcell

import (
	"fmt"
	"math"
)

// Topology enumerates the SRAM cell circuit topologies used in the paper.
type Topology int

const (
	// T6 is the differential 6-transistor cell (HP ways).
	T6 Topology = iota
	// T8 is the 8-transistor cell with a decoupled read port (Morita et
	// al., VLSI 2007) — the proposed ULE-way cell.
	T8
	// T10 is the Schmitt-trigger-based 10-transistor cell (Kulkarni et
	// al., ISLPED 2007) — the baseline ULE-way cell.
	T10
)

// String returns the conventional cell name.
func (t Topology) String() string {
	switch t {
	case T6:
		return "6T"
	case T8:
		return "8T"
	case T10:
		return "10T"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Transistors returns the device count of the topology.
func (t Topology) Transistors() int {
	switch t {
	case T6:
		return 6
	case T8:
		return 8
	case T10:
		return 10
	default:
		return 0
	}
}

// Cell is a sized SRAM bitcell: a topology plus a transistor width/length
// scaling factor relative to the minimum size allowed by the technology
// node (Size = 1.0 is minimum size).
type Cell struct {
	Topo Topology
	Size float64
}

// New returns a Cell, validating the size factor.
func New(t Topology, size float64) (Cell, error) {
	if _, ok := topoParams[t]; !ok {
		return Cell{}, fmt.Errorf("bitcell: unknown topology %v", t)
	}
	if size < 1.0 || size > MaxSizeFactor {
		return Cell{}, fmt.Errorf("bitcell: size factor %.2f outside [1, %.1f]", size, MaxSizeFactor)
	}
	return Cell{Topo: t, Size: size}, nil
}

// MustNew is New, panicking on error.
func MustNew(t Topology, size float64) Cell {
	c, err := New(t, size)
	if err != nil {
		panic(err)
	}
	return c
}

// String describes the cell, e.g. "10T(x2.60)".
func (c Cell) String() string { return fmt.Sprintf("%v(x%.2f)", c.Topo, c.Size) }

// MarginMean returns the mean operating margin (volts) of the cell at the
// given supply voltage; negative means the topology cannot operate there
// regardless of variation.
func (c Cell) MarginMean(vcc float64) float64 {
	p := topoParams[c.Topo]
	return p.slope * (vcc - p.vmin)
}

// MarginSigma returns the standard deviation of the margin (volts) at the
// given supply voltage, after Pelgrom scaling with cell size and
// low-voltage variability amplification.
func (c Cell) MarginSigma(vcc float64) float64 {
	p := topoParams[c.Topo]
	return SigmaVt0 / math.Pow(c.Size, PelgromExp) * math.Exp(p.amp*(Vnom-vcc))
}

// FailureFloor returns the size-independent component of the hard-fault
// probability at the given voltage.
func (c Cell) FailureFloor(vcc float64) float64 {
	p := topoParams[c.Topo]
	return p.floorK * math.Exp(-vcc/p.floorV)
}

// FailureProb returns the per-bit hard-fault probability of the cell at
// the given supply voltage: the analytic equivalent of the Chen et al.
// importance-sampling estimate the paper uses.
func (c Cell) FailureProb(vcc float64) float64 {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	pf := QFunc(mu/sigma) + c.FailureFloor(vcc)
	if pf > 1 {
		return 1
	}
	return pf
}

// AreaRel returns the layout area of the cell relative to a minimum-size
// 6T cell.
func (c Cell) AreaRel() float64 {
	p := topoParams[c.Topo]
	return p.areaBase * (areaFixed + (1-areaFixed)*c.Size)
}

// DynCapRel returns the switched capacitance per accessed bit, relative
// to a minimum-size 6T cell. Dynamic energy per bit is DynCapRel · Vcc².
func (c Cell) DynCapRel() float64 {
	p := topoParams[c.Topo]
	return p.capBase * (capFixed + (1-capFixed)*c.Size)
}

// LeakRel returns the leakage power per bit at the given voltage,
// relative to a minimum-size 6T cell at Vnom.
func (c Cell) LeakRel(vcc float64) float64 {
	p := topoParams[c.Topo]
	return p.leakBase * (leakFixed + (1-leakFixed)*c.Size) * LeakScale(vcc)
}

// LeakScale is the voltage scaling of leakage power relative to Vnom:
// supply-proportional current with an exponential DIBL term.
func LeakScale(vcc float64) float64 {
	return (vcc / Vnom) * math.Exp((vcc-Vnom)/LeakV0)
}

// DynScale is the voltage scaling of dynamic (CV²) energy relative to Vnom.
func DynScale(vcc float64) float64 { return (vcc / Vnom) * (vcc / Vnom) }

// QFunc is the standard normal tail probability Q(x) = P(Z > x).
func QFunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// QInv inverts QFunc for p in (0, 0.5]: it returns x with Q(x) = p,
// solved by bisection (monotone, well-conditioned for the Pf ranges the
// sizing methodology uses).
func QInv(p float64) float64 {
	if p <= 0 || p > 0.5 {
		panic(fmt.Sprintf("bitcell: QInv domain violation: p=%g", p))
	}
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if QFunc(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SizeFor returns the smallest size factor (quantised to SizeStep) at
// which the topology meets the target failure probability at the given
// voltage, stepping exactly as the paper's Fig. 2 loop does. The boolean
// reports whether the target is reachable at all: a topology whose
// failure floor exceeds the target can never meet it by upsizing — the
// property that disqualifies plain (uncoded) 8T cells at 350 mV.
func SizeFor(t Topology, vcc, targetPf float64) (Cell, bool) {
	for size := 1.0; size <= MaxSizeFactor+1e-9; size += SizeStep {
		c := Cell{Topo: t, Size: quantise(size)}
		if c.FailureProb(vcc) <= targetPf {
			return c, true
		}
	}
	return Cell{Topo: t, Size: MaxSizeFactor}, false
}

// SizingTrace records one iteration of the Fig. 2 loop, for reporting.
type SizingTrace struct {
	Size float64
	Pf   float64
	Met  bool
}

// SizeForTrace is SizeFor, additionally returning the per-iteration trace
// (cell size tried, resulting Pf) that cmd/sizer prints as the Fig. 2
// walkthrough.
func SizeForTrace(t Topology, vcc, targetPf float64) (Cell, bool, []SizingTrace) {
	var trace []SizingTrace
	for size := 1.0; size <= MaxSizeFactor+1e-9; size += SizeStep {
		c := Cell{Topo: t, Size: quantise(size)}
		pf := c.FailureProb(vcc)
		met := pf <= targetPf
		trace = append(trace, SizingTrace{Size: c.Size, Pf: pf, Met: met})
		if met {
			return c, true, trace
		}
	}
	return Cell{Topo: t, Size: MaxSizeFactor}, false, trace
}

func quantise(size float64) float64 {
	return math.Round(size/SizeStep) * SizeStep
}
