package bitcell

import (
	"math"
	"math/rand"
)

// MonteCarloResult is an importance-sampling failure-probability estimate.
type MonteCarloResult struct {
	Pf       float64 // estimated failure probability (including floor)
	StdErr   float64 // standard error of the variational part
	Samples  int
	ShiftMu  float64 // proposal distribution mean used
	Analytic float64 // closed-form value, for cross-checking
}

// MonteCarloFailureProb estimates the cell's hard-fault probability at
// the given voltage by mean-shift importance sampling, mirroring the
// approach of Chen et al. (ICCAD 2007) that the paper uses: the margin
// distribution N(mu, sigma) is sampled under a proposal N(0, sigma)
// centred on the failure boundary, and each failing sample is weighted by
// the density ratio. This turns a 1e-6-probability tail, which plain
// Monte-Carlo would need ~1e8 samples to resolve, into an estimate with a
// few percent relative error at ~1e4 samples.
func MonteCarloFailureProb(c Cell, vcc float64, samples int, seed int64) MonteCarloResult {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	rng := rand.New(rand.NewSource(seed))

	// Proposal: margin* ~ N(shift, sigma) with shift = 0 (the failure
	// boundary). Weight for sample x: f(x)/g(x) with
	// f = N(mu, sigma), g = N(0, sigma):
	//   w(x) = exp( (−(x−mu)² + x²) / (2σ²) ) = exp( (2x·mu − mu²) / (2σ²) ).
	shift := 0.0
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		x := shift + sigma*rng.NormFloat64()
		if x < 0 {
			w := math.Exp((2*x*mu - mu*mu) / (2 * sigma * sigma))
			sum += w
			sumSq += w * w
		}
	}
	n := float64(samples)
	mean := sum / n
	variance := (sumSq/n - mean*mean) / n
	if variance < 0 {
		variance = 0
	}
	return MonteCarloResult{
		Pf:       mean + c.FailureFloor(vcc),
		StdErr:   math.Sqrt(variance),
		Samples:  samples,
		ShiftMu:  shift,
		Analytic: c.FailureProb(vcc),
	}
}

// NaiveMonteCarloFailureProb is the unshifted estimator, retained to
// demonstrate (in tests and the yieldsweep example) why importance
// sampling is necessary for the Pf magnitudes the methodology targets.
func NaiveMonteCarloFailureProb(c Cell, vcc float64, samples int, seed int64) MonteCarloResult {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	rng := rand.New(rand.NewSource(seed))
	fails := 0
	for i := 0; i < samples; i++ {
		if mu+sigma*rng.NormFloat64() < 0 {
			fails++
		}
	}
	n := float64(samples)
	p := float64(fails) / n
	return MonteCarloResult{
		Pf:       p + c.FailureFloor(vcc),
		StdErr:   math.Sqrt(p * (1 - p) / n),
		Samples:  samples,
		Analytic: c.FailureProb(vcc),
	}
}
