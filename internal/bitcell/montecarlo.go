package bitcell

import (
	"math"
	"math/rand"

	"edcache/internal/sim"
)

// MonteCarloResult is an importance-sampling failure-probability estimate.
type MonteCarloResult struct {
	Pf       float64 // estimated failure probability (including floor)
	StdErr   float64 // standard error of the variational part
	Samples  int
	Analytic float64 // closed-form value, for cross-checking
}

// MonteCarloFailureProb estimates the cell's hard-fault probability at
// the given voltage by mean-shift importance sampling, mirroring the
// approach of Chen et al. (ICCAD 2007) that the paper uses: the margin
// distribution N(mu, sigma) is sampled under a proposal N(0, sigma)
// centred on the failure boundary, and each failing sample is weighted by
// the density ratio. This turns a 1e-6-probability tail, which plain
// Monte-Carlo would need ~1e8 samples to resolve, into an estimate with a
// few percent relative error at ~1e4 samples.
func MonteCarloFailureProb(c Cell, vcc float64, samples int, seed int64) MonteCarloResult {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	rng := rand.New(rand.NewSource(seed))
	sum, sumSq := isChunk(mu, sigma, samples, rng)
	return reduceIS(c, vcc, samples, sum, sumSq)
}

// reduceIS turns accumulated importance-sampling weights into the
// final estimate — shared by the serial and sharded estimators so the
// floor term and variance clamp cannot diverge.
func reduceIS(c Cell, vcc float64, samples int, sum, sumSq float64) MonteCarloResult {
	n := float64(samples)
	mean := sum / n
	variance := (sumSq/n - mean*mean) / n
	if variance < 0 {
		variance = 0
	}
	return MonteCarloResult{
		Pf:       mean + c.FailureFloor(vcc),
		StdErr:   math.Sqrt(variance),
		Samples:  samples,
		Analytic: c.FailureProb(vcc),
	}
}

// isChunk draws `samples` importance-sampling weights and returns their
// sum and sum of squares. Proposal: margin* ~ N(shift, sigma) with
// shift = 0 (the failure boundary). Weight for sample x: f(x)/g(x) with
// f = N(mu, sigma), g = N(0, sigma):
//
//	w(x) = exp( (−(x−mu)² + x²) / (2σ²) ) = exp( (2x·mu − mu²) / (2σ²) ).
func isChunk(mu, sigma float64, samples int, rng *rand.Rand) (sum, sumSq float64) {
	for i := 0; i < samples; i++ {
		x := sigma * rng.NormFloat64()
		if x < 0 {
			w := math.Exp((2*x*mu - mu*mu) / (2 * sigma * sigma))
			sum += w
			sumSq += w * w
		}
	}
	return sum, sumSq
}

// mcShard is the per-shard sample count of the parallel estimator. The
// shard plan depends only on the requested sample count, never on the
// worker count, so the reduced estimate is bit-identical for any pool
// size.
const mcShard = 4096

// MonteCarloFailureProbN is MonteCarloFailureProb with the sample loop
// sharded across a worker pool: samples are split into fixed-size
// sub-seeded shards whose partial sums are reduced in shard order.
func MonteCarloFailureProbN(c Cell, vcc float64, samples int, seed int64, workers int) MonteCarloResult {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	shards := (samples + mcShard - 1) / mcShard
	type partial struct{ sum, sumSq float64 }
	parts, err := sim.Map(workers, shards, func(i int) (partial, error) {
		count := mcShard
		if i == shards-1 {
			count = samples - i*mcShard
		}
		rng := rand.New(rand.NewSource(sim.SubSeed(seed, "bitcell.mc", i)))
		s, sq := isChunk(mu, sigma, count, rng)
		return partial{s, sq}, nil
	})
	if err != nil { // unreachable: shards never fail
		panic(err)
	}
	var sum, sumSq float64
	for _, p := range parts {
		sum += p.sum
		sumSq += p.sumSq
	}
	return reduceIS(c, vcc, samples, sum, sumSq)
}

// NaiveMonteCarloFailureProb is the unshifted estimator, retained to
// demonstrate (in tests and the yieldsweep example) why importance
// sampling is necessary for the Pf magnitudes the methodology targets.
func NaiveMonteCarloFailureProb(c Cell, vcc float64, samples int, seed int64) MonteCarloResult {
	mu := c.MarginMean(vcc)
	sigma := c.MarginSigma(vcc)
	rng := rand.New(rand.NewSource(seed))
	fails := 0
	for i := 0; i < samples; i++ {
		if mu+sigma*rng.NormFloat64() < 0 {
			fails++
		}
	}
	n := float64(samples)
	p := float64(fails) / n
	return MonteCarloResult{
		Pf:       p + c.FailureFloor(vcc),
		StdErr:   math.Sqrt(p * (1 - p) / n),
		Samples:  samples,
		Analytic: c.FailureProb(vcc),
	}
}
