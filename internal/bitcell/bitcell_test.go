package bitcell

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	vHP  = 1.0
	vULE = 0.35
)

func TestTopologyStrings(t *testing.T) {
	if T6.String() != "6T" || T8.String() != "8T" || T10.String() != "10T" {
		t.Errorf("topology names: %v %v %v", T6, T8, T10)
	}
	if T6.Transistors() != 6 || T8.Transistors() != 8 || T10.Transistors() != 10 {
		t.Error("transistor counts wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(T8, 0.5); err == nil {
		t.Error("size below minimum should be rejected")
	}
	if _, err := New(T8, MaxSizeFactor+1); err == nil {
		t.Error("size above maximum should be rejected")
	}
	if _, err := New(Topology(42), 1.0); err == nil {
		t.Error("unknown topology should be rejected")
	}
	if c, err := New(T10, 2.5); err != nil || c.Topo != T10 {
		t.Errorf("valid cell rejected: %v", err)
	}
}

func TestQFuncBasics(t *testing.T) {
	if got := QFunc(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Q(0) = %g, want 0.5", got)
	}
	// Standard values.
	cases := map[float64]float64{
		1.0:  0.158655,
		2.0:  0.022750,
		3.0:  1.3499e-3,
		4.71: 1.2386e-6,
	}
	for x, want := range cases {
		if got := QFunc(x); math.Abs(got-want)/want > 2e-3 {
			t.Errorf("Q(%g) = %g, want ≈ %g", x, got, want)
		}
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 1e-3, 1e-6, 1.22e-6, 1e-9} {
		x := QInv(p)
		if got := QFunc(x); math.Abs(got-p)/p > 1e-6 {
			t.Errorf("Q(QInv(%g)) = %g", p, got)
		}
	}
}

func TestFailureProbMonotoneInVoltage(t *testing.T) {
	for _, topo := range []Topology{T6, T8, T10} {
		c := MustNew(topo, 1.5)
		prev := math.Inf(1)
		for v := 0.25; v <= 1.05; v += 0.05 {
			pf := c.FailureProb(v)
			if pf > prev*(1+1e-12) {
				t.Errorf("%v: Pf increased with voltage at %.2f V (%.3g -> %.3g)", topo, v, prev, pf)
			}
			prev = pf
		}
	}
}

func TestFailureProbMonotoneInSize(t *testing.T) {
	for _, topo := range []Topology{T6, T8, T10} {
		prev := math.Inf(1)
		for s := 1.0; s <= 4.0; s += 0.25 {
			pf := Cell{Topo: topo, Size: s}.FailureProb(vULE)
			if pf > prev*(1+1e-12) {
				t.Errorf("%v: Pf increased with size at x%.2f", topo, s)
			}
			prev = pf
		}
	}
}

func TestPaperCalibrationPoints(t *testing.T) {
	// The paper's 99 %-yield example requires Pf = 1.22e-6.
	const targetPf = 1.22e-6

	// 6T at HP voltage meets the target at minimum size — the paper's
	// design point for HP ways.
	c6, ok := SizeFor(T6, vHP, targetPf)
	if !ok {
		t.Fatal("6T cannot meet Pf target at 1 V")
	}
	if c6.Size != 1.0 {
		t.Errorf("6T HP size = %.2f, want 1.0 (minimum)", c6.Size)
	}

	// 6T at 350 mV is catastrophically broken (margins collapse): this
	// is why HP ways must be gated off at ULE mode.
	if pf := c6.FailureProb(vULE); pf < 0.01 {
		t.Errorf("6T at 350 mV: Pf = %.3g, expected massive failure rate", pf)
	}

	// 10T must be upsized substantially (≈2.2–3.2×) to be fault-free at
	// 350 mV — the baseline's area/energy problem the paper attacks.
	c10, ok := SizeFor(T10, vULE, targetPf)
	if !ok {
		t.Fatal("10T cannot meet Pf target at 350 mV")
	}
	if c10.Size < 2.2 || c10.Size > 3.2 {
		t.Errorf("10T ULE size = %.2f, want within [2.2, 3.2]", c10.Size)
	}

	// Plain 8T can NEVER be fault-free at 350 mV: its failure floor
	// exceeds the target at any size. This is the paper's justification
	// for EDC ("Simply decreasing the size ... would increase failure
	// rates ... Faulty entries should be then disabled").
	if _, ok := SizeFor(T8, vULE, targetPf); ok {
		t.Error("plain 8T met the fault-free target at 350 mV; the EDC motivation requires it cannot")
	}
	if floor := (Cell{Topo: T8, Size: 1}).FailureFloor(vULE); floor <= targetPf {
		t.Errorf("8T floor at 350 mV = %.3g, want > %.3g", floor, targetPf)
	}

	// With the relaxed per-bit budget SECDED buys (tolerating one hard
	// fault per 39-bit word puts the requirement near 1.3e-4 for the
	// paper's way), 8T sizes to a modest 1.1–1.5× — far smaller than
	// the 10T cell.
	c8, ok := SizeFor(T8, vULE, 1.3e-4)
	if !ok {
		t.Fatal("8T cannot meet the SECDED-relaxed target at 350 mV")
	}
	if c8.Size < 1.0 || c8.Size > 1.5 {
		t.Errorf("8T ULE size = %.2f, want within [1.0, 1.5]", c8.Size)
	}

	// Both ULE-capable cells are orders of magnitude more reliable than
	// 6T at high voltage (paper Section III-B).
	for _, c := range []Cell{c8, c10} {
		if pf := c.FailureProb(vHP); pf > c6.FailureProb(vHP)/100 {
			t.Errorf("%v at 1 V: Pf = %.3g, want ≪ 6T's %.3g", c, pf, c6.FailureProb(vHP))
		}
	}
}

func TestAreaEnergyOrdering(t *testing.T) {
	// At equal size, 6T < 8T < 10T in area, capacitance and leakage.
	for s := 1.0; s <= 3.0; s += 0.5 {
		a6 := Cell{T6, s}.AreaRel()
		a8 := Cell{T8, s}.AreaRel()
		a10 := Cell{T10, s}.AreaRel()
		if !(a6 < a8 && a8 < a10) {
			t.Errorf("size %.1f: area ordering violated: %g %g %g", s, a6, a8, a10)
		}
		c6 := Cell{T6, s}.DynCapRel()
		c8 := Cell{T8, s}.DynCapRel()
		c10 := Cell{T10, s}.DynCapRel()
		if !(c6 < c8 && c8 < c10) {
			t.Errorf("size %.1f: cap ordering violated: %g %g %g", s, c6, c8, c10)
		}
		l8 := Cell{T8, s}.LeakRel(vHP)
		l10 := Cell{T10, s}.LeakRel(vHP)
		if !(l8 < l10) {
			t.Errorf("size %.1f: leakage ordering violated: %g %g", s, l8, l10)
		}
	}
}

func TestSizedULEWayIsCheaperWith8T(t *testing.T) {
	// The headline area/energy claim at the cell level: the sized
	// 8T+EDC cell (including its 39/32 check-bit overhead) beats the
	// sized 10T cell per stored data bit.
	c10, _ := SizeFor(T10, vULE, 1.22e-6)
	c8, _ := SizeFor(T8, vULE, 1.3e-4)
	const overhead = 39.0 / 32.0
	if a8 := c8.AreaRel() * overhead; a8 >= c10.AreaRel() {
		t.Errorf("8T+SECDED area/bit %.2f not below 10T %.2f", a8, c10.AreaRel())
	}
	if e8 := c8.DynCapRel() * overhead; e8 >= c10.DynCapRel() {
		t.Errorf("8T+SECDED cap/bit %.2f not below 10T %.2f", e8, c10.DynCapRel())
	}
	if l8 := c8.LeakRel(vULE) * overhead; l8 >= c10.LeakRel(vULE) {
		t.Errorf("8T+SECDED leak/bit %.3g not below 10T %.3g", l8, c10.LeakRel(vULE))
	}
}

func TestLeakScale(t *testing.T) {
	if got := LeakScale(Vnom); math.Abs(got-1) > 1e-12 {
		t.Errorf("LeakScale(Vnom) = %g", got)
	}
	if l := LeakScale(vULE); l <= 0 || l >= 0.2 {
		t.Errorf("LeakScale(0.35) = %g, want small positive (DIBL collapse)", l)
	}
	if math.Abs(DynScale(vULE)-vULE*vULE) > 1e-12 {
		t.Errorf("DynScale(0.35) = %g", DynScale(vULE))
	}
}

func TestSizeForTraceIteratesLikeFig2(t *testing.T) {
	cell, ok, trace := SizeForTrace(T10, vULE, 1.22e-6)
	if !ok {
		t.Fatal("10T sizing failed")
	}
	if len(trace) < 2 {
		t.Fatalf("expected multiple Fig. 2 iterations, got %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Size <= trace[i-1].Size {
			t.Error("trace sizes must increase")
		}
		if trace[i].Pf > trace[i-1].Pf*(1+1e-12) {
			t.Error("trace Pf must decrease")
		}
	}
	last := trace[len(trace)-1]
	if !last.Met || last.Size != cell.Size {
		t.Errorf("final trace entry %+v inconsistent with result %v", last, cell)
	}
	for _, tr := range trace[:len(trace)-1] {
		if tr.Met {
			t.Error("intermediate iteration already met target; loop should have stopped")
		}
	}
}

func TestImportanceSamplingMatchesAnalytic(t *testing.T) {
	cases := []struct {
		cell Cell
		vcc  float64
	}{
		{Cell{T10, 2.6}, vULE},
		{Cell{T10, 1.0}, vULE},
		{Cell{T8, 1.3}, vULE},
		{Cell{T6, 1.0}, vHP},
	}
	for _, tc := range cases {
		res := MonteCarloFailureProb(tc.cell, tc.vcc, 200000, 42)
		if res.Analytic == 0 {
			continue
		}
		rel := math.Abs(res.Pf-res.Analytic) / res.Analytic
		if rel > 0.10 {
			t.Errorf("%v at %.2f V: IS estimate %.4g vs analytic %.4g (rel err %.1f%%)",
				tc.cell, tc.vcc, res.Pf, res.Analytic, rel*100)
		}
	}
}

func TestNaiveMonteCarloCannotResolveTail(t *testing.T) {
	// With 1e4 samples, the naive estimator sees zero failures for a
	// Pf ≈ 1e-6 cell (modulo the floor term) — demonstrating why the
	// paper needs Chen's importance sampling.
	c := Cell{T10, 2.6}
	res := NaiveMonteCarloFailureProb(c, vULE, 10000, 7)
	if res.Pf-c.FailureFloor(vULE) > 1e-4 {
		t.Errorf("naive MC with 1e4 samples resolved the 1e-6 tail: %g", res.Pf)
	}
	is := MonteCarloFailureProb(c, vULE, 10000, 7)
	if is.Pf <= 0 {
		t.Error("IS estimate should be positive at 1e4 samples")
	}
}

func TestMonteCarloQuickProperty(t *testing.T) {
	// Property: the IS estimate is always within 50 % of analytic for
	// moderate betas at decent sample counts (loose bound; the tighter
	// deterministic cases are above).
	prop := func(seed int64, sizeQ uint8) bool {
		size := 1.0 + float64(sizeQ%20)*0.1
		c := Cell{T10, size}
		res := MonteCarloFailureProb(c, vULE, 50000, seed)
		if res.Analytic < 1e-12 {
			return true
		}
		rel := math.Abs(res.Pf-res.Analytic) / res.Analytic
		return rel < 0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
