package energy

import (
	"math"
	"testing"

	"edcache/internal/bitcell"
)

func TestPartitionValidate(t *testing.T) {
	bad := []Partition{{0, 1}, {1, 0}, {3, 1}, {1, 6}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("partition %+v accepted", p)
		}
	}
	if err := (Partition{4, 2}).Validate(); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if (Partition{4, 2}).Segments() != 8 {
		t.Error("segment count")
	}
}

func TestFlatPartitionMatchesFlatModel(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	flat := w.AccessEnergy(1.0, 32, 26)
	banked := w.BankedAccessEnergy(1.0, 32, 26, Partition{1, 1})
	if math.Abs(flat-banked)/flat > 1e-12 {
		t.Errorf("{1,1} partition energy %g != flat model %g", banked, flat)
	}
	if a, b := w.Area(), w.BankedArea(Partition{1, 1}); math.Abs(a-b)/a > 1e-12 {
		t.Errorf("{1,1} partition area %g != flat %g", b, a)
	}
	if l, b := w.LeakPower(0.35, false), w.BankedLeakPower(0.35, false, Partition{1, 1}); math.Abs(l-b)/l > 1e-12 {
		t.Errorf("{1,1} partition leak %g != flat %g", b, l)
	}
}

func TestBitlineSegmentationSavesEnergy(t *testing.T) {
	// Doubling Ndbl must cut the scalable bitline portion; for a
	// bitline-dominated array the first split wins.
	w := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	e1 := w.BankedAccessEnergy(0.35, 32, 26, Partition{1, 1})
	e2 := w.BankedAccessEnergy(0.35, 32, 26, Partition{1, 2})
	if e2 >= e1 {
		t.Errorf("Ndbl=2 energy %g not below flat %g", e2, e1)
	}
}

func TestOverPartitioningBackfires(t *testing.T) {
	// Replicated peripherals and H-tree eventually dominate: the
	// energy at an absurd partition must exceed the optimum.
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	evals, best, err := ExplorePartitions(w, 1.0, 32, 26, 64)
	if err != nil {
		t.Fatal(err)
	}
	worstSegments := 0
	var extreme PartitionEval
	for _, ev := range evals {
		if ev.Part.Segments() > worstSegments {
			worstSegments = ev.Part.Segments()
			extreme = ev
		}
	}
	if extreme.Energy <= evals[best].Energy {
		t.Errorf("64-segment energy %g not above optimum %g", extreme.Energy, evals[best].Energy)
	}
	if evals[best].Part.Segments() == worstSegments {
		t.Errorf("optimum landed at the most-partitioned point %+v — cost model toothless", evals[best].Part)
	}
}

func TestExploreCoversAllPowerOfTwoPartitions(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T8, 1.2), 7)
	evals, best, err := ExplorePartitions(w, 0.35, 39, 33, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions with Ndwl·Ndbl ≤ 16, powers of two: (1+2+4+8+16 combos)
	// = 5+4+3+2+1 = 15 candidates.
	if len(evals) != 15 {
		t.Errorf("explored %d candidates, want 15", len(evals))
	}
	if best < 0 || best >= len(evals) {
		t.Fatalf("best index %d", best)
	}
	for _, ev := range evals {
		if ev.Energy < evals[best].Energy {
			t.Errorf("candidate %+v (%.4g) beats reported best (%.4g)", ev.Part, ev.Energy, evals[best].Energy)
		}
		if ev.Area <= 0 || ev.Leak <= 0 {
			t.Errorf("candidate %+v has non-positive area/leak", ev.Part)
		}
	}
	// Area and leakage grow monotonically with segments for the same
	// storage.
	if evals[0].Area >= evals[len(evals)-1].Area {
		t.Error("area did not grow with partitioning")
	}
}

func TestExploreValidation(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	if _, _, err := ExplorePartitions(w, 1.0, 32, 26, 0); err == nil {
		t.Error("zero maxSegments accepted")
	}
	w.Lines = 0
	if _, _, err := ExplorePartitions(w, 1.0, 32, 26, 4); err == nil {
		t.Error("invalid geometry accepted")
	}
}
