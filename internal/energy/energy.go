// Package energy is the repo's stand-in for the paper's custom-extended
// CACTI 6.5: an array-level energy, leakage and area model for
// heterogeneous-cell caches at the 32 nm node, covering both operating
// voltages (1 V HP, 350 mV ULE), per-word EDC check-bit overheads, and
// the EDC encoder/decoder circuits that the paper characterises with
// HSPICE. All quantities derive from the per-cell electrical factors in
// internal/bitcell plus the structural constants in params.go.
package energy

import (
	"fmt"

	"edcache/internal/bitcell"
	"edcache/internal/ecc"
)

// WayArray describes the storage arrays of one cache way: its bitcell,
// its line geometry, and the per-word check-bit columns it carries.
type WayArray struct {
	Cell         bitcell.Cell
	Lines        int
	WordsPerLine int
	DataBits     int // payload bits per data word (paper: 32)
	DataCheck    int // check bits per data word (0, 7 or 13)
	TagBits      int // payload bits per tag word (paper: 26)
	TagCheck     int // check bits per tag word
}

// Validate reports whether the geometry is well-formed.
func (w WayArray) Validate() error {
	if w.Lines <= 0 || w.WordsPerLine <= 0 || w.DataBits <= 0 || w.TagBits <= 0 {
		return fmt.Errorf("energy: invalid way geometry %+v", w)
	}
	if w.DataCheck < 0 || w.TagCheck < 0 {
		return fmt.Errorf("energy: negative check bits %+v", w)
	}
	return nil
}

// StorageBits returns all bits the way keeps powered, including check
// columns.
func (w WayArray) StorageBits() int {
	return w.Lines * (w.WordsPerLine*(w.DataBits+w.DataCheck) + w.TagBits + w.TagCheck)
}

// PayloadBits returns the data+tag payload bits (no check columns).
func (w WayArray) PayloadBits() int {
	return w.Lines * (w.WordsPerLine*w.DataBits + w.TagBits)
}

// AccessEnergy returns the dynamic energy (pJ) of one access that senses
// dataBits of one data word and tagBits of the tag word in this way, at
// the given supply voltage. The caller chooses the widths per operating
// mode: e.g. a scenario-A 8T way reads only the 32+26 payload bits at HP
// mode (SECDED off) but the full 39+33 codeword at ULE mode.
func (w WayArray) AccessEnergy(vcc float64, dataBits, tagBits int) float64 {
	bits := float64(dataBits + tagBits)
	dyn := bitcell.DynScale(vcc)
	bitline := bits * BitReadEnergy * w.Cell.DynCapRel() * dyn
	periph := (WayPeriphEnergy + TagMatchEnergy) * dyn
	return bitline + periph
}

// WriteEnergy returns the dynamic energy (pJ) of writing dataBits of one
// data word plus tagBits of tag (tagBits is zero for a write hit that
// leaves the tag untouched).
func (w WayArray) WriteEnergy(vcc float64, dataBits, tagBits int) float64 {
	return w.AccessEnergy(vcc, dataBits, tagBits) * WriteEnergyFactor
}

// LeakPower returns the leakage power (pJ/ns) of the whole way at the
// given voltage. A gated way (gated-Vdd, used for HP ways at ULE mode)
// retains only the residual fraction.
func (w WayArray) LeakPower(vcc float64, gated bool) float64 {
	p := float64(w.StorageBits()) * BitLeakPower * w.Cell.LeakRel(vcc) * (1 + PeriphLeakFrac)
	if gated {
		p *= GatedLeakResidual
	}
	return p
}

// Area returns the layout area of the way in minimum-6T-cell
// equivalents, including check columns and peripheral overhead.
func (w WayArray) Area() float64 {
	return float64(w.StorageBits()) * w.Cell.AreaRel() * (1 + PeriphAreaFrac)
}

// CodecModel is the electrical model of one EDC encoder/decoder pair, as
// the paper obtains from HSPICE simulation of the Hsiao and BCH circuits
// at 32 nm (Section IV-A).
type CodecModel struct {
	Kind     ecc.Kind
	DataBits int
	EncGates int
	DecGates int
}

// NewCodecModel builds the gate-count model for the given code family at
// the given word width. KindNone (and parity, which the architecture
// never uses standalone) cost nothing.
func NewCodecModel(kind ecc.Kind, dataBits int) CodecModel {
	m := CodecModel{Kind: kind, DataBits: dataBits}
	switch kind {
	case ecc.KindSECDED:
		m.EncGates = secdedEncGatesPerBit * dataBits
		m.DecGates = secdedDecGatesPerBit * dataBits
	case ecc.KindDECTED:
		m.EncGates = dectedEncGatesPerBit * dataBits
		m.DecGates = dectedDecGatesPerBit * dataBits
	case ecc.KindParity:
		m.EncGates = dataBits
		m.DecGates = dataBits
	}
	return m
}

// EncodeEnergy returns the energy (pJ) of one encode pass at vcc.
func (m CodecModel) EncodeEnergy(vcc float64) float64 {
	return float64(m.EncGates) * GateEnergy * bitcell.DynScale(vcc)
}

// DecodeEnergy returns the energy (pJ) of one decode pass at vcc.
func (m CodecModel) DecodeEnergy(vcc float64) float64 {
	return float64(m.DecGates) * GateEnergy * bitcell.DynScale(vcc)
}

// LeakPower returns the codec's leakage (pJ/ns); a codec whose mode is
// inactive is power-gated by the same mechanism as the HP ways.
func (m CodecModel) LeakPower(vcc float64, gated bool) float64 {
	p := float64(m.EncGates+m.DecGates) * GateLeakPower * bitcell.LeakScale(vcc)
	if gated {
		p *= GatedLeakResidual
	}
	return p
}

// Area returns the codec layout area in minimum-6T-cell equivalents.
func (m CodecModel) Area() float64 {
	return float64(m.EncGates+m.DecGates) * GateAreaCells
}
