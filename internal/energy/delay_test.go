package energy

import (
	"math"
	"testing"

	"edcache/internal/bitcell"
)

func TestGateDelayScaling(t *testing.T) {
	if got := GateDelayNS(1.0); math.Abs(got-gateDelayNom)/gateDelayNom > 1e-9 {
		t.Errorf("gate delay at Vnom = %g, want %g", got, gateDelayNom)
	}
	// Delay grows monotonically as voltage falls toward threshold.
	prev := 0.0
	for _, v := range []float64{1.0, 0.8, 0.6, 0.45, 0.35} {
		d := GateDelayNS(v)
		if d <= prev {
			t.Errorf("delay at %.2f V (%g) not above delay at higher voltage (%g)", v, d, prev)
		}
		prev = d
	}
	// Near-threshold penalty is an order of magnitude or more.
	if ratio := GateDelayNS(0.35) / GateDelayNS(1.0); ratio < 8 {
		t.Errorf("350 mV delay penalty %.1fx implausibly small", ratio)
	}
	// At or below the effective threshold the model reports infinity.
	if !math.IsInf(GateDelayNS(0.28), 1) {
		t.Error("delay at Vt must be infinite")
	}
}

func TestPaperOperatingPointsAreFeasible(t *testing.T) {
	// The modelled arrays must close timing at the paper's operating
	// points: 1 GHz at 1 V (HP) and 5 MHz at 350 mV (ULE) — the latter
	// with enormous slack (the paper's conservative frequency choice,
	// which is also why the EDC stage fits in one ULE cycle).
	hp := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	ule8 := paperWay(bitcell.MustNew(bitcell.T8, 1.2), 7)
	ule10 := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	flat := Partition{1, 1}

	ok, slack, err := hp.CycleFeasible(1.0, 1.0, flat)
	if err != nil || !ok {
		t.Errorf("6T way misses 1 GHz at 1 V (slack %.2f, err %v)", slack, err)
	}
	for _, w := range []WayArray{ule8, ule10} {
		ok, slack, err := w.CycleFeasible(0.35, 0.005, flat)
		if err != nil || !ok {
			t.Errorf("%v way misses 5 MHz at 350 mV", w.Cell)
		}
		if slack < 5 {
			t.Errorf("%v way ULE slack %.1f implausibly tight for the paper's conservative clock", w.Cell, slack)
		}
	}
	// But the ULE arrays cannot run anywhere near HP frequency at NST
	// voltage — the reason the ULE mode clock is three decades slower.
	if ok, _, _ := ule10.CycleFeasible(0.35, 1.0, flat); ok {
		t.Error("10T way closing 1 GHz at 350 mV is implausible")
	}
}

func TestBitlineSegmentationShortensDelay(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	d1 := w.AccessDelayNS(0.35, Partition{1, 1})
	d4 := w.AccessDelayNS(0.35, Partition{1, 4})
	if d4 >= d1 {
		t.Errorf("Ndbl=4 delay %g not below flat %g", d4, d1)
	}
}

func TestCycleFeasibleValidation(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	if _, _, err := w.CycleFeasible(1.0, 0, Partition{1, 1}); err == nil {
		t.Error("zero frequency accepted")
	}
}
