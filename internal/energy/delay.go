package energy

import (
	"fmt"
	"math"
)

// Access-time model: the third quantity CACTI reports alongside energy
// and area. The paper fixes its operating points at 1 GHz (1 V) and
// 5 MHz (350 mV) following the Intel NTV processor [10]; this model
// verifies those choices are feasible for the modelled arrays — gate
// delay degrades steeply near threshold (alpha-power law), and the
// conservative 200 ns ULE cycle leaves wide margin, which is also why
// the ULE-mode EDC stage fits in one cycle.
const (
	// gateDelayNom is the FO4-ish gate delay at Vnom (ns).
	gateDelayNom = 0.012

	// alphaPower and vtEff parameterise the alpha-power-law delay
	// scaling d(V) ∝ V / (V − Vt)^alpha for the 32 nm node.
	alphaPower = 1.4
	vtEff      = 0.28

	// Per-component gate-equivalents of the array critical path.
	decoderLevelsPerBit = 1.0  // decoder levels per address bit
	wordlineGates       = 3.0  // wordline driver chain
	senseGates          = 4.0  // sense amplifier + latch
	outputGates         = 3.0  // way mux + output drive
	bitlineGatesPerCell = 0.05 // bitline RC per cell on the bitline, in gate delays
)

// GateDelayNS returns one logic-gate delay at the given voltage.
func GateDelayNS(vcc float64) float64 {
	if vcc <= vtEff {
		return math.Inf(1)
	}
	ref := 1.0 / math.Pow(1.0-vtEff, alphaPower)
	return gateDelayNom * (vcc / math.Pow(vcc-vtEff, alphaPower)) / ref
}

// AccessDelayNS returns the critical-path access time of the way at the
// given voltage and partition: decoder, wordline, bitline discharge
// (scaling with cells per bitline segment and the cell's drive-adjusted
// load), sense and output.
func (w WayArray) AccessDelayNS(vcc float64, p Partition) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := GateDelayNS(vcc)
	addrBits := math.Ceil(math.Log2(float64(w.Lines)))
	cellsPerBitline := float64(w.Lines) / float64(p.Ndbl)
	// Larger cells load the bitline more but also discharge it harder;
	// the residual load factor grows sub-linearly with cell capacitance.
	load := math.Sqrt(w.Cell.DynCapRel())
	return g * (decoderLevelsPerBit*addrBits +
		wordlineGates +
		bitlineGatesPerCell*cellsPerBitline*load +
		senseGates + outputGates)
}

// CycleFeasible reports whether the way meets the given clock frequency
// at the given voltage, and the achieved slack ratio (cycle/delay).
func (w WayArray) CycleFeasible(vcc, freqGHz float64, p Partition) (bool, float64, error) {
	if freqGHz <= 0 {
		return false, 0, fmt.Errorf("energy: frequency %g GHz", freqGHz)
	}
	cycleNS := 1.0 / freqGHz
	d := w.AccessDelayNS(vcc, p)
	return d <= cycleNS, cycleNS / d, nil
}
