package energy

// Model constants, playing the role of the paper's custom-extended
// CACTI 6.5 at the 32 nm node. Units: energy in pJ, time in ns, power in
// pJ/ns (= mW), area in minimum-size-6T-bitcell equivalents. Absolute
// magnitudes are representative; what the experiments consume — exactly
// as the paper's normalised figures do — are the *ratios* between
// configurations, which are governed by the bitcell capacitance/leakage
// factors (internal/bitcell) and the structural constants here.
const (
	// BitReadEnergy is the bitline + cell switching energy of reading
	// one bit of a minimum-size 6T cell at Vnom (pJ). Other cells scale
	// by Cell.DynCapRel, other voltages by CV² (bitcell.DynScale).
	BitReadEnergy = 0.012

	// WriteEnergyFactor scales a write access relative to a read of the
	// same width (full-swing bitline drive).
	WriteEnergyFactor = 1.1

	// WayPeriphEnergy is the per-way, per-access decoder + wordline +
	// sense-amp overhead at Vnom (pJ).
	WayPeriphEnergy = 0.080

	// TagMatchEnergy is the per-way tag comparator energy at Vnom (pJ).
	TagMatchEnergy = 0.010

	// BitLeakPower is the leakage power of one minimum-size 6T bit at
	// Vnom (pJ/ns). Other cells scale by Cell.LeakRel (which includes
	// the voltage dependence).
	BitLeakPower = 3.0e-6

	// PeriphLeakFrac is peripheral leakage as a fraction of the array's
	// storage leakage.
	PeriphLeakFrac = 0.20

	// GatedLeakResidual is the residual leakage fraction of a
	// gated-Vdd way (Powell et al., ISLPED 2000 — reference [18]).
	GatedLeakResidual = 0.02

	// GateEnergy is the switching energy of one logic gate of the EDC
	// encoder/decoder at Vnom (pJ), standing in for the paper's HSPICE
	// characterisation of the Hsiao/BCH circuits.
	GateEnergy = 4.0e-4

	// GateLeakPower is the leakage of one EDC logic gate at Vnom (pJ/ns).
	GateLeakPower = 1.0e-9

	// GateAreaCells is the layout area of one EDC logic gate in
	// minimum-6T-bitcell equivalents.
	GateAreaCells = 1.5

	// PeriphAreaFrac is the array area overhead (decoders, sense amps,
	// drivers) as a fraction of storage area.
	PeriphAreaFrac = 0.25
)

// EDC codec complexity, in equivalent gates per codec as a function of
// the data word width k. The Hsiao SECDED encoder is the parity XOR
// forest (≈3 ones per column); its decoder adds the syndrome tree, the
// column match array and the correction XORs. The BCH DECTED decoder is
// an order of magnitude larger: two GF(2^6) syndrome evaluation trees,
// the quadratic error-locator solver and a Chien search over all
// shortened positions — this is what erodes part of the proposed
// design's advantage in scenario B (paper: 39 % vs 42 % ULE savings).
const (
	secdedEncGatesPerBit = 3
	secdedDecGatesPerBit = 8
	dectedEncGatesPerBit = 15
	dectedDecGatesPerBit = 150
)
