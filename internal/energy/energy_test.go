package energy

import (
	"math"
	"testing"

	"edcache/internal/bitcell"
	"edcache/internal/ecc"
)

func paperWay(cell bitcell.Cell, check int) WayArray {
	return WayArray{
		Cell:  cell,
		Lines: 32, WordsPerLine: 8,
		DataBits: 32, DataCheck: check,
		TagBits: 26, TagCheck: check,
	}
}

func TestWayArrayBitCounts(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	if got := w.PayloadBits(); got != 9024 {
		t.Errorf("payload bits = %d, want 9024 (1 KB data + 32 tags)", got)
	}
	if got := w.StorageBits(); got != 9024 {
		t.Errorf("uncoded storage bits = %d, want 9024", got)
	}
	ws := paperWay(bitcell.MustNew(bitcell.T8, 1.2), 7)
	if got := ws.StorageBits(); got != 32*(8*39+33) {
		t.Errorf("SECDED storage bits = %d, want %d", got, 32*(8*39+33))
	}
	if ws.PayloadBits() != 9024 {
		t.Error("check bits must not count as payload")
	}
}

func TestAccessEnergyVoltageScaling(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	eHP := w.AccessEnergy(1.0, 32, 26)
	eULE := w.AccessEnergy(0.35, 32, 26)
	want := 0.35 * 0.35
	if got := eULE / eHP; math.Abs(got-want) > 1e-9 {
		t.Errorf("CV² scaling: ratio %g, want %g", got, want)
	}
}

func TestAccessEnergyGrowsWithWidthAndCell(t *testing.T) {
	c6 := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	c10 := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	if c10.AccessEnergy(1, 32, 26) <= c6.AccessEnergy(1, 32, 26) {
		t.Error("sized 10T access must cost more than minimum 6T")
	}
	if c6.AccessEnergy(1, 39, 33) <= c6.AccessEnergy(1, 32, 26) {
		t.Error("reading check bits must cost extra")
	}
	if w := c6.WriteEnergy(1, 32, 0); w <= c6.AccessEnergy(1, 32, 0) {
		t.Error("write must cost at least a read of the same width")
	}
}

func TestLeakPowerGating(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	on := w.LeakPower(0.35, false)
	off := w.LeakPower(0.35, true)
	if math.Abs(off/on-GatedLeakResidual) > 1e-9 {
		t.Errorf("gated residual = %g, want %g", off/on, GatedLeakResidual)
	}
	// Leakage collapses with voltage (DIBL).
	if w.LeakPower(0.35, false) >= w.LeakPower(1.0, false)*0.2 {
		t.Error("leakage should collapse at 350 mV")
	}
}

func TestSizedULEWayEnergyOrdering(t *testing.T) {
	// The architectural claim at the array level, with methodology-sized
	// cells: the 8T+SECDED way (reading its full codeword) costs less
	// per access and leaks less than the fault-free 10T way, at ULE
	// voltage.
	w10 := paperWay(bitcell.MustNew(bitcell.T10, 2.6), 0)
	w8 := paperWay(bitcell.MustNew(bitcell.T8, 1.2), 7)
	a10 := w10.AccessEnergy(0.35, 32, 26)
	a8 := w8.AccessEnergy(0.35, 39, 33)
	if a8 >= a10 {
		t.Errorf("8T+SECDED access %g ≥ 10T access %g", a8, a10)
	}
	if l8, l10 := w8.LeakPower(0.35, false), w10.LeakPower(0.35, false); l8 >= l10 {
		t.Errorf("8T+SECDED leakage %g ≥ 10T %g", l8, l10)
	}
	if ar8, ar10 := w8.Area(), w10.Area(); ar8 >= ar10 {
		t.Errorf("8T+SECDED area %g ≥ 10T %g", ar8, ar10)
	}
}

func TestCodecModelScaling(t *testing.T) {
	s := NewCodecModel(ecc.KindSECDED, 32)
	d := NewCodecModel(ecc.KindDECTED, 32)
	n := NewCodecModel(ecc.KindNone, 32)
	if n.EncGates != 0 || n.DecGates != 0 || n.DecodeEnergy(1) != 0 {
		t.Error("no-coding codec must be free")
	}
	if d.DecGates <= s.DecGates*3 {
		t.Errorf("DECTED decoder (%d gates) must dwarf SECDED's (%d): the scenario-B overhead",
			d.DecGates, s.DecGates)
	}
	if s.DecodeEnergy(0.35) >= s.DecodeEnergy(1.0) {
		t.Error("codec energy must scale down with voltage")
	}
	if d.Area() <= s.Area() {
		t.Error("DECTED codec area must exceed SECDED's")
	}
	if got := s.EncodeEnergy(1.0); math.Abs(got-float64(s.EncGates)*GateEnergy) > 1e-12 {
		t.Errorf("encode energy %g", got)
	}
}

func TestCodecEnergySmallVsArrayAccess(t *testing.T) {
	// Sanity on magnitudes: at ULE mode, SECDED decode must be a small
	// fraction of the way access energy (the paper's EDC overhead is a
	// few percent). The parallel BCH DECTED decoder (syndromes, locator
	// solve, 45-position Chien search) is legitimately of the same order
	// as an array access — the scenario-B overhead — but must not dwarf
	// it.
	w8 := paperWay(bitcell.MustNew(bitcell.T8, 1.2), 7)
	acc := w8.AccessEnergy(0.35, 39, 33)
	sec := NewCodecModel(ecc.KindSECDED, 32).DecodeEnergy(0.35)
	dec := NewCodecModel(ecc.KindDECTED, 32).DecodeEnergy(0.35)
	if sec > 0.15*acc {
		t.Errorf("SECDED decode %g too large vs access %g", sec, acc)
	}
	if dec < sec {
		t.Error("DECTED decode must cost more than SECDED")
	}
	if dec > 2.0*acc {
		t.Errorf("DECTED decode %g implausibly large vs access %g", dec, acc)
	}
}

func TestValidate(t *testing.T) {
	w := paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	if err := w.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	w.Lines = 0
	if err := w.Validate(); err == nil {
		t.Error("zero lines accepted")
	}
	w = paperWay(bitcell.MustNew(bitcell.T6, 1.0), 0)
	w.DataCheck = -1
	if err := w.Validate(); err == nil {
		t.Error("negative check bits accepted")
	}
}
