package energy

import (
	"fmt"
	"math"

	"edcache/internal/bitcell"
)

// Partition is a CACTI-style subarray partitioning of a way's storage
// array: Ndwl vertical cuts (wordline segments) and Ndbl horizontal cuts
// (bitline segments). The flat model of WayArray corresponds to the
// {1,1} partition; finer partitions shorten the bitlines (less switched
// capacitance per access) at the price of replicated decoders, sense
// amplifiers and H-tree routing — the classic energy/area trade CACTI
// 6.5 explores and the paper's extended CACTI inherits.
type Partition struct {
	Ndwl int
	Ndbl int
}

// Validate reports whether the partition is usable.
func (p Partition) Validate() error {
	if p.Ndwl < 1 || p.Ndbl < 1 {
		return fmt.Errorf("energy: partition %dx%d invalid", p.Ndwl, p.Ndbl)
	}
	if p.Ndwl&(p.Ndwl-1) != 0 || p.Ndbl&(p.Ndbl-1) != 0 {
		return fmt.Errorf("energy: partition %dx%d not powers of two", p.Ndwl, p.Ndbl)
	}
	return nil
}

// Segments returns the subarray count.
func (p Partition) Segments() int { return p.Ndwl * p.Ndbl }

// Partitioning cost constants: the fraction of bitline energy that does
// not scale with segment length (sense amps, column muxes), the per-
// segment peripheral replication factor, and the H-tree distribution
// energy per additional segment.
const (
	bitlineFixedFrac  = 0.30  // sense/mux portion of per-bit read energy
	periphReplication = 0.35  // extra peripheral energy per extra segment
	htreeEnergyPerSeg = 0.004 // pJ per segment traversed at Vnom
	periphAreaPerSeg  = 0.06  // extra area fraction per extra segment
	periphLeakPerSeg  = 0.03  // extra leakage fraction per extra segment
)

// BankedAccessEnergy returns the dynamic energy of one access when the
// way's arrays are split into the given partition. Bitline (cell-side)
// energy scales with the 1/Ndbl segment length; wordline and decode
// overheads are replicated per active segment and the H-tree pays for
// distribution.
func (w WayArray) BankedAccessEnergy(vcc float64, dataBits, tagBits int, p Partition) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	dyn := bitcell.DynScale(vcc)
	bits := float64(dataBits + tagBits)
	perBit := BitReadEnergy * w.Cell.DynCapRel() * dyn
	bitline := bits * perBit * (bitlineFixedFrac + (1-bitlineFixedFrac)/float64(p.Ndbl))
	periph := (WayPeriphEnergy + TagMatchEnergy) * dyn *
		(1 + periphReplication*float64(p.Segments()-1)/float64(p.Segments()))
	htree := htreeEnergyPerSeg * dyn * float64(p.Segments()-1)
	return bitline + periph + htree
}

// BankedArea returns the way's layout area under the partition.
func (w WayArray) BankedArea(p Partition) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	storage := float64(w.StorageBits()) * w.Cell.AreaRel()
	return storage * (1 + PeriphAreaFrac + periphAreaPerSeg*float64(p.Segments()-1))
}

// BankedLeakPower returns the way's leakage under the partition
// (replicated peripherals leak; the cells themselves are unchanged).
func (w WayArray) BankedLeakPower(vcc float64, gated bool, p Partition) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	base := float64(w.StorageBits()) * BitLeakPower * w.Cell.LeakRel(vcc) *
		(1 + PeriphLeakFrac + periphLeakPerSeg*float64(p.Segments()-1))
	if gated {
		base *= GatedLeakResidual
	}
	return base
}

// PartitionEval is one candidate in an exploration sweep.
type PartitionEval struct {
	Part   Partition
	Energy float64 // per-access dynamic energy (pJ)
	Area   float64 // way area (min-6T-cell equivalents)
	Leak   float64 // leakage power (pJ/ns)
}

// ExplorePartitions sweeps power-of-two partitions up to maxSegments and
// returns the evaluations sorted as generated (Ndwl-major), plus the
// index of the minimum-energy candidate — the CACTI-style organisation
// search for one way.
func ExplorePartitions(w WayArray, vcc float64, dataBits, tagBits, maxSegments int) ([]PartitionEval, int, error) {
	if err := w.Validate(); err != nil {
		return nil, 0, err
	}
	if maxSegments < 1 {
		return nil, 0, fmt.Errorf("energy: maxSegments %d", maxSegments)
	}
	var out []PartitionEval
	best := 0
	bestE := math.Inf(1)
	for ndwl := 1; ndwl <= maxSegments; ndwl *= 2 {
		for ndbl := 1; ndwl*ndbl <= maxSegments; ndbl *= 2 {
			p := Partition{Ndwl: ndwl, Ndbl: ndbl}
			ev := PartitionEval{
				Part:   p,
				Energy: w.BankedAccessEnergy(vcc, dataBits, tagBits, p),
				Area:   w.BankedArea(p),
				Leak:   w.BankedLeakPower(vcc, false, p),
			}
			if ev.Energy < bestE {
				bestE = ev.Energy
				best = len(out)
			}
			out = append(out, ev)
		}
	}
	return out, best, nil
}
