package cli

import (
	"errors"
	"flag"
	"io"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Bool("ok", false, "")
	return fs
}

func TestParseOK(t *testing.T) {
	if err := Parse(newFS(), []string{"-ok"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHelp(t *testing.T) {
	if err := Parse(newFS(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("Parse(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestParseBadFlag(t *testing.T) {
	if err := Parse(newFS(), []string{"-bogus"}); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("Parse(-bogus) = %v, want ErrBadFlags", err)
	}
}
