package cli

import (
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"testing"
	"time"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Bool("ok", false, "")
	return fs
}

func TestParseOK(t *testing.T) {
	if err := Parse(newFS(), []string{"-ok"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHelp(t *testing.T) {
	if err := Parse(newFS(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("Parse(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestParseBadFlag(t *testing.T) {
	if err := Parse(newFS(), []string{"-bogus"}); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("Parse(-bogus) = %v, want ErrBadFlags", err)
	}
}

// waitDone asserts the context cancels within a real-time budget.
func waitDone(t *testing.T, ctx context.Context) {
	t.Helper()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled")
	}
}

func TestSignalContextFirstSignalCancels(t *testing.T) {
	ch := make(chan os.Signal, 2)
	forced := make(chan struct{})
	ctx, stop := signalContext(context.Background(), ch, func() { close(forced) })
	defer stop()

	if ctx.Err() != nil {
		t.Fatal("cancelled before any signal")
	}
	ch <- os.Interrupt
	waitDone(t, ctx)
	select {
	case <-forced:
		t.Fatal("one signal forced the exit")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSignalContextSecondSignalForces(t *testing.T) {
	ch := make(chan os.Signal, 2)
	forced := make(chan struct{})
	ctx, stop := signalContext(context.Background(), ch, func() { close(forced) })
	defer stop()

	ch <- os.Interrupt
	waitDone(t, ctx)
	ch <- os.Interrupt
	select {
	case <-forced:
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force")
	}
}

func TestSignalContextStopDisarmsForce(t *testing.T) {
	ch := make(chan os.Signal, 2)
	forced := make(chan struct{})
	ctx, stop := signalContext(context.Background(), ch, func() { close(forced) })

	ch <- os.Interrupt
	waitDone(t, ctx)
	// The command finished its drain and called stop: a straggler signal
	// (an operator's impatient second Ctrl-C racing the exit) must not
	// fire the force path any more.
	stop()
	ch <- os.Interrupt
	select {
	case <-forced:
		t.Fatal("force fired after stop")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSignalContextStopBeforeAnySignal(t *testing.T) {
	ch := make(chan os.Signal, 2)
	ctx, stop := signalContext(context.Background(), ch, func() { t.Error("force fired") })
	stop()
	waitDone(t, ctx) // stop cancels the context and retires the goroutine
	stop()           // idempotent
}
