// Package cli holds the conventions shared by every cmd/ binary: a
// testable run(args, stdout) body, -h/-help printing usage and exiting
// 0, and flag parse errors exiting 2 without re-printing the message
// the FlagSet already wrote to stderr.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// ErrBadFlags marks a flag parse failure whose message the FlagSet has
// already printed to stderr.
var ErrBadFlags = errors.New("invalid flags")

// Parse wraps fs.Parse with the shared conventions: -h/-help surfaces
// as flag.ErrHelp (success), any other parse failure as ErrBadFlags.
func Parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return ErrBadFlags
	}
}

// Main runs the command body and exits with the shared conventions.
// exitCode, when non-nil, maps command-specific errors to exit codes
// first (edctool's verdict codes); the defaults are 0 for nil and
// flag.ErrHelp, 2 for ErrBadFlags, and 1 (with the error printed) for
// everything else.
func Main(name string, run func(args []string, stdout io.Writer) error, exitCode func(error) (int, bool)) {
	err := run(os.Args[1:], os.Stdout)
	if exitCode != nil {
		if code, ok := exitCode(err); ok {
			os.Exit(code)
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// usage already printed by the FlagSet
	case errors.Is(err, ErrBadFlags):
		os.Exit(2) // message already printed by the FlagSet
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}
