// Package cli holds the conventions shared by every cmd/ binary: a
// testable run(args, stdout) body, -h/-help printing usage and exiting
// 0, and flag parse errors exiting 2 without re-printing the message
// the FlagSet already wrote to stderr.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
)

// ErrBadFlags marks a flag parse failure whose message the FlagSet has
// already printed to stderr.
var ErrBadFlags = errors.New("invalid flags")

// Parse wraps fs.Parse with the shared conventions: -h/-help surfaces
// as flag.ErrHelp (success), any other parse failure as ErrBadFlags.
func Parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return ErrBadFlags
	}
}

// SignalContext returns a context cancelled by the first of the given
// signals — the graceful path: the command drains, checkpoints, flushes
// partial output — and invokes force on the second, so an operator whose
// drain is stuck (a wedged filesystem, a huge in-flight task) can always
// force the exit. This is the behaviour signal.NotifyContext cannot
// express: it swallows repeated signals while the drain runs.
//
// In production force prints a line and calls os.Exit(130); tests inject
// a recording func. The returned stop releases the signal registration
// (after which signals regain their default disposition).
func SignalContext(parent context.Context, force func(), sigs ...os.Signal) (ctx context.Context, stop context.CancelFunc) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	ctx, cancel := signalContext(parent, ch, force)
	var once sync.Once
	return ctx, func() {
		once.Do(func() { signal.Stop(ch) })
		cancel()
	}
}

// signalContext is the testable core of SignalContext: the signal
// source is an injected channel.
func signalContext(parent context.Context, ch <-chan os.Signal, force func()) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() { close(done) })
		cancel()
	}
	go func() {
		select {
		case <-ch:
			cancel() // first signal: graceful drain
		case <-done:
			return
		case <-ctx.Done():
			return // finished (or parent cancelled) before any signal
		}
		select {
		case <-ch:
			force() // second signal: the drain is not fast enough
		case <-done:
		}
	}()
	return ctx, stop
}

// ForceExit is the conventional second-signal handler: print who is
// forcing the exit and leave with the shell's 128+SIGINT status.
func ForceExit(name string) func() {
	return func() {
		fmt.Fprintf(os.Stderr, "%s: forcing exit\n", name)
		os.Exit(130)
	}
}

// Main runs the command body and exits with the shared conventions.
// exitCode, when non-nil, maps command-specific errors to exit codes
// first (edctool's verdict codes); the defaults are 0 for nil and
// flag.ErrHelp, 2 for ErrBadFlags, and 1 (with the error printed) for
// everything else.
func Main(name string, run func(args []string, stdout io.Writer) error, exitCode func(error) (int, bool)) {
	err := run(os.Args[1:], os.Stdout)
	if exitCode != nil {
		if code, ok := exitCode(err); ok {
			os.Exit(code)
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// usage already printed by the FlagSet
	case errors.Is(err, ErrBadFlags):
		os.Exit(2) // message already printed by the FlagSet
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}
