package cpu

import (
	"fmt"

	"edcache/internal/trace"
)

// MultiPort is the bank-side contract of single-pass multi-
// configuration replay: one port standing in for K cache
// configurations. AccessBatch must behave exactly as if each member
// performed the ops in order on its own — miss[k][i] is member k's
// outcome for op i — but implementations receive the chunk once, which
// is the point: the op list is built by one classification pass and
// fanned out to every configuration (see cache.MultiCache for the
// canonical backing store).
type MultiPort interface {
	// Members returns the number of configurations behind the port.
	Members() int
	// ExtraHitLatency returns member k's additional hit latency in
	// cycles beyond the single-cycle baseline.
	ExtraHitLatency(k int) int
	// AccessBatch performs the ops in order on every member, setting
	// miss[k][i] to member k's i-th outcome. Each miss[k] has exactly
	// len(ops) entries.
	AccessBatch(ops []PortOp, miss [][]bool)
}

// MultiPhasePort is the optional phase-segmentation extension of
// MultiPort, mirroring PhasePort: RunMulti calls BeginPhase at every
// phase boundary of an annotated stream, once per port — the port fans
// the notification out to its members itself.
type MultiPhasePort interface {
	MultiPort
	BeginPhase(id uint8)
}

// FanPort adapts K independent BatchPorts into a MultiPort by fanning
// every batch out member by member. It is the generic bank adapter —
// ports that can share work across members (one address decomposition,
// one result tally) implement MultiPort directly instead.
type FanPort struct {
	members []BatchPort
}

// NewFanPort builds the adapter. Members must be non-nil and must not
// be driven outside the fan while it is in use.
func NewFanPort(members ...BatchPort) (*FanPort, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cpu: empty fan port")
	}
	for k, m := range members {
		if m == nil {
			return nil, fmt.Errorf("cpu: nil fan port member %d", k)
		}
	}
	return &FanPort{members: members}, nil
}

// Members implements MultiPort.
func (f *FanPort) Members() int { return len(f.members) }

// ExtraHitLatency implements MultiPort.
func (f *FanPort) ExtraHitLatency(k int) int { return f.members[k].ExtraHitLatency() }

// AccessBatch implements MultiPort.
func (f *FanPort) AccessBatch(ops []PortOp, miss [][]bool) {
	for k, m := range f.members {
		m.AccessBatch(ops, miss[k])
	}
}

// BeginPhase implements MultiPhasePort, forwarding to every member that
// segments itself.
func (f *FanPort) BeginPhase(id uint8) {
	for _, m := range f.members {
		if p, ok := m.(PhasePort); ok {
			p.BeginPhase(id)
		}
	}
}

// RunMulti replays the stream once through K cache configurations and
// returns one Stats per member, each bit-identical to what Run would
// produce for that member alone. il1 and dl1 must agree on the member
// count; member k of each side belongs to the same configuration.
//
// This is the single-pass sweep engine's cpu layer: the stream is
// walked once, each chunk is classified once (the instruction mix and
// op lists are configuration-independent), and only the cache accesses
// and outcome tallies fan out per member. Phase-annotated streams are
// segmented exactly as in Run — chunks split at phase boundaries, one
// BeginPhase per MultiPhasePort per boundary — so per-phase Stats also
// match the single-configuration path bit for bit.
func RunMulti(cfg Config, il1, dl1 MultiPort, s trace.Stream) ([]Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if il1 == nil || dl1 == nil {
		return nil, fmt.Errorf("cpu: nil cache port")
	}
	members := il1.Members()
	if d := dl1.Members(); d != members {
		return nil, fmt.Errorf("cpu: IL1 bank has %d members, DL1 bank %d", members, d)
	}
	if members == 0 {
		return nil, fmt.Errorf("cpu: empty cache bank")
	}
	b := newMultiBatcher(cfg, il1, dl1, members)

	next := func(buf []trace.Inst) []trace.Inst {
		return buf[:trace.Fill(s, buf)]
	}
	var insts []trace.Inst
	if sb, ok := s.(trace.SliceBatcher); ok {
		next = func([]trace.Inst) []trace.Inst { return sb.NextSlice(batchSize) }
	} else {
		insts = make([]trace.Inst, batchSize)
	}
	if !trace.HasPhases(s) {
		for {
			chunk := next(insts)
			if len(chunk) == 0 {
				break
			}
			b.process(chunk)
		}
		return b.sts, nil
	}
	lg := newMultiLedger(il1, dl1, members)
	for {
		chunk := next(insts)
		if len(chunk) == 0 {
			break
		}
		for len(chunk) > 0 {
			id := chunk[0].Phase
			j := 1
			for j < len(chunk) && chunk[j].Phase == id {
				j++
			}
			if id != lg.cur {
				lg.boundary(b.sts, id)
			}
			b.process(chunk[:j])
			chunk = chunk[j:]
		}
	}
	lg.finish(b.sts)
	return b.sts, nil
}

// multiBatcher is batcher's K-member counterpart: one classification
// scratch set shared by all members, one outcome matrix (and Stats)
// per member.
type multiBatcher struct {
	sts    []Stats
	mem    uint64
	dExtra []int
	il1    MultiPort
	dl1    MultiPort
	iops   []PortOp
	dops   []PortOp
	udist  []uint8 // use distance per data op (0 for stores)
	imiss  [][]bool
	dmiss  [][]bool
	// irows/drows are the per-chunk re-slicings of imiss/dmiss handed
	// to AccessBatch (each row exactly the chunk's op count).
	irows [][]bool
	drows [][]bool
}

func newMultiBatcher(cfg Config, il1, dl1 MultiPort, members int) *multiBatcher {
	b := &multiBatcher{
		sts:    make([]Stats, members),
		mem:    uint64(cfg.MemLatency),
		dExtra: make([]int, members),
		il1:    il1,
		dl1:    dl1,
		iops:   make([]PortOp, batchSize),
		dops:   make([]PortOp, 0, batchSize),
		udist:  make([]uint8, 0, batchSize),
		imiss:  make([][]bool, members),
		dmiss:  make([][]bool, members),
		irows:  make([][]bool, members),
		drows:  make([][]bool, members),
	}
	for k := 0; k < members; k++ {
		b.dExtra[k] = dl1.ExtraHitLatency(k)
		b.imiss[k] = make([]bool, batchSize)
		b.dmiss[k] = make([]bool, batchSize)
	}
	return b
}

// process replays one same-phase run of instructions through every
// member: one classification, one banked AccessBatch per side, then a
// per-member tally fold identical to the single-configuration path.
func (b *multiBatcher) process(insts []trace.Inst) {
	n := len(insts)
	iops := b.iops[:n]
	dops, udist, mix := classify(insts, iops, b.dops[:0], b.udist[:0])
	b.dops, b.udist = dops, udist
	for k := range b.irows {
		b.irows[k] = b.imiss[k][:n]
		b.drows[k] = b.dmiss[k][:len(dops)]
	}
	b.il1.AccessBatch(iops, b.irows)
	b.dl1.AccessBatch(dops, b.drows)

	for k := range b.sts {
		imisses := countTrue(b.irows[k])
		dmisses := countTrue(b.drows[k])
		var loadUse uint64
		if b.dExtra[k] > 0 {
			loadUse = loadUseStalls(b.dExtra[k], udist, b.dmiss[k])
		}
		foldChunk(&b.sts[k], n, mix, b.mem, b.mem, b.mem, imisses, dmisses, 0, 0, loadUse)
	}
}

// multiLedger segments K members' Stats at shared phase boundaries:
// one per-member phaseLedger for the counter snapshots plus a single
// BeginPhase notification per phase-aware side. Boundaries are shared
// by construction — every member replays the same instruction sequence
// — so the segment structure differs only in counter values.
type multiLedger struct {
	cur uint8
	lgs []phaseLedger
	ip  MultiPhasePort // nil when the side doesn't segment itself
	dp  MultiPhasePort
}

func newMultiLedger(il1, dl1 MultiPort, members int) *multiLedger {
	lg := &multiLedger{lgs: make([]phaseLedger, members)}
	lg.ip, _ = il1.(MultiPhasePort)
	lg.dp, _ = dl1.(MultiPhasePort)
	return lg
}

// boundary closes every member's current segment at its running
// counters and opens a segment for phase id, notifying phase-aware
// banks once before any of the new phase's accesses are issued.
func (l *multiLedger) boundary(sts []Stats, id uint8) {
	for k := range l.lgs {
		l.lgs[k].closeSegment(sts[k])
		l.lgs[k].cur = id
	}
	l.cur = id
	if l.ip != nil {
		l.ip.BeginPhase(id)
	}
	if l.dp != nil {
		l.dp.BeginPhase(id)
	}
}

// finish closes every member's trailing segment and attaches the
// id-ordered segmentations.
func (l *multiLedger) finish(sts []Stats) {
	for k := range l.lgs {
		l.lgs[k].finish(&sts[k])
	}
}
