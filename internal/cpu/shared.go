package cpu

import (
	"fmt"

	"edcache/internal/trace"
)

// CorePorts is one core's pair of private L1 ports. The ports may share
// cache state *behind* the L1s with other cores' ports — a hierarchy
// port whose L2 is common — which is exactly the arrangement RunShared
// serialises.
type CorePorts struct {
	IL1 BatchPort
	DL1 BatchPort
}

// RunShared replays one stream per core, interleaving the cores
// round-robin at chunk granularity, and returns one Stats per core.
//
// The schedule is the semantics: in every round each live core replays
// one chunk (up to batchSize instructions) in core order, so any state
// the ports share — a common L2 — observes a deterministic access
// interleaving that is independent of wall-clock or goroutine timing
// (everything runs on the caller's goroutine). Cores whose streams end
// early drop out of the rotation; the rest keep their relative order.
// With fully private ports the result is bit-identical to running each
// (core, stream) through Run alone — the rotation only matters to
// shared state.
//
// Phase annotations are honoured per core: each annotated stream gets
// its own ledger and BeginPhase notifications, segmented exactly as in
// Run, with chunks split at that stream's phase boundaries.
func RunShared(cfg Config, cores []CorePorts, streams []trace.Stream) ([]Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("cpu: no cores to run")
	}
	if len(cores) != len(streams) {
		return nil, fmt.Errorf("cpu: %d cores but %d streams", len(cores), len(streams))
	}
	type coreState struct {
		b    *batcher
		lg   *phaseLedger // nil for unannotated streams
		next func([]trace.Inst) []trace.Inst
		buf  []trace.Inst
		done bool
	}
	states := make([]coreState, len(cores))
	for i := range cores {
		if cores[i].IL1 == nil || cores[i].DL1 == nil {
			return nil, fmt.Errorf("cpu: core %d has a nil cache port", i)
		}
		s := streams[i]
		if s == nil {
			return nil, fmt.Errorf("cpu: core %d has a nil stream", i)
		}
		cs := &states[i]
		cs.b = newBatcher(cfg, cores[i].IL1, cores[i].DL1)
		if sb, ok := s.(trace.SliceBatcher); ok {
			cs.next = func([]trace.Inst) []trace.Inst { return sb.NextSlice(batchSize) }
		} else {
			cs.buf = make([]trace.Inst, batchSize)
			cs.next = func(buf []trace.Inst) []trace.Inst { return buf[:trace.Fill(s, buf)] }
		}
		if trace.HasPhases(s) {
			cs.lg = newPhaseLedger(cores[i].IL1, cores[i].DL1)
		}
	}
	for remaining := len(states); remaining > 0; {
		for i := range states {
			cs := &states[i]
			if cs.done {
				continue
			}
			chunk := cs.next(cs.buf)
			if len(chunk) == 0 {
				cs.done = true
				remaining--
				continue
			}
			if cs.lg == nil {
				cs.b.process(chunk)
				continue
			}
			for len(chunk) > 0 {
				id := chunk[0].Phase
				j := 1
				for j < len(chunk) && chunk[j].Phase == id {
					j++
				}
				if id != cs.lg.cur {
					cs.lg.boundary(cs.b.st, id)
				}
				cs.b.process(chunk[:j])
				chunk = chunk[j:]
			}
		}
	}
	out := make([]Stats, len(states))
	for i := range states {
		if states[i].lg != nil {
			states[i].lg.finish(&states[i].b.st)
		}
		out[i] = states[i].b.st
	}
	return out, nil
}
