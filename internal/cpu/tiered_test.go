package cpu

import (
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/trace"
)

// hierPort adapts a cache.Hierarchy to the Port/BatchPort/TieredPort
// contracts — the same wiring core's hierarchy port uses, minus energy.
type hierPort struct {
	h    *cache.Hierarchy
	lat  int
	cops []cache.Op
	cres []cache.Result
}

func newHierPort(l1, l2 cache.Config, shared *cache.Cache, lat int) *hierPort {
	if shared == nil {
		shared = cache.MustNew(l2)
	}
	return &hierPort{h: cache.MustNewHierarchy(cache.MustNew(l1), shared), lat: lat}
}

func (p *hierPort) Access(addr uint32, write bool) bool { return !p.h.Access(addr, write).Hit }

func (p *hierPort) ExtraHitLatency() int { return 0 }

func (p *hierPort) AccessBatch(ops []PortOp, miss []bool) {
	if cap(p.cops) < len(ops) {
		p.cops = make([]cache.Op, len(ops))
		p.cres = make([]cache.Result, len(ops))
	}
	cops, cres := p.cops[:len(ops)], p.cres[:len(ops)]
	for i, op := range ops {
		cops[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	p.h.AccessBatch(cops, cres)
	for i := range cres {
		miss[i] = !cres[i].Hit
	}
}

func (p *hierPort) L2Latency() int { return p.lat }

func (p *hierPort) L2FillMisses() uint64 { return p.h.FillMisses() }

var (
	tinyL1 = cache.Config{Sets: 4, Ways: 1, LineBytes: 32}
	midL2  = cache.Config{Sets: 32, Ways: 4, LineBytes: 32}
)

// TestTieredTimingExactFormula pins the two-level stall pricing to a
// hand-computed stream: 32 distinct instruction lines cycled twice
// through a 4-line IL1 over a 128-line L2. Every fetch misses the L1;
// only the first pass misses the L2.
func TestTieredTimingExactFormula(t *testing.T) {
	const lines, mem, l2lat = 32, 20, 6
	var insts []trace.Inst
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			insts = append(insts, trace.Inst{PC: uint32(i * 32)})
		}
	}
	il1 := newHierPort(tinyL1, midL2, nil, l2lat)
	dl1 := newHierPort(tinyL1, midL2, nil, l2lat)
	st, err := Run(Config{MemLatency: mem}, il1, dl1, &trace.SliceStream{Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if st.IMisses != 2*lines || st.IL2Misses != lines {
		t.Fatalf("misses I=%d IL2=%d, want %d/%d", st.IMisses, st.IL2Misses, 2*lines, lines)
	}
	wantMiss := uint64(2*lines*l2lat + lines*mem)
	if st.MissCycles != wantMiss || st.Cycles != uint64(2*lines)+wantMiss {
		t.Fatalf("cycles %d (miss %d), want %d (miss %d)",
			st.Cycles, st.MissCycles, uint64(2*lines)+wantMiss, wantMiss)
	}
}

// TestTieredScalarBatchIdentical holds the batched path to the scalar
// path behind a real two-level hierarchy (private L2 per side, so the
// per-side access sequences fully determine the state): Stats must be
// bit-identical, with live L2 counters.
func TestTieredScalarBatchIdentical(t *testing.T) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(50_000)
	run := func(s trace.Stream) Stats {
		st, err := Run(Config{MemLatency: 20},
			newHierPort(tinyL1, midL2, nil, 6),
			newHierPort(tinyL1, midL2, nil, 6), s)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	scalar := run(scalarOnly{w.Stream()})
	batched := run(w.Stream())
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatalf("batched stats %+v != scalar %+v", batched, scalar)
	}
	if batched.IL2Misses == 0 || batched.DL2Misses == 0 {
		t.Fatalf("expected live L2 counters, got %+v", batched)
	}
	if batched.IL2Misses > batched.IMisses || batched.DL2Misses > batched.DMisses {
		t.Fatalf("L2 misses exceed L1 misses: %+v", batched)
	}
}

// TestRunSharedPrivatePortsMatchRun proves the round-robin rotation is
// pure scheduling: with fully private ports each core's Stats must be
// bit-identical to replaying its stream through Run alone.
func TestRunSharedPrivatePortsMatchRun(t *testing.T) {
	ws := bench.Small()
	if len(ws) < 2 {
		t.Fatal("need two workloads")
	}
	w0, w1 := ws[0].ScaledTo(30_000), ws[1].ScaledTo(47_000) // uneven: one core drops out early
	shared, err := RunShared(Config{MemLatency: 20},
		[]CorePorts{
			{IL1: newHierPort(tinyL1, midL2, nil, 6), DL1: newHierPort(tinyL1, midL2, nil, 6)},
			{IL1: newHierPort(tinyL1, midL2, nil, 6), DL1: newHierPort(tinyL1, midL2, nil, 6)},
		},
		[]trace.Stream{w0.Stream(), w1.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []bench.Workload{w0, w1} {
		alone, err := Run(Config{MemLatency: 20},
			newHierPort(tinyL1, midL2, nil, 6),
			newHierPort(tinyL1, midL2, nil, 6), w.Stream())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shared[i], alone) {
			t.Errorf("core %d (%s): shared-run stats %+v != solo %+v", i, w.Name, shared[i], alone)
		}
	}
}

// TestRunSharedL2Interference drives two cores through one genuinely
// shared L2 and checks determinism (two identical schedules agree
// bit-for-bit) plus the counter invariants under cross-core thrash.
func TestRunSharedL2Interference(t *testing.T) {
	ws := bench.Small()
	w0, w1 := ws[0].ScaledTo(40_000), ws[1].ScaledTo(40_000)
	smallL2 := cache.Config{Sets: 8, Ways: 2, LineBytes: 32} // small enough to thrash
	runShared := func() []Stats {
		il2 := cache.MustNew(smallL2)
		dl2 := cache.MustNew(smallL2)
		sts, err := RunShared(Config{MemLatency: 20},
			[]CorePorts{
				{IL1: newHierPort(tinyL1, smallL2, il2, 6), DL1: newHierPort(tinyL1, smallL2, dl2, 6)},
				{IL1: newHierPort(tinyL1, smallL2, il2, 6), DL1: newHierPort(tinyL1, smallL2, dl2, 6)},
			},
			[]trace.Stream{w0.Stream(), w1.Stream()})
		if err != nil {
			t.Fatal(err)
		}
		return sts
	}
	a, b := runShared(), runShared()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shared-L2 replay not deterministic: %+v vs %+v", a, b)
	}
	for i := range a {
		if a[i].IL2Misses == 0 && a[i].DL2Misses == 0 {
			t.Errorf("core %d: no L2 misses on a thrashing shared L2: %+v", i, a[i])
		}
		if a[i].IL2Misses > a[i].IMisses || a[i].DL2Misses > a[i].DMisses {
			t.Errorf("core %d: L2 misses exceed L1 misses: %+v", i, a[i])
		}
	}
}

func TestRunSharedValidation(t *testing.T) {
	p := func() *hierPort { return newHierPort(tinyL1, midL2, nil, 6) }
	s := &trace.SliceStream{}
	if _, err := RunShared(Config{MemLatency: 20}, nil, nil); err == nil {
		t.Error("empty core list accepted")
	}
	if _, err := RunShared(Config{MemLatency: 20},
		[]CorePorts{{IL1: p(), DL1: p()}}, []trace.Stream{s, s}); err == nil {
		t.Error("core/stream count mismatch accepted")
	}
	if _, err := RunShared(Config{MemLatency: 20},
		[]CorePorts{{IL1: p()}}, []trace.Stream{s}); err == nil {
		t.Error("nil DL1 accepted")
	}
	if _, err := RunShared(Config{MemLatency: 20},
		[]CorePorts{{IL1: p(), DL1: p()}}, []trace.Stream{nil}); err == nil {
		t.Error("nil stream accepted")
	}
}
