// Package cpu models the evaluation platform's processor: a very simple
// single-issue in-order core, as the paper requires ("a very simple
// processor architecture with one core and in-order execution,
// resembling a recently fabricated Intel processor for hybrid Vcc
// operation"). The core is trace-driven: it replays an instruction
// stream against the two L1 caches and produces the cycle and event
// counts the energy accounting layer (internal/core) turns into EPI.
//
// Timing model:
//   - one instruction issues per cycle;
//   - an IL1 miss stalls fetch for the memory latency;
//   - a DL1 miss stalls for the memory latency (write-allocate);
//   - a load that hits stalls max(0, hitLatency − useDistance) cycles:
//     with the baseline single-cycle hit this is never a stall, with the
//     extra EDC pipeline stage it stalls loads whose consumer is the
//     next instruction — the source of the paper's ~3 % ULE slowdown.
//     The I-side EDC stage is hidden by the fetch pipeline (corrections
//     replay only on actual errors), so taken branches incur no extra
//     redirect penalty.
package cpu

import (
	"fmt"

	"edcache/internal/trace"
)

// Port is the interface the core uses to talk to a cache. The
// implementation (internal/core) tracks its own energy; the core only
// needs timing-relevant information.
type Port interface {
	// Access performs one access and reports whether it missed.
	Access(addr uint32, write bool) (miss bool)
	// ExtraHitLatency returns the additional hit latency in cycles
	// beyond the single-cycle baseline (the EDC decode stage).
	ExtraHitLatency() int
}

// PortOp is one access of a batched port request.
type PortOp struct {
	Addr  uint32
	Write bool
}

// BatchPort is an optional Port extension for bulk access: one call
// covers a whole instruction chunk, replacing per-instruction dynamic
// dispatch. AccessBatch must behave exactly like calling Access for
// each op in order, setting miss[i] to the i-th outcome.
type BatchPort interface {
	Port
	AccessBatch(ops []PortOp, miss []bool)
}

// Config is the core's timing configuration.
type Config struct {
	// MemLatency is the memory access penalty in cycles; the paper uses
	// "in the order of 20 cycles" for this highly integrated market.
	MemLatency int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MemLatency < 1 {
		return fmt.Errorf("cpu: memory latency %d must be ≥ 1", c.MemLatency)
	}
	return nil
}

// Stats are the event counts of one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Loads         uint64
	Stores        uint64
	Branches      uint64
	TakenBranches uint64

	IAccesses uint64
	IMisses   uint64
	DAccesses uint64
	DMisses   uint64

	LoadUseStalls uint64 // cycles lost to load-to-use stalls
	MissCycles    uint64 // cycles lost to memory accesses
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// batchSize is the chunk length of the batched replay path: large
// enough to amortise the per-chunk calls, small enough that the three
// scratch buffers stay cache-resident (~64 KB).
const batchSize = 4096

// Run replays the stream through the core and returns the run's stats.
//
// When the stream implements trace.BatchStream and both ports implement
// BatchPort, Run processes instructions in chunks: one NextBatch call
// per chunk and one AccessBatch call per cache instead of three dynamic
// dispatches per instruction. The batched path produces bit-identical
// Stats because each cache still sees its own access sequence in
// program order — IL1 and DL1 are independent state, so interleaving
// between them never affects either. (Ports therefore must not share
// mutable state with each other, which no in-tree port does.)
func Run(cfg Config, il1, dl1 Port, s trace.Stream) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if il1 == nil || dl1 == nil {
		return Stats{}, fmt.Errorf("cpu: nil cache port")
	}
	if bs, ok := s.(trace.BatchStream); ok {
		bi, okI := il1.(BatchPort)
		bd, okD := dl1.(BatchPort)
		if okI && okD {
			return runBatched(cfg, bi, bd, bs), nil
		}
	}
	var st Stats
	dExtra := dl1.ExtraHitLatency()
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		st.Instructions++
		st.Cycles++ // issue slot

		// Instruction fetch: one IL1 access per instruction.
		st.IAccesses++
		if il1.Access(inst.PC, false) {
			st.IMisses++
			st.Cycles += uint64(cfg.MemLatency)
			st.MissCycles += uint64(cfg.MemLatency)
		}

		switch {
		case inst.IsLoad:
			st.Loads++
			st.DAccesses++
			if dl1.Access(inst.Addr, false) {
				st.DMisses++
				st.Cycles += uint64(cfg.MemLatency)
				st.MissCycles += uint64(cfg.MemLatency)
			} else if dExtra > 0 && inst.UseDist > 0 {
				// Hit: the consumer sees the value after
				// 1+dExtra cycles; a consumer UseDist away hides
				// UseDist of them.
				if stall := 1 + dExtra - int(inst.UseDist); stall > 0 {
					st.Cycles += uint64(stall)
					st.LoadUseStalls += uint64(stall)
				}
			}
		case inst.IsStore:
			st.Stores++
			st.DAccesses++
			if dl1.Access(inst.Addr, true) {
				st.DMisses++
				st.Cycles += uint64(cfg.MemLatency)
				st.MissCycles += uint64(cfg.MemLatency)
			}
		case inst.IsBranch:
			st.Branches++
			if inst.Taken {
				st.TakenBranches++
			}
		}
	}
	return st, nil
}

// runBatched is the chunked fast path of Run: per chunk it performs all
// instruction fetches as one IL1 batch, all data accesses (in program
// order) as one DL1 batch, then walks the chunk accumulating timing.
func runBatched(cfg Config, il1, dl1 BatchPort, s trace.BatchStream) Stats {
	var st Stats
	dExtra := dl1.ExtraHitLatency()
	mem := uint64(cfg.MemLatency)

	insts := make([]trace.Inst, batchSize)
	iops := make([]PortOp, batchSize)
	imiss := make([]bool, batchSize)
	dops := make([]PortOp, 0, batchSize)
	dmiss := make([]bool, batchSize)

	for {
		n := s.NextBatch(insts)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			iops[i] = PortOp{Addr: insts[i].PC}
		}
		il1.AccessBatch(iops[:n], imiss[:n])

		dops = dops[:0]
		for i := 0; i < n; i++ {
			if insts[i].IsLoad {
				dops = append(dops, PortOp{Addr: insts[i].Addr})
			} else if insts[i].IsStore {
				dops = append(dops, PortOp{Addr: insts[i].Addr, Write: true})
			}
		}
		dl1.AccessBatch(dops, dmiss[:len(dops)])

		d := 0
		for i := 0; i < n; i++ {
			inst := &insts[i]
			st.Instructions++
			st.Cycles++ // issue slot
			st.IAccesses++
			if imiss[i] {
				st.IMisses++
				st.Cycles += mem
				st.MissCycles += mem
			}
			switch {
			case inst.IsLoad:
				st.Loads++
				st.DAccesses++
				if dmiss[d] {
					st.DMisses++
					st.Cycles += mem
					st.MissCycles += mem
				} else if dExtra > 0 && inst.UseDist > 0 {
					if stall := 1 + dExtra - int(inst.UseDist); stall > 0 {
						st.Cycles += uint64(stall)
						st.LoadUseStalls += uint64(stall)
					}
				}
				d++
			case inst.IsStore:
				st.Stores++
				st.DAccesses++
				if dmiss[d] {
					st.DMisses++
					st.Cycles += mem
					st.MissCycles += mem
				}
				d++
			case inst.IsBranch:
				st.Branches++
				if inst.Taken {
					st.TakenBranches++
				}
			}
		}
	}
	return st
}
