// Package cpu models the evaluation platform's processor: a very simple
// single-issue in-order core, as the paper requires ("a very simple
// processor architecture with one core and in-order execution,
// resembling a recently fabricated Intel processor for hybrid Vcc
// operation"). The core is trace-driven: it replays an instruction
// stream against the two L1 caches and produces the cycle and event
// counts the energy accounting layer (internal/core) turns into EPI.
//
// Timing model:
//   - one instruction issues per cycle;
//   - an IL1 miss stalls fetch for the memory latency;
//   - a DL1 miss stalls for the memory latency (write-allocate);
//   - behind a two-level hierarchy (TieredPort) an L1 miss stalls for
//     the L2 latency instead, and each demand fill that also misses the
//     L2 adds the full memory latency on top;
//   - a load that hits stalls max(0, hitLatency − useDistance) cycles:
//     with the baseline single-cycle hit this is never a stall, with the
//     extra EDC pipeline stage it stalls loads whose consumer is the
//     next instruction — the source of the paper's ~3 % ULE slowdown.
//     The I-side EDC stage is hidden by the fetch pipeline (corrections
//     replay only on actual errors), so taken branches incur no extra
//     redirect penalty.
package cpu

import (
	"fmt"
	"sort"

	"edcache/internal/trace"
)

// Port is the interface the core uses to talk to a cache. The
// implementation (internal/core) tracks its own energy; the core only
// needs timing-relevant information.
type Port interface {
	// Access performs one access and reports whether it missed.
	Access(addr uint32, write bool) (miss bool)
	// ExtraHitLatency returns the additional hit latency in cycles
	// beyond the single-cycle baseline (the EDC decode stage).
	ExtraHitLatency() int
}

// PortOp is one access of a batched port request.
type PortOp struct {
	Addr  uint32
	Write bool
}

// BatchPort is an optional Port extension for bulk access: one call
// covers a whole instruction chunk, replacing per-instruction dynamic
// dispatch. AccessBatch must behave exactly like calling Access for
// each op in order, setting miss[i] to the i-th outcome.
type BatchPort interface {
	Port
	AccessBatch(ops []PortOp, miss []bool)
}

// TieredPort is an optional Port extension advertising a second cache
// level behind the L1. When a port implements it with L2Latency() > 0,
// the core prices an L1 miss at the L2 service latency instead of the
// memory latency, and adds the full memory latency for every demand
// fill that missed the L2 as well. L2FillMisses is a running counter
// (monotone within a run); the core reads it by deltas, so scalar and
// batched replay agree per construction — the counter depends only on
// the port's own access sequence, which both paths issue identically.
type TieredPort interface {
	Port
	// L2Latency returns the L2 hit service time in cycles; 0 means the
	// port is effectively single-level and the extension is ignored.
	L2Latency() int
	// L2FillMisses returns the running count of demand fills that
	// missed the L2 (memory fetches) since the port was built.
	L2FillMisses() uint64
}

// tiered returns p as an active TieredPort, or nil when p is
// single-level (no interface, or a zero L2 latency).
func tiered(p Port) TieredPort {
	if t, ok := p.(TieredPort); ok && t.L2Latency() > 0 {
		return t
	}
	return nil
}

// PhasePort is an optional Port extension for phase-segmented
// accounting: when the replayed stream is phase-annotated, Run calls
// BeginPhase every time the stream's phase id changes (and once up
// front if the stream opens in a non-zero phase) before issuing that
// phase's accesses, so the port can slice its own event counters per
// phase. Ports start in phase 0 implicitly; unannotated streams never
// trigger a call.
type PhasePort interface {
	Port
	BeginPhase(id uint8)
}

// Config is the core's timing configuration.
type Config struct {
	// MemLatency is the memory access penalty in cycles; the paper uses
	// "in the order of 20 cycles" for this highly integrated market.
	MemLatency int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MemLatency < 1 {
		return fmt.Errorf("cpu: memory latency %d must be ≥ 1", c.MemLatency)
	}
	return nil
}

// Stats are the event counts of one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Loads         uint64
	Stores        uint64
	Branches      uint64
	TakenBranches uint64

	IAccesses uint64
	IMisses   uint64
	DAccesses uint64
	DMisses   uint64

	// IL2Misses/DL2Misses count the per-side L1 demand fills that also
	// missed the second level (memory fetches). Zero for single-level
	// ports, where IMisses/DMisses themselves are the memory fetches.
	IL2Misses uint64
	DL2Misses uint64

	LoadUseStalls uint64 // cycles lost to load-to-use stalls
	MissCycles    uint64 // cycles lost to memory accesses

	// Phases segments every counter above by the stream's phase id,
	// ordered by id. It is nil unless the replayed stream advertises
	// phase annotations (trace.PhaseAnnotated), so unphased replay
	// keeps its exact fast path. When present, each counter sums over
	// the segments to exactly the run-level value.
	Phases []PhaseStats
}

// PhaseStats is one phase segment of a run: the full counter set
// restricted to the instructions carrying this phase id. Stats.Phases
// within the segment is always nil.
type PhaseStats struct {
	Phase uint8
	Stats Stats
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// subCounters returns the field-wise difference a − b of the plain
// counters (Phases excluded); the phase ledger uses it to turn two
// running snapshots into one segment.
func subCounters(a, b Stats) Stats {
	return Stats{
		Instructions:  a.Instructions - b.Instructions,
		Cycles:        a.Cycles - b.Cycles,
		Loads:         a.Loads - b.Loads,
		Stores:        a.Stores - b.Stores,
		Branches:      a.Branches - b.Branches,
		TakenBranches: a.TakenBranches - b.TakenBranches,
		IAccesses:     a.IAccesses - b.IAccesses,
		IMisses:       a.IMisses - b.IMisses,
		DAccesses:     a.DAccesses - b.DAccesses,
		DMisses:       a.DMisses - b.DMisses,
		IL2Misses:     a.IL2Misses - b.IL2Misses,
		DL2Misses:     a.DL2Misses - b.DL2Misses,
		LoadUseStalls: a.LoadUseStalls - b.LoadUseStalls,
		MissCycles:    a.MissCycles - b.MissCycles,
	}
}

// addCounters accumulates the plain counters of d into dst.
func addCounters(dst *Stats, d Stats) {
	dst.Instructions += d.Instructions
	dst.Cycles += d.Cycles
	dst.Loads += d.Loads
	dst.Stores += d.Stores
	dst.Branches += d.Branches
	dst.TakenBranches += d.TakenBranches
	dst.IAccesses += d.IAccesses
	dst.IMisses += d.IMisses
	dst.DAccesses += d.DAccesses
	dst.DMisses += d.DMisses
	dst.IL2Misses += d.IL2Misses
	dst.DL2Misses += d.DL2Misses
	dst.LoadUseStalls += d.LoadUseStalls
	dst.MissCycles += d.MissCycles
}

// phaseLedger accumulates per-phase counter segments by snapshotting
// the running Stats at phase boundaries. Cost is O(boundaries), not
// O(instructions): between boundaries the run loops touch only the
// plain counters. core's port keeps its energy-event counters in sync
// with the same snapshot-diff-accumulate scheme (driven by BeginPhase);
// any change to boundary semantics here must be mirrored there.
type phaseLedger struct {
	cur  uint8
	mark Stats // counters at the start of the current segment
	segs []PhaseStats
	ip   PhasePort // nil when the port doesn't segment itself
	dp   PhasePort
}

func newPhaseLedger(il1, dl1 Port) *phaseLedger {
	lg := &phaseLedger{}
	lg.ip, _ = il1.(PhasePort)
	lg.dp, _ = dl1.(PhasePort)
	return lg
}

// boundary closes the current segment at the running counters st and
// opens a segment for phase id, notifying phase-aware ports before any
// of the new phase's accesses are issued.
func (l *phaseLedger) boundary(st Stats, id uint8) {
	l.closeSegment(st)
	l.cur = id
	if l.ip != nil {
		l.ip.BeginPhase(id)
	}
	if l.dp != nil {
		l.dp.BeginPhase(id)
	}
}

// closeSegment folds the counters accumulated since the last snapshot
// into the current phase's segment. A phase id recurring later (phased
// workloads cycle) accumulates into its existing segment.
func (l *phaseLedger) closeSegment(st Stats) {
	st.Phases = nil
	d := subCounters(st, l.mark)
	l.mark = st
	if d.Instructions == 0 {
		return
	}
	for i := range l.segs {
		if l.segs[i].Phase == l.cur {
			addCounters(&l.segs[i].Stats, d)
			return
		}
	}
	l.segs = append(l.segs, PhaseStats{Phase: l.cur, Stats: d})
}

// finish closes the trailing segment and attaches the id-ordered
// segmentation to st.
func (l *phaseLedger) finish(st *Stats) {
	l.closeSegment(*st)
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].Phase < l.segs[j].Phase })
	st.Phases = l.segs
}

// batchSize is the chunk length of the batched replay path: large
// enough to amortise the per-chunk calls, small enough that the
// scratch buffers (ops, outcomes, use distances — ~20 KB) plus the
// chunk's instructions stay L1-resident under the ports' own scratch.
const batchSize = 1024

// Run replays the stream through the core and returns the run's stats.
//
// When the stream implements trace.BatchStream and both ports implement
// BatchPort, Run processes instructions in chunks: one NextBatch call
// per chunk and one AccessBatch call per cache instead of three dynamic
// dispatches per instruction. The batched path produces bit-identical
// Stats because each cache still sees its own access sequence in
// program order — IL1 and DL1 are independent state, so interleaving
// between them never affects either. (Ports therefore must not share
// mutable state with each other, which no in-tree port does.)
//
// When the stream additionally advertises phase annotations
// (trace.PhaseAnnotated), Run segments the counters per phase id into
// Stats.Phases and notifies PhasePort ports at every boundary. Replay
// behaviour is untouched — each cache still sees the identical access
// sequence, the batch path merely splits chunks at phase boundaries —
// and streams without the annotation run the exact unsegmented code.
func Run(cfg Config, il1, dl1 Port, s trace.Stream) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if il1 == nil || dl1 == nil {
		return Stats{}, fmt.Errorf("cpu: nil cache port")
	}
	phased := trace.HasPhases(s)
	if bs, ok := s.(trace.BatchStream); ok {
		bi, okI := il1.(BatchPort)
		bd, okD := dl1.(BatchPort)
		if okI && okD {
			return runBatched(cfg, bi, bd, bs, phased), nil
		}
	}
	return runScalar(cfg, il1, dl1, s, phased), nil
}

// sideTimer prices one cache side's misses: flat memory latency for a
// single-level port, L2 service latency plus memory latency per L2 fill
// miss behind an active TieredPort. The fill-miss counter is read by
// delta, so both replay paths charge exactly the fills their own access
// sequence caused.
type sideTimer struct {
	tp   TieredPort
	cost uint64 // cycles per L1 miss (memory latency, or L2 latency)
	mem  uint64
	mark uint64 // L2 fill-miss counter at the last read
}

func newSideTimer(p Port, mem uint64) sideTimer {
	t := sideTimer{cost: mem, mem: mem}
	if tp := tiered(p); tp != nil {
		t.tp = tp
		t.cost = uint64(tp.L2Latency())
		t.mark = tp.L2FillMisses()
	}
	return t
}

// l2Delta returns the demand fills that missed the L2 since the last
// call — always zero for single-level ports.
func (t *sideTimer) l2Delta() uint64 {
	if t.tp == nil {
		return 0
	}
	f := t.tp.L2FillMisses()
	d := f - t.mark
	t.mark = f
	return d
}

// runScalar is the per-instruction path of Run.
func runScalar(cfg Config, il1, dl1 Port, s trace.Stream, phased bool) Stats {
	var st Stats
	var lg *phaseLedger
	if phased {
		lg = newPhaseLedger(il1, dl1)
	}
	dExtra := dl1.ExtraHitLatency()
	mem := uint64(cfg.MemLatency)
	it := newSideTimer(il1, mem)
	dt := newSideTimer(dl1, mem)
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if lg != nil && inst.Phase != lg.cur {
			lg.boundary(st, inst.Phase)
		}
		st.Instructions++
		st.Cycles++ // issue slot

		// Instruction fetch: one IL1 access per instruction.
		st.IAccesses++
		if il1.Access(inst.PC, false) {
			st.IMisses++
			l2 := it.l2Delta()
			st.IL2Misses += l2
			stall := it.cost + l2*mem
			st.Cycles += stall
			st.MissCycles += stall
		}

		switch {
		case inst.IsLoad:
			st.Loads++
			st.DAccesses++
			if dl1.Access(inst.Addr, false) {
				st.DMisses++
				l2 := dt.l2Delta()
				st.DL2Misses += l2
				stall := dt.cost + l2*mem
				st.Cycles += stall
				st.MissCycles += stall
			} else if dExtra > 0 && inst.UseDist > 0 {
				// Hit: the consumer sees the value after
				// 1+dExtra cycles; a consumer UseDist away hides
				// UseDist of them.
				if stall := 1 + dExtra - int(inst.UseDist); stall > 0 {
					st.Cycles += uint64(stall)
					st.LoadUseStalls += uint64(stall)
				}
			}
		case inst.IsStore:
			st.Stores++
			st.DAccesses++
			if dl1.Access(inst.Addr, true) {
				st.DMisses++
				l2 := dt.l2Delta()
				st.DL2Misses += l2
				stall := dt.cost + l2*mem
				st.Cycles += stall
				st.MissCycles += stall
			}
		case inst.IsBranch:
			st.Branches++
			if inst.Taken {
				st.TakenBranches++
			}
		}
	}
	if lg != nil {
		lg.finish(&st)
	}
	return st
}

// batcher holds the scratch state of the chunked fast path; process
// replays one same-phase run of instructions.
type batcher struct {
	st     Stats
	mem    uint64
	dExtra int
	il1    BatchPort
	dl1    BatchPort
	it     sideTimer
	dt     sideTimer
	iops   []PortOp
	imiss  []bool
	dops   []PortOp
	dmiss  []bool
	udist  []uint8 // use distance per data op (0 for stores)
}

func newBatcher(cfg Config, il1, dl1 BatchPort) *batcher {
	mem := uint64(cfg.MemLatency)
	return &batcher{
		mem:    mem,
		dExtra: dl1.ExtraHitLatency(),
		il1:    il1,
		dl1:    dl1,
		it:     newSideTimer(il1, mem),
		dt:     newSideTimer(dl1, mem),
		iops:   make([]PortOp, batchSize),
		imiss:  make([]bool, batchSize),
		dops:   make([]PortOp, 0, batchSize),
		dmiss:  make([]bool, batchSize),
		udist:  make([]uint8, 0, batchSize),
	}
}

// countTrue returns the number of set entries — the batched miss
// count. The conditional increment lowers to a branch-free add, so
// tallying a chunk's misses is one linear pass over a byte slice.
func countTrue(m []bool) uint64 {
	var n uint64
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// chunkMix is one chunk's instruction-mix tally: the classification
// output that is identical for every cache configuration replaying the
// chunk, which is what lets the multi-configuration path (RunMulti)
// classify once and fan only the cache accesses out per member.
type chunkMix struct {
	loads, stores, branches, taken uint64
}

// classify performs the one walk over a chunk's instructions that both
// replay paths share: it fills iops (one fetch per instruction),
// appends the data accesses in program order to dops with their use
// distances alongside in udist, and tallies the instruction mix. iops
// must have length len(insts); dops and udist are returned re-sliced
// (append semantics) so callers can reuse their backing arrays.
func classify(insts []trace.Inst, iops []PortOp, dops []PortOp, udist []uint8) ([]PortOp, []uint8, chunkMix) {
	var mix chunkMix
	for i := range insts {
		inst := &insts[i]
		iops[i] = PortOp{Addr: inst.PC}
		if inst.IsLoad {
			mix.loads++
			dops = append(dops, PortOp{Addr: inst.Addr})
			udist = append(udist, inst.UseDist)
		} else if inst.IsStore {
			mix.stores++
			dops = append(dops, PortOp{Addr: inst.Addr, Write: true})
			udist = append(udist, 0)
		} else if inst.IsBranch {
			mix.branches++
			if inst.Taken {
				mix.taken++
			}
		}
	}
	return dops, udist, mix
}

// loadUseStalls tallies the chunk's load-to-use stall cycles for one
// EDC-stage latency: for every load that hit (dmiss false) with a
// consumer UseDist away, the consumer sees the value after 1+dExtra
// cycles and hides UseDist of them. Callers skip the call entirely when
// dExtra is zero — the baseline single-cycle hit never stalls.
func loadUseStalls(dExtra int, udist []uint8, dmiss []bool) uint64 {
	var stalls uint64
	for d, ud := range udist {
		if ud > 0 && !dmiss[d] {
			if stall := 1 + dExtra - int(ud); stall > 0 {
				stalls += uint64(stall)
			}
		}
	}
	return stalls
}

// foldChunk accumulates one chunk's outcome into st: n issue slots,
// the shared mix tally, and the member-specific miss counts and
// load-use stalls. iCost/dCost price each side's L1 misses (the memory
// latency for single-level ports, the L2 latency behind a hierarchy);
// il2/dl2 are the chunk's L2 fill misses, each worth the full memory
// latency on top. With iCost == dCost == mem and zero L2 counts this is
// exactly the single-level fold. Every term is a commutative sum, and
// the phase ledger only snapshots Stats between chunks, so
// chunk-granular folding is invisible to the per-phase segmentation.
func foldChunk(st *Stats, n int, mix chunkMix, iCost, dCost, mem, imisses, dmisses, il2, dl2, loadUse uint64) {
	missCycles := iCost*imisses + dCost*dmisses + mem*(il2+dl2)
	st.Instructions += uint64(n)
	st.Cycles += uint64(n) + missCycles + loadUse // issue slots + stalls
	st.IAccesses += uint64(n)
	st.IMisses += imisses
	st.Loads += mix.loads
	st.Stores += mix.stores
	st.Branches += mix.branches
	st.TakenBranches += mix.taken
	st.DAccesses += mix.loads + mix.stores
	st.DMisses += dmisses
	st.IL2Misses += il2
	st.DL2Misses += dl2
	st.LoadUseStalls += loadUse
	st.MissCycles += missCycles
}

// process performs all instruction fetches of the slice as one IL1
// batch and all data accesses (in program order) as one DL1 batch. One
// classifying pass builds both op lists and the mix counters; the
// timing then needs no second walk over the instructions — misses are
// a branch-free count over each outcome slice (every miss costs the
// same latency regardless of which instruction missed), and load-use
// stalls read the per-op use distances recorded alongside the data ops,
// only when the EDC stage is active.
func (b *batcher) process(insts []trace.Inst) {
	n := len(insts)
	iops := b.iops[:n]
	dops, udist, mix := classify(insts, iops, b.dops[:0], b.udist[:0])
	b.dops, b.udist = dops, udist
	b.il1.AccessBatch(iops, b.imiss[:n])
	b.dl1.AccessBatch(dops, b.dmiss[:len(dops)])

	imisses := countTrue(b.imiss[:n])
	dmisses := countTrue(b.dmiss[:len(dops)])
	var loadUse uint64
	if b.dExtra > 0 {
		loadUse = loadUseStalls(b.dExtra, udist, b.dmiss)
	}
	foldChunk(&b.st, n, mix, b.it.cost, b.dt.cost, b.mem,
		imisses, dmisses, b.it.l2Delta(), b.dt.l2Delta(), loadUse)
}

// runBatched is the chunked fast path of Run. For phase-annotated
// streams each chunk is split at phase boundaries into same-phase runs
// — the access sequences the caches see are unchanged, so Stats stay
// bit-identical to scalar replay; boundaries are rare (thousands of
// instructions apart), so the split costs one phase-id scan per chunk
// and nothing at all for unannotated streams.
//
// Streams whose instructions already sit in memory (trace.SliceBatcher
// — arena cursors) replay zero-copy: each chunk is a read-only window
// into the stream's own storage instead of a copy into scratch. The
// chunk boundaries and processing are identical, so Stats are
// unaffected.
func runBatched(cfg Config, il1, dl1 BatchPort, s trace.BatchStream, phased bool) Stats {
	b := newBatcher(cfg, il1, dl1)
	next := func(buf []trace.Inst) []trace.Inst {
		return buf[:s.NextBatch(buf)]
	}
	var insts []trace.Inst
	if sb, ok := s.(trace.SliceBatcher); ok {
		next = func([]trace.Inst) []trace.Inst { return sb.NextSlice(batchSize) }
	} else {
		insts = make([]trace.Inst, batchSize)
	}
	if !phased {
		for {
			chunk := next(insts)
			if len(chunk) == 0 {
				break
			}
			b.process(chunk)
		}
		return b.st
	}
	lg := newPhaseLedger(il1, dl1)
	for {
		chunk := next(insts)
		if len(chunk) == 0 {
			break
		}
		for len(chunk) > 0 {
			id := chunk[0].Phase
			j := 1
			for j < len(chunk) && chunk[j].Phase == id {
				j++
			}
			if id != lg.cur {
				lg.boundary(b.st, id)
			}
			b.process(chunk[:j])
			chunk = chunk[j:]
		}
	}
	lg.finish(&b.st)
	return b.st
}
