// Package cpu models the evaluation platform's processor: a very simple
// single-issue in-order core, as the paper requires ("a very simple
// processor architecture with one core and in-order execution,
// resembling a recently fabricated Intel processor for hybrid Vcc
// operation"). The core is trace-driven: it replays an instruction
// stream against the two L1 caches and produces the cycle and event
// counts the energy accounting layer (internal/core) turns into EPI.
//
// Timing model:
//   - one instruction issues per cycle;
//   - an IL1 miss stalls fetch for the memory latency;
//   - a DL1 miss stalls for the memory latency (write-allocate);
//   - a load that hits stalls max(0, hitLatency − useDistance) cycles:
//     with the baseline single-cycle hit this is never a stall, with the
//     extra EDC pipeline stage it stalls loads whose consumer is the
//     next instruction — the source of the paper's ~3 % ULE slowdown.
//     The I-side EDC stage is hidden by the fetch pipeline (corrections
//     replay only on actual errors), so taken branches incur no extra
//     redirect penalty.
package cpu

import (
	"fmt"

	"edcache/internal/trace"
)

// Port is the interface the core uses to talk to a cache. The
// implementation (internal/core) tracks its own energy; the core only
// needs timing-relevant information.
type Port interface {
	// Access performs one access and reports whether it missed.
	Access(addr uint32, write bool) (miss bool)
	// ExtraHitLatency returns the additional hit latency in cycles
	// beyond the single-cycle baseline (the EDC decode stage).
	ExtraHitLatency() int
}

// Config is the core's timing configuration.
type Config struct {
	// MemLatency is the memory access penalty in cycles; the paper uses
	// "in the order of 20 cycles" for this highly integrated market.
	MemLatency int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MemLatency < 1 {
		return fmt.Errorf("cpu: memory latency %d must be ≥ 1", c.MemLatency)
	}
	return nil
}

// Stats are the event counts of one run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Loads         uint64
	Stores        uint64
	Branches      uint64
	TakenBranches uint64

	IAccesses uint64
	IMisses   uint64
	DAccesses uint64
	DMisses   uint64

	LoadUseStalls uint64 // cycles lost to load-to-use stalls
	MissCycles    uint64 // cycles lost to memory accesses
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Run replays the stream through the core and returns the run's stats.
func Run(cfg Config, il1, dl1 Port, s trace.Stream) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if il1 == nil || dl1 == nil {
		return Stats{}, fmt.Errorf("cpu: nil cache port")
	}
	var st Stats
	dExtra := dl1.ExtraHitLatency()
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		st.Instructions++
		st.Cycles++ // issue slot

		// Instruction fetch: one IL1 access per instruction.
		st.IAccesses++
		if il1.Access(inst.PC, false) {
			st.IMisses++
			st.Cycles += uint64(cfg.MemLatency)
			st.MissCycles += uint64(cfg.MemLatency)
		}

		switch {
		case inst.IsLoad:
			st.Loads++
			st.DAccesses++
			if dl1.Access(inst.Addr, false) {
				st.DMisses++
				st.Cycles += uint64(cfg.MemLatency)
				st.MissCycles += uint64(cfg.MemLatency)
			} else if dExtra > 0 && inst.UseDist > 0 {
				// Hit: the consumer sees the value after
				// 1+dExtra cycles; a consumer UseDist away hides
				// UseDist of them.
				if stall := 1 + dExtra - int(inst.UseDist); stall > 0 {
					st.Cycles += uint64(stall)
					st.LoadUseStalls += uint64(stall)
				}
			}
		case inst.IsStore:
			st.Stores++
			st.DAccesses++
			if dl1.Access(inst.Addr, true) {
				st.DMisses++
				st.Cycles += uint64(cfg.MemLatency)
				st.MissCycles += uint64(cfg.MemLatency)
			}
		case inst.IsBranch:
			st.Branches++
			if inst.Taken {
				st.TakenBranches++
			}
		}
	}
	return st, nil
}
