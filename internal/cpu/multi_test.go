package cpu

import (
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cache"
)

func newBatchPortCfg(cfg cache.Config, extra int) *batchPort {
	return &batchPort{c: cache.MustNew(cfg), extra: extra}
}

// TestRunMultiMatchesRunPerMember is the single-pass engine's cpu-layer
// contract: one RunMulti pass over a stream must produce, for every
// bank member, Stats bit-identical to a standalone Run of that member's
// configuration — including phase segmentation on annotated streams
// (phased_mix) and per-member EDC latencies (mixed dExtra in one bank).
func TestRunMultiMatchesRunPerMember(t *testing.T) {
	type member struct {
		il1   cache.Config
		dl1   cache.Config
		extra int
	}
	members := []member{
		{cache.Config{Sets: 32, Ways: 8, LineBytes: 32}, cache.Config{Sets: 32, Ways: 8, LineBytes: 32}, 0},
		{cache.Config{Sets: 32, Ways: 8, LineBytes: 32}, cache.Config{Sets: 32, Ways: 8, LineBytes: 32}, 1},
		{cache.Config{Sets: 16, Ways: 2, LineBytes: 32}, cache.Config{Sets: 16, Ways: 4, LineBytes: 32}, 0},
		{cache.Config{Sets: 64, Ways: 4, LineBytes: 16}, cache.Config{Sets: 8, Ways: 1, LineBytes: 64}, 1},
	}
	for _, name := range []string{"gsm_c", "ptrchase_l", "phased_mix"} {
		t.Run(name, func(t *testing.T) {
			w, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w = w.ScaledTo(30_000)

			want := make([]Stats, len(members))
			for k, m := range members {
				st, err := Run(Config{MemLatency: 20},
					newBatchPortCfg(m.il1, 0), newBatchPortCfg(m.dl1, m.extra), w.Stream())
				if err != nil {
					t.Fatal(err)
				}
				want[k] = st
			}

			iports := make([]BatchPort, len(members))
			dports := make([]BatchPort, len(members))
			for k, m := range members {
				iports[k] = newBatchPortCfg(m.il1, 0)
				dports[k] = newBatchPortCfg(m.dl1, m.extra)
			}
			ifan, err := NewFanPort(iports...)
			if err != nil {
				t.Fatal(err)
			}
			dfan, err := NewFanPort(dports...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunMulti(Config{MemLatency: 20}, ifan, dfan, w.Stream())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(members) {
				t.Fatalf("RunMulti returned %d stats for %d members", len(got), len(members))
			}
			for k := range members {
				if !reflect.DeepEqual(got[k], want[k]) {
					t.Errorf("member %d: RunMulti stats %+v != standalone Run %+v", k, got[k], want[k])
				}
			}
		})
	}
}

func TestRunMultiValidation(t *testing.T) {
	one := func(n int) *FanPort {
		ports := make([]BatchPort, n)
		for i := range ports {
			ports[i] = newBatchPort(0)
		}
		f, err := NewFanPort(ports...)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(100)
	if _, err := RunMulti(Config{MemLatency: 0}, one(1), one(1), w.Stream()); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RunMulti(Config{MemLatency: 20}, nil, one(1), w.Stream()); err == nil {
		t.Fatal("nil IL1 bank accepted")
	}
	if _, err := RunMulti(Config{MemLatency: 20}, one(2), one(3), w.Stream()); err == nil {
		t.Fatal("mismatched bank sizes accepted")
	}
	if _, err := NewFanPort(); err == nil {
		t.Fatal("empty fan accepted")
	}
	if _, err := NewFanPort(newBatchPort(0), nil); err == nil {
		t.Fatal("nil fan member accepted")
	}
}

// TestRunMultiScalarOnlyStream covers the Fill fallback: a stream
// without NextBatch still replays through the bank, with identical
// Stats.
func TestRunMultiScalarOnlyStream(t *testing.T) {
	w, err := bench.ByName("phased_mix")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(10_000)
	batched, err := RunMulti(Config{MemLatency: 20},
		mustFan(t, newBatchPort(0)), mustFan(t, newBatchPort(1)), w.Stream())
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := RunMulti(Config{MemLatency: 20},
		mustFan(t, newBatchPort(0)), mustFan(t, newBatchPort(1)), scalarOnly{w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, scalar) {
		t.Fatalf("Fill-fallback stats %+v != slice-path %+v", scalar, batched)
	}
}

func mustFan(t *testing.T, ports ...BatchPort) *FanPort {
	t.Helper()
	f, err := NewFanPort(ports...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
