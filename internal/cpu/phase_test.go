package cpu

import (
	"io"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/trace"
)

// phasedInsts builds a stream alternating through phases 2 → 0 → 2 with
// a mix of loads, stores and branches, so segmentation is exercised on
// a non-zero opening phase and on a recurring id.
func phasedInsts() []trace.Inst {
	var insts []trace.Inst
	phases := []uint8{2, 0, 2}
	for seg, ph := range phases {
		for i := 0; i < 40; i++ {
			inst := trace.Inst{PC: uint32((seg*40 + i) * 4), Phase: ph}
			switch i % 4 {
			case 0:
				inst.IsLoad, inst.Addr, inst.UseDist = true, uint32(0x1000+seg*0x400+i*8), 1
			case 1:
				inst.IsStore, inst.Addr = true, uint32(0x2000+i*8)
			case 2:
				inst.IsBranch, inst.Taken = true, i%8 == 2
			}
			insts = append(insts, inst)
		}
	}
	return insts
}

// sumPhases folds the segments back together for comparison against the
// run totals.
func sumPhases(st Stats) Stats {
	var sum Stats
	for _, seg := range st.Phases {
		addCounters(&sum, seg.Stats)
	}
	return sum
}

func TestPhasedStatsSumToRunTotals(t *testing.T) {
	st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(1),
		&trace.SliceStream{Insts: phasedInsts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Phases) != 2 {
		t.Fatalf("segments %d, want 2 (ids 0 and 2)", len(st.Phases))
	}
	if st.Phases[0].Phase != 0 || st.Phases[1].Phase != 2 {
		t.Fatalf("segment ids %d, %d: not ordered by phase", st.Phases[0].Phase, st.Phases[1].Phase)
	}
	// Phase 2 ran two of the three segments.
	if got := st.Phases[1].Stats.Instructions; got != 80 {
		t.Errorf("phase 2 instructions %d, want 80", got)
	}
	total := st
	total.Phases = nil
	if got := sumPhases(st); !reflect.DeepEqual(got, total) {
		t.Errorf("phase sums %+v != run totals %+v", got, total)
	}
	for _, seg := range st.Phases {
		if seg.Stats.Phases != nil {
			t.Error("nested segmentation must be nil")
		}
	}
}

func TestUnphasedStreamHasNilPhases(t *testing.T) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0), w.ScaledTo(5_000).Stream())
	if err != nil {
		t.Fatal(err)
	}
	if st.Phases != nil {
		t.Errorf("unphased stream produced %d segments", len(st.Phases))
	}
}

// phasePort records BeginPhase notifications on top of the plain batch
// port.
type phasePort struct {
	*batchPort
	calls []uint8
}

func (p *phasePort) BeginPhase(id uint8) { p.calls = append(p.calls, id) }

func TestPhasePortNotifiedAtBoundaries(t *testing.T) {
	for _, batch := range []bool{false, true} {
		il1 := &phasePort{batchPort: newBatchPort(0)}
		dl1 := &phasePort{batchPort: newBatchPort(0)}
		var s trace.Stream = &trace.SliceStream{Insts: phasedInsts()}
		if !batch {
			s = scalarOnly{s}
		}
		if _, err := Run(Config{MemLatency: 20}, il1, dl1, s); err != nil {
			t.Fatal(err)
		}
		// Stream opens in phase 2, drops to 0, returns to 2.
		want := []uint8{2, 0, 2}
		if !reflect.DeepEqual(il1.calls, want) || !reflect.DeepEqual(dl1.calls, want) {
			t.Errorf("batch=%v: boundary calls il1=%v dl1=%v, want %v", batch, il1.calls, dl1.calls, want)
		}
	}
}

func TestPhasedBatchMatchesScalarOnSerialisedTrace(t *testing.T) {
	// End to end: phased workload → v2 file with phase ids → batched
	// replay must match scalar replay bit-for-bit, segments included.
	w, err := bench.ByName("phased_mix")
	if err != nil {
		t.Fatal(err)
	}
	w.PhaseInsts = 3_000
	w = w.ScaledTo(25_000)

	scalar, err := Run(Config{MemLatency: 20}, newPort(0), newPort(1), scalarOnly{w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar.Phases) < 2 {
		t.Fatalf("phased_mix produced %d segments", len(scalar.Phases))
	}
	replayed, err := Run(Config{MemLatency: 20}, newBatchPort(0), newBatchPort(1), serializeV2Phased(t, w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, replayed) {
		t.Errorf("serialised phased replay %+v != scalar %+v", replayed, scalar)
	}
}

func serializeV2Phased(t *testing.T, w bench.Workload) *trace.Reader {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		_, err := trace.WriteV2(pw, w.Stream(), trace.V2Options{Compress: true, Phases: true})
		pw.CloseWithError(err)
	}()
	r, err := trace.NewReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
