package cpu

import (
	"math"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/trace"
)

// testPort adapts a cache.Cache to the Port interface for tests.
type testPort struct {
	c     *cache.Cache
	extra int
}

func (p *testPort) Access(addr uint32, write bool) bool {
	return !p.c.Access(addr, write).Hit
}

func (p *testPort) ExtraHitLatency() int { return p.extra }

func newPort(extra int) *testPort {
	return &testPort{
		c:     cache.MustNew(cache.Config{Sets: 32, Ways: 8, LineBytes: 32}),
		extra: extra,
	}
}

func TestRunValidation(t *testing.T) {
	s := &trace.SliceStream{}
	if _, err := Run(Config{MemLatency: 0}, newPort(0), newPort(0), s); err == nil {
		t.Error("zero memory latency accepted")
	}
	if _, err := Run(Config{MemLatency: 20}, nil, newPort(0), s); err == nil {
		t.Error("nil port accepted")
	}
}

func TestTimingSingleInstructions(t *testing.T) {
	// One plain instruction: 1 issue cycle + 20 IL1 cold-miss cycles.
	s := &trace.SliceStream{Insts: []trace.Inst{{PC: 0}}}
	st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 21 || st.Instructions != 1 || st.IMisses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLoadUseStallOnlyWithExtraLatency(t *testing.T) {
	mk := func() []trace.Inst {
		return []trace.Inst{
			{PC: 0}, // warms IL1 line
			{PC: 4, IsLoad: true, Addr: 0x100, UseDist: 3},  // warms DL1 line
			{PC: 8, IsLoad: true, Addr: 0x104, UseDist: 1},  // hit, consumer next instr
			{PC: 12, IsLoad: true, Addr: 0x108, UseDist: 2}, // hit, consumer 2 away
			{PC: 16, IsLoad: true, Addr: 0x10C, UseDist: 3}, // hit, far consumer
		}
	}
	base, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0),
		&trace.SliceStream{Insts: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if base.LoadUseStalls != 0 {
		t.Errorf("baseline (1-cycle hit) stalled %d cycles", base.LoadUseStalls)
	}
	edc, err := Run(Config{MemLatency: 20}, newPort(0), newPort(1),
		&trace.SliceStream{Insts: mk()})
	if err != nil {
		t.Fatal(err)
	}
	// With +1 EDC cycle only the UseDist=1 load stalls (1 cycle).
	if edc.LoadUseStalls != 1 {
		t.Errorf("EDC config stalled %d cycles, want 1", edc.LoadUseStalls)
	}
	if edc.Cycles != base.Cycles+1 {
		t.Errorf("cycles %d vs %d", edc.Cycles, base.Cycles)
	}
}

func TestStoreMissesUseWriteAllocate(t *testing.T) {
	insts := []trace.Inst{
		{PC: 0, IsStore: true, Addr: 0x200},
		{PC: 4, IsStore: true, Addr: 0x204}, // same line: hit
	}
	st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0),
		&trace.SliceStream{Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stores != 2 || st.DMisses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestBranchCounting(t *testing.T) {
	insts := []trace.Inst{
		{PC: 0, IsBranch: true, Taken: true},
		{PC: 0, IsBranch: true, Taken: false},
		{PC: 0},
	}
	st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0),
		&trace.SliceStream{Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 2 || st.TakenBranches != 1 {
		t.Errorf("branches %d/%d", st.TakenBranches, st.Branches)
	}
}

func TestSmallBenchNearPerfectOnFullCache(t *testing.T) {
	// SmallBench on an 8 KB cache: everything fits; miss rates must be
	// far below 1 %, so CPI approaches 1.
	for _, w := range bench.Small() {
		w = w.ScaledTo(100000)
		st, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0), w.Stream())
		if err != nil {
			t.Fatal(err)
		}
		iMiss := float64(st.IMisses) / float64(st.IAccesses)
		dMiss := float64(st.DMisses) / float64(st.DAccesses)
		if iMiss > 0.005 || dMiss > 0.005 {
			t.Errorf("%s: miss rates I=%.4f D=%.4f too high for a fitting workload", w.Name, iMiss, dMiss)
		}
		if st.CPI() > 1.15 {
			t.Errorf("%s: CPI %.3f too high", w.Name, st.CPI())
		}
	}
}

func TestBigBenchMissesOnULEWayOnly(t *testing.T) {
	// BigBench on the 1 KB ULE-way configuration (1 enabled way) must
	// thrash; on the full cache it should be much healthier. This is the
	// workload-discrepancy premise of the hybrid design.
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(100000)

	full := newPort(0)
	fullI := newPort(0)
	stFull, err := Run(Config{MemLatency: 20}, fullI, full, w.Stream())
	if err != nil {
		t.Fatal(err)
	}

	one := newPort(0)
	oneI := newPort(0)
	for way := 0; way < 7; way++ {
		one.c.SetWayEnabled(way, false)
		oneI.c.SetWayEnabled(way, false)
	}
	stOne, err := Run(Config{MemLatency: 20}, oneI, one, w.Stream())
	if err != nil {
		t.Fatal(err)
	}
	fullMiss := float64(stFull.DMisses) / float64(stFull.DAccesses)
	oneMiss := float64(stOne.DMisses) / float64(stOne.DAccesses)
	if oneMiss < 3*fullMiss {
		t.Errorf("ULE-way miss rate %.4f not ≫ full-cache %.4f", oneMiss, fullMiss)
	}
	if stOne.Cycles <= stFull.Cycles {
		t.Error("thrashing configuration must be slower")
	}
}

func TestEDCSlowdownIsAboutThreePercent(t *testing.T) {
	// The paper: "Performance variation due to the extra cycle for EDC
	// encoding/decoding is negligible (around 3% increase in execution
	// time in all cases)". Run SmallBench at the ULE-way configuration
	// with and without the extra cycle.
	for _, w := range bench.Small() {
		w = w.ScaledTo(100000)
		mkPorts := func(extra int) (*testPort, *testPort) {
			i, d := newPort(0), newPort(extra)
			for way := 0; way < 7; way++ {
				i.c.SetWayEnabled(way, false)
				d.c.SetWayEnabled(way, false)
			}
			return i, d
		}
		i0, d0 := mkPorts(0)
		base, err := Run(Config{MemLatency: 20}, i0, d0, w.Stream())
		if err != nil {
			t.Fatal(err)
		}
		i1, d1 := mkPorts(1)
		edc, err := Run(Config{MemLatency: 20}, i1, d1, w.Stream())
		if err != nil {
			t.Fatal(err)
		}
		slow := float64(edc.Cycles)/float64(base.Cycles) - 1
		if slow < 0.005 || slow > 0.06 {
			t.Errorf("%s: EDC slowdown %.2f%%, want ≈3%% (0.5–6%%)", w.Name, slow*100)
		}
	}
}

func TestCPIHelper(t *testing.T) {
	s := Stats{Instructions: 100, Cycles: 150}
	if math.Abs(s.CPI()-1.5) > 1e-12 {
		t.Errorf("CPI = %g", s.CPI())
	}
	if (Stats{}).CPI() != 0 {
		t.Error("empty stats CPI must be 0")
	}
}
