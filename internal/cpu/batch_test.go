package cpu

import (
	"io"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/trace"
)

// batchPort adapts a cache.Cache to BatchPort through the cache's own
// batch entry point.
type batchPort struct {
	c     *cache.Cache
	extra int
	ops   []cache.Op
	res   []cache.Result
}

func newBatchPort(extra int) *batchPort {
	return &batchPort{
		c:     cache.MustNew(cache.Config{Sets: 32, Ways: 8, LineBytes: 32}),
		extra: extra,
	}
}

func (p *batchPort) Access(addr uint32, write bool) bool {
	return !p.c.Access(addr, write).Hit
}

func (p *batchPort) ExtraHitLatency() int { return p.extra }

func (p *batchPort) AccessBatch(ops []PortOp, miss []bool) {
	if cap(p.ops) < len(ops) {
		p.ops = make([]cache.Op, len(ops))
		p.res = make([]cache.Result, len(ops))
	}
	p.ops = p.ops[:len(ops)]
	for i, op := range ops {
		p.ops[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	p.c.AccessBatch(p.ops, p.res[:len(ops)])
	for i := range p.ops {
		miss[i] = !p.res[i].Hit
	}
}

// scalarOnly hides a stream's NextBatch so Run takes the scalar path
// (but forwards phase annotations, so both paths segment alike).
type scalarOnly struct{ s trace.Stream }

func (s scalarOnly) Next() (trace.Inst, bool) { return s.s.Next() }

func (s scalarOnly) HasPhases() bool { return trace.HasPhases(s.s) }

// TestBatchedRunMatchesScalar is the fast path's contract: for every
// generator family, chunked replay must produce bit-identical Stats to
// the per-instruction path.
func TestBatchedRunMatchesScalar(t *testing.T) {
	for _, name := range []string{"gsm_c", "adpcm_c", "ptrchase_l", "stencil_dsp", "branchy_ctrl", "phased_mix", "adversarial_l1"} {
		t.Run(name, func(t *testing.T) {
			w, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w = w.ScaledTo(50_000)
			for _, extra := range []int{0, 1} {
				scalar, err := Run(Config{MemLatency: 20}, newPort(0), newPort(extra), scalarOnly{w.Stream()})
				if err != nil {
					t.Fatal(err)
				}
				batched, err := Run(Config{MemLatency: 20}, newBatchPort(0), newBatchPort(extra), w.Stream())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(scalar, batched) {
					t.Errorf("extra=%d: batched stats %+v != scalar %+v", extra, batched, scalar)
				}
			}
		})
	}
}

// TestBatchedRunReplaysSerialisedTrace covers the Reader-as-BatchStream
// combination the tools use: generate → serialise v2 → replay batched.
func TestBatchedRunReplaysSerialisedTrace(t *testing.T) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(20_000)
	direct, err := Run(Config{MemLatency: 20}, newBatchPort(0), newBatchPort(0), w.Stream())
	if err != nil {
		t.Fatal(err)
	}
	pr := serializeV2(t, w)
	replayed, err := Run(Config{MemLatency: 20}, newBatchPort(0), newBatchPort(0), pr)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
	if !reflect.DeepEqual(direct, replayed) {
		t.Errorf("replayed stats %+v != direct %+v", replayed, direct)
	}
}

func serializeV2(t *testing.T, w bench.Workload) *trace.Reader {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		_, err := trace.WriteV2(pw, w.Stream(), trace.V2Options{Compress: true})
		pw.CloseWithError(err)
	}()
	r, err := trace.NewReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// BenchmarkReplay measures replay throughput of one pre-materialised
// trace (the tracegen → replay workflow, generation cost excluded)
// through the scalar and batched paths — the chunked fast path must
// win (recorded in the PR description).
func BenchmarkReplay(b *testing.B) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	const insts = 200_000
	w = w.ScaledTo(insts)
	recorded := make([]trace.Inst, 0, insts)
	s := w.Stream()
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		recorded = append(recorded, inst)
	}
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(insts)
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{MemLatency: 20}, newPort(0), newPort(0), scalarOnly{&trace.SliceStream{Insts: recorded}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(insts)
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{MemLatency: 20}, newBatchPort(0), newBatchPort(0), &trace.SliceStream{Insts: recorded}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
