package bench

import (
	"testing"

	"edcache/internal/trace"
)

func TestCorpusRegistration(t *testing.T) {
	if len(Corpus()) < 5 {
		t.Fatalf("corpus has %d workloads, want ≥ 5", len(Corpus()))
	}
	if got, want := len(Full()), len(All())+len(Corpus()); got != want {
		t.Errorf("Full() has %d workloads, want %d", got, want)
	}
	patterns := map[Pattern]bool{}
	names := map[string]bool{}
	for _, w := range Full() {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		patterns[w.Pattern] = true
		if w.Instructions <= 0 {
			t.Errorf("%s: not scaled to a runnable length", w.Name)
		}
	}
	// ≥ 5 distinct generator families beyond the paper's.
	for _, p := range []Pattern{PatternPointerChase, PatternStencil, PatternBranchy, PatternPhased, PatternAdversarial} {
		if !patterns[p] {
			t.Errorf("no corpus workload registered with pattern %v", p)
		}
	}
	// ByName resolves corpus members.
	w, err := ByName("ptrchase_s")
	if err != nil || w.Pattern != PatternPointerChase {
		t.Errorf("ByName(ptrchase_s) = %+v, %v", w, err)
	}
}

func TestCorpusSuiteInvariant(t *testing.T) {
	// SmallBench membership keeps the paper's premise: the workload
	// fits the 1 KB ULE way.
	for _, w := range Corpus() {
		if w.Suite == SmallBench && (w.DataBytes > 1024 || w.CodeBytes > 1024) {
			t.Errorf("%s: SmallBench but footprint code=%dB data=%dB", w.Name, w.CodeBytes, w.DataBytes)
		}
	}
}

func TestCorpusStreamsDeterministicAndBounded(t *testing.T) {
	for _, w := range Corpus() {
		w := w.ScaledTo(20_000)
		t.Run(w.Name, func(t *testing.T) {
			a, b := w.Stream(), w.Stream()
			n := 0
			for {
				ia, oka := a.Next()
				ib, okb := b.Next()
				if oka != okb {
					t.Fatal("identical streams ended at different lengths")
				}
				if !oka {
					break
				}
				if ia != ib {
					t.Fatalf("instruction %d differs between identical streams", n)
				}
				if ia.PC < codeBase || ia.PC >= codeBase+uint32(w.CodeBytes) || ia.PC%4 != 0 {
					t.Fatalf("instruction %d: PC %#x outside code footprint", n, ia.PC)
				}
				if ia.IsLoad || ia.IsStore {
					if ia.Addr < dataBase || ia.Addr >= dataBase+uint32(w.DataBytes) {
						t.Fatalf("instruction %d: address %#x outside working set", n, ia.Addr)
					}
				}
				n++
			}
			if n != 20_000 {
				t.Fatalf("stream length %d, want 20000", n)
			}
		})
	}
}

func TestCorpusBatchMatchesScalar(t *testing.T) {
	// NextBatch must observe the same sequence as Next, for every
	// generator family and across odd batch boundaries.
	for _, w := range Full() {
		w := w.ScaledTo(5_000)
		t.Run(w.Name, func(t *testing.T) {
			scalar := w.Stream()
			batch := w.Stream().(trace.BatchStream)
			buf := make([]trace.Inst, 97)
			got := 0
			for {
				n := batch.NextBatch(buf)
				if n == 0 {
					break
				}
				for i := 0; i < n; i++ {
					want, ok := scalar.Next()
					if !ok {
						t.Fatalf("scalar stream ended early at %d", got)
					}
					if buf[i] != want {
						t.Fatalf("instruction %d: batch %+v != scalar %+v", got, buf[i], want)
					}
					got++
				}
			}
			if _, ok := scalar.Next(); ok {
				t.Fatal("batch stream ended before scalar")
			}
			if got != 5_000 {
				t.Fatalf("batched stream produced %d instructions", got)
			}
		})
	}
}

func TestPointerChaseIsDependentChain(t *testing.T) {
	w, err := ByName("ptrchase_s")
	if err != nil {
		t.Fatal(err)
	}
	nodes := w.DataBytes / chaseNodeBytes
	w = w.ScaledTo(nodes * w.CodeBytes) // enough iterations to close the cycle
	s := w.Stream()
	seen := map[uint32]bool{}
	loads := 0
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if !inst.IsLoad {
			continue
		}
		loads++
		if inst.UseDist != 1 {
			t.Fatalf("chase load with UseDist %d, want 1 (dependent chain)", inst.UseDist)
		}
		seen[inst.Addr] = true
	}
	if loads == 0 {
		t.Fatal("no loads generated")
	}
	// A single-cycle permutation must visit every node.
	if len(seen) != nodes {
		t.Errorf("chase visited %d distinct nodes, want %d (not a full cycle)", len(seen), nodes)
	}
}

func TestStencilStreamsSequentially(t *testing.T) {
	w, err := ByName("stencil_dsp")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(8_000)
	s := w.Stream()
	var stores []uint32
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if inst.IsStore {
			stores = append(stores, inst.Addr)
		}
	}
	if len(stores) < 100 {
		t.Fatalf("only %d stores", len(stores))
	}
	outBase := uint32(dataBase + w.DataBytes/2)
	for i := 1; i < len(stores); i++ {
		if stores[i] != stores[i-1]+uint32(w.StrideBytes) && stores[i] != outBase {
			t.Fatalf("store %d at %#x does not stream from %#x", i, stores[i], stores[i-1])
		}
	}
}

func TestBranchyIsBranchHeavy(t *testing.T) {
	w, err := ByName("branchy_ctrl")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(40_000)
	s := w.Stream()
	branches, taken, n := 0, 0, 0
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		n++
		if inst.IsBranch {
			branches++
			if inst.Taken {
				taken++
			}
		}
	}
	if frac := float64(branches) / float64(n); frac < 0.2 {
		t.Errorf("branch fraction %.3f, want ≥ 0.2 (control-heavy)", frac)
	}
	// Loop trip counts guarantee both outcomes appear in bulk.
	if taken == 0 || taken == branches {
		t.Errorf("degenerate taken pattern: %d/%d", taken, branches)
	}
}

func TestPhasedShiftsWorkingSetAndCodeRegion(t *testing.T) {
	w, err := ByName("phased_mix")
	if err != nil {
		t.Fatal(err)
	}
	w.PhaseInsts = 5_000
	w = w.ScaledTo(w.PhaseInsts * phaseCount)
	s := w.Stream()
	footprint := make([]map[uint32]bool, phaseCount)
	pcs := make([]map[uint32]bool, phaseCount)
	for p := range footprint {
		footprint[p] = map[uint32]bool{}
		pcs[p] = map[uint32]bool{}
	}
	for i := 0; ; i++ {
		inst, ok := s.Next()
		if !ok {
			break
		}
		p := i / w.PhaseInsts
		if inst.IsLoad || inst.IsStore {
			footprint[p][inst.Addr&^63] = true // 64 B granules
		}
		pcs[p][inst.PC] = true
	}
	// Phase 0 is the hot-reuse phase (1/8 footprint), phase 1 streams
	// the full footprint: the touched granule counts must differ
	// sharply — the working-set shift.
	if len(footprint[1]) < 4*len(footprint[0]) {
		t.Errorf("phase footprints %d vs %d granules: no working-set shift", len(footprint[0]), len(footprint[1]))
	}
	// Each phase must execute in its own code region (the annotation).
	for p := 0; p < phaseCount; p++ {
		region := uint32(w.CodeBytes / phaseCount)
		base := codeBase + uint32(p)*region
		for pc := range pcs[p] {
			if pc < base || pc >= base+region {
				t.Fatalf("phase %d executed PC %#x outside its region [%#x, %#x)", p, pc, base, base+region)
			}
		}
	}
}

func TestPhasedEmitsPhaseIDsNatively(t *testing.T) {
	w, err := ByName("phased_mix")
	if err != nil {
		t.Fatal(err)
	}
	w.PhaseInsts = 2_000
	w = w.ScaledTo(w.PhaseInsts * phaseCount * 2) // two full cycles
	s := w.Stream()
	if !trace.HasPhases(s) {
		t.Fatal("phased stream does not advertise phases")
	}
	for i := 0; ; i++ {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if want := uint8((i / w.PhaseInsts) % phaseCount); inst.Phase != want {
			t.Fatalf("instruction %d: phase %d, want %d", i, inst.Phase, want)
		}
	}
	// The batch path must stamp the same ids.
	bs, ok := w.Stream().(trace.BatchStream)
	if !ok {
		t.Fatal("phased stream lost BatchStream")
	}
	buf := make([]trace.Inst, 513)
	for i := 0; ; {
		n := bs.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, inst := range buf[:n] {
			if want := uint8((i / w.PhaseInsts) % phaseCount); inst.Phase != want {
				t.Fatalf("batched instruction %d: phase %d, want %d", i, inst.Phase, want)
			}
			i++
		}
	}
}

func TestUnphasedGeneratorsStayUnannotated(t *testing.T) {
	for _, name := range []string{"gsm_c", "ptrchase_s", "stencil_s", "branchy_tight", "adversarial_l1"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.HasPhases() {
			t.Errorf("%s claims phases", name)
		}
		s := w.ScaledTo(2_000).Stream()
		if trace.HasPhases(s) {
			t.Errorf("%s stream advertises phases", name)
		}
		for {
			inst, ok := s.Next()
			if !ok {
				break
			}
			if inst.Phase != 0 {
				t.Fatalf("%s emitted phase %d", name, inst.Phase)
			}
		}
	}
}

func TestAdversarialMapsToOneSet(t *testing.T) {
	w, err := ByName("adversarial_l1")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(10_000)
	s := w.Stream()
	distinct := map[uint32]bool{}
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if inst.IsLoad || inst.IsStore {
			if inst.Addr%uint32(w.StrideBytes) != 0 {
				t.Fatalf("address %#x not set-stride aligned", inst.Addr)
			}
			distinct[inst.Addr] = true
		}
	}
	// More distinct conflicting lines than the paper L1's 8 ways.
	if len(distinct) <= 8 {
		t.Errorf("only %d conflicting lines, want > 8 (must exceed associativity)", len(distinct))
	}
}
