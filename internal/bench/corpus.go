// Corpus extensions: deterministic workload generators beyond the
// paper's MediaBench-calibrated suite. The ROADMAP's north star wants
// "as many scenarios as you can imagine"; these families cover the
// behaviours the paper's mix cannot reach — dependent-load chains
// (worst case for the EDC extra hit cycle), perfect spatial streaming,
// control-flow pressure, phase-shifting working sets, and a worst-case
// conflict-locality adversary. Each generator is parameterised
// (footprint, mix, phase length) through an exported constructor, and
// the registered instances live in the corpus table at the bottom of
// this file. The README's workload-corpus table documents them all.
package bench

import (
	"math/rand"

	"edcache/internal/trace"
)

// seqStream adapts a per-instruction generator function to
// trace.Stream and trace.BatchStream under an instruction budget.
type seqStream struct {
	n      int // remaining instructions
	gen    func() trace.Inst
	phased bool // generator stamps phase ids (trace.PhaseAnnotated)
}

// HasPhases implements trace.PhaseAnnotated.
func (s *seqStream) HasPhases() bool { return s.phased }

// Next implements trace.Stream.
func (s *seqStream) Next() (trace.Inst, bool) {
	if s.n <= 0 {
		return trace.Inst{}, false
	}
	s.n--
	return s.gen(), true
}

// NextBatch implements trace.BatchStream.
func (s *seqStream) NextBatch(buf []trace.Inst) int {
	n := len(buf)
	if n > s.n {
		n = s.n
	}
	for i := 0; i < n; i++ {
		buf[i] = s.gen()
	}
	s.n -= n
	return n
}

// chaseNodeBytes is the node size of the pointer-chase list: a next
// pointer plus payload, like a cons cell.
const chaseNodeBytes = 16

// PointerChase builds a linked-list traversal workload over a
// dataBytes working set: a pseudo-random single-cycle permutation of
// dataBytes/16 nodes is walked forever, so every load's address depends
// on the previous load and its consumer is the next instruction
// (UseDist 1) — the pattern that maximises the EDC pipeline-stage
// slowdown. loadPeriod sets the load density: one chase load every
// loadPeriod instructions (minimum 3: load, filler, loop branch).
func PointerChase(name string, suite Suite, dataBytes, loadPeriod int, seed int64) Workload {
	if loadPeriod < 3 {
		loadPeriod = 3
	}
	if dataBytes < 2*chaseNodeBytes {
		dataBytes = 2 * chaseNodeBytes
	}
	return Workload{
		Name: name, Suite: suite, Pattern: PatternPointerChase,
		CodeBytes: 4 * loadPeriod, DataBytes: dataBytes,
		LoadFrac: 1 / float64(loadPeriod), BranchFrac: 1 / float64(loadPeriod),
		TakenFrac: 1, UseDist1Frac: 1,
		Seed: seed,
	}
}

// newChaseStream walks the permutation cycle. The loop body is
// loadPeriod instructions: the chase load, ALU filler, and a taken
// back-edge.
func newChaseStream(w Workload) trace.Stream {
	nodes := w.DataBytes / chaseNodeBytes
	rng := rand.New(rand.NewSource(w.Seed))
	next := cyclicPermutation(nodes, rng)
	bodyLen := w.CodeBytes / 4
	cur, pos := 0, 0
	pc := uint32(codeBase)
	gen := func() trace.Inst {
		inst := trace.Inst{PC: pc}
		switch pos {
		case 0:
			inst.IsLoad = true
			inst.Addr = dataBase + uint32(cur*chaseNodeBytes)
			inst.UseDist = 1 // the next hop needs this pointer now
			cur = int(next[cur])
		case bodyLen - 1:
			inst.IsBranch, inst.Taken = true, true
		}
		pos++
		if pos >= bodyLen {
			pos = 0
			pc = codeBase
		} else {
			pc += 4
		}
		return inst
	}
	return &seqStream{n: w.Instructions, gen: gen}
}

// cyclicPermutation returns a uniformly random single-cycle permutation
// (Sattolo's algorithm): following i → p[i] visits every node before
// returning, so the chase never degenerates into a short loop.
func cyclicPermutation(n int, rng *rand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// stencilBody is the 8-instruction stencil loop: three neighbour loads,
// a MAC pair, the output store, an index update, and the back-edge.
const stencilBody = 8

// Stencil builds a 3-point streaming stencil (out[i] = f(in[i-1],
// in[i], in[i+1])) — the DSP/filter shape: near-perfect spatial
// locality, a fixed 3-load/1-store mix, and a compulsory-miss-dominated
// cache profile. The working set splits into an input and an output
// array of dataBytes/2 each; elemBytes is the element size (the
// streaming stride).
func Stencil(name string, suite Suite, dataBytes, elemBytes int, seed int64) Workload {
	if elemBytes < 4 {
		elemBytes = 4
	}
	if dataBytes < 16*elemBytes {
		dataBytes = 16 * elemBytes
	}
	return Workload{
		Name: name, Suite: suite, Pattern: PatternStencil,
		CodeBytes: 4 * stencilBody, DataBytes: dataBytes,
		LoadFrac: 3.0 / stencilBody, StoreFrac: 1.0 / stencilBody,
		BranchFrac: 1.0 / stencilBody, TakenFrac: 1,
		StreamFrac: 1, StrideBytes: elemBytes, UseDist1Frac: 1.0 / 3,
		Seed: seed,
	}
}

func newStencilStream(w Workload) trace.Stream {
	elem := w.StrideBytes
	n := (w.DataBytes / 2) / elem // elements per array
	inBase := uint32(dataBase)
	outBase := uint32(dataBase + w.DataBytes/2)
	at := func(i int) uint32 { return inBase + uint32(((i+n)%n)*elem) }
	i, pos := 0, 0
	pc := uint32(codeBase)
	gen := func() trace.Inst {
		inst := trace.Inst{PC: pc}
		switch pos {
		case 0:
			inst.IsLoad, inst.Addr, inst.UseDist = true, at(i-1), 3
		case 1:
			inst.IsLoad, inst.Addr, inst.UseDist = true, at(i), 2
		case 2:
			inst.IsLoad, inst.Addr, inst.UseDist = true, at(i+1), 1
		case 5:
			inst.IsStore, inst.Addr = true, outBase+uint32(i*elem)
		case stencilBody - 1:
			inst.IsBranch, inst.Taken = true, true
		}
		pos++
		if pos >= stencilBody {
			pos = 0
			pc = codeBase
			i++
			if i >= n {
				i = 0
			}
		} else {
			pc += 4
		}
		return inst
	}
	return &seqStream{n: w.Instructions, gen: gen}
}

// branchyBlock is the 4-instruction basic block of the control-heavy
// generator: ALU, table load, ALU, conditional back-edge.
const branchyBlock = 4

// Branchy builds control-dominated code: codeBytes of basic blocks,
// each a short loop whose trip count cycles deterministically, so one
// in four instructions is a branch (double the paper suite's densest
// mix) and the instruction footprint — not the data — is what presses
// on the cache. Loads hit a small dataBytes lookup table.
func Branchy(name string, suite Suite, codeBytes, dataBytes int, seed int64) Workload {
	if codeBytes < 4*branchyBlock*2 {
		codeBytes = 4 * branchyBlock * 2
	}
	if dataBytes < 64 {
		dataBytes = 64
	}
	return Workload{
		Name: name, Suite: suite, Pattern: PatternBranchy,
		CodeBytes: codeBytes, DataBytes: dataBytes,
		LoadFrac: 1.0 / branchyBlock, BranchFrac: 1.0 / branchyBlock,
		TakenFrac: 0.7, UseDist1Frac: 0,
		Seed: seed,
	}
}

func newBranchyStream(w Workload) trace.Stream {
	rng := rand.New(rand.NewSource(w.Seed))
	blocks := w.CodeBytes / (4 * branchyBlock)
	block, pos := 0, 0
	trips := 1 // remaining back-edge takes of the current block
	visit := 0
	pc := func() uint32 { return codeBase + uint32((block*branchyBlock+pos)*4) }
	gen := func() trace.Inst {
		inst := trace.Inst{PC: pc()}
		switch pos {
		case 1:
			inst.IsLoad = true
			inst.Addr = dataBase + uint32(rng.Intn(w.DataBytes/4))*4
			inst.UseDist = 2 + uint8(visit%2)
		case branchyBlock - 1:
			inst.IsBranch = true
			inst.Taken = trips > 0
		}
		pos++
		if pos >= branchyBlock {
			pos = 0
			if trips > 0 {
				trips-- // back-edge taken: re-run this block
			} else {
				visit++
				block = (block + 1) % blocks
				// Trip counts cycle 1..6, deterministically skewed
				// per block so the taken/not-taken mix varies.
				trips = 1 + (visit*7+block*3)%6
			}
		}
		return inst
	}
	return &seqStream{n: w.Instructions, gen: gen}
}

// phaseCount is the number of distinct phases a phased workload cycles
// through. Each phase gets its own PC region AND stamps its index into
// trace.Inst.Phase, so phase boundaries survive both in-memory replay
// (cpu.Stats segments per phase) and serialisation (trace v2 with the
// phase flag carries the ids byte-for-byte).
const phaseCount = 4

// phaseSpec parameterises one phase of the phased generator.
type phaseSpec struct {
	footFrac   float64 // fraction of DataBytes this phase touches
	loadFrac   float64
	storeFrac  float64
	branchFrac float64
	streamFrac float64 // streaming vs uniform-reuse references
}

// phaseSpecs cycles hot-reuse, full-footprint streaming, sparse walk,
// and cold random phases — the working-set shift a single fixed mix
// cannot express.
var phaseSpecs = [phaseCount]phaseSpec{
	{footFrac: 0.125, loadFrac: 0.25, storeFrac: 0.15, branchFrac: 0.12, streamFrac: 0.10},
	{footFrac: 1.0, loadFrac: 0.30, storeFrac: 0.10, branchFrac: 0.08, streamFrac: 0.90},
	{footFrac: 0.5, loadFrac: 0.28, storeFrac: 0.05, branchFrac: 0.10, streamFrac: 0.60},
	{footFrac: 1.0, loadFrac: 0.20, storeFrac: 0.10, branchFrac: 0.15, streamFrac: 0.0},
}

// Phased builds a multi-phase workload: every phaseInsts instructions
// the generator switches to the next of four phases, each with its own
// working-set slice, instruction mix and access style, and each
// executing in its own quarter of the code region (the phase
// annotation). It models programs whose footprint shifts at runtime —
// the scenario that stresses mode-switch and replacement policy rather
// than steady state.
func Phased(name string, suite Suite, dataBytes, phaseInsts int, seed int64) Workload {
	if dataBytes < 1024 {
		dataBytes = 1024
	}
	if phaseInsts < 1000 {
		phaseInsts = 1000
	}
	return Workload{
		Name: name, Suite: suite, Pattern: PatternPhased,
		CodeBytes: 2048, DataBytes: dataBytes,
		LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.11, TakenFrac: 0.6,
		StrideBytes: 4, UseDist1Frac: 0.12,
		PhaseInsts: phaseInsts,
		Seed:       seed,
	}
}

func newPhasedStream(w Workload) trace.Stream {
	rng := rand.New(rand.NewSource(w.Seed))
	regionWords := w.CodeBytes / 4 / phaseCount
	phase, inPhase := 0, 0
	pc := uint32(codeBase)
	var stream uint32
	gen := func() trace.Inst {
		if inPhase >= w.PhaseInsts {
			inPhase = 0
			phase = (phase + 1) % phaseCount
			pc = codeBase + uint32(phase*regionWords*4)
			stream = 0
		}
		inPhase++
		sp := phaseSpecs[phase]
		foot := int(float64(w.DataBytes) * sp.footFrac)
		if foot < 64 {
			foot = 64
		}
		inst := trace.Inst{PC: pc, Phase: uint8(phase)}
		r := rng.Float64()
		isMem := false
		switch {
		case r < sp.loadFrac:
			inst.IsLoad, isMem = true, true
			if rng.Float64() < w.UseDist1Frac {
				inst.UseDist = 1
			} else {
				inst.UseDist = 2 + uint8(rng.Intn(2))
			}
		case r < sp.loadFrac+sp.storeFrac:
			inst.IsStore, isMem = true, true
		case r < sp.loadFrac+sp.storeFrac+sp.branchFrac:
			inst.IsBranch = true
			inst.Taken = rng.Float64() < w.TakenFrac
		}
		if isMem {
			if rng.Float64() < sp.streamFrac {
				inst.Addr = dataBase + stream
				stream += uint32(w.StrideBytes)
				if stream >= uint32(foot) {
					stream = 0
				}
			} else {
				inst.Addr = dataBase + uint32(rng.Intn(foot/4))*4
			}
		}
		// PC walks the phase's own code region; taken branches jump
		// within it.
		regionBase := codeBase + uint32(phase*regionWords*4)
		if inst.IsBranch && inst.Taken {
			pc = regionBase + uint32(rng.Intn(regionWords))*4
		} else {
			pc += 4
			if pc >= regionBase+uint32(regionWords*4) {
				pc = regionBase
			}
		}
		return inst
	}
	return &seqStream{n: w.Instructions, gen: gen, phased: true}
}

// adversarialBody is the 4-instruction conflict loop: load, ALU,
// load/store, back-edge.
const adversarialBody = 4

// Adversarial builds the worst-case-locality workload: memory
// references cycle through conflictLines addresses exactly
// setStrideBytes apart, so they all index the same cache set. With
// more lines than the cache has ways and true-LRU replacement, every
// steady-state access misses — the upper bound on miss-rate-driven
// energy and time. setStrideBytes should be the target cache's
// sets × line size (1024 for the paper's L1s); every 8th memory
// reference is a store so the thrash also generates writebacks.
func Adversarial(name string, suite Suite, conflictLines, setStrideBytes int, seed int64) Workload {
	if conflictLines < 2 {
		conflictLines = 2
	}
	if setStrideBytes < 64 {
		setStrideBytes = 64
	}
	return Workload{
		Name: name, Suite: suite, Pattern: PatternAdversarial,
		CodeBytes: 4 * adversarialBody, DataBytes: conflictLines * setStrideBytes,
		LoadFrac: 2.0 / adversarialBody * 0.875, StoreFrac: 2.0 / adversarialBody * 0.125,
		BranchFrac: 1.0 / adversarialBody, TakenFrac: 1,
		StrideBytes: setStrideBytes, UseDist1Frac: 0,
		Seed: seed,
	}
}

func newAdversarialStream(w Workload) trace.Stream {
	lines := w.DataBytes / w.StrideBytes
	k, pos := 0, 0
	refs := 0
	pc := uint32(codeBase)
	nextAddr := func() uint32 {
		a := dataBase + uint32(k*w.StrideBytes)
		k++
		if k >= lines {
			k = 0
		}
		return a
	}
	gen := func() trace.Inst {
		inst := trace.Inst{PC: pc}
		switch pos {
		case 0, 2:
			refs++
			if refs%8 == 0 {
				inst.IsStore = true
			} else {
				inst.IsLoad = true
				inst.UseDist = 3 // keep the EDC stage out of the picture
			}
			inst.Addr = nextAddr()
		case adversarialBody - 1:
			inst.IsBranch, inst.Taken = true, true
		}
		pos++
		if pos >= adversarialBody {
			pos = 0
			pc = codeBase
		} else {
			pc += 4
		}
		return inst
	}
	return &seqStream{n: w.Instructions, gen: gen}
}

// corpusWorkloads is the registered extension corpus. Suite membership
// keeps the paper's invariant: SmallBench entries fit the 1 KB ULE way
// (code and data), BigBench entries need the full cache.
var corpusWorkloads = []Workload{
	PointerChase("ptrchase_s", SmallBench, 512, 4, 201),
	PointerChase("ptrchase_l", BigBench, 8192, 4, 202),
	Stencil("stencil_s", SmallBench, 1024, 4, 203),
	Stencil("stencil_dsp", BigBench, 12288, 8, 204),
	Branchy("branchy_tight", SmallBench, 768, 256, 205),
	Branchy("branchy_ctrl", BigBench, 4096, 2048, 206),
	Phased("phased_mix", BigBench, 10240, 40_000, 207),
	Adversarial("adversarial_l1", BigBench, 12, 1024, 208),
}

// Corpus returns the extension corpus (every non-paper workload) at the
// default trace length.
func Corpus() []Workload {
	out := make([]Workload, len(corpusWorkloads))
	for i, w := range corpusWorkloads {
		w.Instructions = defaultInstructions
		out[i] = w
	}
	return out
}

// Full returns the paper suite plus the extension corpus — the whole
// registered workload corpus.
func Full() []Workload {
	return append(All(), Corpus()...)
}
