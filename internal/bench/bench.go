// Package bench provides the workload suite of the evaluation. The paper
// uses MediaBench (Lee et al., MICRO 1997) split into two categories by
// cache footprint: SmallBench (adpcm and epic, encode and decode), whose
// working sets fit very small caches (~1 KB) and which run during ULE
// mode, and BigBench (g721, gsm, mpeg2), which need the full 8 KB cache
// and run during HP mode (Section IV-A.1). MediaBench binaries are not
// redistributable and no compiled target exists for this simulator, so
// each benchmark is reproduced as a deterministic synthetic trace
// generator calibrated to the kernel family's instruction mix, working
// set and access pattern — the properties the evaluation actually
// depends on.
//
// Beyond the paper's ten workloads, corpus.go grows the suite with a
// family of parameterised generators — pointer chasing, streaming
// stencils, branch-heavy control, phased working-set shifts, and an
// adversarial worst-case-locality pattern (see Pattern). All() returns
// the paper suite unchanged; Corpus() the extensions; Full() both. The
// README's workload-corpus table documents every registered entry and
// the recipe for adding one.
package bench

import (
	"fmt"
	"math/rand"

	"edcache/internal/trace"
)

// Suite classifies workloads by footprint, as the paper does.
type Suite int

const (
	// SmallBench workloads fit in the 1 KB ULE way (ULE-mode duty).
	SmallBench Suite = iota
	// BigBench workloads need the full cache (HP-mode duty).
	BigBench
)

// String names the suite as the paper does.
func (s Suite) String() string {
	if s == SmallBench {
		return "SmallBench"
	}
	return "BigBench"
}

// Pattern selects the access-pattern family a workload's generator
// reproduces. The zero value is the MediaBench-style mix the paper's
// ten workloads use; the other patterns form the extension corpus
// (corpus.go) that stresses behaviours the paper's suite cannot reach —
// dependent-load chains, perfect spatial streaming, control pressure,
// working-set phase shifts, and worst-case conflict locality.
type Pattern int

const (
	// PatternMediaBench is the paper's synthetic kernel mix: streaming
	// plus uniform reuse over one working set.
	PatternMediaBench Pattern = iota
	// PatternPointerChase walks a pseudo-random permutation cycle of
	// pointer-sized nodes: every load is address-dependent on the
	// previous one with a next-instruction consumer, the worst case for
	// the EDC extra hit cycle.
	PatternPointerChase
	// PatternStencil is a 3-point streaming stencil (read in[i-1..i+1],
	// write out[i]) — the DSP/filter shape with near-perfect spatial
	// locality.
	PatternStencil
	// PatternBranchy is control-dominated code: dense data-dependent
	// branches over a small hot loop with a lookup table.
	PatternBranchy
	// PatternPhased cycles through phases with distinct working-set
	// slices and instruction mixes (PhaseInsts instructions each),
	// annotated by a per-phase PC region, modelling multi-phase
	// programs whose footprint shifts at runtime.
	PatternPhased
	// PatternAdversarial walks addresses one cache-set stride apart so
	// more distinct lines map to one set than the cache has ways —
	// steady-state 100 % conflict misses, the locality worst case.
	PatternAdversarial
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternMediaBench:
		return "mediabench"
	case PatternPointerChase:
		return "ptrchase"
	case PatternStencil:
		return "stencil"
	case PatternBranchy:
		return "branchy"
	case PatternPhased:
		return "phased"
	case PatternAdversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Workload is a parameterised synthetic benchmark.
type Workload struct {
	Name  string
	Suite Suite

	// Pattern selects the generator family; the zero value is the
	// paper's MediaBench-style mix. Pattern-specific parameters are
	// documented on the corresponding constructor in corpus.go.
	Pattern Pattern

	Instructions int // dynamic instruction count per run

	CodeBytes int // static code footprint (IL1 working set)
	DataBytes int // data working set (DL1 footprint)

	LoadFrac   float64 // fraction of instructions that load
	StoreFrac  float64 // fraction of instructions that store
	BranchFrac float64 // fraction of instructions that branch
	TakenFrac  float64 // of branches, fraction taken

	StreamFrac  float64 // of memory refs, fraction that stream sequentially
	StrideBytes int     // stride of streaming references

	// UseDist1Frac is the fraction of loads whose consumer is the very
	// next instruction. These are the loads that stall one cycle when
	// the EDC pipeline stage lengthens the load-to-use latency — the
	// source of the paper's ~3 % ULE-mode slowdown.
	UseDist1Frac float64

	// PhaseInsts is the per-phase instruction count of PatternPhased
	// workloads (ignored by other patterns).
	PhaseInsts int

	Seed int64
}

// Memory layout constants for generated addresses.
const (
	codeBase = 0x0040_0000
	dataBase = 0x1000_0000
)

// ScaledTo returns a copy of the workload with the given dynamic
// instruction count (tests and quick runs use shorter traces).
func (w Workload) ScaledTo(instructions int) Workload {
	w.Instructions = instructions
	return w
}

// HasPhases reports whether the workload's generator annotates
// instructions with phase ids (PatternPhased does natively; the
// phase-aware experiments and tracegen -phases key off it).
func (w Workload) HasPhases() bool { return w.Pattern == PatternPhased }

// Stream returns a fresh deterministic instruction stream for the
// workload. Every returned stream also implements trace.BatchStream, so
// serialisation (trace.WriteV2) and replay (cpu.Run) take their bulk
// fast paths.
func (w Workload) Stream() trace.Stream {
	switch w.Pattern {
	case PatternPointerChase:
		return newChaseStream(w)
	case PatternStencil:
		return newStencilStream(w)
	case PatternBranchy:
		return newBranchyStream(w)
	case PatternPhased:
		return newPhasedStream(w)
	case PatternAdversarial:
		return newAdversarialStream(w)
	default:
		return &genStream{
			w:   w,
			rng: rand.New(rand.NewSource(w.Seed)),
			pc:  codeBase,
		}
	}
}

// genStream generates the instruction sequence lazily.
type genStream struct {
	w       Workload
	rng     *rand.Rand
	emitted int
	pc      uint32
	stream  uint32 // streaming cursor within the data region
}

// Next implements trace.Stream.
func (g *genStream) Next() (trace.Inst, bool) {
	if g.emitted >= g.w.Instructions {
		return trace.Inst{}, false
	}
	g.emitted++
	return g.gen(), true
}

// NextBatch implements trace.BatchStream: same sequence as Next, one
// call per chunk.
func (g *genStream) NextBatch(buf []trace.Inst) int {
	n := g.w.Instructions - g.emitted
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = g.gen()
	}
	g.emitted += n
	return n
}

// gen produces the next instruction of the sequence.
func (g *genStream) gen() trace.Inst {
	inst := trace.Inst{PC: g.pc}
	r := g.rng.Float64()
	switch {
	case r < g.w.LoadFrac:
		inst.IsLoad = true
		inst.Addr = g.nextAddr()
		inst.UseDist = g.useDist()
	case r < g.w.LoadFrac+g.w.StoreFrac:
		inst.IsStore = true
		inst.Addr = g.nextAddr()
	case r < g.w.LoadFrac+g.w.StoreFrac+g.w.BranchFrac:
		inst.IsBranch = true
		inst.Taken = g.rng.Float64() < g.w.TakenFrac
	}

	// Advance the program counter; taken branches jump within the code
	// footprint (loop structure), everything else falls through. The PC
	// wraps at the end of the code region (outer loop).
	if inst.IsBranch && inst.Taken {
		g.pc = codeBase + uint32(g.rng.Intn(g.w.CodeBytes/4))*4
	} else {
		g.pc += 4
		if g.pc >= codeBase+uint32(g.w.CodeBytes) {
			g.pc = codeBase
		}
	}
	return inst
}

// nextAddr produces a data address: streaming refs walk the working set
// sequentially with the workload's stride; the rest hit a uniformly
// random word of the working set (reuse).
func (g *genStream) nextAddr() uint32 {
	if g.rng.Float64() < g.w.StreamFrac {
		a := dataBase + g.stream
		g.stream += uint32(g.w.StrideBytes)
		if g.stream >= uint32(g.w.DataBytes) {
			g.stream = 0
		}
		return a
	}
	return dataBase + uint32(g.rng.Intn(g.w.DataBytes/4))*4
}

// useDist draws the load-to-use distance.
func (g *genStream) useDist() uint8 {
	r := g.rng.Float64()
	switch {
	case r < g.w.UseDist1Frac:
		return 1
	case r < g.w.UseDist1Frac+0.30:
		return 2
	default:
		return 3
	}
}

// defaultInstructions is the per-run dynamic length used by the
// experiments; long enough for cache behaviour to reach steady state,
// short enough for the full evaluation matrix to run in seconds.
const defaultInstructions = 300_000

// workloads is the MediaBench-like suite. Instruction mixes and
// footprints follow the published character of each kernel family:
// adpcm is tiny sequential sample processing; epic is small-state image
// pyramid coding; g721 is table-driven speech coding; gsm is
// filter-heavy speech coding; mpeg2 walks frame-sized buffers.
var workloads = []Workload{
	{Name: "adpcm_c", Suite: SmallBench, CodeBytes: 768, DataBytes: 512,
		LoadFrac: 0.20, StoreFrac: 0.07, BranchFrac: 0.13, TakenFrac: 0.60,
		StreamFrac: 0.80, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 101},
	{Name: "adpcm_d", Suite: SmallBench, CodeBytes: 640, DataBytes: 512,
		LoadFrac: 0.19, StoreFrac: 0.08, BranchFrac: 0.13, TakenFrac: 0.62,
		StreamFrac: 0.82, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 102},
	{Name: "epic_c", Suite: SmallBench, CodeBytes: 1024, DataBytes: 896,
		LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.11, TakenFrac: 0.55,
		StreamFrac: 0.65, StrideBytes: 8, UseDist1Frac: 0.13, Seed: 103},
	{Name: "epic_d", Suite: SmallBench, CodeBytes: 896, DataBytes: 768,
		LoadFrac: 0.23, StoreFrac: 0.10, BranchFrac: 0.11, TakenFrac: 0.55,
		StreamFrac: 0.68, StrideBytes: 8, UseDist1Frac: 0.13, Seed: 104},
	{Name: "g721_c", Suite: BigBench, CodeBytes: 2048, DataBytes: 6144,
		LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.12, TakenFrac: 0.58,
		StreamFrac: 0.35, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 105},
	{Name: "g721_d", Suite: BigBench, CodeBytes: 2048, DataBytes: 5632,
		LoadFrac: 0.25, StoreFrac: 0.09, BranchFrac: 0.12, TakenFrac: 0.58,
		StreamFrac: 0.35, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 106},
	{Name: "gsm_c", Suite: BigBench, CodeBytes: 3072, DataBytes: 5120,
		LoadFrac: 0.27, StoreFrac: 0.08, BranchFrac: 0.10, TakenFrac: 0.56,
		StreamFrac: 0.55, StrideBytes: 8, UseDist1Frac: 0.11, Seed: 107},
	{Name: "gsm_d", Suite: BigBench, CodeBytes: 2816, DataBytes: 4608,
		LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.10, TakenFrac: 0.56,
		StreamFrac: 0.58, StrideBytes: 8, UseDist1Frac: 0.11, Seed: 108},
	{Name: "mpeg2_c", Suite: BigBench, CodeBytes: 4096, DataBytes: 12288,
		LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.09, TakenFrac: 0.54,
		StreamFrac: 0.70, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 109},
	{Name: "mpeg2_d", Suite: BigBench, CodeBytes: 3584, DataBytes: 10240,
		LoadFrac: 0.27, StoreFrac: 0.11, BranchFrac: 0.09, TakenFrac: 0.54,
		StreamFrac: 0.72, StrideBytes: 4, UseDist1Frac: 0.12, Seed: 110},
}

// All returns the full ten-benchmark suite (encode + decode variants of
// adpcm, epic, g721, gsm and mpeg2) at the default trace length.
func All() []Workload {
	out := make([]Workload, len(workloads))
	for i, w := range workloads {
		w.Instructions = defaultInstructions
		out[i] = w
	}
	return out
}

// Small returns the SmallBench workloads (ULE-mode duty).
func Small() []Workload { return filter(SmallBench) }

// Big returns the BigBench workloads (HP-mode duty).
func Big() []Workload { return filter(BigBench) }

func filter(s Suite) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up by name, across the paper suite and the
// extension corpus.
func ByName(name string) (Workload, error) {
	for _, w := range Full() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: unknown workload %q", name)
}
