package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"edcache/internal/cache"
	"edcache/internal/cpu"
	"edcache/internal/trace"
)

func TestArenaCacheSharesOneSlabPerWorkload(t *testing.T) {
	c := NewArenaCache()
	w, err := ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(5_000)
	const callers = 8
	arenas := make([]*trace.Arena, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arenas[g] = c.Get(w)
		}(g)
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if arenas[g] != arenas[0] {
			t.Fatal("concurrent Get calls returned distinct slabs for one workload")
		}
	}
	if arenas[0].Len() != 5_000 {
		t.Fatalf("slab holds %d instructions, want 5000", arenas[0].Len())
	}
	// A different instruction count is a different key.
	if c.Get(w.ScaledTo(1_000)) == arenas[0] {
		t.Fatal("different trace lengths share one slab")
	}
}

// TestArenaCacheReplaysGeneratorExactly is the decode-once determinism
// foundation: a cached slab's cursor must replay the identical
// instruction sequence — and phase annotation — a fresh generator
// stream produces, for every registered workload.
func TestArenaCacheReplaysGeneratorExactly(t *testing.T) {
	c := NewArenaCache()
	for _, w := range Full() {
		w := w.ScaledTo(3_000)
		cur := c.Get(w).Cursor()
		if cur.HasPhases() != w.HasPhases() {
			t.Errorf("%s: arena phase annotation %v, workload %v", w.Name, cur.HasPhases(), w.HasPhases())
		}
		fresh := w.Stream()
		got := make([]trace.Inst, 0, 3_000)
		want := make([]trace.Inst, 0, 3_000)
		buf := make([]trace.Inst, 512)
		for {
			n := trace.Fill(cur, buf)
			got = append(got, buf[:n]...)
			m := trace.Fill(fresh, buf)
			want = append(want, buf[:m]...)
			if n == 0 && m == 0 {
				break
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: arena replay diverges from a fresh generator stream", w.Name)
		}
	}
}

// cachePort adapts a raw cache to cpu.Port/cpu.BatchPort exactly the
// way core's energy port does, minus the energy tally: one AccessBatch
// call per chunk, outcomes consumed from the Result slice. The replay
// benchmarks below exercise the real simulation hot path (cpu batch
// loop + cache) without dragging the sizing layer into this package.
type cachePort struct {
	c   *cache.Cache
	ops []cache.Op
	res []cache.Result
}

func (p *cachePort) Access(addr uint32, write bool) bool {
	return !p.c.Access(addr, write).Hit
}

func (p *cachePort) ExtraHitLatency() int { return 0 }

func (p *cachePort) AccessBatch(ops []cpu.PortOp, miss []bool) {
	n := len(ops)
	if cap(p.ops) < n {
		p.ops = make([]cache.Op, n)
		p.res = make([]cache.Result, n)
	}
	co, cr := p.ops[:n], p.res[:n]
	for i, op := range ops {
		co[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	p.c.AccessBatch(co, cr)
	for i := range cr {
		miss[i] = !cr[i].Hit
	}
}

// BenchmarkArenaReplay measures the replay hot path end to end — the
// chunked cpu loop feeding both L1 simulators — from the two sweep
// sources: a fresh generator stream per replay (what every grid point
// used to do) and a cursor over the shared decode-once slab. The gap
// between the two is the generation cost decode-once removes; the
// absolute throughput is the cache.AccessBatch inner loop, the
// hottest code in the repo.
func BenchmarkArenaReplay(b *testing.B) {
	w, err := ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	w = w.ScaledTo(100_000)
	cfg := cpu.Config{MemLatency: 20}
	geom := cache.Config{Sets: 32, Ways: 8, LineBytes: 32}
	replay := func(b *testing.B, s trace.Stream) {
		il1 := &cachePort{c: cache.MustNew(geom)}
		dl1 := &cachePort{c: cache.MustNew(geom)}
		if _, err := cpu.Run(cfg, il1, dl1, s); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("generator", func(b *testing.B) {
		b.SetBytes(int64(w.Instructions))
		for i := 0; i < b.N; i++ {
			replay(b, w.Stream())
		}
	})
	b.Run("arena", func(b *testing.B) {
		a := NewArenaCache().Get(w)
		b.ResetTimer()
		b.SetBytes(int64(w.Instructions))
		for i := 0; i < b.N; i++ {
			replay(b, a.Cursor())
		}
	})
	// The mmap-backed slab replays the validated on-disk records,
	// decoding each cursor window on read; the gap to "arena" is the
	// decode-on-read cost the page-cache sharing buys.
	b.Run("maparena", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "gsm_c.trace")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		_, werr := trace.WriteV2(f, w.Stream(), trace.V2Options{Checksums: true, Index: true})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			b.Fatal(werr)
		}
		a, err := trace.OpenMapArena(path)
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		b.ResetTimer()
		b.SetBytes(int64(w.Instructions))
		for i := 0; i < b.N; i++ {
			replay(b, a.NewCursor())
		}
	})
}
