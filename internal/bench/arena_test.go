package bench

import (
	"reflect"
	"sync"
	"testing"

	"edcache/internal/trace"
)

func TestArenaCacheSharesOneSlabPerWorkload(t *testing.T) {
	c := NewArenaCache()
	w, err := ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(5_000)
	const callers = 8
	arenas := make([]*trace.Arena, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arenas[g] = c.Get(w)
		}(g)
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if arenas[g] != arenas[0] {
			t.Fatal("concurrent Get calls returned distinct slabs for one workload")
		}
	}
	if arenas[0].Len() != 5_000 {
		t.Fatalf("slab holds %d instructions, want 5000", arenas[0].Len())
	}
	// A different instruction count is a different key.
	if c.Get(w.ScaledTo(1_000)) == arenas[0] {
		t.Fatal("different trace lengths share one slab")
	}
}

// TestArenaCacheReplaysGeneratorExactly is the decode-once determinism
// foundation: a cached slab's cursor must replay the identical
// instruction sequence — and phase annotation — a fresh generator
// stream produces, for every registered workload.
func TestArenaCacheReplaysGeneratorExactly(t *testing.T) {
	c := NewArenaCache()
	for _, w := range Full() {
		w := w.ScaledTo(3_000)
		cur := c.Get(w).Cursor()
		if cur.HasPhases() != w.HasPhases() {
			t.Errorf("%s: arena phase annotation %v, workload %v", w.Name, cur.HasPhases(), w.HasPhases())
		}
		fresh := w.Stream()
		got := make([]trace.Inst, 0, 3_000)
		want := make([]trace.Inst, 0, 3_000)
		buf := make([]trace.Inst, 512)
		for {
			n := trace.Fill(cur, buf)
			got = append(got, buf[:n]...)
			m := trace.Fill(fresh, buf)
			want = append(want, buf[:m]...)
			if n == 0 && m == 0 {
				break
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: arena replay diverges from a fresh generator stream", w.Name)
		}
	}
}

// BenchmarkArenaReplay contrasts draining a fresh generator stream
// (what every sweep grid point used to do) with replaying the shared
// slab — the per-replay cost decode-once removes.
func BenchmarkArenaReplay(b *testing.B) {
	w, err := ByName("gsm_c")
	if err != nil {
		b.Fatal(err)
	}
	w = w.ScaledTo(100_000)
	buf := make([]trace.Inst, 4096)
	b.Run("generator", func(b *testing.B) {
		b.SetBytes(int64(w.Instructions))
		for i := 0; i < b.N; i++ {
			s := w.Stream().(trace.BatchStream)
			for s.NextBatch(buf) != 0 {
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		a := NewArenaCache().Get(w)
		b.ResetTimer()
		b.SetBytes(int64(w.Instructions))
		for i := 0; i < b.N; i++ {
			c := a.Cursor()
			for c.NextBatch(buf) != 0 {
			}
		}
	})
}
