package bench_test

import (
	"fmt"

	"edcache/internal/bench"
)

// ExampleByName resolves a workload — paper suite or extension corpus —
// and generates its deterministic stream.
func ExampleByName() {
	w, err := bench.ByName("ptrchase_s")
	if err != nil {
		panic(err)
	}
	w = w.ScaledTo(8) // two loop iterations of the 4-instruction body
	s := w.Stream()
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		kind := "alu"
		switch {
		case inst.IsLoad:
			kind = fmt.Sprintf("load @%#x (use-dist %d)", inst.Addr, inst.UseDist)
		case inst.IsBranch:
			kind = "branch"
		}
		fmt.Printf("pc=%#x %s\n", inst.PC, kind)
	}
	// Output:
	// pc=0x400000 load @0x10000000 (use-dist 1)
	// pc=0x400004 alu
	// pc=0x400008 alu
	// pc=0x40000c branch
	// pc=0x400000 load @0x10000090 (use-dist 1)
	// pc=0x400004 alu
	// pc=0x400008 alu
	// pc=0x40000c branch
}

// ExampleCorpus lists the extension corpus with each entry's generator
// family — the table the README documents.
func ExampleCorpus() {
	for _, w := range bench.Corpus() {
		fmt.Printf("%-15s %-10s %s\n", w.Name, w.Suite, w.Pattern)
	}
	// Output:
	// ptrchase_s      SmallBench ptrchase
	// ptrchase_l      BigBench   ptrchase
	// stencil_s       SmallBench stencil
	// stencil_dsp     BigBench   stencil
	// branchy_tight   SmallBench branchy
	// branchy_ctrl    BigBench   branchy
	// phased_mix      BigBench   phased
	// adversarial_l1  BigBench   adversarial
}

// ExamplePointerChase builds a custom parameterised instance of a
// corpus generator — the "adding a workload" recipe's first step.
func ExamplePointerChase() {
	w := bench.PointerChase("chase_custom", bench.BigBench, 4096, 5, 42)
	fmt.Printf("%s: %d-byte list, one chase load every %d instructions\n",
		w.Name, w.DataBytes, w.CodeBytes/4)
	// Output:
	// chase_custom: 4096-byte list, one chase load every 5 instructions
}
