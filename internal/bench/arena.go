package bench

import (
	"edcache/internal/sim"
	"edcache/internal/trace"
)

// ArenaCache memoizes materialized workload slabs so a sweep generates
// each workload exactly once per run and replays the shared slab from
// every grid point. Entries are keyed on the workload value — for
// registered corpus entries that is (workload name, instruction
// count), since names are unique and every other field is fixed by the
// registration — so the same workload at two trace lengths gets two
// slabs while every (scenario, mode, design) grid point at one length
// shares one.
//
// The cache is safe for concurrent Get calls: the first caller for a
// key runs the generator once (distinct workloads generate
// concurrently), everyone else replays the shared immutable arena.
// Generation is deterministic per workload, so a cached slab is
// indistinguishable from a fresh Stream — the experiment engine's
// workers-invariant determinism contract holds with any worker count.
//
// Memory: a slab is 16 bytes per instruction, retained for the cache's
// lifetime — the full 18-workload corpus at the paper's 300 k
// instructions is ~86 MB, the price of decode-once replay.
type ArenaCache struct {
	shared *sim.Shared[Workload, *trace.Arena]
}

// NewArenaCache returns an empty cache.
func NewArenaCache() *ArenaCache {
	return &ArenaCache{shared: sim.NewShared(func(w Workload) (*trace.Arena, error) {
		return trace.NewArena(w.Stream()), nil
	})}
}

// Get returns the workload's shared slab, generating it on first use.
func (c *ArenaCache) Get(w Workload) *trace.Arena {
	a, _ := c.shared.Get(w) // the generator build cannot fail
	return a
}
