package bench

import (
	"testing"

	"edcache/internal/cache"
)

func TestCalibrateFootprint(t *testing.T) {
	paper := cache.Config{Sets: 32, Ways: 8, LineBytes: 32} // 8 KB
	cases := []struct {
		mult float64
		want int
	}{
		{1, 8192},
		{2, 16384},
		{8, 65536},
		{0.5, 4096},
		{0, 64},       // floor: two lines
		{0.001, 64},   // rounds up to the floor
		{1.001, 8224}, // rounds up to a whole line
	}
	for _, c := range cases {
		if got := CalibrateFootprint(paper, c.mult); got != c.want {
			t.Errorf("CalibrateFootprint(paper, %g) = %d, want %d", c.mult, got, c.want)
		}
	}
	// A different geometry shifts every footprint with it — the point of
	// calibration.
	small := cache.Config{Sets: 16, Ways: 2, LineBytes: 16} // 512 B
	if got := CalibrateFootprint(small, 2); got != 1024 {
		t.Errorf("CalibrateFootprint(small, 2) = %d, want 1024", got)
	}
}

func TestCalibratedCorpusTracksGeometry(t *testing.T) {
	cfg := cache.Config{Sets: 32, Ways: 8, LineBytes: 32}
	ws := CalibratedCorpus(cfg)
	if len(ws) != 6 {
		t.Fatalf("calibrated corpus has %d entries, want 6 (2 families × 3 capacity points)", len(ws))
	}
	byName := map[string]Workload{}
	for _, w := range ws {
		byName[w.Name] = w
		if w.DataBytes < cfg.SizeBytes() {
			t.Errorf("%s: footprint %d below the fit point %d", w.Name, w.DataBytes, cfg.SizeBytes())
		}
		// Every instance must generate a usable stream.
		s := w.ScaledTo(100).Stream()
		n := 0
		for _, ok := s.Next(); ok; _, ok = s.Next() {
			n++
		}
		if n != 100 {
			t.Errorf("%s: generated %d instructions, want 100", w.Name, n)
		}
	}
	if fit, x8 := byName["cal_stencil_fit"], byName["cal_stencil_x8"]; x8.DataBytes != 8*fit.DataBytes {
		t.Errorf("stencil x8 footprint %d is not 8× the fit footprint %d", x8.DataBytes, fit.DataBytes)
	}
	// Calibrated instances are deliberately not registered.
	if _, err := ByName("cal_stencil_fit"); err == nil {
		t.Error("calibrated instance leaked into the registered corpus")
	}
}
