package bench

import (
	"math"
	"testing"

	"edcache/internal/trace"
)

func TestSuiteSplitMatchesPaper(t *testing.T) {
	small := Small()
	big := Big()
	if len(small) != 4 {
		t.Errorf("SmallBench has %d workloads, want 4 (adpcm_c, adpcm_d, epic_c, epic_d)", len(small))
	}
	if len(big) != 6 {
		t.Errorf("BigBench has %d workloads, want 6 (g721, gsm, mpeg2 × c/d)", len(big))
	}
	if len(All()) != 10 {
		t.Errorf("suite has %d workloads, want 10", len(All()))
	}
	wantSmall := map[string]bool{"adpcm_c": true, "adpcm_d": true, "epic_c": true, "epic_d": true}
	for _, w := range small {
		if !wantSmall[w.Name] {
			t.Errorf("unexpected SmallBench member %q", w.Name)
		}
	}
}

func TestSmallBenchFitsULEWay(t *testing.T) {
	// The paper's premise: SmallBench working sets fit "very small cache
	// sizes (e.g., 1KB)".
	for _, w := range Small() {
		if w.DataBytes > 1024 {
			t.Errorf("%s: data working set %d B exceeds 1 KB", w.Name, w.DataBytes)
		}
		if w.CodeBytes > 1024 {
			t.Errorf("%s: code footprint %d B exceeds 1 KB", w.Name, w.CodeBytes)
		}
	}
	// And BigBench does not fit the ULE way (needs the full cache).
	for _, w := range Big() {
		if w.DataBytes <= 1024 {
			t.Errorf("%s: BigBench working set %d B fits the ULE way", w.Name, w.DataBytes)
		}
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	w, err := ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(5000)
	a, b := w.Stream(), w.Stream()
	for i := 0; ; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb {
			t.Fatal("streams ended at different lengths")
		}
		if !oka {
			break
		}
		if ia != ib {
			t.Fatalf("instruction %d differs between identical streams", i)
		}
	}
}

func TestStreamLengthAndMix(t *testing.T) {
	for _, w := range All() {
		w = w.ScaledTo(50000)
		s := w.Stream()
		var n, loads, stores, branches, dist1 int
		for {
			inst, ok := s.Next()
			if !ok {
				break
			}
			n++
			switch {
			case inst.IsLoad:
				loads++
				if inst.UseDist == 1 {
					dist1++
				}
			case inst.IsStore:
				stores++
			case inst.IsBranch:
				branches++
			}
		}
		if n != 50000 {
			t.Fatalf("%s: stream length %d", w.Name, n)
		}
		checkFrac := func(what string, got int, want float64) {
			g := float64(got) / float64(n)
			if math.Abs(g-want) > 0.02 {
				t.Errorf("%s: %s fraction %.3f, want %.3f ±0.02", w.Name, what, g, want)
			}
		}
		checkFrac("load", loads, w.LoadFrac)
		checkFrac("store", stores, w.StoreFrac)
		checkFrac("branch", branches, w.BranchFrac)
		if loads > 0 {
			g := float64(dist1) / float64(loads)
			if math.Abs(g-w.UseDist1Frac) > 0.03 {
				t.Errorf("%s: use-dist-1 fraction %.3f, want %.3f", w.Name, g, w.UseDist1Frac)
			}
		}
	}
}

func TestAddressesStayInDeclaredFootprints(t *testing.T) {
	for _, w := range All() {
		w = w.ScaledTo(20000)
		s := w.Stream()
		for {
			inst, ok := s.Next()
			if !ok {
				break
			}
			if inst.PC < codeBase || inst.PC >= codeBase+uint32(w.CodeBytes) {
				t.Fatalf("%s: PC %#x outside code footprint", w.Name, inst.PC)
			}
			if inst.PC%4 != 0 {
				t.Fatalf("%s: misaligned PC %#x", w.Name, inst.PC)
			}
			if inst.IsLoad || inst.IsStore {
				if inst.Addr < dataBase || inst.Addr >= dataBase+uint32(w.DataBytes) {
					t.Fatalf("%s: address %#x outside working set", w.Name, inst.Addr)
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mpeg2_d")
	if err != nil || w.Name != "mpeg2_d" || w.Suite != BigBench {
		t.Errorf("ByName(mpeg2_d) = %+v, %v", w, err)
	}
	if _, err := ByName("quake3"); err == nil {
		t.Error("unknown workload accepted")
	}
	if w.Instructions <= 0 {
		t.Error("ByName must return a runnable (scaled) workload")
	}
}

func TestSliceStreamHelper(t *testing.T) {
	s := &trace.SliceStream{Insts: []trace.Inst{{PC: 0}, {PC: 4}}}
	if got := trace.Count(s); got != 2 {
		t.Errorf("Count = %d", got)
	}
	s.Reset()
	if got := trace.Count(s); got != 2 {
		t.Errorf("Count after Reset = %d", got)
	}
}
