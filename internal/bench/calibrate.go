// Corpus calibration: generator footprints sized against a cache
// geometry instead of hand-picked byte counts, so capacity sweeps track
// whatever configuration is under test (the ROADMAP follow-up). The
// experiments' corpus-miss capacity axis replays CalibratedCorpus
// instances alongside the registered corpus.
package bench

import "edcache/internal/cache"

// CalibrateFootprint returns a generator data footprint sized at mult ×
// the geometry's capacity, rounded up to whole lines: mult 1 is a
// working set that exactly fits the cache, 2 one that thrashes it
// two-fold, 0.5 one that fits half of it. The result never drops below
// two lines — a generator needs at least that to exercise reuse.
func CalibrateFootprint(cfg cache.Config, mult float64) int {
	bytes := int(mult * float64(cfg.SizeBytes()))
	if rem := bytes % cfg.LineBytes; rem != 0 {
		bytes += cfg.LineBytes - rem
	}
	if floor := 2 * cfg.LineBytes; bytes < floor {
		bytes = floor
	}
	return bytes
}

// calibrationPoints are the capacity multiples CalibratedCorpus sizes
// against: exactly fitting, 2× (moderate capacity pressure) and 8×
// (streaming far beyond the cache).
var calibrationPoints = []struct {
	Suffix string
	Mult   float64
}{
	{"fit", 1},
	{"x2", 2},
	{"x8", 8},
}

// CalibratedCorpus returns generator instances whose data footprints
// are calibrated to the given geometry at fit/2×/8× capacity: a
// streaming stencil (capacity misses appear as soon as the footprint
// exceeds the cache) and a pointer chase (the same growth measured
// under dependent loads). Names are cal_<family>_<fit|x2|x8>; the
// instances are not part of the registered corpus (ByName/Full), they
// exist for capacity axes that must track the configured geometry.
func CalibratedCorpus(cfg cache.Config) []Workload {
	out := make([]Workload, 0, 2*len(calibrationPoints))
	for i, p := range calibrationPoints {
		fp := CalibrateFootprint(cfg, p.Mult)
		out = append(out,
			Stencil("cal_stencil_"+p.Suffix, BigBench, fp, 4, int64(301+i)),
			PointerChase("cal_chase_"+p.Suffix, BigBench, fp, 4, int64(311+i)),
		)
	}
	return out
}
