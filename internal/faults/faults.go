// Package faults models the hard (manufacturing / low-voltage) faults and
// soft errors the cache architecture must survive. Hard faults are
// stuck-at bits drawn per-cell with the failure probability supplied by
// the bitcell model; soft errors are transient single-bit flips. The
// package supports both the Monte-Carlo yield campaigns (experiment E7)
// and the functional fault-injection example.
package faults

import (
	"fmt"
	"math/rand"
)

// BitFault is one stuck-at bit within a stored word.
type BitFault struct {
	Pos   int    // bit position within the codeword
	Stuck uint64 // the value the cell is stuck at (0 or 1)
}

// WordKey addresses one protected word inside a way: line number plus
// word index, where word index len(dataWords) (== WordsPerLine) denotes
// the line's tag word.
type WordKey struct {
	Line int
	Word int
}

// WayGeometry is the fault-relevant geometry of one way.
type WayGeometry struct {
	Lines        int
	WordsPerLine int
	DataWordBits int // total codeword bits per data word (payload+check)
	TagWordBits  int // total codeword bits per tag word
}

// Validate reports whether the geometry is usable.
func (g WayGeometry) Validate() error {
	if g.Lines <= 0 || g.WordsPerLine <= 0 || g.DataWordBits <= 0 || g.TagWordBits <= 0 {
		return fmt.Errorf("faults: invalid geometry %+v", g)
	}
	return nil
}

// TagWordIndex returns the Word value that addresses a line's tag.
func (g WayGeometry) TagWordIndex() int { return g.WordsPerLine }

// TotalBits returns the number of cells in the way.
func (g WayGeometry) TotalBits() int {
	return g.Lines * (g.WordsPerLine*g.DataWordBits + g.TagWordBits)
}

// WayFaults is a sparse stuck-at fault map over one way.
type WayFaults struct {
	geom  WayGeometry
	words map[WordKey][]BitFault
	count int
}

// Generate draws a fault map with independent per-bit probability pf,
// using the supplied RNG (deterministic campaigns seed it explicitly).
// Stuck values are equiprobable 0/1.
func Generate(g WayGeometry, pf float64, rng *rand.Rand) (*WayFaults, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if pf < 0 || pf > 1 {
		return nil, fmt.Errorf("faults: Pf %g outside [0,1]", pf)
	}
	w := &WayFaults{geom: g, words: make(map[WordKey][]BitFault)}
	for line := 0; line < g.Lines; line++ {
		for word := 0; word <= g.WordsPerLine; word++ {
			bits := g.DataWordBits
			if word == g.TagWordIndex() {
				bits = g.TagWordBits
			}
			for b := 0; b < bits; b++ {
				if rng.Float64() < pf {
					k := WordKey{Line: line, Word: word}
					w.words[k] = append(w.words[k], BitFault{Pos: b, Stuck: uint64(rng.Intn(2))})
					w.count++
				}
			}
		}
	}
	return w, nil
}

// Empty returns a fault-free map for the geometry.
func Empty(g WayGeometry) *WayFaults {
	return &WayFaults{geom: g, words: make(map[WordKey][]BitFault)}
}

// Inject adds one explicit stuck-at fault (for directed tests and the
// fault-injection example).
func (w *WayFaults) Inject(k WordKey, f BitFault) {
	w.words[k] = append(w.words[k], f)
	w.count++
}

// Apply forces the stuck bits of the addressed word onto a codeword,
// modelling what the array returns on a read after the word was written.
func (w *WayFaults) Apply(k WordKey, codeword uint64) uint64 {
	for _, f := range w.words[k] {
		mask := uint64(1) << uint(f.Pos)
		codeword = codeword&^mask | f.Stuck<<uint(f.Pos)
	}
	return codeword
}

// Count returns the total number of stuck-at cells in the way.
func (w *WayFaults) Count() int { return w.count }

// FaultsIn returns the number of stuck-at cells in one word.
func (w *WayFaults) FaultsIn(k WordKey) int { return len(w.words[k]) }

// MaxPerWord returns the largest number of faults found in any single
// word — the quantity yield analysis cares about (a word with more hard
// faults than the code can dedicate to them is unusable).
func (w *WayFaults) MaxPerWord() int {
	max := 0
	for _, fs := range w.words {
		if len(fs) > max {
			max = len(fs)
		}
	}
	return max
}

// Usable reports whether every word has at most `tolerable` hard faults —
// the acceptance criterion of the paper's Eq. (1)/(2).
func (w *WayFaults) Usable(tolerable int) bool { return w.MaxPerWord() <= tolerable }

// Geometry returns the way geometry the map was generated for.
func (w *WayFaults) Geometry() WayGeometry { return w.geom }

// FlipRandomBit injects a transient soft error into the given word of a
// codeword (not the map): it returns the codeword with one uniformly
// chosen bit of the low `bits` flipped.
func FlipRandomBit(codeword uint64, bits int, rng *rand.Rand) uint64 {
	return codeword ^ 1<<uint(rng.Intn(bits))
}

// FlipBurst injects a multi-bit upset: `length` physically adjacent bits
// flipped at a uniformly chosen position within the low `bits` of the
// codeword. At deep-scaled nodes a single particle strike upsets
// neighbouring cells; this is the fault model the bit-interleaving
// extension (ecc.Interleaved, ablation A4) defends against.
func FlipBurst(codeword uint64, bits, length int, rng *rand.Rand) uint64 {
	if length < 1 || length > bits {
		panic(fmt.Sprintf("faults: burst length %d outside [1,%d]", length, bits))
	}
	start := rng.Intn(bits - length + 1)
	mask := (uint64(1)<<uint(length) - 1) << uint(start)
	return codeword ^ mask
}
