package faults

import (
	"fmt"
	"math/rand"

	"edcache/internal/sim"
)

// Campaign is a Monte-Carlo silicon-sampling campaign: Trials
// independent fault maps are drawn for the geometry at per-bit
// probability Pf, and each sampled die is accepted when no word holds
// more than Tolerable hard faults (Eq. (1)/(2) acceptance).
type Campaign struct {
	Geometry  WayGeometry
	Pf        float64
	Trials    int
	Tolerable int
}

// CampaignResult summarises one campaign.
type CampaignResult struct {
	Usable int // dies accepted
	Trials int
}

// Yield returns the measured usable fraction.
func (r CampaignResult) Yield() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Usable) / float64(r.Trials)
}

// Run executes the campaign on a worker pool. Every trial derives its
// own RNG from (seed, trial index), so the result is identical for any
// worker count — the property the engine's determinism test locks in.
func (c Campaign) Run(seed int64, workers int) (CampaignResult, error) {
	if c.Trials <= 0 {
		return CampaignResult{}, fmt.Errorf("faults: campaign needs a positive trial count, got %d", c.Trials)
	}
	usable, err := sim.Map(workers, c.Trials, func(i int) (int, error) {
		rng := rand.New(rand.NewSource(sim.SubSeed(seed, "faults.campaign", i)))
		m, err := Generate(c.Geometry, c.Pf, rng)
		if err != nil {
			return 0, err
		}
		if m.Usable(c.Tolerable) {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		return CampaignResult{}, err
	}
	res := CampaignResult{Trials: c.Trials}
	for _, u := range usable {
		res.Usable += u
	}
	return res, nil
}
