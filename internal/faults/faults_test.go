package faults

import (
	"math"
	"math/rand"
	"testing"

	"edcache/internal/ecc"
	"edcache/internal/yield"
)

func paperGeom(dataBits, tagBits int) WayGeometry {
	return WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: dataBits, TagWordBits: tagBits}
}

func TestGenerateDeterministic(t *testing.T) {
	g := paperGeom(39, 33)
	a, err := Generate(g, 1e-3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(g, 1e-3, rand.New(rand.NewSource(1)))
	if a.Count() != b.Count() {
		t.Errorf("same seed produced different maps: %d vs %d faults", a.Count(), b.Count())
	}
}

func TestGenerateFaultCountMatchesExpectation(t *testing.T) {
	g := paperGeom(39, 33)
	const pf = 1e-2
	total := 0
	const trials = 200
	for s := int64(0); s < trials; s++ {
		m, _ := Generate(g, pf, rand.New(rand.NewSource(s)))
		total += m.Count()
	}
	mean := float64(total) / trials
	want := pf * float64(g.TotalBits())
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean faults %.1f, want ≈ %.1f", mean, want)
	}
}

func TestApplyForcesStuckBits(t *testing.T) {
	g := paperGeom(39, 33)
	m := Empty(g)
	k := WordKey{Line: 3, Word: 2}
	m.Inject(k, BitFault{Pos: 5, Stuck: 0})
	m.Inject(k, BitFault{Pos: 38, Stuck: 1})
	word := uint64(0xFFFFFFFFFF) & ((1 << 39) - 1)
	got := m.Apply(k, word)
	if got&(1<<5) != 0 {
		t.Error("stuck-at-0 not applied")
	}
	if got&(1<<38) == 0 {
		t.Error("stuck-at-1 not applied")
	}
	// Other words unaffected.
	if m.Apply(WordKey{Line: 3, Word: 1}, word) != word {
		t.Error("fault leaked to another word")
	}
	if m.FaultsIn(k) != 2 || m.Count() != 2 {
		t.Errorf("bookkeeping: %d in word, %d total", m.FaultsIn(k), m.Count())
	}
}

func TestUsableCriterion(t *testing.T) {
	g := paperGeom(39, 33)
	m := Empty(g)
	if !m.Usable(0) {
		t.Error("empty map must be usable at tol 0")
	}
	k := WordKey{Line: 0, Word: 0}
	m.Inject(k, BitFault{Pos: 1, Stuck: 1})
	if m.Usable(0) || !m.Usable(1) {
		t.Error("single-fault word: usable must require tol ≥ 1")
	}
	m.Inject(k, BitFault{Pos: 2, Stuck: 0})
	if m.Usable(1) || m.MaxPerWord() != 2 {
		t.Error("double-fault word must break tol 1")
	}
}

func TestMonteCarloYieldMatchesEquation2(t *testing.T) {
	// Cross-validation between the functional fault model and the
	// analytic yield math: the fraction of generated ways that are
	// usable must match Eq. (1)/(2). Uses a high Pf so the MC resolves
	// the yield with few trials.
	const pf = 2e-4
	g := paperGeom(39, 33)
	yg := yield.WayGeometry{Lines: 32, WordsPerLine: 8, DataBits: 32, TagBits: 26}
	analytic := yield.WaySurvival(pf, yg, 7, 7, 1)

	const trials = 3000
	usable := 0
	for s := int64(0); s < trials; s++ {
		m, _ := Generate(g, pf, rand.New(rand.NewSource(1000+s)))
		if m.Usable(1) {
			usable++
		}
	}
	got := float64(usable) / trials
	se := math.Sqrt(analytic * (1 - analytic) / trials)
	if math.Abs(got-analytic) > 4*se+1e-3 {
		t.Errorf("MC yield %.4f vs analytic %.4f (4σ = %.4f)", got, analytic, 4*se)
	}
}

func TestFlipRandomBit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	word := uint64(0b1010)
	for i := 0; i < 100; i++ {
		flipped := FlipRandomBit(word, 39, rng)
		diff := flipped ^ word
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("exactly one bit must flip, got diff %#x", diff)
		}
		if diff >= 1<<39 {
			t.Fatalf("flip outside word width: %#x", diff)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(WayGeometry{}, 0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := Generate(paperGeom(39, 33), 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid Pf accepted")
	}
}

func TestFlipBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for length := 1; length <= 4; length++ {
		for i := 0; i < 200; i++ {
			word := rng.Uint64() & ((1 << 39) - 1)
			flipped := FlipBurst(word, 39, length, rng)
			diff := flipped ^ word
			// The diff must be exactly `length` contiguous set bits
			// inside the word.
			if diff == 0 || diff >= 1<<39 {
				t.Fatalf("len %d: diff %#x out of range", length, diff)
			}
			low := diff & -diff
			if diff/low != (1<<uint(length))-1 {
				t.Fatalf("len %d: diff %#x not a contiguous burst", length, diff)
			}
		}
	}
}

func TestFlipBurstValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized burst must panic")
		}
	}()
	FlipBurst(0, 8, 9, rand.New(rand.NewSource(1)))
}

func TestInterleavedSurvivesBurstsFunctionally(t *testing.T) {
	// End-to-end MBU story: interleaved SECDED words absorb random
	// bursts up to the interleave degree, every time.
	codec, err := ecc.NewInterleaved(ecc.KindSECDED, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	n := ecc.TotalBits(codec)
	for trial := 0; trial < 2000; trial++ {
		data := rng.Uint64() & ecc.DataMask(codec)
		cw := codec.Encode(data)
		burst := 1 + rng.Intn(4)
		got, res := codec.Decode(FlipBurst(cw, n, burst, rng))
		if got != data || res.Status == ecc.Detected {
			t.Fatalf("trial %d burst %d: (%#x, %v), want %#x", trial, burst, got, res.Status, data)
		}
	}
}
