package faults

import (
	"math"
	"testing"
)

func TestPoissonTailBasics(t *testing.T) {
	if got := PoissonTail(0, 0); got != 0 {
		t.Errorf("P(N>0 | mu=0) = %g, want 0", got)
	}
	// P(N > 0) = 1 - e^-mu.
	mu := 0.3
	if got, want := PoissonTail(mu, 0), 1-math.Exp(-mu); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(N>0) = %g, want %g", got, want)
	}
	// Small-mu asymptotics: P(N > 1) ≈ mu²/2.
	mu = 1e-4
	if got, want := PoissonTail(mu, 1), mu*mu/2; math.Abs(got-want)/want > 1e-3 {
		t.Errorf("P(N>1) = %g, want ≈ %g", got, want)
	}
	// Tail decreases with k and increases with mu.
	if PoissonTail(0.5, 2) >= PoissonTail(0.5, 1) {
		t.Error("tail must decrease with k")
	}
	if PoissonTail(0.2, 1) >= PoissonTail(0.6, 1) {
		t.Error("tail must increase with mu")
	}
}

func TestDUERateValidation(t *testing.T) {
	if _, err := DUERate([]WordClass{{Count: 1, Bits: 39, TolerableSoft: 1}}, -1, 60); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := DUERate([]WordClass{{Count: 1, Bits: 39, TolerableSoft: 1}}, 1e-12, 0); err == nil {
		t.Error("zero scrub interval accepted")
	}
	if _, err := DUERate([]WordClass{{Count: -1, Bits: 39, TolerableSoft: 1}}, 1e-12, 60); err == nil {
		t.Error("invalid class accepted")
	}
}

// scenarioBInventories builds the word populations of the ULE way for
// baseline B (10T+SECDED, fault-free words) and proposed B (8T+DECTED,
// a few words carrying one hard fault).
func scenarioBInventories(faultyWords int) (baseline, proposed []WordClass) {
	const words = 256 + 32 // data + tag words of the 1 KB way
	baseline = []WordClass{
		{Count: words, Bits: 39, TolerableSoft: 1}, // SECDED corrects 1
	}
	proposed = []WordClass{
		{Count: words - faultyWords, Bits: 45, TolerableSoft: 2}, // DECTED corrects 2
		{Count: faultyWords, Bits: 45, TolerableSoft: 1},         // one correction consumed
	}
	return baseline, proposed
}

func TestProposedScenarioBDoesNotRegressSoftErrorMTTF(t *testing.T) {
	// The paper's claim ("keeping the same ... reliability levels") on
	// the soft-error axis: with the expected handful of hard-faulty
	// words at the sized 8T Pf, the DECTED design's DUE rate must not
	// exceed the SECDED baseline's.
	const lambda = 1e-13 // soft errors per bit per second (SER-class)
	for _, scrub := range []float64{60, 3600, 86400} {
		for _, faulty := range []int{0, 2, 7, 20} {
			base, prop := scenarioBInventories(faulty)
			rb, err := DUERate(base, lambda, scrub)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := DUERate(prop, lambda, scrub)
			if err != nil {
				t.Fatal(err)
			}
			if rp > rb {
				t.Errorf("scrub=%gs faulty=%d: proposed DUE rate %.3g above baseline %.3g",
					scrub, faulty, rp, rb)
			}
		}
	}
}

func TestDUERateScalesWithScrubInterval(t *testing.T) {
	// Less frequent scrubbing → more accumulation → higher DUE rate.
	base, _ := scenarioBInventories(0)
	prev := 0.0
	for _, scrub := range []float64{60, 600, 6000, 60000} {
		r, err := DUERate(base, 1e-12, scrub)
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Errorf("scrub=%gs: DUE rate %.3g not above previous %.3g", scrub, r, prev)
		}
		prev = r
	}
}

func TestMTTFYears(t *testing.T) {
	if !math.IsInf(MTTFYears(0), 1) {
		t.Error("zero rate must give infinite MTTF")
	}
	// 1 event per year.
	perYear := 1.0 / (365.25 * 24 * 3600)
	if got := MTTFYears(perYear); math.Abs(got-1) > 1e-9 {
		t.Errorf("MTTF = %g years, want 1", got)
	}
}

func TestAllFaultyWordsEqualsSECDEDBehaviour(t *testing.T) {
	// Degenerate check: a DECTED way where EVERY word has one hard
	// fault behaves like SECDED on slightly longer words — strictly
	// worse than the 39-bit SECDED baseline.
	base, prop := scenarioBInventories(288)
	rb, _ := DUERate(base, 1e-12, 3600)
	rp, _ := DUERate(prop, 1e-12, 3600)
	if rp <= rb {
		t.Errorf("fully-faulty DECTED way (45-bit words, tol 1) should have higher DUE rate than 39-bit SECDED: %.3g vs %.3g", rp, rb)
	}
}
