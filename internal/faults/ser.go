package faults

import (
	"fmt"
	"math"
)

// Soft-error-rate (SER) analysis for the always-on ULE mode. Scenario B
// exists because the baseline must tolerate soft errors (its ways are
// SECDED-protected); the proposed design must not regress that
// protection even though its words may carry a hard fault that consumes
// part of the code's correction budget. This file quantifies the
// resulting detected-uncortable-error (DUE) rate: soft errors accumulate
// in a word between scrubs as a Poisson process, and a word fails when
// the accumulated upsets exceed what the code can correct on top of the
// word's hard faults.

// PoissonTail returns P(N > k) for N ~ Poisson(mu). The tail is summed
// directly from its leading term rather than as 1−CDF, which would lose
// everything below double-precision epsilon — the regime SER analysis
// lives in (per-interval failure probabilities of 1e-18 and below are
// routine and meaningful once multiplied across words and years).
func PoissonTail(mu float64, k int) float64 {
	if mu < 0 {
		panic(fmt.Sprintf("faults: negative Poisson mean %g", mu))
	}
	if mu == 0 {
		return 0
	}
	// term = e^-mu · mu^(k+1)/(k+1)!
	logTerm := -mu + float64(k+1)*math.Log(mu)
	for i := 2; i <= k+1; i++ {
		logTerm -= math.Log(float64(i))
	}
	term := math.Exp(logTerm)
	sum := 0.0
	for i := k + 1; ; i++ {
		sum += term
		next := term * mu / float64(i+1)
		if next < sum*1e-18 || next == 0 {
			break
		}
		term = next
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// WordClass describes a population of stored words with identical
// reliability behaviour.
type WordClass struct {
	Count int // words of this class in the cache
	Bits  int // codeword bits per word
	// TolerableSoft is the number of accumulated soft errors the word
	// survives between scrubs: code correction capability minus the
	// word's hard faults (e.g. DECTED clean word: 2; DECTED word with
	// one hard fault: 1; SECDED clean word: 1).
	TolerableSoft int
}

// Validate reports whether the class is usable.
func (w WordClass) Validate() error {
	if w.Count < 0 || w.Bits <= 0 || w.TolerableSoft < 0 {
		return fmt.Errorf("faults: invalid word class %+v", w)
	}
	return nil
}

// DUERate returns the detected-uncorrectable-error rate (events per
// second) of a word inventory under per-bit soft-error rate lambda
// (errors/bit/second) with periodic scrubbing every scrubSeconds:
// each word accumulates Poisson(bits·lambda·T) upsets per interval and
// fails the interval with probability P(N > tolerable).
func DUERate(classes []WordClass, lambda, scrubSeconds float64) (float64, error) {
	if lambda < 0 || scrubSeconds <= 0 {
		return 0, fmt.Errorf("faults: invalid SER parameters lambda=%g scrub=%g", lambda, scrubSeconds)
	}
	var rate float64
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return 0, err
		}
		mu := float64(c.Bits) * lambda * scrubSeconds
		pFail := PoissonTail(mu, c.TolerableSoft)
		rate += float64(c.Count) * pFail / scrubSeconds
	}
	return rate, nil
}

// MTTFYears converts a DUE rate into mean time to failure in years.
func MTTFYears(duePerSecond float64) float64 {
	if duePerSecond <= 0 {
		return math.Inf(1)
	}
	const secondsPerYear = 365.25 * 24 * 3600
	return 1 / duePerSecond / secondsPerYear
}
