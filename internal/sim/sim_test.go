package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// rngExperiment exercises per-task RNG determinism: each task draws
// from its seeded rng and reports the value.
func rngExperiment(n int) Def {
	return Def{
		ExpName: "rng",
		Desc:    "test experiment",
		GridFn: func() []Task {
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Params: P("i", fmt.Sprint(i))}
			}
			return tasks
		},
		RunFn: func(t Task, rng *rand.Rand) (Result, error) {
			return Result{Metrics: []Metric{Num("draw", rng.Float64())}}, nil
		},
	}
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	exp := rngExperiment(37)
	base, err := Runner{Workers: 1, Seed: 7}.Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, err := Runner{Workers: workers, Seed: 7}.Run(exp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
}

func TestRunnerSeedChangesResults(t *testing.T) {
	exp := rngExperiment(5)
	a, _ := Runner{Seed: 1}.Run(exp)
	b, _ := Runner{Seed: 2}.Run(exp)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different master seeds produced identical draws")
	}
}

func TestRunnerCollectsByIndexAndFillsTaskFields(t *testing.T) {
	res, err := Runner{Workers: 8, Seed: 3}.Run(rngExperiment(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("got %d results, want 12", len(res))
	}
	for i, r := range res {
		if r.Task.ID != i {
			t.Errorf("result %d has task ID %d", i, r.Task.ID)
		}
		if r.Task.Label != fmt.Sprintf("t%d", i) {
			t.Errorf("result %d out of order: label %q", i, r.Task.Label)
		}
		if r.Experiment != "rng" {
			t.Errorf("result %d missing experiment name", i)
		}
		if r.Task.Seed == 0 {
			t.Errorf("result %d has no derived seed", i)
		}
	}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	exp := Def{
		ExpName: "failing",
		GridFn: func() []Task {
			return []Task{{Label: "ok"}, {Label: "bad"}, {Label: "ok2"}}
		},
		RunFn: func(t Task, _ *rand.Rand) (Result, error) {
			if t.Label == "bad" {
				return Result{}, boom
			}
			return Result{}, nil
		},
	}
	_, err := Runner{Workers: 4}.Run(exp)
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the task error", err)
	}
	if !strings.Contains(fmt.Sprint(err), "failing [bad]") {
		t.Fatalf("error %v does not name the failing task", err)
	}
}

func TestRunnerFinishHook(t *testing.T) {
	exp := Def{
		ExpName: "finishing",
		GridFn:  func() []Task { return []Task{{Label: "a"}, {Label: "b"}} },
		RunFn: func(t Task, _ *rand.Rand) (Result, error) {
			return Result{Metrics: []Metric{Num("v", 2)}}, nil
		},
		FinishFn: func(results []Result) ([]Result, error) {
			sum := 0.0
			for _, r := range results {
				m, _ := r.Metric("v")
				sum += m.Value
			}
			return append(results, Result{Task: Task{Label: "sum"}, Metrics: []Metric{Num("v", sum)}}), nil
		},
	}
	res, err := Runner{}.Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 2 tasks + 1 summary", len(res))
	}
	m, _ := res[2].Metric("v")
	if m.Value != 4 {
		t.Fatalf("summary = %v, want 4", m.Value)
	}
	if res[2].Experiment != "finishing" {
		t.Fatalf("summary row missing experiment name: %q", res[2].Experiment)
	}
}

func TestMapOrderAndConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int32
	out, err := Map(4, 100, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent calls with 4 workers", peak.Load())
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(8, 50, func(i int) (int, error) {
		if i == 31 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom", err)
	}
}

func TestSubSeedStability(t *testing.T) {
	a := SubSeed(42, "exp", 3)
	if a != SubSeed(42, "exp", 3) {
		t.Fatal("SubSeed is not deterministic")
	}
	seen := map[int64]bool{a: true}
	for _, d := range []int64{SubSeed(43, "exp", 3), SubSeed(42, "other", 3), SubSeed(42, "exp", 4)} {
		if seen[d] {
			t.Fatalf("SubSeed collision: %d", d)
		}
		seen[d] = true
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Def{ExpName: "alpha"})
	r.MustRegister(Def{ExpName: "beta"})
	r.MustRegister(Def{ExpName: "beam"})
	if err := r.Register(Def{ExpName: "alpha"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta", "beam"}) {
		t.Fatalf("Names() = %v, not registration order", got)
	}

	names, err := r.Resolve("all")
	if err != nil || len(names) != 3 {
		t.Fatalf("Resolve(all) = %v, %v", names, err)
	}
	names, err = r.Resolve("alpha,beta")
	if err != nil || !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("Resolve list = %v, %v", names, err)
	}
	// Unique prefix resolves; ambiguous prefix and unknown name error.
	names, err = r.Resolve("al")
	if err != nil || !reflect.DeepEqual(names, []string{"alpha"}) {
		t.Fatalf("Resolve prefix = %v, %v", names, err)
	}
	if _, err := r.Resolve("be"); err == nil {
		t.Fatal("ambiguous prefix accepted")
	}
	if _, err := r.Resolve("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func testResults() []Result {
	return []Result{
		{
			Experiment: "demo",
			Task:       Task{ID: 0, Label: "p=1", Params: P("p", "1")},
			Metrics:    []Metric{Num("x", 1.5), Fmt("pct", 42.0, "%.1f%%"), NumU("e", 3.25, "pJ")},
		},
		{
			Experiment: "demo",
			Task:       Task{ID: 1, Label: "p=2", Params: P("p", "2")},
			Metrics:    []Metric{Num("x", 2.5), Fmt("pct", 43.0, "%.1f%%"), NumU("e", 4.25, "pJ")},
			Detail:     "detail block\n",
		},
	}
}

func TestTextSink(t *testing.T) {
	var b bytes.Buffer
	if err := (&TextSink{W: &b}).Write(testResults()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"========== demo ==========", "p=1", "42.0%", "pJ", "detail block"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// One table: the header row appears exactly once.
	if strings.Count(out, "task") != 1 {
		t.Errorf("expected a single merged table:\n%s", out)
	}
}

func TestJSONSinkRoundTrips(t *testing.T) {
	var b bytes.Buffer
	if err := (&JSONSink{W: &b}).Write(testResults()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "demo"`, `"label": "p=1"`, `"value": 1.5`, `"unit": "pJ"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("json output missing %q:\n%s", want, b.String())
		}
	}
}

func TestCSVSink(t *testing.T) {
	var b bytes.Buffer
	if err := (&CSVSink{W: &b}).Write(testResults()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+6 { // header + 3 metrics × 2 results
		t.Fatalf("got %d CSV lines, want 7:\n%s", len(lines), b.String())
	}
	if lines[0] != "experiment,task,params,metric,value,unit,text" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], "demo,p=1,p=1,x,1.5") {
		t.Fatalf("unexpected first CSV row %q", lines[1])
	}
}

func TestNewSinkUnknownFormat(t *testing.T) {
	if _, err := NewSink("xml", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
