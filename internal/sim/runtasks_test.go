package sim

// RunTasks is the sharded-sweep primitive: a subset of a grid run with
// global task identity. These tests pin the contract the service layer
// (internal/edcached) is built on — shard-by-shard execution assembles
// to exactly what a whole-grid run produces, and the Progress hook sees
// every completed point exactly once with the right cached flag.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func TestRunTasksShardsAssembleToWholeGrid(t *testing.T) {
	e := gridExperiment("sharded", 17)
	whole, err := Runner{Workers: 4, Seed: 9}.Run(e)
	if err != nil {
		t.Fatal(err)
	}

	// Three uneven shards, run in a scrambled order at different worker
	// counts, must deposit exactly the whole-grid results.
	shards := [][]int{{12, 13, 14, 15, 16}, {0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	byID := make(map[int]Result)
	for w, shard := range shards {
		res, err := Runner{Workers: w + 1, Seed: 9}.RunTasks(context.Background(), e, shard)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(shard) {
			t.Fatalf("shard %v: %d results", shard, len(res))
		}
		for pos, r := range res {
			if r.Task.ID != shard[pos] {
				t.Fatalf("shard %v: result %d has task ID %d", shard, pos, r.Task.ID)
			}
			byID[r.Task.ID] = r
		}
	}
	assembled := make([]Result, 0, len(whole))
	for i := 0; i < len(whole); i++ {
		assembled = append(assembled, byID[i])
	}
	if !reflect.DeepEqual(assembled, whole) {
		t.Fatal("sharded run differs from whole-grid run")
	}
}

func TestRunTasksRejectsOutOfRangeIDs(t *testing.T) {
	e := gridExperiment("bounds", 4)
	for _, ids := range [][]int{{4}, {-1}, {0, 99}} {
		if _, err := (Runner{}).RunTasks(context.Background(), e, ids); err == nil {
			t.Fatalf("ids %v accepted", ids)
		}
	}
}

func TestRunTasksErrorReturnsCompletedSubset(t *testing.T) {
	boom := errors.New("bad cell")
	e := Def{
		ExpName: "failing",
		GridFn:  gridExperiment("failing", 8).GridFn,
		RunFn: func(tk Task, rng *rand.Rand) (Result, error) {
			if tk.ID == 5 {
				return Result{}, boom
			}
			return Result{Metrics: []Metric{Num("v", float64(tk.ID))}}, nil
		},
	}
	res, err := Runner{Workers: 1}.RunTasks(context.Background(), e, []int{4, 5, 6})
	if !errors.Is(err, boom) {
		t.Fatalf("want task error, got %v", err)
	}
	if len(res) != 1 || res[0].Task.ID != 4 {
		t.Fatalf("partial shard results wrong: %+v", res)
	}
}

func TestProgressHookSeesEveryPointOnce(t *testing.T) {
	e := gridExperiment("progress", 10)
	type seen struct {
		id     int
		cached bool
	}
	collect := func(r Runner) []seen {
		var mu sync.Mutex
		var got []seen
		r.Progress = func(res Result, cached bool) {
			if res.Experiment != "progress" {
				t.Errorf("progress result not stamped: %+v", res)
			}
			mu.Lock()
			got = append(got, seen{res.Task.ID, cached})
			mu.Unlock()
		}
		if _, err := r.Run(e); err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].id < got[j].id })
		return got
	}

	cache := newStoreCache(t, true)
	cold := collect(Runner{Workers: 3, Cache: cache})
	if len(cold) != 10 {
		t.Fatalf("cold run: %d progress calls, want 10", len(cold))
	}
	for i, s := range cold {
		if s.id != i || s.cached {
			t.Fatalf("cold run point %d: %+v", i, s)
		}
	}
	warm := collect(Runner{Workers: 3, Cache: &StoreCache{Store: cache.Store, Scope: cache.Scope, Read: true}})
	for i, s := range warm {
		if s.id != i || !s.cached {
			t.Fatalf("warm run point %d not reported cached: %+v", i, s)
		}
	}
}

func TestFinishHelperMatchesRunContext(t *testing.T) {
	e := Def{
		ExpName: "summed",
		GridFn:  gridExperiment("summed", 6).GridFn,
		RunFn:   gridExperiment("summed", 6).RunFn,
		FinishFn: func(results []Result) ([]Result, error) {
			total := 0.0
			for _, r := range results {
				total += r.Metrics[0].Value
			}
			return append(results, Result{Task: Task{Label: "sum"}, Metrics: []Metric{Num("total", total)}}), nil
		},
	}
	whole, err := Runner{Workers: 2}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	perTask, err := Runner{Workers: 2}.RunTasks(context.Background(), e, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	finished, err := Finish(e, perTask)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(finished, whole) {
		t.Fatal("Finish over RunTasks results differs from RunContext")
	}
	if finished[len(finished)-1].Experiment != "summed" {
		t.Fatal("Finish did not stamp the summary row")
	}
}

func TestFinishHelperWrapsErrors(t *testing.T) {
	e := Def{
		ExpName:  "finfail",
		GridFn:   gridExperiment("finfail", 2).GridFn,
		RunFn:    gridExperiment("finfail", 2).RunFn,
		FinishFn: func([]Result) ([]Result, error) { return nil, fmt.Errorf("no aggregate") },
	}
	if _, err := Finish(e, nil); err == nil || err.Error() != "finfail: finish: no aggregate" {
		t.Fatalf("finish error not wrapped: %v", err)
	}
}
