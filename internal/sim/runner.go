package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Runner executes an experiment's parameter grid on a worker pool.
//
// Tasks are handed to workers through a channel, but each worker writes
// its result into the slot indexed by the task ID, so the collected
// slice — and everything derived from it (Finish summaries, sink
// output) — is identical for any worker count.
//
// The Runner is fault-tolerant by construction: a panicking grid point
// becomes an error naming the point (the pool survives), errors marked
// Transient are retried with deterministic seeded backoff, a cancelled
// context drains the pool without leaking goroutines, and a configured
// Cache checkpoints every completed task so an interrupted sweep
// resumes with hits. None of this changes the determinism contract:
// byte-identical output for any worker count, with or without a warm
// cache.
type Runner struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the master seed every per-task RNG derives from. Zero is
	// a valid (and the default) fixed seed.
	Seed int64

	// Retries is how many times a task whose error is marked Transient
	// is re-attempted (with a fresh identically-seeded RNG, so a retry
	// that succeeds is byte-identical to a first try that did) before
	// the failure is final. Zero disables retries.
	Retries int
	// RetryBase is the base backoff delay before retry k:
	// RetryBase·2^k scaled by deterministic jitter in [0.5, 1.5).
	// ≤ 0 means 50ms.
	RetryBase time.Duration

	// Cache, when non-nil, is consulted before each task runs and
	// written after it completes — the durable-resume hook (see
	// StoreCache). Cache hits bypass Run entirely.
	Cache ResultCache

	// Progress, when non-nil, is invoked once for every task that
	// completes successfully — computed or served from Cache — with the
	// fully stamped result. It is called from worker goroutines, so it
	// must be safe for concurrent use, and it is the service layer's
	// per-grid-point event hook: failures and retries are not reported
	// here, they surface through the run's returned error.
	Progress func(r Result, cached bool)
}

// workers returns the effective pool size for n tasks.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every task of the experiment's grid and returns the
// results in grid order, then applies the experiment's Finish hook if
// it has one. The first task error (by grid index among the tasks that
// ran) aborts the run. Equivalent to RunContext with a background
// context.
func (r Runner) Run(e Experiment) ([]Result, error) {
	return r.RunContext(context.Background(), e)
}

// RunContext is Run under a context. Cancellation stops new tasks from
// being dispatched, lets in-flight tasks finish (and checkpoint), and
// drains every worker before returning — no goroutine outlives the
// call. On any failure — a task error, a recovered panic, or
// cancellation — RunContext returns the results that DID complete, in
// grid order, alongside the error, so drivers can flush partial output
// instead of abandoning it; the Finish hook only runs on complete,
// error-free grids, where its aggregates are meaningful.
//
// The first failing task cancels dispatch, and the reported error is
// the lowest-grid-index failure among the tasks that ran, wrapped to
// name the experiment and grid point.
func (r Runner) RunContext(ctx context.Context, e Experiment) ([]Result, error) {
	tasks := e.Grid()
	ids := make([]int, len(tasks))
	for i := range ids {
		ids[i] = i
	}
	results, err := r.runTasks(ctx, e, tasks, ids)
	if err != nil {
		return results, err
	}
	return Finish(e, results)
}

// RunTasks runs the subset of the experiment's grid named by ids (grid
// indices) and returns their results in ids order. Every task keeps its
// global grid identity — the same ID, the same derived seed — so a grid
// computed shard by shard, by any number of processes in any order, is
// byte-identical to one computed whole: the sharded-sweep primitive of
// the service layer. The Finish hook is NOT applied (it needs the whole
// grid); assemble the full result set and call Finish explicitly.
//
// Error semantics match RunContext: on failure the completed results
// (in ids order) come back alongside the error.
func (r Runner) RunTasks(ctx context.Context, e Experiment, ids []int) ([]Result, error) {
	tasks := e.Grid()
	for _, id := range ids {
		if id < 0 || id >= len(tasks) {
			return nil, fmt.Errorf("sim: %s: task id %d outside grid [0, %d)", e.Name(), id, len(tasks))
		}
	}
	return r.runTasks(ctx, e, tasks, ids)
}

// runTasks is the pooled execution core shared by RunContext (all ids)
// and RunTasks (a shard): positions index ids, task identity comes from
// the grid.
func (r Runner) runTasks(ctx context.Context, e Experiment, tasks []Task, ids []int) ([]Result, error) {
	n := len(ids)
	results := make([]Result, n)
	done := make([]bool, n)
	errs := make([]error, n)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	runOne := func(pos int) {
		i := ids[pos]
		t := tasks[i]
		t.ID = i
		t.Seed = SubSeed(r.Seed, e.Name(), i)
		if r.Cache != nil {
			if res, ok := r.Cache.Get(e.Name(), t); ok {
				// Re-stamp the live coordinates: the digest guarantees
				// they match, and stamping makes that impossible to
				// get wrong even for a hand-rolled cache.
				res.Experiment = e.Name()
				res.Task = t
				results[pos], done[pos] = res, true
				if r.Progress != nil {
					r.Progress(res, true)
				}
				return
			}
		}
		res, err := r.attempt(runCtx, e, t)
		if err != nil {
			errs[pos] = err
			cancel() // first failure stops dispatching new tasks
			return
		}
		res.Experiment = e.Name()
		res.Task = t
		results[pos], done[pos] = res, true
		if r.Cache != nil {
			r.Cache.Put(e.Name(), t, res)
		}
		if r.Progress != nil {
			r.Progress(res, false)
		}
	}

	if workers := r.workers(n); workers == 1 {
		for pos := 0; pos < n && runCtx.Err() == nil; pos++ {
			runOne(pos)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pos := range jobs {
					runOne(pos)
				}
			}()
		}
	feed:
		for pos := 0; pos < n; pos++ {
			select {
			case jobs <- pos:
			case <-runCtx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}

	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		partial := results[:0:0]
		for pos, ok := range done {
			if ok {
				partial = append(partial, results[pos])
			}
		}
		return partial, firstErr
	}
	return results, nil
}

// Finish applies the experiment's Finisher hook — summary rows derived
// from the complete, grid-ordered result set — stamping any rows the
// hook added with the experiment name. Experiments without a Finisher
// pass through unchanged. Callers that assemble a grid from shards
// (RunTasks) use this to get the exact result set RunContext would have
// produced.
func Finish(e Experiment, results []Result) ([]Result, error) {
	f, ok := e.(Finisher)
	if !ok {
		return results, nil
	}
	results, err := f.Finish(results)
	if err != nil {
		return nil, fmt.Errorf("%s: finish: %w", e.Name(), err)
	}
	for i := range results {
		if results[i].Experiment == "" {
			results[i].Experiment = e.Name()
		}
	}
	return results, nil
}

// attempt runs one task through the panic shield and the transient-
// retry loop. Every attempt gets a fresh RNG from the same task seed,
// so a task that succeeds on retry k is byte-identical to one that
// succeeded immediately — retries are invisible to the determinism
// contract. The backoff schedule itself is seeded from (master seed,
// experiment, task), never from the wall clock.
func (r Runner) attempt(ctx context.Context, e Experiment, t Task) (Result, error) {
	base := r.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	var jr *rand.Rand
	for attempt := 0; ; attempt++ {
		res, err := runShielded(e, t, rand.New(rand.NewSource(t.Seed)))
		if err == nil {
			return res, nil
		}
		wrapped := fmt.Errorf("%s [%s]: %w", e.Name(), t.Label, err)
		if attempt >= r.Retries || !IsTransient(err) {
			return Result{}, wrapped
		}
		if jr == nil {
			jr = rand.New(rand.NewSource(SubSeed(r.Seed, e.Name()+"/retry", t.ID)))
		}
		if !sleepCtx(ctx, backoff(base, attempt, jr)) {
			return Result{}, wrapped // cancelled mid-backoff: fail with the last error
		}
	}
}

// RunAll runs the named experiments from the registry in order and
// returns the concatenated results. Equivalent to RunAllContext with a
// background context.
func (r Runner) RunAll(reg *Registry, names []string) ([]Result, error) {
	return r.RunAllContext(context.Background(), reg, names)
}

// RunAllContext is RunAll under a context. On failure it returns every
// result completed so far — full experiments plus the failing one's
// completed prefix — alongside the error, so a driver can flush what a
// long sweep did manage to compute (and, with a Cache, has already
// checkpointed) before exiting non-zero.
func (r Runner) RunAllContext(ctx context.Context, reg *Registry, names []string) ([]Result, error) {
	var out []Result
	for _, name := range names {
		e, ok := reg.Get(name)
		if !ok {
			return out, fmt.Errorf("sim: unknown experiment %q", name)
		}
		res, err := r.RunContext(ctx, e)
		out = append(out, res...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Map fans fn out over indices [0, n) across a pool of `workers`
// goroutines and returns the outputs in index order. The first error by
// index wins; remaining indices may or may not have been evaluated.
// It is the engine's primitive for embarrassingly parallel inner loops
// (workload fan-out, Monte-Carlo trial shards).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubSeed derives a deterministic per-task seed from a master seed, a
// stream name and an index, using an FNV-mixed splitmix64 finalizer.
// Distinct (name, index) pairs get statistically independent seeds, and
// the derivation depends on nothing scheduling-related — the foundation
// of the engine's any-worker-count determinism.
func SubSeed(master int64, name string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := uint64(master) ^ h.Sum64()
	x += (uint64(index) + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
