package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
)

// Runner executes an experiment's parameter grid on a worker pool.
//
// Tasks are handed to workers through a channel, but each worker writes
// its result into the slot indexed by the task ID, so the collected
// slice — and everything derived from it (Finish summaries, sink
// output) — is identical for any worker count.
type Runner struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the master seed every per-task RNG derives from. Zero is
	// a valid (and the default) fixed seed.
	Seed int64
}

// workers returns the effective pool size for n tasks.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every task of the experiment's grid and returns the
// results in grid order, then applies the experiment's Finish hook if
// it has one. The first task error (by grid index) aborts the run.
func (r Runner) Run(e Experiment) ([]Result, error) {
	tasks := e.Grid()
	results, err := Map(r.workers(len(tasks)), len(tasks), func(i int) (Result, error) {
		t := tasks[i]
		t.ID = i
		t.Seed = SubSeed(r.Seed, e.Name(), i)
		res, err := e.Run(t, rand.New(rand.NewSource(t.Seed)))
		if err != nil {
			return Result{}, fmt.Errorf("%s [%s]: %w", e.Name(), t.Label, err)
		}
		res.Experiment = e.Name()
		res.Task = t
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	if f, ok := e.(Finisher); ok {
		results, err = f.Finish(results)
		if err != nil {
			return nil, fmt.Errorf("%s: finish: %w", e.Name(), err)
		}
		for i := range results {
			if results[i].Experiment == "" {
				results[i].Experiment = e.Name()
			}
		}
	}
	return results, nil
}

// RunAll runs the named experiments from the registry in order and
// returns the concatenated results.
func (r Runner) RunAll(reg *Registry, names []string) ([]Result, error) {
	var out []Result
	for _, name := range names {
		e, ok := reg.Get(name)
		if !ok {
			return nil, fmt.Errorf("sim: unknown experiment %q", name)
		}
		res, err := r.Run(e)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// Map fans fn out over indices [0, n) across a pool of `workers`
// goroutines and returns the outputs in index order. The first error by
// index wins; remaining indices may or may not have been evaluated.
// It is the engine's primitive for embarrassingly parallel inner loops
// (workload fan-out, Monte-Carlo trial shards).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubSeed derives a deterministic per-task seed from a master seed, a
// stream name and an index, using an FNV-mixed splitmix64 finalizer.
// Distinct (name, index) pairs get statistically independent seeds, and
// the derivation depends on nothing scheduling-related — the foundation
// of the engine's any-worker-count determinism.
func SubSeed(master int64, name string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := uint64(master) ^ h.Sum64()
	x += (uint64(index) + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
