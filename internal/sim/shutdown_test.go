package sim

// Runner shutdown-path coverage: cancellation and first-error shutdowns
// must drain the worker pool without leaking goroutines (checked by
// goroutine count, run under -race in CI), a panicking Experiment must
// surface as an error naming the grid point, and transient retries must
// be deterministic and invisible in the results.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// sleepyExperiment is an n-task grid whose tasks sleep briefly; run
// hooks let tests inject failures per task index.
func sleepyExperiment(name string, n int, d time.Duration, hook func(t Task) error) Def {
	return Def{
		ExpName: name,
		GridFn: func() []Task {
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = Task{Label: fmt.Sprintf("point-%02d", i), Params: P("i", fmt.Sprint(i))}
			}
			return tasks
		},
		RunFn: func(t Task, rng *rand.Rand) (Result, error) {
			time.Sleep(d)
			if hook != nil {
				if err := hook(t); err != nil {
					return Result{}, err
				}
			}
			return Result{Metrics: []Metric{Num("v", float64(rng.Int63()%1000))}}, nil
		},
	}
}

// assertNoLeakedGoroutines polls until the goroutine count settles back
// to the baseline (small tolerance for runtime housekeeping).
func assertNoLeakedGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunContextCancellationDrainsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	r := Runner{Workers: 8}
	results, err := r.RunContext(ctx, sleepyExperiment("cancelme", 400, 2*time.Millisecond, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(results) == 0 || len(results) >= 400 {
		t.Fatalf("expected a partial result set, got %d of 400", len(results))
	}
	// Partial results arrive in grid order with their coordinates set.
	last := -1
	for _, res := range results {
		if res.Experiment != "cancelme" {
			t.Fatalf("partial result missing experiment: %+v", res)
		}
		if res.Task.ID <= last {
			t.Fatalf("partial results out of grid order: %d after %d", res.Task.ID, last)
		}
		last = res.Task.ID
	}
	cancel()
	assertNoLeakedGoroutines(t, baseline)
}

func TestRunContextFirstErrorStopsDispatchCleanly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	boom := errors.New("grid point exploded")
	var ran sync.Map
	e := sleepyExperiment("failfast", 64, time.Millisecond, func(tk Task) error {
		ran.Store(tk.ID, true)
		if tk.ID == 5 {
			return boom
		}
		return nil
	})
	r := Runner{Workers: 4}
	results, err := r.RunContext(context.Background(), e)
	if !errors.Is(err, boom) {
		t.Fatalf("want the task error, got %v", err)
	}
	if want := `failfast [point-05]`; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the grid point %q", err, want)
	}
	executed := 0
	ran.Range(func(_, _ any) bool { executed++; return true })
	if executed >= 64 {
		t.Fatal("first error did not stop dispatch: every task ran")
	}
	for _, res := range results {
		if res.Task.ID == 5 {
			t.Fatal("failed task present in partial results")
		}
	}
	assertNoLeakedGoroutines(t, baseline)
}

func TestRunContextPanicNamesGridPoint(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := sleepyExperiment("panicky", 16, 0, func(tk Task) error {
		if tk.ID == 3 {
			panic("simulated bug in a grid point")
		}
		return nil
	})
	for _, workers := range []int{1, 4} {
		_, err := Runner{Workers: workers}.RunContext(context.Background(), e)
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as an error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a PanicError", workers, err)
		}
		if pe.Value != "simulated bug in a grid point" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic payload lost: %+v", workers, pe)
		}
		for _, want := range []string{"panicky", "[point-03]", "panic:"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("workers=%d: error %q missing %q", workers, err, want)
			}
		}
	}
	assertNoLeakedGoroutines(t, baseline)
}

func TestTransientRetriesSucceedDeterministically(t *testing.T) {
	flaky := func() Def {
		var mu sync.Mutex
		attempts := map[int]int{}
		return sleepyExperiment("flaky", 8, 0, func(tk Task) error {
			mu.Lock()
			defer mu.Unlock()
			attempts[tk.ID]++
			if tk.ID%3 == 0 && attempts[tk.ID] <= 2 {
				return Transient(fmt.Errorf("simulated I/O hiccup %d", attempts[tk.ID]))
			}
			return nil
		})
	}
	r := Runner{Workers: 4, Retries: 3, RetryBase: time.Microsecond}
	got, err := r.Run(flaky())
	if err != nil {
		t.Fatalf("retries did not heal the flake: %v", err)
	}
	want, err := Runner{Workers: 4}.Run(sleepyExperiment("flaky", 8, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Metrics[0].Value != want[i].Metrics[0].Value {
			t.Fatalf("task %d: retried run diverged (%v vs %v) — retry must reuse the task seed",
				i, got[i].Metrics[0].Value, want[i].Metrics[0].Value)
		}
	}
}

func TestRetriesExhaustAndNonTransientFailsFast(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	count := func(k string) {
		mu.Lock()
		counts[k]++
		mu.Unlock()
	}

	hopeless := sleepyExperiment("hopeless", 1, 0, func(tk Task) error {
		count("hopeless")
		return Transient(errors.New("never heals"))
	})
	r := Runner{Workers: 1, Retries: 2, RetryBase: time.Microsecond}
	if _, err := r.Run(hopeless); err == nil || !strings.Contains(err.Error(), "never heals") {
		t.Fatalf("want the transient error after exhaustion, got %v", err)
	}
	if counts["hopeless"] != 3 { // initial try + 2 retries
		t.Fatalf("transient task ran %d times, want 3", counts["hopeless"])
	}

	fatal := sleepyExperiment("fatal", 1, 0, func(tk Task) error {
		count("fatal")
		return errors.New("deterministic failure")
	})
	if _, err := r.Run(fatal); err == nil {
		t.Fatal("fatal error vanished")
	}
	if counts["fatal"] != 1 {
		t.Fatalf("non-transient task retried: ran %d times", counts["fatal"])
	}
}

func TestBackoffScheduleIsDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		jr := rand.New(rand.NewSource(SubSeed(7, "exp/retry", 3)))
		out := make([]time.Duration, 5)
		for k := range out {
			out[k] = backoff(50*time.Millisecond, k, jr)
		}
		return out
	}
	a, b := schedule(), schedule()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("backoff attempt %d differs across runs: %v vs %v", k, a[k], b[k])
		}
		lo := 50 * time.Millisecond / 2 << uint(k)
		hi := 3 * 50 * time.Millisecond / 2 << uint(k)
		if a[k] < lo || a[k] >= hi {
			t.Fatalf("backoff attempt %d = %v outside [%v, %v)", k, a[k], lo, hi)
		}
	}
}
