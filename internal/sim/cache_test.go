package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"edcache/internal/store"
	"edcache/internal/store/errfs"
)

// gridExperiment is a deterministic 2-metric grid for cache tests.
func gridExperiment(name string, n int) Def {
	return Def{
		ExpName: name,
		GridFn: func() []Task {
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = Task{Label: fmt.Sprintf("cell-%02d", i), Params: P("i", fmt.Sprint(i))}
			}
			return tasks
		},
		RunFn: func(t Task, rng *rand.Rand) (Result, error) {
			return Result{
				Metrics: []Metric{
					Num("draw", float64(rng.Int63())),
					Fmt("pct", float64(t.ID)*1.5, "%.1f%%"),
				},
				Detail: "detail for " + t.Label,
			}, nil
		},
	}
}

func TestEncodeDecodeResultRoundTrip(t *testing.T) {
	r := Result{
		Experiment: "exp",
		Task:       Task{ID: 3, Label: "cell", Params: P("k", "v"), Seed: 99},
		Metrics: []Metric{
			Num("plain", 0.1+0.2), // a value with no short decimal form
			FmtU("fancy", 12.5, "pJ/i", "%.2f"),
			Str("note", "text only"),
		},
		Detail: "free-form\nblock",
	}
	b, ok := EncodeResult(r)
	if !ok {
		t.Fatal("plain result not encodable")
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	// Seed carries json:"-" and is restamped from the live grid on hit,
	// so it is the one field allowed to differ.
	r.Task.Seed = 0
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip changed result:\n got %+v\nwant %+v", got, r)
	}
}

func TestEncodeResultRefusesLossyResults(t *testing.T) {
	if _, ok := EncodeResult(Result{Metrics: []Metric{Num("nan", math.NaN())}}); ok {
		t.Fatal("NaN metric encoded; it cannot round-trip through JSON")
	}
	if _, ok := EncodeResult(Result{Metrics: []Metric{Num("inf", math.Inf(1))}}); ok {
		t.Fatal("Inf metric encoded")
	}
	type unregistered struct{ X int }
	if _, ok := EncodeResult(Result{Data: unregistered{1}}); ok {
		t.Fatal("unregistered Data payload encoded; Finish hooks would lose it on resume")
	}
}

type testPayload struct {
	Name  string
	Score float64
}

func TestRegisteredPayloadRoundTrips(t *testing.T) {
	RegisterPayload[testPayload]("sim.testPayload")
	RegisterPayload[testPayload]("sim.testPayload") // idempotent
	r := Result{Metrics: []Metric{Num("m", 1)}, Data: testPayload{Name: "p", Score: 2.5}}
	b, ok := EncodeResult(r)
	if !ok {
		t.Fatal("registered payload not encodable")
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	p, isTyped := got.Data.(testPayload)
	if !isTyped || p != (testPayload{Name: "p", Score: 2.5}) {
		t.Fatalf("payload lost its type: %#v", got.Data)
	}
}

func newStoreCache(t *testing.T, read bool) *StoreCache {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return &StoreCache{Store: st, Scope: []string{"mod@test", "opts", "seed=0"}, Read: read}
}

func TestStoreCacheWarmRunIsByteIdentical(t *testing.T) {
	e := gridExperiment("cached", 12)
	cold, err := Runner{Workers: 3}.Run(e)
	if err != nil {
		t.Fatal(err)
	}

	cache := newStoreCache(t, true)
	first, err := Runner{Workers: 3, Cache: cache}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, cold) {
		t.Fatal("store-backed run differs from plain run")
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("fresh store produced hits: %+v", st)
	}

	// Second run over the same store: all hits, identical bytes, for
	// every worker count.
	for _, workers := range []int{1, 4} {
		warmCache := &StoreCache{Store: cache.Store, Scope: cache.Scope, Read: true}
		warm, err := Runner{Workers: workers, Cache: warmCache}.Run(e)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("workers=%d: warm run differs from cold run", workers)
		}
		if st := warmCache.Stats(); st.Hits != 12 || st.Misses != 0 {
			t.Fatalf("workers=%d: warm run stats %+v, want 12 hits", workers, st)
		}
	}
}

func TestStoreCacheReadGateOff(t *testing.T) {
	cache := newStoreCache(t, false)
	e := gridExperiment("writeonly", 4)
	if _, err := (Runner{Workers: 2, Cache: cache}).Run(e); err != nil {
		t.Fatal(err)
	}
	// Entries were written...
	reader := &StoreCache{Store: cache.Store, Scope: cache.Scope, Read: true}
	if _, err := (Runner{Workers: 2, Cache: reader}).Run(e); err != nil {
		t.Fatal(err)
	}
	if st := reader.Stats(); st.Hits != 4 {
		t.Fatalf("write-only run did not checkpoint: %+v", st)
	}
	// ...but the write-only cache itself never served one.
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("read-gated cache did lookups: %+v", st)
	}
}

func TestStoreCacheScopeIsolatesRuns(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := gridExperiment("scoped", 4)
	a := &StoreCache{Store: st, Scope: []string{"mod@v1", "opts", "seed=0"}, Read: true}
	if _, err := (Runner{Workers: 2, Cache: a}).Run(e); err != nil {
		t.Fatal(err)
	}
	// Different options scope: same store, zero hits.
	b := &StoreCache{Store: st, Scope: []string{"mod@v1", "opts'", "seed=0"}, Read: true}
	if _, err := (Runner{Workers: 2, Cache: b}).Run(e); err != nil {
		t.Fatal(err)
	}
	if stats := b.Stats(); stats.Hits != 0 || stats.Misses != 4 {
		t.Fatalf("scope change leaked hits: %+v", stats)
	}
}

// TestInterruptedSweepResumesByteIdentical is the engine-level resume
// contract: cancel a checkpointing sweep partway, then rerun it over
// the same store — the resumed run must serve the checkpointed prefix
// as hits and produce results byte-identical to an uninterrupted run,
// at a different worker count.
func TestInterruptedSweepResumesByteIdentical(t *testing.T) {
	slow := Def{
		ExpName: "resume",
		GridFn:  gridExperiment("resume", 24).GridFn,
		RunFn: func(tk Task, rng *rand.Rand) (Result, error) {
			time.Sleep(2 * time.Millisecond)
			return gridExperiment("resume", 24).RunFn(tk, rng)
		},
	}
	want, err := Runner{Workers: 2}.Run(slow)
	if err != nil {
		t.Fatal(err)
	}

	cache := newStoreCache(t, true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	partial, err := Runner{Workers: 2, Cache: cache}.RunContext(ctx, slow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	if len(partial) == 0 || len(partial) >= 24 {
		t.Fatalf("want a partial sweep, got %d of 24 results", len(partial))
	}

	resumed := &StoreCache{Store: cache.Store, Scope: cache.Scope, Read: true}
	got, err := Runner{Workers: 7, Cache: resumed}.Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}
	if st := resumed.Stats(); st.Hits == 0 {
		t.Fatalf("resume recomputed everything: %+v", st)
	}
}

// TestStoreCachePutENOSPCDoesNotFailSweep pins the best-effort Put
// contract under a full disk: every checkpoint write fails with ENOSPC
// (injected at the write syscall via errfs beneath a real store), yet
// the sweep completes with results identical to an uncached run — a
// dying store degrades checkpointing, never correctness.
func TestStoreCachePutENOSPCDoesNotFailSweep(t *testing.T) {
	e := gridExperiment("enospc", 8)
	want, err := Runner{Workers: 2}.Run(e)
	if err != nil {
		t.Fatal(err)
	}

	fs := errfs.New(store.OSFS{}, func(_ int, s errfs.Step) *errfs.Fault {
		if s.Op == errfs.OpWrite || s.Op == errfs.OpSync {
			return &errfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	st, err := store.OpenFS(fs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := &StoreCache{Store: st, Scope: []string{"mod@test", "opts", "seed=0"}, Read: true}
	got, err := Runner{Workers: 2, Cache: cache}.Run(e)
	if err != nil {
		t.Fatalf("ENOSPC checkpoints failed the sweep: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep under ENOSPC differs from plain run")
	}
	if stats := cache.Stats(); stats.PutErrors != 8 || stats.Hits != 0 {
		t.Fatalf("want 8 failed checkpoints and 0 hits, got %+v", stats)
	}
}

// TestStoreCachePutReadOnlyDirDoesNotFailSweep is the same contract
// against a genuinely unwritable store directory (chmod a-w): every Put
// fails at MkdirAll/Create, the sweep is unaffected.
func TestStoreCachePutReadOnlyDirDoesNotFailSweep(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	// Root (and some container filesystems) ignore permission bits;
	// probe, and skip when the directory is not actually read-only.
	if probe := filepath.Join(dir, "probe"); os.Mkdir(probe, 0o755) == nil {
		os.Remove(probe)
		t.Skip("permission bits not enforced here (running as root?)")
	}

	e := gridExperiment("readonly", 6)
	want, err := Runner{Workers: 2}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir) // MkdirAll on an existing dir succeeds read-only
	if err != nil {
		t.Fatal(err)
	}
	cache := &StoreCache{Store: st, Scope: []string{"mod@test", "opts", "seed=0"}, Read: true}
	got, err := Runner{Workers: 3, Cache: cache}.Run(e)
	if err != nil {
		t.Fatalf("read-only store failed the sweep: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep over a read-only store differs from plain run")
	}
	if stats := cache.Stats(); stats.PutErrors != 6 {
		t.Fatalf("want 6 failed checkpoints, got %+v", stats)
	}
}
