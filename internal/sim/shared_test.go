package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSharedBuildsOncePerKey(t *testing.T) {
	var builds atomic.Int32
	s := NewShared(func(k int) (string, error) {
		builds.Add(1)
		return fmt.Sprint(k * 10), nil
	})
	const goroutines, keys = 32, 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g % keys
			v, err := s.Get(k)
			if err != nil {
				errs[g] = err
				return
			}
			if want := fmt.Sprint(k * 10); v != want {
				errs[g] = fmt.Errorf("Get(%d) = %q, want %q", k, v, want)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := builds.Load(); n != keys {
		t.Fatalf("build ran %d times for %d keys", n, keys)
	}
}

func TestSharedCachesErrors(t *testing.T) {
	boom := errors.New("boom")
	var builds int
	s := NewShared(func(k string) (int, error) {
		builds++
		return 0, boom
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Get("k"); !errors.Is(err, boom) {
			t.Fatalf("Get returned %v, want the build error", err)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build retried %d times; outcomes must be cached", builds)
	}
}

// TestSharedDistinctKeysBuildConcurrently proves one key's build does
// not serialize another's: two builds block until both have started.
func TestSharedDistinctKeysBuildConcurrently(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s := NewShared(func(k int) (int, error) {
		started <- struct{}{}
		<-release
		return k, nil
	})
	done := make(chan struct{}, 2)
	for k := 0; k < 2; k++ {
		go func(k int) {
			s.Get(k)
			done <- struct{}{}
		}(k)
	}
	<-started
	<-started // both builds in flight at once — no cross-key serialization
	close(release)
	<-done
	<-done
}
