package sim

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"

	"edcache/internal/store"
)

// ResultCache is the Runner's checkpoint surface: consulted before a
// task runs, written after it completes. A cache hit replaces the task
// execution byte-exactly, which is what lets an interrupted sweep
// resume instead of recomputing. Implementations must be safe for
// concurrent use; Put is best-effort (a failed checkpoint must not fail
// the sweep, so Put reports nothing).
type ResultCache interface {
	Get(experiment string, t Task) (Result, bool)
	Put(experiment string, t Task, r Result)
}

// ---- typed payload registry ----
//
// Result.Data is an opaque `any` the sinks ignore but Finish hooks
// consume (e.g. core.Pair under the corpus averages). Checkpointing a
// result must preserve it, so payload types register a named JSON codec
// here; a result whose Data type is unregistered is simply never
// checkpointed — recomputing is always correct, silently dropping the
// payload (and with it the Finish aggregation) never is.

// payloadCodec decodes one registered payload type.
type payloadCodec func(raw json.RawMessage) (any, error)

var (
	payloadMu     sync.RWMutex
	payloadByName = map[string]payloadCodec{}
	payloadByType = map[reflect.Type]string{}
)

// RegisterPayload registers T as a checkpointable Result.Data payload
// under a stable name (part of the on-disk envelope — renaming orphans
// old checkpoints into recomputation, which is safe but wasteful).
// Registering the same (name, T) again is a no-op; reusing a name for a
// different type panics.
func RegisterPayload[T any](name string) {
	var zero T
	typ := reflect.TypeOf(zero)
	if typ == nil {
		panic("sim: RegisterPayload needs a concrete type")
	}
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if prev, ok := payloadByType[typ]; ok && prev != name {
		panic(fmt.Sprintf("sim: payload type %v already registered as %q", typ, prev))
	}
	if _, ok := payloadByName[name]; ok {
		if payloadByType[typ] != name {
			panic(fmt.Sprintf("sim: payload name %q already registered to another type", name))
		}
		return
	}
	payloadByName[name] = func(raw json.RawMessage) (any, error) {
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	payloadByType[typ] = name
}

// payloadName resolves a concrete Data value's registered name.
func payloadName(v any) (string, bool) {
	payloadMu.RLock()
	defer payloadMu.RUnlock()
	name, ok := payloadByType[reflect.TypeOf(v)]
	return name, ok
}

// payloadDecoder resolves a registered name's decoder.
func payloadDecoder(name string) (payloadCodec, bool) {
	payloadMu.RLock()
	defer payloadMu.RUnlock()
	c, ok := payloadByName[name]
	return c, ok
}

// storedResult is the JSON envelope a checkpointed result travels in.
// Result.Data carries `json:"-"`, so the payload rides separately as
// (type name, raw JSON) and is re-typed on decode.
type storedResult struct {
	Result   Result          `json:"result"`
	DataType string          `json:"dataType,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// EncodeResult serializes a result for checkpointing. ok is false when
// the result cannot round-trip losslessly — an unregistered Data
// payload, or metric values JSON cannot carry (NaN, ±Inf) — in which
// case the result must be recomputed on resume rather than stored
// lossily. Finite float64 metrics round-trip exactly: encoding/json
// emits the shortest representation that parses back to the same bits.
func EncodeResult(r Result) ([]byte, bool) {
	env := storedResult{Result: r}
	if r.Data != nil {
		name, ok := payloadName(r.Data)
		if !ok {
			return nil, false
		}
		raw, err := json.Marshal(r.Data)
		if err != nil {
			return nil, false
		}
		env.DataType, env.Data = name, raw
	}
	b, err := json.Marshal(env)
	if err != nil {
		return nil, false
	}
	return b, true
}

// DecodeResult parses a checkpointed result, re-typing its Data payload
// through the registry.
func DecodeResult(b []byte) (Result, error) {
	var env storedResult
	if err := json.Unmarshal(b, &env); err != nil {
		return Result{}, fmt.Errorf("sim: decode result: %w", err)
	}
	r := env.Result
	if env.DataType != "" {
		dec, ok := payloadDecoder(env.DataType)
		if !ok {
			return Result{}, fmt.Errorf("sim: decode result: unregistered payload type %q", env.DataType)
		}
		v, err := dec(env.Data)
		if err != nil {
			return Result{}, fmt.Errorf("sim: decode result payload %q: %w", env.DataType, err)
		}
		r.Data = v
	}
	return r, nil
}

// StoreCache adapts a content-addressed store.Store into a ResultCache:
// the durable checkpoint layer behind `experiments -store`. Each task's
// digest covers the Scope (module version, canonicalized options,
// master seed — everything beyond the grid coordinates that could
// change result bytes) plus the experiment name and the task's
// coordinates, so a stale store can only ever miss, never serve a
// result computed under different conditions.
type StoreCache struct {
	// Store is the backing entry store.
	Store *store.Store
	// Scope is the run-identity digest prefix; see above.
	Scope []string
	// Read gates serving hits (the -resume switch). Checkpoints are
	// always written; reads are opt-in so a default run recomputes
	// everything and merely refreshes the store.
	Read bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	skipped   atomic.Uint64
	putErrors atomic.Uint64
}

// CacheStats is a snapshot of a StoreCache's traffic.
type CacheStats struct {
	Hits      uint64 // tasks served from the store
	Misses    uint64 // read-enabled lookups that found nothing usable
	Skipped   uint64 // results not checkpointable (unregistered payload, NaN metric)
	PutErrors uint64 // checkpoint writes that failed (ENOSPC, ...); sweep unaffected
}

// Stats returns a snapshot of the cache's counters.
func (c *StoreCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Skipped:   c.skipped.Load(),
		PutErrors: c.putErrors.Load(),
	}
}

// digest derives the task's content address.
func (c *StoreCache) digest(experiment string, t Task) store.Digest {
	parts := make([]string, 0, len(c.Scope)+5)
	parts = append(parts, c.Scope...)
	parts = append(parts, experiment, strconv.Itoa(t.ID), t.Label, t.ParamString(),
		strconv.FormatInt(t.Seed, 10))
	return store.NewDigest(parts...)
}

// Get implements ResultCache.
func (c *StoreCache) Get(experiment string, t Task) (Result, bool) {
	if !c.Read {
		return Result{}, false
	}
	b, ok := c.Store.Get(c.digest(experiment, t))
	if !ok {
		c.misses.Add(1)
		return Result{}, false
	}
	r, err := DecodeResult(b)
	if err != nil {
		// The entry passed its CRC but the envelope does not decode —
		// e.g. a payload type this binary no longer registers. Recompute.
		c.misses.Add(1)
		return Result{}, false
	}
	c.hits.Add(1)
	return r, true
}

// Put implements ResultCache. Checkpointing is strictly best-effort:
// an unencodable result or a failed write is counted and skipped, never
// surfaced — the sweep's own results are already in memory and correct.
func (c *StoreCache) Put(experiment string, t Task, r Result) {
	b, ok := EncodeResult(r)
	if !ok {
		c.skipped.Add(1)
		return
	}
	if err := c.Store.Put(c.digest(experiment, t), b); err != nil {
		c.putErrors.Add(1)
	}
}
