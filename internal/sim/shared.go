package sim

import "sync"

// Shared memoizes lazily-built shared resources for concurrent grid
// tasks: the first Get for a key runs the build function exactly once,
// every other Get — concurrent or later — waits for and shares that
// one result. It generalizes the pattern every experiment family had
// hand-rolled for its sized System pair (and now also backs the
// workload-arena and trace-file-arena caches): expensive immutable
// values built once per run, replayed from every grid point.
//
// Distinct keys build concurrently (the map lock is not held during
// builds); a build's outcome — value or error — is cached either way,
// which is the right semantics for deterministic builds: retrying
// would do the identical work and fail identically.
//
// The zero Shared is not usable; construct with NewShared.
type Shared[K comparable, V any] struct {
	build func(K) (V, error)

	mu sync.Mutex
	m  map[K]*sharedEntry[V]
}

// sharedEntry is one key's build slot.
type sharedEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// NewShared returns a cache whose missing entries are built by build.
// build must be safe for concurrent calls on distinct keys and should
// be deterministic per key — callers treat the cached value as
// equivalent to a fresh build.
func NewShared[K comparable, V any](build func(K) (V, error)) *Shared[K, V] {
	return &Shared[K, V]{build: build, m: make(map[K]*sharedEntry[V])}
}

// Get returns the key's shared value, building it on first use.
func (s *Shared[K, V]) Get(k K) (V, error) {
	s.mu.Lock()
	e := s.m[k]
	if e == nil {
		e = &sharedEntry[V]{}
		s.m[k] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.v, e.err = s.build(k) })
	return e.v, e.err
}
