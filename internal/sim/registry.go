package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of experiments. Binaries build one,
// register the experiments they expose, and resolve -run flags against
// it; tests build private registries with cheap options.
type Registry struct {
	mu    sync.RWMutex
	exps  map[string]Experiment
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{exps: make(map[string]Experiment)}
}

// Register adds an experiment under its name. Registration order is
// preserved by Names, so drivers present experiments in a meaningful
// sequence.
func (r *Registry) Register(e Experiment) error {
	name := e.Name()
	if name == "" {
		return fmt.Errorf("sim: experiment with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.exps[name]; dup {
		return fmt.Errorf("sim: experiment %q already registered", name)
	}
	r.exps[name] = e
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register, panicking on error.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the named experiment.
func (r *Registry) Get(name string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.exps[name]
	return e, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Resolve expands a -run style selector into experiment names: "all"
// yields every registered experiment, otherwise the selector is a
// comma-separated list where each element must match a name exactly or
// be the unique prefix of one (so "ablations" is spelled "a1…a6" but
// "fig" alone is ambiguous and rejected).
func (r *Registry) Resolve(selector string) ([]string, error) {
	if selector == "" || selector == "all" {
		return r.Names(), nil
	}
	var out []string
	for _, part := range strings.Split(selector, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, ok := r.Get(part); ok {
			out = append(out, part)
			continue
		}
		var matches []string
		for _, n := range r.Names() {
			if strings.HasPrefix(n, part) {
				matches = append(matches, n)
			}
		}
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("sim: unknown experiment %q (have: %s)", part, strings.Join(r.Names(), ", "))
		case 1:
			out = append(out, matches[0])
		default:
			sort.Strings(matches)
			return nil, fmt.Errorf("sim: ambiguous experiment %q (matches %s)", part, strings.Join(matches, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: empty experiment selector")
	}
	return out, nil
}
