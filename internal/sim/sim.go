// Package sim is the concurrent experiment engine of the repository. It
// turns the hand-rolled serial loops that used to live in every main()
// into a declarative pipeline: an Experiment exposes a parameter grid
// and a run function, a Registry makes experiments discoverable by
// name, a Runner fans the grid out across a worker pool with
// per-task deterministic RNG seeds and order-stable result collection,
// and Sinks render the typed results as text tables, JSON or CSV.
//
// Determinism is a design requirement, not an accident: for a fixed
// master seed the engine produces byte-identical output for any worker
// count, because every task derives its own RNG from (seed, experiment
// name, task index) and results are collected by grid index, never by
// arrival order.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Task is one cell of an experiment's parameter grid.
type Task struct {
	// ID is the task's position in the grid. The Runner assigns it and
	// collects results by it, which is what makes aggregation
	// order-stable under concurrency.
	ID int `json:"id"`

	// Label names the grid point for humans, e.g. "scenario=A mode=HP".
	Label string `json:"label"`

	// Params are the grid coordinates, kept as strings so every sink
	// can render them without reflection.
	Params map[string]string `json:"params,omitempty"`

	// Seed is the task's deterministic RNG seed, derived by the Runner
	// from its master seed, the experiment name and the task ID.
	Seed int64 `json:"-"`
}

// P builds a Params map from alternating key/value strings.
func P(kv ...string) map[string]string {
	if len(kv)%2 != 0 {
		panic("sim: P needs an even number of arguments")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// ParamString renders Params deterministically (sorted by key).
func (t Task) ParamString() string {
	keys := make([]string, 0, len(t.Params))
	for k := range t.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + t.Params[k]
	}
	return strings.Join(parts, " ")
}

// Metric is one named value of a result row.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Text, when set, is the preformatted rendering sinks prefer over
	// Value (e.g. "x1.85" or "+42.1%").
	Text string `json:"text,omitempty"`
}

// Num builds a plain numeric metric.
func Num(name string, v float64) Metric { return Metric{Name: name, Value: v} }

// NumU builds a numeric metric with a unit.
func NumU(name string, v float64, unit string) Metric {
	return Metric{Name: name, Value: v, Unit: unit}
}

// Fmt builds a metric whose rendering is preformatted; the numeric
// value is still carried for machine consumers.
func Fmt(name string, v float64, format string) Metric {
	return Metric{Name: name, Value: v, Text: fmt.Sprintf(format, v)}
}

// FmtU is Fmt with a unit.
func FmtU(name string, v float64, unit, format string) Metric {
	return Metric{Name: name, Value: v, Unit: unit, Text: fmt.Sprintf(format, v)}
}

// Str builds a purely textual metric.
func Str(name, text string) Metric { return Metric{Name: name, Text: text} }

// Result is the typed outcome of one task.
type Result struct {
	Experiment string   `json:"experiment"`
	Task       Task     `json:"task"`
	Metrics    []Metric `json:"metrics,omitempty"`

	// Detail is an optional free-form rendering (tables, stacked bars,
	// commentary) that the text sink prints verbatim; structured sinks
	// carry it as an opaque string.
	Detail string `json:"detail,omitempty"`

	// Data is an optional typed payload a Run function can attach for
	// its experiment's Finish hook (e.g. a core.Pair to aggregate with
	// the library's own summarisers). Sinks ignore it.
	Data any `json:"-"`
}

// Metric returns the named metric and whether it exists.
func (r Result) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Experiment is a declarative unit of evaluation: a named parameter
// grid plus a run function. Implementations must be safe for concurrent
// Run calls on distinct tasks — all mutable state belongs to the task.
type Experiment interface {
	// Name is the registry key, e.g. "fig3" or "a1-waysplit".
	Name() string
	// Description is a one-line summary shown by listings.
	Description() string
	// Grid returns the parameter grid in a deterministic order. ID and
	// Seed fields are assigned by the Runner and may be left zero.
	Grid() []Task
	// Run evaluates one grid point. rng is seeded deterministically per
	// task; implementations must use it (and not the global rand) for
	// all randomness so results are independent of scheduling.
	Run(t Task, rng *rand.Rand) (Result, error)
}

// Finisher is an optional Experiment extension: after every grid task
// has completed, Finish derives summary rows (averages, comparisons)
// from the ordered per-task results. The returned slice replaces the
// result set, so implementations typically append to it.
type Finisher interface {
	Finish(results []Result) ([]Result, error)
}

// Def is a function-backed Experiment, so registering a new scenario is
// a small literal instead of a new binary.
type Def struct {
	ExpName string
	Desc    string
	GridFn  func() []Task
	RunFn   func(t Task, rng *rand.Rand) (Result, error)
	// FinishFn is optional summary aggregation (see Finisher).
	FinishFn func(results []Result) ([]Result, error)
}

// Name implements Experiment.
func (d Def) Name() string { return d.ExpName }

// Description implements Experiment.
func (d Def) Description() string { return d.Desc }

// Grid implements Experiment.
func (d Def) Grid() []Task {
	if d.GridFn == nil {
		return []Task{{Label: d.ExpName}}
	}
	return d.GridFn()
}

// Run implements Experiment.
func (d Def) Run(t Task, rng *rand.Rand) (Result, error) { return d.RunFn(t, rng) }

// Finish implements Finisher; a nil FinishFn passes results through.
func (d Def) Finish(results []Result) ([]Result, error) {
	if d.FinishFn == nil {
		return results, nil
	}
	return d.FinishFn(results)
}
