package sim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"edcache/internal/stats"
)

// Sink renders a batch of results. The engine hands results to sinks in
// grid order, so any Sink's output is deterministic for a fixed seed
// regardless of worker count.
type Sink interface {
	Write(results []Result) error
}

// Formats lists the sink formats NewSink accepts.
func Formats() []string { return []string{"text", "json", "csv"} }

// NewSink builds the named sink over the writer.
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "", "text":
		return &TextSink{W: w}, nil
	case "json":
		return &JSONSink{W: w}, nil
	case "csv":
		return &CSVSink{W: w}, nil
	default:
		return nil, fmt.Errorf("sim: unknown format %q (have: %s)", format, strings.Join(Formats(), ", "))
	}
}

// TextSink renders results as aligned tables grouped per experiment,
// with Detail blocks printed verbatim — the human-facing report that
// replaced the ad-hoc fmt.Println experiments.
type TextSink struct {
	W io.Writer
}

// Write implements Sink. Consecutive results with the same metric
// shape render as one table; Detail blocks are buffered and printed
// after the table they belong to.
func (s *TextSink) Write(results []Result) error {
	var (
		tb      *stats.Table
		cols    []string
		details []string
		exp     string
		started bool
	)
	flush := func() {
		if tb != nil {
			fmt.Fprint(s.W, tb.String())
			tb, cols = nil, nil
		}
		for _, d := range details {
			fmt.Fprint(s.W, d)
			if !strings.HasSuffix(d, "\n") {
				fmt.Fprintln(s.W)
			}
		}
		details = nil
	}
	for _, r := range results {
		if r.Experiment != exp {
			flush()
			if started {
				fmt.Fprintln(s.W)
			}
			fmt.Fprintf(s.W, "========== %s ==========\n", r.Experiment)
			exp = r.Experiment
			started = true
		}
		if len(r.Metrics) > 0 {
			names := make([]string, len(r.Metrics)+1)
			names[0] = "task"
			for i, m := range r.Metrics {
				names[i+1] = m.Name
				if m.Unit != "" {
					names[i+1] += " (" + m.Unit + ")"
				}
			}
			if tb == nil || !equalStrings(cols, names) {
				flush()
				cols = names
				tb = stats.NewTable(names...)
			}
			row := make([]string, len(r.Metrics)+1)
			row[0] = r.Task.Label
			for i, m := range r.Metrics {
				row[i+1] = renderMetric(m)
			}
			tb.AddRow(row...)
		}
		if r.Detail != "" {
			details = append(details, fmt.Sprintf("--- %s ---\n%s", r.Task.Label, r.Detail))
		}
	}
	flush()
	return nil
}

func renderMetric(m Metric) string {
	if m.Text != "" {
		return m.Text
	}
	return strconv.FormatFloat(m.Value, 'g', 6, 64)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// JSONSink renders the results as one indented JSON array. Map keys are
// sorted by encoding/json, so output is byte-stable.
type JSONSink struct {
	W io.Writer
}

// Write implements Sink.
func (s *JSONSink) Write(results []Result) error {
	enc := json.NewEncoder(s.W)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// CSVSink renders one row per metric: experiment, task label, params,
// metric name, value, unit, formatted text.
type CSVSink struct {
	W io.Writer
}

// Write implements Sink.
func (s *CSVSink) Write(results []Result) error {
	w := csv.NewWriter(s.W)
	if err := w.Write([]string{"experiment", "task", "params", "metric", "value", "unit", "text"}); err != nil {
		return err
	}
	for _, r := range results {
		for _, m := range r.Metrics {
			rec := []string{
				r.Experiment, r.Task.Label, r.Task.ParamString(),
				m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64), m.Unit, m.Text,
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
