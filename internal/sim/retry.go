package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// PanicError is a per-task panic the Runner converted into an error:
// one panicking grid point fails its task (naming the experiment and
// grid point via the Runner's usual wrapping) instead of killing the
// whole process and every in-flight sibling task with it.
type PanicError struct {
	// Value is what the task passed to panic().
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// transientError marks an error as retryable; see Transient.
type transientError struct{ err error }

// Error implements error.
func (e *transientError) Error() string { return e.err.Error() }

// Unwrap exposes the marked error to errors.Is/As.
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as transient: a task returning it is retried (up
// to Runner.Retries times, with deterministic exponential backoff)
// before the failure becomes final. Use it for failures that can heal
// on their own — an overloaded filesystem, a flaky trace mount — never
// for deterministic ones, which would just fail Retries+1 times.
// Marking nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in the chain was marked by
// Transient. Panics are never transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// backoff returns the delay before retry number attempt (0-based): an
// exponential of base, scaled by a jitter factor in [0.5, 1.5) drawn
// from jr. The caller seeds jr from (master seed, experiment, task), so
// the whole retry schedule is deterministic for a fixed seed — the same
// discipline as every other random draw in the engine.
func backoff(base time.Duration, attempt int, jr *rand.Rand) time.Duration {
	if attempt > 20 { // beyond 2^20·base the cap keeps the shift sane
		attempt = 20
	}
	d := base << uint(attempt)
	return time.Duration(float64(d) * (0.5 + jr.Float64()))
}

// sleepCtx sleeps for d unless the context is cancelled first; it
// reports whether the full sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runShielded invokes the experiment's Run with a panic shield: a
// panicking grid point comes back as a *PanicError carrying the stack,
// so the worker pool — and sibling tasks — keep running.
func runShielded(e Experiment, t Task, rng *rand.Rand) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return e.Run(t, rng)
}
