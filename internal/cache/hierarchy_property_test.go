package cache

import (
	"math/rand"
	"testing"
)

// naiveHier is the two-level reference model: a naive AoS cache per
// level, L1 misses replayed one by one onto the L2 in the Hierarchy's
// documented order (demand fill read first, then the dirty victim's
// write-back). Everything the Hierarchy batches — the single L2
// AccessBatch per chunk, the reused op buffers, the fill-miss counter —
// must be invisible against this op-at-a-time model.
type naiveHier struct {
	l1, l2     *naiveCache // l2 may be shared between naiveHiers
	fillMisses uint64
	l2ops      []Op
	l2res      []Result
}

func (n *naiveHier) accessBatch(ops []Op) []Result {
	res := make([]Result, len(ops))
	for i, op := range ops {
		res[i] = n.l1.access(op.Addr, op.Write)
	}
	n.l2ops = n.l2ops[:0]
	n.l2res = n.l2res[:0]
	for i := range ops {
		if res[i].Hit {
			continue
		}
		n.l2ops = append(n.l2ops, Op{Addr: ops[i].Addr})
		if res[i].Writeback {
			n.l2ops = append(n.l2ops, Op{Addr: res[i].Victim, Write: true})
		}
	}
	for _, op := range n.l2ops {
		r := n.l2.access(op.Addr, op.Write)
		n.l2res = append(n.l2res, r)
		if !op.Write && !r.Hit {
			n.fillMisses++
		}
	}
	return res
}

// drainDirty mirrors Cache.DrainDirty: invalidate everything, emitting
// dirty line addresses in set-ascending, way-ascending order.
func (n *naiveCache) drainDirty(emit func(addr uint32)) int {
	dirty := 0
	for set := 0; set < n.cfg.Sets; set++ {
		for w := 0; w < n.cfg.Ways; w++ {
			ln := &n.lines[set*n.cfg.Ways+w]
			if ln.valid && ln.dirty {
				emit(ln.tag<<(n.offBits+n.idxBits) | uint32(set)<<n.offBits)
				dirty++
			}
			*ln = naiveLine{}
		}
	}
	return dirty
}

func (n *naiveHier) flush() (l1Dirty, l2Dirty int) {
	l1Dirty = n.l1.drainDirty(func(addr uint32) {
		n.l2.access(addr, true)
	})
	return l1Dirty, n.l2.flush()
}

// checkChunk compares one chunk's full outcome — L1 results, the L2 op
// batch the Hierarchy derived, the L2 results, and the fill-miss count.
func checkChunk(t *testing.T, tag string, step int, h *Hierarchy, ref *naiveHier, ops []Op, got, want []Result) {
	t.Helper()
	for i := range ops {
		if got[i] != want[i] {
			t.Fatalf("%s step %d: op %d (%+v) L1 = %+v, naive model %+v",
				tag, step, i, ops[i], got[i], want[i])
		}
	}
	hOps, hRes := h.L2Ops(), h.L2Results()
	if len(hOps) != len(ref.l2ops) || len(hRes) != len(ref.l2res) {
		t.Fatalf("%s step %d: L2 batch sizes %d/%d, naive model %d/%d",
			tag, step, len(hOps), len(hRes), len(ref.l2ops), len(ref.l2res))
	}
	for i := range hOps {
		if hOps[i] != ref.l2ops[i] {
			t.Fatalf("%s step %d: L2 op %d = %+v, naive model %+v", tag, step, i, hOps[i], ref.l2ops[i])
		}
		if hRes[i] != ref.l2res[i] {
			t.Fatalf("%s step %d: L2 result %d (op %+v) = %+v, naive model %+v",
				tag, step, i, hOps[i], hRes[i], ref.l2res[i])
		}
	}
	if h.FillMisses() != ref.fillMisses {
		t.Fatalf("%s step %d: fill misses %d, naive model %d", tag, step, h.FillMisses(), ref.fillMisses)
	}
}

// TestPropertyHierarchyMatchesNaiveTwoLevelModel differentially proves
// the L1→L2 composition: random interleavings of scalar accesses,
// batched chunks, per-level way gating and full-hierarchy flushes must
// behave identically on the batched Hierarchy and the op-at-a-time
// two-level AoS oracle — including the write-back propagation order and
// the demand-fill miss count the cpu timing rides on.
func TestPropertyHierarchyMatchesNaiveTwoLevelModel(t *testing.T) {
	cases := []struct {
		name   string
		l1, l2 Config
	}{
		{"paperL1_bigL2", Config{Sets: 32, Ways: 8, LineBytes: 32}, Config{Sets: 128, Ways: 8, LineBytes: 32}},
		{"tiny_conflict", Config{Sets: 4, Ways: 2, LineBytes: 16}, Config{Sets: 16, Ways: 4, LineBytes: 16}},
		{"l2_smaller_than_l1", Config{Sets: 8, Ways: 4, LineBytes: 32}, Config{Sets: 4, Ways: 2, LineBytes: 32}},
		{"direct_mapped_l2", Config{Sets: 8, Ways: 2, LineBytes: 32}, Config{Sets: 64, Ways: 1, LineBytes: 32}},
	}
	for _, tc := range cases {
		h := MustNewHierarchy(MustNew(tc.l1), MustNew(tc.l2))
		ref := &naiveHier{l1: newNaive(tc.l1), l2: newNaive(tc.l2)}
		rng := rand.New(rand.NewSource(int64(tc.l1.Sets*1000 + tc.l2.Sets)))
		addrSpace := uint32((tc.l1.SizeBytes() + tc.l2.SizeBytes()) * 2)
		var cursor uint32
		randAddr := func() uint32 {
			if rng.Intn(2) == 0 {
				cursor = (cursor + 4) % addrSpace
				return cursor
			}
			return rng.Uint32() % addrSpace
		}
		ops := make([]Op, 256)
		res := make([]Result, 256)
		for step := 0; step < 20_000; step++ {
			switch k := rng.Intn(100); {
			case k < 50: // scalar access (a one-op chunk)
				addr, write := randAddr(), rng.Intn(4) == 0
				got := h.Access(addr, write)
				want := ref.accessBatch([]Op{{Addr: addr, Write: write}})
				checkChunk(t, tc.name, step, h, ref, []Op{{Addr: addr, Write: write}}, []Result{got}, want)
			case k < 85: // batched chunk of 1..256 ops
				n := 1 + rng.Intn(len(ops))
				for i := 0; i < n; i++ {
					ops[i] = Op{Addr: randAddr(), Write: rng.Intn(4) == 0}
				}
				h.AccessBatch(ops[:n], res[:n])
				want := ref.accessBatch(ops[:n])
				checkChunk(t, tc.name, step, h, ref, ops[:n], res[:n], want)
			case k < 95: // gate a way of either level (never the last one)
				level := 1 + rng.Intn(2)
				c, nc := h.L1(), ref.l1
				if level == 2 {
					c, nc = h.L2(), ref.l2
				}
				way := rng.Intn(c.Config().Ways)
				on := rng.Intn(2) == 0
				if !on && c.EnabledWays() == 1 && c.WayEnabled(way) {
					on = true
				}
				h.SetWayEnabled(level, way, on)
				nc.setWayEnabled(way, on)
			default: // full-hierarchy flush
				gotL1, gotL2 := h.Flush()
				wantL1, wantL2 := ref.flush()
				if gotL1 != wantL1 || gotL2 != wantL2 {
					t.Fatalf("%s step %d: Flush = (%d, %d), naive model (%d, %d)",
						tc.name, step, gotL1, gotL2, wantL1, wantL2)
				}
			}
			if step%89 == 0 { // read-only state probe on both levels
				addr := randAddr()
				if h.L1().Contains(addr) != ref.l1.contains(addr) {
					t.Fatalf("%s step %d: L1 Contains(%#x) diverged", tc.name, step, addr)
				}
				if h.L2().Contains(addr) != ref.l2.contains(addr) {
					t.Fatalf("%s step %d: L2 Contains(%#x) diverged", tc.name, step, addr)
				}
			}
		}
		for a := uint32(0); a < addrSpace; a += uint32(tc.l1.LineBytes) {
			if h.L1().Contains(a) != ref.l1.contains(a) || h.L2().Contains(a) != ref.l2.contains(a) {
				t.Fatalf("%s: final state diverged at %#x", tc.name, a)
			}
		}
	}
}

// TestPropertySharedL2TwoStreams drives two Hierarchies built around
// one shared L2 — the multi-core arrangement cpu.RunShared serialises —
// with randomly alternating chunks, against two naive two-level models
// sharing a single naive L2. The chunk schedule is the interleaving
// semantics: replaying chunks in the same order must leave both private
// L1s and the shared level bit-identical to the oracle.
func TestPropertySharedL2TwoStreams(t *testing.T) {
	l1cfg := Config{Sets: 8, Ways: 2, LineBytes: 32}
	l2cfg := Config{Sets: 16, Ways: 4, LineBytes: 32} // small: real cross-stream thrash
	l2 := MustNew(l2cfg)
	refL2 := newNaive(l2cfg)
	hs := [2]*Hierarchy{
		MustNewHierarchy(MustNew(l1cfg), l2),
		MustNewHierarchy(MustNew(l1cfg), l2),
	}
	refs := [2]*naiveHier{
		{l1: newNaive(l1cfg), l2: refL2},
		{l1: newNaive(l1cfg), l2: refL2},
	}
	rng := rand.New(rand.NewSource(7))
	addrSpace := uint32(l2cfg.SizeBytes() * 3)
	ops := make([]Op, 128)
	res := make([]Result, 128)
	for step := 0; step < 20_000; step++ {
		s := rng.Intn(2) // which stream issues this chunk
		n := 1 + rng.Intn(len(ops))
		for i := 0; i < n; i++ {
			ops[i] = Op{Addr: rng.Uint32() % addrSpace, Write: rng.Intn(3) == 0}
		}
		hs[s].AccessBatch(ops[:n], res[:n])
		want := refs[s].accessBatch(ops[:n])
		checkChunk(t, "shared", step, hs[s], refs[s], ops[:n], res[:n], want)
		// The shared counter invariant: each stream tracks only its own
		// demand misses, while the L2 state below is common.
		if step%101 == 0 {
			addr := rng.Uint32() % addrSpace
			if l2.Contains(addr) != refL2.contains(addr) {
				t.Fatalf("shared step %d: shared L2 Contains(%#x) diverged", step, addr)
			}
		}
	}
	for a := uint32(0); a < addrSpace; a += uint32(l2cfg.LineBytes) {
		if l2.Contains(a) != refL2.contains(a) {
			t.Fatalf("shared: final shared-L2 state diverged at %#x", a)
		}
		if hs[0].L1().Contains(a) != refs[0].l1.contains(a) || hs[1].L1().Contains(a) != refs[1].l1.contains(a) {
			t.Fatalf("shared: final private-L1 state diverged at %#x", a)
		}
	}
}
