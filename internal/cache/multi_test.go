package cache

import (
	"math/rand"
	"testing"
)

// TestPropertyMultiCacheMatchesIndependentCaches differentially proves
// the bank contract: a MultiCache driven by interleaved AccessBatch
// chunks, scalar member accesses, way gating and flushes must be
// bit-identical to K standalone Caches fed the same sequence. The
// configurations deliberately mix geometries (different sets, ways and
// line sizes in one bank), a gated member, and the 64-way full-mask
// edge config.
func TestPropertyMultiCacheMatchesIndependentCaches(t *testing.T) {
	cfgs := []Config{
		{Sets: 32, Ways: 8, LineBytes: 32}, // the paper's L1
		{Sets: 32, Ways: 2, LineBytes: 32}, // capacity-axis sibling
		{Sets: 4, Ways: 2, LineBytes: 16},  // different decomposition
		{Sets: 8, Ways: 1, LineBytes: 32},  // direct-mapped
		{Sets: 1, Ways: 64, LineBytes: 32}, // full mask word, one set
	}
	bank, err := NewMultiCache(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Len() != len(cfgs) {
		t.Fatalf("bank has %d members, want %d", bank.Len(), len(cfgs))
	}
	refs := make([]*Cache, len(cfgs))
	for k, cfg := range cfgs {
		refs[k] = MustNew(cfg)
	}
	// Gate ways on one member before any traffic, the way core.newPort
	// does for ULE mode: gating state must survive banking.
	bank.Member(0).SetWayEnabled(1, false)
	refs[0].SetWayEnabled(1, false)

	rng := rand.New(rand.NewSource(7))
	addrSpace := uint32(cfgs[0].SizeBytes() * 4)
	ops := make([]Op, 512)
	res := make([][]Result, len(cfgs))
	want := make([]Result, 512)
	for k := range res {
		res[k] = make([]Result, 512)
	}
	for step := 0; step < 3_000; step++ {
		switch k := rng.Intn(100); {
		case k < 70: // banked batch of 1..512 ops
			n := 1 + rng.Intn(len(ops))
			for i := 0; i < n; i++ {
				ops[i] = Op{Addr: rng.Uint32() % addrSpace, Write: rng.Intn(4) == 0}
			}
			bank.AccessBatch(ops[:n], res)
			for m := range refs {
				refs[m].AccessBatch(ops[:n], want[:n])
				for i := 0; i < n; i++ {
					if res[m][i] != want[i] {
						t.Fatalf("step %d member %d op %d (%+v): bank %+v, standalone %+v",
							step, m, i, ops[i], res[m][i], want[i])
					}
				}
			}
		case k < 85: // scalar access straight through one member
			m := rng.Intn(len(refs))
			addr, write := rng.Uint32()%addrSpace, rng.Intn(4) == 0
			got := bank.Member(m).Access(addr, write)
			if exp := refs[m].Access(addr, write); got != exp {
				t.Fatalf("step %d member %d: Access(%#x, %v) = %+v, standalone %+v",
					step, m, addr, write, got, exp)
			}
		case k < 95: // gate a way on one member (never the last one off)
			m := rng.Intn(len(refs))
			way := rng.Intn(cfgs[m].Ways)
			on := rng.Intn(2) == 0
			if !on && bank.Member(m).EnabledWays() == 1 && bank.Member(m).WayEnabled(way) {
				on = true
			}
			bank.Member(m).SetWayEnabled(way, on)
			refs[m].SetWayEnabled(way, on)
		default: // bank-wide flush
			dirty := bank.Flush()
			for m := range refs {
				if exp := refs[m].Flush(); dirty[m] != exp {
					t.Fatalf("step %d member %d: Flush wrote back %d, standalone %d",
						step, m, dirty[m], exp)
				}
			}
		}
	}
	// Final state sweep on every member.
	for m, cfg := range cfgs {
		for a := uint32(0); a < addrSpace; a += uint32(cfg.LineBytes) {
			if bank.Member(m).Contains(a) != refs[m].Contains(a) {
				t.Fatalf("member %d: final state diverged at %#x", m, a)
			}
		}
	}
}

func TestMultiCacheConstructorErrors(t *testing.T) {
	if _, err := NewMultiCache(); err == nil {
		t.Fatal("empty bank accepted")
	}
	if _, err := NewMultiCache(Config{Sets: 32, Ways: 8, LineBytes: 24}); err == nil {
		t.Fatal("invalid member config accepted")
	}
	if _, err := Bank(); err == nil {
		t.Fatal("empty Bank accepted")
	}
	if _, err := Bank(MustNew(Config{Sets: 4, Ways: 2, LineBytes: 32}), nil); err == nil {
		t.Fatal("nil Bank member accepted")
	}
}

func TestMultiCacheAccessBatchPanicsOnShortResults(t *testing.T) {
	bank, _ := NewMultiCache(
		Config{Sets: 4, Ways: 2, LineBytes: 32},
		Config{Sets: 4, Ways: 4, LineBytes: 32},
	)
	defer func() {
		if recover() == nil {
			t.Fatal("short result set accepted")
		}
	}()
	bank.AccessBatch([]Op{{Addr: 0}}, [][]Result{make([]Result, 1)})
}

// TestPropertyStackProfileMatchesPerGeometryReplay is the oracle for
// the one-pass capacity axis: over random reference streams (reads and
// writes, scalar and batched), StackProfile.Misses(a) must equal the
// miss count of replaying the same stream through a standalone a-way
// Cache with all ways enabled, for every associativity 1..MaxWays —
// the per-geometry replay it replaces in corpus-miss.
func TestPropertyStackProfileMatchesPerGeometryReplay(t *testing.T) {
	geoms := []Config{
		{Sets: 32, Ways: 8, LineBytes: 32}, // corpus-miss geometry
		{Sets: 4, Ways: 2, LineBytes: 16},
		{Sets: 8, Ways: 1, LineBytes: 32},
		{Sets: 1, Ways: 64, LineBytes: 32},
	}
	for _, cfg := range geoms {
		p := MustNewStackProfile(cfg)
		if p.MaxWays() != cfg.Ways {
			t.Fatalf("cfg %+v: MaxWays = %d", cfg, p.MaxWays())
		}
		caches := make([]*Cache, cfg.Ways)
		misses := make([]uint64, cfg.Ways)
		for w := 1; w <= cfg.Ways; w++ {
			caches[w-1] = MustNew(Config{Sets: cfg.Sets, Ways: w, LineBytes: cfg.LineBytes})
		}
		rng := rand.New(rand.NewSource(int64(cfg.Sets*1000 + cfg.Ways)))
		addrSpace := uint32(cfg.SizeBytes() * 4)
		var cursor uint32
		randAddr := func() uint32 {
			if rng.Intn(2) == 0 {
				cursor = (cursor + 4) % addrSpace
				return cursor
			}
			return rng.Uint32() % addrSpace
		}
		feed := func(addr uint32, write bool) {
			for i, c := range caches {
				if !c.Access(addr, write).Hit {
					misses[i]++
				}
			}
		}
		refs := uint64(0)
		ops := make([]Op, 256)
		for step := 0; step < 400; step++ {
			if rng.Intn(2) == 0 {
				addr, write := randAddr(), rng.Intn(4) == 0
				p.Access(addr)
				feed(addr, write)
				refs++
			} else {
				n := 1 + rng.Intn(len(ops))
				for i := 0; i < n; i++ {
					ops[i] = Op{Addr: randAddr(), Write: rng.Intn(4) == 0}
				}
				p.AccessBatch(ops[:n])
				for i := 0; i < n; i++ {
					feed(ops[i].Addr, ops[i].Write)
				}
				refs += uint64(n)
			}
		}
		if p.Refs() != refs {
			t.Fatalf("cfg %+v: Refs = %d, fed %d", cfg, p.Refs(), refs)
		}
		hist := p.Hist()
		if len(hist) != cfg.Ways+1 {
			t.Fatalf("cfg %+v: histogram has %d buckets, want %d", cfg, len(hist), cfg.Ways+1)
		}
		sum := uint64(0)
		for _, h := range hist {
			sum += h
		}
		if sum != refs {
			t.Fatalf("cfg %+v: histogram sums to %d, want %d refs", cfg, sum, refs)
		}
		for w := 1; w <= cfg.Ways; w++ {
			if got := p.Misses(w); got != misses[w-1] {
				t.Fatalf("cfg %+v ways %d: profile misses %d, replay misses %d",
					cfg, w, got, misses[w-1])
			}
		}
		// Reset clears everything.
		p.Reset()
		if p.Refs() != 0 || p.Misses(1) != 0 {
			t.Fatalf("cfg %+v: Reset left refs=%d misses=%d", cfg, p.Refs(), p.Misses(1))
		}
	}
}

func TestStackProfileErrors(t *testing.T) {
	if _, err := NewStackProfile(Config{Sets: 32, Ways: 8, LineBytes: 24}); err == nil {
		t.Fatal("invalid config accepted")
	}
	p := MustNewStackProfile(Config{Sets: 4, Ways: 2, LineBytes: 32})
	for _, w := range []int{0, 3, -1} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Misses(%d) outside profiled range accepted", w)
				}
			}()
			p.Misses(w)
		}()
	}
}
