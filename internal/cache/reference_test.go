package cache

import (
	"math/rand"
	"testing"
)

// refCache is a deliberately naive, obviously-correct LRU model used to
// differentially test the optimised simulator: each set is an ordered
// slice of {tag, dirty}, MRU first.
type refCache struct {
	cfg  Config
	sets [][]refLine
}

type refLine struct {
	tag   uint32
	dirty bool
}

func newRef(cfg Config) *refCache {
	return &refCache{cfg: cfg, sets: make([][]refLine, cfg.Sets)}
}

func (r *refCache) split(addr uint32) (int, uint32) {
	off := uint(0)
	for 1<<off < r.cfg.LineBytes {
		off++
	}
	idx := uint(0)
	for 1<<idx < r.cfg.Sets {
		idx++
	}
	return int((addr >> off) & uint32(r.cfg.Sets-1)), addr >> (off + idx)
}

func (r *refCache) access(addr uint32, write bool, ways int) Result {
	set, tag := r.split(addr)
	lines := r.sets[set]
	for i, ln := range lines {
		if ln.tag == tag {
			// Move to MRU.
			copy(lines[1:i+1], lines[:i])
			lines[0] = ln
			if write {
				lines[0].dirty = true
			}
			return Result{Hit: true}
		}
	}
	res := Result{}
	if len(lines) == ways {
		victim := lines[len(lines)-1]
		res.Evicted = true
		res.Writeback = victim.dirty
		lines = lines[:len(lines)-1]
	}
	r.sets[set] = append([]refLine{{tag: tag, dirty: write}}, lines...)
	return res
}

func TestDifferentialAgainstReferenceModel(t *testing.T) {
	configs := []Config{
		{Sets: 32, Ways: 8, LineBytes: 32}, // the paper's L1
		DirectMapped(64, 32),
		FullyAssociative(16, 64),
		{Sets: 4, Ways: 2, LineBytes: 16},
	}
	for _, cfg := range configs {
		c := MustNew(cfg)
		ref := newRef(cfg)
		rng := rand.New(rand.NewSource(int64(cfg.Sets*1000 + cfg.Ways)))
		// Mix of hot lines (reuse) and random addresses (conflict).
		hot := make([]uint32, 24)
		for i := range hot {
			hot[i] = rng.Uint32()
		}
		for step := 0; step < 200000; step++ {
			var addr uint32
			if rng.Intn(2) == 0 {
				addr = hot[rng.Intn(len(hot))]
			} else {
				addr = rng.Uint32()
			}
			write := rng.Intn(4) == 0
			got := c.Access(addr, write)
			want := ref.access(addr, write, cfg.Ways)
			if got.Hit != want.Hit || got.Evicted != want.Evicted || got.Writeback != want.Writeback {
				t.Fatalf("cfg %+v step %d addr %#x write=%v: sim %+v != ref %+v",
					cfg, step, addr, write, got, want)
			}
		}
	}
}

func TestOrganizationHelpers(t *testing.T) {
	dm := DirectMapped(64, 32)
	if err := dm.Validate(); err != nil {
		t.Fatal(err)
	}
	if !dm.IsDirectMapped() || dm.IsFullyAssociative() {
		t.Error("direct-mapped classification")
	}
	if dm.SizeBytes() != 2048 {
		t.Errorf("DM size %d", dm.SizeBytes())
	}
	fa := FullyAssociative(16, 64)
	if err := fa.Validate(); err != nil {
		t.Fatal(err)
	}
	if !fa.IsFullyAssociative() || fa.IsDirectMapped() {
		t.Error("fully-associative classification")
	}
	if fa.SizeBytes() != 1024 {
		t.Errorf("FA size %d", fa.SizeBytes())
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// 16 distinct lines in a 16-line FA cache never conflict.
	c := MustNew(FullyAssociative(16, 64))
	for pass := 0; pass < 3; pass++ {
		misses := 0
		for i := 0; i < 16; i++ {
			if !c.Access(uint32(i)*64, false).Hit {
				misses++
			}
		}
		if pass == 0 && misses != 16 {
			t.Errorf("cold pass misses %d", misses)
		}
		if pass > 0 && misses != 0 {
			t.Errorf("warm pass %d misses %d", pass, misses)
		}
	}
}
