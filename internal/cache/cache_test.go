package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func paperCfg() Config { return Config{Sets: 32, Ways: 8, LineBytes: 32} }

func TestConfigValidation(t *testing.T) {
	if err := paperCfg().Validate(); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
	bad := []Config{
		{Sets: 0, Ways: 8, LineBytes: 32},
		{Sets: 33, Ways: 8, LineBytes: 32},
		{Sets: 32, Ways: 0, LineBytes: 32},
		{Sets: 32, Ways: 65, LineBytes: 32}, // beyond the packed-mask width
		{Sets: 32, Ways: 8, LineBytes: 24},
	}
	if err := (Config{Sets: 1, Ways: 64, LineBytes: 32}).Validate(); err != nil {
		t.Errorf("64-way config rejected: %v", err)
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if got := paperCfg().SizeBytes(); got != 8192 {
		t.Errorf("paper cache size = %d, want 8192", got)
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew(paperCfg())
	if res := c.Access(0x1000, false); res.Hit {
		t.Error("cold access hit")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Error("second access missed")
	}
	// Same line, different word: hit.
	if res := c.Access(0x101C, false); !res.Hit {
		t.Error("same-line access missed")
	}
	// Different line: miss.
	if res := c.Access(0x1020, false); res.Hit {
		t.Error("next-line access hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 2, LineBytes: 32})
	c.Access(0x000, false) // A
	c.Access(0x100, false) // B
	c.Access(0x000, false) // touch A — B becomes LRU
	res := c.Access(0x200, false)
	if res.Hit || !res.Evicted {
		t.Fatalf("expected evicting miss, got %+v", res)
	}
	if !c.Contains(0x000) {
		t.Error("MRU line A was evicted instead of LRU line B")
	}
	if c.Contains(0x100) {
		t.Error("LRU line B survived")
	}
}

func TestWritebackTracking(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 1, LineBytes: 32})
	c.Access(0x000, true) // dirty A
	res := c.Access(0x100, false)
	if !res.Writeback {
		t.Error("evicting a dirty line must report a writeback")
	}
	res = c.Access(0x200, false)
	if res.Writeback {
		t.Error("evicting a clean line must not report a writeback")
	}
}

func TestWayGating(t *testing.T) {
	c := MustNew(paperCfg())
	// Fill one set across all ways.
	for w := 0; w < 8; w++ {
		c.Access(uint32(w)<<10, false)
	}
	// Gate ways 0..6 off (ULE mode: only way 7 stays).
	for w := 0; w < 7; w++ {
		c.SetWayEnabled(w, false)
	}
	if c.EnabledWays() != 1 {
		t.Fatalf("enabled ways = %d", c.EnabledWays())
	}
	// Gated ways lost their contents.
	if c.Contains(0 << 10) {
		t.Error("gated way retained state")
	}
	// All fills now land in way 7.
	for i := 0; i < 20; i++ {
		res := c.Access(uint32(0x9000+i*0x400), false)
		if res.Hit {
			continue
		}
		if res.Way != 7 {
			t.Fatalf("fill landed in gated way %d", res.Way)
		}
	}
	// Re-enable: capacity returns.
	for w := 0; w < 7; w++ {
		c.SetWayEnabled(w, true)
	}
	if c.EnabledWays() != 8 {
		t.Error("re-enable failed")
	}
}

func TestAccessPanicsAllWaysOff(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 1, LineBytes: 32})
	c.SetWayEnabled(0, false)
	defer func() {
		if recover() == nil {
			t.Error("access with zero enabled ways must panic")
		}
	}()
	c.Access(0, false)
}

func TestFlushCountsDirtyLines(t *testing.T) {
	c := MustNew(paperCfg())
	c.Access(0x0000, true)
	c.Access(0x2000, true)
	c.Access(0x4000, false)
	if got := c.Flush(); got != 2 {
		t.Errorf("flush reported %d dirty lines, want 2", got)
	}
	if c.Contains(0x0000) || c.Contains(0x4000) {
		t.Error("flush left valid lines")
	}
	if got := c.Flush(); got != 0 {
		t.Errorf("second flush reported %d dirty lines", got)
	}
}

func TestWorkingSetResidency(t *testing.T) {
	// A working set no larger than the cache must converge to zero
	// misses (with LRU and power-of-two strides this is guaranteed for
	// sequential sweeps).
	c := MustNew(paperCfg())
	misses := 0
	for pass := 0; pass < 4; pass++ {
		for a := uint32(0); a < 8192; a += 32 {
			if res := c.Access(a, false); !res.Hit {
				misses++
			}
		}
	}
	if misses != 256 {
		t.Errorf("misses = %d, want 256 (cold only)", misses)
	}
}

func TestSingleWayModeIsDirectMapped(t *testing.T) {
	// ULE mode: 1 enabled way over 32 sets behaves as a 1 KB
	// direct-mapped cache; two lines mapping to the same set conflict.
	c := MustNew(paperCfg())
	for w := 0; w < 7; w++ {
		c.SetWayEnabled(w, false)
	}
	c.Access(0x0000, false)
	c.Access(0x0400, false) // same set (index bits), different tag
	if c.Contains(0x0000) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestLineAddr(t *testing.T) {
	c := MustNew(paperCfg())
	if got := c.LineAddr(0x1234_5678); got != 0x1234_5660 {
		t.Errorf("LineAddr = %#x", got)
	}
}

func TestQuickPropertyHitAfterFill(t *testing.T) {
	// Property: immediately re-accessing any address hits, regardless
	// of history.
	c := MustNew(paperCfg())
	rng := rand.New(rand.NewSource(9))
	prop := func(addrSeed uint32, write bool) bool {
		// Random history.
		for i := 0; i < 5; i++ {
			c.Access(rng.Uint32(), rng.Intn(2) == 0)
		}
		c.Access(addrSeed, write)
		res := c.Access(addrSeed, false)
		return res.Hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
