package cache

import (
	"math/rand"
	"testing"
)

// TestAccessBatchMatchesAccess verifies the batch entry point's
// contract: identical state transitions and results to a scalar loop.
func TestAccessBatchMatchesAccess(t *testing.T) {
	cfg := Config{Sets: 16, Ways: 4, LineBytes: 32}
	a, b := MustNew(cfg), MustNew(cfg)
	rng := rand.New(rand.NewSource(7))

	ops := make([]Op, 10_000)
	for i := range ops {
		ops[i] = Op{Addr: uint32(rng.Intn(1 << 14)), Write: rng.Intn(4) == 0}
	}
	res := make([]Result, len(ops))
	// Batch in uneven slabs so slab boundaries are exercised.
	for start := 0; start < len(ops); {
		end := start + 1 + rng.Intn(700)
		if end > len(ops) {
			end = len(ops)
		}
		a.AccessBatch(ops[start:end], res[start:end])
		start = end
	}
	for i, op := range ops {
		want := b.Access(op.Addr, op.Write)
		if res[i] != want {
			t.Fatalf("op %d (%+v): batch result %+v != scalar %+v", i, op, res[i], want)
		}
	}
	// Final states must agree too.
	for addr := uint32(0); addr < 1<<14; addr += 32 {
		if a.Contains(addr) != b.Contains(addr) {
			t.Fatalf("state diverged at %#x", addr)
		}
	}
}

func TestAccessBatchShortResultBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short result buffer did not panic")
		}
	}()
	c := MustNew(Config{Sets: 4, Ways: 2, LineBytes: 32})
	c.AccessBatch(make([]Op, 4), make([]Result, 2))
}
