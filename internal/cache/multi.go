package cache

import "fmt"

// MultiCache is a bank of K independent cache configurations driven by
// one access stream: the single-pass half of the sweep engine. Every
// member owns its full simulator state — tag/LRU slabs, packed
// valid/dirty masks, enabled mask, memo — so members may differ in
// geometry and gating, and each one's behaviour is exactly that of a
// standalone Cache fed the same op sequence. What the bank shares is
// the *stream*: AccessBatch takes one op chunk (built by one cursor
// walk and one classification pass upstream) and runs it through every
// member's hoisted inner loop, so a K-configuration sweep pays the
// trace work once instead of K times. Members whose LineBytes and Sets
// agree share the same set-index/tag decomposition by construction —
// each inner loop recomputes the split from its own registers, so
// nothing needs to be precomputed per member.
//
// Like Cache, a MultiCache holds per-run mutable state and is not safe
// for concurrent use.
type MultiCache struct {
	members []*Cache
}

// NewMultiCache builds a bank with one freshly-constructed, all-ways-
// enabled member per configuration.
func NewMultiCache(cfgs ...Config) (*MultiCache, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: empty multi-cache bank")
	}
	members := make([]*Cache, len(cfgs))
	for i, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("cache: bank member %d: %w", i, err)
		}
		members[i] = c
	}
	return &MultiCache{members: members}, nil
}

// Bank wraps already-constructed caches (way gating applied by the
// caller) into a bank. The caches must not be nil and must not be
// driven outside the bank while it is in use.
func Bank(members ...*Cache) (*MultiCache, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cache: empty multi-cache bank")
	}
	for i, c := range members {
		if c == nil {
			return nil, fmt.Errorf("cache: nil bank member %d", i)
		}
	}
	return &MultiCache{members: members}, nil
}

// Len returns the number of bank members.
func (m *MultiCache) Len() int { return len(m.members) }

// Member returns the k-th member for state setup (way gating), flushes
// and inspection. Driving it with scalar Access between AccessBatch
// calls is allowed — the bank adds no state of its own.
func (m *MultiCache) Member(k int) *Cache { return m.members[k] }

// AccessBatch performs the ops in order on every member, writing member
// k's i-th outcome into results[k][i]. Each results[k] must hold at
// least len(ops) entries. The call is semantically identical to calling
// AccessBatch(ops, results[k]) on K standalone caches — members are
// independent state, so the member loop order is unobservable — but the
// op chunk is built (and its cursor walked) once for all of them.
func (m *MultiCache) AccessBatch(ops []Op, results [][]Result) {
	if len(results) < len(m.members) {
		panic(fmt.Sprintf("cache: MultiCache result set %d too small for %d members", len(results), len(m.members)))
	}
	for k, c := range m.members {
		c.AccessBatch(ops, results[k])
	}
}

// Flush invalidates every member, returning the per-member dirty-line
// counts.
func (m *MultiCache) Flush() []int {
	dirty := make([]int, len(m.members))
	for k, c := range m.members {
		dirty[k] = c.Flush()
	}
	return dirty
}
