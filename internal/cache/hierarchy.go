package cache

import "fmt"

// Hierarchy chains two cache levels: a private L1 in front of a
// (possibly shared) L2, both the same SoA engine. The L1 filters the
// reference stream; only its misses reach the L2 — a demand fill read
// per miss, followed by a write for the displaced line when it was
// dirty (write-back propagation). The L2 is inclusive of nothing by
// construction: it simply absorbs the L1's miss traffic with its own
// LRU/write-allocate policy, which is the paper-faithful composition of
// two independent set-associative levels.
//
// The batch path keeps the SoA engine's contract: one L1 AccessBatch
// per chunk, whose Result slice is folded into a single L2 op batch —
// one L2 AccessBatch per chunk, no per-op fan-out. For each L1 miss the
// demand fill is issued first (the fetch the core is stalled on), then
// the victim write-back drains behind it; that fixed order is the
// deterministic interleaving contract the property tests pin down.
//
// A shared L2 is expressed structurally: several Hierarchies (one per
// core, or one per side of a split I/D L1) constructed around the same
// *Cache. Like Cache itself, a Hierarchy is single-goroutine; sharing
// an L2 across cpu streams is serialised by the caller's chunk schedule
// (cpu.RunShared), which thereby *is* the interleaving semantics.
type Hierarchy struct {
	l1, l2 *Cache

	// Per-chunk L2 traffic, rebuilt by every AccessBatch/Access call
	// and readable until the next one — core tallies energy from it.
	l2ops []Op
	l2res []Result

	// fillMisses counts demand fill reads that missed the L2 (memory
	// fetches). Write-back writes that miss allocate in the L2 but are
	// not demand fetches and do not count.
	fillMisses uint64

	one    [1]Op // scratch for the scalar path
	oneRes [1]Result
}

// NewHierarchy builds a two-level hierarchy over existing caches. The
// levels must agree on line size — the L1's victim lines become L2
// writes verbatim. l2 may be shared with other Hierarchies.
func NewHierarchy(l1, l2 *Cache) (*Hierarchy, error) {
	if l1 == nil || l2 == nil {
		return nil, fmt.Errorf("cache: hierarchy needs both levels")
	}
	if l1 == l2 {
		return nil, fmt.Errorf("cache: hierarchy levels must be distinct caches")
	}
	if l1.cfg.LineBytes != l2.cfg.LineBytes {
		return nil, fmt.Errorf("cache: hierarchy line sizes differ (L1 %d B, L2 %d B)",
			l1.cfg.LineBytes, l2.cfg.LineBytes)
	}
	return &Hierarchy{l1: l1, l2: l2}, nil
}

// MustNewHierarchy is NewHierarchy, panicking on error.
func MustNewHierarchy(l1, l2 *Cache) *Hierarchy {
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		panic(err)
	}
	return h
}

// L1 returns the first level.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the second level.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// AccessBatch replays one chunk through both levels: a single L1
// AccessBatch, then a single L2 AccessBatch over the miss traffic the
// L1 results imply. res receives the L1 results (the hit/miss signal
// the core times against); the chunk's L2 ops and results stay
// readable via L2Ops/L2Results until the next access.
func (h *Hierarchy) AccessBatch(ops []Op, res []Result) {
	h.l1.AccessBatch(ops, res)
	h.l2ops = h.l2ops[:0]
	for i := range ops {
		r := res[i]
		if r.Hit {
			continue
		}
		h.l2ops = append(h.l2ops, Op{Addr: ops[i].Addr})
		if r.Writeback {
			h.l2ops = append(h.l2ops, Op{Addr: r.Victim, Write: true})
		}
	}
	h.l2res = growResults(h.l2res, len(h.l2ops))
	h.l2.AccessBatch(h.l2ops, h.l2res)
	for i := range h.l2ops {
		if !h.l2ops[i].Write && !h.l2res[i].Hit {
			h.fillMisses++
		}
	}
}

// Access is the scalar path: a one-op chunk through AccessBatch, so the
// scalar and batched replays share one L2 interleaving rule.
func (h *Hierarchy) Access(addr uint32, write bool) Result {
	h.one[0] = Op{Addr: addr, Write: write}
	h.AccessBatch(h.one[:], h.oneRes[:])
	return h.oneRes[0]
}

// L2Ops returns the L2 op batch of the most recent chunk.
func (h *Hierarchy) L2Ops() []Op { return h.l2ops }

// L2Results returns the L2 results of the most recent chunk, parallel
// to L2Ops.
func (h *Hierarchy) L2Results() []Result { return h.l2res }

// FillMisses returns the running count of demand fill reads that missed
// the L2 — the hierarchy's memory fetches. cpu's tiered timing charges
// full memory latency for exactly these.
func (h *Hierarchy) FillMisses() uint64 { return h.fillMisses }

// SetWayEnabled gates one way of the given level (1 or 2) on or off —
// the per-level way mask the architecture's gating policies drive.
func (h *Hierarchy) SetWayEnabled(level, way int, on bool) {
	switch level {
	case 1:
		h.l1.SetWayEnabled(way, on)
	case 2:
		h.l2.SetWayEnabled(way, on)
	default:
		panic(fmt.Sprintf("cache: hierarchy level %d out of range", level))
	}
}

// Flush drains the whole hierarchy: the L1's dirty lines are written
// into the L2 as one deterministic write batch (DrainDirty order), then
// the L2 is flushed. It returns the per-level dirty counts — L1 lines
// written down, and L2 lines (including just-absorbed ones) written to
// memory. With a shared L2, flushing one Hierarchy drains the shared
// level too; callers coordinating several cores flush the L1s first.
func (h *Hierarchy) Flush() (l1Dirty, l2Dirty int) {
	h.l2ops = h.l2ops[:0]
	l1Dirty = h.l1.DrainDirty(func(addr uint32) {
		h.l2ops = append(h.l2ops, Op{Addr: addr, Write: true})
	})
	h.l2res = growResults(h.l2res, len(h.l2ops))
	h.l2.AccessBatch(h.l2ops, h.l2res)
	return l1Dirty, h.l2.Flush()
}

// growResults returns a slice of exactly n Results, reusing buf's
// backing array when it is large enough.
func growResults(buf []Result, n int) []Result {
	if cap(buf) < n {
		return make([]Result, n)
	}
	return buf[:n]
}
