package cache

import (
	"math/rand"
	"testing"
)

// naiveCache is an array-of-structs reference model with the simulator's
// exact contract — the pre-SoA implementation, kept as the oracle for
// the packed-mask layout: per-line valid/dirty/tag/lru fields, an O(ways)
// scan everywhere, no masks, no memo. Every optimisation the SoA engine
// makes (packed bitmasks, the O(1) enabled guard, the last-line memo,
// batched loops) must be invisible against this model under arbitrary
// interleavings of accesses, way gating and flushes.
type naiveLine struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64
}

type naiveCache struct {
	cfg     Config
	lines   []naiveLine
	enabled []bool
	tick    uint64
	offBits uint
	idxBits uint
}

func newNaive(cfg Config) *naiveCache {
	offBits := uint(0)
	for 1<<offBits < cfg.LineBytes {
		offBits++
	}
	idxBits := uint(0)
	for 1<<idxBits < cfg.Sets {
		idxBits++
	}
	n := &naiveCache{
		cfg:     cfg,
		lines:   make([]naiveLine, cfg.Sets*cfg.Ways),
		enabled: make([]bool, cfg.Ways),
		offBits: offBits,
		idxBits: idxBits,
	}
	for i := range n.enabled {
		n.enabled[i] = true
	}
	return n
}

func (n *naiveCache) access(addr uint32, write bool) Result {
	set := int((addr >> n.offBits) & uint32(n.cfg.Sets-1))
	tag := addr >> (n.offBits + n.idxBits)
	base := set * n.cfg.Ways
	n.tick++
	for w := 0; w < n.cfg.Ways; w++ {
		ln := &n.lines[base+w]
		if n.enabled[w] && ln.valid && ln.tag == tag {
			ln.lru = n.tick
			if write {
				ln.dirty = true
			}
			return Result{Hit: true, Way: w}
		}
	}
	victim := -1
	oldest := ^uint64(0)
	for w := 0; w < n.cfg.Ways; w++ {
		if !n.enabled[w] {
			continue
		}
		ln := &n.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = w
		}
	}
	ln := &n.lines[base+victim]
	res := Result{Way: victim, Evicted: ln.valid, Writeback: ln.valid && ln.dirty}
	if ln.valid {
		res.Victim = ln.tag<<(n.offBits+n.idxBits) | uint32(set)<<n.offBits
	}
	*ln = naiveLine{valid: true, tag: tag, lru: n.tick, dirty: write}
	return res
}

func (n *naiveCache) setWayEnabled(way int, on bool) {
	if !on {
		for set := 0; set < n.cfg.Sets; set++ {
			n.lines[set*n.cfg.Ways+way] = naiveLine{}
		}
	}
	n.enabled[way] = on
}

func (n *naiveCache) enabledWays() int {
	c := 0
	for _, e := range n.enabled {
		if e {
			c++
		}
	}
	return c
}

func (n *naiveCache) flush() int {
	dirty := 0
	for i := range n.lines {
		if n.lines[i].valid && n.lines[i].dirty {
			dirty++
		}
		n.lines[i] = naiveLine{}
	}
	return dirty
}

func (n *naiveCache) contains(addr uint32) bool {
	set := int((addr >> n.offBits) & uint32(n.cfg.Sets-1))
	tag := addr >> (n.offBits + n.idxBits)
	for w := 0; w < n.cfg.Ways; w++ {
		ln := n.lines[set*n.cfg.Ways+w]
		if n.enabled[w] && ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// TestPropertyInterleavedOpsMatchNaiveModel differentially proves mask
// maintenance under mode switches: a random interleaving of scalar
// accesses, batched slabs, way gating, flushes and state queries must
// behave identically on the SoA engine and the naive per-line model —
// not just under steady-state replay, where a stale mask bit or memo
// could hide.
func TestPropertyInterleavedOpsMatchNaiveModel(t *testing.T) {
	configs := []Config{
		{Sets: 32, Ways: 8, LineBytes: 32}, // the paper's L1
		{Sets: 4, Ways: 2, LineBytes: 16},  // tiny: constant conflicts
		{Sets: 8, Ways: 1, LineBytes: 32},  // direct-mapped: no victim scan
		{Sets: 1, Ways: 64, LineBytes: 32}, // full mask word, one set
	}
	for _, cfg := range configs {
		c := MustNew(cfg)
		ref := newNaive(cfg)
		rng := rand.New(rand.NewSource(int64(cfg.Sets*100 + cfg.Ways)))
		// Address pool small enough for heavy reuse (hits and conflicts),
		// with a sequential cursor mixed in so consecutive accesses often
		// share a line — the last-line memo path must face real traffic,
		// not only cold jumps.
		addrSpace := uint32(cfg.SizeBytes() * 4)
		var cursor uint32
		randAddr := func() uint32 {
			if rng.Intn(2) == 0 {
				cursor = (cursor + 4) % addrSpace
				return cursor
			}
			return rng.Uint32() % addrSpace
		}
		ops := make([]Op, 512)
		res := make([]Result, 512)
		for step := 0; step < 30_000; step++ {
			switch k := rng.Intn(100); {
			case k < 60: // scalar access
				addr, write := randAddr(), rng.Intn(4) == 0
				got := c.Access(addr, write)
				want := ref.access(addr, write)
				if got != want {
					t.Fatalf("cfg %+v step %d: Access(%#x, %v) = %+v, naive model %+v",
						cfg, step, addr, write, got, want)
				}
			case k < 85: // batched slab of 1..512 ops
				n := 1 + rng.Intn(len(ops))
				for i := 0; i < n; i++ {
					ops[i] = Op{Addr: randAddr(), Write: rng.Intn(4) == 0}
				}
				c.AccessBatch(ops[:n], res[:n])
				for i := 0; i < n; i++ {
					want := ref.access(ops[i].Addr, ops[i].Write)
					if res[i] != want {
						t.Fatalf("cfg %+v step %d: batch op %d (%+v) = %+v, naive model %+v",
							cfg, step, i, ops[i], res[i], want)
					}
				}
			case k < 95: // gate a way on or off (never the last one off)
				way := rng.Intn(cfg.Ways)
				on := rng.Intn(2) == 0
				if !on && c.EnabledWays() == 1 && c.WayEnabled(way) {
					on = true
				}
				c.SetWayEnabled(way, on)
				ref.setWayEnabled(way, on)
				if c.EnabledWays() != ref.enabledWays() {
					t.Fatalf("cfg %+v step %d: EnabledWays %d, naive model %d",
						cfg, step, c.EnabledWays(), ref.enabledWays())
				}
			default: // flush (mode-switch write-back)
				got, want := c.Flush(), ref.flush()
				if got != want {
					t.Fatalf("cfg %+v step %d: Flush wrote back %d lines, naive model %d",
						cfg, step, got, want)
				}
			}
			if step%97 == 0 { // periodic read-only state probe
				addr := randAddr()
				if c.Contains(addr) != ref.contains(addr) {
					t.Fatalf("cfg %+v step %d: Contains(%#x) diverged", cfg, step, addr)
				}
			}
		}
		// Final state sweep: every line-aligned address agrees.
		for a := uint32(0); a < addrSpace; a += uint32(cfg.LineBytes) {
			if c.Contains(a) != ref.contains(a) {
				t.Fatalf("cfg %+v: final state diverged at %#x", cfg, a)
			}
		}
	}
}
