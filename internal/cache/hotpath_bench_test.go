package cache

import (
	"math/rand"
	"testing"
)

// benchOps builds a deterministic access mix over the paper geometry:
// three quarters of the references revisit a 64-line hot set (hits once
// warm), the rest are uniform random (conflict and capacity misses), a
// quarter of everything writes. The mix keeps both the probe loop and
// the victim-selection path of the simulator honest.
func benchOps(n int) []Op {
	rng := rand.New(rand.NewSource(42))
	hot := make([]uint32, 64)
	for i := range hot {
		hot[i] = rng.Uint32()
	}
	ops := make([]Op, n)
	for i := range ops {
		addr := hot[rng.Intn(len(hot))]
		if rng.Intn(4) == 0 {
			addr = rng.Uint32()
		}
		ops[i] = Op{Addr: addr, Write: rng.Intn(4) == 0}
	}
	return ops
}

// benchCache builds the paper-geometry cache with the given number of
// enabled ways (gating the rest, as ULE mode does).
func benchCache(b *testing.B, enabledWays int) *Cache {
	b.Helper()
	c := MustNew(Config{Sets: 32, Ways: 8, LineBytes: 32})
	for w := 0; w < 8-enabledWays; w++ {
		c.SetWayEnabled(w, false)
	}
	return c
}

// BenchmarkCacheAccess pins the scalar hot path: one Access call per
// op, at full associativity and in the single-way ULE configuration.
func BenchmarkCacheAccess(b *testing.B) {
	ops := benchOps(1 << 16)
	for _, ways := range []int{8, 1} {
		name := map[int]string{8: "ways8", 1: "ways1"}[ways]
		b.Run(name, func(b *testing.B) {
			c := benchCache(b, ways)
			b.ReportAllocs()
			b.ResetTimer()
			hits := 0
			for i := 0; i < b.N; i++ {
				op := ops[i&(len(ops)-1)]
				if c.Access(op.Addr, op.Write).Hit {
					hits++
				}
			}
			_ = hits
		})
	}
}

// BenchmarkCacheAccessBatch pins the batched entry point the replay
// loops use: one AccessBatch call per 4096-op chunk, same mix as
// BenchmarkCacheAccess.
func BenchmarkCacheAccessBatch(b *testing.B) {
	const chunk = 4096
	ops := benchOps(1 << 16)
	res := make([]Result, chunk)
	for _, ways := range []int{8, 1} {
		name := map[int]string{8: "ways8", 1: "ways1"}[ways]
		b.Run(name, func(b *testing.B) {
			c := benchCache(b, ways)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += chunk {
				n := b.N - done
				if n > chunk {
					n = chunk
				}
				start := done % (len(ops) - chunk)
				c.AccessBatch(ops[start:start+n], res[:n])
			}
		})
	}
}
