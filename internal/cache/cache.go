// Package cache implements the set-associative cache simulator underlying
// both L1 caches of the evaluation platform: true-LRU replacement,
// write-back write-allocate policy, and per-way enable/disable — the
// mechanism the hybrid architecture uses to gate the HP ways off at ULE
// mode (gated-Vdd, Powell et al.).
//
// The simulator is laid out structure-of-arrays: tags and LRU ticks live
// in parallel slabs (sets × ways, row-major), while the valid, dirty and
// enabled flags are packed one bit per way into per-set mask words. A
// set probe is therefore a short contiguous tag scan gated by a single
// mask word, the all-ways-off guard is one compare against the enabled
// mask (maintained by SetWayEnabled, never re-derived per access), and
// Flush/SetWayEnabled clear whole sets with bulk mask operations. The
// layout caps associativity at 64 ways — far beyond the paper's 8 — so
// every way state of a set fits one machine word.
package cache

import (
	"fmt"
	"math/bits"
)

// Config is the geometry of one cache.
type Config struct {
	Sets      int // number of sets (power of two)
	Ways      int // associativity (at most 64 — way flags pack into one word)
	LineBytes int // line size in bytes (power of two)
}

// SizeBytes returns the total data capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Validate reports whether the geometry is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache: ways %d exceeds the 64-way packed-mask limit", c.Ways)
	}
	return nil
}

// Result describes one access.
type Result struct {
	Hit       bool
	Way       int    // way hit, or way filled on a miss
	Evicted   bool   // a valid line was displaced
	Writeback bool   // the displaced line was dirty (memory write traffic)
	Victim    uint32 // line address of the displaced line, valid iff Evicted
}

// Cache is a set-associative cache with per-way gating. A Cache holds
// per-run mutable state and is not safe for concurrent use; concurrent
// simulations each build their own (core.System does this per run).
type Cache struct {
	cfg  Config
	ways int

	// Parallel slabs, sets × ways row-major: the tag and last-touch
	// tick of every line.
	tags []uint32
	lru  []uint64

	// Per-set packed way masks: bit w of valid[s]/dirty[s] is the
	// valid/dirty flag of way w in set s. dirty is always a subset of
	// valid. Lines in invalid ways may hold stale tags and ticks — both
	// are only ever read under the valid mask.
	valid []uint64
	dirty []uint64

	// enabled is the powered-way mask, maintained by SetWayEnabled.
	// enabled == 0 is the all-ways-gated state every access path guards
	// against with a single compare.
	enabled uint64

	tick    uint64
	offBits uint
	idxBits uint

	// Last-line memo: the (set, tag, way) of the immediately preceding
	// access. Between two consecutive accesses nothing else mutates the
	// cache (a Cache is single-goroutine, and Flush/SetWayEnabled
	// invalidate the memo), so an access to the same line is provably a
	// hit at the same way — no probe, no victim scan. Sequential fetch
	// (several instructions per line) and streaming data make this the
	// most common case of real replay.
	mSet int32 // -1 when the memo is invalid
	mWay int32
	mTag uint32
}

// New builds a cache with all ways enabled.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:     cfg,
		ways:    cfg.Ways,
		tags:    make([]uint32, cfg.Sets*cfg.Ways),
		lru:     make([]uint64, cfg.Sets*cfg.Ways),
		valid:   make([]uint64, cfg.Sets),
		dirty:   make([]uint64, cfg.Sets),
		enabled: ^uint64(0) >> (64 - uint(cfg.Ways)),
		offBits: uint(bits.TrailingZeros32(uint32(cfg.LineBytes))),
		idxBits: uint(bits.TrailingZeros32(uint32(cfg.Sets))),
		mSet:    -1,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetWayEnabled gates one way on or off. Disabling a way invalidates its
// contents (gated-Vdd loses state) — one mask-bit clear per set, no line
// walk; the caller is responsible for any write-back policy at mode
// switches (the architecture flushes before switching).
func (c *Cache) SetWayEnabled(way int, on bool) {
	if way < 0 || way >= c.ways {
		panic(fmt.Sprintf("cache: way %d out of range", way))
	}
	c.mSet = -1 // line validity may change under the memo
	bit := uint64(1) << uint(way)
	if on {
		c.enabled |= bit
		return
	}
	for set := range c.valid {
		c.valid[set] &^= bit
		c.dirty[set] &^= bit
	}
	c.enabled &^= bit
}

// WayEnabled reports whether a way is powered.
func (c *Cache) WayEnabled(way int) bool { return c.enabled&(uint64(1)<<uint(way)) != 0 }

// EnabledWays returns the number of powered ways (one popcount of the
// enabled mask).
func (c *Cache) EnabledWays() int { return bits.OnesCount64(c.enabled) }

// Access performs a read (write=false) or write (write=true) with
// write-allocate semantics: misses always fill the line into the LRU
// enabled way.
func (c *Cache) Access(addr uint32, write bool) Result {
	if c.enabled == 0 {
		panic("cache: access with all ways gated off")
	}
	set := int((addr >> c.offBits) & uint32(c.cfg.Sets-1))
	tag := addr >> (c.offBits + c.idxBits)
	c.tick++

	// Same line as the previous access: a guaranteed hit at the same
	// way — nothing can have displaced it in between. AccessBatch
	// carries the identical fast path inline in its loop; the property
	// and differential tests hold the two to one behaviour.
	if int32(set) == c.mSet && tag == c.mTag {
		w := int(c.mWay)
		c.lru[set*c.ways+w] = c.tick
		if write {
			c.dirty[set] |= uint64(1) << uint(w)
		}
		return Result{Hit: true, Way: w}
	}
	return c.accessSlow(set, tag, write)
}

// accessSlow is the probe-and-fill path shared by Access and
// AccessBatch, entered once the last-line memo has missed; the caller
// has already split the address, bumped the tick and established that
// at least one way is enabled (SetWayEnabled cannot run mid-batch — a
// Cache is single-goroutine). It leaves the memo pointing at the line
// it touched.
func (c *Cache) accessSlow(set int, tag uint32, write bool) Result {
	base := set * c.ways

	// Probe: one mask word selects the live ways; the tag scan walks
	// only their contiguous uint32 row entries (cost tracks the number
	// of powered, valid ways, not the nominal associativity).
	tags := c.tags[base : base+c.ways]
	for live := c.valid[set] & c.enabled; live != 0; live &= live - 1 {
		w := bits.TrailingZeros64(live)
		if tags[w] == tag {
			c.lru[base+w] = c.tick
			if write {
				c.dirty[set] |= uint64(1) << uint(w)
			}
			c.mSet, c.mWay, c.mTag = int32(set), int32(w), tag
			return Result{Hit: true, Way: w}
		}
	}

	// Miss: fill the lowest invalid enabled way if one exists, else the
	// least-recently-used enabled way.
	var victim int
	if avail := c.enabled &^ c.valid[set]; avail != 0 {
		victim = bits.TrailingZeros64(avail)
	} else {
		lru := c.lru[base : base+c.ways]
		oldest := ^uint64(0)
		for en := c.enabled; en != 0; en &= en - 1 {
			w := bits.TrailingZeros64(en)
			if lru[w] < oldest {
				oldest, victim = lru[w], w
			}
		}
	}
	bit := uint64(1) << uint(victim)
	res := Result{
		Way:       victim,
		Evicted:   c.valid[set]&bit != 0,
		Writeback: c.valid[set]&c.dirty[set]&bit != 0,
	}
	if res.Evicted {
		// Reconstruct the displaced line's address from its tag before
		// the fill overwrites it — the next level needs it to absorb the
		// write-back.
		res.Victim = tags[victim]<<(c.offBits+c.idxBits) | uint32(set)<<c.offBits
	}
	c.valid[set] |= bit
	if write {
		c.dirty[set] |= bit
	} else {
		c.dirty[set] &^= bit
	}
	tags[victim] = tag
	c.lru[base+victim] = c.tick
	c.mSet, c.mWay, c.mTag = int32(set), int32(victim), tag
	return res
}

// Op is one access of a batch.
type Op struct {
	Addr  uint32
	Write bool
}

// AccessBatch performs the ops in order, writing the i-th access's
// outcome into res[i]. It is semantically identical to calling Access in
// a loop — same state transitions, same results — but the all-ways-off
// guard is hoisted to one compare per batch, the geometry and memo live
// in registers across the chunk, and the last-line fast path runs
// inline: one inner loop over the SoA state with a single call out only
// when a probe is actually needed. This is the loop the cpu package's
// batched replay rides on.
func (c *Cache) AccessBatch(ops []Op, res []Result) {
	if len(res) < len(ops) {
		panic(fmt.Sprintf("cache: AccessBatch result buffer %d too small for %d ops", len(res), len(ops)))
	}
	if len(ops) == 0 {
		return
	}
	if c.enabled == 0 {
		panic("cache: access with all ways gated off")
	}
	res = res[:len(ops)]
	offBits, idxBits := c.offBits, c.offBits+c.idxBits
	setMask := uint32(c.cfg.Sets - 1)
	mSet, mWay, mTag := c.mSet, int(c.mWay), c.mTag
	for i := range ops {
		addr, write := ops[i].Addr, ops[i].Write
		set := int((addr >> offBits) & setMask)
		tag := addr >> idxBits
		c.tick++
		if int32(set) == mSet && tag == mTag {
			c.lru[set*c.ways+mWay] = c.tick
			if write {
				c.dirty[set] |= uint64(1) << uint(mWay)
			}
			res[i] = Result{Hit: true, Way: mWay}
			continue
		}
		res[i] = c.accessSlow(set, tag, write)
		mSet, mWay, mTag = c.mSet, int(c.mWay), c.mTag
	}
}

// Contains reports whether the address currently hits (without touching
// LRU state) — a test and debugging helper.
func (c *Cache) Contains(addr uint32) bool {
	set := int((addr >> c.offBits) & uint32(c.cfg.Sets-1))
	tag := addr >> (c.offBits + c.idxBits)
	tags := c.tags[set*c.ways : set*c.ways+c.ways]
	for live := c.valid[set] & c.enabled; live != 0; live &= live - 1 {
		if tags[bits.TrailingZeros64(live)] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache and returns the number of dirty
// lines that would be written back (the mode-switch cost). One popcount
// and two mask clears per set — no line walk.
func (c *Cache) Flush() int {
	c.mSet = -1
	dirty := 0
	for set := range c.valid {
		dirty += bits.OnesCount64(c.valid[set] & c.dirty[set])
		c.valid[set] = 0
		c.dirty[set] = 0
	}
	return dirty
}

// DrainDirty invalidates the whole cache like Flush, but additionally
// reports the line address of every dirty line through emit, in
// deterministic order (sets ascending, ways ascending within a set). It
// returns the number of dirty lines. The Hierarchy uses it to drain an
// L1 into its L2 as one write batch; callers that only need the count
// should use Flush, which never walks lines.
func (c *Cache) DrainDirty(emit func(addr uint32)) int {
	c.mSet = -1
	dirty := 0
	for set := range c.valid {
		for live := c.valid[set] & c.dirty[set]; live != 0; live &= live - 1 {
			w := bits.TrailingZeros64(live)
			emit(c.tags[set*c.ways+w]<<(c.offBits+c.idxBits) | uint32(set)<<c.offBits)
			dirty++
		}
		c.valid[set] = 0
		c.dirty[set] = 0
	}
	return dirty
}

// LineAddr returns the line-aligned address, for callers that track
// per-line state.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.LineBytes) - 1)
}
