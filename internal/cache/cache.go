// Package cache implements the set-associative cache simulator underlying
// both L1 caches of the evaluation platform: true-LRU replacement,
// write-back write-allocate policy, and per-way enable/disable — the
// mechanism the hybrid architecture uses to gate the HP ways off at ULE
// mode (gated-Vdd, Powell et al.).
package cache

import (
	"fmt"
	"math/bits"
)

// Config is the geometry of one cache.
type Config struct {
	Sets      int // number of sets (power of two)
	Ways      int // associativity
	LineBytes int // line size in bytes (power of two)
}

// SizeBytes returns the total data capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Validate reports whether the geometry is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64 // last-touch tick; larger = more recent
}

// Result describes one access.
type Result struct {
	Hit       bool
	Way       int  // way hit, or way filled on a miss
	Evicted   bool // a valid line was displaced
	Writeback bool // the displaced line was dirty (memory write traffic)
}

// Cache is a set-associative cache with per-way gating. A Cache holds
// per-run mutable state and is not safe for concurrent use; concurrent
// simulations each build their own (core.System does this per run).
type Cache struct {
	cfg     Config
	lines   []line // sets × ways, row-major by set
	enabled []bool
	tick    uint64
	offBits uint
	idxBits uint
}

// New builds a cache with all ways enabled.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:     cfg,
		lines:   make([]line, cfg.Sets*cfg.Ways),
		enabled: make([]bool, cfg.Ways),
		offBits: uint(bits.TrailingZeros32(uint32(cfg.LineBytes))),
		idxBits: uint(bits.TrailingZeros32(uint32(cfg.Sets))),
	}
	for i := range c.enabled {
		c.enabled[i] = true
	}
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetWayEnabled gates one way on or off. Disabling a way invalidates its
// contents (gated-Vdd loses state); the caller is responsible for any
// write-back policy at mode switches (the architecture flushes before
// switching).
func (c *Cache) SetWayEnabled(way int, on bool) {
	if way < 0 || way >= c.cfg.Ways {
		panic(fmt.Sprintf("cache: way %d out of range", way))
	}
	if !on {
		for set := 0; set < c.cfg.Sets; set++ {
			c.lines[set*c.cfg.Ways+way] = line{}
		}
	}
	c.enabled[way] = on
}

// WayEnabled reports whether a way is powered.
func (c *Cache) WayEnabled(way int) bool { return c.enabled[way] }

// EnabledWays returns the number of powered ways.
func (c *Cache) EnabledWays() int {
	n := 0
	for _, e := range c.enabled {
		if e {
			n++
		}
	}
	return n
}

// index and tag decomposition of an address.
func (c *Cache) split(addr uint32) (set int, tag uint32) {
	set = int((addr >> c.offBits) & uint32(c.cfg.Sets-1))
	tag = addr >> (c.offBits + c.idxBits)
	return set, tag
}

// Access performs a read (write=false) or write (write=true) with
// write-allocate semantics: misses always fill the line into the LRU
// enabled way.
func (c *Cache) Access(addr uint32, write bool) Result {
	if c.EnabledWays() == 0 {
		panic("cache: access with all ways gated off")
	}
	set, tag := c.split(addr)
	base := set * c.cfg.Ways
	c.tick++

	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if c.enabled[w] && ln.valid && ln.tag == tag {
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			return Result{Hit: true, Way: w}
		}
	}

	// Miss: pick an invalid enabled way, else the LRU enabled way.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.enabled[w] {
			continue
		}
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = w
		}
	}
	ln := &c.lines[base+victim]
	res := Result{Way: victim, Evicted: ln.valid, Writeback: ln.valid && ln.dirty}
	*ln = line{valid: true, tag: tag, lru: c.tick, dirty: write}
	return res
}

// Op is one access of a batch.
type Op struct {
	Addr  uint32
	Write bool
}

// AccessBatch performs the ops in order, writing the i-th access's
// outcome into res[i]. It is semantically identical to calling Access in
// a loop — same state transitions, same results — but hot replay loops
// pay one call per chunk instead of one dynamic dispatch per access,
// which is what the cpu package's batched fast path relies on.
func (c *Cache) AccessBatch(ops []Op, res []Result) {
	if len(res) < len(ops) {
		panic(fmt.Sprintf("cache: AccessBatch result buffer %d too small for %d ops", len(res), len(ops)))
	}
	for i, op := range ops {
		res[i] = c.Access(op.Addr, op.Write)
	}
}

// Contains reports whether the address currently hits (without touching
// LRU state) — a test and debugging helper.
func (c *Cache) Contains(addr uint32) bool {
	set, tag := c.split(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.lines[base+w]
		if c.enabled[w] && ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache and returns the number of dirty
// lines that would be written back (the mode-switch cost).
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
	}
	for i := range c.lines {
		c.lines[i] = line{}
	}
	return dirty
}

// LineAddr returns the line-aligned address, for callers that track
// per-line state.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.LineBytes) - 1)
}
