package cache

import (
	"fmt"
	"math/bits"
)

// StackProfile is a Mattson-style single-pass LRU profiler: one replay
// of a reference stream yields the hit/miss counts of *every*
// set-associative LRU cache with the profile's set count and line size
// and associativity 1..MaxWays. It is the one-pass engine behind the
// corpus-miss capacity axis, collapsing the per-associativity replays
// (1, 2, 4, 8 ways over the same arena) into one pass plus an
// O(histogram) readout per geometry.
//
// The profiler keeps, per set, the distinct line tags in MRU-first
// order. Each access records the referenced tag's depth in that stack —
// its LRU stack distance — then moves it to the front. By the LRU
// inclusion property, a reference with stack distance d hits in an
// a-way set-associative LRU cache exactly when d < a: the a most
// recently used lines of a set are the same regardless of
// associativity, so deeper caches strictly contain shallower ones.
// Cold references (tag not in the stack) miss at every associativity.
// Cache's fill policy — lowest invalid way first, then LRU victim —
// preserves exactly this behaviour, which is what the property test
// pins down: Misses(a) is bit-identical to replaying the stream
// through a standalone a-way Cache with all ways enabled.
//
// Reads and writes are deliberately not distinguished: with
// write-allocate and no way gating, the hit/miss outcome of an access
// does not depend on the write bit, only dirty-line bookkeeping does —
// and capacity profiling needs only hits and misses.
//
// A StackProfile holds per-run mutable state and is not safe for
// concurrent use.
type StackProfile struct {
	// stacks is sets × MaxWays tag slots, row-major, each row MRU-first.
	// Only the first depth[set] slots of a row are live.
	stacks []uint32
	depth  []uint8
	// hist[d] counts references with stack distance d; hist[MaxWays]
	// counts everything deeper — cold references and distances beyond
	// the profiled range, which miss at every associativity ≤ MaxWays.
	hist    []uint64
	refs    uint64
	offBits uint32
	idxBits uint32
	sets    uint32
	ways    uint32
}

// NewStackProfile builds a profiler for cfg's set count and line size,
// profiling associativities 1..cfg.Ways. The configuration is validated
// exactly as a Cache's would be.
func NewStackProfile(cfg Config) (*StackProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &StackProfile{
		stacks:  make([]uint32, cfg.Sets*cfg.Ways),
		depth:   make([]uint8, cfg.Sets),
		hist:    make([]uint64, cfg.Ways+1),
		offBits: uint32(bits.TrailingZeros32(uint32(cfg.LineBytes))),
		idxBits: uint32(bits.TrailingZeros32(uint32(cfg.Sets))),
		sets:    uint32(cfg.Sets),
		ways:    uint32(cfg.Ways),
	}
	return p, nil
}

// MustNewStackProfile is NewStackProfile, panicking on invalid
// configuration.
func MustNewStackProfile(cfg Config) *StackProfile {
	p, err := NewStackProfile(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// MaxWays returns the largest associativity the profile covers.
func (p *StackProfile) MaxWays() int { return int(p.ways) }

// Access records one reference.
func (p *StackProfile) Access(addr uint32) {
	line := addr >> p.offBits
	set := line & (p.sets - 1)
	tag := line >> p.idxBits
	row := p.stacks[uint64(set)*uint64(p.ways) : uint64(set+1)*uint64(p.ways)]
	d := int(p.depth[set])

	// Find the tag's stack distance and shift everything above it down
	// one slot in the same scan: carry holds the tag displaced from the
	// slot above (starting with the accessed tag itself going into the
	// MRU slot), and the scan stops where the accessed tag was found —
	// that slot absorbs the carry, completing the MRU move.
	dist := int(p.ways) // sentinel: cold / beyond profiled range
	carry := tag
	for i := 0; i < d; i++ {
		t := row[i]
		row[i] = carry
		if t == tag {
			dist = i
			break
		}
		carry = t
	}
	if dist == int(p.ways) {
		// Cold reference: the whole live prefix shifted down; the carry
		// (the former LRU tag) either grows the stack or falls off the
		// profiled range.
		if d < int(p.ways) {
			row[d] = carry
			p.depth[set] = uint8(d + 1)
		}
	}
	p.hist[dist]++
	p.refs++
}

// AccessBatch records ops in order. Only the addresses matter; the
// write bits are ignored (see the type comment).
func (p *StackProfile) AccessBatch(ops []Op) {
	for i := range ops {
		p.Access(ops[i].Addr)
	}
}

// Refs returns the total number of references profiled.
func (p *StackProfile) Refs() uint64 { return p.refs }

// Hist returns a copy of the stack-distance histogram: Hist()[d] is the
// number of references at distance d, and Hist()[MaxWays()] counts cold
// and deeper-than-profiled references.
func (p *StackProfile) Hist() []uint64 {
	h := make([]uint64, len(p.hist))
	copy(h, p.hist)
	return h
}

// Misses returns the miss count of a ways-associative LRU cache with
// the profile's sets and line size: every reference whose stack
// distance is ≥ ways. ways must be in 1..MaxWays.
func (p *StackProfile) Misses(ways int) uint64 {
	if ways < 1 || ways > int(p.ways) {
		panic(fmt.Sprintf("cache: StackProfile.Misses(%d) outside profiled range 1..%d", ways, p.ways))
	}
	hits := uint64(0)
	for d := 0; d < ways; d++ {
		hits += p.hist[d]
	}
	return p.refs - hits
}

// Reset clears all profiled state, keeping the geometry.
func (p *StackProfile) Reset() {
	for i := range p.depth {
		p.depth[i] = 0
	}
	for i := range p.hist {
		p.hist[i] = 0
	}
	p.refs = 0
}
