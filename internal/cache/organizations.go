package cache

// The paper notes (Section III-A) that "significant parts of our study
// can be easily reused for direct-mapped and fully-associative caches";
// these constructors make the other organisations first-class so the
// yield/energy pipeline can be pointed at them directly.

// DirectMapped returns the geometry of a direct-mapped cache with the
// given number of lines.
func DirectMapped(lines, lineBytes int) Config {
	return Config{Sets: lines, Ways: 1, LineBytes: lineBytes}
}

// FullyAssociative returns the geometry of a fully-associative cache
// with the given number of lines.
func FullyAssociative(lines, lineBytes int) Config {
	return Config{Sets: 1, Ways: lines, LineBytes: lineBytes}
}

// IsDirectMapped reports whether the geometry has a single way.
func (c Config) IsDirectMapped() bool { return c.Ways == 1 }

// IsFullyAssociative reports whether the geometry has a single set.
func (c Config) IsFullyAssociative() bool { return c.Sets == 1 }
