package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("missing rule:\n%s", out)
	}
}

func TestTableRowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong-arity row must panic")
		}
	}()
	NewTable("a", "b").AddRow("only-one")
}

func TestStackedBarWidthAndTotal(t *testing.T) {
	bar := StackedBar("label", []Segment{
		{Rune: 'D', Value: 0.5},
		{Rune: 'L', Value: 0.25},
	}, 1.0, 40)
	if !strings.Contains(bar, "0.750") {
		t.Errorf("total missing: %q", bar)
	}
	inner := bar[strings.Index(bar, "|")+1 : strings.LastIndex(bar, "|")]
	if len(inner) != 40 {
		t.Errorf("bar body %d chars, want 40", len(inner))
	}
	if strings.Count(inner, "D") != 20 || strings.Count(inner, "L") != 10 {
		t.Errorf("segment widths wrong: %q", inner)
	}
}

func TestStackedBarClamps(t *testing.T) {
	bar := StackedBar("x", []Segment{{Rune: '#', Value: 2.0}}, 1.0, 10)
	inner := bar[strings.Index(bar, "|")+1 : strings.LastIndex(bar, "|")]
	if len(inner) != 10 {
		t.Errorf("overflow not clamped: %q", inner)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "+12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
}
