// Package stats renders the experiment outputs: aligned ASCII tables for
// the sizing/area/yield results and stacked horizontal bars for the
// normalized EPI breakdowns of Figures 3 and 4.
package stats

import (
	"fmt"
	"strings"
)

// Table is a minimal column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; it must have exactly one cell per column.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Segment is one component of a stacked bar.
type Segment struct {
	Rune  rune    // glyph used to fill this segment
	Value float64 // component value (same unit as the bar scale)
}

// StackedBar renders one horizontal stacked bar. scale is the value that
// maps to full width (the baseline total for normalized EPI plots).
func StackedBar(label string, segments []Segment, scale float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s |", label)
	total := 0.0
	used := 0
	for _, s := range segments {
		total += s.Value
		n := int(s.Value/scale*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		b.WriteString(strings.Repeat(string(s.Rune), n))
		used += n
	}
	if used < width {
		b.WriteString(strings.Repeat(" ", width-used))
	}
	fmt.Fprintf(&b, "| %.3f", total/scale)
	return b.String()
}

// Pct formats a fraction as a signed percentage.
func Pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
