package core

import (
	"fmt"
	"io"

	"edcache/internal/trace"
)

// Trace capture from live simulation: the ROADMAP's missing loop
// closer. RunStreamCapture and RunDutyCycleCapture tee every replayed
// instruction into a v2 trace sink while the run proceeds normally, so
// a live segment — a duty-cycle schedule, a generator stream, anything
// — becomes an archived trace that later offline sweeps replay
// byte-identically (and, because the tee is transparent, with
// bit-identical cpu.Stats).

// teeStream is the common surface of trace.TeeStream/TeeBatchStream.
type teeStream interface {
	trace.Stream
	Err() error
}

// RunStreamCapture is RunStream with live capture: the stream is teed
// into sink as a v2 trace while it replays. Phase annotations are
// captured automatically (o.Phases is forced on for phase-annotated
// streams), so the captured file reproduces the per-phase segmentation
// of the live report. The sink holds a complete, finalised container
// when RunStreamCapture returns without error.
func (s *System) RunStreamCapture(name string, stream trace.Stream, m Mode, sink io.Writer, o trace.V2Options) (Report, error) {
	if trace.HasPhases(stream) {
		o.Phases = true
	}
	vw, err := trace.NewV2Writer(sink, o)
	if err != nil {
		return Report{}, err
	}
	var tee teeStream
	if bs, ok := stream.(trace.BatchStream); ok {
		tee = trace.TeeBatch(bs, vw)
	} else {
		tee = trace.Tee(stream, vw)
	}
	rep, err := s.RunStream(name, tee, m)
	if err != nil {
		return Report{}, err
	}
	if err := tee.Err(); err != nil {
		return Report{}, fmt.Errorf("core: capture sink: %w", err)
	}
	if err := vw.Close(); err != nil {
		return Report{}, fmt.Errorf("core: capture sink: %w", err)
	}
	return rep, nil
}

// RunDutyCycleCapture is RunDutyCycle with live capture: the whole
// schedule is recorded into sink as one phase-annotated v2 trace, each
// instruction stamped with its schedule-phase index (overriding any
// phase ids the workload generators emit — the schedule is the regime
// of interest here). Replaying the captured file through RunStream
// yields per-phase metrics segmented exactly at the live schedule's
// boundaries. Schedules longer than 256 phases do not fit the phase-id
// byte and are rejected.
func (s *System) RunDutyCycleCapture(phases []Phase, sink io.Writer, o trace.V2Options) (DutyCycleResult, error) {
	if len(phases) > 256 {
		return DutyCycleResult{}, fmt.Errorf("core: %d schedule phases exceed the 256 phase ids of the trace format", len(phases))
	}
	o.Phases = true
	vw, err := trace.NewV2Writer(sink, o)
	if err != nil {
		return DutyCycleResult{}, err
	}
	out, err := s.runDutyCycle(phases, func(i int, ph Phase) (Report, error) {
		tee := trace.TeeBatch(trace.WithPhase(ph.Workload.Stream(), uint8(i)), vw)
		rep, err := s.RunStream(ph.Workload.Name, tee, ph.Mode)
		if err == nil && tee.Err() != nil {
			err = fmt.Errorf("capture sink: %w", tee.Err())
		}
		return rep, err
	})
	if err != nil {
		return DutyCycleResult{}, err
	}
	if err := vw.Close(); err != nil {
		return DutyCycleResult{}, fmt.Errorf("core: capture sink: %w", err)
	}
	return out, nil
}
