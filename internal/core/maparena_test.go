package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// The MapArena differential oracle: the mmap-backed slab must be a
// drop-in replacement for the materialized one at the full-system
// level — identical Reports (stats, cycles, energy, per-phase
// segmentation) out of RunGroupArena and RunArena for randomized
// workloads, not just identical record sequences.

// writeWorkloadTrace serialises a workload as a checksummed, indexed
// v2.1 file and returns both slab representations.
func writeWorkloadTrace(t *testing.T, w bench.Workload) (*trace.Arena, *trace.MapArena) {
	t.Helper()
	path := filepath.Join(t.TempDir(), w.Name+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := trace.WriteV2(f, w.Stream(), trace.V2Options{
		ChunkRecords: 512, Phases: w.HasPhases(), Checksums: true, Index: true,
	})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		t.Fatal(werr)
	}
	slab, err := trace.LoadArenaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := trace.OpenMapArena(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return slab, mapped
}

func TestMapArenaOracleRunGroup(t *testing.T) {
	for _, sc := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		base := MustNewSystem(PaperConfig(sc, Baseline))
		prop := MustNewSystem(PaperConfig(sc, Proposed))
		members := []GroupMember{
			{base, ModeHP}, {prop, ModeHP}, {base, ModeULE}, {prop, ModeULE},
		}
		for _, name := range []string{"gsm_c", "ptrchase_s", "phased_mix"} {
			w, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w = w.ScaledTo(10_000)
			slab, mapped := writeWorkloadTrace(t, w)
			want, err := RunGroupArena(w.Name, slab, members)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunGroupArena(w.Name, mapped, members)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v/%s: mmap-backed group Reports diverge from slab-backed", sc, name)
			}
			for k, gm := range members {
				single, err := gm.Sys.RunArena(w.Name, mapped, gm.Mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(single, want[k]) {
					t.Errorf("%v/%s member %d: mmap RunArena Report diverges from slab group", sc, name, k)
				}
			}
			if name == "phased_mix" {
				for k := range got {
					if len(got[k].Phases) == 0 {
						t.Errorf("%v member %d: mmap replay lost the per-phase segmentation", sc, k)
					}
				}
			}
		}
	}
}
