package core

import (
	"fmt"

	"edcache/internal/bench"
	"edcache/internal/cache"
	"edcache/internal/cpu"
	"edcache/internal/sim"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// Single-pass multi-configuration replay: a group of (System, Mode)
// evaluation points that share one instruction stream is run through
// one cpu.RunMulti pass instead of one full replay per point. The
// stream is walked and classified once; only the cache accesses and
// energy tallies fan out per member — and members whose cache geometry
// and way gating coincide (baseline vs proposed at the same mode, whose
// designs differ only in cell sizing, coding and latency, none of which
// touch cache *state*) share a single simulator in the underlying
// cache.MultiCache bank, so a 4-member design×mode group typically
// simulates only 2 distinct caches per side. Reports are bit-identical
// to RunStream member by member: the ports tally the same outcomes in
// the same order, and the accounting tail is the shared assemble.

// GroupMember is one evaluation point of a replay group.
type GroupMember struct {
	Sys  *System
	Mode Mode
}

// simKey identifies cache simulators that evolve identically under any
// access sequence: same geometry, same initially-enabled way set.
// Everything else a member configures — EDC latency, cell sizing,
// energy models — lives outside the simulator state.
type simKey struct {
	cfg     cache.Config
	enabled uint64
}

// enabledMask packs a simulator's initially-enabled ways into the
// dedup key.
func enabledMask(sim *cache.Cache, ways int) uint64 {
	var m uint64
	for w := 0; w < ways; w++ {
		if sim.WayEnabled(w) {
			m |= 1 << w
		}
	}
	return m
}

// multiPort adapts one side's cache bank to cpu.MultiPort: K logical
// ports (one tally state per member) over ≤K deduplicated simulators.
type multiPort struct {
	ports []*port // logical member ports; sim points at the shared slot
	slot  []int   // member k's simulator slot in the bank
	bank  *cache.MultiCache

	// Scratch: the op chunk is converted cpu→cache once per AccessBatch,
	// and each bank slot gets one Result row; rows re-slices res to the
	// chunk length for the bank call. The op buffer (and slot 0's row)
	// come from the shared run-scratch pool.
	scr  *runScratch
	res  [][]cache.Result
	rows [][]cache.Result
}

// release returns the pooled scratch; the port must not be used after.
func (mp *multiPort) release() {
	if mp.scr != nil {
		scratchPool.Put(mp.scr)
		mp.scr = nil
	}
}

// newMultiPort builds one side's bank port, deduplicating simulators
// across members by simKey.
func newMultiPort(members []GroupMember, dside bool) (*multiPort, error) {
	mp := &multiPort{
		ports: make([]*port, len(members)),
		slot:  make([]int, len(members)),
	}
	slots := make(map[simKey]int)
	var sims []*cache.Cache
	for k, gm := range members {
		cfg := cache.Config{Sets: gm.Sys.cfg.Sets, Ways: gm.Sys.cfg.Ways, LineBytes: gm.Sys.cfg.LineBytes}
		sim := gm.Sys.newSim(gm.Mode)
		key := simKey{cfg: cfg, enabled: enabledMask(sim, cfg.Ways)}
		idx, ok := slots[key]
		if !ok {
			idx = len(sims)
			slots[key] = idx
			sims = append(sims, sim)
		}
		extra := 0
		if dside {
			extra = gm.Sys.ExtraHitLatency(gm.Mode)
		}
		mp.ports[k] = &port{sim: sims[idx], extra: extra, hpWays: gm.Sys.cfg.Ways - gm.Sys.cfg.ULEWays}
		mp.slot[k] = idx
	}
	bank, err := cache.Bank(sims...)
	if err != nil {
		return nil, err
	}
	mp.bank = bank
	mp.scr = scratchPool.Get().(*runScratch)
	mp.res = make([][]cache.Result, bank.Len())
	mp.rows = make([][]cache.Result, bank.Len())
	return mp, nil
}

// Members implements cpu.MultiPort.
func (mp *multiPort) Members() int { return len(mp.ports) }

// ExtraHitLatency implements cpu.MultiPort.
func (mp *multiPort) ExtraHitLatency(k int) int { return mp.ports[k].extra }

// AccessBatch implements cpu.MultiPort: one op conversion, one banked
// simulator pass, then each logical member folds its slot's outcomes
// into its own energy counters — the identical tally a standalone port
// performs, over the identical Result sequence.
func (mp *multiPort) AccessBatch(ops []cpu.PortOp, miss [][]bool) {
	n := len(ops)
	mp.scr.grow(n)
	if mp.res[0] == nil || cap(mp.res[0]) < n {
		mp.res[0] = mp.scr.res[:cap(mp.scr.res)]
		for s := 1; s < len(mp.res); s++ {
			mp.res[s] = make([]cache.Result, cap(mp.scr.res))
		}
	}
	co := mp.scr.ops[:n]
	for i, op := range ops {
		co[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	for s := range mp.res {
		mp.rows[s] = mp.res[s][:n]
	}
	mp.bank.AccessBatch(co, mp.rows)
	for k, p := range mp.ports {
		cr := mp.rows[mp.slot[k]]
		mk := miss[k]
		for i := range cr {
			write := co[i].Write
			if write {
				p.writes++
			} else {
				p.reads++
			}
			mk[i] = p.tally(cr[i], write)
		}
	}
}

// BeginPhase implements cpu.MultiPhasePort, snapshotting every logical
// member's counters at the boundary.
func (mp *multiPort) BeginPhase(id uint8) {
	for _, p := range mp.ports {
		p.BeginPhase(id)
	}
}

// RunGroup replays one instruction stream through every member in a
// single pass and returns one Report per member, in member order, each
// bit-identical to RunStream of that member alone. All members must
// share the same memory latency (one timing model drives the pass);
// geometry, gating, design and mode may differ freely.
func RunGroup(name string, stream trace.Stream, members []GroupMember) ([]Report, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: empty replay group")
	}
	for k, gm := range members {
		if gm.Sys == nil {
			return nil, fmt.Errorf("core: nil system in replay group member %d", k)
		}
		if gm.Sys.cfg.L2 != nil {
			return nil, fmt.Errorf("core: replay group member %d (%s) has an L2 — hierarchies replay through RunStream or RunShared, not the banked engine", k, gm.Sys.cfg.Name())
		}
		if gm.Sys.cfg.MemLatency != members[0].Sys.cfg.MemLatency {
			return nil, fmt.Errorf("core: replay group mixes memory latencies %d and %d",
				members[0].Sys.cfg.MemLatency, gm.Sys.cfg.MemLatency)
		}
	}
	il1, err := newMultiPort(members, false)
	if err != nil {
		return nil, err
	}
	defer il1.release()
	dl1, err := newMultiPort(members, true)
	if err != nil {
		return nil, err
	}
	defer dl1.release()
	stats, err := cpu.RunMulti(cpu.Config{MemLatency: members[0].Sys.cfg.MemLatency}, il1, dl1, stream)
	if err != nil {
		return nil, err
	}
	reports := make([]Report, len(members))
	for k, gm := range members {
		rep, err := gm.Sys.assemble(name, gm.Mode, stats[k], il1.ports[k], dl1.ports[k])
		if err != nil {
			return nil, fmt.Errorf("core: %s group member %d (%s/%v): %w",
				name, k, gm.Sys.cfg.Name(), gm.Mode, err)
		}
		reports[k] = rep
	}
	return reports, nil
}

// RunGroupArena is RunGroup over a prepared slab (materialized or
// mmap-backed): the group shares one fresh cursor, so an N-member
// group costs one slab walk total.
func RunGroupArena(name string, a trace.Slab, members []GroupMember) ([]Report, error) {
	return RunGroup(name, a.NewCursor(), members)
}

// RunPairsMulti is RunPairsArena on the single-pass engine: per
// workload, baseline and proposed replay the shared slab as one
// two-member group (one slab walk, one classification, and — the
// designs' cache behaviour being identical at equal mode — one cache
// simulation per side). Pairs are bit-identical to RunPairsArena for
// any worker count.
func RunPairsMulti(s yield.Scenario, m Mode, workloads []bench.Workload, arenas *bench.ArenaCache, workers int) ([]Pair, error) {
	return runPairsGrouped(s, m, workloads, workers, func(base, prop *System, w bench.Workload) ([]Report, error) {
		return RunGroupArena(w.Name, arenas.Get(w), []GroupMember{{base, m}, {prop, m}})
	})
}

// runPairsGrouped mirrors runPairsOn with a group evaluation per
// workload: runGroup returns the [baseline, proposed] reports from one
// shared pass.
func runPairsGrouped(s yield.Scenario, m Mode, workloads []bench.Workload, workers int, runGroup func(base, prop *System, w bench.Workload) ([]Report, error)) ([]Pair, error) {
	base, err := NewSystem(PaperConfig(s, Baseline))
	if err != nil {
		return nil, err
	}
	prop, err := NewSystem(PaperConfig(s, Proposed))
	if err != nil {
		return nil, err
	}
	return sim.Map(workers, len(workloads), func(i int) (Pair, error) {
		w := workloads[i]
		reps, err := runGroup(base, prop, w)
		if err != nil {
			return Pair{}, fmt.Errorf("core: %s: %w", w.Name, err)
		}
		return Pair{Workload: w.Name, Base: reps[0], Prop: reps[1]}, nil
	})
}
