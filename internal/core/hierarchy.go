package core

import (
	"fmt"

	"edcache/internal/cpu"
	"edcache/internal/trace"
)

// RunShared replays one stream per core through private L1 pairs that
// all feed one shared L2, and returns one Report per core. The system
// must be configured with a second level (Config.L2).
//
// Scheduling is cpu.RunShared's deterministic round-robin: each round,
// every live core replays one chunk in core order, its IL1 miss traffic
// reaching the shared L2 before its DL1's — so the L2 observes a
// reproducible interleaving and two identical calls agree bit for bit.
// Per-core counters, timing and phase segmentation are exactly those of
// RunStream; only the shared L2 state couples the cores.
//
// Accounting caveat: each report prices the full shared-L2 leakage over
// its own core's wall time, so summing reports double-counts the L2's
// static energy (the structure is shared; its leakage is not per-core).
// Interference studies should compare dynamic energy, traffic and miss
// counts, which split exactly.
func (s *System) RunShared(names []string, streams []trace.Stream, m Mode) ([]Report, error) {
	if s.cfg.L2 == nil {
		return nil, fmt.Errorf("core: RunShared needs a second level (Config.L2)")
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("core: no streams to run")
	}
	if len(names) != len(streams) {
		return nil, fmt.Errorf("core: %d names but %d streams", len(names), len(streams))
	}
	l2 := s.newL2Sim()
	cores := make([]cpu.CorePorts, len(streams))
	ports := make([][2]*port, len(streams))
	for i := range streams {
		il1 := s.newPort(m, false, l2)
		dl1 := s.newPort(m, true, l2)
		defer il1.release()
		defer dl1.release()
		ports[i] = [2]*port{il1, dl1}
		cores[i] = cpu.CorePorts{IL1: il1, DL1: dl1}
	}
	stats, err := cpu.RunShared(cpu.Config{MemLatency: s.cfg.MemLatency}, cores, streams)
	if err != nil {
		return nil, err
	}
	reports := make([]Report, len(streams))
	for i := range streams {
		rep, err := s.assemble(names[i], m, stats[i], ports[i][0], ports[i][1])
		if err != nil {
			return nil, fmt.Errorf("core: shared core %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}
