package core

import (
	"fmt"
	"sync"

	"edcache/internal/bench"
	"edcache/internal/bitcell"
	"edcache/internal/cache"
	"edcache/internal/cpu"
	"edcache/internal/ecc"
	"edcache/internal/energy"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// System is one fully-sized instance of the evaluation platform: an
// in-order core with hybrid IL1 and DL1 caches, built by running the
// design methodology of Section III-C for the requested configuration.
//
// A System is immutable after NewSystem: Run and RunStream allocate
// fresh per-run cache and port state and only read the sized arrays and
// codec models, so one System may serve any number of concurrent runs —
// the contract the sim engine's worker pool relies on.
type System struct {
	cfg    Config
	sizing yield.Result

	hpArray  energy.WayArray // one HP way's storage arrays
	uleArray energy.WayArray // one ULE way's storage arrays

	secded energy.CodecModel // data-word SECDED codec (zero if unused)
	dected energy.CodecModel // data-word DECTED codec (zero if unused)
	tagSEC energy.CodecModel
	tagDEC energy.CodecModel
}

// NewSystem sizes and assembles a system for the configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizing, err := yield.Run(yield.Input{
		Scenario:    cfg.Scenario,
		Way:         yield.WayGeometry{Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(), DataBits: cfg.DataWordBits, TagBits: cfg.TagWordBits},
		VccHP:       cfg.VccHP,
		VccULE:      cfg.VccULE,
		TargetYield: cfg.TargetYield,
	})
	if err != nil {
		return nil, fmt.Errorf("core: design methodology failed: %w", err)
	}
	s := &System{cfg: cfg, sizing: sizing}

	hpCheck := cfg.hpWayCode().CheckBits()
	s.hpArray = energy.WayArray{
		Cell:  sizing.HPCell,
		Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(),
		DataBits: cfg.DataWordBits, DataCheck: hpCheck,
		TagBits: cfg.TagWordBits, TagCheck: hpCheck,
	}

	uleCell := sizing.BaselineCell
	uleCheck := cfg.Scenario.BaselineCode().CheckBits()
	if cfg.Design == Proposed {
		uleCell = sizing.ProposedCell
		uleCheck = cfg.Scenario.ProposedCode().CheckBits()
	}
	s.uleArray = energy.WayArray{
		Cell:  uleCell,
		Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(),
		DataBits: cfg.DataWordBits, DataCheck: uleCheck,
		TagBits: cfg.TagWordBits, TagCheck: uleCheck,
	}

	// Codec hardware present in this configuration (per cache).
	if cfg.hpWayCode() == ecc.KindSECDED || cfg.uleWayCode(ModeULE) == ecc.KindSECDED {
		s.secded = energy.NewCodecModel(ecc.KindSECDED, cfg.DataWordBits)
		s.tagSEC = energy.NewCodecModel(ecc.KindSECDED, cfg.TagWordBits)
	}
	if cfg.uleWayCode(ModeULE) == ecc.KindDECTED {
		s.dected = energy.NewCodecModel(ecc.KindDECTED, cfg.DataWordBits)
		s.tagDEC = energy.NewCodecModel(ecc.KindDECTED, cfg.TagWordBits)
	}
	return s, nil
}

// MustNewSystem is NewSystem, panicking on error.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Sizing returns the design-methodology result the system was built from.
func (s *System) Sizing() yield.Result { return s.sizing }

// HPWayArray returns the energy model of one HP way.
func (s *System) HPWayArray() energy.WayArray { return s.hpArray }

// ULEWayArray returns the energy model of one ULE way.
func (s *System) ULEWayArray() energy.WayArray { return s.uleArray }

// activeCodecs returns the data-word and tag-word codec models active in
// the given mode (zero-valued models when no coding is active).
func (s *System) activeCodecs(m Mode) (data, tag energy.CodecModel) {
	switch s.cfg.uleWayCode(m) {
	case ecc.KindDECTED:
		return s.dected, s.tagDEC
	case ecc.KindSECDED:
		return s.secded, s.tagSEC
	default:
		// Scenario A at HP mode: proposed turns SECDED off; baseline
		// has nothing. Scenario B HP is SECDED (handled above).
		return energy.CodecModel{}, energy.CodecModel{}
	}
}

// uleReadBits returns the data/tag bits sensed per access in a ULE way
// for the given mode. Scenario A's proposed way power-gates its whole
// check-column segment at HP mode (coding fully off); scenario B's
// proposed way is SECDED-active at HP but physically laid out as one
// interleaved DECTED row, so the full row toggles on every access.
func (s *System) uleReadBits(m Mode) (dataBits, tagBits int) {
	code := s.cfg.uleWayCode(m)
	switch {
	case code == ecc.KindNone:
		return s.cfg.DataWordBits, s.cfg.TagWordBits
	case s.cfg.Design == Proposed && s.cfg.Scenario == yield.ScenarioB && m == ModeHP:
		full := s.cfg.Scenario.ProposedCode().CheckBits()
		return s.cfg.DataWordBits + full, s.cfg.TagWordBits + full
	default:
		return s.cfg.DataWordBits + code.CheckBits(), s.cfg.TagWordBits + code.CheckBits()
	}
}

// hpReadBits returns the bits sensed per access in an HP way (only
// meaningful at HP mode; HP ways are gated at ULE mode).
func (s *System) hpReadBits() (dataBits, tagBits int) {
	check := s.cfg.hpWayCode().CheckBits()
	return s.cfg.DataWordBits + check, s.cfg.TagWordBits + check
}

// ExtraHitLatency returns the additional DL1 hit cycles in the given
// mode. Following the paper's accounting (a ~3 % slowdown reported for
// the proposed design in both scenarios at ULE mode), the extra EDC
// pipeline stage is charged when the proposed design's added/upgraded
// code is active, i.e. at ULE mode; the I-side stage is hidden by the
// fetch pipeline.
func (s *System) ExtraHitLatency(m Mode) int {
	if s.cfg.Design == Proposed && m == ModeULE {
		return 1
	}
	return 0
}

// lookupEnergy returns the dynamic energy of one parallel-lookup access
// (all enabled ways probe tag+data) in the given mode.
func (s *System) lookupEnergy(m Mode) float64 {
	vcc := s.cfg.Vcc(m)
	if m == ModeULE {
		d, t := s.uleReadBits(m)
		return float64(s.cfg.ULEWays) * s.uleArray.AccessEnergy(vcc, d, t)
	}
	hd, ht := s.hpReadBits()
	e := float64(s.cfg.Ways-s.cfg.ULEWays) * s.hpArray.AccessEnergy(vcc, hd, ht)
	if !s.cfg.GateULEWaysAtHP {
		ud, ut := s.uleReadBits(m)
		e += float64(s.cfg.ULEWays) * s.uleArray.AccessEnergy(vcc, ud, ut)
	}
	return e
}

// wayWordWriteEnergy returns the energy of writing one data word (plus
// optionally the tag) into a specific way class.
func (s *System) wayWordWriteEnergy(m Mode, uleWay bool, withTag bool) float64 {
	vcc := s.cfg.Vcc(m)
	arr := s.hpArray
	d, t := s.hpReadBits()
	if uleWay {
		arr = s.uleArray
		d, t = s.uleReadBits(m)
	}
	if !withTag {
		t = 0
	}
	return arr.WriteEnergy(vcc, d, t)
}

// cacheLeakPower returns the leakage (pJ/ns) of one cache instance in
// the given mode: powered ULE ways, gated-or-powered HP ways, plus codec
// leakage (inactive codecs are power-gated like the HP ways).
func (s *System) cacheLeakPower(m Mode) float64 {
	vcc := s.cfg.Vcc(m)
	hpGated := m == ModeULE
	uleGated := m == ModeHP && s.cfg.GateULEWaysAtHP
	p := float64(s.cfg.Ways-s.cfg.ULEWays)*s.hpArray.LeakPower(vcc, hpGated) +
		float64(s.cfg.ULEWays)*s.uleArray.LeakPower(vcc, uleGated)
	dataCodec, tagCodec := s.activeCodecs(m)
	for _, c := range []energy.CodecModel{s.secded, s.tagSEC, s.dected, s.tagDEC} {
		if c.Kind == ecc.KindNone {
			continue
		}
		gated := c != dataCodec && c != tagCodec
		p += c.LeakPower(vcc, gated)
	}
	return p
}

// portCounters are the per-cache event counts the energy accounting
// consumes. They live in their own struct so a run can be sliced: the
// port keeps running totals plus, for phase-annotated streams, one
// delta per phase id.
type portCounters struct {
	reads, writes           uint64
	fillsHP, fillsULE       uint64
	wbHP, wbULE             uint64
	writeHitHP, writeHitULE uint64
}

// sub returns the field-wise difference c − m.
func (c portCounters) sub(m portCounters) portCounters {
	return portCounters{
		reads: c.reads - m.reads, writes: c.writes - m.writes,
		fillsHP: c.fillsHP - m.fillsHP, fillsULE: c.fillsULE - m.fillsULE,
		wbHP: c.wbHP - m.wbHP, wbULE: c.wbULE - m.wbULE,
		writeHitHP: c.writeHitHP - m.writeHitHP, writeHitULE: c.writeHitULE - m.writeHitULE,
	}
}

// add accumulates d into c.
func (c *portCounters) add(d portCounters) {
	c.reads += d.reads
	c.writes += d.writes
	c.fillsHP += d.fillsHP
	c.fillsULE += d.fillsULE
	c.wbHP += d.wbHP
	c.wbULE += d.wbULE
	c.writeHitHP += d.writeHitHP
	c.writeHitULE += d.writeHitULE
}

// portPhase is one phase's slice of a port's counters.
type portPhase struct {
	id uint8
	portCounters
}

// runScratch is the batched-replay conversion scratch of one port: the
// op list handed to the simulator and the Result slice the tally
// consumes, sized to the largest chunk seen. Scratch is pooled across
// runs (and therefore across sweep grid points — the per-goroutine
// steady state of a sweep reuses one scratch set per pool slot instead
// of reallocating ~48 KB per replay).
type runScratch struct {
	ops []cache.Op
	res []cache.Result
}

var scratchPool = sync.Pool{New: func() any { return &runScratch{} }}

// grow ensures capacity for an n-op chunk.
func (s *runScratch) grow(n int) {
	if cap(s.ops) < n {
		s.ops = make([]cache.Op, n)
		s.res = make([]cache.Result, n)
	}
}

// port adapts one cache instance to the cpu.Port interface and tallies
// the event counts the energy accounting needs.
type port struct {
	sim   *cache.Cache
	extra int

	hpWays int // ways [0, hpWays) are HP ways

	portCounters

	// Phase segmentation, driven by cpu.Run through BeginPhase.
	cur  uint8
	mark portCounters
	segs []portPhase

	scr *runScratch
}

// release returns the port's scratch to the pool. The port must not be
// accessed afterwards; run entry points call it once the Report is
// assembled (the report copies everything it needs).
func (p *port) release() {
	if p.scr != nil {
		scratchPool.Put(p.scr)
		p.scr = nil
	}
}

// tally folds one access outcome into the port's event counters and
// reports whether it missed.
func (p *port) tally(res cache.Result, write bool) (miss bool) {
	ule := res.Way >= p.hpWays
	if res.Hit {
		if write {
			if ule {
				p.writeHitULE++
			} else {
				p.writeHitHP++
			}
		}
		return false
	}
	if ule {
		p.fillsULE++
	} else {
		p.fillsHP++
	}
	if res.Writeback {
		if ule {
			p.wbULE++
		} else {
			p.wbHP++
		}
	}
	// A filled line is immediately written (write-allocate): account the
	// store's word write as a write hit into the fill way.
	if write {
		if ule {
			p.writeHitULE++
		} else {
			p.writeHitHP++
		}
	}
	return true
}

// Access implements cpu.Port.
func (p *port) Access(addr uint32, write bool) bool {
	if write {
		p.writes++
	} else {
		p.reads++
	}
	return p.tally(p.sim.Access(addr, write), write)
}

// AccessBatch implements cpu.BatchPort: the whole chunk goes to the
// cache simulator as one cache.AccessBatch call, then the energy tally
// consumes the Result slice — no per-access dynamic dispatch and no
// scalar fallback anywhere on the path. Behaviour is identical to
// calling Access for each op in order (cache.AccessBatch guarantees
// the same state transitions, and the tally is a fold over the same
// per-op outcomes).
func (p *port) AccessBatch(ops []cpu.PortOp, miss []bool) {
	n := len(ops)
	p.scr.grow(n)
	co, cr := p.scr.ops[:n], p.scr.res[:n]
	for i, op := range ops {
		co[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	p.sim.AccessBatch(co, cr)
	for i := range cr {
		write := co[i].Write
		if write {
			p.writes++
		} else {
			p.reads++
		}
		miss[i] = p.tally(cr[i], write)
	}
}

// ExtraHitLatency implements cpu.Port.
func (p *port) ExtraHitLatency() int { return p.extra }

// BeginPhase implements cpu.PhasePort: cpu.Run calls it at every phase
// boundary of a phase-annotated stream, before issuing the new phase's
// accesses. The segment bookkeeping below mirrors cpu's phaseLedger
// (snapshot at the boundary, diff, accumulate by id) — the two must
// keep identical boundary semantics or Report.Phases' energy would be
// attributed to different segments than its counters.
func (p *port) BeginPhase(id uint8) {
	p.closeSegment()
	p.cur = id
}

// closeSegment folds the counters accumulated since the last boundary
// into the current phase's slice.
func (p *port) closeSegment() {
	d := p.portCounters.sub(p.mark)
	p.mark = p.portCounters
	if d == (portCounters{}) {
		return
	}
	for i := range p.segs {
		if p.segs[i].id == p.cur {
			p.segs[i].add(d)
			return
		}
	}
	p.segs = append(p.segs, portPhase{id: p.cur, portCounters: d})
}

// phase returns this port's counters for one phase id (zero counters
// when the phase issued no accesses on this port). Call closeSegment
// first so the trailing segment is folded in.
func (p *port) phase(id uint8) portCounters {
	for i := range p.segs {
		if p.segs[i].id == id {
			return p.segs[i].portCounters
		}
	}
	return portCounters{}
}

// newSim builds one fresh cache simulator with the configuration's
// geometry and the mode's way gating applied: ULE mode disables the HP
// ways, HP mode optionally gates the ULE ways (ablation A5). This is
// the entire mode- and design-dependence of the cache *state* — the
// EDC latency and energy models live outside the simulator — which is
// what lets the group runner share one simulator between configurations
// whose geometry and gating coincide (baseline vs proposed at the same
// mode, in particular).
func (s *System) newSim(m Mode) *cache.Cache {
	sim := cache.MustNew(cache.Config{Sets: s.cfg.Sets, Ways: s.cfg.Ways, LineBytes: s.cfg.LineBytes})
	if m == ModeULE {
		for w := 0; w < s.cfg.Ways-s.cfg.ULEWays; w++ {
			sim.SetWayEnabled(w, false)
		}
	} else if s.cfg.GateULEWaysAtHP {
		for w := s.cfg.Ways - s.cfg.ULEWays; w < s.cfg.Ways; w++ {
			sim.SetWayEnabled(w, false)
		}
	}
	return sim
}

func (s *System) newPort(m Mode, dside bool) *port {
	extra := 0
	if dside {
		extra = s.ExtraHitLatency(m)
	}
	return &port{
		sim: s.newSim(m), extra: extra,
		hpWays: s.cfg.Ways - s.cfg.ULEWays,
		scr:    scratchPool.Get().(*runScratch),
	}
}

// Breakdown is the per-instruction energy decomposition of Figures 3/4.
type Breakdown struct {
	CacheDynamic float64 // L1 array switching energy (pJ/instr)
	CacheLeakage float64 // L1 leakage (pJ/instr)
	EDC          float64 // encoder/decoder switching energy (pJ/instr)
	Core         float64 // everything else (pipeline, RF, TLBs, clock)
}

// Total returns the full EPI (pJ/instr).
func (b Breakdown) Total() float64 {
	return b.CacheDynamic + b.CacheLeakage + b.EDC + b.Core
}

// Report is the outcome of running one workload in one mode.
type Report struct {
	Config   Config
	Mode     Mode
	Workload string

	Stats  cpu.Stats
	TimeNS float64
	EPI    Breakdown

	// Phases, non-nil only when the replayed stream carried phase
	// annotations, segments the run per working-set regime: the same
	// counters, time and EPI decomposition, restricted to one phase id.
	// Integer counters sum exactly to Stats; energy and time sum to the
	// run totals up to float rounding, because every breakdown term is
	// linear in the counters it is computed from.
	Phases []PhaseReport
}

// PhaseReport is one phase's slice of a Report.
type PhaseReport struct {
	Phase  uint8
	Stats  cpu.Stats // the segment's counters (Phases nil)
	TimeNS float64
	EPI    Breakdown
}

// Run executes the workload on the system in the given mode and returns
// timing plus the EPI breakdown.
func (s *System) Run(w bench.Workload, m Mode) (Report, error) {
	return s.RunStream(w.Name, w.Stream(), m)
}

// RunStream is Run for an arbitrary instruction stream. When the stream
// is phase-annotated (trace.PhaseAnnotated) the report additionally
// carries a per-phase segmentation of counters, time and EPI.
func (s *System) RunStream(name string, stream trace.Stream, m Mode) (Report, error) {
	il1 := s.newPort(m, false)
	dl1 := s.newPort(m, true)
	defer il1.release()
	defer dl1.release()
	stats, err := cpu.Run(cpu.Config{MemLatency: s.cfg.MemLatency}, il1, dl1, stream)
	if err != nil {
		return Report{}, err
	}
	return s.assemble(name, m, stats, il1, dl1)
}

// assemble turns one run's Stats and tallied ports into a Report: the
// shared accounting tail of RunStream and the group runner. The ports
// are consumed — their trailing phase segments are folded in here.
func (s *System) assemble(name string, m Mode, stats cpu.Stats, il1, dl1 *port) (Report, error) {
	if stats.Instructions == 0 {
		return Report{}, fmt.Errorf("core: empty instruction stream %q", name)
	}
	timeNS := float64(stats.Cycles) / s.cfg.FreqGHz(m)

	rep := Report{
		Config:   s.cfg,
		Mode:     m,
		Workload: name,
		Stats:    stats,
		TimeNS:   timeNS,
		EPI:      s.breakdown(m, il1.portCounters, dl1.portCounters, stats.Instructions, timeNS),
	}
	if stats.Phases != nil {
		// Fold each port's trailing segment in, then decompose every
		// phase with the same accounting the run-level breakdown uses —
		// the terms are linear in the counters, so phases sum to the
		// totals (exactly for counters, to float rounding for energy).
		il1.closeSegment()
		dl1.closeSegment()
		for _, seg := range stats.Phases {
			pt := float64(seg.Stats.Cycles) / s.cfg.FreqGHz(m)
			rep.Phases = append(rep.Phases, PhaseReport{
				Phase:  seg.Phase,
				Stats:  seg.Stats,
				TimeNS: pt,
				EPI:    s.breakdown(m, il1.phase(seg.Phase), dl1.phase(seg.Phase), seg.Stats.Instructions, pt),
			})
		}
	}
	return rep, nil
}

// breakdown decomposes the energy of one (sub-)run — full run or one
// phase segment — given the two cache ports' event counters, the
// instruction count and the wall time. Every term is linear in its
// counters; RunStream relies on that to make per-phase breakdowns sum
// to the run-level one.
func (s *System) breakdown(m Mode, il1c, dl1c portCounters, instructions uint64, timeNS float64) Breakdown {
	var b Breakdown
	vcc := s.cfg.Vcc(m)
	dataCodec, tagCodec := s.activeCodecs(m)
	wpl := s.cfg.WordsPerLine()
	for _, p := range []portCounters{il1c, dl1c} {
		// Parallel lookups: every access probes all enabled ways.
		b.CacheDynamic += float64(p.reads+p.writes) * s.lookupEnergy(m)
		// Store hits write one word into the hit way.
		b.CacheDynamic += float64(p.writeHitHP) * s.wayWordWriteEnergy(m, false, false)
		b.CacheDynamic += float64(p.writeHitULE) * s.wayWordWriteEnergy(m, true, false)
		// Line fills write the whole line plus tag into the fill way.
		fillHP := s.wayWordWriteEnergy(m, false, true) + float64(wpl-1)*s.wayWordWriteEnergy(m, false, false)
		fillULE := s.wayWordWriteEnergy(m, true, true) + float64(wpl-1)*s.wayWordWriteEnergy(m, true, false)
		b.CacheDynamic += float64(p.fillsHP)*fillHP + float64(p.fillsULE)*fillULE
		// Writebacks read the victim line out.
		vd, _ := s.hpReadBits()
		ud, _ := s.uleReadBits(m)
		b.CacheDynamic += float64(p.wbHP) * float64(wpl) * s.hpArray.AccessEnergy(vcc, vd, 0)
		b.CacheDynamic += float64(p.wbULE) * float64(wpl) * s.uleArray.AccessEnergy(vcc, ud, 0)

		// EDC: one decode per read (the selected word), one encode per
		// written word, line fills encode every word plus the tag,
		// writebacks decode every word.
		b.EDC += float64(p.reads) * dataCodec.DecodeEnergy(vcc)
		b.EDC += float64(p.writeHitHP+p.writeHitULE) * dataCodec.EncodeEnergy(vcc)
		fills := float64(p.fillsHP + p.fillsULE)
		b.EDC += fills * (float64(wpl)*dataCodec.EncodeEnergy(vcc) + tagCodec.EncodeEnergy(vcc))
		b.EDC += float64(p.wbHP+p.wbULE) * float64(wpl) * dataCodec.DecodeEnergy(vcc)
	}
	// Two cache instances (IL1, DL1) leak for the whole (sub-)run.
	b.CacheLeakage = 2 * s.cacheLeakPower(m) * timeNS
	b.Core = CoreDynEPI*bitcell.DynScale(vcc)*float64(instructions) +
		CoreLeakPower*bitcell.LeakScale(vcc)*timeNS

	instr := float64(instructions)
	b.CacheDynamic /= instr
	b.CacheLeakage /= instr
	b.EDC /= instr
	b.Core /= instr
	return b
}

// AreaReport decomposes the layout area of one cache instance, in
// minimum-6T-bitcell equivalents.
type AreaReport struct {
	HPWays  float64
	ULEWays float64
	Codecs  float64
}

// Total returns the summed area.
func (a AreaReport) Total() float64 { return a.HPWays + a.ULEWays + a.Codecs }

// Area returns the area decomposition of one cache instance.
func (s *System) Area() AreaReport {
	var codecs float64
	for _, c := range []energy.CodecModel{s.secded, s.tagSEC, s.dected, s.tagDEC} {
		codecs += c.Area()
	}
	return AreaReport{
		HPWays:  float64(s.cfg.Ways-s.cfg.ULEWays) * s.hpArray.Area(),
		ULEWays: float64(s.cfg.ULEWays) * s.uleArray.Area(),
		Codecs:  codecs,
	}
}
