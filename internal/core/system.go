package core

import (
	"fmt"
	"sync"

	"edcache/internal/bench"
	"edcache/internal/bitcell"
	"edcache/internal/cache"
	"edcache/internal/cpu"
	"edcache/internal/ecc"
	"edcache/internal/energy"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// System is one fully-sized instance of the evaluation platform: an
// in-order core with hybrid IL1 and DL1 caches, built by running the
// design methodology of Section III-C for the requested configuration.
//
// A System is immutable after NewSystem: Run and RunStream allocate
// fresh per-run cache and port state and only read the sized arrays and
// codec models, so one System may serve any number of concurrent runs —
// the contract the sim engine's worker pool relies on.
type System struct {
	cfg    Config
	sizing yield.Result

	hpArray  energy.WayArray // one HP way's storage arrays
	uleArray energy.WayArray // one ULE way's storage arrays

	secded energy.CodecModel // data-word SECDED codec (zero if unused)
	dected energy.CodecModel // data-word DECTED codec (zero if unused)
	tagSEC energy.CodecModel
	tagDEC energy.CodecModel

	// Second-level models, meaningful only when cfg.L2 is set: one L2
	// way's storage arrays (HP cells — the level stays powered in both
	// modes) and the level's own codec pair per its Protection policy.
	l2Array energy.WayArray
	l2Data  energy.CodecModel
	l2Tag   energy.CodecModel
}

// NewSystem sizes and assembles a system for the configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizing, err := yield.Run(yield.Input{
		Scenario:    cfg.Scenario,
		Way:         yield.WayGeometry{Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(), DataBits: cfg.DataWordBits, TagBits: cfg.TagWordBits},
		VccHP:       cfg.VccHP,
		VccULE:      cfg.VccULE,
		TargetYield: cfg.TargetYield,
	})
	if err != nil {
		return nil, fmt.Errorf("core: design methodology failed: %w", err)
	}
	s := &System{cfg: cfg, sizing: sizing}

	hpCheck := cfg.hpWayCode().CheckBits()
	s.hpArray = energy.WayArray{
		Cell:  sizing.HPCell,
		Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(),
		DataBits: cfg.DataWordBits, DataCheck: hpCheck,
		TagBits: cfg.TagWordBits, TagCheck: hpCheck,
	}

	uleCell := sizing.BaselineCell
	uleCheck := cfg.Scenario.BaselineCode().CheckBits()
	if cfg.Design == Proposed {
		uleCell = sizing.ProposedCell
		uleCheck = cfg.Scenario.ProposedCode().CheckBits()
	}
	s.uleArray = energy.WayArray{
		Cell:  uleCell,
		Lines: cfg.Sets, WordsPerLine: cfg.WordsPerLine(),
		DataBits: cfg.DataWordBits, DataCheck: uleCheck,
		TagBits: cfg.TagWordBits, TagCheck: uleCheck,
	}

	// Codec hardware present in this configuration (per cache).
	if cfg.hpWayCode() == ecc.KindSECDED || cfg.uleWayCode(ModeULE) == ecc.KindSECDED {
		s.secded = energy.NewCodecModel(ecc.KindSECDED, cfg.DataWordBits)
		s.tagSEC = energy.NewCodecModel(ecc.KindSECDED, cfg.TagWordBits)
	}
	if cfg.uleWayCode(ModeULE) == ecc.KindDECTED {
		s.dected = energy.NewCodecModel(ecc.KindDECTED, cfg.DataWordBits)
		s.tagDEC = energy.NewCodecModel(ecc.KindDECTED, cfg.TagWordBits)
	}
	if cfg.L2 != nil {
		check := cfg.L2.Protection.CheckBits()
		s.l2Array = energy.WayArray{
			Cell:  sizing.HPCell,
			Lines: cfg.L2.Sets, WordsPerLine: cfg.L2.LineBytes * 8 / cfg.DataWordBits,
			DataBits: cfg.DataWordBits, DataCheck: check,
			TagBits: cfg.TagWordBits, TagCheck: check,
		}
		if cfg.L2.Protection != ecc.KindNone {
			s.l2Data = energy.NewCodecModel(cfg.L2.Protection, cfg.DataWordBits)
			s.l2Tag = energy.NewCodecModel(cfg.L2.Protection, cfg.TagWordBits)
		}
	}
	return s, nil
}

// MustNewSystem is NewSystem, panicking on error.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Sizing returns the design-methodology result the system was built from.
func (s *System) Sizing() yield.Result { return s.sizing }

// HPWayArray returns the energy model of one HP way.
func (s *System) HPWayArray() energy.WayArray { return s.hpArray }

// ULEWayArray returns the energy model of one ULE way.
func (s *System) ULEWayArray() energy.WayArray { return s.uleArray }

// activeCodecs returns the data-word and tag-word codec models active in
// the given mode (zero-valued models when no coding is active).
func (s *System) activeCodecs(m Mode) (data, tag energy.CodecModel) {
	switch s.cfg.uleWayCode(m) {
	case ecc.KindDECTED:
		return s.dected, s.tagDEC
	case ecc.KindSECDED:
		return s.secded, s.tagSEC
	default:
		// Scenario A at HP mode: proposed turns SECDED off; baseline
		// has nothing. Scenario B HP is SECDED (handled above).
		return energy.CodecModel{}, energy.CodecModel{}
	}
}

// uleReadBits returns the data/tag bits sensed per access in a ULE way
// for the given mode. Scenario A's proposed way power-gates its whole
// check-column segment at HP mode (coding fully off); scenario B's
// proposed way is SECDED-active at HP but physically laid out as one
// interleaved DECTED row, so the full row toggles on every access.
func (s *System) uleReadBits(m Mode) (dataBits, tagBits int) {
	code := s.cfg.uleWayCode(m)
	switch {
	case code == ecc.KindNone:
		return s.cfg.DataWordBits, s.cfg.TagWordBits
	case s.cfg.Design == Proposed && s.cfg.Scenario == yield.ScenarioB && m == ModeHP:
		full := s.cfg.Scenario.ProposedCode().CheckBits()
		return s.cfg.DataWordBits + full, s.cfg.TagWordBits + full
	default:
		return s.cfg.DataWordBits + code.CheckBits(), s.cfg.TagWordBits + code.CheckBits()
	}
}

// hpReadBits returns the bits sensed per access in an HP way (only
// meaningful at HP mode; HP ways are gated at ULE mode).
func (s *System) hpReadBits() (dataBits, tagBits int) {
	check := s.cfg.hpWayCode().CheckBits()
	return s.cfg.DataWordBits + check, s.cfg.TagWordBits + check
}

// ExtraHitLatency returns the additional DL1 hit cycles in the given
// mode. Following the paper's accounting (a ~3 % slowdown reported for
// the proposed design in both scenarios at ULE mode), the extra EDC
// pipeline stage is charged when the proposed design's added/upgraded
// code is active, i.e. at ULE mode; the I-side stage is hidden by the
// fetch pipeline.
func (s *System) ExtraHitLatency(m Mode) int {
	if s.cfg.Design == Proposed && m == ModeULE {
		return 1
	}
	return 0
}

// lookupEnergy returns the dynamic energy of one parallel-lookup access
// (all enabled ways probe tag+data) in the given mode.
func (s *System) lookupEnergy(m Mode) float64 {
	vcc := s.cfg.Vcc(m)
	if m == ModeULE {
		d, t := s.uleReadBits(m)
		return float64(s.cfg.ULEWays) * s.uleArray.AccessEnergy(vcc, d, t)
	}
	hd, ht := s.hpReadBits()
	e := float64(s.cfg.Ways-s.cfg.ULEWays) * s.hpArray.AccessEnergy(vcc, hd, ht)
	if !s.cfg.GateULEWaysAtHP {
		ud, ut := s.uleReadBits(m)
		e += float64(s.cfg.ULEWays) * s.uleArray.AccessEnergy(vcc, ud, ut)
	}
	return e
}

// wayWordWriteEnergy returns the energy of writing one data word (plus
// optionally the tag) into a specific way class.
func (s *System) wayWordWriteEnergy(m Mode, uleWay bool, withTag bool) float64 {
	vcc := s.cfg.Vcc(m)
	arr := s.hpArray
	d, t := s.hpReadBits()
	if uleWay {
		arr = s.uleArray
		d, t = s.uleReadBits(m)
	}
	if !withTag {
		t = 0
	}
	return arr.WriteEnergy(vcc, d, t)
}

// cacheLeakPower returns the leakage (pJ/ns) of one cache instance in
// the given mode: powered ULE ways, gated-or-powered HP ways, plus codec
// leakage (inactive codecs are power-gated like the HP ways).
func (s *System) cacheLeakPower(m Mode) float64 {
	vcc := s.cfg.Vcc(m)
	hpGated := m == ModeULE
	uleGated := m == ModeHP && s.cfg.GateULEWaysAtHP
	p := float64(s.cfg.Ways-s.cfg.ULEWays)*s.hpArray.LeakPower(vcc, hpGated) +
		float64(s.cfg.ULEWays)*s.uleArray.LeakPower(vcc, uleGated)
	dataCodec, tagCodec := s.activeCodecs(m)
	for _, c := range []energy.CodecModel{s.secded, s.tagSEC, s.dected, s.tagDEC} {
		if c.Kind == ecc.KindNone {
			continue
		}
		gated := c != dataCodec && c != tagCodec
		p += c.LeakPower(vcc, gated)
	}
	return p
}

// portCounters are the per-cache event counts the energy accounting
// consumes. They live in their own struct so a run can be sliced: the
// port keeps running totals plus, for phase-annotated streams, one
// delta per phase id.
type portCounters struct {
	reads, writes           uint64
	fillsHP, fillsULE       uint64
	wbHP, wbULE             uint64
	writeHitHP, writeHitULE uint64
}

// sub returns the field-wise difference c − m.
func (c portCounters) sub(m portCounters) portCounters {
	return portCounters{
		reads: c.reads - m.reads, writes: c.writes - m.writes,
		fillsHP: c.fillsHP - m.fillsHP, fillsULE: c.fillsULE - m.fillsULE,
		wbHP: c.wbHP - m.wbHP, wbULE: c.wbULE - m.wbULE,
		writeHitHP: c.writeHitHP - m.writeHitHP, writeHitULE: c.writeHitULE - m.writeHitULE,
	}
}

// add accumulates d into c.
func (c *portCounters) add(d portCounters) {
	c.reads += d.reads
	c.writes += d.writes
	c.fillsHP += d.fillsHP
	c.fillsULE += d.fillsULE
	c.wbHP += d.wbHP
	c.wbULE += d.wbULE
	c.writeHitHP += d.writeHitHP
	c.writeHitULE += d.writeHitULE
}

// l2Counters are one port's second-level event counts. Word writes into
// the L2 need no separate tally: every L2 write (an L1 victim line
// coming down, or a flush) lands its words exactly once, so writes is
// also the word-write count the energy model charges.
type l2Counters struct {
	reads  uint64 // demand fill reads from the L1
	writes uint64 // dirty-victim write-backs from the L1
	fills  uint64 // lines allocated (read or write misses)
	wbs    uint64 // dirty L2 lines written back to memory
}

// sub returns the field-wise difference c − m.
func (c l2Counters) sub(m l2Counters) l2Counters {
	return l2Counters{
		reads: c.reads - m.reads, writes: c.writes - m.writes,
		fills: c.fills - m.fills, wbs: c.wbs - m.wbs,
	}
}

// add accumulates d into c.
func (c *l2Counters) add(d l2Counters) {
	c.reads += d.reads
	c.writes += d.writes
	c.fills += d.fills
	c.wbs += d.wbs
}

// portPhase is one phase's slice of a port's counters.
type portPhase struct {
	id uint8
	portCounters
	l2 l2Counters
}

// runScratch is the batched-replay conversion scratch of one port: the
// op list handed to the simulator and the Result slice the tally
// consumes, sized to the largest chunk seen. Scratch is pooled across
// runs (and therefore across sweep grid points — the per-goroutine
// steady state of a sweep reuses one scratch set per pool slot instead
// of reallocating ~48 KB per replay).
type runScratch struct {
	ops []cache.Op
	res []cache.Result
}

var scratchPool = sync.Pool{New: func() any { return &runScratch{} }}

// grow ensures capacity for an n-op chunk.
func (s *runScratch) grow(n int) {
	if cap(s.ops) < n {
		s.ops = make([]cache.Op, n)
		s.res = make([]cache.Result, n)
	}
}

// port adapts one cache instance to the cpu.Port interface and tallies
// the event counts the energy accounting needs.
type port struct {
	sim   *cache.Cache
	extra int

	hpWays int // ways [0, hpWays) are HP ways

	// Two-level state, nil/zero on single-level ports: the hierarchy
	// wrapping sim as its L1 (the L2 behind it may be shared with other
	// ports), the L2 service latency, and the port's own L2 tallies.
	hier   *cache.Hierarchy
	l2lat  int
	l2     l2Counters
	l2mark l2Counters

	portCounters

	// Phase segmentation, driven by cpu.Run through BeginPhase.
	cur  uint8
	mark portCounters
	segs []portPhase

	scr *runScratch
}

// release returns the port's scratch to the pool. The port must not be
// accessed afterwards; run entry points call it once the Report is
// assembled (the report copies everything it needs).
func (p *port) release() {
	if p.scr != nil {
		scratchPool.Put(p.scr)
		p.scr = nil
	}
}

// tally folds one access outcome into the port's event counters and
// reports whether it missed.
func (p *port) tally(res cache.Result, write bool) (miss bool) {
	ule := res.Way >= p.hpWays
	if res.Hit {
		if write {
			if ule {
				p.writeHitULE++
			} else {
				p.writeHitHP++
			}
		}
		return false
	}
	if ule {
		p.fillsULE++
	} else {
		p.fillsHP++
	}
	if res.Writeback {
		if ule {
			p.wbULE++
		} else {
			p.wbHP++
		}
	}
	// A filled line is immediately written (write-allocate): account the
	// store's word write as a write hit into the fill way.
	if write {
		if ule {
			p.writeHitULE++
		} else {
			p.writeHitHP++
		}
	}
	return true
}

// tallyL2Chunk folds the hierarchy's most recent L2 batch into the
// port's second-level counters.
func (p *port) tallyL2Chunk() {
	ops, rs := p.hier.L2Ops(), p.hier.L2Results()
	for i := range rs {
		if ops[i].Write {
			p.l2.writes++
		} else {
			p.l2.reads++
		}
		if !rs[i].Hit {
			p.l2.fills++
			if rs[i].Writeback {
				p.l2.wbs++
			}
		}
	}
}

// Access implements cpu.Port.
func (p *port) Access(addr uint32, write bool) bool {
	if write {
		p.writes++
	} else {
		p.reads++
	}
	if p.hier != nil {
		miss := p.tally(p.hier.Access(addr, write), write)
		p.tallyL2Chunk()
		return miss
	}
	return p.tally(p.sim.Access(addr, write), write)
}

// AccessBatch implements cpu.BatchPort: the whole chunk goes to the
// cache simulator as one cache.AccessBatch call, then the energy tally
// consumes the Result slice — no per-access dynamic dispatch and no
// scalar fallback anywhere on the path. Behaviour is identical to
// calling Access for each op in order (cache.AccessBatch guarantees
// the same state transitions, and the tally is a fold over the same
// per-op outcomes).
func (p *port) AccessBatch(ops []cpu.PortOp, miss []bool) {
	n := len(ops)
	p.scr.grow(n)
	co, cr := p.scr.ops[:n], p.scr.res[:n]
	for i, op := range ops {
		co[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	if p.hier != nil {
		p.hier.AccessBatch(co, cr)
		p.tallyL2Chunk()
	} else {
		p.sim.AccessBatch(co, cr)
	}
	for i := range cr {
		write := co[i].Write
		if write {
			p.writes++
		} else {
			p.reads++
		}
		miss[i] = p.tally(cr[i], write)
	}
}

// ExtraHitLatency implements cpu.Port.
func (p *port) ExtraHitLatency() int { return p.extra }

// L2Latency implements cpu.TieredPort; zero on single-level ports,
// which deactivates the extension.
func (p *port) L2Latency() int { return p.l2lat }

// L2FillMisses implements cpu.TieredPort.
func (p *port) L2FillMisses() uint64 {
	if p.hier == nil {
		return 0
	}
	return p.hier.FillMisses()
}

// BeginPhase implements cpu.PhasePort: cpu.Run calls it at every phase
// boundary of a phase-annotated stream, before issuing the new phase's
// accesses. The segment bookkeeping below mirrors cpu's phaseLedger
// (snapshot at the boundary, diff, accumulate by id) — the two must
// keep identical boundary semantics or Report.Phases' energy would be
// attributed to different segments than its counters.
func (p *port) BeginPhase(id uint8) {
	p.closeSegment()
	p.cur = id
}

// closeSegment folds the counters accumulated since the last boundary
// into the current phase's slice.
func (p *port) closeSegment() {
	d := p.portCounters.sub(p.mark)
	d2 := p.l2.sub(p.l2mark)
	p.mark = p.portCounters
	p.l2mark = p.l2
	if d == (portCounters{}) && d2 == (l2Counters{}) {
		return
	}
	for i := range p.segs {
		if p.segs[i].id == p.cur {
			p.segs[i].add(d)
			p.segs[i].l2.add(d2)
			return
		}
	}
	p.segs = append(p.segs, portPhase{id: p.cur, portCounters: d, l2: d2})
}

// phase returns this port's counters for one phase id (zero counters
// when the phase issued no accesses on this port). Call closeSegment
// first so the trailing segment is folded in.
func (p *port) phase(id uint8) portCounters {
	for i := range p.segs {
		if p.segs[i].id == id {
			return p.segs[i].portCounters
		}
	}
	return portCounters{}
}

// phaseL2 returns this port's second-level counters for one phase id.
func (p *port) phaseL2(id uint8) l2Counters {
	for i := range p.segs {
		if p.segs[i].id == id {
			return p.segs[i].l2
		}
	}
	return l2Counters{}
}

// newSim builds one fresh cache simulator with the configuration's
// geometry and the mode's way gating applied: ULE mode disables the HP
// ways, HP mode optionally gates the ULE ways (ablation A5). This is
// the entire mode- and design-dependence of the cache *state* — the
// EDC latency and energy models live outside the simulator — which is
// what lets the group runner share one simulator between configurations
// whose geometry and gating coincide (baseline vs proposed at the same
// mode, in particular).
func (s *System) newSim(m Mode) *cache.Cache {
	sim := cache.MustNew(cache.Config{Sets: s.cfg.Sets, Ways: s.cfg.Ways, LineBytes: s.cfg.LineBytes})
	if m == ModeULE {
		for w := 0; w < s.cfg.Ways-s.cfg.ULEWays; w++ {
			sim.SetWayEnabled(w, false)
		}
	} else if s.cfg.GateULEWaysAtHP {
		for w := s.cfg.Ways - s.cfg.ULEWays; w < s.cfg.Ways; w++ {
			sim.SetWayEnabled(w, false)
		}
	}
	return sim
}

// newL2Sim builds one fresh second-level simulator with the configured
// geometry and enabled-way cap. The L2 keeps its full way set in both
// modes — it sits behind the mode-switched L1s and is not part of the
// hybrid way split.
func (s *System) newL2Sim() *cache.Cache {
	l2 := cache.MustNew(cache.Config{Sets: s.cfg.L2.Sets, Ways: s.cfg.L2.Ways, LineBytes: s.cfg.L2.LineBytes})
	if n := s.cfg.L2.EnabledWays; n > 0 {
		for w := n; w < s.cfg.L2.Ways; w++ {
			l2.SetWayEnabled(w, false)
		}
	}
	return l2
}

// newPort builds one L1 port; a non-nil l2 chains the fresh L1 behind
// it as a two-level hierarchy (the same l2 may back several ports —
// that sharing is the unified-L2 and shared-L2 arrangement).
func (s *System) newPort(m Mode, dside bool, l2 *cache.Cache) *port {
	extra := 0
	if dside {
		extra = s.ExtraHitLatency(m)
	}
	p := &port{
		sim: s.newSim(m), extra: extra,
		hpWays: s.cfg.Ways - s.cfg.ULEWays,
		scr:    scratchPool.Get().(*runScratch),
	}
	if l2 != nil {
		p.hier = cache.MustNewHierarchy(p.sim, l2)
		p.l2lat = s.cfg.L2.Latency
	}
	return p
}

// Breakdown is the per-instruction energy decomposition of Figures 3/4.
type Breakdown struct {
	CacheDynamic float64 // L1 array switching energy (pJ/instr)
	CacheLeakage float64 // L1 leakage (pJ/instr)
	EDC          float64 // encoder/decoder switching energy (pJ/instr)
	Core         float64 // everything else (pipeline, RF, TLBs, clock)
}

// Total returns the full EPI (pJ/instr).
func (b Breakdown) Total() float64 {
	return b.CacheDynamic + b.CacheLeakage + b.EDC + b.Core
}

// Report is the outcome of running one workload in one mode.
type Report struct {
	Config   Config
	Mode     Mode
	Workload string

	Stats  cpu.Stats
	TimeNS float64
	EPI    Breakdown

	// Levels, non-nil only when the system ran with a second level
	// (Config.L2), splits the cache portion of the run per level: the
	// EPI terms of Breakdown restricted to one level's arrays and
	// codecs, plus that level's traffic and the stall time its misses
	// cost. Levels sum back to the cache terms of EPI exactly, and the
	// per-level stall times sum to Stats.MissCycles' wall time.
	Levels []LevelEPI

	// Phases, non-nil only when the replayed stream carried phase
	// annotations, segments the run per working-set regime: the same
	// counters, time and EPI decomposition, restricted to one phase id.
	// Integer counters sum exactly to Stats; energy and time sum to the
	// run totals up to float rounding, because every breakdown term is
	// linear in the counters it is computed from.
	Phases []PhaseReport
}

// PhaseReport is one phase's slice of a Report.
type PhaseReport struct {
	Phase  uint8
	Stats  cpu.Stats // the segment's counters (Phases nil)
	TimeNS float64
	EPI    Breakdown

	// Levels is the phase's per-level split, mirroring Report.Levels;
	// non-nil only on hierarchy runs.
	Levels []LevelEPI
}

// LevelEPI is one cache level's slice of a (sub-)run: its energy terms
// per instruction, its traffic, and the core stall time attributable to
// its misses — L1 misses cost the L2 service latency, L2 fill misses
// the full memory latency, so the per-level StallNS sum to the run's
// total miss stall time.
type LevelEPI struct {
	Level    string  // "L1" (both private L1s together) or "L2"
	Dynamic  float64 // array switching energy (pJ/instr)
	Leakage  float64 // pJ/instr
	EDC      float64 // codec energy (pJ/instr)
	Accesses uint64
	Misses   uint64
	StallNS  float64
}

// EPI returns the level's total energy per instruction (pJ).
func (l LevelEPI) EPI() float64 { return l.Dynamic + l.Leakage + l.EDC }

// Run executes the workload on the system in the given mode and returns
// timing plus the EPI breakdown.
func (s *System) Run(w bench.Workload, m Mode) (Report, error) {
	return s.RunStream(w.Name, w.Stream(), m)
}

// RunStream is Run for an arbitrary instruction stream. When the stream
// is phase-annotated (trace.PhaseAnnotated) the report additionally
// carries a per-phase segmentation of counters, time and EPI.
//
// With Config.L2 set, both L1 ports feed one unified L2: per replay
// chunk, the IL1 miss traffic reaches the L2 first, then the DL1's —
// the deterministic chunk-order semantics of the batched hierarchy
// (cache.Hierarchy) — and the report gains per-level breakdowns in
// Levels.
func (s *System) RunStream(name string, stream trace.Stream, m Mode) (Report, error) {
	var l2 *cache.Cache
	if s.cfg.L2 != nil {
		l2 = s.newL2Sim()
	}
	il1 := s.newPort(m, false, l2)
	dl1 := s.newPort(m, true, l2)
	defer il1.release()
	defer dl1.release()
	stats, err := cpu.Run(cpu.Config{MemLatency: s.cfg.MemLatency}, il1, dl1, stream)
	if err != nil {
		return Report{}, err
	}
	return s.assemble(name, m, stats, il1, dl1)
}

// assemble turns one run's Stats and tallied ports into a Report: the
// shared accounting tail of RunStream and the group runner. The ports
// are consumed — their trailing phase segments are folded in here.
func (s *System) assemble(name string, m Mode, stats cpu.Stats, il1, dl1 *port) (Report, error) {
	if stats.Instructions == 0 {
		return Report{}, fmt.Errorf("core: empty instruction stream %q", name)
	}
	timeNS := float64(stats.Cycles) / s.cfg.FreqGHz(m)

	rep := Report{
		Config:   s.cfg,
		Mode:     m,
		Workload: name,
		Stats:    stats,
		TimeNS:   timeNS,
		EPI:      s.breakdown(m, il1.portCounters, dl1.portCounters, stats.Instructions, timeNS),
	}
	hier := il1.hier != nil
	if hier {
		l2c := il1.l2
		l2c.add(dl1.l2)
		rep.Levels = s.levelize(m, &rep.EPI, stats, l2c, timeNS)
	}
	if stats.Phases != nil {
		// Fold each port's trailing segment in, then decompose every
		// phase with the same accounting the run-level breakdown uses —
		// the terms are linear in the counters, so phases sum to the
		// totals (exactly for counters, to float rounding for energy).
		il1.closeSegment()
		dl1.closeSegment()
		for _, seg := range stats.Phases {
			pt := float64(seg.Stats.Cycles) / s.cfg.FreqGHz(m)
			pr := PhaseReport{
				Phase:  seg.Phase,
				Stats:  seg.Stats,
				TimeNS: pt,
				EPI:    s.breakdown(m, il1.phase(seg.Phase), dl1.phase(seg.Phase), seg.Stats.Instructions, pt),
			}
			if hier {
				pl2 := il1.phaseL2(seg.Phase)
				pl2.add(dl1.phaseL2(seg.Phase))
				pr.Levels = s.levelize(m, &pr.EPI, seg.Stats, pl2, pt)
			}
			rep.Phases = append(rep.Phases, pr)
		}
	}
	return rep, nil
}

// levelize splits one (sub-)run's cache accounting per level. On entry
// b carries the L1-only breakdown; the L2's own dynamic, leakage and
// codec terms are computed from its counters, folded into b's totals,
// and the per-level rows returned. Keeping the fold here (rather than
// inside breakdown) leaves every single-level code path — and its
// results — untouched.
func (s *System) levelize(m Mode, b *Breakdown, st cpu.Stats, l2c l2Counters, timeNS float64) []LevelEPI {
	instr := float64(st.Instructions)
	freq := s.cfg.FreqGHz(m)
	l1 := LevelEPI{
		Level: "L1", Dynamic: b.CacheDynamic, Leakage: b.CacheLeakage, EDC: b.EDC,
		Accesses: st.IAccesses + st.DAccesses,
		Misses:   st.IMisses + st.DMisses,
		StallNS:  float64((st.IMisses+st.DMisses)*uint64(s.cfg.L2.Latency)) / freq,
	}
	dyn, leak, edc := s.l2Breakdown(m, l2c, timeNS)
	l2 := LevelEPI{
		Level: "L2", Dynamic: dyn / instr, Leakage: leak / instr, EDC: edc / instr,
		Accesses: l2c.reads + l2c.writes,
		Misses:   l2c.fills,
		StallNS:  float64((st.IL2Misses+st.DL2Misses)*uint64(s.cfg.MemLatency)) / freq,
	}
	b.CacheDynamic += l2.Dynamic
	b.CacheLeakage += l2.Leakage
	b.EDC += l2.EDC
	return []LevelEPI{l1, l2}
}

// l2Breakdown returns the second level's raw (not per-instruction)
// dynamic, leakage and codec energies for one (sub-)run, mirroring the
// L1 accounting term by term: parallel lookups over the enabled ways,
// line-granular fills and write-backs, per-word codec passes, and
// leakage with the disabled ways gated. Every term is linear in the
// counters, so phase slices sum to run totals.
func (s *System) l2Breakdown(m Mode, c l2Counters, timeNS float64) (dyn, leak, edc float64) {
	vcc := s.cfg.Vcc(m)
	l2cfg := s.cfg.L2
	enabled := l2cfg.Ways
	if l2cfg.EnabledWays > 0 {
		enabled = l2cfg.EnabledWays
	}
	check := l2cfg.Protection.CheckBits()
	d := s.cfg.DataWordBits + check
	t := s.cfg.TagWordBits + check
	wpl := l2cfg.LineBytes * 8 / s.cfg.DataWordBits

	// Lookups probe every enabled way; a write lands its victim line
	// word by word (writes == word-write count, see l2Counters); fills
	// write the whole line plus tag; write-backs read the line out.
	dyn = float64(c.reads+c.writes) * float64(enabled) * s.l2Array.AccessEnergy(vcc, d, t)
	dyn += float64(c.writes) * float64(wpl) * s.l2Array.WriteEnergy(vcc, d, 0)
	dyn += float64(c.fills) * (s.l2Array.WriteEnergy(vcc, d, t) + float64(wpl-1)*s.l2Array.WriteEnergy(vcc, d, 0))
	dyn += float64(c.wbs) * float64(wpl) * s.l2Array.AccessEnergy(vcc, d, 0)

	leak = (float64(enabled)*s.l2Array.LeakPower(vcc, false) +
		float64(l2cfg.Ways-enabled)*s.l2Array.LeakPower(vcc, true)) * timeNS

	// Codec traffic: reads decode the selected word, incoming lines
	// (writes and fills) encode every word plus the tag, write-backs to
	// memory decode every word. Zero-valued models cost nothing.
	edc = float64(c.reads) * s.l2Data.DecodeEnergy(vcc)
	edc += float64(c.writes+c.fills) * (float64(wpl)*s.l2Data.EncodeEnergy(vcc) + s.l2Tag.EncodeEnergy(vcc))
	edc += float64(c.wbs) * float64(wpl) * s.l2Data.DecodeEnergy(vcc)
	if l2cfg.Protection != ecc.KindNone {
		leak += (s.l2Data.LeakPower(vcc, false) + s.l2Tag.LeakPower(vcc, false)) * timeNS
	}
	return dyn, leak, edc
}

// breakdown decomposes the energy of one (sub-)run — full run or one
// phase segment — given the two cache ports' event counters, the
// instruction count and the wall time. Every term is linear in its
// counters; RunStream relies on that to make per-phase breakdowns sum
// to the run-level one.
func (s *System) breakdown(m Mode, il1c, dl1c portCounters, instructions uint64, timeNS float64) Breakdown {
	var b Breakdown
	vcc := s.cfg.Vcc(m)
	dataCodec, tagCodec := s.activeCodecs(m)
	wpl := s.cfg.WordsPerLine()
	for _, p := range []portCounters{il1c, dl1c} {
		// Parallel lookups: every access probes all enabled ways.
		b.CacheDynamic += float64(p.reads+p.writes) * s.lookupEnergy(m)
		// Store hits write one word into the hit way.
		b.CacheDynamic += float64(p.writeHitHP) * s.wayWordWriteEnergy(m, false, false)
		b.CacheDynamic += float64(p.writeHitULE) * s.wayWordWriteEnergy(m, true, false)
		// Line fills write the whole line plus tag into the fill way.
		fillHP := s.wayWordWriteEnergy(m, false, true) + float64(wpl-1)*s.wayWordWriteEnergy(m, false, false)
		fillULE := s.wayWordWriteEnergy(m, true, true) + float64(wpl-1)*s.wayWordWriteEnergy(m, true, false)
		b.CacheDynamic += float64(p.fillsHP)*fillHP + float64(p.fillsULE)*fillULE
		// Writebacks read the victim line out.
		vd, _ := s.hpReadBits()
		ud, _ := s.uleReadBits(m)
		b.CacheDynamic += float64(p.wbHP) * float64(wpl) * s.hpArray.AccessEnergy(vcc, vd, 0)
		b.CacheDynamic += float64(p.wbULE) * float64(wpl) * s.uleArray.AccessEnergy(vcc, ud, 0)

		// EDC: one decode per read (the selected word), one encode per
		// written word, line fills encode every word plus the tag,
		// writebacks decode every word.
		b.EDC += float64(p.reads) * dataCodec.DecodeEnergy(vcc)
		b.EDC += float64(p.writeHitHP+p.writeHitULE) * dataCodec.EncodeEnergy(vcc)
		fills := float64(p.fillsHP + p.fillsULE)
		b.EDC += fills * (float64(wpl)*dataCodec.EncodeEnergy(vcc) + tagCodec.EncodeEnergy(vcc))
		b.EDC += float64(p.wbHP+p.wbULE) * float64(wpl) * dataCodec.DecodeEnergy(vcc)
	}
	// Two cache instances (IL1, DL1) leak for the whole (sub-)run.
	b.CacheLeakage = 2 * s.cacheLeakPower(m) * timeNS
	b.Core = CoreDynEPI*bitcell.DynScale(vcc)*float64(instructions) +
		CoreLeakPower*bitcell.LeakScale(vcc)*timeNS

	instr := float64(instructions)
	b.CacheDynamic /= instr
	b.CacheLeakage /= instr
	b.EDC /= instr
	b.Core /= instr
	return b
}

// AreaReport decomposes the layout area of one cache instance, in
// minimum-6T-bitcell equivalents.
type AreaReport struct {
	HPWays  float64
	ULEWays float64
	Codecs  float64
}

// Total returns the summed area.
func (a AreaReport) Total() float64 { return a.HPWays + a.ULEWays + a.Codecs }

// Area returns the area decomposition of one cache instance.
func (s *System) Area() AreaReport {
	var codecs float64
	for _, c := range []energy.CodecModel{s.secded, s.tagSEC, s.dected, s.tagDEC} {
		codecs += c.Area()
	}
	return AreaReport{
		HPWays:  float64(s.cfg.Ways-s.cfg.ULEWays) * s.hpArray.Area(),
		ULEWays: float64(s.cfg.ULEWays) * s.uleArray.Area(),
		Codecs:  codecs,
	}
}
