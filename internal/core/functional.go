package core

import (
	"fmt"

	"edcache/internal/cache"
	"edcache/internal/ecc"
	"edcache/internal/faults"
)

// FunctionalCache is a bit-accurate model of the ULE-mode cache: a
// single-way (direct-mapped) cache whose data and tag arrays hold real
// EDC codewords in a ProtectedWay, over a backing memory. Every load
// returns data that travelled through the encoder, the stuck-at fault
// map and the decoder — the executable counterpart of the performance
// model, used by the integration tests to prove the architecture's
// correctness claim (software never observes a hard fault) rather than
// assume it.
type FunctionalCache struct {
	sim *cache.Cache
	way *ProtectedWay
	mem map[uint32]uint32
	cfg cache.Config
	wpl int
	// lineAddr[line] tracks which memory line each cache line holds so
	// evictions can write back decoded contents.
	lineAddr []uint32
	lineUsed []bool

	// Uncorrectable counts reads whose decode reported Detected; the
	// architecture would raise a machine-check — the integration tests
	// require it to stay zero at yield-accepted fault maps.
	Uncorrectable int
	// CorrectedReads counts transparently repaired reads.
	CorrectedReads int

	// res is accessBatch's Result scratch, sized to the largest chunk.
	res []cache.Result
}

// NewFunctionalCache builds the functional ULE cache: `lines` sets of
// one way with 32-bit words, protected by the given code, over the given
// fault map (nil for fault-free).
func NewFunctionalCache(lines, wordsPerLine int, kind ecc.Kind, fmap *faults.WayFaults) (*FunctionalCache, error) {
	cfg := cache.Config{Sets: lines, Ways: 1, LineBytes: wordsPerLine * 4}
	sim, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	way, err := NewProtectedWay(lines, wordsPerLine, kind, 32, 26, fmap)
	if err != nil {
		return nil, err
	}
	return &FunctionalCache{
		sim:      sim,
		way:      way,
		mem:      make(map[uint32]uint32),
		cfg:      cfg,
		wpl:      wordsPerLine,
		lineAddr: make([]uint32, lines),
		lineUsed: make([]bool, lines),
	}, nil
}

func (f *FunctionalCache) locate(addr uint32) (set, word int) {
	wordAddr := addr &^ 3
	line := f.sim.LineAddr(wordAddr)
	set = int(line/uint32(f.cfg.LineBytes)) % f.cfg.Sets
	word = int(wordAddr-line) / 4
	return set, word
}

// Load returns the 32-bit word at addr (word-aligned), filling the line
// on a miss.
func (f *FunctionalCache) Load(addr uint32) (uint32, bool) {
	res := f.sim.Access(addr, false)
	set, word := f.locate(addr)
	if !res.Hit {
		f.fill(set, addr, res)
	}
	v, dres := f.way.ReadData(set, word)
	f.note(dres)
	return uint32(v), res.Hit
}

// Store writes the 32-bit word at addr (word-aligned), write-allocating
// on a miss.
func (f *FunctionalCache) Store(addr uint32, value uint32) bool {
	res := f.sim.Access(addr, true)
	set, word := f.locate(addr)
	if !res.Hit {
		f.fill(set, addr, res)
	}
	f.way.WriteData(set, word, uint64(value))
	return res.Hit
}

// accessBatch replays ops in order on the batched replay path: the
// whole chunk drives the timing simulator as one cache.AccessBatch
// call, then the protected-array work — fills, encoded stores, decoded
// loads — consumes the Result slice per op. Stores write value(addr)
// (the replay pattern ReplayFunctional uses; trace records carry no
// data). Semantically this is exactly Load/Store per op: the timing
// simulator sees the identical access sequence, and the protected
// state advances in the same order because nothing between the ops
// touches it.
func (f *FunctionalCache) accessBatch(ops []cache.Op, value func(addr uint32) uint32, miss []bool) {
	if cap(f.res) < len(ops) {
		f.res = make([]cache.Result, len(ops))
	}
	res := f.res[:len(ops)]
	f.sim.AccessBatch(ops, res)
	for i, op := range ops {
		set, word := f.locate(op.Addr)
		if !res[i].Hit {
			f.fill(set, op.Addr, res[i])
		}
		if op.Write {
			f.way.WriteData(set, word, uint64(value(op.Addr)))
		} else {
			_, dres := f.way.ReadData(set, word)
			f.note(dres)
		}
		miss[i] = !res[i].Hit
	}
}

// fill loads a line from memory through the encoder, writing back the
// victim first if it was dirty.
func (f *FunctionalCache) fill(set int, addr uint32, res cache.Result) {
	lineBase := f.sim.LineAddr(addr &^ 3)
	if res.Writeback && f.lineUsed[set] {
		old := f.lineAddr[set]
		for w := 0; w < f.wpl; w++ {
			v, dres := f.way.ReadData(set, w)
			f.note(dres)
			f.mem[old+uint32(w*4)] = uint32(v)
		}
	}
	for w := 0; w < f.wpl; w++ {
		f.way.WriteData(set, w, uint64(f.mem[lineBase+uint32(w*4)]))
	}
	tag := uint64(lineBase) / uint64(f.cfg.LineBytes*f.cfg.Sets)
	f.way.WriteTag(set, tag&((1<<26)-1))
	f.lineAddr[set] = lineBase
	f.lineUsed[set] = true
}

func (f *FunctionalCache) note(r ecc.Result) {
	switch r.Status {
	case ecc.Detected:
		f.Uncorrectable++
	case ecc.Corrected:
		f.CorrectedReads++
	}
}

// MemWord returns the backing-memory copy of a word (test helper).
func (f *FunctionalCache) MemWord(addr uint32) uint32 { return f.mem[addr&^3] }

// Flush writes every dirty line back to memory through the decoder.
func (f *FunctionalCache) Flush() error {
	for set := 0; set < f.cfg.Sets; set++ {
		if !f.lineUsed[set] {
			continue
		}
		base := f.lineAddr[set]
		for w := 0; w < f.wpl; w++ {
			v, dres := f.way.ReadData(set, w)
			f.note(dres)
			f.mem[base+uint32(w*4)] = uint32(v)
		}
	}
	f.sim.Flush()
	for i := range f.lineUsed {
		f.lineUsed[i] = false
	}
	if f.Uncorrectable > 0 {
		return fmt.Errorf("core: %d uncorrectable words encountered", f.Uncorrectable)
	}
	return nil
}
