package core

import (
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/yield"
)

// TestRunArenaBitIdenticalToRun is the decode-once determinism
// contract at the System level: replaying a shared slab must produce a
// Report — counters, cycles, per-phase segmentation, energy — that is
// bit-identical to regenerating the workload, for a plain, a
// dependent-load and a phase-annotated workload, in both modes.
func TestRunArenaBitIdenticalToRun(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	arenas := bench.NewArenaCache()
	for _, name := range []string{"gsm_c", "ptrchase_s", "phased_mix"} {
		w, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w = w.ScaledTo(10_000)
		for _, m := range []Mode{ModeHP, ModeULE} {
			gen, err := sys.Run(w, m)
			if err != nil {
				t.Fatal(err)
			}
			arena, err := sys.RunArena(w.Name, arenas.Get(w), m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gen, arena) {
				t.Errorf("%s at %v: arena-backed Report diverges from generator-backed", name, m)
			}
			if name == "phased_mix" && len(arena.Phases) == 0 {
				t.Errorf("%s at %v: arena replay lost the per-phase segmentation", name, m)
			}
		}
	}
}

// TestRunPairsArenaMatchesRunPairsN pins the fan-out entry point:
// shared-slab pairs equal generator pairs for every worker count.
func TestRunPairsArenaMatchesRunPairsN(t *testing.T) {
	ws := bench.Small()
	for i := range ws {
		ws[i] = ws[i].ScaledTo(5_000)
	}
	want, err := RunPairsN(yield.ScenarioB, ModeULE, ws, 1)
	if err != nil {
		t.Fatal(err)
	}
	arenas := bench.NewArenaCache()
	for _, workers := range []int{1, 8} {
		got, err := RunPairsArena(yield.ScenarioB, ModeULE, ws, arenas, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: arena-backed pairs diverge from RunPairsN", workers)
		}
	}
}
