package core_test

import (
	"fmt"

	"edcache/internal/bench"
	"edcache/internal/core"
	"edcache/internal/yield"
)

// NewSystem sizes a complete platform (running the Fig. 2 methodology)
// and Run evaluates one workload in one operating mode.
func ExampleNewSystem() {
	sys, _ := core.NewSystem(core.PaperConfig(yield.ScenarioA, core.Proposed))
	w, _ := bench.ByName("adpcm_c")
	rep, _ := sys.Run(w.ScaledTo(50_000), core.ModeULE)
	fmt.Printf("%s at %v: CPI %.2f, EDC share %.1f%%\n",
		rep.Workload, rep.Mode, rep.Stats.CPI(), 100*rep.EPI.EDC/rep.EPI.Total())
	// Output: adpcm_c at ULE: CPI 1.04, EDC share 0.8%
}

// The four evaluated configurations are baseline/proposed × scenario
// A/B; the ULE way's cell and code follow from the configuration.
func ExampleConfig_Name() {
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		for _, d := range []core.Design{core.Baseline, core.Proposed} {
			sys := core.MustNewSystem(core.PaperConfig(s, d))
			fmt.Printf("%-11s ULE way: %v +%d check bits\n",
				sys.Config().Name(), sys.ULEWayArray().Cell, sys.ULEWayArray().DataCheck)
		}
	}
	// Output:
	// A/baseline  ULE way: 10T(x2.60) +0 check bits
	// A/proposed  ULE way: 8T(x1.20) +7 check bits
	// B/baseline  ULE way: 10T(x2.60) +7 check bits
	// B/proposed  ULE way: 8T(x1.20) +13 check bits
}
