package core

import (
	"fmt"
	"math/rand"

	"edcache/internal/ecc"
	"edcache/internal/faults"
)

// ProtectedWay is a functional (bit-accurate) model of one ULE way's
// storage: every data and tag word is stored as a real codeword of the
// configured EDC code, hard faults from a fault map corrupt it on every
// read, and soft errors can be injected into the stored state. It backs
// the fault-injection example and the reliability-equivalence experiment
// (E7), complementing the analytic yield math with an executable check
// that the architecture really returns correct data on faulty silicon.
type ProtectedWay struct {
	geom      faults.WayGeometry
	dataCodec ecc.Codec
	tagCodec  ecc.Codec
	fmap      *faults.WayFaults
	store     map[faults.WordKey]uint64
}

// NewProtectedWay builds a way with the given geometry, code family and
// fault map. The fault map's word widths must match the codec geometry.
func NewProtectedWay(lines, wordsPerLine int, kind ecc.Kind, dataBits, tagBits int, fmap *faults.WayFaults) (*ProtectedWay, error) {
	dataCodec, err := ecc.New(kind, dataBits)
	if err != nil {
		return nil, err
	}
	tagCodec, err := ecc.New(kind, tagBits)
	if err != nil {
		return nil, err
	}
	geom := faults.WayGeometry{
		Lines:        lines,
		WordsPerLine: wordsPerLine,
		DataWordBits: ecc.TotalBits(dataCodec),
		TagWordBits:  ecc.TotalBits(tagCodec),
	}
	if fmap == nil {
		fmap = faults.Empty(geom)
	}
	fg := fmap.Geometry()
	if fg != geom {
		return nil, fmt.Errorf("core: fault map geometry %+v does not match way geometry %+v", fg, geom)
	}
	return &ProtectedWay{
		geom:      geom,
		dataCodec: dataCodec,
		tagCodec:  tagCodec,
		fmap:      fmap,
		store:     make(map[faults.WordKey]uint64),
	}, nil
}

// Geometry returns the way's physical geometry (codeword widths).
func (p *ProtectedWay) Geometry() faults.WayGeometry { return p.geom }

// DataCodec returns the codec protecting data words.
func (p *ProtectedWay) DataCodec() ecc.Codec { return p.dataCodec }

func (p *ProtectedWay) checkData(line, word int) {
	if line < 0 || line >= p.geom.Lines || word < 0 || word >= p.geom.WordsPerLine {
		panic(fmt.Sprintf("core: data word (%d,%d) out of range", line, word))
	}
}

// WriteData encodes and stores a data word.
func (p *ProtectedWay) WriteData(line, word int, value uint64) {
	p.checkData(line, word)
	k := faults.WordKey{Line: line, Word: word}
	p.store[k] = p.dataCodec.Encode(value & ecc.DataMask(p.dataCodec))
}

// ReadData reads a data word through the fault map and the decoder.
func (p *ProtectedWay) ReadData(line, word int) (uint64, ecc.Result) {
	p.checkData(line, word)
	k := faults.WordKey{Line: line, Word: word}
	raw := p.fmap.Apply(k, p.store[k])
	return p.dataCodec.Decode(raw)
}

// WriteTag encodes and stores a line's tag word.
func (p *ProtectedWay) WriteTag(line int, value uint64) {
	if line < 0 || line >= p.geom.Lines {
		panic(fmt.Sprintf("core: tag line %d out of range", line))
	}
	k := faults.WordKey{Line: line, Word: p.geom.TagWordIndex()}
	p.store[k] = p.tagCodec.Encode(value & ecc.DataMask(p.tagCodec))
}

// ReadTag reads a line's tag word through the fault map and decoder.
func (p *ProtectedWay) ReadTag(line int) (uint64, ecc.Result) {
	if line < 0 || line >= p.geom.Lines {
		panic(fmt.Sprintf("core: tag line %d out of range", line))
	}
	k := faults.WordKey{Line: line, Word: p.geom.TagWordIndex()}
	raw := p.fmap.Apply(k, p.store[k])
	return p.tagCodec.Decode(raw)
}

// InjectSoftError flips one random stored bit of the given data word,
// modelling a particle strike between write and read.
func (p *ProtectedWay) InjectSoftError(line, word int, rng *rand.Rand) {
	p.checkData(line, word)
	k := faults.WordKey{Line: line, Word: word}
	p.store[k] = faults.FlipRandomBit(p.store[k], ecc.TotalBits(p.dataCodec), rng)
}

// Scrub re-encodes every stored word from its current decoded value,
// clearing accumulated correctable soft errors (the periodic scrub the
// architecture can run at mode switches). It returns the number of words
// whose decode reported an uncorrectable error; those words keep their
// raw contents.
func (p *ProtectedWay) Scrub() int {
	bad := 0
	for k, stored := range p.store {
		var codec ecc.Codec = p.dataCodec
		if k.Word == p.geom.TagWordIndex() {
			codec = p.tagCodec
		}
		v, res := codec.Decode(p.fmap.Apply(k, stored))
		if res.Status == ecc.Detected {
			bad++
			continue
		}
		p.store[k] = codec.Encode(v)
	}
	return bad
}
