package core

import (
	"testing"

	"edcache/internal/ecc"
	"edcache/internal/yield"
)

func TestPaperConfigValid(t *testing.T) {
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		for _, d := range []Design{Baseline, Proposed} {
			cfg := PaperConfig(s, d)
			if err := cfg.Validate(); err != nil {
				t.Errorf("PaperConfig(%v,%v): %v", s, d, err)
			}
			if cfg.Sets*cfg.Ways*cfg.LineBytes != 8192 {
				t.Errorf("paper cache is not 8 KB")
			}
			if cfg.Ways-cfg.ULEWays != 7 || cfg.ULEWays != 1 {
				t.Errorf("paper way split is not 7+1")
			}
		}
	}
}

func TestConfigValidationRejectsBadInputs(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := PaperConfig(yield.ScenarioA, Proposed)
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Sets = 33 }),
		mod(func(c *Config) { c.ULEWays = 0 }),
		mod(func(c *Config) { c.ULEWays = 8 }),
		mod(func(c *Config) { c.LineBytes = 24 }),
		mod(func(c *Config) { c.DataWordBits = 52 }),
		mod(func(c *Config) { c.VccULE = 1.2 }),
		mod(func(c *Config) { c.FreqULEGHz = 2.0 }),
		mod(func(c *Config) { c.MemLatency = 0 }),
		mod(func(c *Config) { c.TargetYield = 0 }),
		mod(func(c *Config) { c.DataWordBits = 48 }), // 32B line not divisible
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestModeAndDesignLabels(t *testing.T) {
	if ModeHP.String() != "HP" || ModeULE.String() != "ULE" {
		t.Error("mode names")
	}
	if Baseline.String() != "baseline" || Proposed.String() != "proposed" {
		t.Error("design names")
	}
	cfg := PaperConfig(yield.ScenarioB, Proposed)
	if cfg.Name() != "B/proposed" {
		t.Errorf("config name %q", cfg.Name())
	}
}

func TestULEWayCodeTable(t *testing.T) {
	// The code-activation table of Section III-B.
	cases := []struct {
		s    yield.Scenario
		d    Design
		m    Mode
		want ecc.Kind
	}{
		{yield.ScenarioA, Baseline, ModeHP, ecc.KindNone},
		{yield.ScenarioA, Baseline, ModeULE, ecc.KindNone},
		{yield.ScenarioA, Proposed, ModeHP, ecc.KindNone}, // SECDED turned off
		{yield.ScenarioA, Proposed, ModeULE, ecc.KindSECDED},
		{yield.ScenarioB, Baseline, ModeHP, ecc.KindSECDED},
		{yield.ScenarioB, Baseline, ModeULE, ecc.KindSECDED},
		{yield.ScenarioB, Proposed, ModeHP, ecc.KindSECDED}, // DECTED turned off
		{yield.ScenarioB, Proposed, ModeULE, ecc.KindDECTED},
	}
	for _, tc := range cases {
		cfg := PaperConfig(tc.s, tc.d)
		if got := cfg.uleWayCode(tc.m); got != tc.want {
			t.Errorf("%v/%v at %v: code %v, want %v", tc.s, tc.d, tc.m, got, tc.want)
		}
	}
}

func TestSystemCellSelection(t *testing.T) {
	base := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	prop := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	if base.ULEWayArray().Cell.Topo.String() != "10T" {
		t.Errorf("baseline ULE cell %v, want 10T", base.ULEWayArray().Cell)
	}
	if prop.ULEWayArray().Cell.Topo.String() != "8T" {
		t.Errorf("proposed ULE cell %v, want 8T", prop.ULEWayArray().Cell)
	}
	if base.HPWayArray().Cell.Topo.String() != "6T" {
		t.Errorf("HP cell %v, want 6T", base.HPWayArray().Cell)
	}
	// Check-bit columns: baseline A has none, proposed A stores SECDED.
	if base.ULEWayArray().DataCheck != 0 || prop.ULEWayArray().DataCheck != 7 {
		t.Errorf("check columns: base %d prop %d", base.ULEWayArray().DataCheck, prop.ULEWayArray().DataCheck)
	}
	// Scenario B: proposed stores DECTED columns.
	propB := MustNewSystem(PaperConfig(yield.ScenarioB, Proposed))
	if propB.ULEWayArray().DataCheck != 13 {
		t.Errorf("scenario B proposed check columns %d, want 13", propB.ULEWayArray().DataCheck)
	}
}

func TestExtraLatencyAccounting(t *testing.T) {
	// The extra EDC pipeline cycle is charged to the proposed design at
	// ULE mode only (paper: no HP-mode performance degradation, ~3 %
	// at ULE).
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		base := MustNewSystem(PaperConfig(s, Baseline))
		prop := MustNewSystem(PaperConfig(s, Proposed))
		if base.ExtraHitLatency(ModeHP) != 0 || base.ExtraHitLatency(ModeULE) != 0 {
			t.Errorf("scenario %v: baseline must have no extra latency", s)
		}
		if prop.ExtraHitLatency(ModeHP) != 0 {
			t.Errorf("scenario %v: proposed must not slow down HP mode", s)
		}
		if prop.ExtraHitLatency(ModeULE) != 1 {
			t.Errorf("scenario %v: proposed must pay one EDC cycle at ULE mode", s)
		}
	}
}

func TestAreaProposedBeatsBaseline(t *testing.T) {
	// §IV-B: the proposed design is smaller — the sized 8T+EDC ULE way
	// (including check columns and codecs) undercuts the fault-free 10T
	// way in both scenarios.
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		base := MustNewSystem(PaperConfig(s, Baseline)).Area()
		prop := MustNewSystem(PaperConfig(s, Proposed)).Area()
		if prop.ULEWays+prop.Codecs >= base.ULEWays+base.Codecs {
			t.Errorf("scenario %v: proposed ULE way + codecs area %.0f ≥ baseline %.0f",
				s, prop.ULEWays+prop.Codecs, base.ULEWays+base.Codecs)
		}
		if prop.Total() >= base.Total() {
			t.Errorf("scenario %v: proposed total area %.0f ≥ baseline %.0f",
				s, prop.Total(), base.Total())
		}
		if prop.HPWays != base.HPWays {
			t.Errorf("scenario %v: HP ways must be identical across designs", s)
		}
	}
}

func TestLeakageGatingAtULE(t *testing.T) {
	s := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	hp := s.cacheLeakPower(ModeHP)
	ule := s.cacheLeakPower(ModeULE)
	if ule >= hp {
		t.Errorf("ULE leakage %g ≥ HP leakage %g: gating and DIBL must both help", ule, hp)
	}
	// At ULE the 10T ULE way dominates: gated HP ways contribute ≤ 10%.
	vcc := s.Config().Vcc(ModeULE)
	gatedHP := 7 * s.HPWayArray().LeakPower(vcc, true)
	if gatedHP > 0.1*ule {
		t.Errorf("gated HP ways leak %g of %g — gating ineffective", gatedHP, ule)
	}
}
