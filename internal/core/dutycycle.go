package core

import (
	"fmt"

	"edcache/internal/bench"
	"edcache/internal/bitcell"
)

// Phase is one segment of a duty-cycled execution: a workload run in one
// operating mode.
type Phase struct {
	Mode     Mode
	Workload bench.Workload
}

// ModeSwitchCost models one Vcc transition (Section III-B: "The
// processor itself is responsible for gating or ungating the
// corresponding cache ways (or corresponding EDC block) on a Vcc
// change. Overheads are negligible, as explained in [18]"). We charge
// them anyway so the claim is checkable: a voltage-regulator settle time
// plus the energy to flush dirty lines before gating.
type ModeSwitchCost struct {
	SettleNS     float64 // Vcc ramp + PLL relock time
	FlushedLines int     // dirty lines written back at the switch
	EnergyPJ     float64 // writeback + gating transition energy
}

// DutyCycleResult aggregates a multi-phase run.
type DutyCycleResult struct {
	Phases   []Report
	Switches []ModeSwitchCost

	TotalInstructions uint64
	TotalTimeNS       float64
	TotalEnergyPJ     float64
}

// AvgPowerW returns the average power over the whole schedule in watts.
func (r DutyCycleResult) AvgPowerW() float64 {
	if r.TotalTimeNS == 0 {
		return 0
	}
	return r.TotalEnergyPJ / r.TotalTimeNS * 1e-3 // pJ/ns = mW
}

// EPI returns the schedule-wide energy per instruction (pJ).
func (r DutyCycleResult) EPI() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return r.TotalEnergyPJ / float64(r.TotalInstructions)
}

// ScheduleRegime is one cell of a duty-cycle schedule's two-axis
// decomposition: the intersection of one schedule phase (a workload run
// in one mode) with one of that workload's phase-annotated regimes.
// Unannotated schedule phases contribute a single cell with Regime -1.
type ScheduleRegime struct {
	Schedule int    // index into DutyCycleResult.Phases
	Mode     Mode   // the schedule phase's operating mode
	Workload string // the schedule phase's workload name
	Regime   int    // workload phase id, or -1 for unannotated phases

	Instructions uint64
	TimeNS       float64
	EPI          Breakdown

	// Levels is the cell's per-level split (nil on single-level runs):
	// the duty-cycle × workload-regime × cache-level cross-reference.
	Levels []LevelEPI
}

// Decompose cross-references the schedule's mode phases with each
// workload's execution regimes: one row per (schedule phase, workload
// phase) pair, in schedule order. Instruction counts sum exactly to
// TotalInstructions; time and energy sum to the totals minus the
// mode-switch overheads (which belong to no regime — read them from
// Switches). Rows of hierarchy runs carry the per-level breakdown, so a
// duty cycle can be audited per schedule phase, per working-set regime
// and per cache level at once.
func (r DutyCycleResult) Decompose() []ScheduleRegime {
	var out []ScheduleRegime
	for i, rep := range r.Phases {
		if len(rep.Phases) == 0 {
			out = append(out, ScheduleRegime{
				Schedule: i, Mode: rep.Mode, Workload: rep.Workload, Regime: -1,
				Instructions: rep.Stats.Instructions,
				TimeNS:       rep.TimeNS,
				EPI:          rep.EPI,
				Levels:       rep.Levels,
			})
			continue
		}
		for _, ph := range rep.Phases {
			out = append(out, ScheduleRegime{
				Schedule: i, Mode: rep.Mode, Workload: rep.Workload, Regime: int(ph.Phase),
				Instructions: ph.Stats.Instructions,
				TimeNS:       ph.TimeNS,
				EPI:          ph.EPI,
				Levels:       ph.Levels,
			})
		}
	}
	return out
}

// Per-switch constants: a conservative regulator settle time and the
// gating transition energy, both of which the result reports so the
// "negligible" claim is auditable rather than assumed.
const (
	switchSettleNS   = 10_000 // 10 us Vcc ramp
	switchGateEnergy = 50.0   // pJ to (un)gate the ways and codecs
)

// RunDutyCycle executes the phases in order on this system, charging
// mode-switch costs between phases with different modes. Caches start
// cold in each phase whose mode differs from the previous one (the
// gated ways lose state; the surviving ways are flushed before gating so
// memory stays consistent — the flush writebacks are estimated from the
// previous phase's dirty-line count).
func (s *System) RunDutyCycle(phases []Phase) (DutyCycleResult, error) {
	return s.runDutyCycle(phases, func(_ int, ph Phase) (Report, error) {
		return s.Run(ph.Workload, ph.Mode)
	})
}

// runDutyCycle is the schedule walk shared by RunDutyCycle and
// RunDutyCycleCapture; run executes one phase and returns its report.
func (s *System) runDutyCycle(phases []Phase, run func(i int, ph Phase) (Report, error)) (DutyCycleResult, error) {
	if len(phases) == 0 {
		return DutyCycleResult{}, fmt.Errorf("core: empty duty-cycle schedule")
	}
	var out DutyCycleResult
	for i, ph := range phases {
		rep, err := run(i, ph)
		if err != nil {
			return DutyCycleResult{}, fmt.Errorf("core: phase %d (%s at %v): %w", i, ph.Workload.Name, ph.Mode, err)
		}
		out.Phases = append(out.Phases, rep)
		out.TotalInstructions += rep.Stats.Instructions
		out.TotalTimeNS += rep.TimeNS
		out.TotalEnergyPJ += rep.EPI.Total() * float64(rep.Stats.Instructions)

		if i+1 < len(phases) && phases[i+1].Mode != ph.Mode {
			sw := s.modeSwitchCost(rep)
			out.Switches = append(out.Switches, sw)
			out.TotalTimeNS += sw.SettleNS
			out.TotalEnergyPJ += sw.EnergyPJ
		}
	}
	return out, nil
}

// modeSwitchCost estimates the cost of leaving the mode the report ran
// in: dirty lines written back (approximated by the phase's write-hit
// count capped at the cache's line capacity) plus the gating energy.
func (s *System) modeSwitchCost(prev Report) ModeSwitchCost {
	capacity := s.cfg.Sets * s.cfg.Ways
	if prev.Mode == ModeULE {
		capacity = s.cfg.Sets * s.cfg.ULEWays
	}
	dirty := int(prev.Stats.Stores)
	if dirty > capacity {
		dirty = capacity
	}
	vcc := s.cfg.Vcc(prev.Mode)
	wpl := s.cfg.WordsPerLine()
	// Each flushed line is read out word by word from the array.
	d, _ := s.uleReadBits(prev.Mode)
	perLine := float64(wpl) * s.uleArray.AccessEnergy(vcc, d, 0)
	return ModeSwitchCost{
		SettleNS:     switchSettleNS,
		FlushedLines: dirty,
		EnergyPJ:     float64(dirty)*perLine + switchGateEnergy*bitcell.DynScale(vcc),
	}
}
