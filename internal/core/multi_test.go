package core

import (
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/yield"
)

// TestRunGroupBitIdenticalToRunStream is the single-pass engine's
// System-level contract: one RunGroupArena pass over the full
// design×mode group must produce, member by member, Reports
// bit-identical to standalone RunArena — counters, cycles, per-phase
// segmentation, energy — for plain, dependent-load and phase-annotated
// workloads across both scenarios.
func TestRunGroupBitIdenticalToRunStream(t *testing.T) {
	arenas := bench.NewArenaCache()
	for _, sc := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		base := MustNewSystem(PaperConfig(sc, Baseline))
		prop := MustNewSystem(PaperConfig(sc, Proposed))
		members := []GroupMember{
			{base, ModeHP}, {prop, ModeHP}, {base, ModeULE}, {prop, ModeULE},
		}
		for _, name := range []string{"gsm_c", "ptrchase_s", "phased_mix"} {
			w, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w = w.ScaledTo(10_000)
			got, err := RunGroupArena(w.Name, arenas.Get(w), members)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(members) {
				t.Fatalf("%v/%s: %d reports for %d members", sc, name, len(got), len(members))
			}
			for k, gm := range members {
				want, err := gm.Sys.RunArena(w.Name, arenas.Get(w), gm.Mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[k], want) {
					t.Errorf("%v/%s member %d (%s/%v): group Report diverges from RunArena",
						sc, name, k, gm.Sys.Config().Name(), gm.Mode)
				}
				if name == "phased_mix" && len(got[k].Phases) == 0 {
					t.Errorf("%v/%s member %d: group replay lost the per-phase segmentation", sc, name, k)
				}
			}
		}
	}
}

// TestGroupDedupSharesSimulators pins the bank-slot sharing that makes
// a design×mode group cheap: baseline and proposed at the same mode
// have identical cache geometry and gating, so the 4-member paper group
// must build only 2 distinct simulators per side.
func TestGroupDedupSharesSimulators(t *testing.T) {
	base := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	prop := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	members := []GroupMember{
		{base, ModeHP}, {prop, ModeHP}, {base, ModeULE}, {prop, ModeULE},
	}
	mp, err := newMultiPort(members, true)
	if err != nil {
		t.Fatal(err)
	}
	if mp.bank.Len() != 2 {
		t.Fatalf("4-member design×mode group built %d simulators, want 2 (one per mode)", mp.bank.Len())
	}
	if mp.slot[0] != mp.slot[1] || mp.slot[2] != mp.slot[3] || mp.slot[0] == mp.slot[2] {
		t.Fatalf("slot assignment %v, want designs sharing per mode", mp.slot)
	}
	// The EDC latency stays per logical member despite the shared slot.
	if mp.ExtraHitLatency(2) != 0 || mp.ExtraHitLatency(3) != 1 {
		t.Fatalf("ULE extra latencies = %d/%d, want 0 (baseline) and 1 (proposed)",
			mp.ExtraHitLatency(2), mp.ExtraHitLatency(3))
	}
	// Gated configurations must not share with ungated ones.
	gatedCfg := PaperConfig(yield.ScenarioA, Baseline)
	gatedCfg.GateULEWaysAtHP = true
	gated := MustNewSystem(gatedCfg)
	mp2, err := newMultiPort([]GroupMember{{base, ModeHP}, {gated, ModeHP}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if mp2.bank.Len() != 2 {
		t.Fatalf("gated and ungated HP members share a simulator (bank len %d)", mp2.bank.Len())
	}
}

// TestRunPairsMultiMatchesRunPairsArena pins the grouped fan-out entry
// point against the per-replay one, for every worker count.
func TestRunPairsMultiMatchesRunPairsArena(t *testing.T) {
	ws := bench.Small()
	for i := range ws {
		ws[i] = ws[i].ScaledTo(5_000)
	}
	arenas := bench.NewArenaCache()
	want, err := RunPairsArena(yield.ScenarioB, ModeULE, ws, arenas, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := RunPairsMulti(yield.ScenarioB, ModeULE, ws, arenas, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: grouped pairs diverge from RunPairsArena", workers)
		}
	}
}

func TestRunGroupValidation(t *testing.T) {
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(100)
	if _, err := RunGroup("x", w.Stream(), nil); err == nil {
		t.Fatal("empty group accepted")
	}
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	if _, err := RunGroup("x", w.Stream(), []GroupMember{{nil, ModeHP}}); err == nil {
		t.Fatal("nil system accepted")
	}
	slowCfg := PaperConfig(yield.ScenarioA, Baseline)
	slowCfg.MemLatency = 30
	slow := MustNewSystem(slowCfg)
	if _, err := RunGroup("x", w.Stream(), []GroupMember{{sys, ModeHP}, {slow, ModeHP}}); err == nil {
		t.Fatal("mixed memory latencies accepted")
	}
}
