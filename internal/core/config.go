// Package core implements the paper's contribution: the hybrid-operation,
// single-Vcc-domain cache architecture in its four evaluated flavours —
// baseline and proposed designs for reliability scenarios A and B — with
// mode switching (HP ↔ ULE), way gating, per-mode EDC activation, and the
// full-system energy-per-instruction accounting behind Figures 3 and 4.
package core

import (
	"fmt"

	"edcache/internal/ecc"
	"edcache/internal/yield"
)

// Mode is one of the two operating modes of the platform.
type Mode int

const (
	// ModeHP: high or moderate voltage, all ways enabled, big
	// workloads, short duty cycle.
	ModeHP Mode = iota
	// ModeULE: near-/sub-threshold voltage, only ULE ways enabled,
	// small workloads, dominant duty cycle.
	ModeULE
)

// String names the mode as the paper does.
func (m Mode) String() string {
	if m == ModeHP {
		return "HP"
	}
	return "ULE"
}

// Design selects the baseline (Maric et al., CF 2011) or the proposed
// (this paper) cache organisation.
type Design int

const (
	// Baseline uses fault-free-sized 10T cells in the ULE ways.
	Baseline Design = iota
	// Proposed replaces them by 8T cells plus EDC.
	Proposed
)

// String names the design.
func (d Design) String() string {
	if d == Baseline {
		return "baseline"
	}
	return "proposed"
}

// Config describes one complete system configuration.
type Config struct {
	Scenario yield.Scenario
	Design   Design

	// Cache geometry (shared by IL1 and DL1, as in the paper).
	Sets      int
	Ways      int
	ULEWays   int // ways built from ULE-capable cells (paper: 1, the "7+1" split)
	LineBytes int

	// Protection granularity.
	DataWordBits int // paper: 32
	TagWordBits  int // paper: 26

	// Operating points.
	VccHP      float64 // paper: 1.0 V
	VccULE     float64 // paper: 0.35 V
	FreqHPGHz  float64 // paper: 1 GHz
	FreqULEGHz float64 // paper: 5 MHz

	MemLatency  int     // cycles (paper: "in the order of 20")
	TargetYield float64 // paper example: 0.99

	// GateULEWaysAtHP disables the ULE ways during HP mode instead of
	// reusing them. The paper argues against this (Section III-A: "ULE
	// ways are reused at HP mode, in spite of their inefficiency at
	// high Vcc, because they reduce the number of slow and
	// energy-hungry memory accesses"); the flag exists so ablation A5
	// can quantify that claim. False (reuse) is the paper's design.
	GateULEWaysAtHP bool

	// L2, when non-nil, puts a second cache level behind the L1s: both
	// L1 ports of a run feed one unified L2 (shared further across
	// cores by RunShared). nil keeps the exact single-level platform —
	// replay, timing and accounting are bit-identical to a build
	// without the field.
	L2 *L2Config
}

// L2Config is the geometry and policy of the optional second level.
// The L2 is built from HP-sized cells (it stays powered in both modes);
// its protection policy is independent of the L1's scenario coding,
// which is the knob behind ECC-in-L2-only design points.
type L2Config struct {
	Sets      int
	Ways      int
	LineBytes int // must equal the L1 line size (victim lines move verbatim)

	// EnabledWays caps the powered ways (0 = all enabled); the rest
	// are gated off at construction — the per-level way-disable policy.
	EnabledWays int

	// Latency is the L1-miss service time from the L2 in cycles; each
	// demand fill that misses the L2 adds the full MemLatency on top.
	Latency int

	// Protection selects the level's ECC policy (none, SECDED or
	// DECTED), applied to data and tag words in both modes.
	Protection ecc.Kind
}

// Validate reports whether the L2 geometry and policy are usable
// against the owning configuration.
func (l L2Config) Validate(c Config) error {
	if l.Sets <= 0 || l.Sets&(l.Sets-1) != 0 {
		return fmt.Errorf("core: L2 sets %d not a power of two", l.Sets)
	}
	if l.Ways < 1 || l.Ways > 64 {
		return fmt.Errorf("core: L2 ways %d outside 1..64", l.Ways)
	}
	if l.LineBytes != c.LineBytes {
		return fmt.Errorf("core: L2 line size %d B must equal the L1's %d B", l.LineBytes, c.LineBytes)
	}
	if l.EnabledWays < 0 || l.EnabledWays > l.Ways {
		return fmt.Errorf("core: L2 enabled ways %d outside 0..%d", l.EnabledWays, l.Ways)
	}
	if l.Latency < 1 {
		return fmt.Errorf("core: L2 latency %d must be ≥ 1", l.Latency)
	}
	switch l.Protection {
	case ecc.KindNone, ecc.KindSECDED, ecc.KindDECTED:
	default:
		return fmt.Errorf("core: unknown L2 protection %v", l.Protection)
	}
	return nil
}

// WithL2 returns a copy of the configuration with the given second
// level — the value-copy shape grid sweeps want.
func (c Config) WithL2(l2 L2Config) Config {
	c.L2 = &l2
	return c
}

// PaperConfig returns the configuration evaluated in the paper: 8 KB
// 8-way L1s with a 7+1 way split, 32 nm operating points, 20-cycle
// memory.
func PaperConfig(s yield.Scenario, d Design) Config {
	return Config{
		Scenario:     s,
		Design:       d,
		Sets:         32,
		Ways:         8,
		ULEWays:      1,
		LineBytes:    32,
		DataWordBits: 32,
		TagWordBits:  26,
		VccHP:        1.0,
		VccULE:       0.35,
		FreqHPGHz:    1.0,
		FreqULEGHz:   0.005,
		MemLatency:   20,
		TargetYield:  0.99,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("core: sets %d not a power of two", c.Sets)
	}
	if c.Ways < 2 || c.ULEWays < 1 || c.ULEWays >= c.Ways {
		return fmt.Errorf("core: way split %d+%d invalid", c.Ways-c.ULEWays, c.ULEWays)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("core: line size %d not a power of two", c.LineBytes)
	}
	if c.LineBytes*8%c.DataWordBits != 0 {
		return fmt.Errorf("core: line size %dB not a whole number of %d-bit words", c.LineBytes, c.DataWordBits)
	}
	if c.DataWordBits <= 0 || c.DataWordBits > 51 || c.TagWordBits <= 0 || c.TagWordBits > 51 {
		return fmt.Errorf("core: word widths %d/%d outside DECTED capacity", c.DataWordBits, c.TagWordBits)
	}
	if c.VccULE >= c.VccHP || c.VccULE <= 0 {
		return fmt.Errorf("core: voltages HP=%.2f ULE=%.2f invalid", c.VccHP, c.VccULE)
	}
	if c.FreqULEGHz >= c.FreqHPGHz || c.FreqULEGHz <= 0 {
		return fmt.Errorf("core: frequencies HP=%.3f ULE=%.3f invalid", c.FreqHPGHz, c.FreqULEGHz)
	}
	if c.MemLatency < 1 {
		return fmt.Errorf("core: memory latency %d invalid", c.MemLatency)
	}
	if c.TargetYield <= 0 || c.TargetYield >= 1 {
		return fmt.Errorf("core: target yield %g invalid", c.TargetYield)
	}
	if c.L2 != nil {
		if err := c.L2.Validate(c); err != nil {
			return err
		}
	}
	return nil
}

// Vcc returns the supply voltage of the given mode.
func (c Config) Vcc(m Mode) float64 {
	if m == ModeHP {
		return c.VccHP
	}
	return c.VccULE
}

// FreqGHz returns the clock frequency of the given mode.
func (c Config) FreqGHz(m Mode) float64 {
	if m == ModeHP {
		return c.FreqHPGHz
	}
	return c.FreqULEGHz
}

// WordsPerLine returns data words per cache line.
func (c Config) WordsPerLine() int { return c.LineBytes * 8 / c.DataWordBits }

// Name is a compact configuration label, e.g. "A/proposed".
func (c Config) Name() string {
	return fmt.Sprintf("%v/%v", c.Scenario, c.Design)
}

// uleWayCode returns the code family stored in the ULE ways of this
// configuration, per operating mode (Section III-B):
//
//	scenario A baseline:  none / none
//	scenario A proposed:  (SECDED stored, turned off) / SECDED
//	scenario B baseline:  SECDED / SECDED
//	scenario B proposed:  SECDED / DECTED
func (c Config) uleWayCode(m Mode) ecc.Kind {
	switch {
	case c.Design == Baseline:
		return c.Scenario.BaselineCode()
	case m == ModeULE:
		return c.Scenario.ProposedCode()
	case c.Scenario == yield.ScenarioB:
		return ecc.KindSECDED // DECTED off, SECDED-grade protection at HP
	default:
		return ecc.KindNone // scenario A proposed at HP: coding off
	}
}

// hpWayCode returns the code family active on the HP ways: SECDED in
// scenario B (soft errors), none in scenario A.
func (c Config) hpWayCode() ecc.Kind { return c.Scenario.BaselineCode() }
