package core

import (
	"testing"

	"edcache/internal/bench"
	"edcache/internal/yield"
)

// shortSuite trims workloads for test runtime.
func shortSuite(ws []bench.Workload, n int) []bench.Workload {
	out := make([]bench.Workload, len(ws))
	for i, w := range ws {
		out[i] = w.ScaledTo(n)
	}
	return out
}

// TestHeadlineNumbers is experiment E3: the paper's quoted averages.
//
//	HP mode:  14 % (A) and 12 % (B) EPI savings, no performance loss.
//	ULE mode: 42 % (A) and 39 % (B) EPI savings, ~3 % slower execution.
//
// Absolute fidelity is not expected from a reimplemented stack; the
// asserted bands keep the paper's shape: double-digit HP savings, ~40 %
// ULE savings, scenario A ≥ scenario B, slowdown only at ULE and small.
func TestHeadlineNumbers(t *testing.T) {
	type band struct{ lo, hi float64 }
	expect := map[yield.Scenario]map[Mode]band{
		yield.ScenarioA: {ModeHP: {10, 19}, ModeULE: {36, 48}},
		yield.ScenarioB: {ModeHP: {9, 18}, ModeULE: {33, 45}},
	}
	savings := map[yield.Scenario]map[Mode]float64{}
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		savings[s] = map[Mode]float64{}
		for _, m := range []Mode{ModeHP, ModeULE} {
			pairs, err := RunPairs(s, m, shortSuite(PaperModeWorkloads(m), 120000))
			if err != nil {
				t.Fatal(err)
			}
			sum := Summarize(s, m, pairs)
			savings[s][m] = sum.AvgSavingPct
			b := expect[s][m]
			if sum.AvgSavingPct < b.lo || sum.AvgSavingPct > b.hi {
				t.Errorf("scenario %v at %v: saving %.1f%% outside [%.0f, %.0f]",
					s, m, sum.AvgSavingPct, b.lo, b.hi)
			}
			switch m {
			case ModeHP:
				if sum.AvgTimeIncreasePct != 0 {
					t.Errorf("scenario %v: HP-mode slowdown %.2f%%, want exactly 0",
						s, sum.AvgTimeIncreasePct)
				}
			case ModeULE:
				if sum.AvgTimeIncreasePct < 0.5 || sum.AvgTimeIncreasePct > 6 {
					t.Errorf("scenario %v: ULE slowdown %.2f%%, want ≈3%%",
						s, sum.AvgTimeIncreasePct)
				}
			}
		}
	}
	// ULE savings must dwarf HP savings (the paper's main contrast).
	for _, s := range []yield.Scenario{yield.ScenarioA, yield.ScenarioB} {
		if savings[s][ModeULE] < 2*savings[s][ModeHP] {
			t.Errorf("scenario %v: ULE saving %.1f%% not ≫ HP saving %.1f%%",
				s, savings[s][ModeULE], savings[s][ModeHP])
		}
	}
	// Scenario A saves at least as much as scenario B in both modes.
	for _, m := range []Mode{ModeHP, ModeULE} {
		if savings[yield.ScenarioA][m] < savings[yield.ScenarioB][m]-0.5 {
			t.Errorf("at %v: scenario A saving %.1f%% below scenario B %.1f%%",
				m, savings[yield.ScenarioA][m], savings[yield.ScenarioB][m])
		}
	}
}

func TestEPIBreakdownShapes(t *testing.T) {
	pairs, err := RunPairs(yield.ScenarioA, ModeULE, shortSuite(bench.Small(), 80000))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		// Caches dominate EPI in these chips (paper Section IV-B).
		cacheShare := (p.Base.EPI.CacheDynamic + p.Base.EPI.CacheLeakage) / p.Base.EPI.Total()
		if cacheShare < 0.5 {
			t.Errorf("%s: baseline cache share %.2f < 0.5", p.Workload, cacheShare)
		}
		// At ULE mode leakage is the dominant cache component.
		if p.Base.EPI.CacheLeakage <= p.Base.EPI.CacheDynamic {
			t.Errorf("%s: ULE leakage %.3f not above dynamic %.3f",
				p.Workload, p.Base.EPI.CacheLeakage, p.Base.EPI.CacheDynamic)
		}
		// Baseline scenario A has no EDC energy; proposed does.
		if p.Base.EPI.EDC != 0 {
			t.Errorf("%s: scenario A baseline charged EDC energy", p.Workload)
		}
		if p.Prop.EPI.EDC <= 0 {
			t.Errorf("%s: proposed missing EDC energy", p.Workload)
		}
		// EDC stays second-order (paper: small overhead).
		if p.Prop.EPI.EDC > 0.1*p.Prop.EPI.Total() {
			t.Errorf("%s: EDC share %.2f too large", p.Workload, p.Prop.EPI.EDC/p.Prop.EPI.Total())
		}
	}
}

func TestBenchmarksBehaveSimilarly(t *testing.T) {
	// Paper: "All benchmarks show minor differences to the average" —
	// per-benchmark savings cluster within a few points of the mean.
	pairs, err := RunPairs(yield.ScenarioA, ModeHP, shortSuite(bench.Big(), 80000))
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(yield.ScenarioA, ModeHP, pairs)
	for _, p := range pairs {
		if d := p.SavingPct() - sum.AvgSavingPct; d > 6 || d < -6 {
			t.Errorf("%s: saving %.1f%% deviates %.1f points from average %.1f%%",
				p.Workload, p.SavingPct(), d, sum.AvgSavingPct)
		}
	}
}

func TestNormalizedBreakdownsSumCorrectly(t *testing.T) {
	pairs, err := RunPairs(yield.ScenarioB, ModeULE, shortSuite(bench.Small()[:1], 40000))
	if err != nil {
		t.Fatal(err)
	}
	p := pairs[0]
	nb := p.NormalizedBase()
	if tot := nb.Total(); tot < 0.999 || tot > 1.001 {
		t.Errorf("normalized baseline total %.4f, want 1", tot)
	}
	np := p.NormalizedProp()
	want := p.Prop.EPI.Total() / p.Base.EPI.Total()
	if tot := np.Total(); tot < want-1e-9 || tot > want+1e-9 {
		t.Errorf("normalized proposed total %.4f, want %.4f", tot, want)
	}
	if 100*(1-np.Total()) < 30 {
		t.Errorf("scenario B ULE saving %.1f%% too small", 100*(1-np.Total()))
	}
}

func TestSummarizeEmptyPairs(t *testing.T) {
	sum := Summarize(yield.ScenarioA, ModeHP, nil)
	if sum.AvgSavingPct != 0 || sum.AvgBase.Total() != 0 {
		t.Error("empty summary must be zero-valued")
	}
}

func TestWaySplitAblation(t *testing.T) {
	// Paper §IV-A: "We have considered other designs (e.g., 6+2), but
	// they did not provide further insights." A 6+2 split must still
	// show proposed wins at ULE mode.
	cfgB := PaperConfig(yield.ScenarioA, Baseline)
	cfgB.ULEWays = 2
	cfgP := PaperConfig(yield.ScenarioA, Proposed)
	cfgP.ULEWays = 2
	base := MustNewSystem(cfgB)
	prop := MustNewSystem(cfgP)
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(60000)
	rb, err := base.Run(w, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := prop.Run(w, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	if rp.EPI.Total() >= rb.EPI.Total() {
		t.Errorf("6+2 split: proposed EPI %.3f ≥ baseline %.3f", rp.EPI.Total(), rb.EPI.Total())
	}
}

func TestMemLatencyDoesNotChangeTrends(t *testing.T) {
	// Paper §IV-A: "other memory latencies do not change the trends".
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(60000)
	prev := -1.0
	for _, lat := range []int{10, 20, 40, 80} {
		cfgB := PaperConfig(yield.ScenarioA, Baseline)
		cfgB.MemLatency = lat
		cfgP := PaperConfig(yield.ScenarioA, Proposed)
		cfgP.MemLatency = lat
		rb, err := MustNewSystem(cfgB).Run(w, ModeHP)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := MustNewSystem(cfgP).Run(w, ModeHP)
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - rp.EPI.Total()/rb.EPI.Total()
		if saving <= 0.05 {
			t.Errorf("latency %d: saving %.3f collapsed", lat, saving)
		}
		if prev > 0 && (saving/prev > 1.5 || saving/prev < 0.66) {
			t.Errorf("latency %d: saving %.3f deviates wildly from previous %.3f", lat, saving, prev)
		}
		prev = saving
	}
}

func TestGateULEWaysAtHPAblation(t *testing.T) {
	// Ablation A5 (Section III-A): gating the ULE way at HP mode must
	// increase misses and execution time for a workload that needs the
	// full cache, while the paper's reuse policy keeps the capacity.
	w, err := bench.ByName("mpeg2_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(80000)
	reuse := PaperConfig(yield.ScenarioA, Proposed)
	gated := PaperConfig(yield.ScenarioA, Proposed)
	gated.GateULEWaysAtHP = true
	rr, err := MustNewSystem(reuse).Run(w, ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := MustNewSystem(gated).Run(w, ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Stats.DMisses <= rr.Stats.DMisses {
		t.Errorf("gated DL1 misses %d not above reuse %d", rg.Stats.DMisses, rr.Stats.DMisses)
	}
	if rg.TimeNS <= rr.TimeNS {
		t.Errorf("gated time %.0f not above reuse %.0f", rg.TimeNS, rr.TimeNS)
	}
	// The gated config must not spend ULE-way lookup energy at HP.
	if rg.EPI.CacheDynamic >= rr.EPI.CacheDynamic {
		t.Errorf("gated cache dynamic EPI %.3f not below reuse %.3f",
			rg.EPI.CacheDynamic, rr.EPI.CacheDynamic)
	}
	// ULE mode is unaffected by the HP-mode policy flag.
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	small = small.ScaledTo(40000)
	ur, err := MustNewSystem(reuse).Run(small, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	ug, err := MustNewSystem(gated).Run(small, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	if ur.EPI.Total() != ug.EPI.Total() || ur.Stats.Cycles != ug.Stats.Cycles {
		t.Error("HP-mode gating flag leaked into ULE-mode behaviour")
	}
}
