package core

import (
	"edcache/internal/bench"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// Decode-once replay entry points: a trace.Slab — a materialized
// trace.Arena or an mmap-backed trace.MapArena — is prepared once
// (from a workload generator or a captured trace file) and every
// (scenario, mode, design) evaluation replays it through a cheap
// cursor instead of regenerating the stream. Replay is bit-identical
// to the generator-backed path — a cursor produces the same
// instruction sequence with the same batch/phase capabilities — so
// Reports, and everything aggregated from them, do not change.

// RunArena is Run over a prepared slab: the workload was generated (or
// a trace file decoded/mapped) once, and this evaluation replays it
// through a fresh cursor. Safe for any number of concurrent calls on
// one slab, like Run is for one System.
func (s *System) RunArena(name string, a trace.Slab, m Mode) (Report, error) {
	return s.RunStream(name, a.NewCursor(), m)
}

// RunPairsArena is RunPairsN with decode-once replay: every workload's
// slab comes from the shared cache (generated at most once per cache
// lifetime, even across scenarios and modes) and both designs replay
// cursors over it. Results are bit-identical to RunPairsN for any
// worker count.
func RunPairsArena(s yield.Scenario, m Mode, workloads []bench.Workload, arenas *bench.ArenaCache, workers int) ([]Pair, error) {
	return runPairsOn(s, m, workloads, workers, func(sys *System, w bench.Workload) (Report, error) {
		return sys.RunArena(w.Name, arenas.Get(w), m)
	})
}
