package core

import (
	"reflect"
	"sync"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/yield"
)

// TestSystemConcurrentRuns verifies the System immutability contract:
// one sized System serving many concurrent Run calls produces exactly
// the reports a serial loop does (run under -race in CI).
func TestSystemConcurrentRuns(t *testing.T) {
	sys, err := NewSystem(PaperConfig(yield.ScenarioA, Proposed))
	if err != nil {
		t.Fatal(err)
	}
	ws := bench.Small()
	for i := range ws {
		ws[i] = ws[i].ScaledTo(5_000)
	}

	serial := make([]Report, len(ws))
	for i, w := range ws {
		if serial[i], err = sys.Run(w, ModeULE); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 4 // several goroutines per workload to provoke races
	var wg sync.WaitGroup
	concurrent := make([]Report, rounds*len(ws))
	errs := make([]error, rounds*len(ws))
	for r := 0; r < rounds; r++ {
		for i, w := range ws {
			wg.Add(1)
			go func(slot int, w bench.Workload) {
				defer wg.Done()
				concurrent[slot], errs[slot] = sys.Run(w, ModeULE)
			}(r*len(ws)+i, w)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", slot, err)
		}
	}
	for r := 0; r < rounds; r++ {
		for i := range ws {
			if !reflect.DeepEqual(concurrent[r*len(ws)+i], serial[i]) {
				t.Fatalf("concurrent report for %s differs from serial", ws[i].Name)
			}
		}
	}
}

// TestRunPairsWorkerCountInvariance protects the order-stable
// aggregation: RunPairsN must return identical pairs for any pool size.
func TestRunPairsWorkerCountInvariance(t *testing.T) {
	ws := bench.Small()
	for i := range ws {
		ws[i] = ws[i].ScaledTo(5_000)
	}
	base, err := RunPairsN(yield.ScenarioA, ModeULE, ws, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := RunPairsN(yield.ScenarioA, ModeULE, ws, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("RunPairsN(%d workers) differs from serial", workers)
		}
	}
}

// BenchmarkRunPairsWorkers measures the workload fan-out speedup of the
// engine (acceptance: >1.5x at 4 workers on a multi-core host):
//
//	go test -bench RunPairsWorkers -benchtime 3x ./internal/core
func BenchmarkRunPairsWorkers(b *testing.B) {
	ws := bench.Big()
	for i := range ws {
		ws[i] = ws[i].ScaledTo(300_000)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1", 2: "2", 4: "4"}[workers], func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := RunPairsN(yield.ScenarioA, ModeHP, ws, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
