package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// phasedWorkload returns phased_mix shortened so tests cycle all four
// regimes a few times.
func phasedWorkload(t *testing.T) bench.Workload {
	t.Helper()
	w, err := bench.ByName("phased_mix")
	if err != nil {
		t.Fatal(err)
	}
	w.PhaseInsts = 10_000
	return w.ScaledTo(80_000)
}

func TestRunReportsPerPhaseSegmentation(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	rep, err := sys.Run(phasedWorkload(t), ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phase reports %d, want 4", len(rep.Phases))
	}

	// Integer counters must sum exactly to the run totals.
	var instr, cycles, dAcc, dMiss uint64
	for _, p := range rep.Phases {
		instr += p.Stats.Instructions
		cycles += p.Stats.Cycles
		dAcc += p.Stats.DAccesses
		dMiss += p.Stats.DMisses
	}
	if instr != rep.Stats.Instructions || cycles != rep.Stats.Cycles ||
		dAcc != rep.Stats.DAccesses || dMiss != rep.Stats.DMisses {
		t.Errorf("per-phase counters do not sum to run totals: instr %d/%d cycles %d/%d dacc %d/%d dmiss %d/%d",
			instr, rep.Stats.Instructions, cycles, rep.Stats.Cycles, dAcc, rep.Stats.DAccesses, dMiss, rep.Stats.DMisses)
	}

	// Energy and time sum to the run level within float tolerance.
	var energy, tm float64
	for _, p := range rep.Phases {
		energy += p.EPI.Total() * float64(p.Stats.Instructions)
		tm += p.TimeNS
	}
	total := rep.EPI.Total() * float64(rep.Stats.Instructions)
	if math.Abs(energy-total)/total > 1e-9 {
		t.Errorf("per-phase energy %.6g != run energy %.6g", energy, total)
	}
	if math.Abs(tm-rep.TimeNS)/rep.TimeNS > 1e-9 {
		t.Errorf("per-phase time %.6g != run time %.6g", tm, rep.TimeNS)
	}

	// The whole point: the regimes must actually differ. Phase 0 reuses
	// an eighth of the footprint, phase 3 walks all of it at random —
	// their DL1 miss rates and EPIs must separate.
	miss := func(p PhaseReport) float64 {
		return float64(p.Stats.DMisses) / float64(p.Stats.DAccesses)
	}
	if miss(rep.Phases[3]) < 2*miss(rep.Phases[0]) {
		t.Errorf("cold phase miss rate %.4f not well above hot phase %.4f", miss(rep.Phases[3]), miss(rep.Phases[0]))
	}
	if rep.Phases[3].EPI.Total() <= rep.Phases[0].EPI.Total() {
		t.Errorf("cold phase EPI %.2f not above hot phase %.2f", rep.Phases[3].EPI.Total(), rep.Phases[0].EPI.Total())
	}
}

func TestUnphasedRunHasNoPhaseReports(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(w.ScaledTo(20_000), ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases != nil || rep.Stats.Phases != nil {
		t.Error("unphased workload produced phase reports")
	}
}

func TestRunStreamCaptureReplaysBitIdentically(t *testing.T) {
	// The acceptance contract: a TeeStream-captured v2 file replays
	// with bit-identical Stats to the live run — phase segmentation
	// included.
	sys := MustNewSystem(PaperConfig(yield.ScenarioB, Proposed))
	w := phasedWorkload(t)
	var sink bytes.Buffer
	live, err := sys.RunStreamCapture(w.Name, w.Stream(), ModeULE, &sink, trace.V2Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Phases) == 0 {
		t.Fatal("live capture run lost phase segmentation")
	}

	r, err := trace.NewReader(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasPhases() {
		t.Fatal("captured file does not advertise phases")
	}
	replayed, err := sys.RunStream(w.Name, r, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if !reflect.DeepEqual(live.Stats, replayed.Stats) {
		t.Errorf("replayed stats differ from live run:\nlive    %+v\nreplay  %+v", live.Stats, replayed.Stats)
	}
	if !reflect.DeepEqual(live.Phases, replayed.Phases) {
		t.Error("replayed phase reports differ from live run")
	}
}

func TestRunStreamCaptureUnphasedStream(t *testing.T) {
	// Capturing an unphased stream writes a phase-less container that
	// replays identically (and without a phase flag).
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(15_000)
	var sink bytes.Buffer
	live, err := sys.RunStreamCapture(w.Name, w.Stream(), ModeULE, &sink, trace.V2Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.HasPhases() {
		t.Error("unphased capture advertised phases")
	}
	replayed, err := sys.RunStream(w.Name, r, ModeULE)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Stats, replayed.Stats) {
		t.Error("unphased captured replay not bit-identical")
	}
}

func TestRunDutyCycleCaptureAnnotatesScheduleSegments(t *testing.T) {
	// A captured duty cycle is one phase-annotated stream whose phase
	// ids are the schedule indices. Replaying it through RunStream must
	// segment at exactly the live schedule boundaries.
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	sched := dutySchedule(t, 20_000)
	var sink bytes.Buffer
	live, err := sys.RunDutyCycleCapture(sched, &sink, trace.V2Options{ChunkRecords: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Phases) != len(sched) {
		t.Fatalf("duty-cycle reports %d, want %d", len(live.Phases), len(sched))
	}

	// The capture accounting must agree with the uncaptured run.
	plain, err := sys.RunDutyCycle(sched)
	if err != nil {
		t.Fatal(err)
	}
	if live.TotalInstructions != plain.TotalInstructions ||
		math.Abs(live.TotalEnergyPJ-plain.TotalEnergyPJ)/plain.TotalEnergyPJ > 1e-12 {
		t.Errorf("capture changed duty-cycle accounting: %d/%.4g vs %d/%.4g",
			live.TotalInstructions, live.TotalEnergyPJ, plain.TotalInstructions, plain.TotalEnergyPJ)
	}

	r, err := trace.NewReader(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasPhases() {
		t.Fatal("captured schedule does not advertise phases")
	}
	rep, err := sys.RunStream("captured-schedule", r, ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(rep.Phases) != len(sched) {
		t.Fatalf("replay segmented into %d phases, want %d", len(rep.Phases), len(sched))
	}
	var total uint64
	for i, p := range rep.Phases {
		if p.Phase != uint8(i) {
			t.Errorf("segment %d has phase id %d", i, p.Phase)
		}
		if want := live.Phases[i].Stats.Instructions; p.Stats.Instructions != want {
			t.Errorf("segment %d: %d instructions, want %d (live phase)", i, p.Stats.Instructions, want)
		}
		total += p.Stats.Instructions
	}
	if total != live.TotalInstructions {
		t.Errorf("captured instructions %d, want %d", total, live.TotalInstructions)
	}
}

func TestRunDutyCycleCaptureRejectsOversizedSchedules(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	sched := make([]Phase, 257)
	for i := range sched {
		sched[i] = Phase{Mode: ModeULE, Workload: w.ScaledTo(100)}
	}
	if _, err := sys.RunDutyCycleCapture(sched, &bytes.Buffer{}, trace.V2Options{}); err == nil {
		t.Error("257-phase schedule accepted (phase id is one byte)")
	}
}
