package core

import (
	"fmt"
	"runtime"

	"edcache/internal/bench"
	"edcache/internal/sim"
	"edcache/internal/yield"
)

// Pair is the baseline/proposed outcome of one workload in one mode —
// one bar pair of Figures 3 and 4.
type Pair struct {
	Workload string
	Base     Report
	Prop     Report
}

// SavingPct returns the proposed design's EPI reduction relative to its
// baseline, in percent (positive = proposed wins).
func (p Pair) SavingPct() float64 {
	return 100 * (1 - p.Prop.EPI.Total()/p.Base.EPI.Total())
}

// TimeIncreasePct returns the proposed design's execution-time increase
// relative to its baseline, in percent.
func (p Pair) TimeIncreasePct() float64 {
	return 100 * (p.Prop.TimeNS/p.Base.TimeNS - 1)
}

// NormalizedProp returns the proposed breakdown normalised to the
// baseline's total EPI (the y-axis of the paper's figures).
func (p Pair) NormalizedProp() Breakdown {
	t := p.Base.EPI.Total()
	return Breakdown{
		CacheDynamic: p.Prop.EPI.CacheDynamic / t,
		CacheLeakage: p.Prop.EPI.CacheLeakage / t,
		EDC:          p.Prop.EPI.EDC / t,
		Core:         p.Prop.EPI.Core / t,
	}
}

// NormalizedBase returns the baseline breakdown normalised to its own
// total (components sum to 1).
func (p Pair) NormalizedBase() Breakdown {
	t := p.Base.EPI.Total()
	return Breakdown{
		CacheDynamic: p.Base.EPI.CacheDynamic / t,
		CacheLeakage: p.Base.EPI.CacheLeakage / t,
		EDC:          p.Base.EPI.EDC / t,
		Core:         p.Base.EPI.Core / t,
	}
}

// RunPairs evaluates baseline and proposed systems of one scenario over
// the given workloads in the given mode, fanning the workloads out
// across all available cores.
func RunPairs(s yield.Scenario, m Mode, workloads []bench.Workload) ([]Pair, error) {
	return RunPairsN(s, m, workloads, runtime.GOMAXPROCS(0))
}

// RunPairsN is RunPairs on a bounded worker pool. The two sized systems
// are shared by every worker — System.Run is safe for concurrent use —
// and pairs are collected by workload index, so the result is identical
// for any worker count.
func RunPairsN(s yield.Scenario, m Mode, workloads []bench.Workload, workers int) ([]Pair, error) {
	return runPairsOn(s, m, workloads, workers, func(sys *System, w bench.Workload) (Report, error) {
		return sys.Run(w, m)
	})
}

// runPairsOn is the shared core of RunPairsN and RunPairsArena: it
// sizes the scenario's baseline/proposed pair once and fans the
// workloads out, with runOne supplying the replay source (fresh
// generator stream or shared arena cursor).
func runPairsOn(s yield.Scenario, m Mode, workloads []bench.Workload, workers int, runOne func(sys *System, w bench.Workload) (Report, error)) ([]Pair, error) {
	base, err := NewSystem(PaperConfig(s, Baseline))
	if err != nil {
		return nil, err
	}
	prop, err := NewSystem(PaperConfig(s, Proposed))
	if err != nil {
		return nil, err
	}
	return sim.Map(workers, len(workloads), func(i int) (Pair, error) {
		w := workloads[i]
		rb, err := runOne(base, w)
		if err != nil {
			return Pair{}, fmt.Errorf("core: %s baseline: %w", w.Name, err)
		}
		rp, err := runOne(prop, w)
		if err != nil {
			return Pair{}, fmt.Errorf("core: %s proposed: %w", w.Name, err)
		}
		return Pair{Workload: w.Name, Base: rb, Prop: rp}, nil
	})
}

// Summary aggregates a set of pairs into the averages the paper quotes.
type Summary struct {
	Scenario yield.Scenario
	Mode     Mode

	AvgBase Breakdown // mean baseline EPI (pJ/instr)
	AvgProp Breakdown // mean proposed EPI (pJ/instr)

	AvgSavingPct       float64
	AvgTimeIncreasePct float64
}

// Summarize averages the pairs. Savings are computed on averaged EPIs,
// matching the paper's "normalized average EPI" presentation.
func Summarize(s yield.Scenario, m Mode, pairs []Pair) Summary {
	out := Summary{Scenario: s, Mode: m}
	if len(pairs) == 0 {
		return out
	}
	n := float64(len(pairs))
	var timeInc float64
	for _, p := range pairs {
		out.AvgBase = addBreakdown(out.AvgBase, p.Base.EPI)
		out.AvgProp = addBreakdown(out.AvgProp, p.Prop.EPI)
		timeInc += p.TimeIncreasePct()
	}
	out.AvgBase = scaleBreakdown(out.AvgBase, 1/n)
	out.AvgProp = scaleBreakdown(out.AvgProp, 1/n)
	out.AvgSavingPct = 100 * (1 - out.AvgProp.Total()/out.AvgBase.Total())
	out.AvgTimeIncreasePct = timeInc / n
	return out
}

func addBreakdown(a, b Breakdown) Breakdown {
	return Breakdown{
		CacheDynamic: a.CacheDynamic + b.CacheDynamic,
		CacheLeakage: a.CacheLeakage + b.CacheLeakage,
		EDC:          a.EDC + b.EDC,
		Core:         a.Core + b.Core,
	}
}

func scaleBreakdown(a Breakdown, k float64) Breakdown {
	return Breakdown{
		CacheDynamic: a.CacheDynamic * k,
		CacheLeakage: a.CacheLeakage * k,
		EDC:          a.EDC * k,
		Core:         a.Core * k,
	}
}

// PaperModeWorkloads returns the suite the paper assigns to each mode:
// BigBench at HP, SmallBench at ULE (Section IV-A.1).
func PaperModeWorkloads(m Mode) []bench.Workload {
	if m == ModeHP {
		return bench.Big()
	}
	return bench.Small()
}

// EvalPaperPoint runs the full paper comparison for one scenario and
// mode with its designated suite.
func EvalPaperPoint(s yield.Scenario, m Mode) ([]Pair, Summary, error) {
	pairs, err := RunPairs(s, m, PaperModeWorkloads(m))
	if err != nil {
		return nil, Summary{}, err
	}
	return pairs, Summarize(s, m, pairs), nil
}
