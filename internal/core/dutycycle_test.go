package core

import (
	"math"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/yield"
)

func dutySchedule(t *testing.T, n int) []Phase {
	t.Helper()
	small, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	big, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	small = small.ScaledTo(n)
	big = big.ScaledTo(n)
	return []Phase{
		{Mode: ModeULE, Workload: small},
		{Mode: ModeHP, Workload: big},
		{Mode: ModeULE, Workload: small},
	}
}

func TestDutyCycleAccounting(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	res, err := sys.RunDutyCycle(dutySchedule(t, 40000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases %d", len(res.Phases))
	}
	if len(res.Switches) != 2 {
		t.Fatalf("switches %d, want 2 (ULE->HP->ULE)", len(res.Switches))
	}
	if res.TotalInstructions != 120000 {
		t.Errorf("instructions %d", res.TotalInstructions)
	}
	// Totals must equal the sum of parts.
	var e, tm float64
	for _, p := range res.Phases {
		e += p.EPI.Total() * float64(p.Stats.Instructions)
		tm += p.TimeNS
	}
	for _, sw := range res.Switches {
		e += sw.EnergyPJ
		tm += sw.SettleNS
	}
	if math.Abs(e-res.TotalEnergyPJ)/e > 1e-9 || math.Abs(tm-res.TotalTimeNS)/tm > 1e-9 {
		t.Errorf("totals inconsistent: E %g vs %g, T %g vs %g", e, res.TotalEnergyPJ, tm, res.TotalTimeNS)
	}
	if res.AvgPowerW() <= 0 || res.EPI() <= 0 {
		t.Error("derived metrics must be positive")
	}
}

func TestModeSwitchOverheadIsNegligible(t *testing.T) {
	// The paper claims (via Powell et al. [18]) that mode-switch
	// overheads are negligible. Verify against the model: switch energy
	// and time are well under 1% of any realistic schedule.
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed))
	res, err := sys.RunDutyCycle(dutySchedule(t, 40000))
	if err != nil {
		t.Fatal(err)
	}
	var swE, swT float64
	for _, sw := range res.Switches {
		swE += sw.EnergyPJ
		swT += sw.SettleNS
	}
	if frac := swE / res.TotalEnergyPJ; frac > 0.01 {
		t.Errorf("switch energy fraction %.4f > 1%%", frac)
	}
	if frac := swT / res.TotalTimeNS; frac > 0.01 {
		t.Errorf("switch time fraction %.4f > 1%%", frac)
	}
}

func TestNoSwitchCostWithinSameMode(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	w, err := bench.ByName("adpcm_d")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(20000)
	res, err := sys.RunDutyCycle([]Phase{
		{Mode: ModeULE, Workload: w},
		{Mode: ModeULE, Workload: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Switches) != 0 {
		t.Errorf("same-mode phases must not pay a switch, got %d", len(res.Switches))
	}
}

func TestDutyCycleEmptySchedule(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	if _, err := sys.RunDutyCycle(nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestDutyCycleProposedBeatsBaseline(t *testing.T) {
	// End-to-end: over a realistic ULE-dominated schedule the proposed
	// design's average power must be lower.
	sched := dutySchedule(t, 30000)
	base, err := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline)).RunDutyCycle(sched)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed)).RunDutyCycle(sched)
	if err != nil {
		t.Fatal(err)
	}
	if prop.TotalEnergyPJ >= base.TotalEnergyPJ {
		t.Errorf("proposed schedule energy %.0f ≥ baseline %.0f", prop.TotalEnergyPJ, base.TotalEnergyPJ)
	}
}
