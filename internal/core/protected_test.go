package core

import (
	"math/rand"
	"testing"

	"edcache/internal/ecc"
	"edcache/internal/faults"
	"edcache/internal/yield"
)

func TestProtectedWayRoundTrip(t *testing.T) {
	p, err := NewProtectedWay(32, 8, ecc.KindSECDED, 32, 26, nil)
	if err != nil {
		t.Fatal(err)
	}
	for line := 0; line < 32; line += 7 {
		for word := 0; word < 8; word++ {
			v := uint64(line*8+word) * 0x01010101
			p.WriteData(line, word, v)
			got, res := p.ReadData(line, word)
			if got != v&0xFFFFFFFF || res.Status != ecc.OK {
				t.Fatalf("(%d,%d): got %#x %v", line, word, got, res.Status)
			}
		}
		p.WriteTag(line, uint64(line)|0x300_0000)
		tag, res := p.ReadTag(line)
		if tag != (uint64(line)|0x300_0000)&((1<<26)-1) || res.Status != ecc.OK {
			t.Fatalf("tag %d: %#x %v", line, tag, res.Status)
		}
	}
}

func TestProtectedWaySurvivesHardFault(t *testing.T) {
	// Scenario A's claim in functional form: a hard-faulty 8T cell is
	// transparently corrected by SECDED on every read.
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	fm := faults.Empty(geom)
	fm.Inject(faults.WordKey{Line: 5, Word: 3}, faults.BitFault{Pos: 17, Stuck: 1})
	fm.Inject(faults.WordKey{Line: 5, Word: 8}, faults.BitFault{Pos: 2, Stuck: 0}) // tag word
	p, err := NewProtectedWay(32, 8, ecc.KindSECDED, 32, 26, fm)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteData(5, 3, 0x0000_0000) // stuck-at-1 disagrees
	got, res := p.ReadData(5, 3)
	if got != 0 {
		t.Fatalf("data corrupted: %#x", got)
	}
	if res.Status != ecc.Corrected {
		t.Fatalf("status %v, want Corrected", res.Status)
	}
	p.WriteTag(5, 0x3FF_FFFF)
	tag, res := p.ReadTag(5)
	if tag != 0x3FF_FFFF || res.Status != ecc.Corrected {
		t.Fatalf("tag: %#x %v", tag, res.Status)
	}
}

func TestProtectedWayScenarioBHardPlusSoft(t *testing.T) {
	// Scenario B's claim: DECTED corrects a hard fault AND a soft error
	// in the same word.
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 45, TagWordBits: 39}
	fm := faults.Empty(geom)
	fm.Inject(faults.WordKey{Line: 1, Word: 0}, faults.BitFault{Pos: 9, Stuck: 1})
	p, err := NewProtectedWay(32, 8, ecc.KindDECTED, 32, 26, fm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		v := rng.Uint64() & 0xFFFFFFFF
		p.WriteData(1, 0, v)
		p.InjectSoftError(1, 0, rng)
		got, res := p.ReadData(1, 0)
		if got != v || res.Status == ecc.Detected {
			t.Fatalf("trial %d: got %#x (%v), want %#x", trial, got, res.Status, v)
		}
	}
}

func TestProtectedWaySECDEDCannotTakeHardPlusSoft(t *testing.T) {
	// The converse: SECDED (scenario A) detects but cannot correct a
	// hard fault plus a soft error — which is exactly why scenario B
	// (soft errors in the requirement) needs DECTED.
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	fm := faults.Empty(geom)
	fm.Inject(faults.WordKey{Line: 0, Word: 0}, faults.BitFault{Pos: 3, Stuck: 1})
	p, err := NewProtectedWay(32, 8, ecc.KindSECDED, 32, 26, fm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	detected := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		p.WriteData(0, 0, 0) // stuck-at-1 at pos 3 is a real fault now
		p.InjectSoftError(0, 0, rng)
		_, res := p.ReadData(0, 0)
		if res.Status == ecc.Detected {
			detected++
		}
	}
	// The soft error occasionally lands on the faulty bit itself (then
	// one error remains, correctable); every other case must be a
	// detected double error.
	if detected < trials*8/10 {
		t.Errorf("only %d/%d hard+soft cases detected by SECDED", detected, trials)
	}
}

func TestProtectedWayScrub(t *testing.T) {
	p, err := NewProtectedWay(4, 2, ecc.KindSECDED, 32, 26, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	p.WriteData(0, 0, 0xABCD)
	p.InjectSoftError(0, 0, rng)
	if bad := p.Scrub(); bad != 0 {
		t.Fatalf("scrub reported %d uncorrectable words", bad)
	}
	// After scrubbing, a second soft error is still correctable.
	p.InjectSoftError(0, 0, rng)
	got, res := p.ReadData(0, 0)
	if got != 0xABCD || res.Status == ecc.Detected {
		t.Fatalf("post-scrub read: %#x %v", got, res.Status)
	}
}

func TestProtectedWayGeometryMismatch(t *testing.T) {
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	fm := faults.Empty(geom)
	// DECTED words are 45/39 bits; a 39/33 map must be rejected.
	if _, err := NewProtectedWay(32, 8, ecc.KindDECTED, 32, 26, fm); err == nil {
		t.Error("mismatched fault-map geometry accepted")
	}
}

// TestReliabilityEquivalence is experiment E7: Monte-Carlo confirmation
// that the proposed design reaches at least the baseline's yield, with
// both designs evaluated functionally (generate silicon, check every
// word is usable).
func TestReliabilityEquivalence(t *testing.T) {
	res, err := yield.Run(yield.PaperInput(yield.ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	usableBase, usableProp := 0, 0
	for s := int64(0); s < trials; s++ {
		// Baseline: 10T way, no coding — usable iff zero faults.
		gb := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 32, TagWordBits: 26}
		mb, err := faults.Generate(gb, res.BaselinePf, rand.New(rand.NewSource(7000+s)))
		if err != nil {
			t.Fatal(err)
		}
		if mb.Usable(0) {
			usableBase++
		}
		// Proposed: 8T+SECDED — usable iff ≤1 fault per codeword.
		gp := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
		mp, err := faults.Generate(gp, res.ProposedPf, rand.New(rand.NewSource(9000+s)))
		if err != nil {
			t.Fatal(err)
		}
		if mp.Usable(1) {
			usableProp++
		}
	}
	yb := float64(usableBase) / trials
	yp := float64(usableProp) / trials
	// Both must sit near their analytic values (≥98% here), and the
	// proposed design must not be less reliable than the baseline
	// beyond MC noise.
	if yb < 0.97 {
		t.Errorf("baseline MC yield %.3f implausibly low (analytic %.4f)", yb, res.BaselineYield)
	}
	if yp < yb-0.02 {
		t.Errorf("proposed MC yield %.3f below baseline %.3f", yp, yb)
	}
}
