package core

import (
	"fmt"

	"edcache/internal/cache"
	"edcache/internal/cpu"
	"edcache/internal/trace"
)

// Batch path for the functional (bit-accurate) layer: the protected
// caches used to be driven only by hand-rolled per-access loops; this
// adapter puts a FunctionalCache behind cpu.Port AND cpu.BatchPort, so
// a whole workload stream replays through real EDC codewords, stuck-at
// fault maps and decoders on the same chunked fast path the
// performance-model ports use — one dynamic dispatch per chunk instead
// of per instruction, with bit-identical cpu.Stats (AccessBatch is
// exactly Access in order).

// funcPort adapts a FunctionalCache to the core's port interfaces.
type funcPort struct {
	fc    *FunctionalCache
	extra int
	ops   []cache.Op // AccessBatch scratch
}

// funcStoreValue synthesizes the value a replayed store writes. Trace
// records carry addresses, not data, so the replay derives a
// deterministic address-dependent pattern — enough to keep the
// encoder/decoder path exercised with varying codewords.
func funcStoreValue(addr uint32) uint32 { return addr ^ 0xEDC0DE5A }

// access performs one access against the functional cache and reports
// whether it missed. Loads run the full decode path (fault map +
// corrector); the value is discarded — correctness is asserted by the
// cache's Uncorrectable counter and the functional tests.
func (p *funcPort) access(addr uint32, write bool) (miss bool) {
	if write {
		return !p.fc.Store(addr, funcStoreValue(addr))
	}
	_, hit := p.fc.Load(addr)
	return !hit
}

// Access implements cpu.Port.
func (p *funcPort) Access(addr uint32, write bool) bool { return p.access(addr, write) }

// AccessBatch implements cpu.BatchPort: the chunk's timing accesses
// run as one batched call against the functional cache's simulator and
// the protected-array work consumes the Result slice — no scalar
// fallback. Behaviour is identical to calling Access for each op in
// order.
func (p *funcPort) AccessBatch(ops []cpu.PortOp, miss []bool) {
	n := len(ops)
	if cap(p.ops) < n {
		p.ops = make([]cache.Op, n)
	}
	co := p.ops[:n]
	for i, op := range ops {
		co[i] = cache.Op{Addr: op.Addr, Write: op.Write}
	}
	p.fc.accessBatch(co, funcStoreValue, miss)
}

// ExtraHitLatency implements cpu.Port.
func (p *funcPort) ExtraHitLatency() int { return p.extra }

// ReplayFunctional replays a stream through two functional caches on
// the core timing model, returning the run's cpu.Stats. Both caches
// sit behind batch-capable ports, so batch-capable streams (generator
// streams, arena cursors, trace readers) take the chunked replay fast
// path; extraDL1 is the additional D-side hit latency to charge (the
// EDC decode stage — use System.ExtraHitLatency for a sized design).
// Unlike RunStream this drives the bit-accurate protected storage:
// every fetched and accessed word travels encoder → fault map →
// decoder, so a faulty die's behaviour shows up in il1/dl1's
// CorrectedReads and Uncorrectable counters alongside the timing.
func ReplayFunctional(cfg cpu.Config, il1, dl1 *FunctionalCache, extraDL1 int, s trace.Stream) (cpu.Stats, error) {
	if il1 == nil || dl1 == nil {
		return cpu.Stats{}, fmt.Errorf("core: nil functional cache")
	}
	return cpu.Run(cfg, &funcPort{fc: il1}, &funcPort{fc: dl1, extra: extraDL1}, s)
}
