package core

import (
	"math/rand"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/ecc"
	"edcache/internal/faults"
	"edcache/internal/yield"
)

// refMemory mirrors every store so reads can be checked exactly.
type refMemory map[uint32]uint32

func TestFunctionalCacheFaultFree(t *testing.T) {
	fc, err := NewFunctionalCache(32, 8, ecc.KindSECDED, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := refMemory{}
	rng := rand.New(rand.NewSource(90))
	for step := 0; step < 50000; step++ {
		addr := uint32(rng.Intn(4096)) &^ 3
		if rng.Intn(3) == 0 {
			v := rng.Uint32()
			fc.Store(addr, v)
			ref[addr] = v
		} else {
			got, _ := fc.Load(addr)
			if want := ref[addr]; got != want {
				t.Fatalf("step %d addr %#x: load %#x, want %#x", step, addr, got, want)
			}
		}
	}
	if fc.Uncorrectable != 0 {
		t.Errorf("fault-free run saw %d uncorrectable words", fc.Uncorrectable)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range ref {
		if got := fc.MemWord(addr); got != want {
			t.Errorf("post-flush memory %#x = %#x, want %#x", addr, got, want)
		}
	}
}

func TestFunctionalCacheWithYieldAcceptedFaults(t *testing.T) {
	// The architecture's correctness claim, executed: on silicon whose
	// fault map passes the yield criterion (≤1 hard fault per word),
	// every load returns the stored value, with SECDED silently doing
	// the repairs — across the entire ULE working set, under eviction
	// pressure, for many dice.
	res, err := yield.Run(yield.PaperInput(yield.ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	dice, corrected := 0, 0
	for seed := int64(0); dice < 12; seed++ {
		// Exaggerate Pf so most dice actually contain faults, but keep
		// only yield-accepted maps (the ones the fab would ship).
		fmap, err := faults.Generate(geom, res.ProposedPf*30, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !fmap.Usable(1) || fmap.Count() == 0 {
			continue
		}
		dice++
		fc, err := NewFunctionalCache(32, 8, ecc.KindSECDED, fmap)
		if err != nil {
			t.Fatal(err)
		}
		ref := refMemory{}
		rng := rand.New(rand.NewSource(1000 + seed))
		for step := 0; step < 20000; step++ {
			addr := uint32(rng.Intn(8192)) &^ 3 // 2x cache size: eviction pressure
			if rng.Intn(3) == 0 {
				v := rng.Uint32()
				fc.Store(addr, v)
				ref[addr] = v
			} else {
				got, _ := fc.Load(addr)
				if want := ref[addr]; got != want {
					t.Fatalf("die %d step %d addr %#x: load %#x, want %#x (faults=%d)",
						dice, step, addr, got, want, fmap.Count())
				}
			}
		}
		if fc.Uncorrectable != 0 {
			t.Errorf("die %d: %d uncorrectable words on a yield-accepted map", dice, fc.Uncorrectable)
		}
		corrected += fc.CorrectedReads
	}
	if corrected == 0 {
		t.Error("no corrections observed across faulty dice — the test exercised nothing")
	}
}

func TestFunctionalCacheUncodedCorrupts(t *testing.T) {
	// The counterfactual: the same faulty silicon with no coding leaks
	// corrupted data to software.
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 32, TagWordBits: 26}
	fmap := faults.Empty(geom)
	fmap.Inject(faults.WordKey{Line: 0, Word: 0}, faults.BitFault{Pos: 7, Stuck: 1})
	fc, err := NewFunctionalCache(32, 8, ecc.KindNone, fmap)
	if err != nil {
		t.Fatal(err)
	}
	fc.Store(0, 0x00000000) // line 0, word 0; bit 7 stuck at 1
	got, _ := fc.Load(0)
	if got == 0 {
		t.Fatal("stuck-at fault did not corrupt the uncoded read — fault path broken")
	}
	if got != 0x80 {
		t.Errorf("corrupted value %#x, want %#x", got, 0x80)
	}
}

func TestFunctionalCacheDECTEDSurvivesSoftErrorOnFaultyWord(t *testing.T) {
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 45, TagWordBits: 39}
	fmap := faults.Empty(geom)
	fmap.Inject(faults.WordKey{Line: 4, Word: 2}, faults.BitFault{Pos: 3, Stuck: 0})
	fc, err := NewFunctionalCache(32, 8, ecc.KindDECTED, fmap)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint32(4*32 + 2*4) // line 4, word 2
	fc.Store(addr, 0xFFFFFFFF) // bit 3 stuck-at-0 disagrees
	// Soft error on top, via the protected way's injector.
	rng := rand.New(rand.NewSource(91))
	fcWay := fc.way
	fcWay.InjectSoftError(4, 2, rng)
	got, _ := fc.Load(addr)
	if got != 0xFFFFFFFF {
		t.Fatalf("DECTED load %#x, want all-ones", got)
	}
	if fc.Uncorrectable != 0 {
		t.Error("hard+soft should be fully correctable under DECTED")
	}
}

func TestFunctionalCacheRunsWorkloadAddresses(t *testing.T) {
	// Feed real SmallBench addresses through the functional cache to
	// tie the workload generator and the functional model together.
	w, err := bench.ByName("epic_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(30000)
	fc, err := NewFunctionalCache(32, 8, ecc.KindSECDED, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := refMemory{}
	s := w.Stream()
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		switch {
		case inst.IsStore:
			fc.Store(inst.Addr, inst.Addr^0xABCD)
			ref[inst.Addr&^3] = inst.Addr ^ 0xABCD
		case inst.IsLoad:
			got, _ := fc.Load(inst.Addr)
			if want := ref[inst.Addr&^3]; got != want {
				t.Fatalf("addr %#x: %#x != %#x", inst.Addr, got, want)
			}
		}
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
}
