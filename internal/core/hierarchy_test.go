package core

import (
	"math"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/ecc"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// testL2 is a mid-sized second level behind the paper's 8 KB L1s.
func testL2() L2Config {
	return L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6, Protection: ecc.KindSECDED}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestHierarchyLevelsSumToEPI checks the per-level split is a true
// partition: the L1 and L2 rows sum back to the breakdown's cache
// terms, and the per-level stall times sum to MissCycles' wall time.
func TestHierarchyLevelsSumToEPI(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed).WithL2(testL2()))
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(w.ScaledTo(40_000), ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 2 || rep.Levels[0].Level != "L1" || rep.Levels[1].Level != "L2" {
		t.Fatalf("levels = %+v, want [L1 L2]", rep.Levels)
	}
	l1, l2 := rep.Levels[0], rep.Levels[1]
	if d := relDiff(l1.Dynamic+l2.Dynamic, rep.EPI.CacheDynamic); d > 1e-12 {
		t.Errorf("dynamic split off by %g", d)
	}
	if d := relDiff(l1.Leakage+l2.Leakage, rep.EPI.CacheLeakage); d > 1e-12 {
		t.Errorf("leakage split off by %g", d)
	}
	if d := relDiff(l1.EDC+l2.EDC, rep.EPI.EDC); d > 1e-12 {
		t.Errorf("EDC split off by %g", d)
	}
	wantStall := float64(rep.Stats.MissCycles) / sys.cfg.FreqGHz(ModeHP)
	if d := relDiff(l1.StallNS+l2.StallNS, wantStall); d > 1e-12 {
		t.Errorf("stall split %g+%g != %g", l1.StallNS, l2.StallNS, wantStall)
	}
	// L2 traffic is demand reads (≤ L1 misses) plus write-backs (≤ one
	// per demand fill), so it can never exceed twice the L1 miss count.
	if l1.Accesses == 0 || l2.Accesses == 0 || l2.Accesses > 2*l1.Misses {
		t.Errorf("implausible traffic: %+v", rep.Levels)
	}
	if l2.Misses == 0 || l2.Misses > l2.Accesses {
		t.Errorf("implausible L2 misses: %+v", l2)
	}
	if rep.Stats.IL2Misses+rep.Stats.DL2Misses != l2.Misses {
		t.Errorf("L2 row misses %d != stats %d+%d", l2.Misses, rep.Stats.IL2Misses, rep.Stats.DL2Misses)
	}
}

// TestSingleLevelUnchangedByL2Field pins bit-identity of the existing
// platform: a nil L2 produces a report with no Levels and exactly the
// stats/energy of the pre-hierarchy code path (IL2/DL2 counters zero).
func TestSingleLevelUnchangedByL2Field(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioB, Proposed))
	w, err := bench.ByName("ptrchase_l")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(w.ScaledTo(20_000), ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Levels != nil {
		t.Errorf("single-level run grew Levels: %+v", rep.Levels)
	}
	if rep.Stats.IL2Misses != 0 || rep.Stats.DL2Misses != 0 {
		t.Errorf("single-level run counted L2 misses: %+v", rep.Stats)
	}
}

// TestHierarchyReducesMissCost checks the L2 earns its keep on a
// working set that spills the L1 but fits the L2: most L1 misses hit
// the L2 (6 cycles) instead of memory (20), so the hierarchy run must
// spend fewer miss cycles than the single-level run at equal L1 misses.
func TestHierarchyReducesMissCost(t *testing.T) {
	cfg := PaperConfig(yield.ScenarioA, Baseline)
	flat := MustNewSystem(cfg)
	tiered := MustNewSystem(cfg.WithL2(testL2()))
	w, err := bench.ByName("adversarial_l1")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(40_000)
	a, err := flat.Run(w, ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tiered.Run(w, ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.IMisses != b.Stats.IMisses || a.Stats.DMisses != b.Stats.DMisses {
		t.Fatalf("L1 behaviour diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if b.Stats.MissCycles >= a.Stats.MissCycles {
		t.Errorf("L2 did not reduce miss cycles: %d vs flat %d", b.Stats.MissCycles, a.Stats.MissCycles)
	}
	// Exact tiered pricing: every L1 miss costs the L2 latency, every
	// demand fill that misses the L2 adds the full memory latency.
	l1m := b.Stats.IMisses + b.Stats.DMisses
	l2m := b.Stats.IL2Misses + b.Stats.DL2Misses
	want := l1m*uint64(testL2().Latency) + l2m*uint64(cfg.MemLatency)
	if b.Stats.MissCycles != want {
		t.Errorf("miss cycles %d, want %d (%d L1 misses, %d L2 misses)", b.Stats.MissCycles, want, l1m, l2m)
	}
}

// TestHierarchyPhaseLevelsSum checks the per-phase per-level rows are a
// double partition: each phase's Levels sum to its own EPI cache terms,
// and across phases each level's raw energies sum to the run-level row.
func TestHierarchyPhaseLevelsSum(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed).WithL2(testL2()))
	rep, err := sys.Run(phasedWorkload(t), ModeHP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("phased workload produced no phase reports")
	}
	sum := make([]LevelEPI, 2)
	for _, ph := range rep.Phases {
		if len(ph.Levels) != 2 {
			t.Fatalf("phase %d has %d levels", ph.Phase, len(ph.Levels))
		}
		for i, lv := range ph.Levels {
			if d := relDiff(lv.Dynamic+lv.Leakage+lv.EDC, lv.EPI()); d > 1e-12 {
				t.Errorf("phase %d level %s EPI() inconsistent", ph.Phase, lv.Level)
			}
			instr := float64(ph.Stats.Instructions)
			sum[i].Dynamic += lv.Dynamic * instr
			sum[i].Leakage += lv.Leakage * instr
			sum[i].EDC += lv.EDC * instr
			sum[i].Accesses += lv.Accesses
			sum[i].Misses += lv.Misses
			sum[i].StallNS += lv.StallNS
		}
	}
	instr := float64(rep.Stats.Instructions)
	for i, lv := range rep.Levels {
		if sum[i].Accesses != lv.Accesses || sum[i].Misses != lv.Misses {
			t.Errorf("level %s traffic: phases sum to %d/%d, run has %d/%d",
				lv.Level, sum[i].Accesses, sum[i].Misses, lv.Accesses, lv.Misses)
		}
		if d := relDiff(sum[i].Dynamic, lv.Dynamic*instr); d > 1e-9 {
			t.Errorf("level %s dynamic off by %g", lv.Level, d)
		}
		if d := relDiff(sum[i].EDC, lv.EDC*instr); d > 1e-9 {
			t.Errorf("level %s EDC off by %g", lv.Level, d)
		}
		if d := relDiff(sum[i].StallNS, lv.StallNS); d > 1e-9 {
			t.Errorf("level %s stall off by %g", lv.Level, d)
		}
	}
}

// TestRunSharedReports checks the core-level shared-L2 runner: reports
// carry the right names, deterministic counters across identical calls,
// live per-level rows, and validation of the degenerate inputs.
func TestRunSharedReports(t *testing.T) {
	cfg := PaperConfig(yield.ScenarioA, Baseline).WithL2(L2Config{
		Sets: 16, Ways: 2, LineBytes: 32, Latency: 6, Protection: ecc.KindNone})
	sys := MustNewSystem(cfg)
	ws := bench.Small()
	if len(ws) < 2 {
		t.Fatal("need two workloads")
	}
	w0, w1 := ws[0].ScaledTo(25_000), ws[1].ScaledTo(30_000)
	run := func() []Report {
		reps, err := sys.RunShared(
			[]string{w0.Name, w1.Name},
			[]trace.Stream{w0.Stream(), w1.Stream()}, ModeHP)
		if err != nil {
			t.Fatal(err)
		}
		return reps
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shared-L2 reports not deterministic")
	}
	for i, rep := range a {
		if rep.Workload != []string{w0.Name, w1.Name}[i] {
			t.Errorf("report %d carries workload %q", i, rep.Workload)
		}
		if len(rep.Levels) != 2 || rep.Levels[1].Accesses == 0 {
			t.Errorf("report %d missing live levels: %+v", i, rep.Levels)
		}
	}

	flat := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline))
	if _, err := flat.RunShared([]string{"x"}, []trace.Stream{w0.Stream()}, ModeHP); err == nil {
		t.Error("RunShared without an L2 accepted")
	}
	if _, err := sys.RunShared(nil, nil, ModeHP); err == nil {
		t.Error("empty stream list accepted")
	}
	if _, err := sys.RunShared([]string{"a"}, []trace.Stream{w0.Stream(), w1.Stream()}, ModeHP); err == nil {
		t.Error("name/stream count mismatch accepted")
	}
}

// TestRunGroupRejectsL2Members pins the banked engine's refusal to
// replay hierarchy systems (the single-pass fan-out has no L2 path).
func TestRunGroupRejectsL2Members(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Baseline).WithL2(testL2()))
	w, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGroup(w.Name, w.ScaledTo(1000).Stream(), []GroupMember{{sys, ModeHP}}); err == nil {
		t.Error("replay group accepted an L2 member")
	}
}

// TestDutyCycleDecompose cross-references a two-phase schedule with the
// phased workload's regimes: rows must tile the schedule (instructions
// sum exactly; time and energy sum to the totals minus switch costs)
// and hierarchy rows must carry per-level breakdowns.
func TestDutyCycleDecompose(t *testing.T) {
	sys := MustNewSystem(PaperConfig(yield.ScenarioA, Proposed).WithL2(testL2()))
	phased := phasedWorkload(t)
	small, err := bench.ByName("gsm_c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunDutyCycle([]Phase{
		{Mode: ModeHP, Workload: phased},
		{Mode: ModeULE, Workload: small.ScaledTo(5_000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Decompose()
	if len(rows) < 3 {
		t.Fatalf("expected ≥3 rows (phased regimes + 1), got %d", len(rows))
	}
	var instr uint64
	var tm, e float64
	seenRegime := false
	for _, row := range rows {
		instr += row.Instructions
		tm += row.TimeNS
		e += row.EPI.Total() * float64(row.Instructions)
		if row.Regime >= 0 {
			seenRegime = true
		}
		if len(row.Levels) != 2 {
			t.Errorf("schedule %d regime %d missing levels", row.Schedule, row.Regime)
		}
	}
	if !seenRegime {
		t.Error("no annotated regimes surfaced")
	}
	if rows[len(rows)-1].Regime != -1 {
		t.Errorf("unannotated phase row has regime %d", rows[len(rows)-1].Regime)
	}
	if instr != res.TotalInstructions {
		t.Errorf("instructions %d != total %d", instr, res.TotalInstructions)
	}
	var sw ModeSwitchCost
	for _, s := range res.Switches {
		sw.SettleNS += s.SettleNS
		sw.EnergyPJ += s.EnergyPJ
	}
	if d := relDiff(tm+sw.SettleNS, res.TotalTimeNS); d > 1e-9 {
		t.Errorf("time tiling off by %g", d)
	}
	if d := relDiff(e+sw.EnergyPJ, res.TotalEnergyPJ); d > 1e-9 {
		t.Errorf("energy tiling off by %g", d)
	}
}

// TestL2ConfigValidate exercises the geometry/policy gate.
func TestL2ConfigValidate(t *testing.T) {
	base := PaperConfig(yield.ScenarioA, Baseline)
	bad := []L2Config{
		{Sets: 0, Ways: 8, LineBytes: 32, Latency: 6},
		{Sets: 24, Ways: 8, LineBytes: 32, Latency: 6},
		{Sets: 128, Ways: 0, LineBytes: 32, Latency: 6},
		{Sets: 128, Ways: 65, LineBytes: 32, Latency: 6},
		{Sets: 128, Ways: 8, LineBytes: 64, Latency: 6},
		{Sets: 128, Ways: 8, LineBytes: 32, Latency: 0},
		{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6, EnabledWays: 9},
		{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6, Protection: ecc.Kind(99)},
	}
	for i, l2 := range bad {
		if err := base.WithL2(l2).Validate(); err == nil {
			t.Errorf("bad L2 config %d accepted: %+v", i, l2)
		}
	}
	good := base.WithL2(L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6,
		EnabledWays: 4, Protection: ecc.KindDECTED})
	if err := good.Validate(); err != nil {
		t.Errorf("good L2 config rejected: %v", err)
	}
}

// TestHierarchyEnabledWaysAndProtection checks the per-level policies
// bite: capping the L2's enabled ways raises its misses on a thrashing
// workload, and SECDED protection adds codec energy relative to none.
func TestHierarchyEnabledWaysAndProtection(t *testing.T) {
	base := PaperConfig(yield.ScenarioA, Baseline)
	w, err := bench.ByName("adversarial_l1")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(30_000)
	run := func(l2 L2Config) Report {
		rep, err := MustNewSystem(base.WithL2(l2)).Run(w, ModeHP)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := run(L2Config{Sets: 32, Ways: 8, LineBytes: 32, Latency: 6})
	capped := run(L2Config{Sets: 32, Ways: 8, LineBytes: 32, Latency: 6, EnabledWays: 1})
	if capped.Levels[1].Misses <= full.Levels[1].Misses {
		t.Errorf("way cap did not raise L2 misses: %d vs %d",
			capped.Levels[1].Misses, full.Levels[1].Misses)
	}
	plain := run(L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6})
	coded := run(L2Config{Sets: 128, Ways: 8, LineBytes: 32, Latency: 6, Protection: ecc.KindSECDED})
	if plain.Levels[1].EDC != 0 {
		t.Errorf("unprotected L2 charged codec energy %g", plain.Levels[1].EDC)
	}
	if coded.Levels[1].EDC <= 0 {
		t.Errorf("SECDED L2 charged no codec energy")
	}
	if coded.Levels[1].Dynamic <= plain.Levels[1].Dynamic {
		t.Errorf("check bits did not widen L2 array energy: %g vs %g",
			coded.Levels[1].Dynamic, plain.Levels[1].Dynamic)
	}
}
