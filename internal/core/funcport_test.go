package core

import (
	"math/rand"
	"reflect"
	"testing"

	"edcache/internal/bench"
	"edcache/internal/cpu"
	"edcache/internal/ecc"
	"edcache/internal/faults"
	"edcache/internal/trace"
	"edcache/internal/yield"
)

// scalarOnly hides a stream's batch capability so cpu.Run takes the
// per-instruction path (mirrors the cpu package's own batch tests).
type scalarOnly struct{ s trace.Stream }

func (s scalarOnly) Next() (trace.Inst, bool) { return s.s.Next() }

func newFuncCaches(t *testing.T, kind ecc.Kind, fmap *faults.WayFaults) (il1, dl1 *FunctionalCache) {
	t.Helper()
	il1, err := NewFunctionalCache(32, 8, kind, nil)
	if err != nil {
		t.Fatal(err)
	}
	dl1, err = NewFunctionalCache(32, 8, kind, fmap)
	if err != nil {
		t.Fatal(err)
	}
	return il1, dl1
}

// TestReplayFunctionalBatchMatchesScalar is the satellite's contract:
// the functional layer's batched replay must produce bit-identical
// cpu.Stats — and identical correction counters — to the scalar path,
// with and without the extra EDC hit cycle.
func TestReplayFunctionalBatchMatchesScalar(t *testing.T) {
	w, err := bench.ByName("epic_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(20_000)
	for _, extra := range []int{0, 1} {
		iScalar, dScalar := newFuncCaches(t, ecc.KindSECDED, nil)
		scalar, err := ReplayFunctional(cpu.Config{MemLatency: 20}, iScalar, dScalar, extra, scalarOnly{w.Stream()})
		if err != nil {
			t.Fatal(err)
		}
		iBatch, dBatch := newFuncCaches(t, ecc.KindSECDED, nil)
		batch, err := ReplayFunctional(cpu.Config{MemLatency: 20}, iBatch, dBatch, extra, w.Stream())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scalar, batch) {
			t.Fatalf("extra=%d: batched functional Stats diverge from scalar:\n%+v\n%+v", extra, scalar, batch)
		}
		if scalar.Instructions != uint64(w.Instructions) {
			t.Fatalf("replayed %d instructions, want %d", scalar.Instructions, w.Instructions)
		}
		if dScalar.Uncorrectable != dBatch.Uncorrectable || dScalar.CorrectedReads != dBatch.CorrectedReads {
			t.Fatalf("extra=%d: functional counters diverge between paths", extra)
		}
		if extra == 1 && scalar.LoadUseStalls == 0 {
			t.Error("extra EDC cycle produced no load-use stalls")
		}
	}
}

// TestReplayFunctionalOnFaultySilicon replays a SmallBench workload
// through a DL1 whose way carries yield-accepted hard faults: SECDED
// must repair every manifest fault transparently (no uncorrectable
// reads), on the batched path, while the stats stay bit-identical to
// scalar replay on an identically faulty die.
func TestReplayFunctionalOnFaultySilicon(t *testing.T) {
	res, err := yield.Run(yield.PaperInput(yield.ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	geom := faults.WayGeometry{Lines: 32, WordsPerLine: 8, DataWordBits: 39, TagWordBits: 33}
	// Find a yield-accepted die that actually has faults (exaggerated
	// Pf, as the functional tests do).
	var fmap *faults.WayFaults
	for seed := int64(0); ; seed++ {
		m, err := faults.Generate(geom, res.ProposedPf*30, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if m.Usable(1) && m.Count() > 0 {
			fmap = m
			break
		}
	}
	w, err := bench.ByName("adpcm_c")
	if err != nil {
		t.Fatal(err)
	}
	w = w.ScaledTo(20_000)

	run := func(s trace.Stream) (cpu.Stats, *FunctionalCache) {
		il1, err := NewFunctionalCache(32, 8, ecc.KindSECDED, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The fault map is read-only under replay (Apply only reads), so
		// both runs can share one die.
		dl1, err := NewFunctionalCache(32, 8, ecc.KindSECDED, fmap)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ReplayFunctional(cpu.Config{MemLatency: 20}, il1, dl1, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		return st, dl1
	}
	batch, dBatch := run(w.Stream())
	scalar, dScalar := run(scalarOnly{w.Stream()})
	if !reflect.DeepEqual(batch, scalar) {
		t.Fatal("faulty-die batched Stats diverge from scalar replay")
	}
	if dBatch.Uncorrectable != 0 {
		t.Errorf("yield-accepted die produced %d uncorrectable reads", dBatch.Uncorrectable)
	}
	if dBatch.CorrectedReads != dScalar.CorrectedReads {
		t.Error("correction counts diverge between batched and scalar replay")
	}
}
