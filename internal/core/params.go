package core

// Wattch-style constants for the non-cache part of the processor (core
// pipeline, register file, TLBs, clock tree). The paper extends MPSim
// with Wattch-like power models and builds all non-L1 SRAM arrays from
// 10T cells so they operate at either voltage; EPI is cache-dominated in
// both modes, which these constants preserve. Units: pJ, ns.
const (
	// CoreDynEPI is the core's dynamic energy per instruction at Vnom;
	// it scales as CV² with the supply.
	CoreDynEPI = 6.0

	// CoreLeakPower is the core's leakage power at Vnom (pJ/ns); it
	// scales with bitcell.LeakScale.
	CoreLeakPower = 0.010
)
