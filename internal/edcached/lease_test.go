package edcached

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable lease clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestShardTableSplitCoversGridContiguously(t *testing.T) {
	tb := newShardTable(10, 3, time.Second, 5)
	if len(tb.shards) != 3 {
		t.Fatalf("want 3 shards, got %d", len(tb.shards))
	}
	next := 0
	for i, s := range tb.shards {
		if len(s.ids) == 0 {
			t.Fatalf("shard %d empty", i)
		}
		for _, id := range s.ids {
			if id != next {
				t.Fatalf("shard %d: id %d, want %d (contiguous cover)", i, id, next)
			}
			next++
		}
	}
	if next != 10 {
		t.Fatalf("shards cover %d of 10 tasks", next)
	}
	// More shards than tasks clamps to one task per shard.
	if tb := newShardTable(2, 8, time.Second, 5); len(tb.shards) != 2 {
		t.Fatalf("2 tasks over 8 shards: got %d shards", len(tb.shards))
	}
}

func TestLeaseExpiryReissuesAndStaleRenewFails(t *testing.T) {
	clk := newFakeClock()
	tb := newShardTable(4, 1, time.Second, 5)
	tb.now = clk.now

	idx, gen, ids, ok := tb.claim("a")
	if !ok || idx != 0 || len(ids) != 4 {
		t.Fatalf("claim failed: idx=%d ids=%v ok=%v", idx, ids, ok)
	}
	if !tb.renew(idx, gen) {
		t.Fatal("live lease refused renewal")
	}
	// Renewal pushed expiry to now+ttl; advancing past it expires.
	clk.advance(1500 * time.Millisecond)
	expired := tb.expireDue()
	if len(expired) != 1 || expired[0] != 0 {
		t.Fatalf("expireDue = %v", expired)
	}
	if tb.renew(idx, gen) {
		t.Fatal("expired lease renewed")
	}
	idx2, gen2, _, ok := tb.claim("b")
	if !ok || idx2 != idx || gen2 == gen {
		t.Fatalf("re-claim: idx=%d gen=%d (old gen %d) ok=%v", idx2, gen2, gen, ok)
	}
	if tb.renew(idx, gen) {
		t.Fatal("stale holder renewed the re-issued lease")
	}
	if !tb.renew(idx2, gen2) {
		t.Fatal("new holder cannot renew")
	}
	if st := tb.statuses()[0]; st.Attempts != 1 || st.Owner != "b" {
		t.Fatalf("status after expiry: %+v", st)
	}
}

func TestConcurrentClaimsExactlyOneWinner(t *testing.T) {
	tb := newShardTable(6, 1, time.Minute, 5)
	const claimers = 16
	var wg sync.WaitGroup
	wins := make(chan string, claimers)
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, _, ok := tb.claim(string(rune('a' + i))); ok {
				wins <- "win"
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d claimers won a single-shard table", n)
	}
}

// TestCompleteAcceptedFromStaleHolder pins the protocol's central
// simplification: results are idempotent through the store, so a
// completion is welcome from any holder — including one whose lease
// already expired and was re-issued.
func TestCompleteAcceptedFromStaleHolder(t *testing.T) {
	clk := newFakeClock()
	tb := newShardTable(3, 1, time.Second, 5)
	tb.now = clk.now

	idx, _, _, _ := tb.claim("slow")
	clk.advance(2 * time.Second)
	tb.expireDue()
	if _, _, _, ok := tb.claim("fast"); !ok {
		t.Fatal("expired shard not re-claimable")
	}
	// The slow (stale) worker finishes anyway: accepted, shard done.
	if !tb.complete(idx) {
		t.Fatal("stale completion refused")
	}
	if tb.complete(idx) {
		t.Fatal("double completion counted twice")
	}
	select {
	case <-tb.wait():
	default:
		t.Fatal("all shards done but table not finished")
	}
	if err := tb.err(); err != nil {
		t.Fatalf("finished table reports error: %v", err)
	}
}

func TestPenaltyCapPoisonsTable(t *testing.T) {
	tb := newShardTable(2, 2, time.Minute, 3)
	for i := 0; i < 3; i++ {
		idx, gen, _, ok := tb.claim("flaky")
		if !ok {
			t.Fatalf("attempt %d: claim failed", i)
		}
		tb.fail(idx, gen, true)
	}
	select {
	case <-tb.wait():
	default:
		t.Fatal("poisoned table not finished")
	}
	if tb.err() == nil {
		t.Fatal("poisoned table reports no error")
	}
	if _, _, _, ok := tb.claim("next"); ok {
		t.Fatal("poisoned table still leases")
	}
}

func TestCleanHandbackBurnsNoAttempt(t *testing.T) {
	tb := newShardTable(2, 1, time.Minute, 2)
	for i := 0; i < 5; i++ {
		idx, gen, _, ok := tb.claim("drained")
		if !ok {
			t.Fatalf("round %d: claim failed", i)
		}
		tb.fail(idx, gen, false) // drain/cancel hand-back
	}
	if tb.err() != nil {
		t.Fatal("penalty-free hand-backs poisoned the table")
	}
	if st := tb.statuses()[0]; st.Attempts != 0 {
		t.Fatalf("clean hand-backs counted attempts: %+v", st)
	}
}

func TestEventLogReplayFollowAndClose(t *testing.T) {
	l := newEventLog()
	l.append(Event{Type: "state", State: JobQueued})
	l.append(Event{Type: "point", Task: 0})

	events, terminal := l.since(0)
	if len(events) != 2 || terminal {
		t.Fatalf("since(0): %d events terminal=%v", len(events), terminal)
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatalf("bad sequence numbers: %+v", events)
	}
	if tail, _ := l.since(1); len(tail) != 1 || tail[0].Type != "point" {
		t.Fatalf("since(1): %+v", tail)
	}

	wake := l.subscribe()
	if l.subscribers() != 1 {
		t.Fatalf("subscribers = %d", l.subscribers())
	}
	l.append(Event{Type: "point", Task: 1})
	select {
	case <-wake:
	default:
		t.Fatal("append did not wake the subscriber")
	}
	l.close()
	if _, terminal := l.since(0); !terminal {
		t.Fatal("closed log not terminal")
	}
	l.append(Event{Type: "point", Task: 9})
	if events, _ := l.since(0); len(events) != 3 {
		t.Fatalf("append after close landed: %d events", len(events))
	}
	l.unsubscribe(wake)
	if l.subscribers() != 0 {
		t.Fatal("unsubscribe did not remove the channel")
	}
}
