package edcached

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"edcache/internal/sim"
	"edcache/internal/store"
)

// Worker is the external shard worker behind `edcached -worker`: an
// HTTP client that claims shards, computes them against the shared
// store, and reports completion. The store is the data plane — results
// never travel over HTTP; completing a shard just tells the server to
// verify and collect the checkpoints — so a worker that crashes
// mid-shard loses nothing but its lease: whatever it checkpointed is
// replayed by the next holder.
type Worker struct {
	// Server is the daemon's base URL (http://host:port).
	Server string
	// Name identifies this worker in leases and events.
	Name string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
	// Registry builds experiments from claimed options; nil means
	// DefaultRegistry. It must match the server's registry — the claim
	// carries the exact experiment name and the scope, so a mismatched
	// registry either misses the name (shard abandoned, lease expires)
	// or computes under a different scope digest (results ignored);
	// it can never corrupt the store.
	Registry RegistryFunc
	// Poll is the idle claim interval; 0 means 500ms.
	Poll time.Duration
	// Retries configures the per-shard runner's transient-retry loop.
	Retries int

	mu     sync.Mutex
	stores map[string]*store.Store
}

// Run claims and computes shards until ctx is cancelled. Connection
// failures are retried at the poll interval — a worker outlives server
// restarts by design.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		var cl ClaimResponse
		code, err := w.post(ctx, "/shards/claim", ClaimRequest{Worker: w.Name}, &cl)
		switch {
		case ctx.Err() != nil:
			return nil
		case err != nil || code == http.StatusNoContent:
			if err != nil {
				logf("edcached worker %s: claim: %v", w.Name, err)
			}
			if !sleepCtx(ctx, poll) {
				return nil
			}
		case code != http.StatusOK:
			logf("edcached worker %s: claim: status %d", w.Name, code)
			if !sleepCtx(ctx, poll) {
				return nil
			}
		default:
			w.runClaim(ctx, cl)
		}
	}
}

// runClaim computes one claimed shard under a heartbeat.
func (w *Worker) runClaim(ctx context.Context, cl ClaimResponse) {
	registry := w.Registry
	if registry == nil {
		registry = DefaultRegistry
	}
	exp, ok := registry(cl.Options).Get(cl.Experiment)
	if !ok {
		logf("edcached worker %s: claim names unknown experiment %q; abandoning shard", w.Name, cl.Experiment)
		return // the lease expires and someone competent re-claims
	}
	st, err := w.openStore(cl.StoreDir)
	if err != nil {
		logf("edcached worker %s: %v", w.Name, err)
		return
	}
	cache := &sim.StoreCache{Store: st, Scope: cl.Scope, Read: true}

	shardCtx, stop := context.WithCancel(ctx)
	defer stop()
	ref := ShardRef{Worker: w.Name, Job: cl.Job, Shard: cl.Shard, Gen: cl.Gen}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		beat := time.Duration(cl.TTLMS) * time.Millisecond / 3
		if beat < time.Millisecond {
			beat = time.Millisecond
		}
		tick := time.NewTicker(beat)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				code, err := w.post(shardCtx, "/shards/renew", ref, nil)
				if err == nil && code != http.StatusOK {
					stop() // lease lost: stop computing work someone else owns
					return
				}
				// Transport errors fall through: the server may be mid-
				// restart, and computing on is harmless (idempotent).
			}
		}
	}()

	runner := sim.Runner{Workers: 1, Seed: cl.Seed, Retries: w.Retries, Cache: cache}
	_, err = runner.RunTasks(shardCtx, exp, cl.TaskIDs)
	stop()
	<-hbDone
	if err != nil {
		logf("edcached worker %s: job %s shard %d: %v", w.Name, cl.Job, cl.Shard, err)
		return // completed points are checkpointed; the lease recycles the rest
	}
	if code, err := w.post(ctx, "/shards/complete", ref, nil); err != nil {
		logf("edcached worker %s: complete: %v", w.Name, err)
	} else if code != http.StatusOK {
		logf("edcached worker %s: complete: status %d", w.Name, code)
	}
}

// openStore opens (once per directory) the shared store a claim names.
func (w *Worker) openStore(dir string) (*store.Store, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stores == nil {
		w.stores = make(map[string]*store.Store)
	}
	if st, ok := w.stores[dir]; ok {
		return st, nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("open shared store %s: %w", dir, err)
	}
	w.stores[dir] = st
	return st, nil
}

// post sends a JSON body and decodes a JSON reply into out (when out is
// non-nil and the reply is 200).
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleepCtx sleeps d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
