package edcached

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"edcache/internal/sim"
)

// Server is the HTTP face of a Manager.
//
//	POST /jobs                        submit a JobSpec → JobStatus (202)
//	GET  /jobs/{id}                   JobStatus
//	GET  /jobs/{id}/events[?from=N]   NDJSON event stream (live, resumable)
//	GET  /jobs/{id}/result?format=F   finished result via the engine sinks
//	POST /jobs/{id}/cancel            cancel (DELETE /jobs/{id} works too)
//	POST /shards/claim                lease a shard (204 when none pending)
//	POST /shards/renew                heartbeat a lease
//	POST /shards/complete             deposit a shard (server verifies via store)
//	GET  /healthz                     process liveness (always 200)
//	GET  /readyz                      503 once draining
//	GET  /storez                      shared-store stats + service load
//
// Every non-streaming route runs under the recover middleware (a
// panicking handler answers 500; the process survives) and a request
// timeout; the events stream is exempt from the timeout — it is
// long-lived by design — but not from recovery.
type Server struct {
	m    *Manager
	cfg  Config
	root http.Handler
}

// NewServer builds the manager and its routing.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	m, err := NewManager(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, cfg: cfg}

	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobByID)
	mux.HandleFunc("/shards/claim", s.handleClaim)
	mux.HandleFunc("/shards/renew", s.handleRenew)
	mux.HandleFunc("/shards/complete", s.handleComplete)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/storez", s.handleStorez)

	timed := http.TimeoutHandler(mux, cfg.RequestTimeout, `{"error":"request timed out"}`)
	s.root = recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id, ok := eventsPath(r.URL.Path); ok {
			s.handleEvents(w, r, id)
			return
		}
		timed.ServeHTTP(w, r)
	}))
	return s, nil
}

// Manager exposes the job manager (tests, embedded use).
func (s *Server) Manager() *Manager { return s.m }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.root.ServeHTTP(w, r)
}

// Drain flips /readyz to 503, stops accepting jobs and claims, cancels
// live jobs resumably, and waits (bounded by ctx) for workers and
// supervisors to exit. Run it on SIGTERM before closing the listener.
func (s *Server) Drain(ctx context.Context) error { return s.m.Drain(ctx) }

// Close is Drain with a 5-second bound.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// recoverMiddleware turns a handler panic into a 500 and keeps the
// process (and every other job) alive. http.ErrAbortHandler is the
// net/http-sanctioned way to abort a response; re-panic it.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// eventsPath matches /jobs/{id}/events.
func eventsPath(p string) (id string, ok bool) {
	rest, found := strings.CutPrefix(p, "/jobs/")
	if !found {
		return "", false
	}
	id, found = strings.CutSuffix(rest, "/events")
	if !found || id == "" || strings.Contains(id, "/") {
		return "", false
	}
	return id, true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /jobs")
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad JobSpec: "+err.Error())
		return
	}
	st, err := s.m.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrBadRequest):
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/jobs/"), "/")
	id := parts[0]
	if id == "" {
		httpError(w, http.StatusNotFound, "no job id")
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		st, ok := s.m.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case len(parts) == 1 && r.Method == http.MethodDelete,
		len(parts) == 2 && parts[1] == "cancel" && r.Method == http.MethodPost:
		if !s.m.Cancel(id) {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"job": id, "cancel": "requested"})
	case len(parts) == 2 && parts[1] == "result" && r.Method == http.MethodGet:
		s.handleResult(w, r, id)
	default:
		httpError(w, http.StatusNotFound, "unknown route")
	}
}

// handleResult renders a done job through the engine's sinks, so the
// service's text/json/csv bytes are the sinks' bytes — the same ones
// cmd/experiments writes.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, id string) {
	results, state, ok := s.m.Result(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	if state != JobDone {
		httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; the result exists once it is done", id, state))
		return
	}
	if results == nil {
		// A journal tombstone: the job finished under a previous server
		// and its assembled results died with that process. The points
		// are all still checkpointed, so re-submitting the same spec
		// rematerializes them as store hits.
		httpError(w, http.StatusConflict, fmt.Sprintf("job %s finished before a server restart; re-submit its spec to rematerialize the result from the store", id))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	var buf bytes.Buffer
	sink, err := sim.NewSink(format, &buf)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := sink.Write(results); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(buf.Bytes())
}

// handleEvents streams the job's events as NDJSON: full history (or
// ?from=N onwards), then live appends until the job reaches a terminal
// state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	log, ok := s.m.Events(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from="+q)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wake := log.subscribe()
	defer log.unsubscribe(wake)
	for {
		events, terminal := log.since(from)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return // client went away; unsubscribe via defer
			}
			from = e.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /shards/claim")
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad ClaimRequest: "+err.Error())
		return
	}
	cl, ok := s.m.Claim(req)
	if !ok {
		w.WriteHeader(http.StatusNoContent) // nothing pending; poll again
		return
	}
	writeJSON(w, http.StatusOK, cl)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /shards/renew")
		return
	}
	var ref ShardRef
	if err := json.NewDecoder(r.Body).Decode(&ref); err != nil {
		httpError(w, http.StatusBadRequest, "bad ShardRef: "+err.Error())
		return
	}
	if !s.m.Renew(ref) {
		httpError(w, http.StatusConflict, "lease lost")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"renewed": true})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /shards/complete")
		return
	}
	var ref ShardRef
	if err := json.NewDecoder(r.Body).Decode(&ref); err != nil {
		httpError(w, http.StatusBadRequest, "bad ShardRef: "+err.Error())
		return
	}
	if err := s.m.CompleteExternal(ref); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.m.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStorez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.StoreStatus())
}
