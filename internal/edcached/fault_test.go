package edcached

// The fault suite: every graceful-degradation claim the package makes,
// exercised against a live httptest server. The shared invariant is
// byte-identity — whatever crashes, expires, or fails mid-flight, a
// job that reaches "done" must serve exactly the bytes a solo
// single-process run produces.

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"edcache/internal/sim"
	"edcache/internal/store"
	"edcache/internal/store/errfs"
)

// newServerAt is newTestServer over caller-owned directories, so a
// test can restart the service on the same store and journal.
func newServerAt(t *testing.T, storeDir, jobsDir string, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:            st,
		StoreDir:         storeDir,
		JobsDir:          jobsDir,
		Registry:         benchRegistry,
		Scope:            testScope,
		Workers:          2,
		LeaseTTL:         time.Second,
		MaxShardAttempts: 10,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestWorkerCrashMidShardReleasedAndRecomputed is the headline fault:
// an external worker checkpoints part of its shard, then hangs (no
// heartbeat — a crash, a wedged host). Its lease expires, a healthy
// worker re-claims the shard, replays the crashed worker's checkpoints
// from the shared store, computes the rest, and the finished job is
// byte-identical to a solo run.
func TestWorkerCrashMidShardReleasedAndRecomputed(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 0
		c.LeaseTTL = 200 * time.Millisecond
		c.MaxShardAttempts = 100
	})
	spec := JobSpec{Experiment: "summed", Seed: 5, Options: GridOptions{Instructions: 8}, Shards: 2}

	// Worker A's registry computes tasks 0 and 1 normally (checkpointing
	// each), then wedges forever on task 2.
	gate := make(chan struct{})
	reached := make(chan struct{})
	var reachedOnce sync.Once
	crashRegistry := func(o GridOptions) *sim.Registry {
		inner, _ := benchRegistry(o).Get("summed")
		reg := sim.NewRegistry()
		reg.MustRegister(sim.Def{
			ExpName: "summed",
			GridFn:  inner.Grid,
			RunFn: func(tk sim.Task, rng *rand.Rand) (sim.Result, error) {
				if tk.ID == 2 {
					reachedOnce.Do(func() { close(reached) })
					<-gate
				}
				return inner.Run(tk, rng)
			},
		})
		return reg
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan struct{})
	a := &Worker{Server: ts.URL, Name: "crash", Registry: crashRegistry, Poll: 10 * time.Millisecond}
	go func() {
		defer close(aDone)
		a.Run(ctxA)
	}()
	t.Cleanup(func() {
		cancelA()
		close(gate)
		<-aDone
	})

	st := submitJob(t, ts, spec)
	select {
	case <-reached: // tasks 0 and 1 are in the store; A is wedged on 2
	case <-time.After(20 * time.Second):
		t.Fatal("crash worker never reached its wedge point")
	}
	cancelA() // the "crash": heartbeats stop, the wedged goroutine stays

	startWorker(t, ts.URL, "healthy")
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.Shards[0].Attempts == 0 {
		t.Fatalf("crashed shard shows no expiry penalty: %+v", final.Shards)
	}

	_, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/events")
	if !strings.Contains(string(body), `"what":"expired"`) {
		t.Fatalf("event stream never reported the lease expiry:\n%s", body)
	}
	_, result := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=json")
	if want := soloBytes(t, spec.Options, spec.Seed, "summed", "json"); string(result) != want {
		t.Fatal("post-crash result differs from solo run")
	}
}

// TestLeaseChurnUnderConcurrentClaimants floods the lease protocol:
// claimers that grab shards and silently drop them race a real worker
// under a tiny TTL. Expiry keeps recycling the dropped leases and the
// job still completes byte-identically.
func TestLeaseChurnUnderConcurrentClaimants(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 0
		c.LeaseTTL = 50 * time.Millisecond
		c.MaxShardAttempts = 1000
	})
	spec := JobSpec{Experiment: "sweep", Seed: 11, Options: GridOptions{Instructions: 12}, Shards: 4}
	st := submitJob(t, ts, spec)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				postJSON(t, ts.URL+"/shards/claim", ClaimRequest{Worker: "dropper"})
				time.Sleep(20 * time.Millisecond)
			}
		}(c)
	}
	startWorker(t, ts.URL, "steady")
	wg.Wait()

	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	_, result := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=json")
	if want := soloBytes(t, spec.Options, spec.Seed, "sweep", "json"); string(result) != want {
		t.Fatal("churned result differs from solo run")
	}
}

// TestStoreFaultsUnderLiveServer injects store failures beneath a
// serving daemon: a full disk (every checkpoint write ENOSPCs), then
// unreadable entries (every read EIOs). Both degrade — checkpoints are
// lost, hits become recomputes — and neither changes a single result
// byte or fails a job.
func TestStoreFaultsUnderLiveServer(t *testing.T) {
	var failWrites, failReads atomic.Bool
	fs := errfs.New(store.OSFS{}, func(_ int, s errfs.Step) *errfs.Fault {
		switch {
		case failWrites.Load() && (s.Op == errfs.OpWrite || s.Op == errfs.OpSync):
			return &errfs.Fault{Err: syscall.ENOSPC}
		case failReads.Load() && s.Op == errfs.OpRead:
			return &errfs.Fault{Err: syscall.EIO}
		}
		return nil
	})
	storeDir := t.TempDir()
	st, err := store.OpenFS(fs, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(c *Config) {
		c.Store = st
		c.StoreDir = storeDir
	})
	spec := JobSpec{Experiment: "summed", Seed: 2, Options: GridOptions{Instructions: 10}, Shards: 2}
	want := soloBytes(t, spec.Options, spec.Seed, "summed", "json")

	// Phase 1: disk full. Every checkpoint write fails; the job is
	// oblivious.
	failWrites.Store(true)
	j1 := submitJob(t, ts, spec)
	final := waitTerminal(t, ts, j1.ID)
	if final.State != JobDone {
		t.Fatalf("ENOSPC job ended %q: %s", final.State, final.Error)
	}
	if final.Cache.PutErrors == 0 {
		t.Fatalf("ENOSPC run reports no failed checkpoints: %+v", final.Cache)
	}
	_, result := getBody(t, ts.URL+"/jobs/"+j1.ID+"/result?format=json")
	if string(result) != want {
		t.Fatal("ENOSPC result differs from solo run")
	}

	// Phase 2: disk heals for writes but reads fail; the would-be hits
	// become recomputes.
	failWrites.Store(false)
	j2 := submitJob(t, ts, spec)
	if final := waitTerminal(t, ts, j2.ID); final.State != JobDone {
		t.Fatalf("post-heal job ended %q: %s", final.State, final.Error)
	}
	failReads.Store(true)
	j3 := submitJob(t, ts, spec)
	final3 := waitTerminal(t, ts, j3.ID)
	failReads.Store(false)
	if final3.State != JobDone {
		t.Fatalf("EIO job ended %q: %s", final3.State, final3.Error)
	}
	if final3.Cache.Hits != 0 {
		t.Fatalf("EIO run somehow served hits: %+v", final3.Cache)
	}
	_, result3 := getBody(t, ts.URL+"/jobs/"+j3.ID+"/result?format=json")
	if string(result3) != want {
		t.Fatal("EIO result differs from solo run")
	}
}

// TestClientDisconnectMidStream kills an events client partway through
// a live stream: the server must release the subscription (no goroutine
// or subscriber leak) and keep running the job; a fresh client replays
// the full history to the terminal state.
func TestClientDisconnectMidStream(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.Workers = 1 })
	st := submitJob(t, ts, JobSpec{Experiment: "slowgrid", Seed: 4, Options: GridOptions{Instructions: 30}, Shards: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("stream died early: %v", err)
		}
	}
	cancel() // client vanishes mid-stream
	resp.Body.Close()

	log, ok := srv.Manager().Events(st.ID)
	if !ok {
		t.Fatal("job lost its event log")
	}
	deadline := time.Now().Add(10 * time.Second)
	for log.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still registered after disconnect", log.subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if final := waitTerminal(t, ts, st.ID); final.State != JobDone {
		t.Fatalf("job ended %q after client disconnect", final.State)
	}
	_, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/events")
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "state" || last.State != JobDone {
		t.Fatalf("replayed stream does not end done: %+v", last)
	}
}

// TestDrainRestartResumesByteIdentical is the SIGTERM story end to end:
// drain a server mid-job (in-flight work checkpoints and exits), start
// a new server over the same store and journal, and watch the job —
// same ID — resume from its checkpoints and finish byte-identical to a
// solo run.
func TestDrainRestartResumesByteIdentical(t *testing.T) {
	storeDir, jobsDir := t.TempDir(), t.TempDir()
	spec := JobSpec{Experiment: "slowgrid", Seed: 9, Options: GridOptions{Instructions: 24}, Shards: 4}

	srv1, ts1 := newServerAt(t, storeDir, jobsDir, func(c *Config) { c.Workers = 1 })
	st := submitJob(t, ts1, spec)

	// Let it make real progress before the kill.
	deadline := time.Now().Add(20 * time.Second)
	for {
		status, ok := srv1.Manager().Job(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if status.PointsDone >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress: %+v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Drained: not terminal, journal still holds the spec, store holds
	// the checkpoints.
	status, _ := srv1.Manager().Job(st.ID)
	if status.State.Terminal() {
		t.Fatalf("drain terminalized the job: %q", status.State)
	}
	ts1.Close()

	srv2, ts2 := newServerAt(t, storeDir, jobsDir, func(c *Config) { c.Workers = 2 })
	final := waitTerminal(t, ts2, st.ID)
	if final.State != JobDone {
		t.Fatalf("resumed job ended %q: %s", final.State, final.Error)
	}
	if final.Cache.Hits == 0 {
		t.Fatalf("resumed job replayed nothing from the store: %+v", final.Cache)
	}
	_, result := getBody(t, ts2.URL+"/jobs/"+st.ID+"/result?format=json")
	if want := soloBytes(t, spec.Options, spec.Seed, "slowgrid", "json"); string(result) != want {
		t.Fatal("resumed result differs from solo run")
	}
	// The restarted server is a full citizen: new jobs still run.
	next := submitJob(t, ts2, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})
	if got := waitTerminal(t, ts2, next.ID); got.State != JobDone {
		t.Fatalf("post-restart job ended %q", got.State)
	}
	_ = srv2
}

// TestRestartTombstonesTerminalJobs: a journaled terminal job answers
// status and events after restart but is never re-run.
func TestRestartTombstonesTerminalJobs(t *testing.T) {
	storeDir, jobsDir := t.TempDir(), t.TempDir()
	srv1, ts1 := newServerAt(t, storeDir, jobsDir, nil)
	st := submitJob(t, ts1, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})
	if final := waitTerminal(t, ts1, st.ID); final.State != JobDone {
		t.Fatalf("job ended %q", final.State)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newServerAt(t, storeDir, jobsDir, nil)
	resp, body := getBody(t, ts2.URL+"/jobs/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tombstone status: %d", resp.StatusCode)
	}
	var got JobStatus
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != JobDone {
		t.Fatalf("tombstone state %q, want done", got.State)
	}
	// The result set itself lived in server 1's memory; the tombstone
	// answers 409 and the client re-submits (the store makes that replay
	// cheap).
	if resp, _ := getBody(t, ts2.URL+"/jobs/"+st.ID+"/result"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("tombstone result: %d, want 409", resp.StatusCode)
	}
	_, evBody := getBody(t, ts2.URL+"/jobs/"+st.ID+"/events")
	if !strings.Contains(string(evBody), `"state":"done"`) {
		t.Fatalf("tombstone events missing terminal state: %s", evBody)
	}
}
