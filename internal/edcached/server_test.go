package edcached

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"edcache/internal/sim"
	"edcache/internal/store"
)

// TestMain silences the package's warning sink: the fault suite
// deliberately exercises the noisy paths (crashed workers, rejected
// completions) and the warnings would drown real test output.
func TestMain(m *testing.M) {
	logf = func(string, ...any) {}
	os.Exit(m.Run())
}

// benchRegistry is the test suite's experiment registry: cheap,
// deterministic grids whose size rides on Options.Instructions.
func benchRegistry(o GridOptions) *sim.Registry {
	n := o.Instructions
	if n <= 0 {
		n = 12
	}
	grid := func() []sim.Task {
		tasks := make([]sim.Task, n)
		for i := range tasks {
			tasks[i] = sim.Task{Label: fmt.Sprintf("pt-%02d", i), Params: sim.P("i", fmt.Sprint(i))}
		}
		return tasks
	}
	run := func(t sim.Task, rng *rand.Rand) (sim.Result, error) {
		return sim.Result{
			Metrics: []sim.Metric{
				sim.Num("draw", float64(rng.Int63()%100000)),
				sim.Fmt("half", float64(t.ID)/2, "%.2f"),
			},
		}, nil
	}
	sum := func(results []sim.Result) ([]sim.Result, error) {
		total := 0.0
		for _, r := range results {
			total += r.Metrics[0].Value
		}
		return append(results, sim.Result{Task: sim.Task{Label: "total"}, Metrics: []sim.Metric{sim.Num("sum", total)}}), nil
	}
	reg := sim.NewRegistry()
	reg.MustRegister(sim.Def{ExpName: "sweep", Desc: "plain grid", GridFn: grid, RunFn: run})
	reg.MustRegister(sim.Def{ExpName: "summed", Desc: "grid with Finish", GridFn: grid, RunFn: run, FinishFn: sum})
	reg.MustRegister(sim.Def{ExpName: "slowgrid", Desc: "slow grid", GridFn: grid,
		RunFn: func(t sim.Task, rng *rand.Rand) (sim.Result, error) {
			time.Sleep(3 * time.Millisecond)
			return run(t, rng)
		}})
	reg.MustRegister(sim.Def{ExpName: "finpanic", Desc: "Finish panics", GridFn: grid, RunFn: run,
		FinishFn: func([]sim.Result) ([]sim.Result, error) { panic("finish exploded") }})
	reg.MustRegister(sim.Def{ExpName: "gridpanic", Desc: "Grid panics",
		GridFn: func() []sim.Task { panic("grid exploded") },
		RunFn:  run})
	return reg
}

func testScope(o GridOptions, seed int64) []string {
	return []string{"edcached-test", fmt.Sprintf("n=%d", o.Instructions), fmt.Sprintf("seed=%d", seed)}
}

// newTestServer stands up a Server over fresh store/jobs dirs; mod
// tweaks the config before construction. The HTTP front is an
// httptest.Server; cleanup drains.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	storeDir := t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:            st,
		StoreDir:         storeDir,
		JobsDir:          t.TempDir(),
		Registry:         benchRegistry,
		Scope:            testScope,
		Workers:          2,
		LeaseTTL:         time.Second,
		MaxShardAttempts: 10,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submitJob posts a spec and returns the accepted status.
func submitJob(t *testing.T, ts *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getBody(t, ts.URL+"/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

// soloBytes renders the experiment the way cmd/experiments would: one
// Runner, one sink, no service — the byte-identity reference.
func soloBytes(t *testing.T, o GridOptions, seed int64, name, format string) string {
	t.Helper()
	e, ok := benchRegistry(o).Get(name)
	if !ok {
		t.Fatalf("no experiment %q", name)
	}
	res, err := sim.Runner{Workers: 3, Seed: seed}.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := sim.NewSink(format, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startWorker runs an external Worker against the test server until
// cleanup.
func startWorker(t *testing.T, url, name string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &Worker{Server: url, Name: name, Registry: benchRegistry, Poll: 10 * time.Millisecond}
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

func TestJobResultByteIdenticalToSoloRun(t *testing.T) {
	_, ts := newTestServer(t, nil)
	spec := JobSpec{Experiment: "summed", Seed: 3, Options: GridOptions{Instructions: 10}, Shards: 3}
	st := submitJob(t, ts, spec)
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("accepted job in state %q", st.State)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.PointsDone != 10 || final.TotalPoints != 10 {
		t.Fatalf("points %d/%d", final.PointsDone, final.TotalPoints)
	}
	for _, format := range []string{"text", "json", "csv"} {
		resp, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format="+format)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s result: %d: %s", format, resp.StatusCode, body)
		}
		if want := soloBytes(t, spec.Options, spec.Seed, "summed", format); string(body) != want {
			t.Fatalf("%s result differs from solo run:\n got: %q\nwant: %q", format, body, want)
		}
	}
}

func TestSubmitRejectsUnknownAndAmbiguous(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, name := range []string{"nonsense", "s" /* sweep|summed|slowgrid */, ""} {
		resp, body := postJSON(t, ts.URL+"/jobs", JobSpec{Experiment: name})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("experiment %q: status %d: %s", name, resp.StatusCode, body)
		}
	}
}

func TestQueueOverflowAnswers429WithRetryAfter(t *testing.T) {
	// No workers: submitted jobs stay live, so the bound fills up.
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 0; c.QueueLimit = 2 })
	for i := 0; i < 2; i++ {
		submitJob(t, ts, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})
	}
	resp, body := postJSON(t, ts.URL+"/jobs", JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("unhelpful 429 body: %s", body)
	}
}

func TestCancelEndpointAndResultConflict(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 0 })
	st := submitJob(t, ts, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})

	// Result before done: 409 with the state in the message.
	resp, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result: %d: %s", resp.StatusCode, body)
	}

	resp, _ = postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel: %q", final.State)
	}
	// Result of a cancelled job stays 409.
	if resp, _ := getBody(t, ts.URL+"/jobs/"+st.ID+"/result"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled result: %d", resp.StatusCode)
	}
	// Unknown job: 404 everywhere.
	if resp, _ := getBody(t, ts.URL+"/jobs/zzz"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %d", resp.StatusCode)
	}
}

func TestEventsStreamReplayAndFromOffset(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submitJob(t, ts, JobSpec{Experiment: "sweep", Seed: 1, Options: GridOptions{Instructions: 6}, Shards: 2})
	waitTerminal(t, ts, st.ID)

	// A full replay of a finished job ends on its own (terminal log).
	resp, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var events []Event
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		events = append(events, e)
	}
	if events[0].Type != "state" || events[0].State != JobQueued {
		t.Fatalf("stream does not start at queued: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != JobDone {
		t.Fatalf("stream does not end done: %+v", last)
	}
	points := 0
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Type == "point" {
			points++
		}
	}
	if points != 6 {
		t.Fatalf("%d point events for a 6-point grid", points)
	}

	// ?from resumes mid-log.
	_, tail := getBody(t, ts.URL+"/jobs/"+st.ID+"/events?from=2")
	var first Event
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(tail)), "\n", 2)[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 2 {
		t.Fatalf("from=2 started at seq %d", first.Seq)
	}
}

func TestFinishPanicQuarantinesJobNotServer(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submitJob(t, ts, JobSpec{Experiment: "finpanic", Options: GridOptions{Instructions: 4}})
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobQuarantined {
		t.Fatalf("state after Finish panic: %q (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "finish hook panicked") {
		t.Fatalf("quarantine error unhelpful: %q", final.Error)
	}
	// The server — and new jobs — are unaffected.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("server unhealthy after a quarantine")
	}
	next := submitJob(t, ts, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 4}})
	if got := waitTerminal(t, ts, next.ID); got.State != JobDone {
		t.Fatalf("follow-up job ended %q", got.State)
	}
}

func TestGridPanicAnswers500ServerSurvives(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/jobs", JobSpec{Experiment: "gridpanic"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("grid panic: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("500 body: %s", body)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("server died with the panicking handler")
	}
}

func TestStorezReportsStoreAndLoad(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	st := submitJob(t, ts, JobSpec{Experiment: "sweep", Options: GridOptions{Instructions: 5}})
	waitTerminal(t, ts, st.ID)
	resp, body := getBody(t, ts.URL+"/storez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("storez: %d", resp.StatusCode)
	}
	var ss StoreStatus
	if err := json.Unmarshal(body, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Dir != srv.cfg.StoreDir || ss.Jobs != 1 || ss.Draining {
		t.Fatalf("storez: %+v", ss)
	}
}

func TestExternalWorkerRunsJobToByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 0 })
	startWorker(t, ts.URL, "ext-1")
	spec := JobSpec{Experiment: "summed", Seed: 7, Options: GridOptions{Instructions: 9}, Shards: 3}
	st := submitJob(t, ts, spec)
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	_, body := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=json")
	if want := soloBytes(t, spec.Options, spec.Seed, "summed", "json"); string(body) != want {
		t.Fatal("external-worker result differs from solo run")
	}
	// Every shard went through the external claim path.
	for _, sh := range final.Shards {
		if sh.State != shardDone {
			t.Fatalf("shard %d not done: %+v", sh.Shard, sh)
		}
	}
}

func TestReadyzFlipsDuringDrainAndSubmitRefused(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.Workers = 1 })
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatal("fresh server not ready")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("draining server still ready")
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("draining server not live")
	}
	resp, _ := postJSON(t, ts.URL+"/jobs", JobSpec{Experiment: "sweep"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d", resp.StatusCode)
	}
}

func TestConcurrentSubmissionsAllComplete(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 4; c.QueueLimit = 8 })
	var wg sync.WaitGroup
	ids := make([]string, 4)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := submitJob(t, ts, JobSpec{Experiment: "sweep", Seed: int64(i), Options: GridOptions{Instructions: 6}})
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if final := waitTerminal(t, ts, id); final.State != JobDone {
			t.Fatalf("job %s ended %q: %s", id, final.State, final.Error)
		}
	}
}
