// Package edcached is the fault-tolerant experiment service: an
// HTTP/JSON daemon that owns a content-addressed result store
// (internal/store) as a shared cache and supervises sweep jobs over the
// experiment engine (internal/sim).
//
// A job names an experiment, a seed and grid-shaping options; its grid
// is split into shards leased to workers — in-process pool workers
// and/or external `edcached -worker` processes claiming over HTTP —
// under a TTL-based lease protocol. Because every grid point is
// checkpointed into the store under a content address that covers the
// whole run identity, shard execution is idempotent: a crashed or hung
// worker's lease expires, the shard is re-leased, and the recompute
// (or store replay) yields the same bytes. The completed job's result
// is byte-identical to a solo `experiments` run, regardless of which
// workers ran which shards how many times.
//
// Degradation is graceful by construction: the job queue is bounded
// (429 + Retry-After), every non-streaming request carries a timeout,
// SIGTERM drains — in-flight shards checkpoint to the store, the
// journal keeps the job resumable by the next server — and a panicking
// experiment quarantines its job, never the process.
package edcached

// This file is the wire contract: every request/response body the
// server speaks, shared verbatim by the worker client and the tests.

import "edcache/internal/sim"

// GridOptions is the client-settable subset of the experiment options
// that shape a job's grid and results. Zero values mean the package
// defaults (see experiments.Options). Workers here is the engine's
// inner Monte-Carlo fan-out, proven result-neutral — it shapes speed,
// not bytes — so it is safe to let clients tune it per job.
type GridOptions struct {
	Instructions int `json:"instructions,omitempty"`
	Trials       int `json:"trials,omitempty"`
	Workers      int `json:"workers,omitempty"`
}

// JobSpec is the body of POST /jobs.
type JobSpec struct {
	// Experiment selects one experiment: an exact name or unique prefix,
	// resolved like the -run flag. Selectors matching several
	// experiments are rejected — a job is one grid.
	Experiment string `json:"experiment"`
	// Seed is the master seed (part of the store scope).
	Seed int64 `json:"seed"`
	// Options shape the grid and the result bytes.
	Options GridOptions `json:"options"`
	// Shards overrides the server's default shard count (capped at the
	// grid size; 0 = server default).
	Shards int `json:"shards,omitempty"`
	// DeadlineMS caps the job's total runtime in milliseconds
	// (0 = server default; the default may be "none").
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
}

// JobState is a job's lifecycle state.
type JobState string

const (
	JobQueued    JobState = "queued"    // accepted, shards not yet claimable
	JobRunning   JobState = "running"   // shards being leased and computed
	JobDone      JobState = "done"      // all shards deposited, Finish applied
	JobFailed    JobState = "failed"    // a task error or the deadline ended it
	JobCancelled JobState = "cancelled" // DELETE /jobs/{id} (or POST .../cancel)
	// JobQuarantined is the panic containment state: the experiment's
	// own code panicked (in Grid, Run beyond the runner's shield, or
	// Finish). The job is terminal and inspectable; the server and every
	// other job keep running.
	JobQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled, JobQuarantined:
		return true
	}
	return false
}

// ShardStatus describes one shard in GET /jobs/{id}.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // pending, leased, done
	Owner    string `json:"owner,omitempty"`
	Attempts int    `json:"attempts"`
	Tasks    int    `json:"tasks"`
}

// JobStatus is the body of GET /jobs/{id}.
type JobStatus struct {
	ID          string         `json:"id"`
	Spec        JobSpec        `json:"spec"`
	State       JobState       `json:"state"`
	Error       string         `json:"error,omitempty"`
	PointsDone  int            `json:"pointsDone"`
	TotalPoints int            `json:"totalPoints"`
	Shards      []ShardStatus  `json:"shards,omitempty"`
	Cache       sim.CacheStats `json:"cache"`
}

// Event is one line of the GET /jobs/{id}/events NDJSON stream. Seq is
// a per-job sequence number, so a reconnecting client resumes with
// ?from=<lastSeq+1> and misses nothing.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "shard" or "point"

	// state events
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`

	// shard events
	Shard  int    `json:"shard,omitempty"`
	What   string `json:"what,omitempty"` // leased, done, expired, failed
	Worker string `json:"worker,omitempty"`

	// point events
	Task   int    `json:"task,omitempty"`
	Label  string `json:"label,omitempty"`
	Cached bool   `json:"cached,omitempty"`
}

// ClaimRequest is the body of POST /shards/claim.
type ClaimRequest struct {
	// Worker names the claimant in statuses and events.
	Worker string `json:"worker"`
}

// ClaimResponse hands a worker everything it needs to compute a shard
// against the shared store: the lease coordinates plus the job's full
// run identity. StoreDir and Scope let an external worker open the same
// store and derive the same content addresses the server does — that
// shared addressing is what makes re-executed shards idempotent.
type ClaimResponse struct {
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	// Gen is the lease generation; renewals and (for bookkeeping)
	// completions quote it so a worker whose lease expired and was
	// re-issued cannot keep renewing the new holder's lease.
	Gen   int   `json:"gen"`
	TTLMS int64 `json:"ttlMS"`

	Experiment string      `json:"experiment"` // resolved exact name
	Seed       int64       `json:"seed"`
	Options    GridOptions `json:"options"`
	TaskIDs    []int       `json:"taskIDs"`
	StoreDir   string      `json:"storeDir"`
	Scope      []string    `json:"scope"`
}

// ShardRef identifies a lease in POST /shards/renew and
// POST /shards/complete.
type ShardRef struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Shard  int    `json:"shard"`
	Gen    int    `json:"gen"`
}

// StoreStatus is the body of GET /storez: the shared store's health
// plus the service's own load, in one scrape-friendly object.
type StoreStatus struct {
	Dir             string `json:"dir"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Quarantined     uint64 `json:"quarantined"`
	QuarantineFiles uint64 `json:"quarantineFiles"`
	Jobs            int    `json:"jobs"`
	LiveJobs        int    `json:"liveJobs"`
	Draining        bool   `json:"draining"`
}
