package edcached

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"edcache/internal/experiments"
	"edcache/internal/sim"
	"edcache/internal/store"
)

// logf is the service's warning sink, swappable by tests.
var logf = log.Printf

// Submission errors the server maps to status codes.
var (
	// ErrQueueFull rejects a submission over the live-job bound (429).
	ErrQueueFull = errors.New("edcached: job queue full")
	// ErrDraining rejects work while the server shuts down (503).
	ErrDraining = errors.New("edcached: draining")
	// ErrBadRequest marks client mistakes (400).
	ErrBadRequest = errors.New("bad request")
)

// Cancellation causes, distinguished via context.Cause so the
// supervisor can tell a drain (leave the job resumable) from a client
// cancel (terminal) from a deadline (terminal failure).
var (
	errDraining  = errors.New("edcached: server draining")
	errCancelled = errors.New("edcached: cancelled by client")
	errDeadline  = errors.New("edcached: job deadline exceeded")
)

// RegistryFunc builds the experiment registry for a job's options.
// It is a function, not a fixed registry, because the options shape
// the grids (instruction counts, trial counts) at registration time.
type RegistryFunc func(o GridOptions) *sim.Registry

// ScopeFunc derives the store scope — the digest prefix covering
// everything beyond grid coordinates that could change result bytes —
// for a job's options and seed.
type ScopeFunc func(o GridOptions, seed int64) []string

// DefaultRegistry registers the paper's full experiment suite with the
// job's options, exactly as cmd/experiments does.
func DefaultRegistry(o GridOptions) *sim.Registry {
	reg := sim.NewRegistry()
	experiments.RegisterAll(reg, experiments.Options{
		Instructions: o.Instructions,
		Trials:       o.Trials,
		Workers:      o.Workers,
	})
	return reg
}

// DefaultScope matches cmd/experiments' scope byte-for-byte, so a
// store populated by the CLI serves this daemon's jobs and vice versa.
func DefaultScope(o GridOptions, seed int64) []string {
	opts := experiments.Options{
		Instructions: o.Instructions,
		Trials:       o.Trials,
		Workers:      o.Workers,
	}
	return []string{store.ModuleVersion(), opts.CanonicalString(), "seed=" + strconv.FormatInt(seed, 10)}
}

// Config wires a Manager. Zero values select the documented defaults.
type Config struct {
	// Store is the shared result cache every job checkpoints through;
	// StoreDir is its directory, handed to external workers so they
	// open the same store. Both are required.
	Store    *store.Store
	StoreDir string
	// JobsDir holds the job journal (one JSON file per job) that makes
	// jobs survive a server restart. Required.
	JobsDir string

	// Registry and Scope default to DefaultRegistry and DefaultScope;
	// tests substitute cheap private suites.
	Registry RegistryFunc
	Scope    ScopeFunc

	// Workers is the in-process shard-worker count. 0 means none: every
	// shard waits for external `edcached -worker` claimants.
	Workers int
	// QueueLimit bounds live (non-terminal) jobs; 0 means 16.
	QueueLimit int
	// DefaultShards is the per-job shard count when the spec leaves it
	// 0 (capped at the grid size); 0 means 8.
	DefaultShards int
	// LeaseTTL is how long a shard lease lives between renewals;
	// 0 means 10s.
	LeaseTTL time.Duration
	// MaxShardAttempts poisons a job whose shard keeps failing or
	// expiring; 0 means 5.
	MaxShardAttempts int
	// DefaultDeadline caps jobs that do not set one; 0 means none.
	DefaultDeadline time.Duration

	// Retries / RetryBase configure the engine's transient-retry loop
	// per shard runner.
	Retries   int
	RetryBase time.Duration

	// RequestTimeout bounds every non-streaming HTTP request;
	// 0 means 30s. (Used by Server, carried here so one struct
	// configures the daemon.)
	RequestTimeout time.Duration

	// now is the lease clock, injectable by tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = DefaultRegistry
	}
	if c.Scope == nil {
		c.Scope = DefaultScope
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 16
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = 5
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// job is one sweep under supervision.
type job struct {
	id      string
	spec    JobSpec
	exp     sim.Experiment
	expName string
	grid    []sim.Task
	scope   []string
	cache   *sim.StoreCache
	table   *shardTable // nil for journal tombstones
	events  *eventLog

	ctx     context.Context
	cancel  context.CancelCauseFunc
	cancelT context.CancelFunc // releases the deadline timer, when one exists

	mu      sync.Mutex
	state   JobState
	errMsg  string
	lastErr string // most recent shard failure, folded into poison reports
	points  map[int]struct{}
	results map[int]sim.Result
	final   []sim.Result
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// setRunning flips queued→running once, with its state event.
func (j *job) setRunning() {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.mu.Unlock()
	j.events.append(Event{Type: "state", State: JobRunning})
}

// pointEvent is the Runner Progress hook: one event per unique grid
// point. A shard re-run after a lease expiry recomputes points the
// first attempt already reported; the dedup keeps the stream (and the
// PointsDone counter) honest.
func (j *job) pointEvent(r sim.Result, cached bool) {
	j.mu.Lock()
	if _, seen := j.points[r.Task.ID]; seen {
		j.mu.Unlock()
		return
	}
	j.points[r.Task.ID] = struct{}{}
	j.mu.Unlock()
	j.events.append(Event{Type: "point", Task: r.Task.ID, Label: r.Task.Label, Cached: cached})
}

// Manager owns the job table, the lease clock, and the in-process
// worker pool. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	store *store.Store

	mu       sync.Mutex
	cond     *sync.Cond // signalled when shards become claimable (or shutdown)
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewManager builds the manager, replays the job journal (terminal
// jobs become queryable tombstones; unfinished jobs are re-enqueued and
// re-run through the store, which serves their checkpointed points as
// hits), and starts the lease-expiry sweeper and the in-process
// workers.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil || cfg.StoreDir == "" {
		return nil, errors.New("edcached: Config.Store and StoreDir are required")
	}
	if cfg.JobsDir == "" {
		return nil, errors.New("edcached: Config.JobsDir is required")
	}
	if err := os.MkdirAll(cfg.JobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("edcached: jobs dir: %w", err)
	}
	m := &Manager{
		cfg:    cfg,
		store:  cfg.Store,
		jobs:   make(map[string]*job),
		nextID: 1,
	}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancel(context.Background())

	if err := m.replayJournal(); err != nil {
		return nil, err
	}

	m.wg.Add(1)
	go m.expiryLoop()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.workerLoop(fmt.Sprintf("local-%d", i))
	}
	// A cancelled manager context must wake claim-waiting workers.
	go func() {
		<-m.ctx.Done()
		m.cond.Broadcast()
	}()
	return m, nil
}

// Submit validates and enqueues a job.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	reg := m.cfg.Registry(spec.Options)
	names, err := reg.Resolve(spec.Experiment)
	if err != nil {
		return JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(names) != 1 {
		return JobStatus{}, fmt.Errorf("%w: %q selects %d experiments; a job is one grid",
			ErrBadRequest, spec.Experiment, len(names))
	}
	e, _ := reg.Get(names[0])
	grid := e.Grid()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if m.liveJobsLocked() >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	id := "j" + strconv.Itoa(m.nextID)
	m.nextID++
	j := m.newJobLocked(id, spec, e, names[0], grid)
	m.mu.Unlock()

	m.journal(j)
	j.events.append(Event{Type: "state", State: JobQueued})
	m.wg.Add(1)
	go m.supervise(j)
	m.cond.Broadcast()
	return m.statusOf(j), nil
}

// newJobLocked builds and registers a live job; m.mu must be held.
func (m *Manager) newJobLocked(id string, spec JobSpec, e sim.Experiment, name string, grid []sim.Task) *job {
	j := &job{
		id:      id,
		spec:    spec,
		exp:     e,
		expName: name,
		grid:    grid,
		scope:   m.cfg.Scope(spec.Options, spec.Seed),
		events:  newEventLog(),
		state:   JobQueued,
		points:  make(map[int]struct{}),
		results: make(map[int]sim.Result),
	}
	j.cache = &sim.StoreCache{Store: m.store, Scope: j.scope, Read: true}

	shards := spec.Shards
	if shards <= 0 {
		shards = m.cfg.DefaultShards
	}
	j.table = newShardTable(len(grid), shards, m.cfg.LeaseTTL, m.cfg.MaxShardAttempts)
	j.table.now = m.cfg.now

	ctx, cancel := context.WithCancelCause(m.ctx)
	deadline := time.Duration(spec.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = m.cfg.DefaultDeadline
	}
	if deadline > 0 {
		ctx, j.cancelT = context.WithTimeoutCause(ctx, deadline, errDeadline)
	}
	j.ctx, j.cancel = ctx, cancel

	m.jobs[id] = j
	m.order = append(m.order, id)
	return j
}

// liveJobsLocked counts non-terminal jobs; m.mu must be held.
func (m *Manager) liveJobsLocked() int {
	n := 0
	for _, id := range m.order {
		if !m.jobs[id].terminal() {
			n++
		}
	}
	return n
}

// Job returns the job's status.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return m.statusOf(j), true
}

// Events returns the job's event log for streaming.
func (m *Manager) Events(id string) (*eventLog, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.events, true
}

// Result returns a done job's final result set.
func (m *Manager) Result(id string) ([]sim.Result, JobState, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, "", false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final, j.state, true
}

// Cancel requests a job's cancellation; terminal jobs are unaffected.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	if j.cancel != nil {
		j.cancel(errCancelled)
	}
	return true
}

func (m *Manager) statusOf(j *job) JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		PointsDone:  len(j.points),
		TotalPoints: len(j.grid),
	}
	j.mu.Unlock()
	if j.cache != nil {
		st.Cache = j.cache.Stats()
	}
	if j.table != nil {
		st.Shards = j.table.statuses()
	}
	return st
}

// StoreStatus snapshots the shared store and the service load.
func (m *Manager) StoreStatus() StoreStatus {
	st := m.store.Stats()
	m.mu.Lock()
	defer m.mu.Unlock()
	return StoreStatus{
		Dir:             m.cfg.StoreDir,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Quarantined:     st.Quarantined,
		QuarantineFiles: st.QuarantineFiles,
		Jobs:            len(m.order),
		LiveJobs:        m.liveJobsLocked(),
		Draining:        m.draining,
	}
}

// Draining reports whether a drain has started (for /readyz).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// ---- lease protocol ----

// Claim leases the first pending shard of the oldest claimable job.
// ok is false when nothing is claimable right now.
func (m *Manager) Claim(req ClaimRequest) (ClaimResponse, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, idx, gen, ids, ok := m.claimLocked(req.Worker)
	if !ok {
		return ClaimResponse{}, false
	}
	return ClaimResponse{
		Job:        j.id,
		Shard:      idx,
		Gen:        gen,
		TTLMS:      m.cfg.LeaseTTL.Milliseconds(),
		Experiment: j.expName,
		Seed:       j.spec.Seed,
		Options:    j.spec.Options,
		TaskIDs:    ids,
		StoreDir:   m.cfg.StoreDir,
		Scope:      j.scope,
	}, true
}

// claimLocked is the shared claim path (in-process workers and the
// HTTP handler); m.mu must be held.
func (m *Manager) claimLocked(worker string) (j *job, idx, gen int, ids []int, ok bool) {
	if m.draining {
		return nil, 0, 0, nil, false
	}
	for _, id := range m.order {
		cand := m.jobs[id]
		if cand.table == nil || cand.terminal() || cand.ctx.Err() != nil {
			continue
		}
		if idx, gen, ids, ok = cand.table.claim(worker); ok {
			cand.setRunning()
			cand.events.append(Event{Type: "shard", Shard: idx, What: "leased", Worker: worker})
			return cand, idx, gen, ids, true
		}
	}
	return nil, 0, 0, nil, false
}

// Renew extends an external worker's lease; false means the lease is
// gone (expired and re-issued, or the job ended) and the worker should
// abandon the shard.
func (m *Manager) Renew(ref ShardRef) bool {
	m.mu.Lock()
	j, ok := m.jobs[ref.Job]
	m.mu.Unlock()
	if !ok || j.table == nil || j.terminal() {
		return false
	}
	return j.table.renew(ref.Shard, ref.Gen)
}

// CompleteExternal accepts an external worker's shard completion. The
// server trusts nothing in the request beyond the coordinates: it
// re-reads every task of the shard from the shared store — the worker's
// checkpoints — and deposits those verified results. A missing or
// undecodable entry fails the completion (the worker checkpointed
// nothing usable) and releases the shard for re-execution.
func (m *Manager) CompleteExternal(ref ShardRef) error {
	m.mu.Lock()
	j, ok := m.jobs[ref.Job]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown job %q", ref.Job)
	}
	if j.table == nil || j.terminal() {
		return fmt.Errorf("job %s is finished", ref.Job)
	}
	ids, ok := j.table.shardIDs(ref.Shard)
	if !ok {
		return fmt.Errorf("job %s has no shard %d", ref.Job, ref.Shard)
	}
	verifier := &sim.StoreCache{Store: m.store, Scope: j.scope, Read: true}
	results := make([]sim.Result, 0, len(ids))
	for _, id := range ids {
		t := j.grid[id]
		t.ID = id
		t.Seed = sim.SubSeed(j.spec.Seed, j.expName, id)
		r, hit := verifier.Get(j.expName, t)
		if !hit {
			j.table.fail(ref.Shard, ref.Gen, true)
			m.cond.Broadcast()
			return fmt.Errorf("shard %d task %d not in store; completion rejected", ref.Shard, id)
		}
		r.Experiment = j.expName
		r.Task = t
		results = append(results, r)
	}
	for _, r := range results {
		j.pointEvent(r, true)
	}
	m.depositShard(j, ref.Shard, results, ref.Worker)
	return nil
}

// shardIDs exposes a shard's task list for completion verification.
func (t *shardTable) shardIDs(idx int) ([]int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return nil, false
	}
	return t.shards[idx].ids, true
}

// depositShard stores a shard's results and marks it done.
func (m *Manager) depositShard(j *job, idx int, results []sim.Result, worker string) {
	j.mu.Lock()
	for _, r := range results {
		j.results[r.Task.ID] = r
	}
	j.mu.Unlock()
	if j.table.complete(idx) {
		j.events.append(Event{Type: "shard", Shard: idx, What: "done", Worker: worker})
	}
}

// ---- in-process workers ----

func (m *Manager) workerLoop(name string) {
	defer m.wg.Done()
	for {
		j, idx, gen, ids, ok := m.claimWait(name)
		if !ok {
			return
		}
		m.runShard(j, name, idx, gen, ids)
	}
}

// claimWait blocks until a shard is claimable or the manager stops.
func (m *Manager) claimWait(worker string) (j *job, idx, gen int, ids []int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.ctx.Err() != nil {
			return nil, 0, 0, nil, false
		}
		if j, idx, gen, ids, ok = m.claimLocked(worker); ok {
			return j, idx, gen, ids, true
		}
		m.cond.Wait()
	}
}

// runShard computes one leased shard under a heartbeat: the lease is
// renewed at TTL/3, and a failed renewal — the lease expired and moved
// on — cancels the shard's context so this worker stops burning CPU on
// work someone else now owns. (Its checkpoints so far still help: the
// new holder replays them from the store.)
func (m *Manager) runShard(j *job, worker string, idx, gen int, ids []int) {
	shardCtx, stop := context.WithCancel(j.ctx)
	defer stop()
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		beat := m.cfg.LeaseTTL / 3
		if beat < time.Millisecond {
			beat = time.Millisecond
		}
		tick := time.NewTicker(beat)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				if !j.table.renew(idx, gen) {
					close(lost)
					stop()
					return
				}
			}
		}
	}()

	runner := sim.Runner{
		Workers:   1,
		Seed:      j.spec.Seed,
		Retries:   m.cfg.Retries,
		RetryBase: m.cfg.RetryBase,
		Cache:     j.cache,
		Progress:  j.pointEvent,
	}
	results, err := runner.RunTasks(shardCtx, j.exp, ids)
	stop()
	<-hbDone

	if err != nil {
		var pe *sim.PanicError
		if errors.As(err, &pe) {
			// The experiment's own code panicked. Deterministic re-runs
			// would panic identically; quarantine the job, keep serving.
			j.table.fail(idx, gen, false)
			m.finishJob(j, JobQuarantined, err.Error())
			m.cond.Broadcast()
			return
		}
		leaseLost := false
		select {
		case <-lost:
			leaseLost = true
		default:
		}
		// Penalize only genuine task failures: a cancelled job or a lost
		// lease is scheduling, not evidence the shard is bad.
		penalize := !leaseLost && j.ctx.Err() == nil
		j.table.fail(idx, gen, penalize)
		if penalize {
			j.mu.Lock()
			j.lastErr = err.Error()
			j.mu.Unlock()
			j.events.append(Event{Type: "shard", Shard: idx, What: "failed", Worker: worker, Error: err.Error()})
		}
		m.cond.Broadcast()
		return
	}
	m.depositShard(j, idx, results, worker)
}

// ---- supervision ----

func (m *Manager) supervise(j *job) {
	defer m.wg.Done()
	select {
	case <-j.table.wait():
		if perr := j.table.err(); perr != nil {
			msg := perr.Error()
			j.mu.Lock()
			if j.lastErr != "" {
				msg += ": " + j.lastErr
			}
			j.mu.Unlock()
			m.finishJob(j, JobFailed, msg)
			return
		}
		m.assemble(j)
	case <-j.ctx.Done():
		switch cause := context.Cause(j.ctx); {
		case errors.Is(cause, errDraining):
			// Deliberately NOT terminal: the journal still says
			// queued/running, so the restarted server re-enqueues the
			// job and replays its checkpointed points from the store.
			return
		case errors.Is(cause, errCancelled):
			m.finishJob(j, JobCancelled, "cancelled")
		default:
			m.finishJob(j, JobFailed, cause.Error())
		}
	}
}

// assemble orders the deposited shard results by grid index, applies
// the Finish hook (under a panic shield — Finish runs experiment code)
// and completes the job.
func (m *Manager) assemble(j *job) {
	j.mu.Lock()
	results := make([]sim.Result, 0, len(j.grid))
	for i := range j.grid {
		r, ok := j.results[i]
		if !ok {
			j.mu.Unlock()
			m.finishJob(j, JobFailed, fmt.Sprintf("internal: task %d missing after all shards completed", i))
			return
		}
		results = append(results, r)
	}
	j.mu.Unlock()

	final, err := safeFinish(j.exp, results)
	if err != nil {
		state := JobFailed
		var pe *panicError
		if errors.As(err, &pe) {
			state = JobQuarantined
		}
		m.finishJob(j, state, err.Error())
		return
	}
	j.mu.Lock()
	j.final = final
	j.mu.Unlock()
	m.finishJob(j, JobDone, "")
}

// panicError wraps a recovered Finish-hook panic.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("finish hook panicked: %v", e.val) }

func safeFinish(e sim.Experiment, results []sim.Result) (out []sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			out, err = nil, &panicError{v}
		}
	}()
	return sim.Finish(e, results)
}

// finishJob performs the single terminal transition: state, journal,
// final state event, stream close, context release.
func (m *Manager) finishJob(j *job, state JobState, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
	m.journal(j)
	j.events.append(Event{Type: "state", State: state, Error: errMsg})
	j.events.close()
	if j.cancel != nil {
		j.cancel(nil)
	}
	if j.cancelT != nil {
		j.cancelT()
	}
	m.cond.Broadcast()
}

// expiryLoop sweeps shard leases past their TTL back to pending.
func (m *Manager) expiryLoop() {
	defer m.wg.Done()
	period := m.cfg.LeaseTTL / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-tick.C:
		}
		m.mu.Lock()
		live := make([]*job, 0, len(m.order))
		for _, id := range m.order {
			if j := m.jobs[id]; j.table != nil && !j.terminal() {
				live = append(live, j)
			}
		}
		m.mu.Unlock()
		woke := false
		for _, j := range live {
			for _, idx := range j.table.expireDue() {
				j.events.append(Event{Type: "shard", Shard: idx, What: "expired"})
				woke = true
			}
		}
		if woke {
			m.cond.Broadcast()
		}
	}
}

// ---- drain ----

// Drain stops accepting work, cancels every live job with the draining
// cause (supervisors leave them resumable in the journal; in-flight
// shards checkpoint their completed points to the store on the way
// out), and waits — bounded by ctx — for every goroutine to exit.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	live := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j.cancel != nil && !j.terminal() {
			live = append(live, j)
		}
	}
	m.mu.Unlock()
	if !already {
		for _, j := range live {
			j.cancel(errDraining)
		}
		m.cancel()
		m.cond.Broadcast()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("edcached: drain incomplete: %w", ctx.Err())
	}
}

// ---- journal ----

// journalEntry is the on-disk job record: just enough to resume (spec)
// or answer for (terminal state) the job after a restart.
type journalEntry struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
}

// journal durably records the job's current state with the store's
// write discipline (temp + rename + dir sync). Journal failures are
// logged, never fatal: a lost journal write costs restart fidelity,
// not correctness — results always re-derive from the store.
func (m *Manager) journal(j *job) {
	j.mu.Lock()
	e := journalEntry{ID: j.id, Spec: j.spec, State: j.state, Error: j.errMsg}
	j.mu.Unlock()
	if e.State == JobRunning {
		e.State = JobQueued // running resumes as queued; the store replays it
	}
	b, err := json.Marshal(e)
	if err != nil {
		logf("edcached: journal %s: %v", j.id, err)
		return
	}
	path := filepath.Join(m.cfg.JobsDir, j.id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		logf("edcached: journal %s: %v", j.id, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		logf("edcached: journal %s: %v", j.id, err)
		return
	}
	store.OSFS{}.SyncDir(m.cfg.JobsDir)
}

// replayJournal loads every journaled job: terminal states become
// queryable tombstones; unfinished jobs are re-enqueued (bypassing the
// queue limit — they were already admitted once) and re-run, with the
// store serving every point they had checkpointed before the restart.
func (m *Manager) replayJournal() error {
	dirents, err := os.ReadDir(m.cfg.JobsDir)
	if err != nil {
		return fmt.Errorf("edcached: jobs dir: %w", err)
	}
	type numbered struct {
		n int
		e journalEntry
	}
	var entries []numbered
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "j") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "j"), ".json"))
		if err != nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.cfg.JobsDir, name))
		if err != nil {
			logf("edcached: journal read %s: %v", name, err)
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil {
			logf("edcached: journal parse %s: %v", name, err)
			continue
		}
		entries = append(entries, numbered{n, e})
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].n < entries[k].n })

	for _, ne := range entries {
		e := ne.e
		if ne.n >= m.nextID {
			m.nextID = ne.n + 1
		}
		if e.State.Terminal() {
			m.addTombstone(e)
			continue
		}
		// Re-enqueue: resolve the experiment again (the registry may
		// have changed across the restart).
		reg := m.cfg.Registry(e.Spec.Options)
		names, rerr := reg.Resolve(e.Spec.Experiment)
		if rerr != nil || len(names) != 1 {
			e.State = JobFailed
			e.Error = fmt.Sprintf("not resumable after restart: %v", rerr)
			m.addTombstone(e)
			continue
		}
		exp, _ := reg.Get(names[0])
		m.mu.Lock()
		j := m.newJobLocked(e.ID, e.Spec, exp, names[0], exp.Grid())
		m.mu.Unlock()
		j.events.append(Event{Type: "state", State: JobQueued})
		m.wg.Add(1)
		go m.supervise(j)
	}
	return nil
}

// addTombstone registers a terminal journaled job: status and events
// answer for it, results are gone (the sweep's bytes live in the
// store; re-submit the spec to rematerialize them as a new job).
func (m *Manager) addTombstone(e journalEntry) {
	j := &job{
		id:     e.ID,
		spec:   e.Spec,
		state:  e.State,
		errMsg: e.Error,
		events: newEventLog(),
		points: make(map[int]struct{}),
	}
	j.events.append(Event{Type: "state", State: e.State, Error: e.Error})
	j.events.close()
	m.mu.Lock()
	m.jobs[e.ID] = j
	m.order = append(m.order, e.ID)
	m.mu.Unlock()
}
