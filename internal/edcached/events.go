package edcached

import "sync"

// eventLog is a job's append-only event history plus its live
// subscribers. Streams replay the full history (or a suffix) and then
// follow appends, so a client reconnecting after a dropped stream — or
// after the server restarted and re-ran the job — misses nothing.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	subs   map[chan struct{}]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan struct{}]struct{})}
}

// append stamps the event's sequence number and wakes subscribers.
// Appending to a closed log is a no-op: late shard completions racing a
// job's terminal state must not resurrect a finished stream.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	e.Seq = len(l.events)
	l.events = append(l.events, e)
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default: // already signalled; the subscriber will catch up
		}
	}
}

// close marks the log terminal and wakes every subscriber one last
// time so streams can observe the end and finish.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// since returns the events at sequence ≥ from and whether the log is
// terminal (no more events will ever arrive).
func (l *eventLog) since(from int) (events []Event, terminal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(l.events) {
		events = append(events, l.events[from:]...)
	}
	return events, l.closed
}

// subscribe registers a wake-up channel for new appends.
func (l *eventLog) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs[ch] = struct{}{}
	return ch
}

func (l *eventLog) unsubscribe(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.subs, ch)
}

// subscribers is a test hook: the number of live stream followers.
func (l *eventLog) subscribers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}
