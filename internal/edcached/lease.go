package edcached

import (
	"fmt"
	"sync"
	"time"
)

// shard lease states.
const (
	shardPending = "pending"
	shardLeased  = "leased"
	shardDone    = "done"
)

// shard is one contiguous slice of a job's grid under lease management.
type shard struct {
	ids      []int
	state    string
	owner    string
	gen      int // bumped on every lease; stale holders fail Renew
	expiry   time.Time
	attempts int
}

// shardTable is a job's lease ledger. Leases are the scheduling layer
// only: because results flow through the content-addressed store, a
// shard computed twice — by a worker whose lease expired racing its
// replacement — deposits identical bytes, so the table accepts a
// completion from any holder, current or stale, and uses generations
// purely to stop stale workers from renewing (and thereby starving) a
// re-issued lease. All methods are safe for concurrent use.
type shardTable struct {
	mu          sync.Mutex
	shards      []shard
	ttl         time.Duration
	maxAttempts int
	now         func() time.Time // injectable clock for lease tests

	done     int
	poisoned error
	finished chan struct{} // closed when all done or poisoned
}

// newShardTable splits taskIDs [0, total) into n contiguous shards.
func newShardTable(total, n int, ttl time.Duration, maxAttempts int) *shardTable {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	t := &shardTable{
		ttl:         ttl,
		maxAttempts: maxAttempts,
		now:         time.Now,
		finished:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		lo, hi := i*total/n, (i+1)*total/n
		ids := make([]int, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		t.shards = append(t.shards, shard{ids: ids, state: shardPending})
	}
	if total == 0 {
		close(t.finished) // an empty grid is complete by definition
	}
	return t
}

// claim leases the first pending shard to the worker. ok is false when
// nothing is pending (all leased or done) or the table is poisoned.
func (t *shardTable) claim(worker string) (idx, gen int, ids []int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.poisoned != nil {
		return 0, 0, nil, false
	}
	for i := range t.shards {
		s := &t.shards[i]
		if s.state != shardPending {
			continue
		}
		s.state = shardLeased
		s.owner = worker
		s.gen++
		s.expiry = t.now().Add(t.ttl)
		return i, s.gen, s.ids, true
	}
	return 0, 0, nil, false
}

// renew extends the lease; it fails when the shard is no longer leased
// under that generation — the holder crashed past its TTL and the shard
// was re-issued (or finished). A false return tells the worker to stop:
// its results are still welcome (complete accepts them), but the lease
// belongs to someone else now.
func (t *shardTable) renew(idx, gen int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return false
	}
	s := &t.shards[idx]
	if s.state != shardLeased || s.gen != gen {
		return false
	}
	s.expiry = t.now().Add(t.ttl)
	return true
}

// complete marks the shard done. It accepts the completion regardless
// of lease state or generation — results are idempotent through the
// store, so a stale worker finishing "too late" delivered exactly the
// bytes the current holder would; refusing them only wastes the work.
// Reports whether this call was the one that completed the shard.
func (t *shardTable) complete(idx int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return false
	}
	s := &t.shards[idx]
	if s.state == shardDone {
		return false
	}
	s.state = shardDone
	s.owner = ""
	t.done++
	if t.done == len(t.shards) {
		t.finishLocked()
	}
	return true
}

// fail releases a leased shard back to pending. penalize distinguishes
// a real task failure (count it toward poisoning) from a clean
// hand-back (cancellation, drain) that should not burn an attempt.
// Stale generations are ignored: the lease already moved on.
func (t *shardTable) fail(idx, gen int, penalize bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return
	}
	s := &t.shards[idx]
	if s.state != shardLeased || s.gen != gen {
		return
	}
	s.state = shardPending
	s.owner = ""
	if penalize {
		t.penalizeLocked(s, idx)
	}
}

// expireDue sweeps leases past their TTL back to pending, penalizing
// each — an external worker that silently dies mid-shard burns an
// attempt per expiry, so a crash-looping worker fleet poisons the job
// after maxAttempts instead of spinning forever. Returns the expired
// shard indices for event reporting.
func (t *shardTable) expireDue() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []int
	now := t.now()
	for i := range t.shards {
		s := &t.shards[i]
		if s.state == shardLeased && now.After(s.expiry) {
			s.state = shardPending
			s.owner = ""
			expired = append(expired, i)
			t.penalizeLocked(s, i)
		}
	}
	return expired
}

// penalizeLocked charges an attempt and poisons the table at the cap.
func (t *shardTable) penalizeLocked(s *shard, idx int) {
	s.attempts++
	if t.maxAttempts > 0 && s.attempts >= t.maxAttempts && t.poisoned == nil {
		t.poisoned = fmt.Errorf("shard %d failed %d times", idx, s.attempts)
		t.finishLocked()
	}
}

func (t *shardTable) finishLocked() {
	select {
	case <-t.finished:
	default:
		close(t.finished)
	}
}

// wait returns a channel closed when every shard is done or the table
// is poisoned; err distinguishes the two afterwards.
func (t *shardTable) wait() <-chan struct{} { return t.finished }

func (t *shardTable) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.poisoned
}

// hasPending reports whether a claim could succeed right now.
func (t *shardTable) hasPending() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.poisoned != nil {
		return false
	}
	for i := range t.shards {
		if t.shards[i].state == shardPending {
			return true
		}
	}
	return false
}

// statuses snapshots every shard for GET /jobs/{id}.
func (t *shardTable) statuses() []ShardStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ShardStatus, len(t.shards))
	for i := range t.shards {
		s := &t.shards[i]
		out[i] = ShardStatus{
			Shard:    i,
			State:    s.state,
			Owner:    s.owner,
			Attempts: s.attempts,
			Tasks:    len(s.ids),
		}
	}
	return out
}
