package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// FS is the slice of the filesystem the store touches, factored into an
// interface so tests can inject faults at every syscall boundary
// (store/errfs). Production code uses OSFS; nothing else in the store
// reaches the os package directly, which is what makes the torture
// suite's coverage claim ("a fault at ANY step") honest.
type FS interface {
	// MkdirAll creates a directory chain like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Create truncate-creates a file for writing.
	Create(path string) (File, error)
	// Open opens a file for reading.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, making a preceding Rename in it
	// durable. Filesystems that cannot sync directories may return nil.
	SyncDir(path string) error
}

// File is the open-file surface the store uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// Open implements FS.
func (OSFS) Open(path string) (File, error) { return os.Open(path) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error { return SyncDir(path) }

// SyncDir fsyncs a directory on the real filesystem: after renaming a
// file into a directory, only a sync of the directory itself makes the
// new name durable — the file's own fsync covers its contents, not its
// directory entry. Filesystems that refuse to sync directories (some
// network mounts) surface as a no-op, not an error, because the rename
// already happened and the caller has nothing better to do.
func SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}
