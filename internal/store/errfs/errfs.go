// Package errfs is a fault-injection filesystem for the store's
// torture suite. It wraps a real store.FS, numbers every operation the
// wrapped filesystem performs (each Create, Write, Sync, Close, Rename,
// SyncDir, ... is one step), and lets a test script a fault at any
// step: an injected error (ENOSPC, EIO), a torn write that persists
// only a prefix of the buffer, or a crash — after which every
// subsequent operation fails, modelling a process that died mid-write.
//
// The intended pattern is enumerate-then-inject: run the operation once
// over a Recorder to learn its exact syscall trace, then re-run it once
// per step with a fault injected at that step, reopening the directory
// with a clean filesystem afterwards to assert the store's crash
// guarantees. Because the wrapped filesystem is the real one, whatever
// a partial run leaves on disk is exactly what a real crash would.
package errfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"edcache/internal/store"
)

// Op names one kind of filesystem operation.
type Op string

// The operation kinds errfs distinguishes.
const (
	OpMkdirAll Op = "mkdirall"
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpReadDir  Op = "readdir"
	OpSyncDir  Op = "syncdir"
)

// ErrCrashed is what every operation returns once a crash fault fired:
// the process is dead, nothing else reaches the disk.
var ErrCrashed = errors.New("errfs: crashed")

// Fault is what a script injects at one step.
type Fault struct {
	// Err, when non-nil, is returned by the faulted operation (ENOSPC,
	// EIO, ...). The operation does not happen.
	Err error
	// Crash kills the filesystem at this step: the faulted operation
	// does not happen (except for a torn prefix, below) and every
	// subsequent operation returns ErrCrashed.
	Crash bool
	// TornBytes, meaningful for OpWrite faults, persists that many
	// bytes of the buffer before the fault fires — a torn write.
	TornBytes int
}

// Step is one recorded filesystem operation.
type Step struct {
	Op   Op
	Path string
}

// String renders a step for torture-table names.
func (s Step) String() string { return fmt.Sprintf("%s(%s)", s.Op, s.Path) }

// FS wraps a base store.FS with step counting and scripted faults.
// The zero value is unusable; use New.
type FS struct {
	base store.FS

	mu      sync.Mutex
	steps   []Step
	crashed bool
	script  func(step int, s Step) *Fault
}

// New wraps base. script may be nil (pure recorder); otherwise it is
// consulted once per operation with the step index (0-based) and may
// return a Fault to inject.
func New(base store.FS, script func(step int, s Step) *Fault) *FS {
	return &FS{base: base, script: script}
}

// FailAt returns a script injecting err at exactly step n.
func FailAt(n int, err error) func(int, Step) *Fault {
	return func(step int, _ Step) *Fault {
		if step == n {
			return &Fault{Err: err}
		}
		return nil
	}
}

// CrashAt returns a script crashing at exactly step n.
func CrashAt(n int) func(int, Step) *Fault {
	return func(step int, _ Step) *Fault {
		if step == n {
			return &Fault{Crash: true}
		}
		return nil
	}
}

// TornWriteAt returns a script that, at step n (which should be a
// write), persists only prefix bytes and then crashes.
func TornWriteAt(n, prefix int) func(int, Step) *Fault {
	return func(step int, _ Step) *Fault {
		if step == n {
			return &Fault{Crash: true, TornBytes: prefix}
		}
		return nil
	}
}

// Steps returns a copy of the recorded operation trace.
func (f *FS) Steps() []Step {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Step, len(f.steps))
	copy(out, f.steps)
	return out
}

// Crashed reports whether a crash fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step records one operation and returns the fault to inject, if any.
func (f *FS) step(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return &Fault{Err: ErrCrashed}
	}
	s := Step{Op: op, Path: path}
	n := len(f.steps)
	f.steps = append(f.steps, s)
	if f.script == nil {
		return nil
	}
	fault := f.script(n, s)
	if fault != nil && fault.Crash {
		f.crashed = true
	}
	return fault
}

// faultErr maps a fault to the error its operation returns.
func faultErr(fault *Fault) error {
	if fault.Err != nil {
		return fault.Err
	}
	return ErrCrashed
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if fault := f.step(OpMkdirAll, path); fault != nil {
		return faultErr(fault)
	}
	return f.base.MkdirAll(path, perm)
}

// Create implements store.FS.
func (f *FS) Create(path string) (store.File, error) {
	if fault := f.step(OpCreate, path); fault != nil {
		return nil, faultErr(fault)
	}
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: path}, nil
}

// Open implements store.FS.
func (f *FS) Open(path string) (store.File, error) {
	if fault := f.step(OpOpen, path); fault != nil {
		return nil, faultErr(fault)
	}
	file, err := f.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: path}, nil
}

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if fault := f.step(OpRename, oldpath+" -> "+newpath); fault != nil {
		return faultErr(fault)
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements store.FS.
func (f *FS) Remove(path string) error {
	if fault := f.step(OpRemove, path); fault != nil {
		return faultErr(fault)
	}
	return f.base.Remove(path)
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	if fault := f.step(OpReadDir, path); fault != nil {
		return nil, faultErr(fault)
	}
	return f.base.ReadDir(path)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(path string) error {
	if fault := f.step(OpSyncDir, path); fault != nil {
		return faultErr(fault)
	}
	return f.base.SyncDir(path)
}

// faultFile threads reads, writes, syncs and closes of one open file
// back through the owning FS's step counter.
type faultFile struct {
	fs   *FS
	f    store.File
	path string
}

// Read implements store.File.
func (ff *faultFile) Read(p []byte) (int, error) {
	if fault := ff.fs.step(OpRead, ff.path); fault != nil {
		return 0, faultErr(fault)
	}
	return ff.f.Read(p)
}

// Write implements store.File. A torn-write fault persists the prefix
// through the real file before failing, so the bytes genuinely land on
// disk the way a torn page would.
func (ff *faultFile) Write(p []byte) (int, error) {
	if fault := ff.fs.step(OpWrite, ff.path); fault != nil {
		n := 0
		if fault.TornBytes > 0 {
			torn := fault.TornBytes
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = ff.f.Write(p[:torn])
		}
		return n, faultErr(fault)
	}
	return ff.f.Write(p)
}

// Sync implements store.File.
func (ff *faultFile) Sync() error {
	if fault := ff.fs.step(OpSync, ff.path); fault != nil {
		return faultErr(fault)
	}
	return ff.f.Sync()
}

// Close implements store.File. Close always releases the real file
// descriptor — even under a fault — so torture runs do not leak fds;
// the injected error models the close's durability failing, not the
// descriptor surviving.
func (ff *faultFile) Close() error {
	if fault := ff.fs.step(OpClose, ff.path); fault != nil {
		ff.f.Close()
		return faultErr(fault)
	}
	return ff.f.Close()
}
