package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk entry format (little-endian, mirroring the trace container's
// conventions — docs/STORE.md is the normative spec):
//
//	[0:4)    magic "EDRS"
//	[4:6)    format version (currently 1)
//	[6:8)    reserved, must be zero
//	[8:16)   payload length N
//	[16:16+N) payload
//	[16+N:20+N) CRC32C (Castagnoli) over bytes [0, 16+N)
//
// The checksum covers the header too, so a bit flip anywhere in the
// entry — not just the payload — fails validation. Decoding never
// panics and never returns a wrong payload: anything that does not
// parse byte-exactly is ErrCorrupt (quarantined by the store) or
// ErrVersion (an entry from a newer binary: unreadable, not damaged).

const (
	entryMagic    = "EDRS"
	entryVersion  = 1
	entryHeader   = 16
	entryCRCBytes = 4
	entryOverhead = entryHeader + entryCRCBytes

	// maxPayload caps a single entry at 1 GiB. A length field beyond it
	// is treated as corruption: no real result row is that large, and
	// the cap stops a damaged length from driving a huge allocation.
	maxPayload = 1 << 30
)

// Sentinel errors of the entry codec. Every rejection wraps one of
// these, so callers and tests can classify failures with errors.Is.
var (
	// ErrCorrupt marks an entry that is structurally damaged: short,
	// wrong magic, nonzero reserved bytes, length mismatch, or checksum
	// failure. The store quarantines such entries and reports a miss.
	ErrCorrupt = errors.New("store: corrupt entry")

	// ErrVersion marks an entry written by an unknown (newer) format
	// version. It is a miss but not damage, so it is left in place.
	ErrVersion = errors.New("store: unsupported entry version")
)

// castagnoli is the CRC32C table (same polynomial as the trace layer).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeEntry frames a payload in the on-disk entry format.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, entryOverhead+len(payload))
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint16(buf[4:], entryVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	copy(buf[entryHeader:], payload)
	crc := crc32.Checksum(buf[:entryHeader+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(buf[entryHeader+len(payload):], crc)
	return buf
}

// decodeEntry validates a serialized entry and returns its payload. The
// returned slice aliases data.
func decodeEntry(data []byte) ([]byte, error) {
	if len(data) < entryOverhead {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(data), entryOverhead)
	}
	if string(data[:4]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != entryVersion {
		return nil, fmt.Errorf("%w: version %d (this binary reads %d)", ErrVersion, v, entryVersion)
	}
	if r := binary.LittleEndian.Uint16(data[6:]); r != 0 {
		return nil, fmt.Errorf("%w: reserved bytes %#04x nonzero", ErrCorrupt, r)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d cap", ErrCorrupt, n, maxPayload)
	}
	if uint64(len(data)) != entryOverhead+n {
		return nil, fmt.Errorf("%w: payload length %d but %d entry bytes", ErrCorrupt, n, len(data))
	}
	body := entryHeader + int(n)
	want := binary.LittleEndian.Uint32(data[body:])
	if got := crc32.Checksum(data[:body], castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC32C %#08x, entry says %#08x", ErrCorrupt, got, want)
	}
	return data[entryHeader:body], nil
}
