package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzEntry holds the entry codec to its two contracts under arbitrary
// bytes: decoding never panics and classifies every failure as
// ErrCorrupt or ErrVersion, and encode→decode round-trips any payload
// byte-exactly. It joins the trace harnesses in CI's fuzz smoke.
func FuzzEntry(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("EDRS"))
	f.Add(encodeEntry(nil))
	f.Add(encodeEntry([]byte("seed payload")))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes: decode must classify, never panic.
		payload, err := decodeEntry(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unclassified decode error: %v", err)
			}
		} else {
			// A valid entry must re-encode to the identical bytes —
			// the format has exactly one serialization per payload.
			if !bytes.Equal(encodeEntry(payload), data) {
				t.Fatalf("decode/encode not canonical for %d-byte entry", len(data))
			}
		}
		// Any bytes used as a payload must round-trip.
		enc := encodeEntry(data)
		got, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip changed payload: %d in, %d out", len(data), len(got))
		}
	})
}
