package store_test

// The crash-safety torture suite, in the mold of the trace layer's
// corruption suite (PR 7): enumerate every filesystem operation the
// store performs across its lifecycle (open, checkpoint, lookup), then
// re-run the lifecycle once per operation with a fault injected at
// exactly that point — a process crash, a torn write that persists only
// a prefix, ENOSPC, or EIO — and prove that a store reopened afterwards
// on a clean filesystem either serves the exact payload or reports a
// miss, never a torn result, and remains fully usable. The overwrite
// variant additionally proves a faulted re-Put leaves either the old or
// the new entry byte-exactly, never a blend.

import (
	"bytes"
	"fmt"
	"syscall"
	"testing"

	"edcache/internal/store"
	"edcache/internal/store/errfs"
)

var (
	tortureDigest  = store.NewDigest("mod@v1", "corpus", "opts", "seed=0", "task 3")
	torturePayload = []byte(`{"experiment":"corpus","metrics":[{"name":"base_epi","value":42.125}]}`)
)

// lifecycle is the operation sequence under torture: open the store,
// checkpoint one result, look it up. Errors are tolerated — under
// injection they are the point — but never panics.
func lifecycle(fsys store.FS, dir string, payload []byte) {
	s, err := store.OpenFS(fsys, dir)
	if err != nil {
		return
	}
	_ = s.Put(tortureDigest, payload)
	_, _ = s.Get(tortureDigest)
}

// recordSteps enumerates the lifecycle's syscall trace on a clean run.
func recordSteps(t *testing.T, prep func(dir string)) []errfs.Step {
	t.Helper()
	dir := t.TempDir()
	if prep != nil {
		prep(dir)
	}
	rec := errfs.New(store.OSFS{}, nil)
	lifecycle(rec, dir, torturePayload)
	steps := rec.Steps()
	if len(steps) < 8 { // open sweep + create/write/sync/close/rename/syncdir + get
		t.Fatalf("recorded only %d steps: %v", len(steps), steps)
	}
	return steps
}

// assertRecovered reopens dir with the real filesystem and holds the
// store to its contract: the digest is a miss or the exact payload
// (one of wants), and the store still accepts and serves a fresh Put.
func assertRecovered(t *testing.T, dir string, wants ...[]byte) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	if got, ok := s.Get(tortureDigest); ok {
		match := false
		for _, w := range wants {
			if bytes.Equal(got, w) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("recovered store served torn payload %q", got)
		}
	}
	if err := s.Put(tortureDigest, torturePayload); err != nil {
		t.Fatalf("recovered store rejects Put: %v", err)
	}
	if got, ok := s.Get(tortureDigest); !ok || !bytes.Equal(got, torturePayload) {
		t.Fatalf("recovered store can't serve fresh Put: ok=%v %q", ok, got)
	}
}

// TestTortureFaultAtEveryStep injects each fault flavor at every
// recorded syscall boundary of the open→Put→Get lifecycle on an empty
// store.
func TestTortureFaultAtEveryStep(t *testing.T) {
	steps := recordSteps(t, nil)
	faults := []struct {
		name   string
		script func(int) func(int, errfs.Step) *errfs.Fault
	}{
		{"crash", func(i int) func(int, errfs.Step) *errfs.Fault { return errfs.CrashAt(i) }},
		{"enospc", func(i int) func(int, errfs.Step) *errfs.Fault {
			return errfs.FailAt(i, syscall.ENOSPC)
		}},
		{"eio", func(i int) func(int, errfs.Step) *errfs.Fault {
			return errfs.FailAt(i, syscall.EIO)
		}},
	}
	for _, fault := range faults {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			for i, step := range steps {
				i := i
				t.Run(fmt.Sprintf("step%02d-%s", i, step.Op), func(t *testing.T) {
					dir := t.TempDir()
					lifecycle(errfs.New(store.OSFS{}, fault.script(i)), dir, torturePayload)
					assertRecovered(t, dir, torturePayload)
				})
			}
		})
	}
}

// TestTortureTornWriteAtEveryPrefix crashes during the entry write
// after persisting 1, half, and all-but-one bytes of the buffer; a
// reopened store must treat every prefix as a miss.
func TestTortureTornWriteAtEveryPrefix(t *testing.T) {
	steps := recordSteps(t, nil)
	entryLen := len(torturePayload) + 20 // header + payload + CRC
	for i, step := range steps {
		if step.Op != errfs.OpWrite {
			continue
		}
		for _, prefix := range []int{1, entryLen / 2, entryLen - 1} {
			i, prefix := i, prefix
			t.Run(fmt.Sprintf("step%02d-write-torn%d", i, prefix), func(t *testing.T) {
				dir := t.TempDir()
				lifecycle(errfs.New(store.OSFS{}, errfs.TornWriteAt(i, prefix)), dir, torturePayload)
				assertRecovered(t, dir, torturePayload)
			})
		}
	}
}

// TestTortureOverwritePreservesOldOrNew re-Puts an existing digest with
// different bytes and crashes at every step: the reopened store must
// serve exactly the old or exactly the new payload.
func TestTortureOverwritePreservesOldOrNew(t *testing.T) {
	oldPayload := []byte(`{"v":"old result, previously durable"}`)
	seed := func(dir string) {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(tortureDigest, oldPayload); err != nil {
			t.Fatal(err)
		}
	}
	steps := recordSteps(t, seed)
	for i, step := range steps {
		i := i
		t.Run(fmt.Sprintf("step%02d-%s", i, step.Op), func(t *testing.T) {
			dir := t.TempDir()
			seed(dir)
			lifecycle(errfs.New(store.OSFS{}, errfs.CrashAt(i)), dir, torturePayload)
			assertRecovered(t, dir, oldPayload, torturePayload)
		})
	}
}

// TestTortureNeighborEntrySurvives injects a crash at every step of a
// faulted Put while an unrelated entry already exists; the neighbor
// must stay byte-exact throughout.
func TestTortureNeighborEntrySurvives(t *testing.T) {
	neighbor := store.NewDigest("mod@v1", "corpus", "opts", "seed=0", "task 0")
	neighborPayload := []byte(`{"v":"the neighbor"}`)
	seed := func(dir string) {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(neighbor, neighborPayload); err != nil {
			t.Fatal(err)
		}
	}
	steps := recordSteps(t, seed)
	for i, step := range steps {
		i := i
		t.Run(fmt.Sprintf("step%02d-%s", i, step.Op), func(t *testing.T) {
			dir := t.TempDir()
			seed(dir)
			lifecycle(errfs.New(store.OSFS{}, errfs.CrashAt(i)), dir, torturePayload)
			s, err := store.Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got, ok := s.Get(neighbor); !ok || !bytes.Equal(got, neighborPayload) {
				t.Fatalf("neighbor damaged by faulted Put: ok=%v %q", ok, got)
			}
		})
	}
}
