package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime/debug"
)

// Digest is a content address: SHA-256 over the length-prefixed parts
// that define a result (module version, experiment, canonical options,
// seed, grid point). Two runs that would compute the same bytes derive
// the same digest; anything that could change the bytes must be a part.
type Digest [sha256.Size]byte

// NewDigest hashes the parts with an unambiguous length-prefixed
// framing, so ("ab","c") and ("a","bc") — or a part containing a
// separator — can never collide.
func NewDigest(parts ...string) Digest {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// String is the lower-hex rendering (the on-disk file name).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ModuleVersion identifies the code that computed a result, for use as
// the leading digest part: module path and version plus, for source
// builds, the VCS revision and dirty flag. Results are only shareable
// between binaries built from identical code, so any of these changing
// must invalidate the cache. Falls back to the module path alone when
// build info is unavailable (e.g. some test binaries).
func ModuleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Path + "@" + bi.Main.Version
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		v += fmt.Sprintf("+%s(dirty=%s)", rev, modified)
	}
	return v
}
