package store

// The corruption sweep: every byte of an on-disk entry is flipped —
// and the entry truncated at every length, and extended — and Get must
// report a miss each time: no panic, no wrong payload, because the
// CRC32C covers header and payload alike. Mirrors the exhaustive
// every-byte sweeps the trace layer's corruption suite runs.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// writeRaw replaces the digest's entry file with raw bytes, creating
// the shard if the store has never written it.
func writeRaw(t *testing.T, s *Store, d Digest, raw []byte) {
	t.Helper()
	path := s.entryPath(d)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionEveryByteFlip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("flip-target")
	payload := bytes.Repeat([]byte("result row "), 6)
	entry := encodeEntry(payload)
	for i := range entry {
		damaged := bytes.Clone(entry)
		damaged[i] ^= 0xFF
		writeRaw(t, s, d, damaged)
		if got, ok := s.Get(d); ok {
			t.Fatalf("byte %d flipped: served %q", i, got)
		}
	}
	// Control: the pristine entry still decodes after the sweep.
	writeRaw(t, s, d, entry)
	if got, ok := s.Get(d); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("pristine entry after sweep: ok=%v %q", ok, got)
	}
}

func TestCorruptionEveryTruncation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("truncate-target")
	entry := encodeEntry([]byte("a modest payload"))
	for n := 0; n < len(entry); n++ {
		writeRaw(t, s, d, entry[:n])
		if got, ok := s.Get(d); ok {
			t.Fatalf("truncated to %d bytes: served %q", n, got)
		}
	}
	// One byte appended is as invalid as one missing.
	writeRaw(t, s, d, append(bytes.Clone(entry), 0x00))
	if got, ok := s.Get(d); ok {
		t.Fatalf("extended entry served %q", got)
	}
	writeRaw(t, s, d, entry)
	if _, ok := s.Get(d); !ok {
		t.Fatal("pristine entry after truncation sweep is a miss")
	}
}

func TestCorruptionNeverReturnsWrongPayloadUnderGarbage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("garbage-target")
	for _, raw := range [][]byte{
		nil,
		[]byte("not an entry at all"),
		bytes.Repeat([]byte{0xFF}, 1024),
		encodeEntry(nil)[:entryHeader], // header only, CRC gone
	} {
		writeRaw(t, s, d, raw)
		if got, ok := s.Get(d); ok {
			t.Fatalf("garbage %d bytes served as %q", len(raw), got)
		}
	}
}
