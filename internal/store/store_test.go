package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDigestDistinguishesPartBoundaries(t *testing.T) {
	a := NewDigest("ab", "c")
	b := NewDigest("a", "bc")
	if a == b {
		t.Fatal("length-prefixed framing failed: (ab,c) == (a,bc)")
	}
	if NewDigest("x") != NewDigest("x") {
		t.Fatal("digest not deterministic")
	}
	if len(a.String()) != 64 || strings.ToLower(a.String()) != a.String() {
		t.Fatalf("digest string %q not 64 lower-hex chars", a)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		enc := encodeEntry(payload)
		got, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestEntryVersionGate(t *testing.T) {
	enc := encodeEntry([]byte("payload"))
	enc[4] = 2 // future version
	_, err := decodeEntry(enc)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("future version must not classify as corruption")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("mod", "exp", "opts", "seed", "task")
	if _, ok := s.Get(d); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"metrics":[1,2,3]}`)
	if err := s.Put(d, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(d)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put: ok=%v payload=%q", ok, got)
	}

	// A reopened store serves the same entry.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(d)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after reopen: ok=%v payload=%q", ok, got)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after one hit: %+v", st)
	}
}

func TestStorePutOverwritesIdempotently(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("k")
	for i := 0; i < 3; i++ {
		if err := s.Put(d, []byte("same bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Get(d); !ok || string(got) != "same bytes" {
		t.Fatalf("after repeated Put: ok=%v %q", ok, got)
	}
}

func TestStoreQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("victim")
	if err := s.Put(d, []byte("precious result")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	path := s.entryPath(d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[entryHeader] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(d); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("expected 1 quarantined, stats %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at %s (err %v)", path, err)
	}
	qpath := filepath.Join(dir, quarantineDir, d.String()+entryExt)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantined entry not at %s: %v", qpath, err)
	}
	// The store stays usable: a fresh Put of the same digest hits again.
	if err := s.Put(d, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(d); !ok || string(got) != "recomputed" {
		t.Fatalf("after requarantine+Put: ok=%v %q", ok, got)
	}
}

func TestStoreFutureVersionIsMissNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("future")
	if err := s.Put(d, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(d)
	data := encodeEntry([]byte("payload"))
	// Stamp a future version. The CRC (computed over version-1 bytes)
	// no longer matches, but the version gate runs first — that
	// ordering is what keeps new-format entries out of quarantine.
	data[4] = 9
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d); ok {
		t.Fatal("future-version entry served")
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("future-version entry quarantined: %+v", st)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("future-version entry moved: %v", err)
	}
}

func TestOpenSweepsOrphanedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDigest("live")
	if err := s.Put(d, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.entryPath(d))
	orphan := filepath.Join(shard, d.String()+".42.tmp")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan tmp not swept: %v", err)
	}
	if got, ok := s.Get(d); !ok || string(got) != "keep me" {
		t.Fatalf("sweep damaged live entry: ok=%v %q", ok, got)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			d := NewDigest("concurrent", string(rune('a'+i%8)))
			payload := bytes.Repeat([]byte{byte(i % 8)}, 128)
			if err := s.Put(d, payload); err != nil {
				done <- err
				return
			}
			got, ok := s.Get(d)
			if !ok || !bytes.Equal(got, payload) {
				done <- errors.New("readback mismatch")
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestModuleVersionNonEmpty(t *testing.T) {
	if ModuleVersion() == "" {
		t.Fatal("empty module version")
	}
}

// seedQuarantine parks n pre-damaged entries in dir/quarantine, the way
// a flapping disk would have left them across earlier sessions.
func seedQuarantine(t *testing.T, dir string, n int) {
	t.Helper()
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := NewDigest("debris", strings.Repeat("x", i%7), string(rune(i))).String() + entryExt
		if err := os.WriteFile(filepath.Join(qdir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// captureLog swaps the store's warning sink for the test's duration and
// returns the collected lines.
func captureLog(t *testing.T) *[]string {
	t.Helper()
	var lines []string
	orig := logf
	logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { logf = orig })
	return &lines
}

func TestOpenCountsQuarantineFiles(t *testing.T) {
	dir := t.TempDir()
	seedQuarantine(t, dir, 3)
	// A non-entry file and a subdirectory must not count.
	if err := os.WriteFile(filepath.Join(dir, quarantineDir, "notes.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	logs := captureLog(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.QuarantineFiles != 3 {
		t.Fatalf("QuarantineFiles = %d, want 3: %+v", st.QuarantineFiles, st)
	}
	if len(*logs) != 0 {
		t.Fatalf("below-threshold quarantine warned: %q", *logs)
	}
}

func TestOpenWarnsAboveQuarantineThreshold(t *testing.T) {
	dir := t.TempDir()
	seedQuarantine(t, dir, QuarantineWarn+1)
	logs := captureLog(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.QuarantineFiles != QuarantineWarn+1 {
		t.Fatalf("QuarantineFiles = %d, want %d", st.QuarantineFiles, QuarantineWarn+1)
	}
	if len(*logs) != 1 || !strings.Contains((*logs)[0], "quarantined entries") {
		t.Fatalf("want exactly one quarantine warning, got %q", *logs)
	}
}

// TestQuarantineCapDeletesInsteadOfGrowing: with the quarantine already
// at capacity, a newly damaged entry is deleted — still a counted miss,
// never served — instead of adding to the debris pile.
func TestQuarantineCapDeletesInsteadOfGrowing(t *testing.T) {
	dir := t.TempDir()
	seedQuarantine(t, dir, QuarantineCap)
	logs := captureLog(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = logs // warning expected; asserted by the threshold test above

	d := NewDigest("over-cap victim")
	if err := s.Put(d, []byte("result")); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("over-cap corrupt entry not deleted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, d.String()+entryExt)); !os.IsNotExist(err) {
		t.Fatalf("over-cap entry landed in quarantine anyway: %v", err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.QuarantineFiles != QuarantineCap {
		t.Fatalf("cap accounting wrong: %+v", st)
	}
}
