// Package store is a crash-safe, content-addressed on-disk result
// store: the durable sibling of the engine's in-process memoization
// (sim.Shared, bench.ArenaCache). Entries are addressed by a SHA-256
// digest of everything that defines a result — module version,
// experiment name, canonicalized options, seed, grid point — and
// written with the same discipline the trace layer brought to
// containers: temp file + fsync + rename + directory fsync, a version
// header, and a CRC32C over every byte. A reopened store either serves
// the exact bytes that were written or reports a miss; corrupt or
// truncated entries are quarantined, never returned and never fatal.
//
// Every filesystem touch goes through the FS interface, so the torture
// suite (store/errfs) can inject a crash, torn write, ENOSPC or EIO at
// every syscall boundary and prove those guarantees case by case.
package store

import (
	"errors"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Store is a content-addressed entry store rooted at one directory.
// Entries live at <dir>/<hh>/<digest>.res, sharded by the first digest
// byte so huge sweeps do not pile every entry into one directory (the
// cache/disk layout idiom). All methods are safe for concurrent use.
type Store struct {
	fs  FS
	dir string

	tmpSeq atomic.Uint64 // distinguishes concurrent writers of one digest

	hits        atomic.Uint64
	misses      atomic.Uint64
	quarantined atomic.Uint64
	quarFiles   atomic.Uint64 // entries in quarantine/ (counted at Open, tracked since)
}

// Stats is a snapshot of a store's traffic counters.
type Stats struct {
	Hits        uint64 // Get served a validated payload
	Misses      uint64 // Get found nothing usable (absent, unreadable, corrupt, future-version)
	Quarantined uint64 // corrupt entries moved aside (or, over the cap, deleted) by Get
	// QuarantineFiles is the number of entries currently parked in
	// <dir>/quarantine — counted once at Open and maintained as Get
	// quarantines more — so a service endpoint can watch a flapping
	// disk's debris accumulate instead of discovering a full volume.
	QuarantineFiles uint64
}

const (
	entryExt      = ".res"
	tmpExt        = ".tmp"
	quarantineDir = "quarantine"

	// QuarantineWarn is the quarantine population above which Open logs
	// a one-line warning: that many damaged entries means the disk (or a
	// writer) is flapping, not that one page was torn.
	QuarantineWarn = 100
	// QuarantineCap bounds quarantine growth: once the directory holds
	// this many entries, newly damaged files are deleted instead of
	// preserved, so a flapping disk cannot silently fill the volume with
	// its own corruption.
	QuarantineCap = 1024
)

// logf is the store's warning sink, swappable by tests.
var logf = log.Printf

// Open opens (creating if needed) a store rooted at dir on the real
// filesystem.
func Open(dir string) (*Store, error) { return OpenFS(OSFS{}, dir) }

// OpenFS is Open over an injectable filesystem. Opening sweeps
// leftover temporary files — the residue of a crash mid-Put — because
// they are unreferenced garbage by construction: a Put either renamed
// its temp file into place or its entry does not exist.
func OpenFS(fsys FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{fs: fsys, dir: dir}
	s.sweepTmp()
	if n := s.countQuarantine(); n > 0 {
		s.quarFiles.Store(n)
		if n > QuarantineWarn {
			logf("store: %s holds %d quarantined entries (warn threshold %d): the disk or a writer is flapping; inspect or clear %s",
				dir, n, QuarantineWarn, filepath.Join(dir, quarantineDir))
		}
	}
	return s, nil
}

// countQuarantine counts the .res entries parked in the quarantine
// directory; unreadable means zero (the directory may not exist yet).
func (s *Store) countQuarantine() uint64 {
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return 0
	}
	var n uint64
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), entryExt) {
			n++
		}
	}
	return n
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Quarantined:     s.quarantined.Load(),
		QuarantineFiles: s.quarFiles.Load(),
	}
}

// entryPath returns the final path of a digest's entry.
func (s *Store) entryPath(d Digest) string {
	name := d.String()
	return filepath.Join(s.dir, name[:2], name+entryExt)
}

// Get returns the payload stored under the digest. It reports a miss —
// never an error, never a wrong payload — when the entry is absent,
// unreadable, from a future format version, or damaged in any way;
// damaged entries are additionally moved to <dir>/quarantine so they
// stop being revalidated and stay inspectable.
func (s *Store) Get(d Digest) ([]byte, bool) {
	path := s.entryPath(d)
	f, err := s.fs.Open(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil { // EIO mid-read: can't validate, so it's a miss
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(data)
	if err != nil {
		s.misses.Add(1)
		if !isVersionErr(err) { // future versions are unreadable, not damaged
			s.quarantine(path, d)
		}
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put durably stores the payload under the digest: entry bytes are
// written to a temporary file in the entry's shard directory, fsynced,
// renamed over the final name, and the directory is fsynced — so after
// Put returns nil the entry survives a crash, and a crash at any
// earlier point leaves either the previous entry or no entry, never a
// torn one. On error the temporary file is removed best-effort and the
// store remains usable; the caller decides whether a failed checkpoint
// is fatal (for result caching it is not).
func (s *Store) Put(d Digest, payload []byte) error {
	name := d.String()
	shard := filepath.Join(s.dir, name[:2])
	if err := s.fs.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	tmp := filepath.Join(shard, fmt.Sprintf("%s.%d%s", name, s.tmpSeq.Add(1), tmpExt))
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	_, err = f.Write(encodeEntry(payload))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.Rename(tmp, filepath.Join(shard, name+entryExt))
	}
	if err != nil {
		s.fs.Remove(tmp) // best-effort; sweepTmp collects survivors next open
		return fmt.Errorf("store: put %s: %w", name, err)
	}
	if err := s.fs.SyncDir(shard); err != nil {
		// The rename is visible but not yet guaranteed durable; the
		// entry is valid either way, so surface the error and let the
		// caller decide.
		return fmt.Errorf("store: put %s: sync dir: %w", name, err)
	}
	return nil
}

// quarantine moves a damaged entry to <dir>/quarantine/<digest>.res,
// falling back to deleting it; if both fail the entry stays put, which
// costs a revalidation per Get but remains a miss. Once the quarantine
// holds QuarantineCap entries, damaged files are deleted outright —
// preserving evidence is worth bounded space, never the whole volume.
func (s *Store) quarantine(path string, d Digest) {
	s.quarantined.Add(1)
	if s.quarFiles.Load() >= QuarantineCap {
		s.fs.Remove(path)
		return
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir, 0o755); err == nil {
		if s.fs.Rename(path, filepath.Join(qdir, d.String()+entryExt)) == nil {
			s.quarFiles.Add(1)
			return
		}
	}
	s.fs.Remove(path)
}

// sweepTmp removes temporary files left behind by interrupted Puts.
// Failures are ignored: a surviving .tmp file is never read by Get.
func (s *Store) sweepTmp() {
	shards, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		entries, err := s.fs.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), tmpExt) {
				s.fs.Remove(filepath.Join(s.dir, sh.Name(), e.Name()))
			}
		}
	}
}

// isVersionErr reports whether the decode failure is ErrVersion.
func isVersionErr(err error) bool { return errors.Is(err, ErrVersion) }
