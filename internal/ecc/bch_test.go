package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	f, err := NewField(6, primPolyGF64)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 63 {
		t.Fatalf("N = %d, want 63", f.N())
	}
	// α generates the full multiplicative group.
	seen := map[uint16]bool{}
	for i := 0; i < f.N(); i++ {
		a := f.Alpha(i)
		if a == 0 || seen[a] {
			t.Fatalf("α^%d = %d repeated or zero", i, a)
		}
		seen[a] = true
	}
}

func TestFieldAxioms(t *testing.T) {
	f, _ := NewField(6, primPolyGF64)
	for a := uint16(1); a < 64; a++ {
		if got := f.Mul(a, f.Inv(a)); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
		if got := f.Div(a, a); got != 1 {
			t.Fatalf("a/a = %d for a=%d", got, a)
		}
		if got := f.Pow(a, 63); got != 1 {
			t.Fatalf("a^63 = %d for a=%d (Lagrange)", got, a)
		}
	}
	// Associativity and distributivity spot checks.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a, b, c := uint16(rng.Intn(64)), uint16(rng.Intn(64)), uint16(rng.Intn(64))
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatalf("associativity fails for %d,%d,%d", a, b, c)
		}
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
}

func TestFieldRejectsNonPrimitive(t *testing.T) {
	// x^6 + x^3 + 1 has order 9·... (not primitive over GF(2^6)).
	if _, err := NewField(6, 0x49); err == nil {
		t.Error("NewField should reject the non-primitive polynomial x^6+x^3+1")
	}
}

func TestMinimalPolynomials(t *testing.T) {
	f, _ := NewField(6, primPolyGF64)
	m1 := f.MinimalPoly(1)
	if m1 != primPolyGF64 {
		t.Errorf("m1(x) = %#x, want the primitive polynomial %#x", m1, primPolyGF64)
	}
	m3 := f.MinimalPoly(3)
	if polyDeg(m3) != 6 {
		t.Errorf("deg m3 = %d, want 6 (conjugacy class of 3 has size 6)", polyDeg(m3))
	}
	// α^3 must be a root of m3: evaluate via repeated Horner in the field.
	root := f.Alpha(3)
	var acc uint16
	for i := polyDeg(m3); i >= 0; i-- {
		acc = f.Mul(acc, root)
		if m3&(1<<uint(i)) != 0 {
			acc ^= 1
		}
	}
	if acc != 0 {
		t.Errorf("m3(α³) = %d, want 0", acc)
	}
}

func TestDECTEDGeometry(t *testing.T) {
	for _, k := range paperWidths {
		c, err := NewDECTED(k)
		if err != nil {
			t.Fatalf("NewDECTED(%d): %v", k, err)
		}
		if got := c.CheckBits(); got != 13 {
			t.Errorf("k=%d: CheckBits = %d, want the paper's 13", k, got)
		}
		if polyDeg(c.Generator()) != 12 {
			t.Errorf("k=%d: generator degree %d, want 12", k, polyDeg(c.Generator()))
		}
	}
}

func TestDECTEDValidCodewords(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewDECTED(k)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 2000; trial++ {
			data := rng.Uint64() & DataMask(c)
			cw := c.Encode(data)
			if cw&DataMask(c) != data {
				t.Fatalf("k=%d: encode not systematic", k)
			}
			got, res := c.Decode(cw)
			if res.Status != OK || got != data {
				t.Fatalf("k=%d data=%#x: clean decode = (%#x, %+v)", k, data, got, res)
			}
		}
	}
}

func TestDECTEDCorrectsEverySingleError(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewDECTED(k)
		rng := rand.New(rand.NewSource(12))
		for trial := 0; trial < 50; trial++ {
			data := rng.Uint64() & DataMask(c)
			cw := c.Encode(data)
			for pos := 0; pos < TotalBits(c); pos++ {
				got, res := c.Decode(cw ^ 1<<uint(pos))
				if res.Status != Corrected || got != data {
					t.Fatalf("k=%d pos=%d: (%#x, %+v), want corrected %#x", k, pos, got, res, data)
				}
			}
		}
	}
}

func TestDECTEDCorrectsEveryDoubleError(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewDECTED(k)
		rng := rand.New(rand.NewSource(13))
		n := TotalBits(c)
		for trial := 0; trial < 10; trial++ {
			data := rng.Uint64() & DataMask(c)
			cw := c.Encode(data)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					got, res := c.Decode(cw ^ 1<<uint(i) ^ 1<<uint(j))
					if res.Status != Corrected || got != data {
						t.Fatalf("k=%d errors (%d,%d): (%#x, %+v), want corrected %#x",
							k, i, j, got, res, data)
					}
					if res.Corrected != 2 {
						t.Fatalf("k=%d errors (%d,%d): corrected %d bits, want 2", k, i, j, res.Corrected)
					}
				}
			}
		}
	}
}

func TestDECTEDDetectsEveryTripleError(t *testing.T) {
	// Exhaustive over all C(n,3) triples for one word per width: every
	// weight-3 pattern must be flagged Detected, never miscorrected —
	// this is the property Scenario B relies on (a hard fault plus a
	// soft error in the same word is corrected; anything beyond is
	// detected).
	for _, k := range paperWidths {
		c, _ := NewDECTED(k)
		data := uint64(0x1234567) & DataMask(c)
		cw := c.Encode(data)
		n := TotalBits(c)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for l := j + 1; l < n; l++ {
					_, res := c.Decode(cw ^ 1<<uint(i) ^ 1<<uint(j) ^ 1<<uint(l))
					if res.Status != Detected {
						t.Fatalf("k=%d triple (%d,%d,%d): status %v, want Detected",
							k, i, j, l, res.Status)
					}
				}
			}
		}
	}
}

func TestDECTEDHardPlusSoftScenario(t *testing.T) {
	// The paper's Scenario B use case: one hard faulty bit (stuck-at) in
	// a word plus one soft error must still decode correctly at ULE mode.
	c, _ := NewDECTED(32)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64() & DataMask(c)
		cw := c.Encode(data)
		hard := rng.Intn(TotalBits(c))
		soft := rng.Intn(TotalBits(c))
		// A stuck-at fault flips the stored bit only if it disagrees.
		faulty := cw
		stuckVal := uint64(rng.Intn(2))
		if (cw>>uint(hard))&1 != stuckVal {
			faulty ^= 1 << uint(hard)
		}
		faulty ^= 1 << uint(soft)
		got, res := c.Decode(faulty)
		if got != data || res.Status == Detected {
			t.Fatalf("trial %d: hard=%d soft=%d: (%#x, %v), want silent recovery of %#x",
				trial, hard, soft, got, res.Status, data)
		}
	}
}

func TestDECTEDRejectsImpossibleGeometry(t *testing.T) {
	if _, err := NewDECTED(52); err == nil {
		t.Error("NewDECTED(52) should fail: exceeds BCH(63) after 12 check bits")
	}
	if _, err := NewDECTED(0); err == nil {
		t.Error("NewDECTED(0) should fail")
	}
}

func TestDECTEDQuickProperties(t *testing.T) {
	c, _ := NewDECTED(32)
	n := TotalBits(c)
	// Property: any ≤2-bit corruption is transparently repaired.
	prop := func(data uint64, a, b uint8) bool {
		data &= DataMask(c)
		i, j := int(a)%n, int(b)%n
		cw := c.Encode(data) ^ 1<<uint(i) ^ 1<<uint(j) // j==i ⇒ weight 0 or self-cancel
		got, res := c.Decode(cw)
		return got == data && res.Status != Detected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
